# Empty compiler generated dependencies file for namer-scan.
# This may be replaced when dependencies are built.
