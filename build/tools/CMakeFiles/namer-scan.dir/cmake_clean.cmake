file(REMOVE_RECURSE
  "CMakeFiles/namer-scan.dir/namer-scan.cpp.o"
  "CMakeFiles/namer-scan.dir/namer-scan.cpp.o.d"
  "namer-scan"
  "namer-scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer-scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
