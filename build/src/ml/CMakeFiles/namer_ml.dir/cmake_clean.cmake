file(REMOVE_RECURSE
  "CMakeFiles/namer_ml.dir/Evaluation.cpp.o"
  "CMakeFiles/namer_ml.dir/Evaluation.cpp.o.d"
  "CMakeFiles/namer_ml.dir/Matrix.cpp.o"
  "CMakeFiles/namer_ml.dir/Matrix.cpp.o.d"
  "CMakeFiles/namer_ml.dir/Models.cpp.o"
  "CMakeFiles/namer_ml.dir/Models.cpp.o.d"
  "CMakeFiles/namer_ml.dir/Preprocess.cpp.o"
  "CMakeFiles/namer_ml.dir/Preprocess.cpp.o.d"
  "libnamer_ml.a"
  "libnamer_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
