# Empty dependencies file for namer_ml.
# This may be replaced when dependencies are built.
