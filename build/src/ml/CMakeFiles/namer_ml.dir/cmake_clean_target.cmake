file(REMOVE_RECURSE
  "libnamer_ml.a"
)
