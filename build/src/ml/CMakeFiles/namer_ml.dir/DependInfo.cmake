
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/Evaluation.cpp" "src/ml/CMakeFiles/namer_ml.dir/Evaluation.cpp.o" "gcc" "src/ml/CMakeFiles/namer_ml.dir/Evaluation.cpp.o.d"
  "/root/repo/src/ml/Matrix.cpp" "src/ml/CMakeFiles/namer_ml.dir/Matrix.cpp.o" "gcc" "src/ml/CMakeFiles/namer_ml.dir/Matrix.cpp.o.d"
  "/root/repo/src/ml/Models.cpp" "src/ml/CMakeFiles/namer_ml.dir/Models.cpp.o" "gcc" "src/ml/CMakeFiles/namer_ml.dir/Models.cpp.o.d"
  "/root/repo/src/ml/Preprocess.cpp" "src/ml/CMakeFiles/namer_ml.dir/Preprocess.cpp.o" "gcc" "src/ml/CMakeFiles/namer_ml.dir/Preprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
