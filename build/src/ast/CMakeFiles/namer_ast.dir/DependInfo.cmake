
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/Statements.cpp" "src/ast/CMakeFiles/namer_ast.dir/Statements.cpp.o" "gcc" "src/ast/CMakeFiles/namer_ast.dir/Statements.cpp.o.d"
  "/root/repo/src/ast/Tree.cpp" "src/ast/CMakeFiles/namer_ast.dir/Tree.cpp.o" "gcc" "src/ast/CMakeFiles/namer_ast.dir/Tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
