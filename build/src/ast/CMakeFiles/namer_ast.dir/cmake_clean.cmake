file(REMOVE_RECURSE
  "CMakeFiles/namer_ast.dir/Statements.cpp.o"
  "CMakeFiles/namer_ast.dir/Statements.cpp.o.d"
  "CMakeFiles/namer_ast.dir/Tree.cpp.o"
  "CMakeFiles/namer_ast.dir/Tree.cpp.o.d"
  "libnamer_ast.a"
  "libnamer_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
