# Empty dependencies file for namer_ast.
# This may be replaced when dependencies are built.
