file(REMOVE_RECURSE
  "libnamer_ast.a"
)
