file(REMOVE_RECURSE
  "libnamer_neural.a"
)
