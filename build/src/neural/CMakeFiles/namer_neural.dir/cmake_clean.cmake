file(REMOVE_RECURSE
  "CMakeFiles/namer_neural.dir/Detector.cpp.o"
  "CMakeFiles/namer_neural.dir/Detector.cpp.o.d"
  "CMakeFiles/namer_neural.dir/Ggnn.cpp.o"
  "CMakeFiles/namer_neural.dir/Ggnn.cpp.o.d"
  "CMakeFiles/namer_neural.dir/Great.cpp.o"
  "CMakeFiles/namer_neural.dir/Great.cpp.o.d"
  "CMakeFiles/namer_neural.dir/ProgramGraph.cpp.o"
  "CMakeFiles/namer_neural.dir/ProgramGraph.cpp.o.d"
  "CMakeFiles/namer_neural.dir/Tensor.cpp.o"
  "CMakeFiles/namer_neural.dir/Tensor.cpp.o.d"
  "CMakeFiles/namer_neural.dir/VarMisuse.cpp.o"
  "CMakeFiles/namer_neural.dir/VarMisuse.cpp.o.d"
  "libnamer_neural.a"
  "libnamer_neural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
