
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neural/Detector.cpp" "src/neural/CMakeFiles/namer_neural.dir/Detector.cpp.o" "gcc" "src/neural/CMakeFiles/namer_neural.dir/Detector.cpp.o.d"
  "/root/repo/src/neural/Ggnn.cpp" "src/neural/CMakeFiles/namer_neural.dir/Ggnn.cpp.o" "gcc" "src/neural/CMakeFiles/namer_neural.dir/Ggnn.cpp.o.d"
  "/root/repo/src/neural/Great.cpp" "src/neural/CMakeFiles/namer_neural.dir/Great.cpp.o" "gcc" "src/neural/CMakeFiles/namer_neural.dir/Great.cpp.o.d"
  "/root/repo/src/neural/ProgramGraph.cpp" "src/neural/CMakeFiles/namer_neural.dir/ProgramGraph.cpp.o" "gcc" "src/neural/CMakeFiles/namer_neural.dir/ProgramGraph.cpp.o.d"
  "/root/repo/src/neural/Tensor.cpp" "src/neural/CMakeFiles/namer_neural.dir/Tensor.cpp.o" "gcc" "src/neural/CMakeFiles/namer_neural.dir/Tensor.cpp.o.d"
  "/root/repo/src/neural/VarMisuse.cpp" "src/neural/CMakeFiles/namer_neural.dir/VarMisuse.cpp.o" "gcc" "src/neural/CMakeFiles/namer_neural.dir/VarMisuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/namer_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/namer_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
