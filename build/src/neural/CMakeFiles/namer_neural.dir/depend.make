# Empty dependencies file for namer_neural.
# This may be replaced when dependencies are built.
