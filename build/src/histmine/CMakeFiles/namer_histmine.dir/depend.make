# Empty dependencies file for namer_histmine.
# This may be replaced when dependencies are built.
