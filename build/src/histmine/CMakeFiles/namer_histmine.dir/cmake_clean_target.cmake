file(REMOVE_RECURSE
  "libnamer_histmine.a"
)
