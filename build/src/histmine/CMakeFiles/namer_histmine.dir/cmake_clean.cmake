file(REMOVE_RECURSE
  "CMakeFiles/namer_histmine.dir/ConfusingPairs.cpp.o"
  "CMakeFiles/namer_histmine.dir/ConfusingPairs.cpp.o.d"
  "libnamer_histmine.a"
  "libnamer_histmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_histmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
