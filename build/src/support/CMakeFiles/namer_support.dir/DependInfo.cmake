
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/EditDistance.cpp" "src/support/CMakeFiles/namer_support.dir/EditDistance.cpp.o" "gcc" "src/support/CMakeFiles/namer_support.dir/EditDistance.cpp.o.d"
  "/root/repo/src/support/StringInterner.cpp" "src/support/CMakeFiles/namer_support.dir/StringInterner.cpp.o" "gcc" "src/support/CMakeFiles/namer_support.dir/StringInterner.cpp.o.d"
  "/root/repo/src/support/Subtokens.cpp" "src/support/CMakeFiles/namer_support.dir/Subtokens.cpp.o" "gcc" "src/support/CMakeFiles/namer_support.dir/Subtokens.cpp.o.d"
  "/root/repo/src/support/TextTable.cpp" "src/support/CMakeFiles/namer_support.dir/TextTable.cpp.o" "gcc" "src/support/CMakeFiles/namer_support.dir/TextTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
