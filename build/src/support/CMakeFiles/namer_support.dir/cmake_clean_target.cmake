file(REMOVE_RECURSE
  "libnamer_support.a"
)
