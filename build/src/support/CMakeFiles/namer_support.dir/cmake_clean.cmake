file(REMOVE_RECURSE
  "CMakeFiles/namer_support.dir/EditDistance.cpp.o"
  "CMakeFiles/namer_support.dir/EditDistance.cpp.o.d"
  "CMakeFiles/namer_support.dir/StringInterner.cpp.o"
  "CMakeFiles/namer_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/namer_support.dir/Subtokens.cpp.o"
  "CMakeFiles/namer_support.dir/Subtokens.cpp.o.d"
  "CMakeFiles/namer_support.dir/TextTable.cpp.o"
  "CMakeFiles/namer_support.dir/TextTable.cpp.o.d"
  "libnamer_support.a"
  "libnamer_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
