# Empty compiler generated dependencies file for namer_support.
# This may be replaced when dependencies are built.
