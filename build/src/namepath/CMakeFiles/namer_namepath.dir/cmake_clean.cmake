file(REMOVE_RECURSE
  "CMakeFiles/namer_namepath.dir/NamePath.cpp.o"
  "CMakeFiles/namer_namepath.dir/NamePath.cpp.o.d"
  "libnamer_namepath.a"
  "libnamer_namepath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_namepath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
