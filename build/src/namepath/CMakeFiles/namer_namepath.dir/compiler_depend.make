# Empty compiler generated dependencies file for namer_namepath.
# This may be replaced when dependencies are built.
