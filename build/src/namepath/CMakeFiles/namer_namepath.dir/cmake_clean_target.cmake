file(REMOVE_RECURSE
  "libnamer_namepath.a"
)
