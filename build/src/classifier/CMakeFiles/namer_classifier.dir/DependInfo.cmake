
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classifier/DatasetIndex.cpp" "src/classifier/CMakeFiles/namer_classifier.dir/DatasetIndex.cpp.o" "gcc" "src/classifier/CMakeFiles/namer_classifier.dir/DatasetIndex.cpp.o.d"
  "/root/repo/src/classifier/DefectClassifier.cpp" "src/classifier/CMakeFiles/namer_classifier.dir/DefectClassifier.cpp.o" "gcc" "src/classifier/CMakeFiles/namer_classifier.dir/DefectClassifier.cpp.o.d"
  "/root/repo/src/classifier/Features.cpp" "src/classifier/CMakeFiles/namer_classifier.dir/Features.cpp.o" "gcc" "src/classifier/CMakeFiles/namer_classifier.dir/Features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pattern/CMakeFiles/namer_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/histmine/CMakeFiles/namer_histmine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/namer_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/namepath/CMakeFiles/namer_namepath.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
