file(REMOVE_RECURSE
  "libnamer_classifier.a"
)
