# Empty compiler generated dependencies file for namer_classifier.
# This may be replaced when dependencies are built.
