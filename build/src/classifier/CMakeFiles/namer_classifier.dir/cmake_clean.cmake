file(REMOVE_RECURSE
  "CMakeFiles/namer_classifier.dir/DatasetIndex.cpp.o"
  "CMakeFiles/namer_classifier.dir/DatasetIndex.cpp.o.d"
  "CMakeFiles/namer_classifier.dir/DefectClassifier.cpp.o"
  "CMakeFiles/namer_classifier.dir/DefectClassifier.cpp.o.d"
  "CMakeFiles/namer_classifier.dir/Features.cpp.o"
  "CMakeFiles/namer_classifier.dir/Features.cpp.o.d"
  "libnamer_classifier.a"
  "libnamer_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
