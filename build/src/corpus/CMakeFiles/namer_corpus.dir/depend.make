# Empty dependencies file for namer_corpus.
# This may be replaced when dependencies are built.
