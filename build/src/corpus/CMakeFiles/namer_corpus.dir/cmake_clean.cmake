file(REMOVE_RECURSE
  "CMakeFiles/namer_corpus.dir/Generator.cpp.o"
  "CMakeFiles/namer_corpus.dir/Generator.cpp.o.d"
  "CMakeFiles/namer_corpus.dir/JavaGen.cpp.o"
  "CMakeFiles/namer_corpus.dir/JavaGen.cpp.o.d"
  "CMakeFiles/namer_corpus.dir/Oracle.cpp.o"
  "CMakeFiles/namer_corpus.dir/Oracle.cpp.o.d"
  "CMakeFiles/namer_corpus.dir/PythonGen.cpp.o"
  "CMakeFiles/namer_corpus.dir/PythonGen.cpp.o.d"
  "libnamer_corpus.a"
  "libnamer_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
