
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Generator.cpp" "src/corpus/CMakeFiles/namer_corpus.dir/Generator.cpp.o" "gcc" "src/corpus/CMakeFiles/namer_corpus.dir/Generator.cpp.o.d"
  "/root/repo/src/corpus/JavaGen.cpp" "src/corpus/CMakeFiles/namer_corpus.dir/JavaGen.cpp.o" "gcc" "src/corpus/CMakeFiles/namer_corpus.dir/JavaGen.cpp.o.d"
  "/root/repo/src/corpus/Oracle.cpp" "src/corpus/CMakeFiles/namer_corpus.dir/Oracle.cpp.o" "gcc" "src/corpus/CMakeFiles/namer_corpus.dir/Oracle.cpp.o.d"
  "/root/repo/src/corpus/PythonGen.cpp" "src/corpus/CMakeFiles/namer_corpus.dir/PythonGen.cpp.o" "gcc" "src/corpus/CMakeFiles/namer_corpus.dir/PythonGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
