file(REMOVE_RECURSE
  "libnamer_corpus.a"
)
