file(REMOVE_RECURSE
  "CMakeFiles/namer_transform.dir/AstPlus.cpp.o"
  "CMakeFiles/namer_transform.dir/AstPlus.cpp.o.d"
  "libnamer_transform.a"
  "libnamer_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
