# Empty compiler generated dependencies file for namer_transform.
# This may be replaced when dependencies are built.
