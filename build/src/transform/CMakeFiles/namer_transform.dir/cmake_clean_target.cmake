file(REMOVE_RECURSE
  "libnamer_transform.a"
)
