file(REMOVE_RECURSE
  "CMakeFiles/namer_analysis.dir/Origins.cpp.o"
  "CMakeFiles/namer_analysis.dir/Origins.cpp.o.d"
  "CMakeFiles/namer_analysis.dir/WellKnown.cpp.o"
  "CMakeFiles/namer_analysis.dir/WellKnown.cpp.o.d"
  "CMakeFiles/namer_analysis.dir/datalog/Datalog.cpp.o"
  "CMakeFiles/namer_analysis.dir/datalog/Datalog.cpp.o.d"
  "libnamer_analysis.a"
  "libnamer_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
