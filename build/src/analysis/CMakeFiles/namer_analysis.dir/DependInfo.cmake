
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Origins.cpp" "src/analysis/CMakeFiles/namer_analysis.dir/Origins.cpp.o" "gcc" "src/analysis/CMakeFiles/namer_analysis.dir/Origins.cpp.o.d"
  "/root/repo/src/analysis/WellKnown.cpp" "src/analysis/CMakeFiles/namer_analysis.dir/WellKnown.cpp.o" "gcc" "src/analysis/CMakeFiles/namer_analysis.dir/WellKnown.cpp.o.d"
  "/root/repo/src/analysis/datalog/Datalog.cpp" "src/analysis/CMakeFiles/namer_analysis.dir/datalog/Datalog.cpp.o" "gcc" "src/analysis/CMakeFiles/namer_analysis.dir/datalog/Datalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/namer_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
