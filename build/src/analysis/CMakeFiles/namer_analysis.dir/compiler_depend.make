# Empty compiler generated dependencies file for namer_analysis.
# This may be replaced when dependencies are built.
