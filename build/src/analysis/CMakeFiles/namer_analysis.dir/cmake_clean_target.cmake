file(REMOVE_RECURSE
  "libnamer_analysis.a"
)
