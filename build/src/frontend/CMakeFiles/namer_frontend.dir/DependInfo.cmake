
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/java/JavaLexer.cpp" "src/frontend/CMakeFiles/namer_frontend.dir/java/JavaLexer.cpp.o" "gcc" "src/frontend/CMakeFiles/namer_frontend.dir/java/JavaLexer.cpp.o.d"
  "/root/repo/src/frontend/java/JavaParser.cpp" "src/frontend/CMakeFiles/namer_frontend.dir/java/JavaParser.cpp.o" "gcc" "src/frontend/CMakeFiles/namer_frontend.dir/java/JavaParser.cpp.o.d"
  "/root/repo/src/frontend/python/PythonLexer.cpp" "src/frontend/CMakeFiles/namer_frontend.dir/python/PythonLexer.cpp.o" "gcc" "src/frontend/CMakeFiles/namer_frontend.dir/python/PythonLexer.cpp.o.d"
  "/root/repo/src/frontend/python/PythonParser.cpp" "src/frontend/CMakeFiles/namer_frontend.dir/python/PythonParser.cpp.o" "gcc" "src/frontend/CMakeFiles/namer_frontend.dir/python/PythonParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
