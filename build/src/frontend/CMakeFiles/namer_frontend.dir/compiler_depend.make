# Empty compiler generated dependencies file for namer_frontend.
# This may be replaced when dependencies are built.
