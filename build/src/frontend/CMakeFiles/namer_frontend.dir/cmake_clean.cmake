file(REMOVE_RECURSE
  "CMakeFiles/namer_frontend.dir/java/JavaLexer.cpp.o"
  "CMakeFiles/namer_frontend.dir/java/JavaLexer.cpp.o.d"
  "CMakeFiles/namer_frontend.dir/java/JavaParser.cpp.o"
  "CMakeFiles/namer_frontend.dir/java/JavaParser.cpp.o.d"
  "CMakeFiles/namer_frontend.dir/python/PythonLexer.cpp.o"
  "CMakeFiles/namer_frontend.dir/python/PythonLexer.cpp.o.d"
  "CMakeFiles/namer_frontend.dir/python/PythonParser.cpp.o"
  "CMakeFiles/namer_frontend.dir/python/PythonParser.cpp.o.d"
  "libnamer_frontend.a"
  "libnamer_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
