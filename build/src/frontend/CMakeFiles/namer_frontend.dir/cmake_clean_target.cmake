file(REMOVE_RECURSE
  "libnamer_frontend.a"
)
