file(REMOVE_RECURSE
  "libnamer_pattern.a"
)
