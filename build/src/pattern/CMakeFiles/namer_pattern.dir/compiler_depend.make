# Empty compiler generated dependencies file for namer_pattern.
# This may be replaced when dependencies are built.
