file(REMOVE_RECURSE
  "CMakeFiles/namer_pattern.dir/FPTree.cpp.o"
  "CMakeFiles/namer_pattern.dir/FPTree.cpp.o.d"
  "CMakeFiles/namer_pattern.dir/Miner.cpp.o"
  "CMakeFiles/namer_pattern.dir/Miner.cpp.o.d"
  "CMakeFiles/namer_pattern.dir/NamePattern.cpp.o"
  "CMakeFiles/namer_pattern.dir/NamePattern.cpp.o.d"
  "CMakeFiles/namer_pattern.dir/PatternIndex.cpp.o"
  "CMakeFiles/namer_pattern.dir/PatternIndex.cpp.o.d"
  "libnamer_pattern.a"
  "libnamer_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
