
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/FPTree.cpp" "src/pattern/CMakeFiles/namer_pattern.dir/FPTree.cpp.o" "gcc" "src/pattern/CMakeFiles/namer_pattern.dir/FPTree.cpp.o.d"
  "/root/repo/src/pattern/Miner.cpp" "src/pattern/CMakeFiles/namer_pattern.dir/Miner.cpp.o" "gcc" "src/pattern/CMakeFiles/namer_pattern.dir/Miner.cpp.o.d"
  "/root/repo/src/pattern/NamePattern.cpp" "src/pattern/CMakeFiles/namer_pattern.dir/NamePattern.cpp.o" "gcc" "src/pattern/CMakeFiles/namer_pattern.dir/NamePattern.cpp.o.d"
  "/root/repo/src/pattern/PatternIndex.cpp" "src/pattern/CMakeFiles/namer_pattern.dir/PatternIndex.cpp.o" "gcc" "src/pattern/CMakeFiles/namer_pattern.dir/PatternIndex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/namepath/CMakeFiles/namer_namepath.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
