# Empty dependencies file for namer_core.
# This may be replaced when dependencies are built.
