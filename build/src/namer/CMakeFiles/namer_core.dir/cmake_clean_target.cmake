file(REMOVE_RECURSE
  "libnamer_core.a"
)
