file(REMOVE_RECURSE
  "CMakeFiles/namer_core.dir/Evaluation.cpp.o"
  "CMakeFiles/namer_core.dir/Evaluation.cpp.o.d"
  "CMakeFiles/namer_core.dir/Pipeline.cpp.o"
  "CMakeFiles/namer_core.dir/Pipeline.cpp.o.d"
  "libnamer_core.a"
  "libnamer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
