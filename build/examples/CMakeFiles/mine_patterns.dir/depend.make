# Empty dependencies file for mine_patterns.
# This may be replaced when dependencies are built.
