file(REMOVE_RECURSE
  "CMakeFiles/mine_patterns.dir/mine_patterns.cpp.o"
  "CMakeFiles/mine_patterns.dir/mine_patterns.cpp.o.d"
  "mine_patterns"
  "mine_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
