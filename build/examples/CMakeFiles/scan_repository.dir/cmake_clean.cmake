file(REMOVE_RECURSE
  "CMakeFiles/scan_repository.dir/scan_repository.cpp.o"
  "CMakeFiles/scan_repository.dir/scan_repository.cpp.o.d"
  "scan_repository"
  "scan_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
