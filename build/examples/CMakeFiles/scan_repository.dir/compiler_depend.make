# Empty compiler generated dependencies file for scan_repository.
# This may be replaced when dependencies are built.
