file(REMOVE_RECURSE
  "CMakeFiles/java_exceptions.dir/java_exceptions.cpp.o"
  "CMakeFiles/java_exceptions.dir/java_exceptions.cpp.o.d"
  "java_exceptions"
  "java_exceptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_exceptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
