# Empty compiler generated dependencies file for java_exceptions.
# This may be replaced when dependencies are built.
