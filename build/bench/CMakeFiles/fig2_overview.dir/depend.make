# Empty dependencies file for fig2_overview.
# This may be replaced when dependencies are built.
