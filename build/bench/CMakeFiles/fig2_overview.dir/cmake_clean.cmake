file(REMOVE_RECURSE
  "CMakeFiles/fig2_overview.dir/fig2_overview.cpp.o"
  "CMakeFiles/fig2_overview.dir/fig2_overview.cpp.o.d"
  "fig2_overview"
  "fig2_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
