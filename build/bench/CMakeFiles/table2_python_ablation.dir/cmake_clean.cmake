file(REMOVE_RECURSE
  "CMakeFiles/table2_python_ablation.dir/table2_python_ablation.cpp.o"
  "CMakeFiles/table2_python_ablation.dir/table2_python_ablation.cpp.o.d"
  "table2_python_ablation"
  "table2_python_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_python_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
