# Empty dependencies file for table2_python_ablation.
# This may be replaced when dependencies are built.
