# Empty compiler generated dependencies file for table6_java_examples.
# This may be replaced when dependencies are built.
