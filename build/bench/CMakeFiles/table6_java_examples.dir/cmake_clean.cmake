file(REMOVE_RECURSE
  "CMakeFiles/table6_java_examples.dir/table6_java_examples.cpp.o"
  "CMakeFiles/table6_java_examples.dir/table6_java_examples.cpp.o.d"
  "table6_java_examples"
  "table6_java_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_java_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
