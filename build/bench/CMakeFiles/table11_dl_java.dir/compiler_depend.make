# Empty compiler generated dependencies file for table11_dl_java.
# This may be replaced when dependencies are built.
