file(REMOVE_RECURSE
  "CMakeFiles/table11_dl_java.dir/table11_dl_java.cpp.o"
  "CMakeFiles/table11_dl_java.dir/table11_dl_java.cpp.o.d"
  "table11_dl_java"
  "table11_dl_java.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_dl_java.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
