# Empty dependencies file for table10_dl_python.
# This may be replaced when dependencies are built.
