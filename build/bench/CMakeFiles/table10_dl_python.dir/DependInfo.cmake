
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table10_dl_python.cpp" "bench/CMakeFiles/table10_dl_python.dir/table10_dl_python.cpp.o" "gcc" "bench/CMakeFiles/table10_dl_python.dir/table10_dl_python.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/namer_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/namer/CMakeFiles/namer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/classifier/CMakeFiles/namer_classifier.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/namer_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/namepath/CMakeFiles/namer_namepath.dir/DependInfo.cmake"
  "/root/repo/build/src/histmine/CMakeFiles/namer_histmine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/namer_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/namer_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/namer_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/neural/CMakeFiles/namer_neural.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/namer_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/namer_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
