file(REMOVE_RECURSE
  "CMakeFiles/table10_dl_python.dir/table10_dl_python.cpp.o"
  "CMakeFiles/table10_dl_python.dir/table10_dl_python.cpp.o.d"
  "table10_dl_python"
  "table10_dl_python.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_dl_python.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
