# Empty dependencies file for table4_pattern_breakdown.
# This may be replaced when dependencies are built.
