file(REMOVE_RECURSE
  "CMakeFiles/stats_mining_cv.dir/stats_mining_cv.cpp.o"
  "CMakeFiles/stats_mining_cv.dir/stats_mining_cv.cpp.o.d"
  "stats_mining_cv"
  "stats_mining_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_mining_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
