# Empty dependencies file for stats_mining_cv.
# This may be replaced when dependencies are built.
