file(REMOVE_RECURSE
  "CMakeFiles/table9_weights.dir/table9_weights.cpp.o"
  "CMakeFiles/table9_weights.dir/table9_weights.cpp.o.d"
  "table9_weights"
  "table9_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
