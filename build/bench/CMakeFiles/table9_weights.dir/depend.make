# Empty dependencies file for table9_weights.
# This may be replaced when dependencies are built.
