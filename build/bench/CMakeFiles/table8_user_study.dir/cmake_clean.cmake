file(REMOVE_RECURSE
  "CMakeFiles/table8_user_study.dir/table8_user_study.cpp.o"
  "CMakeFiles/table8_user_study.dir/table8_user_study.cpp.o.d"
  "table8_user_study"
  "table8_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
