# Empty dependencies file for table8_user_study.
# This may be replaced when dependencies are built.
