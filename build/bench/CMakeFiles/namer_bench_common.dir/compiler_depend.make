# Empty compiler generated dependencies file for namer_bench_common.
# This may be replaced when dependencies are built.
