file(REMOVE_RECURSE
  "../lib/libnamer_bench_common.a"
  "../lib/libnamer_bench_common.pdb"
  "CMakeFiles/namer_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/namer_bench_common.dir/BenchCommon.cpp.o.d"
  "CMakeFiles/namer_bench_common.dir/DlComparison.cpp.o"
  "CMakeFiles/namer_bench_common.dir/DlComparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namer_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
