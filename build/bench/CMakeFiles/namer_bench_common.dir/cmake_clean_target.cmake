file(REMOVE_RECURSE
  "../lib/libnamer_bench_common.a"
)
