file(REMOVE_RECURSE
  "CMakeFiles/table3_python_examples.dir/table3_python_examples.cpp.o"
  "CMakeFiles/table3_python_examples.dir/table3_python_examples.cpp.o.d"
  "table3_python_examples"
  "table3_python_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_python_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
