# Empty compiler generated dependencies file for table3_python_examples.
# This may be replaced when dependencies are built.
