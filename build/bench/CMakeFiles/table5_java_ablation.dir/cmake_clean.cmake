file(REMOVE_RECURSE
  "CMakeFiles/table5_java_ablation.dir/table5_java_ablation.cpp.o"
  "CMakeFiles/table5_java_ablation.dir/table5_java_ablation.cpp.o.d"
  "table5_java_ablation"
  "table5_java_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_java_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
