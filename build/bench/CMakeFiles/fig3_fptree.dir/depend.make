# Empty dependencies file for fig3_fptree.
# This may be replaced when dependencies are built.
