file(REMOVE_RECURSE
  "CMakeFiles/fig3_fptree.dir/fig3_fptree.cpp.o"
  "CMakeFiles/fig3_fptree.dir/fig3_fptree.cpp.o.d"
  "fig3_fptree"
  "fig3_fptree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
