# Empty dependencies file for speed_per_file.
# This may be replaced when dependencies are built.
