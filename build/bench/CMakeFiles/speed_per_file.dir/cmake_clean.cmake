file(REMOVE_RECURSE
  "CMakeFiles/speed_per_file.dir/speed_per_file.cpp.o"
  "CMakeFiles/speed_per_file.dir/speed_per_file.cpp.o.d"
  "speed_per_file"
  "speed_per_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_per_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
