# Empty compiler generated dependencies file for namer_tests.
# This may be replaced when dependencies are built.
