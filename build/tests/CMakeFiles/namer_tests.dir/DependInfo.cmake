
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/namer_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/ClassifierTest.cpp" "tests/CMakeFiles/namer_tests.dir/ClassifierTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/ClassifierTest.cpp.o.d"
  "/root/repo/tests/CorpusTest.cpp" "tests/CMakeFiles/namer_tests.dir/CorpusTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/CorpusTest.cpp.o.d"
  "/root/repo/tests/EvaluationTest.cpp" "tests/CMakeFiles/namer_tests.dir/EvaluationTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/EvaluationTest.cpp.o.d"
  "/root/repo/tests/HistMineTest.cpp" "tests/CMakeFiles/namer_tests.dir/HistMineTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/HistMineTest.cpp.o.d"
  "/root/repo/tests/JavaParserTest.cpp" "tests/CMakeFiles/namer_tests.dir/JavaParserTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/JavaParserTest.cpp.o.d"
  "/root/repo/tests/MlTest.cpp" "tests/CMakeFiles/namer_tests.dir/MlTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/MlTest.cpp.o.d"
  "/root/repo/tests/NamePathTest.cpp" "tests/CMakeFiles/namer_tests.dir/NamePathTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/NamePathTest.cpp.o.d"
  "/root/repo/tests/NeuralTest.cpp" "tests/CMakeFiles/namer_tests.dir/NeuralTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/NeuralTest.cpp.o.d"
  "/root/repo/tests/PatternTest.cpp" "tests/CMakeFiles/namer_tests.dir/PatternTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/PatternTest.cpp.o.d"
  "/root/repo/tests/PipelineTest.cpp" "tests/CMakeFiles/namer_tests.dir/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/PipelineTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/namer_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/PythonParserTest.cpp" "tests/CMakeFiles/namer_tests.dir/PythonParserTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/PythonParserTest.cpp.o.d"
  "/root/repo/tests/RobustnessTest.cpp" "tests/CMakeFiles/namer_tests.dir/RobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/RobustnessTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/namer_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TreeTest.cpp" "tests/CMakeFiles/namer_tests.dir/TreeTest.cpp.o" "gcc" "tests/CMakeFiles/namer_tests.dir/TreeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/namer_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/namepath/CMakeFiles/namer_namepath.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/namer_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/namer_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/namer_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/histmine/CMakeFiles/namer_histmine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/namer_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/namer_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/classifier/CMakeFiles/namer_classifier.dir/DependInfo.cmake"
  "/root/repo/build/src/namer/CMakeFiles/namer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/neural/CMakeFiles/namer_neural.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/namer_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/namer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
