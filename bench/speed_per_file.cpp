//===- bench/speed_per_file.cpp -------------------------------------------==//
//
// Regenerates the Section 5.1 "Speed of Namer" measurement with
// google-benchmark: per-file time for parsing + the Section 4.1 analyses +
// AST+ transform + name path extraction, for both languages, plus the
// k-call-site sensitivity ablation (the analyses dominate the runtime, so
// k is the lever).
//
// Paper reference: 20 ms per Java file, 39 ms per Python file on a 2.60GHz
// Xeon core. Our simulated files are smaller, so absolute numbers are
// lower; the Python/Java ordering and the growth with k are what carries.
//
//===----------------------------------------------------------------------===//

#include "analysis/Origins.h"
#include "ast/Statements.h"
#include "corpus/Corpus.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "namepath/NamePath.h"
#include "transform/AstPlus.h"

#include <benchmark/benchmark.h>

using namespace namer;

namespace {

/// One corpus per language, generated once.
const corpus::Corpus &pythonCorpus() {
  static corpus::Corpus C = [] {
    corpus::CorpusConfig Config;
    Config.NumRepos = 40;
    return corpus::generateCorpus(Config);
  }();
  return C;
}

const corpus::Corpus &javaCorpus() {
  static corpus::Corpus C = [] {
    corpus::CorpusConfig Config;
    Config.Lang = corpus::Language::Java;
    Config.NumRepos = 40;
    return corpus::generateCorpus(Config);
  }();
  return C;
}

/// Full per-file front half of the pipeline.
void processFile(const corpus::SourceFile &File, corpus::Language Lang,
                 const WellKnownRegistry &Registry, unsigned K) {
  AstContext Ctx;
  Tree Module(Ctx);
  if (Lang == corpus::Language::Python)
    Module = std::move(python::parsePython(File.Text, Ctx).Module);
  else
    Module = std::move(java::parseJava(File.Text, Ctx).Module);
  AnalysisConfig Config;
  Config.CallSiteSensitivity = K;
  OriginMap Origins = computeOrigins(Module, Registry, Config).Origins;
  transformToAstPlus(Module, Origins);
  NamePathTable Table;
  for (NodeId Root : collectStatementRoots(Module)) {
    Tree Stmt = projectStatement(Module, Root);
    benchmark::DoNotOptimize(StmtPaths::fromTree(Stmt, Table));
  }
}

void perFile(benchmark::State &State, const corpus::Corpus &C,
             corpus::Language Lang, unsigned K) {
  WellKnownRegistry Registry = Lang == corpus::Language::Python
                                   ? WellKnownRegistry::forPython()
                                   : WellKnownRegistry::forJava();
  // Round-robin over the corpus files so the mean is per-file.
  std::vector<const corpus::SourceFile *> Files;
  for (const corpus::Repository &Repo : C.Repos)
    for (const corpus::SourceFile &File : Repo.Files)
      Files.push_back(&File);
  size_t Index = 0;
  for (auto _ : State) {
    (void)_;
    processFile(*Files[Index], Lang, Registry, K);
    Index = (Index + 1) % Files.size();
  }
}

void BM_PythonPerFile(benchmark::State &State) {
  perFile(State, pythonCorpus(), corpus::Language::Python,
          static_cast<unsigned>(State.range(0)));
}

void BM_JavaPerFile(benchmark::State &State) {
  perFile(State, javaCorpus(), corpus::Language::Java,
          static_cast<unsigned>(State.range(0)));
}

/// Parse-only baseline to show the analyses dominate (Section 5.1).
void BM_PythonParseOnly(benchmark::State &State) {
  const corpus::Corpus &C = pythonCorpus();
  std::vector<const corpus::SourceFile *> Files;
  for (const corpus::Repository &Repo : C.Repos)
    for (const corpus::SourceFile &File : Repo.Files)
      Files.push_back(&File);
  size_t Index = 0;
  for (auto _ : State) {
    (void)_;
    AstContext Ctx;
    benchmark::DoNotOptimize(
        python::parsePython(Files[Index]->Text, Ctx).Module.size());
    Index = (Index + 1) % Files.size();
  }
}

} // namespace

// k-call-site sensitivity sweep: k = 0 (insensitive), 2, 5 (paper default).
BENCHMARK(BM_PythonPerFile)->Arg(0)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JavaPerFile)->Arg(0)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PythonParseOnly)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
