//===- bench/DlComparison.cpp ---------------------------------------------==//

#include "DlComparison.h"

#include "BenchCommon.h"
#include "neural/Detector.h"
#include "neural/Ggnn.h"
#include "neural/Great.h"
#include "neural/VarMisuse.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;
using namespace namer::neural;
using corpus::InspectionOutcome;

namespace {

struct InspectionTally {
  size_t Semantic = 0, Quality = 0, FalsePositives = 0;

  void add(const InspectionOutcome &Out) {
    switch (Out.Result) {
    case InspectionOutcome::Verdict::SemanticDefect:
      ++Semantic;
      break;
    case InspectionOutcome::Verdict::CodeQualityIssue:
      ++Quality;
      break;
    case InspectionOutcome::Verdict::FalsePositive:
      ++FalsePositives;
      break;
    }
  }
  size_t total() const { return Semantic + Quality + FalsePositives; }
  double precision() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(Semantic + Quality) / total();
  }
};

InspectionTally inspectNeuralReports(
    const std::vector<NeuralReport> &Reports,
    const corpus::InspectionOracle &Oracle) {
  InspectionTally Tally;
  for (const NeuralReport &R : Reports)
    Tally.add(Oracle.inspect(R.File, R.Line, R.Original, R.Suggested));
  return Tally;
}

} // namespace

int bench::runDlComparison(corpus::Language Lang, const char *TableName) {
  printHeading(std::string(TableName) +
                   ": precision of GGNN, Great and Namer",
               "Networks trained on synthetic VarMisuse bugs, evaluated on "
               "the unmodified corpus (real mistake distribution).");

  corpus::Corpus C = makeCorpus(Lang);
  corpus::InspectionOracle Oracle(C);

  // --- Namer -------------------------------------------------------------
  EvaluatedPipeline E = runEvaluation(C, Oracle, Ablation::Full);
  const EvaluationResult &NamerResult = E.Result;

  // --- Synthetic training / accuracy check --------------------------------
  VarMisuseConfig VC;
  std::vector<GraphSample> Train = buildSyntheticDataset(C, VC, 1500);
  VC.Seed = 0xBEEF;
  std::vector<GraphSample> Test = buildSyntheticDataset(C, VC, 400);
  std::printf("Synthetic VarMisuse data: %zu train / %zu test samples\n",
              Train.size(), Test.size());

  GgnnModel Ggnn{GgnnModel::Config()};
  Ggnn.train(Train);
  double GgnnAccuracy = Ggnn.repairAccuracy(Test);
  std::printf("GGNN synthetic repair accuracy: %.0f%% (paper: 71%% Python "
              "/ 83%% Java)\n",
              GgnnAccuracy * 100);

  GreatModel Great{GreatModel::Config()};
  Great.train(Train);
  GreatModel::Accuracy GreatAccuracy = Great.evaluate(Test);
  std::printf("Great synthetic accuracy: classification %.0f%%, "
              "localization %.0f%%, repair %.0f%%\n"
              "  (paper: 91%% / 83%% / 79%% Python, 91%% / 82%% / 81%% "
              "Java)\n\n",
              GreatAccuracy.Classification * 100,
              GreatAccuracy.Localization * 100, GreatAccuracy.Repair * 100);

  // --- Real-issue detection ------------------------------------------------
  // "We tuned the confidence levels so that both GGNN and Great reported
  // around 5x fewer issues than Namer."
  size_t MaxReports = std::max<size_t>(1, NamerResult.numReports() / 5);
  std::vector<GraphSample> Real = buildRealUseSites(C, VC, 20000);
  std::printf("Scanning %zu real use sites; confidence tuned to ~%zu "
              "reports per network.\n\n",
              Real.size(), MaxReports);

  auto GgnnReports = detectRealIssues(
      Real, [&](const GraphSample &S) { return Ggnn.predictRepair(S); },
      MaxReports);
  auto GreatReports = detectRealIssues(
      Real, [&](const GraphSample &S) { return Great.predictRepair(S); },
      MaxReports);
  InspectionTally GgnnTally = inspectNeuralReports(GgnnReports, Oracle);
  InspectionTally GreatTally = inspectNeuralReports(GreatReports, Oracle);

  TextTable Table;
  Table.setHeader({"System", "Reports", "Semantic defects",
                   "Code quality issues", "False positives", "Precision"});
  Table.addRow({"GGNN", std::to_string(GgnnTally.total()),
                std::to_string(GgnnTally.Semantic),
                std::to_string(GgnnTally.Quality),
                std::to_string(GgnnTally.FalsePositives),
                TextTable::formatPercent(GgnnTally.precision())});
  Table.addRow({"Great", std::to_string(GreatTally.total()),
                std::to_string(GreatTally.Semantic),
                std::to_string(GreatTally.Quality),
                std::to_string(GreatTally.FalsePositives),
                TextTable::formatPercent(GreatTally.precision())});
  Table.addRow({"Namer", std::to_string(NamerResult.numReports()),
                std::to_string(NamerResult.numSemantic()),
                std::to_string(NamerResult.numQuality()),
                std::to_string(NamerResult.numFalsePositives()),
                TextTable::formatPercent(NamerResult.precision())});
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nExpected shape (paper): the networks are accurate on "
              "synthetic bugs yet\nimprecise on the real mistake "
              "distribution (up to ~16%%), while Namer reports\n~5x more "
              "issues at ~70%% precision -- the distribution mismatch "
              "result.\n");
  return 0;
}
