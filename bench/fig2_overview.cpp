//===- bench/fig2_overview.cpp --------------------------------------------==//
//
// Regenerates the Figure 2 walkthrough: the example Python program is
// parsed, analyzed, transformed to AST+, its name paths extracted
// (Figure 2(d)), matched against the Figure 2(e) pattern, and the
// violation reported with the assertTrue -> assertEqual fix.
//
//===----------------------------------------------------------------------===//

#include "analysis/Origins.h"
#include "ast/Statements.h"
#include "frontend/python/PythonParser.h"
#include "pattern/NamePattern.h"
#include "transform/AstPlus.h"

#include <cstdio>

using namespace namer;

int main() {
  std::printf("=== Figure 2: Namer overview on the example program ===\n\n");

  const char *Source =
      "from unittest import TestCase\n"
      "\n"
      "class TestPicture(TestCase):\n"
      "    def test_angle_picture(self):\n"
      "        rotated_picture_name = \"IMG_2259.jpg\"\n"
      "        for picture in self.slide.pictures:\n"
      "            if picture.relative_path == rotated_picture_name:\n"
      "                picture = self.slide.pictures[0]\n"
      "                self.assertTrue(picture.rotate_angle, 90)\n"
      "                break\n";
  std::printf("(a) Input program:\n%s\n", Source);

  AstContext Ctx;
  auto Parsed = python::parsePython(Source, Ctx);
  if (!Parsed.Errors.empty()) {
    std::printf("parse error: %s\n", Parsed.Errors.front().c_str());
    return 1;
  }

  // Locate the assertTrue statement before transforming.
  NodeId Target = InvalidNode;
  for (NodeId Root : collectStatementRoots(Parsed.Module)) {
    Tree Probe = projectStatement(Parsed.Module, Root);
    if (Probe.dump().find("assertTrue") != std::string::npos)
      Target = Root;
  }
  {
    Tree Plain = projectStatement(Parsed.Module, Target);
    std::printf("(b) Parsed AST of the underlined statement:\n  %s\n\n",
                Plain.dump().c_str());
  }

  // Section 4.1 analyses: the origin of self (and the callee) is TestCase.
  auto Analysis =
      computeOrigins(Parsed.Module, WellKnownRegistry::forPython());
  transformToAstPlus(Parsed.Module, Analysis.Origins);
  Tree Stmt = projectStatement(Parsed.Module, Target);
  std::printf("(c) Transformed AST (AST+):\n  %s\n\n", Stmt.dump().c_str());

  NamePathTable Table;
  StmtPaths Paths = StmtPaths::fromTree(Stmt, Table);
  std::printf("(d) Name paths:\n");
  for (PathId Id : Paths.Paths)
    std::printf("  %s\n", formatNamePath(Table.path(Id), Ctx).c_str());

  // (e) The mined name pattern: if a TestCase method call starts with
  // "assert" and takes a numeric second argument, the second subtoken
  // should be Equal. Built from the satisfied twin statement.
  auto Good = python::parsePython(
      "from unittest import TestCase\n"
      "class T(TestCase):\n"
      "    def test(self):\n"
      "        self.assertEqual(picture.rotate_angle, 90)\n",
      Ctx);
  auto GoodAnalysis = computeOrigins(Good.Module, WellKnownRegistry::forPython());
  transformToAstPlus(Good.Module, GoodAnalysis.Origins);
  auto GoodRoots = collectStatementRoots(Good.Module);
  Tree GoodStmt = projectStatement(Good.Module, GoodRoots.back());
  StmtPaths GoodPaths = StmtPaths::fromTree(GoodStmt, Table);

  NamePattern Pattern;
  Pattern.Kind = PatternKind::ConfusingWord;
  Pattern.Condition = {GoodPaths.Paths[0], GoodPaths.Paths[1],
                       GoodPaths.Paths.back()};
  Pattern.Deduction = {GoodPaths.Paths[2]};
  std::printf("\n(e) Name pattern (mined from Big Code):\n%s",
              formatPattern(Pattern, Table, Ctx).c_str());

  MatchResult Result = evaluatePattern(Pattern, Paths, Table);
  std::printf("\nPattern evaluation: %s\n",
              Result == MatchResult::Violated ? "VIOLATED" : "not violated");
  if (Result == MatchResult::Violated) {
    SuggestedFix Fix = deriveFix(Pattern, Paths, Table);
    std::printf("Naming issue found. Suggested fix: replace '%s' with "
                "'%s' (assertTrue -> assertEqual)\n",
                std::string(Ctx.text(Fix.Original)).c_str(),
                std::string(Ctx.text(Fix.Suggested)).c_str());
  }
  return Result == MatchResult::Violated ? 0 : 1;
}
