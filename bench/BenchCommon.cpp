//===- bench/BenchCommon.cpp ----------------------------------------------==//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

std::string_view bench::ablationName(Ablation A) {
  switch (A) {
  case Ablation::Full:
    return "Namer";
  case Ablation::NoClassifier:
    return "w/o C";
  case Ablation::NoAnalyses:
    return "w/o A";
  case Ablation::NoClassifierNoAnalyses:
    return "w/o C & A";
  }
  return "<unknown>";
}

corpus::Corpus bench::makeCorpus(corpus::Language Lang) {
  corpus::CorpusConfig Config;
  Config.Lang = Lang;
  return corpus::generateCorpus(Config);
}

std::unique_ptr<NamerPipeline> bench::makePipeline(const corpus::Corpus &C,
                                                   Ablation A) {
  PipelineConfig Config;
  Config.UseClassifier = A == Ablation::Full || A == Ablation::NoAnalyses;
  Config.UseAnalyses = A == Ablation::Full || A == Ablation::NoClassifier;
  auto Pipeline = std::make_unique<NamerPipeline>(Config);
  Pipeline->build(C);
  return Pipeline;
}

EvaluatedPipeline bench::runEvaluation(const corpus::Corpus &C,
                                       const corpus::InspectionOracle &Oracle,
                                       Ablation A) {
  EvaluatedPipeline Out;
  Out.Pipeline = makePipeline(C, A);
  EvaluationConfig Config;
  Out.Result = evaluatePipeline(*Out.Pipeline, Oracle, Config);
  return Out;
}

void bench::printHeading(const std::string &Title,
                         const std::string &Subtitle) {
  std::printf("\n=== %s ===\n", Title.c_str());
  if (!Subtitle.empty())
    std::printf("%s\n", Subtitle.c_str());
  std::printf("\n");
}
