//===- bench/table4_pattern_breakdown.cpp ---------------------------------==//
//
// Regenerates Table 4 (Python) and the matching Section 5.3 statistics
// (Java): a manual inspection of 100 reports per pattern type with a
// breakdown of code quality issue categories, plus the per-type report
// distribution percentages of Sections 5.2/5.3.
//
// Paper reference (Table 4, Python, 100 reports each):
//            Consistency  Confusing word
//   Semantic       1            9
//   Quality       71           53
//   FP            28           38
// and ~29% of reports from consistency / ~81% from confusing word
// patterns (10% both). Java: 14.5% / 91.7% (6.2% both).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Rng.h"

#include <cstdio>
#include <map>

using namespace namer;
using namespace namer::bench;
using corpus::InspectionOutcome;

namespace {

void breakdownFor(corpus::Language Lang, const char *Name) {
  corpus::Corpus C = makeCorpus(Lang);
  corpus::InspectionOracle Oracle(C);
  EvaluatedPipeline E = runEvaluation(C, Oracle, Ablation::Full);
  NamerPipeline &P = *E.Pipeline;

  // Distribution of reports per pattern type: fraction of reported fixes
  // found by consistency / confusing-word patterns (some by both).
  std::map<uint64_t, unsigned> FixKinds; // (stmt, prefix) -> kind bitmask
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    if (!P.classify(V))
      continue;
    uint64_t Key = (static_cast<uint64_t>(R.Stmt) << 20) ^ R.Line;
    FixKinds[Key] |= R.Kind == PatternKind::Consistency ? 1u : 2u;
  }
  size_t Total = FixKinds.size(), FromCons = 0, FromConf = 0, FromBoth = 0;
  for (const auto &[Key, Mask] : FixKinds) {
    (void)Key;
    FromCons += (Mask & 1u) != 0;
    FromConf += (Mask & 2u) != 0;
    FromBoth += Mask == 3u;
  }
  if (Total == 0)
    Total = 1;
  std::printf("%s report distribution: %.0f%% consistency, %.0f%% confusing "
              "word, %.0f%% detected by both\n\n",
              Name, 100.0 * FromCons / Total, 100.0 * FromConf / Total,
              100.0 * FromBoth / Total);

  // 100 inspected reports per pattern type.
  struct Bucket {
    size_t Semantic = 0, Quality = 0, FalsePositive = 0;
    std::map<corpus::IssueCategory, size_t> Categories;
  };
  std::map<PatternKind, Bucket> Buckets;
  Rng Sampler(4242);
  std::vector<size_t> Order(P.violations().size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  Sampler.shuffle(Order);
  for (size_t Idx : Order) {
    const Violation &V = P.violations()[Idx];
    if (!P.classify(V))
      continue;
    Report R = P.makeReport(V);
    Bucket &B = Buckets[R.Kind];
    if (B.Semantic + B.Quality + B.FalsePositive >= 100)
      continue;
    auto Out = Oracle.inspect(R.File, R.Line, R.Original, R.Suggested);
    switch (Out.Result) {
    case InspectionOutcome::Verdict::SemanticDefect:
      ++B.Semantic;
      break;
    case InspectionOutcome::Verdict::CodeQualityIssue:
      ++B.Quality;
      ++B.Categories[Out.Category];
      break;
    case InspectionOutcome::Verdict::FalsePositive:
      ++B.FalsePositive;
      break;
    }
  }

  TextTable Table;
  Table.setHeader({"Inspection outcome", "Consistency", "Confusing word"});
  auto &Cons = Buckets[PatternKind::Consistency];
  auto &Conf = Buckets[PatternKind::ConfusingWord];
  Table.addRow({"Semantic defect", std::to_string(Cons.Semantic),
                std::to_string(Conf.Semantic)});
  Table.addRow({"Code quality issue", std::to_string(Cons.Quality),
                std::to_string(Conf.Quality)});
  Table.addRow({"False positive", std::to_string(Cons.FalsePositive),
                std::to_string(Conf.FalsePositive)});
  Table.addSeparator();
  for (corpus::IssueCategory Cat :
       {corpus::IssueCategory::ConfusingName,
        corpus::IssueCategory::IndescriptiveName,
        corpus::IssueCategory::InconsistentName,
        corpus::IssueCategory::MinorIssue, corpus::IssueCategory::Typo}) {
    Table.addRow({std::string(corpus::issueCategoryName(Cat)),
                  std::to_string(Cons.Categories[Cat]),
                  std::to_string(Conf.Categories[Cat])});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\n");
}

} // namespace

int main() {
  printHeading("Table 4: per-pattern-type inspection (100 reports each)",
               "Plus the Section 5.2/5.3 report distribution per pattern "
               "type.");
  std::printf("--- Python ---\n");
  breakdownFor(corpus::Language::Python, "Python");
  std::printf("--- Java (Section 5.3 statistics) ---\n");
  breakdownFor(corpus::Language::Java, "Java");
  std::printf("Expected shape (paper): confusing-word patterns recover more "
              "semantic\ndefects; consistency patterns produce fewer false "
              "positives.\n");
  return 0;
}
