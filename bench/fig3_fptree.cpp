//===- bench/fig3_fptree.cpp ----------------------------------------------==//
//
// Regenerates Figure 3: the example FP-tree (a) and the name patterns
// extracted from it by Algorithm 2 (b):
//
//   Condition        Deduction   Count
//   NP1              NP2         33
//   NP1, NP3         NP5         15
//   NP1, NP3         NP4         14
//   NP1, NP3, NP4    NP6         13
//
// The FP-tree is driven with the exact insertion lists of the figure;
// Algorithm 2's traversal (deduction = the final visited path at each
// generation point) reads the patterns back.
//
//===----------------------------------------------------------------------===//

#include "pattern/FPTree.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace namer;

namespace {

struct Extracted {
  std::vector<PathId> Condition;
  PathId Deduction;
  uint32_t Count;
};

/// Algorithm 2 for confusing word patterns: DFS; at each isLast node the
/// deduction is the last visited item and the condition the rest.
void genPatterns(const FPTree &Tree, FPTree::FPNodeId Node,
                 std::vector<PathId> &Visited,
                 std::vector<Extracted> &Out) {
  const FPTree::FPNode &Nd = Tree.node(Node);
  if (Node != FPTree::RootId)
    Visited.push_back(Nd.Item);
  if (Nd.IsLast && !Visited.empty())
    Out.push_back(Extracted{
        std::vector<PathId>(Visited.begin(), Visited.end() - 1),
        Visited.back(), Nd.Count});
  // Deterministic child order for the printout.
  std::vector<std::pair<PathId, FPTree::FPNodeId>> Kids(
      Nd.Children.begin(), Nd.Children.end());
  std::sort(Kids.begin(), Kids.end());
  for (const auto &[Item, Child] : Kids) {
    (void)Item;
    genPatterns(Tree, Child, Visited, Out);
  }
  if (Node != FPTree::RootId)
    Visited.pop_back();
}

} // namespace

int main() {
  std::printf("=== Figure 3: FP-tree mining example ===\n\n");

  // Path ids 1..6 stand for NP1..NP6.
  FPTree Tree;
  for (int I = 0; I < 33; ++I)
    Tree.update({1, 2});
  for (int I = 0; I < 15; ++I)
    Tree.update({1, 3, 5});
  Tree.update({1, 3, 4});
  for (int I = 0; I < 13; ++I)
    Tree.update({1, 3, 4, 6});

  std::printf("(a) FP-tree nodes (item: count, isLast):\n");
  // Walk and print the tree structure.
  struct Visit {
    FPTree::FPNodeId Node;
    int Depth;
  };
  std::vector<Visit> Stack{{FPTree::RootId, -1}};
  while (!Stack.empty()) {
    Visit V = Stack.back();
    Stack.pop_back();
    const FPTree::FPNode &Nd = Tree.node(V.Node);
    if (V.Node != FPTree::RootId)
      std::printf("  %*sNP%u: %u%s\n", V.Depth * 2, "", Nd.Item, Nd.Count,
                  Nd.IsLast ? " [isLast]" : "");
    std::vector<std::pair<PathId, FPTree::FPNodeId>> Kids(
        Nd.Children.begin(), Nd.Children.end());
    std::sort(Kids.rbegin(), Kids.rend());
    for (const auto &[Item, Child] : Kids) {
      (void)Item;
      Stack.push_back({Child, V.Depth + 1});
    }
  }

  std::vector<Extracted> Patterns;
  std::vector<PathId> Visited;
  genPatterns(Tree, FPTree::RootId, Visited, Patterns);
  std::sort(Patterns.begin(), Patterns.end(),
            [](const Extracted &A, const Extracted &B) {
              return A.Count > B.Count;
            });

  std::printf("\n(b) Extracted name patterns:\n\n");
  TextTable Out;
  Out.setHeader({"Condition", "Deduction", "Count"});
  for (const Extracted &P : Patterns) {
    std::string Cond;
    for (PathId C : P.Condition) {
      if (!Cond.empty())
        Cond += ", ";
      Cond += "NP" + std::to_string(C);
    }
    Out.addRow({Cond.empty() ? "(empty)" : Cond,
                "NP" + std::to_string(P.Deduction),
                std::to_string(P.Count)});
  }
  std::fputs(Out.render().c_str(), stdout);
  std::printf("\nPaper Figure 3(b): (NP1 -> NP2, 33), (NP1,NP3 -> NP5, 15), "
              "(NP1,NP3 -> NP4, 14), (NP1,NP3,NP4 -> NP6, 13).\n");
  return 0;
}
