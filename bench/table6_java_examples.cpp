//===- bench/table6_java_examples.cpp -------------------------------------==//
//
// Regenerates Table 6: example reports by Namer for Java.
//
//   1  e.getStackTrace();                       -> print    (semantic)
//   2  for (double i = 1; i < chainlength; i++) -> int      (semantic)
//   3  } catch (Throwable e) {                  -> Exception (semantic)
//   5  context.startActivity(i);                -> intent   (quality)
//   6  progDialog.dismiss();                    -> progress (quality)
//   7  StringWriter outputWriter = ...          -> string   (false positive)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

int main() {
  printHeading("Table 6: example reports by Namer for Java",
               "Patterns mined from the simulated Big Code corpus, applied "
               "to the paper's example statements.");

  corpus::Corpus C = makeCorpus(corpus::Language::Java);
  corpus::Repository Examples;
  Examples.Name = "paper-examples";
  corpus::SourceFile F;
  F.Path = "examples/Table6.java";
  F.Text =
      "public class Table6 extends Activity {\n"
      "    public void runChain() {\n"
      "        try {\n"
      "            this.worker.run();\n"
      "        } catch (Throwable e) {\n"
      "            e.getStackTrace();\n"
      "        }\n"
      "    }\n"
      "    public static int sumChain(int[] links) {\n"
      "        int total = 0;\n"
      "        for (double i = 1; i < links.length; i++) {\n"
      "            total = total + 7;\n"
      "        }\n"
      "        return total;\n"
      "    }\n"
      "    public void openPicture(Context context) {\n"
      "        Intent i = new Intent();\n"
      "        i.putExtra(\"picture\", this.picture);\n"
      "        context.startActivity(i);\n"
      "    }\n"
      "    public void finishUpload() {\n"
      "        ProgressDialog progDialog = new ProgressDialog();\n"
      "        progDialog.dismiss();\n"
      "    }\n"
      "    public String renderReport() {\n"
      "        StringWriter outputWriter = new StringWriter();\n"
      "        outputWriter.write(this.report);\n"
      "        return outputWriter.toString();\n"
      "    }\n"
      "}\n";
  Examples.Files.push_back(F);
  C.Repos.push_back(Examples);

  corpus::InspectionOracle Oracle(C);
  EvaluatedPipeline E = runEvaluation(C, Oracle, Ablation::NoClassifier);
  NamerPipeline &P = *E.Pipeline;

  TextTable Table;
  Table.setHeader({"Line", "File", "Original", "Suggested fix", "Pattern"});
  size_t Found = 0;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    if (R.File != "examples/Table6.java")
      continue;
    ++Found;
    Table.addRow({std::to_string(R.Line), R.File, R.Original, R.Suggested,
                  R.Kind == PatternKind::Consistency ? "consistency"
                                                     : "confusing word"});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\n%zu reports on the example file. Expected fixes: get->"
              "print, double->int,\nThrowable->Exception, i->intent, prog->"
              "progress, plus the outputWriter\nconsistency false "
              "positive.\n",
              Found);
  return 0;
}
