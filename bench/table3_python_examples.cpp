//===- bench/table3_python_examples.cpp -----------------------------------==//
//
// Regenerates Table 3: example reports by Namer for Python. The pipeline
// is mined on the standard corpus, then pointed at curated files
// reproducing the paper's examples; the bench prints each reported
// statement and suggested fix.
//
//   1  self.assertTrue(vec, 4)            -> Equal     (semantic)
//   2  for i in xrange(10)                -> range     (semantic)
//   3  self.assertEquals(3, val)          -> Equal     (semantic)
//   5  def evolve(self, ..., **args)      -> kwargs    (quality)
//   6  self.sz = N.array(sz)              -> np        (quality)
//   7  assertTrue(os.path.islink(path))   -> exists    (false positive)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

int main() {
  printHeading("Table 3: example reports by Namer for Python",
               "Patterns mined from the simulated Big Code corpus, applied "
               "to the paper's example statements.");

  // Mine patterns once on a corpus whose last repository holds the example
  // files, so statements get file/repo-level statistics like any other.
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  corpus::Repository Examples;
  Examples.Name = "paper-examples";
  corpus::SourceFile F;
  F.Path = "examples/table3.py";
  F.Text = "import os\n"
           "from unittest import TestCase\n"
           "import numpy as N\n"
           "\n"
           "class TestVectors(TestCase):\n"
           "    def test_vec(self):\n"
           "        self.assertTrue(self.vec.coord, 4)\n"
           "    def test_val(self):\n"
           "        self.assertEquals(self.box.val, 3)\n"
           "    def test_link(self):\n"
           "        self.assertTrue(os.path.islink(self.archive_path))\n"
           "\n"
           "class Evolver(object):\n"
           "    def evolve(self, **args):\n"
           "        self.update(**args)\n"
           "    def resize(self, sz):\n"
           "        self.sz = N.array(sz)\n"
           "\n"
           "def scan_items(items):\n"
           "    total = 0\n"
           "    for i in xrange(len(items)):\n"
           "        total = total + items[i].weight\n"
           "    return total\n";
  Examples.Files.push_back(F);
  C.Repos.push_back(Examples);

  corpus::InspectionOracle Oracle(C);
  EvaluatedPipeline E = runEvaluation(C, Oracle, Ablation::NoClassifier);
  NamerPipeline &P = *E.Pipeline;

  TextTable Table;
  Table.setHeader({"Line", "Reported statement context", "Original",
                   "Suggested fix", "Pattern"});
  size_t Found = 0;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    if (R.File != "examples/table3.py")
      continue;
    ++Found;
    Table.addRow({std::to_string(R.Line), R.File, R.Original, R.Suggested,
                  R.Kind == PatternKind::Consistency ? "consistency"
                                                     : "confusing word"});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\n%zu reports on the example file. Expected fixes: True->"
              "Equal, Equals->Equal,\nxrange->range, args->kwargs, N->np, "
              "plus the islink->exists false positive.\n",
              Found);
  return 0;
}
