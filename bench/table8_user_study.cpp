//===- bench/table8_user_study.cpp ----------------------------------------==//
//
// Regenerates Tables 7 and 8: the Section 5.4 user study. The original
// study showed 5 code-quality reports (one per Table 4 category) to 7
// professional developers and asked at what condition they would accept
// each fix. Humans are unavailable here, so this bench SIMULATES the study
// with developer personas whose acceptance propensities are calibrated to
// the published response distribution; the simulation is labeled as such
// (DESIGN.md, substitution 4).
//
// Paper reference (Table 8; 7 responses per category):
//   Category        Not accepted  IDE plugin  Pull request  Fix manually
//   Confusing            0            3            2             2
//   Indescriptive        0            3            2             2
//   Inconsistent         2            0            4             1
//   Minor issue          2            4            0             1
//   Typo                 1            2            1             3
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "support/Rng.h"
#include "support/TextTable.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace namer;

namespace {

/// One developer persona: relative propensity toward each response kind,
/// per issue severity class.
struct Persona {
  const char *Name;
  double Tooling;   ///< affinity for automation (IDE/PR) vs manual
  double Tolerance; ///< how often low-severity reports are rejected
};

/// Acceptance-condition categories of the study.
enum Response { NotAccepted, IdePlugin, PullRequest, FixManually };

/// Per-category severity priors, shaped after the study's findings:
/// renaming-style issues are accepted but only with tool support;
/// inconsistent names are polarizing; typos are often fixed by hand.
struct CategoryProfile {
  corpus::IssueCategory Category;
  double RejectBias;  ///< baseline probability of rejection
  double ManualBias;  ///< probability a fix is worth manual effort
  double PrBias;      ///< preference for a PR over an IDE hint
};

} // namespace

int main() {
  std::printf("=== Tables 7+8: user study on code quality issue severity "
              "===\n");
  std::printf("SIMULATED: persona model replaying the study protocol (7 "
              "developers x 5\nreports); see DESIGN.md substitution 4.\n\n");

  const CategoryProfile Profiles[] = {
      {corpus::IssueCategory::ConfusingName, 0.05, 0.60, 0.40},
      {corpus::IssueCategory::IndescriptiveName, 0.05, 0.60, 0.40},
      {corpus::IssueCategory::InconsistentName, 0.30, 0.35, 0.80},
      {corpus::IssueCategory::MinorIssue, 0.30, 0.30, 0.10},
      {corpus::IssueCategory::Typo, 0.15, 0.90, 0.35},
  };
  const Persona Developers[] = {
      {"dev-a", 0.9, 0.1}, {"dev-b", 0.7, 0.3}, {"dev-c", 0.8, 0.2},
      {"dev-d", 0.5, 0.5}, {"dev-e", 0.6, 0.2}, {"dev-f", 0.9, 0.4},
      {"dev-g", 0.4, 0.1},
  };

  Rng G(20210625); // last day of PLDI'21

  TextTable Table;
  Table.setHeader({"Issue category", "Not accepted", "Accepted w/ IDE plugin",
                   "Accepted w/ pull request", "Would even fix manually"});
  size_t TotalNotAccepted = 0, TotalManual = 0;
  for (const CategoryProfile &Profile : Profiles) {
    size_t Counts[4] = {0, 0, 0, 0};
    for (const Persona &Dev : Developers) {
      Response R;
      if (G.chance(Profile.RejectBias + Dev.Tolerance * 0.3)) {
        R = NotAccepted;
      } else if (G.chance(Profile.ManualBias * (1.0 - Dev.Tooling))) {
        R = FixManually;
      } else {
        R = G.chance(Profile.PrBias) ? PullRequest : IdePlugin;
      }
      ++Counts[R];
    }
    TotalNotAccepted += Counts[NotAccepted];
    TotalManual += Counts[FixManually];
    Table.addRow({std::string(corpus::issueCategoryName(Profile.Category)),
                  std::to_string(Counts[NotAccepted]),
                  std::to_string(Counts[IdePlugin]),
                  std::to_string(Counts[PullRequest]),
                  std::to_string(Counts[FixManually])});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nOf %zu responses, %zu rejected an issue and %zu would fix "
              "one manually.\nPaper: 5 rejections and 9 manual fixes out of "
              "35; most acceptances require\ntool support (IDE plugin or "
              "automatic pull request), which motivates Namer.\n",
              sizeof(Profiles) / sizeof(Profiles[0]) *
                  (sizeof(Developers) / sizeof(Developers[0])),
              TotalNotAccepted, TotalManual);
  return 0;
}
