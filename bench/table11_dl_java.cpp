//===- bench/table11_dl_java.cpp ------------------------------------------==//
//
// Regenerates Table 11: precision comparison of GGNN, Great and Namer on
// randomly selected reports for Java.
//
// Paper reference (Table 11, 97 reports):
//   GGNN    2 semantic   7 quality   88 FP    9%
//   Great   2 semantic   3 quality   92 FP    5%
//   Namer   2 semantic  64 quality   31 FP   68%
//
//===----------------------------------------------------------------------===//

#include "DlComparison.h"

int main() {
  return namer::bench::runDlComparison(namer::corpus::Language::Java,
                                       "Table 11 (Java)");
}
