//===- bench/stats_mining_cv.cpp ------------------------------------------==//
//
// Regenerates the Section 5.1-5.3 statistics that are reported in prose
// rather than a numbered table:
//
//   * mined pattern counts and corpus coverage (Python: 65,619 patterns;
//     496,306 violating statements; 50% of files and 92% of repositories
//     with a violation. Java: 79,417 patterns; 1.8M violations; 11% of
//     files, 77% of repositories);
//   * confusing word pair counts (950K Java / 150K Python at GitHub scale);
//   * the 30x repeated 80/20 cross-validation of the classifier (Python:
//     81/81/81/80; Java: 90/90/90/89 accuracy/precision/recall/F1) and the
//     model-family selection;
//   * ablation sweeps over the design knobs DESIGN.md calls out: the
//     pruneUncommon satisfaction ratio and the minimum pattern support.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

namespace {

void statsFor(corpus::Language Lang, const char *Name) {
  std::printf("--- %s ---\n\n", Name);
  corpus::Corpus C = makeCorpus(Lang);
  corpus::InspectionOracle Oracle(C);
  EvaluatedPipeline E = runEvaluation(C, Oracle, Ablation::Full);
  NamerPipeline &P = *E.Pipeline;

  size_t Consistency = 0, Confusing = 0;
  for (const NamePattern &Pt : P.patterns())
    (Pt.Kind == PatternKind::Consistency ? Consistency : Confusing)++;

  std::unordered_set<StmtId> ViolatingStmts;
  for (const Violation &V : P.violations())
    ViolatingStmts.insert(V.Stmt);

  TextTable Stats;
  Stats.setHeader({"Statistic", "Value"});
  Stats.addRow({"files", std::to_string(P.numFiles())});
  Stats.addRow({"repositories", std::to_string(P.numRepos())});
  Stats.addRow({"statements", std::to_string(P.statements().size())});
  Stats.addRow({"mined name patterns", std::to_string(P.patterns().size())});
  Stats.addRow({"  consistency", std::to_string(Consistency)});
  Stats.addRow({"  confusing word", std::to_string(Confusing)});
  Stats.addRow({"confusing word pairs", std::to_string(P.pairs().numPairs())});
  Stats.addRow({"violations", std::to_string(P.violations().size())});
  Stats.addRow({"violating statements",
                std::to_string(ViolatingStmts.size())});
  Stats.addRow(
      {"files with a violation",
       std::to_string(P.numFilesWithViolations()) + " (" +
           TextTable::formatPercent(
               static_cast<double>(P.numFilesWithViolations()) /
               static_cast<double>(P.numFiles())) +
           ")"});
  Stats.addRow(
      {"repos with a violation",
       std::to_string(P.numReposWithViolations()) + " (" +
           TextTable::formatPercent(
               static_cast<double>(P.numReposWithViolations()) /
               static_cast<double>(P.numRepos())) +
           ")"});
  std::fputs(Stats.render().c_str(), stdout);

  std::printf("\nClassifier cross-validation (30x random 80/20 splits):\n");
  TextTable Cv;
  Cv.setHeader({"Model", "Accuracy", "Precision", "Recall", "F1"});
  for (const auto &[Family, M] : P.classifier().selectionResults())
    Cv.addRow({Family + (Family == P.classifier().selectedFamily()
                             ? " (selected)"
                             : ""),
               TextTable::formatPercent(M.Accuracy),
               TextTable::formatPercent(M.Precision),
               TextTable::formatPercent(M.Recall),
               TextTable::formatPercent(M.F1)});
  std::fputs(Cv.render().c_str(), stdout);
  std::printf("\n");
}

/// Ablation: sweep the pruneUncommon knobs and report pattern/violation
/// counts, exposing the recall/precision trade-off the paper discusses in
/// Section 2 ("Classifying violated patterns").
void sweepMiningKnobs(corpus::Language Lang, const char *Name) {
  std::printf("--- %s: mining-threshold ablation ---\n\n", Name);
  corpus::Corpus C = makeCorpus(Lang);
  corpus::InspectionOracle Oracle(C);

  TextTable Sweep;
  Sweep.setHeader({"min support", "min ratio", "patterns", "violations",
                   "violation FP rate"});
  for (uint32_t Support : {20u, 40u, 80u}) {
    for (double Ratio : {0.7, 0.8, 0.9}) {
      PipelineConfig Config;
      Config.Miner.MinPatternSupport = Support;
      Config.Miner.MinSatisfactionRatio = Ratio;
      NamerPipeline P(Config);
      P.build(C);
      size_t FalsePositives = 0;
      for (const Violation &V : P.violations()) {
        Report R = P.makeReport(V);
        auto Out = Oracle.inspect(R.File, R.Line, R.Original, R.Suggested);
        FalsePositives +=
            Out.Result ==
            corpus::InspectionOutcome::Verdict::FalsePositive;
      }
      double FpRate = P.violations().empty()
                          ? 0.0
                          : static_cast<double>(FalsePositives) /
                                static_cast<double>(P.violations().size());
      Sweep.addRow({std::to_string(Support), TextTable::formatDouble(Ratio, 1),
                    std::to_string(P.patterns().size()),
                    std::to_string(P.violations().size()),
                    TextTable::formatPercent(FpRate)});
    }
  }
  std::fputs(Sweep.render().c_str(), stdout);
  std::printf("\nLower thresholds trigger more violations at a higher false "
              "positive rate --\nthe trade-off the defect classifier "
              "resolves (Section 2).\n\n");
}

} // namespace

int main() {
  printHeading("Sections 5.1-5.3: mining statistics and cross-validation",
               "Pattern counts, corpus coverage, confusing word pairs, "
               "classifier CV, and threshold ablations.");
  statsFor(corpus::Language::Python, "Python");
  statsFor(corpus::Language::Java, "Java");
  sweepMiningKnobs(corpus::Language::Python, "Python");
  return 0;
}
