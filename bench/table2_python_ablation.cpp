//===- bench/table2_python_ablation.cpp -----------------------------------==//
//
// Regenerates Table 2: precision of Namer and its ablations on 300
// randomly selected violations from the Python dataset. "C" is the defect
// classifier, "A" the static analyses.
//
// Paper reference (Table 2):
//   Namer      134 reports   5 semantic   89 quality   40 FP   70%
//   w/o C      300 reports  13 semantic  124 quality  163 FP   46%
//   w/o A       88 reports   2 semantic   50 quality   36 FP   59%
//   w/o C & A  300 reports  12 semantic  108 quality  180 FP   40%
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

int main() {
  printHeading("Table 2: Python precision of Namer and ablations",
               "300 randomly selected violations per baseline; reports "
               "inspected by the corpus oracle.");

  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  corpus::InspectionOracle Oracle(C);

  TextTable Table;
  Table.setHeader({"Baseline", "Report", "Semantic defect",
                   "Code quality issue", "False positive", "Precision"});
  for (Ablation A :
       {Ablation::Full, Ablation::NoClassifier, Ablation::NoAnalyses,
        Ablation::NoClassifierNoAnalyses}) {
    EvaluatedPipeline E = runEvaluation(C, Oracle, A);
    const EvaluationResult &R = E.Result;
    Table.addRow({std::string(ablationName(A)),
                  std::to_string(R.numReports()),
                  std::to_string(R.numSemantic()),
                  std::to_string(R.numQuality()),
                  std::to_string(R.numFalsePositives()),
                  TextTable::formatPercent(R.precision())});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nExpected shape (paper): Namer's precision well above every "
              "ablation;\nremoving the classifier floods reports with false "
              "positives; removing the\nanalyses loses issues and "
              "precision.\n");
  return 0;
}
