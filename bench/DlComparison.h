//===- bench/DlComparison.h - Tables 10/11 shared driver --------*- C++ -*-==//
///
/// \file
/// The Section 5.6 experiment, shared by the Python (Table 10) and Java
/// (Table 11) benches: train GGNN and Great on synthetic variable-misuse
/// bugs, confirm they reach high accuracy on held-out synthetic bugs, then
/// run them and Namer over the unmodified corpus and compare precision on
/// inspected reports. The confidence knob makes the networks report ~5x
/// fewer issues than Namer, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_BENCH_DLCOMPARISON_H
#define NAMER_BENCH_DLCOMPARISON_H

#include "corpus/Corpus.h"

namespace namer {
namespace bench {

/// Runs the full comparison and prints the table. Returns 0 on success.
int runDlComparison(corpus::Language Lang, const char *TableName);

} // namespace bench
} // namespace namer

#endif // NAMER_BENCH_DLCOMPARISON_H
