//===- bench/table9_weights.cpp -------------------------------------------==//
//
// Regenerates Table 9: feature weights of the learned defect classifier,
// averaged over the Python and Java classifiers, for the three multi-level
// feature families (identical statements, satisfaction counts, violation
// counts) at file / repository / dataset level.
//
// Paper reference (Table 9):
//   Feature              File     Repo     Dataset
//   Identical statement  0.6345  -2.854    -
//   Satisfaction count   1.86     0.468   -0.7305
//   Violation count     -1.121   -1.0655   1.5565
//
// The headline observation: the same feature family can contribute with
// OPPOSITE signs at different levels (e.g. violations local to a file
// argue for a real issue, while globally noisy patterns argue against).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

int main() {
  printHeading("Table 9: feature weights of the learned classifier",
               "Averaged over the trained Python and Java classifiers; "
               "weights act on standardized features.");

  std::vector<double> Sum(NumViolationFeatures, 0.0);
  for (corpus::Language Lang :
       {corpus::Language::Python, corpus::Language::Java}) {
    corpus::Corpus C = makeCorpus(Lang);
    corpus::InspectionOracle Oracle(C);
    EvaluatedPipeline E = runEvaluation(C, Oracle, Ablation::Full);
    std::vector<double> W = E.Pipeline->classifier().featureWeights();
    for (size_t I = 0; I != NumViolationFeatures; ++I)
      Sum[I] += W[I] / 2.0;
  }

  // Table 9 rows: features 2-3 (identical stmts), 10-12 (satisfaction
  // counts), 7-9 (violation counts); indices are 0-based in the vector.
  TextTable Table;
  Table.setHeader({"Feature", "File level", "Repo level", "Entire dataset"});
  Table.addRow({"Identical statement", TextTable::formatDouble(Sum[1], 3),
                TextTable::formatDouble(Sum[2], 3), "-"});
  Table.addRow({"Satisfaction count", TextTable::formatDouble(Sum[9], 3),
                TextTable::formatDouble(Sum[10], 3),
                TextTable::formatDouble(Sum[11], 3)});
  Table.addRow({"Violation count", TextTable::formatDouble(Sum[6], 3),
                TextTable::formatDouble(Sum[7], 3),
                TextTable::formatDouble(Sum[8], 3)});
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nAll 17 feature weights:\n");
  TextTable Full;
  Full.setHeader({"#", "Feature", "Weight"});
  for (size_t I = 0; I != NumViolationFeatures; ++I)
    Full.addRow({std::to_string(I + 1), ViolationFeatureNames[I],
                 TextTable::formatDouble(Sum[I], 3)});
  std::fputs(Full.render().c_str(), stdout);

  // The paper's qualitative claim: some feature family flips sign across
  // levels (any pair of levels within one family).
  auto FamilyFlips = [&](size_t A, size_t B, size_t Cc) {
    return Sum[A] * Sum[B] < 0 || Sum[A] * Sum[Cc] < 0 ||
           Sum[B] * Sum[Cc] < 0;
  };
  bool SignFlip = FamilyFlips(6, 7, 8) || FamilyFlips(9, 10, 11) ||
                  FamilyFlips(3, 4, 5) || Sum[1] * Sum[2] < 0;
  std::printf("\nSign flip across levels within a feature family: %s "
              "(paper: yes -- jointly\nconsidering local and global "
              "statistics is key to the classifier).\n",
              SignFlip ? "YES" : "no");
  return 0;
}
