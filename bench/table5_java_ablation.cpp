//===- bench/table5_java_ablation.cpp -------------------------------------==//
//
// Regenerates Table 5: precision of Namer and its ablations on 300
// randomly selected violations from the Java dataset.
//
// Paper reference (Table 5):
//   Namer       97 reports   2 semantic   64 quality   31 FP   68%
//   w/o C      300 reports   2 semantic   90 quality  208 FP   31%
//   w/o A      138 reports   0 semantic   66 quality   72 FP   48%
//   w/o C & A  300 reports   0 semantic   87 quality  213 FP   29%
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace namer;
using namespace namer::bench;

int main() {
  printHeading("Table 5: Java precision of Namer and ablations",
               "300 randomly selected violations per baseline; reports "
               "inspected by the corpus oracle.");

  corpus::Corpus C = makeCorpus(corpus::Language::Java);
  corpus::InspectionOracle Oracle(C);

  TextTable Table;
  Table.setHeader({"Baseline", "Report", "Semantic defect",
                   "Code quality issue", "False positive", "Precision"});
  for (Ablation A :
       {Ablation::Full, Ablation::NoClassifier, Ablation::NoAnalyses,
        Ablation::NoClassifierNoAnalyses}) {
    EvaluatedPipeline E = runEvaluation(C, Oracle, A);
    const EvaluationResult &R = E.Result;
    Table.addRow({std::string(ablationName(A)),
                  std::to_string(R.numReports()),
                  std::to_string(R.numSemantic()),
                  std::to_string(R.numQuality()),
                  std::to_string(R.numFalsePositives()),
                  TextTable::formatPercent(R.precision())});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nExpected shape (paper): same ordering as Python (Table 2), "
              "with the\nunfiltered baselines even less precise on Java.\n");
  return 0;
}
