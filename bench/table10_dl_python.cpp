//===- bench/table10_dl_python.cpp ----------------------------------------==//
//
// Regenerates Table 10: precision comparison of GGNN, Great and Namer on
// randomly selected reports for Python.
//
// Paper reference (Table 10, 134 reports):
//   GGNN    1 semantic   20 quality   113 FP   16%
//   Great   2 semantic    9 quality   123 FP    8%
//   Namer   5 semantic   89 quality    40 FP   70%
//
//===----------------------------------------------------------------------===//

#include "DlComparison.h"

int main() {
  return namer::bench::runDlComparison(namer::corpus::Language::Python,
                                       "Table 10 (Python)");
}
