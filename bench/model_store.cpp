//===- bench/model_store.cpp - model store / warm scan throughput ---------==//
//
// Measures the mine-once / scan-many split (DESIGN.md, "Model store &
// incremental scan") on the deterministic bench corpus:
//
//   cold        NamerPipeline::build — parse + analyses + mine + prune +
//               scan, the price --model-in amortizes away
//   warm        loadModel + scanWith on an unchanged corpus — every file
//               replays from the manifest, no mining at all
//   incremental loadModel + scanWith after dirtying ~1% of the files —
//               only the dirty set is re-ingested (counter-verified)
//
// Emits BENCH_model.json in the telemetry stats schema with the three
// timings, the speedups, the model size, and the incremental file-change
// counters. As a side effect it cross-checks the persistence contract:
// cold, warm and incremental-vs-full-rescan reports must be identical
// (warm/cold byte-identity; the incremental run is compared against a
// UseCache=false full rescan of the same dirty corpus).
//
//   model_store [--out=PATH] [--runs=N] [--lang=python|java] [--threads=N]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "namer/ModelStore.h"
#include "namer/Pipeline.h"
#include "support/MemoryTracker.h"
#include "support/Profiler.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace namer;
using namespace namer::bench;

#ifndef NAMER_SOURCE_DIR
#define NAMER_SOURCE_DIR "."
#endif

namespace {

double elapsedMillis(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

uint64_t counterValue(const char *Name) {
  for (const auto &[N, V] : telemetry::metrics().snapshot())
    if (N == Name)
      return V;
  return 0;
}

std::vector<std::string> renderedReports(const NamerPipeline &P) {
  std::vector<std::string> Out;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    Out.push_back(R.File + ":" + std::to_string(R.Line) + " " + R.Original +
                  " -> " + R.Suggested);
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = std::string(NAMER_SOURCE_DIR) + "/BENCH_model.json";
  corpus::Language Lang = corpus::Language::Python;
  size_t Runs = 3;
  unsigned Threads = 0;
  std::string ProfileOut;
  unsigned ProfileHz = 97;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(std::strlen("--out="));
    } else if (Arg.rfind("--runs=", 0) == 0) {
      Runs = std::max<size_t>(
          1, std::strtoul(Arg.c_str() + std::strlen("--runs="), nullptr, 10));
    } else if (Arg == "--lang=python") {
      Lang = corpus::Language::Python;
    } else if (Arg == "--lang=java") {
      Lang = corpus::Language::Java;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Threads = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (Arg.rfind("--profile-out=", 0) == 0) {
      ProfileOut = Arg.substr(std::strlen("--profile-out="));
    } else if (Arg.rfind("--profile-hz=", 0) == 0) {
      ProfileHz = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--profile-hz="), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=PATH] [--runs=N] [--lang=python|java] "
                   "[--threads=N] [--profile-out=FILE] [--profile-hz=N]\n",
                   Argv[0]);
      return 2;
    }
  }

  // Declared before any pipeline below: pools join before the profiler
  // uninstalls its span hook.
  std::unique_ptr<prof::Profiler> Prof;
  if (!ProfileOut.empty()) {
    prof::ProfilerOptions PO;
    PO.SampleOnSpanClose = true;
    PO.SampleHz = ProfileHz;
    Prof = std::make_unique<prof::Profiler>(PO);
  }

  printHeading("Model store / warm scan",
               "cold mine vs warm load+scan vs incremental 1%-dirty "
               "(min of " + std::to_string(Runs) + " run(s))");

  corpus::Corpus C = makeCorpus(Lang);
  size_t NumFiles = 0;
  for (const corpus::Repository &R : C.Repos)
    NumFiles += R.Files.size();

  PipelineConfig PC;
  PC.Threads = Threads;

  std::string ModelPath =
      (std::filesystem::temp_directory_path() / "namer-bench-model.nmr")
          .string();

  // Warm-up cold build: faults in corpus + code, and produces the model
  // every warm run loads.
  std::vector<std::string> ColdReports;
  {
    NamerPipeline P(PC);
    P.build(C);
    P.saveModel(ModelPath);
    ColdReports = renderedReports(P);
  }
  telemetry::reset();

  // --- cold: full mine ---------------------------------------------------
  double ColdMillis = 0.0;
  for (size_t Run = 0; Run != Runs; ++Run) {
    NamerPipeline P(PC);
    auto Start = std::chrono::steady_clock::now();
    P.build(C);
    double Millis = elapsedMillis(Start);
    if (Run == 0 || Millis < ColdMillis)
      ColdMillis = Millis;
  }

  // --- warm: load + scan, corpus unchanged -------------------------------
  double WarmMillis = 0.0;
  for (size_t Run = 0; Run != Runs; ++Run) {
    NamerPipeline P(PC);
    auto Start = std::chrono::steady_clock::now();
    P.loadModel(ModelPath);
    P.scanWith(C);
    double Millis = elapsedMillis(Start);
    if (Run == 0 || Millis < WarmMillis)
      WarmMillis = Millis;
    if (renderedReports(P) != ColdReports) {
      std::fprintf(stderr, "FATAL: warm reports differ from cold build\n");
      return 1;
    }
  }

  // --- incremental: dirty ~1% of the files, rescan -----------------------
  corpus::Corpus Dirty = C;
  size_t Stride = std::max<size_t>(1, NumFiles / std::max<size_t>(
                                           1, (NumFiles + 99) / 100));
  size_t DirtyFiles = 0, FileIdx = 0;
  for (corpus::Repository &R : Dirty.Repos)
    for (corpus::SourceFile &F : R.Files) {
      if (FileIdx++ % Stride == 0) {
        F.Text += Lang == corpus::Language::Python ? "\n# touched\n"
                                                   : "\n// touched\n";
        F.View = {};
        F.Mapped = false;
        ++DirtyFiles;
      }
    }

  // Reference result: full UseCache=false rescan of the dirty corpus.
  std::vector<std::string> DirtyReports;
  {
    NamerPipeline P(PC);
    P.loadModel(ModelPath);
    P.scanWith(Dirty, /*UseCache=*/false);
    DirtyReports = renderedReports(P);
  }

  double IncMillis = 0.0;
  uint64_t Unchanged = 0, Modified = 0;
  for (size_t Run = 0; Run != Runs; ++Run) {
    telemetry::reset();
    NamerPipeline P(PC);
    auto Start = std::chrono::steady_clock::now();
    P.loadModel(ModelPath);
    P.scanWith(Dirty);
    double Millis = elapsedMillis(Start);
    if (Run == 0 || Millis < IncMillis)
      IncMillis = Millis;
    Unchanged = counterValue("incremental.files.unchanged");
    Modified = counterValue("incremental.files.modified");
    if (Modified != DirtyFiles || Unchanged != NumFiles - DirtyFiles) {
      std::fprintf(stderr,
                   "FATAL: incremental diff re-ingested the wrong set "
                   "(%llu modified, expected %zu)\n",
                   static_cast<unsigned long long>(Modified), DirtyFiles);
      return 1;
    }
    if (renderedReports(P) != DirtyReports) {
      std::fprintf(stderr,
                   "FATAL: incremental reports differ from full rescan\n");
      return 1;
    }
  }

  uint64_t ModelBytes = std::filesystem::file_size(ModelPath);
  double WarmSpeedup = ColdMillis / WarmMillis;
  double IncSpeedup = ColdMillis / IncMillis;

  std::printf("%-24s %12s %9s\n", "phase", "millis", "speedup");
  std::printf("%-24s %12.1f %8.2fx\n", "cold mine", ColdMillis, 1.0);
  std::printf("%-24s %12.1f %8.2fx\n", "warm load+scan", WarmMillis,
              WarmSpeedup);
  std::printf("%-24s %12.1f %8.2fx\n", "incremental (1% dirty)", IncMillis,
              IncSpeedup);
  std::printf("\nmodel: %llu bytes; incremental re-ingested %llu/%zu files "
              "(%llu unchanged)\n",
              static_cast<unsigned long long>(ModelBytes),
              static_cast<unsigned long long>(Modified), NumFiles,
              static_cast<unsigned long long>(Unchanged));
  std::printf("reports identical cold/warm and incremental/full: yes\n");

  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"cold_mine\": %.1f, \"warm_scan\": %.1f, \"incremental_scan\": "
      "%.1f}",
      ColdMillis, WarmMillis, IncMillis);

  telemetry::RunMeta Meta = telemetry::defaultMeta("model_store", Threads);
  Meta.Extra.emplace_back("benchmark", "\"model_store\"");
  Meta.Extra.emplace_back("corpus_files", std::to_string(NumFiles));
  Meta.Extra.emplace_back("runs_per_phase", std::to_string(Runs));
  Meta.Extra.emplace_back("phase_millis", Buf);
  Meta.Extra.emplace_back("model_bytes", std::to_string(ModelBytes));
  std::snprintf(Buf, sizeof(Buf), "%.3f", WarmSpeedup);
  Meta.Extra.emplace_back("warm_speedup_vs_cold", Buf);
  std::snprintf(Buf, sizeof(Buf), "%.3f", IncSpeedup);
  Meta.Extra.emplace_back("incremental_speedup_vs_cold", Buf);
  Meta.Extra.emplace_back("dirty_files", std::to_string(DirtyFiles));
  Meta.Extra.emplace_back("incremental_files_modified",
                          std::to_string(Modified));
  Meta.Extra.emplace_back("incremental_files_unchanged",
                          std::to_string(Unchanged));
  Meta.Extra.emplace_back("reports_identical", "true");
  Meta.Extra.emplace_back("peak_rss_kb", std::to_string(memory::peakRssKb()));
  // Incremental-run ingest latency quantiles (the ingest.file_us
  // histogram survives the last telemetry::reset() above); empty in
  // notrace builds.
  for (const telemetry::MetricsTypedSnapshot::Hist &H :
       telemetry::metrics().typedSnapshot().Histograms) {
    if (H.Name != "ingest.file_us")
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
                  "\"p999\": %llu, \"max\": %llu}",
                  static_cast<unsigned long long>(H.P50),
                  static_cast<unsigned long long>(H.P90),
                  static_cast<unsigned long long>(H.P99),
                  static_cast<unsigned long long>(H.P999),
                  static_cast<unsigned long long>(H.Max));
    Meta.Extra.emplace_back("ingest_file_us_quantiles", Buf);
  }

  std::ofstream Json(OutPath, std::ios::binary);
  if (!Json) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  Json << telemetry::statsJson(Meta);
  Json.close();
  std::printf("wrote %s\n", OutPath.c_str());
  if (Prof) {
    if (!Prof->writeFolded(ProfileOut)) {
      std::fprintf(stderr, "cannot open %s for writing\n", ProfileOut.c_str());
      return 1;
    }
    std::printf("wrote %s (folded stacks, %llu samples)\n", ProfileOut.c_str(),
                static_cast<unsigned long long>(Prof->samples()));
  }

  std::error_code Ec;
  std::filesystem::remove(ModelPath, Ec);
  return 0;
}
