//===- bench/pipeline_parallel.cpp - end-to-end pipeline throughput -------==//
//
// Measures the full NamerPipeline::build (parse + analyses + AST+ transform
// + name-path extraction + history mining + FP-tree mining + pattern scan)
// at 1, 2, 4 and hardware_concurrency threads, and emits BENCH_pipeline.json
// in the telemetry stats schema ({meta, counters, spans, runs}; see
// support/Telemetry.h, kStatsSchemaVersion) with files/sec and the speedup
// relative to the single-threaded build. The file is written to the repo
// root regardless of the CWD; --out=PATH overrides the destination.
//
// The machine's core count is recorded in the JSON: speedups are only
// meaningful relative to `hardware_concurrency` (a 1-core container cannot
// show parallel speedup no matter how good the pool is). As a side effect
// the run also cross-checks the determinism contract: every thread count
// must produce the identical report list.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "namer/Pipeline.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace namer;
using namespace namer::bench;

#ifndef NAMER_SOURCE_DIR
#define NAMER_SOURCE_DIR "."
#endif

namespace {

struct Measurement {
  unsigned Threads = 0;
  double Millis = 0.0;
  double FilesPerSec = 0.0;
  double Speedup = 0.0;
  size_t NumReports = 0;
};

std::unique_ptr<NamerPipeline> buildOnce(const corpus::Corpus &C,
                                         unsigned Threads, double &Millis) {
  PipelineConfig Config;
  Config.Threads = Threads;
  auto Pipeline = std::make_unique<NamerPipeline>(Config);
  auto Start = std::chrono::steady_clock::now();
  Pipeline->build(C);
  Millis = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
               .count();
  return Pipeline;
}

std::vector<std::string> renderedReports(const NamerPipeline &P) {
  std::vector<std::string> Out;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    Out.push_back(R.File + ":" + std::to_string(R.Line) + " " + R.Original +
                  " -> " + R.Suggested);
  }
  return Out;
}

std::string runsJson(const std::vector<Measurement> &Results) {
  std::string Out = "[\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const Measurement &M = Results[I];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"threads\": %u, \"build_millis\": %.1f, "
                  "\"files_per_sec\": %.1f, \"speedup_vs_1_thread\": %.3f, "
                  "\"reports\": %zu}%s\n",
                  M.Threads, M.Millis, M.FilesPerSec, M.Speedup, M.NumReports,
                  I + 1 == Results.size() ? "" : ",");
    Out += Buf;
  }
  Out += "  ]";
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = std::string(NAMER_SOURCE_DIR) + "/BENCH_pipeline.json";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(std::strlen("--out="));
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH]\n", Argv[0]);
      return 2;
    }
  }

  const unsigned Hardware = std::max(1u, std::thread::hardware_concurrency());
  printHeading("Parallel pipeline throughput",
               "End-to-end NamerPipeline::build at 1/2/4/N threads "
               "(hardware_concurrency = " +
                   std::to_string(Hardware) + ")");

  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  size_t NumFiles = 0;
  for (const corpus::Repository &R : C.Repos)
    NumFiles += R.Files.size();

  std::vector<unsigned> ThreadCounts = {1, 2, 4};
  if (std::find(ThreadCounts.begin(), ThreadCounts.end(), Hardware) ==
      ThreadCounts.end())
    ThreadCounts.push_back(Hardware);

  // Warm-up: fault in the corpus and code before timing.
  {
    double Ignored = 0.0;
    buildOnce(C, 1, Ignored);
  }
  // The exported counters/spans describe the measured builds only.
  telemetry::reset();

  std::vector<Measurement> Results;
  std::vector<std::string> Baseline;
  for (unsigned Threads : ThreadCounts) {
    Measurement M;
    M.Threads = Threads;
    std::unique_ptr<NamerPipeline> P = buildOnce(C, Threads, M.Millis);
    M.FilesPerSec = NumFiles / (M.Millis / 1000.0);
    M.NumReports = P->violations().size();

    std::vector<std::string> Reports = renderedReports(*P);
    if (Threads == 1)
      Baseline = Reports;
    else if (Reports != Baseline) {
      std::fprintf(stderr,
                   "FATAL: reports at %u threads differ from 1 thread\n",
                   Threads);
      return 1;
    }
    Results.push_back(M);
  }
  for (Measurement &M : Results)
    M.Speedup = Results.front().Millis / M.Millis;

  std::printf("%8s %12s %12s %9s %9s\n", "threads", "build (ms)", "files/sec",
              "speedup", "reports");
  for (const Measurement &M : Results)
    std::printf("%8u %12.1f %12.1f %8.2fx %9zu\n", M.Threads, M.Millis,
                M.FilesPerSec, M.Speedup, M.NumReports);
  std::printf("\nreports identical across all thread counts: yes\n");
  std::printf("\n%s", telemetry::summaryTable().c_str());

  telemetry::RunMeta Meta =
      telemetry::defaultMeta("pipeline_parallel", /*Threads=*/0);
  Meta.Extra.emplace_back("benchmark", "\"pipeline_parallel\"");
  Meta.Extra.emplace_back("corpus_files", std::to_string(NumFiles));
  Meta.Extra.emplace_back("reports_identical_across_thread_counts", "true");
  Meta.Extra.emplace_back("runs", runsJson(Results));

  std::ofstream Json(OutPath, std::ios::binary);
  if (!Json) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  Json << telemetry::statsJson(Meta);
  Json.close();
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
