//===- bench/pipeline_parallel.cpp - end-to-end pipeline throughput -------==//
//
// Measures the full NamerPipeline::build (parse + analyses + AST+ transform
// + name-path extraction + history mining + FP-tree mining + pattern scan)
// at 1, 2, 4 and hardware_concurrency threads, and emits BENCH_pipeline.json
// in the telemetry stats schema ({meta, counters, spans, runs}; see
// support/Telemetry.h, kStatsSchemaVersion) with files/sec, per-stage
// millis (ingest/mine/prune/scan, from the trace spans) and the speedup
// relative to the single-threaded build. The file is written to the repo
// root regardless of the CWD; --out=PATH overrides the destination.
//
//   pipeline_parallel [--out=PATH] [--runs=N] [--corpus-dir=DIR]
//                     [--lang=python|java] [--model-out=FILE]
//                     [--model-in=FILE]
//
// --runs=N times each thread count N times and reports the minimum (the
// least-noisy estimator on a shared machine). --corpus-dir benchmarks a
// real directory tree instead of the generated corpus; its files are
// mmapped into an Arena, so the run also exercises the zero-copy ingest
// path end to end.
//
// --model-out saves the warm-up build's model (ModelStore.h) to FILE;
// --model-in switches the measured runs from cold builds to warm
// loadModel+scanWith scans, so the same thread sweep characterizes the
// serve path (mine/prune stage millis drop to zero by construction).
//
// The machine's core count is recorded in the JSON: speedups are only
// meaningful relative to `hardware_concurrency` (a 1-core container cannot
// show parallel speedup no matter how good the pool is). As a side effect
// the run also cross-checks the determinism contract: every thread count
// must produce the identical report list.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "namer/ModelStore.h"
#include "namer/Pipeline.h"
#include "support/Arena.h"
#include "support/MemoryTracker.h"
#include "support/Profiler.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace namer;
using namespace namer::bench;

#ifndef NAMER_SOURCE_DIR
#define NAMER_SOURCE_DIR "."
#endif

namespace {

/// The pipeline stages broken out per run, measured as deltas of the
/// accumulated span totals around each build. Mining covers FP-tree
/// growth only (fptree.build); generation/pruning is the prune bucket.
struct StageMillis {
  double Ingest = 0.0;
  double Mine = 0.0;
  double Prune = 0.0;
  double Scan = 0.0;
};

struct Measurement {
  unsigned Threads = 0;
  double Millis = 0.0;
  double FilesPerSec = 0.0;
  double Speedup = 0.0;
  size_t NumReports = 0;
  StageMillis Stages;
};

double spanMillis(const char *Name) {
  return telemetry::spanTotalUs(Name) / 1000.0;
}

std::unique_ptr<NamerPipeline> buildOnce(const corpus::Corpus &C,
                                         unsigned Threads, double &Millis,
                                         StageMillis &Stages,
                                         const std::string &ModelIn) {
  PipelineConfig Config;
  Config.Threads = Threads;
  auto Pipeline = std::make_unique<NamerPipeline>(Config);
  StageMillis Before{spanMillis("pipeline.ingest"), spanMillis("fptree.build"),
                     spanMillis("pattern.prune"), spanMillis("pipeline.scan")};
  auto Start = std::chrono::steady_clock::now();
  if (ModelIn.empty()) {
    Pipeline->build(C);
  } else {
    Pipeline->loadModel(ModelIn);
    Pipeline->scanWith(C);
  }
  Millis = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
               .count();
  Stages.Ingest = spanMillis("pipeline.ingest") - Before.Ingest;
  Stages.Mine = spanMillis("fptree.build") - Before.Mine;
  Stages.Prune = spanMillis("pattern.prune") - Before.Prune;
  Stages.Scan = spanMillis("pipeline.scan") - Before.Scan;
  return Pipeline;
}

std::vector<std::string> renderedReports(const NamerPipeline &P) {
  std::vector<std::string> Out;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    Out.push_back(R.File + ":" + std::to_string(R.Line) + " " + R.Original +
                  " -> " + R.Suggested);
  }
  return Out;
}

std::string runsJson(const std::vector<Measurement> &Results) {
  std::string Out = "[\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const Measurement &M = Results[I];
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"threads\": %u, \"build_millis\": %.1f, "
        "\"files_per_sec\": %.1f, \"speedup_vs_1_thread\": %.3f, "
        "\"reports\": %zu, \"stage_millis\": {\"ingest\": %.1f, "
        "\"mine\": %.1f, \"prune\": %.1f, \"scan\": %.1f}}%s\n",
        M.Threads, M.Millis, M.FilesPerSec, M.Speedup, M.NumReports,
        M.Stages.Ingest, M.Stages.Mine, M.Stages.Prune, M.Stages.Scan,
        I + 1 == Results.size() ? "" : ",");
    Out += Buf;
  }
  Out += "  ]";
  return Out;
}

/// Loads a real directory tree as a one-repository corpus with no commit
/// history. The files are mmapped (with read fallback) into \p FileArena,
/// which must outlive the corpus; ingestion then lexes straight from the
/// mapped pages.
std::optional<corpus::Corpus> loadCorpusDir(const std::string &Dir,
                                            corpus::Language Lang,
                                            Arena &FileArena) {
  namespace fs = std::filesystem;
  corpus::Repository Repo;
  Repo.Name = Dir;
  const char *Extension = Lang == corpus::Language::Python ? ".py" : ".java";
  std::error_code Ec;
  std::vector<std::string> Paths;
  for (fs::recursive_directory_iterator It(Dir, Ec), End; It != End;
       It.increment(Ec)) {
    if (Ec)
      break;
    if (It->is_regular_file() && It->path().extension() == Extension)
      Paths.push_back(It->path().string());
  }
  std::sort(Paths.begin(), Paths.end()); // deterministic file order
  for (std::string &Path : Paths) {
    std::optional<Arena::FileMapping> Mapped = FileArena.mapFile(Path);
    if (!Mapped)
      continue;
    corpus::SourceFile F;
    F.Path = std::move(Path);
    F.View = Mapped->Contents;
    F.Mapped = true;
    Repo.Files.push_back(std::move(F));
  }
  if (Repo.Files.empty())
    return std::nullopt;
  corpus::Corpus C;
  C.Lang = Lang;
  C.Repos.push_back(std::move(Repo));
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = std::string(NAMER_SOURCE_DIR) + "/BENCH_pipeline.json";
  std::string CorpusDir;
  std::string ModelIn, ModelOut;
  std::string ProfileOut;
  unsigned ProfileHz = 97;
  corpus::Language Lang = corpus::Language::Python;
  size_t Runs = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(std::strlen("--out="));
    } else if (Arg.rfind("--runs=", 0) == 0) {
      Runs = std::max<size_t>(
          1, std::strtoul(Arg.c_str() + std::strlen("--runs="), nullptr, 10));
    } else if (Arg.rfind("--corpus-dir=", 0) == 0) {
      CorpusDir = Arg.substr(std::strlen("--corpus-dir="));
    } else if (Arg.rfind("--model-in=", 0) == 0) {
      ModelIn = Arg.substr(std::strlen("--model-in="));
    } else if (Arg.rfind("--model-out=", 0) == 0) {
      ModelOut = Arg.substr(std::strlen("--model-out="));
    } else if (Arg.rfind("--profile-out=", 0) == 0) {
      ProfileOut = Arg.substr(std::strlen("--profile-out="));
    } else if (Arg.rfind("--profile-hz=", 0) == 0) {
      ProfileHz = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--profile-hz="), nullptr, 10));
    } else if (Arg == "--lang=python") {
      Lang = corpus::Language::Python;
    } else if (Arg == "--lang=java") {
      Lang = corpus::Language::Java;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=PATH] [--runs=N] [--corpus-dir=DIR] "
                   "[--lang=python|java] [--model-out=FILE] "
                   "[--model-in=FILE] [--profile-out=FILE] "
                   "[--profile-hz=N]\n",
                   Argv[0]);
      return 2;
    }
  }

  const unsigned Hardware = std::max(1u, std::thread::hardware_concurrency());
  printHeading("Parallel pipeline throughput",
               "End-to-end NamerPipeline::build at 1/2/4/N threads "
               "(hardware_concurrency = " +
                   std::to_string(Hardware) +
                   ", min of " + std::to_string(Runs) + " run(s))");

  // Declared before any pipeline below: pools join before the profiler
  // uninstalls its span hook.
  std::unique_ptr<prof::Profiler> Prof;
  if (!ProfileOut.empty()) {
    prof::ProfilerOptions PO;
    PO.SampleOnSpanClose = true;
    PO.SampleHz = ProfileHz;
    Prof = std::make_unique<prof::Profiler>(PO);
  }

  // The arena must outlive the corpus: --corpus-dir files reference its
  // mmapped buffers.
  Arena FileArena;
  corpus::Corpus C;
  if (CorpusDir.empty()) {
    C = makeCorpus(Lang);
  } else {
    std::optional<corpus::Corpus> Loaded =
        loadCorpusDir(CorpusDir, Lang, FileArena);
    if (!Loaded) {
      std::fprintf(stderr, "no %s files under %s\n",
                   Lang == corpus::Language::Python ? ".py" : ".java",
                   CorpusDir.c_str());
      return 1;
    }
    C = std::move(*Loaded);
  }
  size_t NumFiles = 0;
  for (const corpus::Repository &R : C.Repos)
    NumFiles += R.Files.size();

  std::vector<unsigned> ThreadCounts = {1, 2, 4};
  if (std::find(ThreadCounts.begin(), ThreadCounts.end(), Hardware) ==
      ThreadCounts.end())
    ThreadCounts.push_back(Hardware);

  // Warm-up: fault in the corpus and code before timing. A cold warm-up
  // build also provides the model --model-out persists.
  {
    double Ignored = 0.0;
    StageMillis IgnoredStages;
    std::unique_ptr<NamerPipeline> Warmup =
        buildOnce(C, 1, Ignored, IgnoredStages, /*ModelIn=*/"");
    if (!ModelOut.empty()) {
      try {
        Warmup->saveModel(ModelOut);
        std::printf("wrote %s (model)\n", ModelOut.c_str());
      } catch (const model::ModelError &E) {
        std::fprintf(stderr, "model error: %s\n", E.what());
        return 1;
      }
    }
  }
  // The exported counters/spans describe the measured builds only.
  telemetry::reset();

  std::vector<Measurement> Results;
  std::vector<std::string> Baseline;
  for (unsigned Threads : ThreadCounts) {
    Measurement M;
    M.Threads = Threads;
    // Min-of-N: keep the fastest run's wall time and its stage split
    // (stages travel with the run they came from, so they stay mutually
    // consistent).
    for (size_t Run = 0; Run != Runs; ++Run) {
      double Millis = 0.0;
      StageMillis Stages;
      std::unique_ptr<NamerPipeline> P;
      try {
        P = buildOnce(C, Threads, Millis, Stages, ModelIn);
      } catch (const model::ModelError &E) {
        std::fprintf(stderr, "model error: %s\n", E.what());
        return 1;
      }
      if (Run == 0 || Millis < M.Millis) {
        M.Millis = Millis;
        M.Stages = Stages;
      }
      M.NumReports = P->violations().size();

      std::vector<std::string> Reports = renderedReports(*P);
      if (Baseline.empty() && Threads == ThreadCounts.front())
        Baseline = Reports;
      else if (Reports != Baseline) {
        std::fprintf(stderr,
                     "FATAL: reports at %u threads differ from 1 thread\n",
                     Threads);
        return 1;
      }
    }
    M.FilesPerSec = NumFiles / (M.Millis / 1000.0);
    Results.push_back(M);
  }
  for (Measurement &M : Results)
    M.Speedup = Results.front().Millis / M.Millis;

  std::printf("%8s %12s %12s %9s %9s %9s %9s %9s %9s\n", "threads",
              "build (ms)", "files/sec", "speedup", "reports", "ingest",
              "mine", "prune", "scan");
  for (const Measurement &M : Results)
    std::printf("%8u %12.1f %12.1f %8.2fx %9zu %9.1f %9.1f %9.1f %9.1f\n",
                M.Threads, M.Millis, M.FilesPerSec, M.Speedup, M.NumReports,
                M.Stages.Ingest, M.Stages.Mine, M.Stages.Prune,
                M.Stages.Scan);
  std::printf("\nreports identical across all thread counts: yes\n");
  std::printf("\n%s", telemetry::summaryTable().c_str());

  telemetry::RunMeta Meta =
      telemetry::defaultMeta("pipeline_parallel", /*Threads=*/0);
  Meta.Extra.emplace_back("benchmark", "\"pipeline_parallel\"");
  Meta.Extra.emplace_back("corpus_files", std::to_string(NumFiles));
  Meta.Extra.emplace_back("runs_per_thread_count", std::to_string(Runs));
  Meta.Extra.emplace_back("warm_scan", ModelIn.empty() ? "false" : "true");
  Meta.Extra.emplace_back("reports_identical_across_thread_counts", "true");
  Meta.Extra.emplace_back("peak_rss_kb", std::to_string(memory::peakRssKb()));
  // Per-file ingest latency quantiles (the ingest.file_us histogram): the
  // BENCH-side mirror of the exposition's *_quantile series, so statdiff
  // can gate tail latency, not just totals. Empty in notrace builds.
  for (const telemetry::MetricsTypedSnapshot::Hist &H :
       telemetry::metrics().typedSnapshot().Histograms) {
    if (H.Name != "ingest.file_us")
      continue;
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
                  "\"p999\": %llu, \"max\": %llu}",
                  static_cast<unsigned long long>(H.P50),
                  static_cast<unsigned long long>(H.P90),
                  static_cast<unsigned long long>(H.P99),
                  static_cast<unsigned long long>(H.P999),
                  static_cast<unsigned long long>(H.Max));
    Meta.Extra.emplace_back("ingest_file_us_quantiles", Buf);
  }
  Meta.Extra.emplace_back("runs", runsJson(Results));

  std::ofstream Json(OutPath, std::ios::binary);
  if (!Json) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  Json << telemetry::statsJson(Meta);
  Json.close();
  std::printf("wrote %s\n", OutPath.c_str());
  if (Prof) {
    if (!Prof->writeFolded(ProfileOut)) {
      std::fprintf(stderr, "cannot open %s for writing\n", ProfileOut.c_str());
      return 1;
    }
    std::printf("wrote %s (folded stacks, %llu samples)\n", ProfileOut.c_str(),
                static_cast<unsigned long long>(Prof->samples()));
  }
  return 0;
}
