//===- bench/BenchCommon.h - Shared benchmark harness -----------*- C++ -*-==//
///
/// \file
/// Common setup for the per-table benchmark binaries: deterministic corpus
/// generation, pipeline construction per ablation, and the evaluation
/// protocol. Every bench prints the paper table it regenerates; absolute
/// numbers differ from the paper (the corpus is simulated, ~1000x smaller)
/// but the qualitative shape must match (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_BENCH_BENCHCOMMON_H
#define NAMER_BENCH_BENCHCOMMON_H

#include "namer/Evaluation.h"
#include "support/TextTable.h"

#include <memory>
#include <string>

namespace namer {
namespace bench {

/// The four rows of Tables 2 and 5.
enum class Ablation : uint8_t {
  Full,            ///< Namer
  NoClassifier,    ///< w/o C
  NoAnalyses,      ///< w/o A
  NoClassifierNoAnalyses, ///< w/o C & A
};

std::string_view ablationName(Ablation A);

/// Deterministic corpus for one language (the same corpus every bench
/// sees).
corpus::Corpus makeCorpus(corpus::Language Lang);

/// Builds a pipeline over \p C with the given ablation.
std::unique_ptr<NamerPipeline> makePipeline(const corpus::Corpus &C,
                                            Ablation A);

/// A built pipeline together with its evaluation result.
struct EvaluatedPipeline {
  std::unique_ptr<NamerPipeline> Pipeline;
  EvaluationResult Result;
};

/// Runs the Section 5 evaluation protocol on a fresh pipeline.
EvaluatedPipeline runEvaluation(const corpus::Corpus &C,
                                const corpus::InspectionOracle &Oracle,
                                Ablation A);

/// Prints a heading in a consistent style.
void printHeading(const std::string &Title, const std::string &Subtitle);

} // namespace bench
} // namespace namer

#endif // NAMER_BENCH_BENCHCOMMON_H
