//===- tests/TreeTest.cpp - AST tree tests --------------------------------==//

#include "ast/Statements.h"
#include "ast/Tree.h"

#include <gtest/gtest.h>

using namespace namer;

TEST(AstContext, KindSymbolsMatchNames) {
  AstContext Ctx;
  EXPECT_EQ(Ctx.text(Ctx.kindSymbol(NodeKind::Call)), "Call");
  EXPECT_EQ(Ctx.text(Ctx.kindSymbol(NodeKind::AttributeLoad)),
            "AttributeLoad");
  EXPECT_EQ(Ctx.text(Ctx.kindSymbol(NodeKind::NumST)), "NumST");
}

TEST(Tree, BuildAndDump) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Call = T.addNode(NodeKind::Call, InvalidNode);
  NodeId AttrLoad = T.addNode(NodeKind::AttributeLoad, Call);
  NodeId NameLoad = T.addNode(NodeKind::NameLoad, AttrLoad);
  T.addNode(NodeKind::Ident, "self", NameLoad);
  NodeId Attr = T.addNode(NodeKind::Attr, AttrLoad);
  T.addNode(NodeKind::Ident, "assertTrue", Attr);
  NodeId Num = T.addNode(NodeKind::Num, Call);
  T.addNode(NodeKind::Ident, "90", Num);

  EXPECT_EQ(T.dump(),
            "(Call (AttributeLoad (NameLoad self) (Attr assertTrue)) "
            "(Num 90))");
  EXPECT_EQ(T.root(), Call);
}

TEST(Tree, ChildIndex) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Root = T.addNode(NodeKind::Call, InvalidNode);
  NodeId A = T.addNode(NodeKind::NameLoad, Root);
  NodeId B = T.addNode(NodeKind::Num, Root);
  NodeId C = T.addNode(NodeKind::Str, Root);
  EXPECT_EQ(T.childIndex(A), 0u);
  EXPECT_EQ(T.childIndex(B), 1u);
  EXPECT_EQ(T.childIndex(C), 2u);
}

TEST(Tree, InsertAbovePreservesChildSlot) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Root = T.addNode(NodeKind::Call, InvalidNode);
  NodeId A = T.addNode(NodeKind::NameLoad, Root);
  NodeId B = T.addNode(NodeKind::Num, Root);
  (void)A;
  NodeId Wrapper = T.insertAbove(B, NodeKind::NumArgs, Ctx.intern("NumArgs(2)"));
  EXPECT_EQ(T.node(Root).Children[1], Wrapper);
  EXPECT_EQ(T.node(Wrapper).Children[0], B);
  EXPECT_EQ(T.node(B).Parent, Wrapper);
  EXPECT_EQ(T.childIndex(Wrapper), 1u);
}

TEST(Tree, InsertAboveRoot) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Call = T.addNode(NodeKind::Call, InvalidNode);
  NodeId Wrapper =
      T.insertAbove(Call, NodeKind::NumArgs, Ctx.intern("NumArgs(0)"));
  EXPECT_EQ(T.root(), Wrapper);
  EXPECT_EQ(T.node(Call).Parent, Wrapper);
}

TEST(Tree, ReparentMovesSubtree) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Root = T.addNode(NodeKind::Module, InvalidNode);
  NodeId A = T.addNode(NodeKind::NameLoad, Root);
  NodeId Bin = T.addNode(NodeKind::BinOp, Root);
  T.reparent(A, Bin);
  ASSERT_EQ(T.node(Root).Children.size(), 1u);
  EXPECT_EQ(T.node(Root).Children[0], Bin);
  ASSERT_EQ(T.node(Bin).Children.size(), 1u);
  EXPECT_EQ(T.node(Bin).Children[0], A);
  EXPECT_EQ(T.node(A).Parent, Bin);
}

TEST(Tree, CopySubtreeSkipsBodies) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId For = T.addNode(NodeKind::For, InvalidNode);
  NodeId Target = T.addNode(NodeKind::NameStore, For);
  T.addNode(NodeKind::Ident, "i", Target);
  NodeId Iter = T.addNode(NodeKind::Call, For);
  NodeId Callee = T.addNode(NodeKind::NameLoad, Iter);
  T.addNode(NodeKind::Ident, "range", Callee);
  NodeId Body = T.addNode(NodeKind::Body, For);
  T.addNode(NodeKind::Pass, Body);

  Tree Projected = projectStatement(T, For);
  EXPECT_EQ(Projected.dump(),
            "(For (NameStore i) (Call (NameLoad range)))");
}

TEST(Statements, CollectsStatementRoots) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Module = T.addNode(NodeKind::Module, InvalidNode);
  NodeId Fn = T.addNode(NodeKind::FunctionDef, Module);
  T.addNode(NodeKind::Ident, "f", Fn);
  T.addNode(NodeKind::ParamList, Fn);
  NodeId Body = T.addNode(NodeKind::Body, Fn);
  NodeId Assign = T.addNode(NodeKind::Assign, Body);
  (void)Assign;
  NodeId Ret = T.addNode(NodeKind::Return, Body);
  (void)Ret;

  auto Roots = collectStatementRoots(T);
  ASSERT_EQ(Roots.size(), 3u);
  EXPECT_EQ(T.node(Roots[0]).Kind, NodeKind::FunctionDef);
  EXPECT_EQ(T.node(Roots[1]).Kind, NodeKind::Assign);
  EXPECT_EQ(T.node(Roots[2]).Kind, NodeKind::Return);
}

TEST(Statements, ExprStmtUnwrapsToExpression) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Stmt = T.addNode(NodeKind::ExprStmt, InvalidNode);
  NodeId Call = T.addNode(NodeKind::Call, Stmt);
  NodeId Callee = T.addNode(NodeKind::NameLoad, Call);
  T.addNode(NodeKind::Ident, "foo", Callee);

  Tree Projected = projectStatement(T, Stmt);
  EXPECT_EQ(Projected.node(Projected.root()).Kind, NodeKind::Call);
}

TEST(Statements, EnclosingNodeWalksParents) {
  AstContext Ctx;
  Tree T(Ctx);
  NodeId Module = T.addNode(NodeKind::Module, InvalidNode);
  NodeId Class = T.addNode(NodeKind::ClassDef, Module);
  NodeId Body = T.addNode(NodeKind::Body, Class);
  NodeId Fn = T.addNode(NodeKind::FunctionDef, Body);
  NodeId FnBody = T.addNode(NodeKind::Body, Fn);
  NodeId Stmt = T.addNode(NodeKind::Assign, FnBody);

  EXPECT_EQ(enclosingNode(T, Stmt, NodeKind::FunctionDef), Fn);
  EXPECT_EQ(enclosingNode(T, Stmt, NodeKind::ClassDef), Class);
  EXPECT_EQ(enclosingNode(T, Module, NodeKind::ClassDef), InvalidNode);
}
