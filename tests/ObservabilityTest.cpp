//===- tests/ObservabilityTest.cpp - PR 8 observability layer tests -------==//
//
// Covers the service-grade observability additions: histogram quantile
// estimation (bucket-boundary exactness and the empty/single/overflow
// edges), the byte-stable Prometheus text exposition under the fake clock,
// the MiniJson parser backing namer-statdiff, the run ledger's JSONL
// format, the memory tracker's injectable RSS sources, the span watchdog
// (close-time and live-scan stall detection) and the metrics snapshotter's
// flush contract. Built as namer_obs_tests so `ctest -L obs` selects it.
//
// ORDER MATTERS: the Prometheus golden test must run first in this binary.
// The global MetricsRegistry never forgets a name (reset() clears values
// only), so any metric another test registers would leak into the golden
// exposition. gtest runs suites in first-registration order; keep
// ObsPrometheusGolden at the top of this file.
//
// When NAMER_TELEMETRY is compiled out, only the build-mode-independent
// pieces (MiniJson, RunLedger, MemoryTracker sources, snapshotter header)
// are exercised; the registry-backed tests compile away with the layer.
//
//===----------------------------------------------------------------------===//

#include "support/MemoryTracker.h"
#include "support/MiniJson.h"
#include "support/Profiler.h"
#include "support/RunLedger.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

using namespace namer;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

#if NAMER_TELEMETRY

namespace {

/// Settable clock for the watchdog/golden tests (unlike TelemetryTest's
/// auto-advancing fake, stall detection needs time to stand still between
/// explicit jumps).
uint64_t ManualClockNs = 0;
uint64_t manualNow() { return ManualClockNs; }

struct ManualClockScope {
  ManualClockScope() {
    ManualClockNs = 0;
    telemetry::setTimeSourceForTest(&manualNow);
  }
  ~ManualClockScope() { telemetry::setTimeSourceForTest(nullptr); }
};

uint64_t HookStalls = 0;
void countingStallHook(const char *, uint64_t) { ++HookStalls; }

} // namespace

TEST(ObsPrometheusGolden, ExpositionBytes) {
  ManualClockScope Clock;
  telemetry::reset();
  telemetry::setEnabled(true);

  telemetry::metrics().counter("obsg.files").add(3);
  telemetry::metrics().gauge("obsg.gauge").set(-7);
  telemetry::metrics().histogram("obsg.hist").record(4);
  telemetry::metrics().histogram("obsg.hist").record(9);
  {
    // Close-driven profiler (no timer thread at SampleHz=0): registers
    // profiler.samples and counts one sample per span close below.
    prof::ProfilerOptions PO;
    PO.SampleHz = 0;
    PO.SampleOnSpanClose = true;
    prof::Profiler Prof(PO);
    telemetry::TraceSpan Outer("obsg.outer"); // 0ms .. 2ms
    ManualClockNs = 1'000'000;
    telemetry::TraceSpan Inner("obsg.inner"); // 1ms .. 2ms
    prof::noteAllocBytes(4096);               // attributed to obsg.inner
    prof::noteLockWait("obsg.outer", 3000);   // 3us blocked on a lock
    ManualClockNs = 2'000'000;
  } // both spans close at the 2ms stamp, then the profiler detaches

  telemetry::PromExportOptions Opts;
  Opts.GitRev = "deadbeef";
  const std::string Expected =
      "# namer prometheus text exposition (stats schema 1)\n"
      "# TYPE namer_alloc_bytes_obsg_inner_total counter\n"
      "namer_alloc_bytes_obsg_inner_total 4096\n"
      "# TYPE namer_lock_wait_us_obsg_outer_total counter\n"
      "namer_lock_wait_us_obsg_outer_total 3\n"
      "# TYPE namer_obsg_files_total counter\n"
      "namer_obsg_files_total 3\n"
      "# TYPE namer_profiler_samples_total counter\n"
      "namer_profiler_samples_total 2\n"
      "# TYPE namer_obsg_gauge gauge\n"
      "namer_obsg_gauge -7\n"
      "# TYPE namer_obsg_hist histogram\n"
      "namer_obsg_hist_bucket{le=\"0\"} 0\n"
      "namer_obsg_hist_bucket{le=\"1\"} 0\n"
      "namer_obsg_hist_bucket{le=\"3\"} 0\n"
      "namer_obsg_hist_bucket{le=\"7\"} 1\n"
      "namer_obsg_hist_bucket{le=\"15\"} 2\n"
      "namer_obsg_hist_bucket{le=\"+Inf\"} 2\n"
      "namer_obsg_hist_sum 13\n"
      "namer_obsg_hist_count 2\n"
      "# TYPE namer_obsg_hist_quantile gauge\n"
      "namer_obsg_hist_quantile{q=\"0.5\"} 4\n"
      "namer_obsg_hist_quantile{q=\"0.9\"} 8\n"
      "namer_obsg_hist_quantile{q=\"0.99\"} 8\n"
      "namer_obsg_hist_quantile{q=\"0.999\"} 8\n"
      "# TYPE namer_span_count counter\n"
      "namer_span_count{span=\"obsg.inner\"} 1\n"
      "namer_span_count{span=\"obsg.outer\"} 1\n"
      "# TYPE namer_span_total_us counter\n"
      "namer_span_total_us{span=\"obsg.inner\"} 1000.000\n"
      "namer_span_total_us{span=\"obsg.outer\"} 2000.000\n"
      "# TYPE namer_build_info gauge\n"
      "namer_build_info{git_rev=\"deadbeef\",telemetry=\"on\"} 1\n";
  EXPECT_EQ(telemetry::prometheusText(Opts), Expected);
  // Byte-stable: a second render must be identical.
  EXPECT_EQ(telemetry::prometheusText(Opts), Expected);
  telemetry::reset();
}

TEST(ObsPrometheusGolden, ExcludePrefixesDropWholeFamilies) {
  telemetry::reset();
  telemetry::setEnabled(true);
  telemetry::count("obsx.keep");
  telemetry::count("pool.obsx_sched");
  telemetry::gaugeSet("interner.shard_contention", 5);

  telemetry::PromExportOptions Opts;
  Opts.ExcludePrefixes = {"pool.", "interner.shard_contention"};
  std::string Doc = telemetry::prometheusText(Opts);
  EXPECT_NE(Doc.find("namer_obsx_keep_total"), std::string::npos);
  EXPECT_EQ(Doc.find("pool_obsx_sched"), std::string::npos);
  EXPECT_EQ(Doc.find("shard_contention"), std::string::npos);
  // No GitRev configured -> no build_info line.
  EXPECT_EQ(Doc.find("namer_build_info"), std::string::npos);
  telemetry::reset();
}

TEST(ObsQuantile, EmptySingleAndExtremeQArgs) {
  telemetry::Histogram &H = telemetry::metrics().histogram("obsq.edges");
  EXPECT_EQ(H.quantile(0.5), 0u); // empty -> 0

  H.record(42); // single sample: every quantile is exact
  for (double Q : {0.0, 0.001, 0.5, 0.99, 1.0, 2.0})
    EXPECT_EQ(H.quantile(Q), 42u) << Q;
  EXPECT_EQ(H.quantile(-1.0), 42u); // Q <= 0 -> min
}

TEST(ObsQuantile, BucketBoundaryExactness) {
  // One sample per power-of-two bucket, each alone at its bucket's lower
  // bound: nearest-rank quantiles land exactly on the recorded values.
  telemetry::Histogram &H = telemetry::metrics().histogram("obsq.bounds");
  H.record(1);
  H.record(2);
  H.record(4);
  H.record(8);
  EXPECT_EQ(H.quantile(0.25), 1u);
  EXPECT_EQ(H.quantile(0.5), 2u);
  EXPECT_EQ(H.quantile(0.75), 4u);
  EXPECT_EQ(H.quantile(1.0), 8u);
  EXPECT_EQ(H.quantile(0.0), 1u);
}

TEST(ObsQuantile, AllIdenticalAndOverflowBucket) {
  telemetry::Histogram &I = telemetry::metrics().histogram("obsq.same");
  for (int N = 0; N != 100; ++N)
    I.record(77);
  for (double Q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(I.quantile(Q), 77u) << Q; // min/max clamps make this exact

  // A sample far past 2^31 lands in the clamped overflow bucket; the min
  // clamp still recovers it exactly when it is alone there.
  telemetry::Histogram &O = telemetry::metrics().histogram("obsq.overflow");
  O.record(uint64_t(1) << 40);
  EXPECT_EQ(O.quantile(0.5), uint64_t(1) << 40);
  EXPECT_EQ(O.quantile(0.999), uint64_t(1) << 40);
}

TEST(ObsQuantile, MedianTracksBulkOfDistribution) {
  telemetry::Histogram &H = telemetry::metrics().histogram("obsq.bulk");
  for (uint64_t V = 0; V != 1000; ++V)
    H.record(V % 10); // 0..9, uniform
  uint64_t P50 = H.quantile(0.5);
  EXPECT_GE(P50, 3u);
  EXPECT_LE(P50, 7u);
  EXPECT_LE(H.quantile(0.999), 9u);
  EXPECT_EQ(H.quantile(1.0), 9u);
}

TEST(ObsWatchdog, CloseTimeAndLiveScanStallDetection) {
  ManualClockScope Clock;
  telemetry::reset();
  telemetry::setEnabled(true);
  uint64_t StallsBefore =
      telemetry::metrics().counter("watchdog.stalls").value();
  uint64_t LiveBefore =
      telemetry::metrics().counter("watchdog.live_stalls").value();
  HookStalls = 0;
  telemetry::setStallHook(&countingStallHook);
  telemetry::setSpanDeadlineNs(1'000'000); // 1ms
  EXPECT_EQ(telemetry::spanDeadlineNs(), 1'000'000u);

  {
    telemetry::TraceSpan Slow("obsw.slow");
    ManualClockNs = 10'000'000; // 10ms later, span still open
    telemetry::SpanWatchdog Watchdog(0);
    EXPECT_EQ(Watchdog.scanOnce(), 1u);
    EXPECT_EQ(Watchdog.scanOnce(), 0u); // same (thread, depth, start) once
    EXPECT_EQ(Watchdog.liveStalls(), 1u);
  } // close at 10ms: 9ms over deadline -> close-time stall too

  { telemetry::TraceSpan Fast("obsw.fast"); } // 0ns long: no stall
  EXPECT_EQ(telemetry::metrics().counter("watchdog.stalls").value(),
            StallsBefore + 1);
  EXPECT_EQ(telemetry::metrics().counter("watchdog.live_stalls").value(),
            LiveBefore + 1);
  EXPECT_EQ(HookStalls, 2u); // one live-scan report + one close-time report

  telemetry::setStallHook(nullptr);
  telemetry::setSpanDeadlineNs(0);
  telemetry::reset();
}

TEST(ObsWatchdog, NoDeadlineMeansNoStalls) {
  ManualClockScope Clock;
  telemetry::reset();
  telemetry::setEnabled(true);
  ASSERT_EQ(telemetry::spanDeadlineNs(), 0u);
  {
    telemetry::TraceSpan S("obsw.untimed");
    ManualClockNs = 1'000'000'000; // a full second
    telemetry::SpanWatchdog Watchdog(0);
    EXPECT_EQ(Watchdog.scanOnce(), 0u);
  }
  EXPECT_EQ(telemetry::metrics().counter("watchdog.stalls").value(), 0u);
  telemetry::reset();
}

#endif // NAMER_TELEMETRY

//===----------------------------------------------------------------------===//
// Build-mode-independent pieces
//===----------------------------------------------------------------------===//

TEST(ObsMiniJson, ParsesScalarsContainersAndEscapes) {
  std::string Error;
  std::optional<json::Value> Doc = json::parse(
      R"({"a": 1.5, "b": [true, false, null, "x\nyA"], "c": {"d": -3}})",
      &Error);
  ASSERT_TRUE(Doc) << Error;
  ASSERT_TRUE(Doc->isObject());
  const json::Value *A = Doc->find("a");
  ASSERT_TRUE(A && A->isNumber());
  EXPECT_DOUBLE_EQ(A->Num, 1.5);
  const json::Value *B = Doc->find("b");
  ASSERT_TRUE(B && B->isArray());
  ASSERT_EQ(B->Arr.size(), 4u);
  EXPECT_TRUE(B->Arr[0].isBool() && B->Arr[0].B);
  EXPECT_TRUE(B->Arr[2].isNull());
  EXPECT_EQ(B->Arr[3].Str, "x\nyA");
  const json::Value *D = Doc->findPath("c.d");
  ASSERT_TRUE(D && D->isNumber());
  EXPECT_DOUBLE_EQ(D->Num, -3.0);
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(ObsMiniJson, RejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\":1}x",
        "\"unterminated", "{\"dup\" 1}", "[1, 2"}) {
    std::string Error;
    EXPECT_FALSE(json::parse(Bad, &Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
  // Depth cap: 100 nested arrays exceed kMaxDepth.
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(Deep));
}

TEST(ObsMiniJson, RoundTripsStatsShapedDocuments) {
  // The statdiff contract: counters/spans objects with numeric leaves.
  std::optional<json::Value> Doc = json::parse(
      R"({"meta": {"tool": "t"}, "counters": {"a.p50": 10, "b": 2},
          "spans": {"s": {"count": 1, "total_us": 1500.5}}})");
  ASSERT_TRUE(Doc);
  const json::Value *Total = Doc->findPath("spans.s.total_us");
  ASSERT_TRUE(Total && Total->isNumber());
  EXPECT_DOUBLE_EQ(Total->Num, 1500.5);
  EXPECT_TRUE(Doc->findPath("counters.a.p50") == nullptr)
      << "dotted keys are path components, not literal key matches";
  const json::Value *Counters = Doc->find("counters");
  ASSERT_TRUE(Counters);
  EXPECT_TRUE(Counters->find("a.p50") != nullptr);
}

TEST(ObsRunLedger, JsonlBytesAndSequencing) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "namer-obs-ledger.jsonl").string();

  ledger::RunLedger L;
  EXPECT_FALSE(L.isOpen());
  L.append({}); // dropped, not a crash
  EXPECT_EQ(L.records(), 0u);

  EXPECT_EQ(ledger::RunLedger::makeRunId("abc", 0x123),
            "abc-0000000000000123");
  ASSERT_TRUE(L.open(Path, ledger::RunLedger::makeRunId("abc", 0x123)));
  EXPECT_TRUE(L.isOpen());
  EXPECT_EQ(L.runId(), "abc-0000000000000123");

  ledger::Record Phase;
  Phase.Event = "phase";
  Phase.Name = "x";
  Phase.DurationUs = 5;
  Phase.RssDeltaKb = -3;
  L.append(Phase);
  ledger::Record Quarantine;
  Quarantine.Event = "quarantine";
  Quarantine.Name = "f\"q\".py";
  Quarantine.Outcome = "depth-budget";
  Quarantine.Detail = "nesting depth 300 exceeds 192";
  L.append(Quarantine);
  EXPECT_EQ(L.records(), 2u);
  L.close();
  EXPECT_FALSE(L.isOpen());

  EXPECT_EQ(
      slurp(Path),
      "{\"duration_us\":5,\"event\":\"phase\",\"name\":\"x\",\"outcome\":"
      "\"ok\",\"rss_delta_kb\":-3,\"run_id\":\"abc-0000000000000123\","
      "\"schema_version\":1,\"seq\":0}\n"
      "{\"detail\":\"nesting depth 300 exceeds 192\",\"duration_us\":0,"
      "\"event\":\"quarantine\",\"name\":\"f\\\"q\\\".py\",\"outcome\":"
      "\"depth-budget\",\"rss_delta_kb\":0,\"run_id\":"
      "\"abc-0000000000000123\",\"schema_version\":1,\"seq\":1}\n");

  // Every line must parse as standalone JSON (the JSONL contract).
  std::ifstream In(Path);
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    std::optional<json::Value> Parsed = json::parse(Line);
    ASSERT_TRUE(Parsed) << Line;
    EXPECT_DOUBLE_EQ(Parsed->find("schema_version")->Num, 1.0);
  }
  EXPECT_EQ(Lines, 2u);
  fs::remove(Path);
}

TEST(ObsMemoryTracker, InjectableSourcesAndRealProcfs) {
  memory::setRssSourceForTest(+[]() -> uint64_t { return 111; },
                              +[]() -> uint64_t { return 222; });
  EXPECT_EQ(memory::currentRssKb(), 111u);
  EXPECT_EQ(memory::peakRssKb(), 222u);
  memory::setRssSourceForTest(nullptr, nullptr);
#if defined(__linux__)
  // Real procfs: a running process has nonzero RSS and peak >= current.
  uint64_t Current = memory::currentRssKb();
  uint64_t Peak = memory::peakRssKb();
  EXPECT_GT(Current, 0u);
  EXPECT_GE(Peak, Current);
#endif
}

#if NAMER_TELEMETRY
TEST(ObsMemoryTracker, SampleGaugesPublishesWhenEnabled) {
  telemetry::setEnabled(true);
  memory::setRssSourceForTest(+[]() -> uint64_t { return 111; },
                              +[]() -> uint64_t { return 222; });
  memory::sampleGauges();
  memory::setRssSourceForTest(nullptr, nullptr);
  EXPECT_EQ(telemetry::metrics().gauge("mem.current_rss_kb").value(), 111);
  EXPECT_EQ(telemetry::metrics().gauge("mem.peak_rss_kb").value(), 222);
  telemetry::reset();
}
#endif // NAMER_TELEMETRY

TEST(ObsSnapshotter, FlushNowAndFlushOnDestruction) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "namer-obs-snap.prom").string();
  {
    telemetry::MetricsSnapshotter::Options O;
    O.Path = Path;
    O.Export.GitRev = "feedface";
    telemetry::MetricsSnapshotter Snap(O);
    EXPECT_EQ(Snap.flushes(), 0u);
    Snap.flushNow();
    EXPECT_EQ(Snap.flushes(), 1u);
    std::string Doc = slurp(Path);
    EXPECT_EQ(Doc.rfind("# namer prometheus text exposition", 0), 0u);
    EXPECT_NE(Doc.find("namer_build_info{git_rev=\"feedface\""),
              std::string::npos);
  } // destruction writes the final exposition (flush-on-exit)
  EXPECT_FALSE(slurp(Path).empty());
  // Atomic write: no .tmp left behind.
  EXPECT_FALSE(fs::exists(Path + ".tmp"));
  fs::remove(Path);
}

TEST(ObsSnapshotter, PeriodicIntervalFlushes) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "namer-obs-snap-interval.prom").string();
  telemetry::MetricsSnapshotter::Options O;
  O.Path = Path;
  O.IntervalMs = 1;
  {
    telemetry::MetricsSnapshotter Snap(O);
    // The background thread must flush on its own; wait (bounded) for it.
    for (int Tries = 0; Snap.flushes() == 0 && Tries != 2000; ++Tries)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(Snap.flushes(), 0u);
  }
  EXPECT_FALSE(slurp(Path).empty());
  fs::remove(Path);
}

//===----------------------------------------------------------------------===//
// IoRetry: the one-retry EINTR/short-write contract of io::fwriteAll,
// which RunLedger appends and MetricsSnapshotter expositions write
// through. Failures are injected via setWriteFnForTest -- no signals, no
// timing.
//===----------------------------------------------------------------------===//

#include "support/IoRetry.h"

#include <cerrno>
#include <cstdio>

namespace {

/// Injected write behavior: the first GShortCalls calls write only half
/// of what they were asked (actually writing those bytes, as a real
/// interrupted fwrite would) and set errno to EINTR; later calls pass
/// through. File-scope because WriteFn is a plain function pointer.
int GShortCalls = 0;
size_t shortThenFullWrite(const void *Ptr, size_t ItemSize, size_t Count,
                          std::FILE *File) {
  if (GShortCalls > 0) {
    --GShortCalls;
    size_t Half = Count / 2;
    size_t Wrote = std::fwrite(Ptr, ItemSize, Half, File);
    errno = EINTR;
    return Wrote;
  }
  return std::fwrite(Ptr, ItemSize, Count, File);
}

std::string readAll(std::FILE *File) {
  std::fflush(File);
  std::rewind(File);
  std::string Out;
  char Buf[256];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  return Out;
}

} // namespace

TEST(IoRetry, RecoversFromOneShortWrite) {
  std::FILE *File = std::tmpfile();
  ASSERT_NE(File, nullptr);
  GShortCalls = 1;
  io::setWriteFnForTest(shortThenFullWrite);
  const std::string Line = "{\"event\":\"run_end\",\"outcome\":\"ok\"}\n";
  bool Ok = io::fwriteAll(File, Line.data(), Line.size());
  io::setWriteFnForTest(nullptr);
  EXPECT_TRUE(Ok) << "one EINTR short write must be absorbed";
  // Nothing lost, nothing duplicated: the retry pushed exactly the
  // remainder.
  EXPECT_EQ(readAll(File), Line);
  std::fclose(File);
}

TEST(IoRetry, SurfacesPersistentShortWrites) {
  std::FILE *File = std::tmpfile();
  ASSERT_NE(File, nullptr);
  GShortCalls = 2; // both the write and its one retry come up short
  io::setWriteFnForTest(shortThenFullWrite);
  const std::string Line(64, 'x');
  EXPECT_FALSE(io::fwriteAll(File, Line.data(), Line.size()));
  io::setWriteFnForTest(nullptr);
  std::fclose(File);
}

TEST(IoRetry, CleanWritesBypassTheRetryPath) {
  std::FILE *File = std::tmpfile();
  ASSERT_NE(File, nullptr);
  const std::string Line = "plain\n";
  EXPECT_TRUE(io::fwriteAll(File, Line.data(), Line.size()));
  EXPECT_EQ(readAll(File), Line);
  std::fclose(File);
}

TEST(IoRetry, LedgerAppendsSurviveInjectedShortWrites) {
  // End to end through RunLedger: every append goes through fwriteAll, so
  // a ledger written entirely under injected EINTR short writes must be
  // byte-identical to a clean one.
  namespace fs = std::filesystem;
  auto WriteLedger = [](const std::string &Path, bool Inject) {
    ledger::RunLedger Ledger;
    ASSERT_TRUE(Ledger.open(Path, "rev-test"));
    for (int I = 0; I != 8; ++I) {
      if (Inject) {
        GShortCalls = 1;
        io::setWriteFnForTest(shortThenFullWrite);
      }
      ledger::Record R;
      R.Event = "phase";
      R.Name = "p" + std::to_string(I);
      Ledger.append(R);
      io::setWriteFnForTest(nullptr);
    }
    Ledger.close();
  };
  std::string Clean = (fs::temp_directory_path() / "ioretry_clean.jsonl")
                          .string();
  std::string Faulty = (fs::temp_directory_path() / "ioretry_faulty.jsonl")
                           .string();
  WriteLedger(Clean, false);
  WriteLedger(Faulty, true);
  std::ifstream A(Clean, std::ios::binary), B(Faulty, std::ios::binary);
  std::stringstream SA, SB;
  SA << A.rdbuf();
  SB << B.rdbuf();
  EXPECT_EQ(SA.str(), SB.str());
  EXPECT_FALSE(SA.str().empty());
  fs::remove(Clean);
  fs::remove(Faulty);
}
