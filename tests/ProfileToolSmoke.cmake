# Smoke test: the namer-profile exit-code contract on the committed
# fixtures under tests/data/profile (0 ok, 1 io/parse error, 2 usage
# error, 5 regression -- shared with namer-statdiff). Invoked by ctest as
#   cmake -DNAMER_PROFILE=<exe> -DDATA=<dir> -P ProfileToolSmoke.cmake

foreach(Var NAMER_PROFILE DATA)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "ProfileToolSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

function(run_profile ExpectRc)
  execute_process(
    COMMAND "${NAMER_PROFILE}" ${ARGN}
    RESULT_VARIABLE Rc
    OUTPUT_VARIABLE Stdout
    ERROR_VARIABLE Stderr)
  if(NOT Rc EQUAL ${ExpectRc})
    message(FATAL_ERROR "namer-profile ${ARGN}: rc=${Rc}, want ${ExpectRc}\n"
        "stdout:\n${Stdout}\nstderr:\n${Stderr}")
  endif()
  set(Stdout "${Stdout}" PARENT_SCOPE)
endfunction()

# Report mode: top table + inverted callers over the base fixture.
run_profile(0 --inverted "${DATA}/base.folded")
foreach(Needle
    "700 samples"
    "parse.python"
    "inverted callers"
    "<- pipeline.ingest 400")
  string(FIND "${Stdout}" "${Needle}" At)
  if(At EQUAL -1)
    message(FATAL_ERROR "report is missing '${Needle}':\n${Stdout}")
  endif()
endforeach()

# Diff of a profile against itself stays under any threshold.
run_profile(0 --diff --threshold=0.5 "${DATA}/base.folded" "${DATA}/base.folded")
string(FIND "${Stdout}" "ok (no frame past threshold)" At)
if(At EQUAL -1)
  message(FATAL_ERROR "self-diff did not report ok:\n${Stdout}")
endif()

# parse.python grows 400 -> 900 self samples (+125%) in the regress
# fixture: past the 50% gate, exit 5; pipeline.scan's +5% stays under it.
run_profile(5 --diff --threshold=0.5 "${DATA}/base.folded"
    "${DATA}/regress.folded")
string(FIND "${Stdout}" "REGRESSION frame parse.python: self 400 -> 900" At)
if(At EQUAL -1)
  message(FATAL_ERROR "diff did not flag the seeded regression:\n${Stdout}")
endif()
string(FIND "${Stdout}" "REGRESSION frame pipeline.scan" At)
if(NOT At EQUAL -1)
  message(FATAL_ERROR "diff flagged the under-threshold frame:\n${Stdout}")
endif()

# Without --threshold the same diff only reports (no gate).
run_profile(0 --diff "${DATA}/base.folded" "${DATA}/regress.folded")

# Usage errors: missing positional args, diff with one input, bad flag.
run_profile(2)
run_profile(2 --diff "${DATA}/base.folded")
run_profile(2 --no-such-flag "${DATA}/base.folded")

# I/O error: unreadable input.
run_profile(1 "${DATA}/no-such-profile.folded")

message(STATUS "namer-profile smoke OK: exit-code contract holds")
