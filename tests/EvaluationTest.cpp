//===- tests/EvaluationTest.cpp - Section 5 protocol tests ----------------==//

#include "namer/Evaluation.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace namer;
using corpus::InspectionOutcome;

namespace {

struct ProtocolFixture {
  corpus::Corpus C;
  std::unique_ptr<corpus::InspectionOracle> Oracle;
  std::unique_ptr<NamerPipeline> Pipeline;

  ProtocolFixture() {
    corpus::CorpusConfig Config;
    Config.NumRepos = 60;
    C = corpus::generateCorpus(Config);
    Oracle = std::make_unique<corpus::InspectionOracle>(C);
    PipelineConfig PC;
    PC.Miner.MinPatternSupport = 20;
    Pipeline = std::make_unique<NamerPipeline>(PC);
    Pipeline->build(C);
  }

  static ProtocolFixture &get() {
    static ProtocolFixture F;
    return F;
  }
};

} // namespace

TEST(EvaluationProtocol, BalancedLabelsAreBalanced) {
  auto &F = ProtocolFixture::get();
  std::vector<size_t> Indices;
  std::vector<bool> Labels;
  collectBalancedLabels(*F.Pipeline, *F.Oracle, 60, /*Seed=*/3, Indices,
                        Labels);
  ASSERT_EQ(Indices.size(), Labels.size());
  ASSERT_GE(Indices.size(), 40u) << "enough violations for labeling";
  size_t True = 0;
  for (bool L : Labels)
    True += L;
  // Exactly half/half when both classes were available.
  EXPECT_EQ(True, Labels.size() / 2);
  // Indices unique.
  std::unordered_set<size_t> Unique(Indices.begin(), Indices.end());
  EXPECT_EQ(Unique.size(), Indices.size());
}

TEST(EvaluationProtocol, LabelsMatchTheOracle) {
  auto &F = ProtocolFixture::get();
  std::vector<size_t> Indices;
  std::vector<bool> Labels;
  collectBalancedLabels(*F.Pipeline, *F.Oracle, 40, /*Seed=*/5, Indices,
                        Labels);
  for (size_t I = 0; I != Indices.size(); ++I) {
    Report R = F.Pipeline->makeReport(F.Pipeline->violations()[Indices[I]]);
    auto Out = F.Oracle->inspect(R.File, R.Line, R.Original, R.Suggested);
    bool IsTrue = Out.Result != InspectionOutcome::Verdict::FalsePositive;
    EXPECT_EQ(Labels[I], IsTrue);
  }
}

TEST(EvaluationProtocol, EvaluationExcludesTrainingViolations) {
  // The paper tests "excluding the samples used for training". Since
  // sampled reports carry their violation's statement id and fix, check
  // no evaluated report coincides with a training index's report.
  auto &F = ProtocolFixture::get();
  EvaluationConfig Config;
  Config.NumLabeled = 40;
  Config.NumEvaluated = 100;
  Config.Seed = 11;
  EvaluationResult R = evaluatePipeline(*F.Pipeline, *F.Oracle, Config);
  EXPECT_LE(R.ViolationsEvaluated, 100u);
  EXPECT_LE(R.numReports(), R.ViolationsEvaluated);

  std::vector<size_t> TrainIdx;
  std::vector<bool> TrainLabels;
  collectBalancedLabels(*F.Pipeline, *F.Oracle, 40, Config.Seed, TrainIdx,
                        TrainLabels);
  std::unordered_set<std::string> TrainKeys;
  for (size_t I : TrainIdx) {
    Report Rep = F.Pipeline->makeReport(F.Pipeline->violations()[I]);
    TrainKeys.insert(Rep.File + ":" + std::to_string(Rep.Line) + ":" +
                     Rep.Original + ">" + Rep.Suggested);
  }
  for (const InspectedReport &IR : R.Reports) {
    std::string Key = IR.R.File + ":" + std::to_string(IR.R.Line) + ":" +
                      IR.R.Original + ">" + IR.R.Suggested;
    EXPECT_FALSE(TrainKeys.count(Key))
        << "evaluated report overlaps the training set: " << Key;
  }
}

TEST(EvaluationProtocol, ResultArithmeticIsConsistent) {
  auto &F = ProtocolFixture::get();
  EvaluationConfig Config;
  Config.NumLabeled = 40;
  Config.NumEvaluated = 120;
  EvaluationResult R = evaluatePipeline(*F.Pipeline, *F.Oracle, Config);
  EXPECT_EQ(R.numSemantic() + R.numQuality() + R.numFalsePositives(),
            R.numReports());
  if (R.numReports() > 0) {
    double Expected =
        static_cast<double>(R.numSemantic() + R.numQuality()) /
        static_cast<double>(R.numReports());
    EXPECT_DOUBLE_EQ(R.precision(), Expected);
  }
  size_t BreakdownTotal = 0;
  for (const auto &[Category, Count] : R.qualityBreakdown())
    BreakdownTotal += Count;
  EXPECT_EQ(BreakdownTotal, R.numQuality());
}

TEST(EvaluationProtocol, DeterministicGivenSeed) {
  // Two evaluations of separately built (identical) pipelines agree.
  corpus::CorpusConfig Config;
  Config.NumRepos = 40;
  corpus::Corpus C = corpus::generateCorpus(Config);
  corpus::InspectionOracle Oracle(C);
  EvaluationConfig EC;
  EC.NumLabeled = 40;
  EC.NumEvaluated = 80;

  auto RunOnce = [&] {
    PipelineConfig PC;
    PC.Miner.MinPatternSupport = 20;
    NamerPipeline P(PC);
    P.build(C);
    return evaluatePipeline(P, Oracle, EC);
  };
  EvaluationResult A = RunOnce();
  EvaluationResult B = RunOnce();
  EXPECT_EQ(A.numReports(), B.numReports());
  EXPECT_EQ(A.numSemantic(), B.numSemantic());
  EXPECT_EQ(A.numFalsePositives(), B.numFalsePositives());
  EXPECT_EQ(A.SelectedModel, B.SelectedModel);
}

TEST(EvaluationProtocol, NoClassifierModeReportsEverything) {
  corpus::CorpusConfig Config;
  Config.NumRepos = 40;
  corpus::Corpus C = corpus::generateCorpus(Config);
  corpus::InspectionOracle Oracle(C);
  PipelineConfig PC;
  PC.UseClassifier = false;
  PC.Miner.MinPatternSupport = 20;
  NamerPipeline P(PC);
  P.build(C);
  EvaluationConfig EC;
  EC.NumLabeled = 40;
  EC.NumEvaluated = 100;
  EvaluationResult R = evaluatePipeline(P, Oracle, EC);
  // Every sampled violation becomes a report ("w/o C" rows of Table 2).
  EXPECT_EQ(R.numReports(), R.ViolationsEvaluated);
}
