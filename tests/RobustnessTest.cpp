//===- tests/RobustnessTest.cpp - frontend/datalog robustness -------------==//
//
// The mining corpus is real-world-shaped: the frontends must survive any
// input without crashing, and the Datalog engine must agree with a naive
// reference evaluator on randomized programs.
//
// The hardened-ingestion sections below pin the fault-tolerance contract
// (DESIGN.md, "Fault tolerance"): the on-disk adversarial corpus and
// generated nesting/identifier bombs parse without crashing and land in
// the right DiagKind taxonomy; resource budgets quarantine exactly the
// offending files; and both the budget and the fault-injection paths stay
// bitwise deterministic across thread counts.
//
//===----------------------------------------------------------------------===//

#include "analysis/Origins.h"
#include "analysis/datalog/Datalog.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "namer/FindingsExport.h"
#include "namer/ModelStore.h"
#include "namer/Pipeline.h"
#include "support/Arena.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"
#include "transform/AstPlus.h"

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

using namespace namer;
using namespace namer::datalog;

// --- Frontend robustness: never crash, always produce a tree ------------------

class PythonTortureTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PythonTortureTest, ParsesWithoutCrashing) {
  AstContext Ctx;
  auto R = python::parsePython(GetParam(), Ctx);
  EXPECT_FALSE(R.Module.empty());
  // The full downstream pipeline must also survive.
  auto Origins = computeOrigins(R.Module, WellKnownRegistry::forPython());
  transformToAstPlus(R.Module, Origins.Origins);
}

INSTANTIATE_TEST_SUITE_P(
    Torture, PythonTortureTest,
    ::testing::Values(
        "",                                   // empty file
        "\n\n\n",                             // blank lines only
        "# only a comment\n",                 //
        "def broken(:\n    pass\n",           // bad parameter list
        "x = (1 +\n",                         // unterminated paren
        "class C:\npass\n",                   // missing indent
        "if x:\n        y = 1\n  z = 2\n",    // inconsistent dedent
        "x = 'unterminated\ny = 2\n",         // unterminated string
        "def f():\n    return ]\n",           // stray bracket
        "for in range(10):\n    pass\n",      // missing target
        "x = y = = 3\n",                      // double equals sign
        "\t x = 1\n",                         // tab/space mix
        "lambda: lambda: 0\n",                // nested lambdas
        "x = {1: , 2: 3}\n",                  // hole in dict
        "@@@\nx = 1\n"));                     // garbage decorators

class JavaTortureTest : public ::testing::TestWithParam<const char *> {};

TEST_P(JavaTortureTest, ParsesWithoutCrashing) {
  AstContext Ctx;
  auto R = java::parseJava(GetParam(), Ctx);
  EXPECT_FALSE(R.Module.empty());
  auto Origins = computeOrigins(R.Module, WellKnownRegistry::forJava());
  transformToAstPlus(R.Module, Origins.Origins);
}

INSTANTIATE_TEST_SUITE_P(
    Torture, JavaTortureTest,
    ::testing::Values(
        "",                                       //
        "class",                                  // truncated declaration
        "class C {",                              // unterminated body
        "class C { void m() { int x = ; } }",     // missing initializer
        "class C { void m() { f(((((; } }",       // paren storm
        "class C { int = 5; }",                   // missing field name
        "class C { void m() { \"unterminated } }",// broken string
        "class C { void m() { x++++; } }",        // operator pileup
        "interface I { void m(int); }",           // unnamed parameter
        "enum E { , }",                           // empty constants
        "class C { C() { this( } }",              // broken ctor
        "/* unterminated comment",                //
        "class C<T extends { }"));                // broken generics

// Fuzz-lite: random token soup must never crash either frontend.
TEST(FrontendFuzz, RandomTokenSoup) {
  const char *Tokens[] = {"def",  "class", "if",   "(",    ")",   ":",
                          "=",    "x",     "self", "1",    "'s'", ",",
                          ".",    "\n",    "    ", "for",  "in",  "+",
                          "{",    "}",     "[",    "]",    ";",   "try",
                          "void", "int",   "new",  "while"};
  Rng G(99);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string Source;
    size_t Len = 5 + G.bounded(60);
    for (size_t I = 0; I != Len; ++I) {
      Source += Tokens[G.bounded(sizeof(Tokens) / sizeof(Tokens[0]))];
      Source += G.chance(0.3) ? "" : " ";
    }
    Source += "\n";
    AstContext Ctx1, Ctx2;
    (void)python::parsePython(Source, Ctx1);
    (void)java::parseJava(Source, Ctx2);
  }
  SUCCEED();
}

// --- Adversarial corpus: the on-disk torture files ----------------------------

namespace {

std::string readFileBytes(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Parses \p Text with the frontend matching \p Ext and returns the diag
/// kinds it produced. Every call also drives the downstream transform so
/// the whole single-file path is exercised, not just the parser.
std::set<frontend::DiagKind> parseAdversarial(const std::string &Ext,
                                              const std::string &Text) {
  AstContext Ctx;
  std::set<frontend::DiagKind> Kinds;
  if (Ext == ".py") {
    auto R = python::parsePython(Text, Ctx);
    EXPECT_FALSE(R.Module.empty());
    for (const frontend::Diag &D : R.Diags)
      Kinds.insert(D.Kind);
    auto Origins = computeOrigins(R.Module, WellKnownRegistry::forPython());
    transformToAstPlus(R.Module, Origins.Origins);
  } else {
    auto R = java::parseJava(Text, Ctx);
    EXPECT_FALSE(R.Module.empty());
    for (const frontend::Diag &D : R.Diags)
      Kinds.insert(D.Kind);
    auto Origins = computeOrigins(R.Module, WellKnownRegistry::forJava());
    transformToAstPlus(R.Module, Origins.Origins);
  }
  return Kinds;
}

} // namespace

TEST(AdversarialCorpus, EveryFileParsesAndClassifiesCorrectly) {
  namespace fs = std::filesystem;
  fs::path Dir(NAMER_ADVERSARIAL_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;

  std::set<frontend::DiagKind> Seen;
  size_t NumFiles = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    std::string Ext = E.path().extension().string();
    if (Ext != ".py" && Ext != ".java")
      continue;
    ++NumFiles;
    std::string Text = readFileBytes(E.path());
    ASSERT_FALSE(Text.empty()) << E.path();
    std::set<frontend::DiagKind> Kinds = parseAdversarial(Ext, Text);
    EXPECT_FALSE(Kinds.empty())
        << E.path() << ": adversarial input produced no diagnostics";
    Seen.insert(Kinds.begin(), Kinds.end());
  }
  ASSERT_GE(NumFiles, 6u) << "adversarial corpus went missing";

  // The corpus is built to cover the lexer side of the taxonomy plus the
  // depth guard; a regression that stops classifying one of these shows up
  // here by kind, not by message string.
  EXPECT_TRUE(Seen.count(frontend::DiagKind::LexInvalidChar));
  EXPECT_TRUE(Seen.count(frontend::DiagKind::LexUnterminatedString));
  EXPECT_TRUE(Seen.count(frontend::DiagKind::LexUnterminatedComment));
  EXPECT_TRUE(Seen.count(frontend::DiagKind::DepthExceeded));
}

TEST(AdversarialGenerated, TenThousandDeepNestingDegradesGracefully) {
  // 10k-deep nesting bombs: the depth guard must emit error nodes instead
  // of recursing (a stack overflow here crashes the whole test binary).
  std::string PyBomb =
      "x = " + std::string(10000, '(') + "1" + std::string(10000, ')') + "\n";
  {
    AstContext Ctx;
    auto R = python::parsePython(PyBomb, Ctx);
    EXPECT_TRUE(R.DepthExceeded);
    bool HasDepthDiag = false;
    for (const frontend::Diag &D : R.Diags)
      HasDepthDiag |= D.Kind == frontend::DiagKind::DepthExceeded;
    EXPECT_TRUE(HasDepthDiag);
  }
  std::string JavaBomb = "class C { int x = " + std::string(10000, '(') +
                         "1" + std::string(10000, ')') + "; }\n";
  {
    AstContext Ctx;
    auto R = java::parseJava(JavaBomb, Ctx);
    EXPECT_TRUE(R.DepthExceeded);
  }
}

TEST(AdversarialGenerated, FiveMegabyteIdentifierLexes) {
  std::string Huge(5u << 20, 'a');
  {
    AstContext Ctx;
    auto R = python::parsePython(Huge + " = 1\n", Ctx);
    EXPECT_FALSE(R.Module.empty());
    EXPECT_FALSE(R.DepthExceeded);
  }
  {
    AstContext Ctx;
    auto R = java::parseJava("class C { int " + Huge + " = 1; }\n", Ctx);
    EXPECT_FALSE(R.Module.empty());
  }
}

// --- Ingestion budgets: quarantine taxonomy and thread determinism ------------

namespace {

/// A handcrafted corpus: nine well-formed files plus one per budget kind,
/// at known paths, so quarantine assertions can be exact.
corpus::Corpus makeBudgetCorpus() {
  corpus::Corpus C;
  C.Lang = corpus::Language::Python;
  for (int RI = 0; RI != 3; ++RI) {
    corpus::Repository Repo;
    Repo.Name = "repo" + std::to_string(RI);
    for (int FI = 0; FI != 3; ++FI) {
      std::string Path =
          Repo.Name + "/f" + std::to_string(FI) + ".py";
      Repo.Files.push_back(corpus::SourceFile{
          Path,
          "def handler(request, response):\n"
          "    value = request.read()\n"
          "    response.write(value)\n",
          {}});
    }
    C.Repos.push_back(std::move(Repo));
  }
  // One file per content-deterministic budget kind.
  C.Repos[0].Files.push_back(corpus::SourceFile{
      "repo0/too_big.py", "x = 1\n" + std::string(4096, '#') + "\n", {}});
  // 600+ tokens in well under MaxFileBytes, so only the token cap fires.
  std::string ManyTokens;
  for (int I = 0; I != 150; ++I)
    ManyTokens += "a = 1\n";
  C.Repos[1].Files.push_back(
      corpus::SourceFile{"repo1/token_bomb.py", ManyTokens, {}});
  C.Repos[2].Files.push_back(corpus::SourceFile{
      "repo2/deep.py",
      "x = " + std::string(120, '(') + "1" + std::string(120, ')') + "\n",
      {}});
  return C;
}

struct BudgetBuild {
  corpus::Corpus C;
  std::unique_ptr<NamerPipeline> P;
  std::string FindingsBytes;
};

BudgetBuild buildBudgeted(unsigned Threads) {
  BudgetBuild Out;
  Out.C = makeBudgetCorpus();
  PipelineConfig PC;
  PC.Threads = Threads;
  PC.Limits.MaxFileBytes = 2048;
  PC.Limits.MaxTokens = 300;
  PC.Limits.MaxNestingDepth = 50;
  Out.P = std::make_unique<NamerPipeline>(PC);
  Out.P->build(Out.C);

  // Render the machine-facing export over whatever was mined; on this tiny
  // corpus the findings list is usually empty, which is exactly the byte
  // string the determinism assertion wants to compare.
  std::vector<Explanation> Findings;
  for (const Violation &V : Out.P->violations())
    Findings.push_back(explainViolation(*Out.P, V));
  sortExplanations(Findings);
  ExportMeta Meta;
  Meta.QuarantinedFiles = Out.P->numQuarantined();
  Out.FindingsBytes = findingsJson(Findings, Meta);
  return Out;
}

/// kind name of the quarantine record for \p Path, or "" if not present.
std::string quarantineKindOf(const NamerPipeline &P, const std::string &Path) {
  for (const ingest::QuarantineRecord &R : P.quarantine().records())
    if (R.File == Path)
      return std::string(ingest::ingestErrorKindName(R.Kind));
  return "";
}

} // namespace

TEST(IngestBudgets, QuarantinesEachBudgetKindWithoutAborting) {
  BudgetBuild B = buildBudgeted(2);
  ASSERT_EQ(B.P->numQuarantined(), 3u);
  EXPECT_EQ(quarantineKindOf(*B.P, "repo0/too_big.py"), "file-too-large");
  EXPECT_EQ(quarantineKindOf(*B.P, "repo1/token_bomb.py"), "token-budget");
  EXPECT_EQ(quarantineKindOf(*B.P, "repo2/deep.py"), "depth-budget");
  // The nine well-formed files all survived.
  EXPECT_EQ(B.P->numFiles(), 9u);
  // Quarantine records never leak into statements.
  for (const StmtRecord &S : B.P->statements())
    EXPECT_EQ(B.P->filePath(S.File).find("too_big"), std::string::npos);
}

TEST(IngestBudgets, QuarantineAndFindingsAreByteIdenticalAcrossThreads) {
  BudgetBuild One = buildBudgeted(1);
  BudgetBuild Eight = buildBudgeted(8);
  EXPECT_EQ(One.P->quarantine().json(), Eight.P->quarantine().json());
  EXPECT_EQ(One.FindingsBytes, Eight.FindingsBytes);
  EXPECT_EQ(One.P->numFiles(), Eight.P->numFiles());
  ASSERT_EQ(One.P->statements().size(), Eight.P->statements().size());
}

// --- Model store robustness: corrupt models fail typed, never crash ----------

namespace {

/// A tiny mined model's bytes, produced through the real save path.
std::string makeModelBytes() {
  corpus::Corpus C;
  C.Lang = corpus::Language::Python;
  corpus::Repository Repo;
  Repo.Name = "modelrepo";
  for (int FI = 0; FI != 4; ++FI)
    Repo.Files.push_back(corpus::SourceFile{
        Repo.Name + "/f" + std::to_string(FI) + ".py",
        "def handler(request, response):\n"
        "    value = request.read()\n"
        "    response.write(value)\n",
        {}});
  C.Repos.push_back(std::move(Repo));
  PipelineConfig PC;
  PC.Threads = 1;
  NamerPipeline P(PC);
  P.build(C);
  std::string Path =
      (std::filesystem::temp_directory_path() / "robustness-model.nmr")
          .string();
  P.saveModel(Path);
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::filesystem::remove(Path);
  return Buf.str();
}

} // namespace

TEST(ModelRobustness, AdversarialFilesFailWithTheDocumentedKind) {
  // The committed files each trip exactly one validation layer; the
  // loader must answer with that layer's ModelErrorKind through the real
  // mmap-backed load path.
  const std::pair<const char *, model::ModelErrorKind> Cases[] = {
      {"bad_magic.nmr", model::ModelErrorKind::BadMagic},
      {"bad_endian.nmr", model::ModelErrorKind::BadEndian},
      {"bad_version.nmr", model::ModelErrorKind::BadVersion},
      {"truncated.nmr", model::ModelErrorKind::Truncated},
      {"bad_checksum.nmr", model::ModelErrorKind::BadChecksum},
  };
  for (const auto &[Name, Kind] : Cases) {
    std::string Path = std::string(NAMER_MODEL_DATA_DIR) + "/" + Name;
    ASSERT_TRUE(std::filesystem::exists(Path)) << Path;
    Arena Mem;
    try {
      (void)model::load(Path, Mem);
      FAIL() << Name << " loaded successfully";
    } catch (const model::ModelError &E) {
      EXPECT_EQ(E.kind(), Kind) << Name << ": " << E.what();
    }
  }
}

TEST(ModelRobustness, RandomCorruptionNeverCrashes) {
  std::string Bytes = makeModelBytes();
  ASSERT_GT(Bytes.size(), 256u);
  Rng G(2024);

  // Random single-byte corruption anywhere in the image: parse either
  // succeeds (a benign mutation, e.g. a zero-length section's offset) or
  // throws a typed ModelError. Anything else -- a crash, a foreign
  // exception -- fails the test (and the asan preset catches reads the
  // bounds checks missed).
  for (int I = 0; I != 300; ++I) {
    std::string Mutated = Bytes;
    size_t At = G.bounded(Mutated.size());
    Mutated[At] = static_cast<char>(G.next() & 0xFF);
    try {
      (void)model::parse(Mutated);
    } catch (const model::ModelError &) {
    }
  }

  // Every prefix-truncation class, same contract.
  for (int I = 0; I != 100; ++I) {
    size_t Len = G.bounded(Bytes.size());
    try {
      (void)model::parse(std::string_view(Bytes).substr(0, Len));
    } catch (const model::ModelError &) {
    }
  }

  // Random tails appended after a valid image must also stay typed (the
  // section table ignores trailing bytes only if every section still
  // parses; garbage is rejected, not read out of bounds).
  for (int I = 0; I != 50; ++I) {
    std::string Mutated = Bytes;
    size_t Extra = 1 + G.bounded(64);
    for (size_t J = 0; J != Extra; ++J)
      Mutated.push_back(static_cast<char>(G.next() & 0xFF));
    try {
      (void)model::parse(Mutated);
    } catch (const model::ModelError &) {
    }
  }
}

#if NAMER_FAULT_INJECTION

// --- Fault injection: forced faults quarantine exactly the armed files -------

namespace {

/// Well-formed corpus (nothing quarantines naturally at default limits).
corpus::Corpus makeCleanCorpus() {
  corpus::Corpus C;
  C.Lang = corpus::Language::Python;
  for (int RI = 0; RI != 3; ++RI) {
    corpus::Repository Repo;
    Repo.Name = "clean" + std::to_string(RI);
    for (int FI = 0; FI != 3; ++FI)
      Repo.Files.push_back(corpus::SourceFile{
          Repo.Name + "/f" + std::to_string(FI) + ".py",
          "def handler(request, response):\n"
          "    value = request.read()\n"
          "    response.write(value)\n",
          {}});
    C.Repos.push_back(std::move(Repo));
  }
  return C;
}

BudgetBuild buildInjected(unsigned Threads) {
  BudgetBuild Out;
  Out.C = makeCleanCorpus();
  PipelineConfig PC;
  PC.Threads = Threads;
  Out.P = std::make_unique<NamerPipeline>(PC);
  Out.P->build(Out.C);
  std::vector<Explanation> Findings;
  for (const Violation &V : Out.P->violations())
    Findings.push_back(explainViolation(*Out.P, V));
  sortExplanations(Findings);
  ExportMeta Meta;
  Meta.QuarantinedFiles = Out.P->numQuarantined();
  Out.FindingsBytes = findingsJson(Findings, Meta);
  return Out;
}

} // namespace

TEST(FaultInjection, ThreeKindsQuarantineExactlyTheArmedFiles) {
  faultinject::disarm();
  // One armed file per fault kind: Throw exercises worker-exception
  // attribution, Timeout the deadline path, BudgetExhausted the budget
  // path -- three distinct IngestErrorKinds from three distinct faults.
  faultinject::arm("pipeline.ingest", "clean0/f1.py",
                   faultinject::FaultKind::Throw);
  faultinject::arm("pipeline.ingest", "clean1/f2.py",
                   faultinject::FaultKind::Timeout);
  faultinject::arm("pipeline.ingest", "clean2/f0.py",
                   faultinject::FaultKind::BudgetExhausted);

  BudgetBuild One = buildInjected(1);
  BudgetBuild Eight = buildInjected(8);
  faultinject::disarm();

  ASSERT_EQ(One.P->numQuarantined(), 3u);
  EXPECT_EQ(quarantineKindOf(*One.P, "clean0/f1.py"), "worker-exception");
  EXPECT_EQ(quarantineKindOf(*One.P, "clean1/f2.py"), "deadline");
  EXPECT_EQ(quarantineKindOf(*One.P, "clean2/f0.py"), "node-budget");
  EXPECT_EQ(One.P->numFiles(), 6u);

  // Bitwise identity across thread counts, including the injected faults.
  EXPECT_EQ(One.P->quarantine().json(), Eight.P->quarantine().json());
  EXPECT_EQ(One.FindingsBytes, Eight.FindingsBytes);
}

TEST(FaultInjection, SeededRuleSelectsTheSameFilesAtEveryThreadCount) {
  faultinject::disarm();
  faultinject::armSeeded("parse.python", /*Seed=*/42, /*Rate=*/0.5,
                         faultinject::FaultKind::Throw);
  BudgetBuild One = buildInjected(1);
  uint64_t FiredOne = faultinject::firedCount();
  BudgetBuild Eight = buildInjected(8);
  faultinject::disarm();

  EXPECT_GT(FiredOne, 0u) << "rate 0.5 over 9 files never fired";
  for (const ingest::QuarantineRecord &R : One.P->quarantine().records())
    EXPECT_EQ(std::string(ingest::ingestErrorKindName(R.Kind)),
              "worker-exception");
  EXPECT_EQ(One.P->quarantine().json(), Eight.P->quarantine().json());
  EXPECT_EQ(One.FindingsBytes, Eight.FindingsBytes);
}

TEST(FaultInjection, HistoryMiningFaultDoesNotAbortTheBuild) {
  faultinject::disarm();
  faultinject::arm("pipeline.histmine", "commit:0",
                   faultinject::FaultKind::Throw);
  corpus::Corpus C = makeCleanCorpus();
  C.Commits.push_back(corpus::CommitPair{
      "def f(recieve):\n    return recieve\n",
      "def f(receive):\n    return receive\n"});
  PipelineConfig PC;
  PC.Threads = 2;
  NamerPipeline P(PC);
  P.build(C);
  faultinject::disarm();
  // The failed commit contributes no renames and no quarantine records
  // (commits are not files), and the build still completes.
  EXPECT_EQ(P.numQuarantined(), 0u);
  EXPECT_EQ(P.pairs().numPairs(), 0u);
}

TEST(FaultInjection, ModelSaveShortWriteFailsTypedAndLeavesLoadableError) {
  std::string Bytes = makeModelBytes();
  std::string Path =
      (std::filesystem::temp_directory_path() / "fault-model-save.nmr")
          .string();
  std::ofstream(Path, std::ios::binary) << Bytes;

  // A non-Throw fault at model.save becomes a short write: the saver
  // reports ModelError{Io} and the half-written file lands on disk.
  corpus::Corpus C;
  C.Lang = corpus::Language::Python;
  corpus::Repository Repo;
  Repo.Name = "modelrepo";
  Repo.Files.push_back(corpus::SourceFile{
      "modelrepo/f.py", "def handler(x):\n    return x\n", {}});
  C.Repos.push_back(std::move(Repo));
  PipelineConfig PC;
  PC.Threads = 1;
  NamerPipeline P(PC);
  P.build(C);

  faultinject::disarm();
  faultinject::arm("model.save", Path, faultinject::FaultKind::Timeout);
  try {
    P.saveModel(Path);
    FAIL() << "expected ModelError from injected short write";
  } catch (const model::ModelError &E) {
    EXPECT_EQ(E.kind(), model::ModelErrorKind::Io);
  }
  faultinject::disarm();

  // The truncated artifact on disk is itself a typed load failure, not a
  // crash -- the injected save feeds the load-robustness contract.
  Arena Mem;
  try {
    (void)model::load(Path, Mem);
    FAIL() << "expected ModelError from truncated file";
  } catch (const model::ModelError &) {
  }
  std::filesystem::remove(Path);
}

TEST(FaultInjection, ModelLoadShortReadFailsTyped) {
  std::string Bytes = makeModelBytes();
  std::string Path =
      (std::filesystem::temp_directory_path() / "fault-model-load.nmr")
          .string();
  std::ofstream(Path, std::ios::binary) << Bytes;

  // A non-Throw fault at model.load halves the mapped image, exercising
  // the natural short-read (Truncated / BadChecksum) paths.
  faultinject::disarm();
  faultinject::arm("model.load", Path, faultinject::FaultKind::Timeout);
  Arena Mem;
  try {
    (void)model::load(Path, Mem);
    FAIL() << "expected ModelError from injected short read";
  } catch (const model::ModelError &E) {
    EXPECT_TRUE(E.kind() == model::ModelErrorKind::Truncated ||
                E.kind() == model::ModelErrorKind::BadChecksum)
        << E.what();
  }
  faultinject::disarm();

  // With the fault disarmed the very same file loads cleanly.
  Arena Mem2;
  model::ModelFile F = model::load(Path, Mem2);
  EXPECT_FALSE(F.Strings.empty());
  std::filesystem::remove(Path);
}

#endif // NAMER_FAULT_INJECTION

// --- Datalog: semi-naive evaluation equals naive fixpoint ----------------------

namespace {

/// Naive reference: re-derive from scratch until no change, using simple
/// nested loops (no deltas, no indexes).
std::set<std::array<Atom, 2>> naiveClosure(
    const std::vector<std::pair<Atom, Atom>> &Edges) {
  std::set<std::array<Atom, 2>> Path(
      [&] {
        std::set<std::array<Atom, 2>> S;
        for (auto [U, V] : Edges)
          S.insert({U, V});
        return S;
      }());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<std::array<Atom, 2>> Fresh;
    for (const auto &P : Path)
      for (auto [U, V] : Edges)
        if (P[1] == U && !Path.count({P[0], V}))
          Fresh.push_back({P[0], V});
    for (const auto &F : Fresh)
      Changed |= Path.insert(F).second;
  }
  return Path;
}

} // namespace

TEST(DatalogProperty, SemiNaiveMatchesNaiveOnRandomGraphs) {
  Rng G(7);
  for (int Trial = 0; Trial != 20; ++Trial) {
    size_t NumNodes = 3 + G.bounded(8);
    size_t NumEdges = 2 + G.bounded(15);
    std::vector<std::pair<Atom, Atom>> Edges;
    for (size_t I = 0; I != NumEdges; ++I)
      Edges.emplace_back(static_cast<Atom>(1 + G.bounded(NumNodes)),
                         static_cast<Atom>(1 + G.bounded(NumNodes)));

    Engine E;
    RelationId Edge = E.addRelation("edge", 2);
    RelationId Path = E.addRelation("path", 2);
    E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(1)}},
                   {Literal{Edge, {Term::var(0), Term::var(1)}}}});
    E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(2)}},
                   {Literal{Path, {Term::var(0), Term::var(1)}},
                    Literal{Edge, {Term::var(1), Term::var(2)}}}});
    for (auto [U, V] : Edges)
      E.addFact(Edge, {U, V});
    E.run();

    auto Expected = naiveClosure(Edges);
    EXPECT_EQ(E.relation(Path).size(), Expected.size()) << "trial " << Trial;
    for (const auto &P : Expected)
      EXPECT_TRUE(E.relation(Path).contains(DlTuple{{P[0], P[1]}}))
          << "missing path " << P[0] << "->" << P[1];
  }
}

TEST(DatalogProperty, RunIsIdempotent) {
  Engine E;
  RelationId Edge = E.addRelation("edge", 2);
  RelationId Path = E.addRelation("path", 2);
  E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(1)}},
                 {Literal{Edge, {Term::var(0), Term::var(1)}}}});
  E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(2)}},
                 {Literal{Path, {Term::var(0), Term::var(1)}},
                  Literal{Edge, {Term::var(1), Term::var(2)}}}});
  E.addFact(Edge, {1, 2});
  E.addFact(Edge, {2, 3});
  E.run();
  size_t After = E.relation(Path).size();
  E.run(); // no new facts: must be a no-op
  EXPECT_EQ(E.relation(Path).size(), After);
}

// Analysis robustness: deep call chains and recursion must terminate fast.
TEST(AnalysisRobustness, RecursiveFunctionsTerminate) {
  AstContext Ctx;
  auto R = python::parsePython("def ping(x):\n"
                               "    return pong(x)\n"
                               "def pong(x):\n"
                               "    return ping(x)\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  // The k-bounded context construction must not blow up on the cycle.
  EXPECT_LE(Result.NumContexts, 4096u);
}

TEST(AnalysisRobustness, SelfReferentialAssignment) {
  AstContext Ctx;
  auto R = python::parsePython("x = x\ny = y.next\n", Ctx);
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  (void)Result;
  SUCCEED();
}
