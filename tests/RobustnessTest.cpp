//===- tests/RobustnessTest.cpp - frontend/datalog robustness -------------==//
//
// The mining corpus is real-world-shaped: the frontends must survive any
// input without crashing, and the Datalog engine must agree with a naive
// reference evaluator on randomized programs.
//
//===----------------------------------------------------------------------===//

#include "analysis/Origins.h"
#include "analysis/datalog/Datalog.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "support/Rng.h"
#include "transform/AstPlus.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

using namespace namer;
using namespace namer::datalog;

// --- Frontend robustness: never crash, always produce a tree ------------------

class PythonTortureTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PythonTortureTest, ParsesWithoutCrashing) {
  AstContext Ctx;
  auto R = python::parsePython(GetParam(), Ctx);
  EXPECT_FALSE(R.Module.empty());
  // The full downstream pipeline must also survive.
  auto Origins = computeOrigins(R.Module, WellKnownRegistry::forPython());
  transformToAstPlus(R.Module, Origins.Origins);
}

INSTANTIATE_TEST_SUITE_P(
    Torture, PythonTortureTest,
    ::testing::Values(
        "",                                   // empty file
        "\n\n\n",                             // blank lines only
        "# only a comment\n",                 //
        "def broken(:\n    pass\n",           // bad parameter list
        "x = (1 +\n",                         // unterminated paren
        "class C:\npass\n",                   // missing indent
        "if x:\n        y = 1\n  z = 2\n",    // inconsistent dedent
        "x = 'unterminated\ny = 2\n",         // unterminated string
        "def f():\n    return ]\n",           // stray bracket
        "for in range(10):\n    pass\n",      // missing target
        "x = y = = 3\n",                      // double equals sign
        "\t x = 1\n",                         // tab/space mix
        "lambda: lambda: 0\n",                // nested lambdas
        "x = {1: , 2: 3}\n",                  // hole in dict
        "@@@\nx = 1\n"));                     // garbage decorators

class JavaTortureTest : public ::testing::TestWithParam<const char *> {};

TEST_P(JavaTortureTest, ParsesWithoutCrashing) {
  AstContext Ctx;
  auto R = java::parseJava(GetParam(), Ctx);
  EXPECT_FALSE(R.Module.empty());
  auto Origins = computeOrigins(R.Module, WellKnownRegistry::forJava());
  transformToAstPlus(R.Module, Origins.Origins);
}

INSTANTIATE_TEST_SUITE_P(
    Torture, JavaTortureTest,
    ::testing::Values(
        "",                                       //
        "class",                                  // truncated declaration
        "class C {",                              // unterminated body
        "class C { void m() { int x = ; } }",     // missing initializer
        "class C { void m() { f(((((; } }",       // paren storm
        "class C { int = 5; }",                   // missing field name
        "class C { void m() { \"unterminated } }",// broken string
        "class C { void m() { x++++; } }",        // operator pileup
        "interface I { void m(int); }",           // unnamed parameter
        "enum E { , }",                           // empty constants
        "class C { C() { this( } }",              // broken ctor
        "/* unterminated comment",                //
        "class C<T extends { }"));                // broken generics

// Fuzz-lite: random token soup must never crash either frontend.
TEST(FrontendFuzz, RandomTokenSoup) {
  const char *Tokens[] = {"def",  "class", "if",   "(",    ")",   ":",
                          "=",    "x",     "self", "1",    "'s'", ",",
                          ".",    "\n",    "    ", "for",  "in",  "+",
                          "{",    "}",     "[",    "]",    ";",   "try",
                          "void", "int",   "new",  "while"};
  Rng G(99);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string Source;
    size_t Len = 5 + G.bounded(60);
    for (size_t I = 0; I != Len; ++I) {
      Source += Tokens[G.bounded(sizeof(Tokens) / sizeof(Tokens[0]))];
      Source += G.chance(0.3) ? "" : " ";
    }
    Source += "\n";
    AstContext Ctx1, Ctx2;
    (void)python::parsePython(Source, Ctx1);
    (void)java::parseJava(Source, Ctx2);
  }
  SUCCEED();
}

// --- Datalog: semi-naive evaluation equals naive fixpoint ----------------------

namespace {

/// Naive reference: re-derive from scratch until no change, using simple
/// nested loops (no deltas, no indexes).
std::set<std::array<Atom, 2>> naiveClosure(
    const std::vector<std::pair<Atom, Atom>> &Edges) {
  std::set<std::array<Atom, 2>> Path(
      [&] {
        std::set<std::array<Atom, 2>> S;
        for (auto [U, V] : Edges)
          S.insert({U, V});
        return S;
      }());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<std::array<Atom, 2>> Fresh;
    for (const auto &P : Path)
      for (auto [U, V] : Edges)
        if (P[1] == U && !Path.count({P[0], V}))
          Fresh.push_back({P[0], V});
    for (const auto &F : Fresh)
      Changed |= Path.insert(F).second;
  }
  return Path;
}

} // namespace

TEST(DatalogProperty, SemiNaiveMatchesNaiveOnRandomGraphs) {
  Rng G(7);
  for (int Trial = 0; Trial != 20; ++Trial) {
    size_t NumNodes = 3 + G.bounded(8);
    size_t NumEdges = 2 + G.bounded(15);
    std::vector<std::pair<Atom, Atom>> Edges;
    for (size_t I = 0; I != NumEdges; ++I)
      Edges.emplace_back(static_cast<Atom>(1 + G.bounded(NumNodes)),
                         static_cast<Atom>(1 + G.bounded(NumNodes)));

    Engine E;
    RelationId Edge = E.addRelation("edge", 2);
    RelationId Path = E.addRelation("path", 2);
    E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(1)}},
                   {Literal{Edge, {Term::var(0), Term::var(1)}}}});
    E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(2)}},
                   {Literal{Path, {Term::var(0), Term::var(1)}},
                    Literal{Edge, {Term::var(1), Term::var(2)}}}});
    for (auto [U, V] : Edges)
      E.addFact(Edge, {U, V});
    E.run();

    auto Expected = naiveClosure(Edges);
    EXPECT_EQ(E.relation(Path).size(), Expected.size()) << "trial " << Trial;
    for (const auto &P : Expected)
      EXPECT_TRUE(E.relation(Path).contains(DlTuple{{P[0], P[1]}}))
          << "missing path " << P[0] << "->" << P[1];
  }
}

TEST(DatalogProperty, RunIsIdempotent) {
  Engine E;
  RelationId Edge = E.addRelation("edge", 2);
  RelationId Path = E.addRelation("path", 2);
  E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(1)}},
                 {Literal{Edge, {Term::var(0), Term::var(1)}}}});
  E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(2)}},
                 {Literal{Path, {Term::var(0), Term::var(1)}},
                  Literal{Edge, {Term::var(1), Term::var(2)}}}});
  E.addFact(Edge, {1, 2});
  E.addFact(Edge, {2, 3});
  E.run();
  size_t After = E.relation(Path).size();
  E.run(); // no new facts: must be a no-op
  EXPECT_EQ(E.relation(Path).size(), After);
}

// Analysis robustness: deep call chains and recursion must terminate fast.
TEST(AnalysisRobustness, RecursiveFunctionsTerminate) {
  AstContext Ctx;
  auto R = python::parsePython("def ping(x):\n"
                               "    return pong(x)\n"
                               "def pong(x):\n"
                               "    return ping(x)\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  // The k-bounded context construction must not blow up on the cycle.
  EXPECT_LE(Result.NumContexts, 4096u);
}

TEST(AnalysisRobustness, SelfReferentialAssignment) {
  AstContext Ctx;
  auto R = python::parsePython("x = x\ny = y.next\n", Ctx);
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  (void)Result;
  SUCCEED();
}
