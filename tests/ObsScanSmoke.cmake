# Smoke test: the observability determinism contract. Run the real
# namer-scan binary over the bundled mini corpus at --threads=1 and
# --threads=8 with --deterministic-obs, and require the run ledger and the
# Prometheus exposition to be byte-identical across the two runs (zeroed
# clock/RSS sources + schedule-dependent series excluded; see DESIGN.md,
# "Observability"). Invoked by ctest as
#   cmake -DNAMER_SCAN=<exe> -DCORPUS=<dir> -DOUT=<dir> -P ObsScanSmoke.cmake

foreach(Var NAMER_SCAN CORPUS OUT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "ObsScanSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

foreach(Threads 1 8)
  execute_process(
    COMMAND "${NAMER_SCAN}" "--threads=${Threads}" "--deterministic-obs"
            "--ledger=${OUT}/t${Threads}.jsonl"
            "--metrics-out=${OUT}/t${Threads}.prom" "${CORPUS}"
    RESULT_VARIABLE Rc
    OUTPUT_VARIABLE Stdout
    ERROR_VARIABLE Stderr)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "namer-scan --threads=${Threads} failed (rc=${Rc})\n"
        "stdout:\n${Stdout}\nstderr:\n${Stderr}")
  endif()
  foreach(File "${OUT}/t${Threads}.jsonl" "${OUT}/t${Threads}.prom")
    if(NOT EXISTS "${File}")
      message(FATAL_ERROR "namer-scan did not write ${File}")
    endif()
  endforeach()
endforeach()

foreach(Ext jsonl prom)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${OUT}/t1.${Ext}" "${OUT}/t8.${Ext}"
    RESULT_VARIABLE Same)
  if(NOT Same EQUAL 0)
    file(READ "${OUT}/t1.${Ext}" One)
    file(READ "${OUT}/t8.${Ext}" Eight)
    message(FATAL_ERROR "--deterministic-obs ${Ext} files differ between "
        "--threads=1 and --threads=8\n--- t1 ---\n${One}\n--- t8 ---\n${Eight}")
  endif()
endforeach()

# Structural spot checks on the thread-1 outputs.
file(READ "${OUT}/t1.jsonl" Ledger)
foreach(Needle
    [["event":"run_start"]]
    [["event":"phase","name":"pipeline.ingest"]]
    [["event":"phase","name":"fptree.build"]]
    [["event":"run_end"]]
    [["schema_version":1]])
  string(FIND "${Ledger}" "${Needle}" At)
  if(At EQUAL -1)
    message(FATAL_ERROR "ledger is missing ${Needle}:\n${Ledger}")
  endif()
endforeach()

file(READ "${OUT}/t1.prom" Prom)
foreach(Needle
    "# namer prometheus text exposition (stats schema 1)"
    "# TYPE namer_ingest_file_us histogram"
    "namer_ingest_file_us_quantile{q=\"0.999\"}"
    "namer_build_info{git_rev=")
  string(FIND "${Prom}" "${Needle}" At)
  if(At EQUAL -1)
    message(FATAL_ERROR "exposition is missing ${Needle}:\n${Prom}")
  endif()
endforeach()
# The schedule-dependent families must have been excluded.
string(FIND "${Prom}" "namer_pool_" At)
if(NOT At EQUAL -1)
  message(FATAL_ERROR "deterministic exposition leaked a pool.* series:\n${Prom}")
endif()

message(STATUS "observability smoke OK: ledger+exposition byte-identical at 1 and 8 threads")
