//===- tests/SupportTest.cpp - support library tests ----------------------==//

#include "support/EditDistance.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/StringInterner.h"
#include "support/Subtokens.h"
#include "support/TextTable.h"

#include <gtest/gtest.h>

#include <set>

using namespace namer;

// --- StringInterner ---------------------------------------------------------

TEST(StringInterner, EpsilonIsReserved) {
  StringInterner SI;
  EXPECT_EQ(SI.text(EpsilonSymbol), "<eps>");
  EXPECT_EQ(SI.size(), 1u);
}

TEST(StringInterner, InternIsIdempotent) {
  StringInterner SI;
  Symbol A = SI.intern("assert");
  Symbol B = SI.intern("assert");
  EXPECT_EQ(A, B);
  EXPECT_EQ(SI.text(A), "assert");
}

TEST(StringInterner, DistinctStringsGetDistinctSymbols) {
  StringInterner SI;
  EXPECT_NE(SI.intern("True"), SI.intern("Equal"));
}

TEST(StringInterner, LookupWithoutInterning) {
  StringInterner SI;
  EXPECT_FALSE(SI.contains("missing"));
  SI.intern("present");
  EXPECT_TRUE(SI.contains("present"));
  EXPECT_EQ(SI.lookup("present"), SI.intern("present"));
}

TEST(StringInterner, StableAcrossGrowth) {
  StringInterner SI;
  Symbol First = SI.intern("first");
  for (int I = 0; I < 1000; ++I)
    SI.intern("sym" + std::to_string(I));
  EXPECT_EQ(SI.text(First), "first");
  EXPECT_EQ(SI.intern("first"), First);
}

// --- Subtokens --------------------------------------------------------------

struct SubtokenCase {
  const char *Input;
  std::vector<std::string> Expected;
};

class SubtokenSplitTest : public ::testing::TestWithParam<SubtokenCase> {};

TEST_P(SubtokenSplitTest, Splits) {
  const SubtokenCase &C = GetParam();
  EXPECT_EQ(splitSubtokens(C.Input), C.Expected) << "input: " << C.Input;
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, SubtokenSplitTest,
    ::testing::Values(
        SubtokenCase{"assertTrue", {"assert", "True"}},
        SubtokenCase{"rotate_angle", {"rotate", "angle"}},
        SubtokenCase{"self", {"self"}},
        SubtokenCase{"assertEquals", {"assert", "Equals"}},
        SubtokenCase{"num_or_process", {"num", "or", "process"}},
        SubtokenCase{"HTTPServer", {"HTTP", "Server"}},
        SubtokenCase{"HTTPServer2", {"HTTP", "Server", "2"}},
        SubtokenCase{"progDialog", {"prog", "Dialog"}},
        SubtokenCase{"outputWriter", {"output", "Writer"}},
        SubtokenCase{"_private_name", {"private", "name"}},
        SubtokenCase{"CONST_VALUE", {"CONST", "VALUE"}},
        SubtokenCase{"x", {"x"}},
        SubtokenCase{"value2key", {"value", "2", "key"}},
        SubtokenCase{"", {}},
        SubtokenCase{"___", {}}));

TEST(Subtokens, JoinLikeSnake) {
  EXPECT_EQ(joinSubtokensLike({"rotate", "angle"}, "some_name"),
            "rotate_angle");
}

TEST(Subtokens, JoinLikeCamel) {
  EXPECT_EQ(joinSubtokensLike({"assert", "Equal"}, "assertTrue"),
            "assertEqual");
}

TEST(Subtokens, JoinSingle) {
  EXPECT_EQ(joinSubtokensLike({"np"}, "N"), "np");
}

// Round trip property: splitting a camelCase join of lowercase words
// recovers the words (case-insensitively).
TEST(Subtokens, SplitJoinRoundTrip) {
  std::vector<std::string> Words = {"get", "user", "name"};
  std::string Joined = joinSubtokensLike(Words, "camelCase");
  EXPECT_EQ(Joined, "getUserName");
  auto Split = splitSubtokens(Joined);
  ASSERT_EQ(Split.size(), 3u);
  EXPECT_EQ(Split[0], "get");
  EXPECT_EQ(Split[1], "User");
  EXPECT_EQ(Split[2], "Name");
}

// --- EditDistance -----------------------------------------------------------

TEST(EditDistance, Identity) { EXPECT_EQ(editDistance("abc", "abc"), 0u); }

TEST(EditDistance, PaperPairs) {
  EXPECT_EQ(editDistance("True", "Equal"), 4u);
  EXPECT_EQ(editDistance("or", "of"), 1u);
  EXPECT_EQ(editDistance("por", "port"), 1u);
  EXPECT_EQ(editDistance("args", "kwargs"), 2u);
}

TEST(EditDistance, EmptyStrings) {
  EXPECT_EQ(editDistance("", ""), 0u);
  EXPECT_EQ(editDistance("", "abcd"), 4u);
  EXPECT_EQ(editDistance("abcd", ""), 4u);
}

TEST(EditDistance, Symmetry) {
  EXPECT_EQ(editDistance("kitten", "sitting"),
            editDistance("sitting", "kitten"));
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
}

// Metric properties on a small word set.
TEST(EditDistance, TriangleInequality) {
  const char *Words[] = {"name", "key", "value", "x", "min", "max", ""};
  for (const char *A : Words)
    for (const char *B : Words)
      for (const char *C : Words)
        EXPECT_LE(editDistance(A, C),
                  editDistance(A, B) + editDistance(B, C));
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BoundedStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.bounded(10), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng R(11);
  std::vector<double> W = {0.0, 1.0, 0.0};
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(R.weighted(W), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(5);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng A(9);
  Rng B = A.fork();
  // The fork consumed one value; subsequent draws should differ from the
  // parent's next draws (overwhelmingly likely).
  EXPECT_NE(A.next(), B.next());
}

// --- Hashing ----------------------------------------------------------------

TEST(Hashing, StringHashDistinguishes) {
  EXPECT_NE(hashString("assertTrue"), hashString("assertEqual"));
  EXPECT_EQ(hashString("same"), hashString("same"));
}

TEST(Hashing, CombinersAreOrderSensitive) {
  uint64_t A = hashU32(hashU32(FnvOffsetBasis, 1), 2);
  uint64_t B = hashU32(hashU32(FnvOffsetBasis, 2), 1);
  EXPECT_NE(A, B);
}

// --- TextTable --------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable Table;
  Table.setHeader({"Baseline", "Report", "Precision"});
  Table.addRow({"Namer", "134", "70%"});
  Table.addRow({"w/o C", "300", "46%"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("Namer"), std::string::npos);
  EXPECT_NE(Out.find("w/o C"), std::string::npos);
  // Each line has the same column start for "Report" values.
  auto Pos1 = Out.find("134");
  auto Pos2 = Out.find("300");
  auto LineStart1 = Out.rfind('\n', Pos1);
  auto LineStart2 = Out.rfind('\n', Pos2);
  EXPECT_EQ(Pos1 - LineStart1, Pos2 - LineStart2);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::formatPercent(0.7), "70%");
  EXPECT_EQ(TextTable::formatPercent(0.685, 1), "68.5%");
  EXPECT_EQ(TextTable::formatDouble(1.5, 1), "1.5");
}
