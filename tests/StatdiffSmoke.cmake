# Smoke test: the namer-statdiff exit-code contract on the committed
# fixtures (tests/data/statdiff). Identical inputs exit 0; a synthetic 2x
# span regression exits 5; a usage error exits 2; an unreadable input
# exits 1. Invoked by ctest as
#   cmake -DNAMER_STATDIFF=<exe> -DDATA=<dir> -P StatdiffSmoke.cmake

foreach(Var NAMER_STATDIFF DATA)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "StatdiffSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

set(Base "${DATA}/base.json")
set(Regressed "${DATA}/regressed_2x.json")

# Identical inputs: no regression, exit 0.
execute_process(
  COMMAND "${NAMER_STATDIFF}" "${Base}" "${Base}"
  RESULT_VARIABLE Rc
  OUTPUT_VARIABLE Stdout
  ERROR_VARIABLE Stderr)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "identical inputs must exit 0, got ${Rc}\n${Stdout}${Stderr}")
endif()
string(FIND "${Stdout}" "0 regressions" At)
if(At EQUAL -1)
  message(FATAL_ERROR "expected a '0 regressions' summary:\n${Stdout}")
endif()

# Synthetic 2x span regression: exit 5 with a REGRESSION line naming the span.
execute_process(
  COMMAND "${NAMER_STATDIFF}" "${Base}" "${Regressed}"
  RESULT_VARIABLE Rc
  OUTPUT_VARIABLE Stdout
  ERROR_VARIABLE Stderr)
if(NOT Rc EQUAL 5)
  message(FATAL_ERROR "2x span regression must exit 5, got ${Rc}\n${Stdout}${Stderr}")
endif()
string(FIND "${Stdout}" "REGRESSION span pipeline.ingest" At)
if(At EQUAL -1)
  message(FATAL_ERROR "expected a span regression report:\n${Stdout}")
endif()
string(FIND "${Stdout}" "pipeline.tiny" At)
if(NOT At EQUAL -1)
  message(FATAL_ERROR "spans under the --min-span-us floor must be skipped:\n${Stdout}")
endif()

# The regression is waivable by threshold: a 2x increase passes at 150%.
execute_process(
  COMMAND "${NAMER_STATDIFF}" "--span-threshold=1.5" "${Base}" "${Regressed}"
  RESULT_VARIABLE Rc
  OUTPUT_VARIABLE Stdout)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "--span-threshold=1.5 must waive the 2x regression, got ${Rc}\n${Stdout}")
endif()

# Usage error: unknown option exits 2.
execute_process(
  COMMAND "${NAMER_STATDIFF}" "--no-such-flag" "${Base}" "${Base}"
  RESULT_VARIABLE Rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT Rc EQUAL 2)
  message(FATAL_ERROR "unknown option must exit 2, got ${Rc}")
endif()

# I/O error: unreadable input exits 1.
execute_process(
  COMMAND "${NAMER_STATDIFF}" "${DATA}/does-not-exist.json" "${Base}"
  RESULT_VARIABLE Rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT Rc EQUAL 1)
  message(FATAL_ERROR "unreadable input must exit 1, got ${Rc}")
endif()

message(STATUS "statdiff smoke OK: exit codes 0/5/2/1 as contracted")
