//===- tests/PythonParserTest.cpp - Python frontend tests -----------------==//

#include "frontend/python/PythonLexer.h"
#include "frontend/python/PythonParser.h"

#include "ast/Statements.h"

#include <gtest/gtest.h>

using namespace namer;
using namespace namer::python;

namespace {

/// Parses source and returns the dump of the first statement-like child of
/// Module (or the whole module when \p WholeModule).
std::string parseDump(std::string_view Source) {
  AstContext Ctx;
  ParseResult R = parsePython(Source, Ctx);
  EXPECT_TRUE(R.Errors.empty()) << "first error: "
                                << (R.Errors.empty() ? "" : R.Errors[0]);
  return R.Module.dump();
}

} // namespace

// --- Lexer ------------------------------------------------------------------

TEST(PythonLexer, IndentDedent) {
  auto R = lexPython("if x:\n    y = 1\nz = 2\n");
  ASSERT_TRUE(R.Errors.empty());
  int Indents = 0, Dedents = 0;
  for (const auto &Tok : R.Tokens) {
    Indents += Tok.Kind == TokenKind::Indent;
    Dedents += Tok.Kind == TokenKind::Dedent;
  }
  EXPECT_EQ(Indents, 1);
  EXPECT_EQ(Dedents, 1);
}

TEST(PythonLexer, BracketsSuppressNewlines) {
  auto R = lexPython("f(a,\n  b)\n");
  ASSERT_TRUE(R.Errors.empty());
  int Newlines = 0;
  for (const auto &Tok : R.Tokens)
    Newlines += Tok.Kind == TokenKind::Newline;
  EXPECT_EQ(Newlines, 1);
}

TEST(PythonLexer, CommentsIgnored) {
  auto R = lexPython("# comment line\nx = 1  # trailing\n");
  for (const auto &Tok : R.Tokens)
    EXPECT_TRUE(Tok.Text.find("comment") == std::string::npos);
}

TEST(PythonLexer, StringVariants) {
  auto R = lexPython("a = 'sq'\nb = \"dq\"\nc = '''tri\nple'''\nd = f\"x\"\n");
  ASSERT_TRUE(R.Errors.empty());
  int Strings = 0;
  for (const auto &Tok : R.Tokens)
    Strings += Tok.Kind == TokenKind::String;
  EXPECT_EQ(Strings, 4);
}

TEST(PythonLexer, UnterminatedStringRecovers) {
  auto R = lexPython("x = 'oops\ny = 2\n");
  EXPECT_FALSE(R.Errors.empty());
  // Lexing continued to see 'y'.
  bool SawY = false;
  for (const auto &Tok : R.Tokens)
    SawY |= Tok.Kind == TokenKind::Name && Tok.Text == "y";
  EXPECT_TRUE(SawY);
}

TEST(PythonLexer, MultiCharOperators) {
  auto R = lexPython("x **= 2\ny = a // b\nz = p != q\n");
  ASSERT_TRUE(R.Errors.empty());
  bool SawPowAssign = false, SawFloorDiv = false, SawNe = false;
  for (const auto &Tok : R.Tokens) {
    SawPowAssign |= Tok.Text == "**=";
    SawFloorDiv |= Tok.Text == "//";
    SawNe |= Tok.Text == "!=";
  }
  EXPECT_TRUE(SawPowAssign && SawFloorDiv && SawNe);
}

TEST(PythonLexer, LineContinuation) {
  auto R = lexPython("x = a \\\n    + b\n");
  ASSERT_TRUE(R.Errors.empty());
  int Newlines = 0;
  for (const auto &Tok : R.Tokens)
    Newlines += Tok.Kind == TokenKind::Newline;
  EXPECT_EQ(Newlines, 1);
}

// --- Parser: the Figure 2 statement ----------------------------------------

TEST(PythonParser, Figure2CallShape) {
  EXPECT_EQ(parseDump("self.assertTrue(picture.rotate_angle, 90)\n"),
            "(Module (ExprStmt (Call (AttributeLoad (NameLoad self) "
            "(Attr assertTrue)) (AttributeLoad (NameLoad picture) "
            "(Attr rotate_angle)) (Num 90))))");
}

TEST(PythonParser, Example38AssignShape) {
  EXPECT_EQ(parseDump("self.name = name\n"),
            "(Module (Assign (AttributeStore (NameLoad self) (Attr name)) "
            "(NameLoad name)))");
}

TEST(PythonParser, SimpleAssign) {
  EXPECT_EQ(parseDump("x = 1\n"),
            "(Module (Assign (NameStore x) (Num 1)))");
}

TEST(PythonParser, AugAssign) {
  EXPECT_EQ(parseDump("x += 1\n"),
            "(Module (AugAssign (NameStore x) += (Num 1)))");
}

TEST(PythonParser, TupleAssignment) {
  EXPECT_EQ(parseDump("a, b = 1, 2\n"),
            "(Module (Assign (TupleLit (NameStore a) (NameStore b)) "
            "(TupleLit (Num 1) (Num 2))))");
}

TEST(PythonParser, ChainedAssignment) {
  EXPECT_EQ(parseDump("a = b = 1\n"),
            "(Module (Assign (NameStore a) (NameStore b) (Num 1)))");
}

TEST(PythonParser, ForLoop) {
  EXPECT_EQ(parseDump("for i in xrange(10):\n    pass\n"),
            "(Module (For (NameStore i) (Call (NameLoad xrange) (Num 10)) "
            "(Body Pass)))");
}

TEST(PythonParser, ForWithTupleTarget) {
  EXPECT_EQ(parseDump("for k, v in items:\n    pass\n"),
            "(Module (For (TupleLit (NameStore k) (NameStore v)) "
            "(NameLoad items) (Body Pass)))");
}

TEST(PythonParser, FunctionDefWithParams) {
  EXPECT_EQ(parseDump("def f(self, x=1, *args, **kwargs):\n    pass\n"),
            "(Module (FunctionDef f (ParamList (Param self) "
            "(Param x (Num 1)) (StarParam args) (KwParam kwargs)) "
            "(Body Pass)))");
}

TEST(PythonParser, ClassWithBase) {
  EXPECT_EQ(parseDump("class TestPicture(TestCase):\n    pass\n"),
            "(Module (ClassDef TestPicture (BasesList (NameLoad TestCase)) "
            "(Body Pass)))");
}

TEST(PythonParser, MethodInClass) {
  std::string Dump = parseDump(
      "class A(B):\n    def m(self):\n        return self.x\n");
  EXPECT_EQ(Dump,
            "(Module (ClassDef A (BasesList (NameLoad B)) (Body "
            "(FunctionDef m (ParamList (Param self)) (Body "
            "(Return (AttributeLoad (NameLoad self) (Attr x))))))))");
}

TEST(PythonParser, KeywordArguments) {
  EXPECT_EQ(parseDump("f(a, key=1, **opts)\n"),
            "(Module (ExprStmt (Call (NameLoad f) (NameLoad a) "
            "(KeywordArg key (Num 1)) (KwStarArg (NameLoad opts)))))");
}

TEST(PythonParser, IfElifElse) {
  EXPECT_EQ(parseDump("if a:\n    pass\nelif b:\n    pass\nelse:\n    pass\n"),
            "(Module (If (NameLoad a) (Body Pass) (Body "
            "(If (NameLoad b) (Body Pass) (Body Pass)))))");
}

TEST(PythonParser, WhileLoop) {
  EXPECT_EQ(parseDump("while x < 10:\n    x += 1\n"),
            "(Module (While (Compare (NameLoad x) < (Num 10)) "
            "(Body (AugAssign (NameStore x) += (Num 1)))))");
}

TEST(PythonParser, TryExcept) {
  EXPECT_EQ(parseDump("try:\n    pass\nexcept ValueError as e:\n    pass\n"),
            "(Module (Try (Body Pass) (Catch (TypeRef ValueError) e "
            "(Body Pass))))");
}

TEST(PythonParser, Imports) {
  EXPECT_EQ(parseDump("import numpy as np\n"),
            "(Module (Import numpy np))");
  EXPECT_EQ(parseDump("from unittest import TestCase\n"),
            "(Module (FromImport unittest TestCase))");
}

TEST(PythonParser, OperatorPrecedence) {
  EXPECT_EQ(parseDump("x = a + b * c\n"),
            "(Module (Assign (NameStore x) (BinOp (NameLoad a) + "
            "(BinOp (NameLoad b) * (NameLoad c)))))");
}

TEST(PythonParser, ComparisonAndBool) {
  EXPECT_EQ(parseDump("y = a == b and c\n"),
            "(Module (Assign (NameStore y) (BinOp (Compare (NameLoad a) == "
            "(NameLoad b)) and (NameLoad c))))");
}

TEST(PythonParser, Subscript) {
  EXPECT_EQ(parseDump("x = d[0]\n"),
            "(Module (Assign (NameStore x) (Subscript (NameLoad d) "
            "(Num 0))))");
}

TEST(PythonParser, ListAndDictLiterals) {
  EXPECT_EQ(parseDump("x = [1, 2]\n"),
            "(Module (Assign (NameStore x) (ListLit (Num 1) (Num 2))))");
  EXPECT_EQ(parseDump("d = {'a': 1}\n"),
            "(Module (Assign (NameStore d) (DictLit (Str a) (Num 1))))");
}

TEST(PythonParser, ParenGrouping) {
  EXPECT_EQ(parseDump("x = (a + b) * c\n"),
            "(Module (Assign (NameStore x) (BinOp (BinOp (NameLoad a) + "
            "(NameLoad b)) * (NameLoad c))))");
}

TEST(PythonParser, AttributeChain) {
  EXPECT_EQ(parseDump("v = a.b.c\n"),
            "(Module (Assign (NameStore v) (AttributeLoad (AttributeLoad "
            "(NameLoad a) (Attr b)) (Attr c))))");
}

TEST(PythonParser, ErrorRecoveryContinues) {
  AstContext Ctx;
  ParseResult R = parsePython("x = = 1\ny = 2\n", Ctx);
  EXPECT_FALSE(R.Errors.empty());
  // The next line still parsed.
  EXPECT_NE(R.Module.dump().find("(NameStore y) (Num 2)"), std::string::npos);
}

TEST(PythonParser, SingleLineSuite) {
  EXPECT_EQ(parseDump("if x: y = 1\n"),
            "(Module (If (NameLoad x) (Body (Assign (NameStore y) "
            "(Num 1)))))");
}

TEST(PythonParser, WithAsBinding) {
  std::string Dump = parseDump("with open(p) as f:\n    pass\n");
  EXPECT_NE(Dump.find("(Assign (NameStore f) (Call (NameLoad open) "
                      "(NameLoad p)) (Body Pass))"),
            std::string::npos)
      << Dump;
}

TEST(PythonParser, StatementSlicingEndToEnd) {
  AstContext Ctx;
  ParseResult R = parsePython("class T(TestCase):\n"
                              "    def test(self):\n"
                              "        self.assertTrue(v, 4)\n",
                              Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Roots = collectStatementRoots(R.Module);
  // ClassDef header, FunctionDef header, then the call statement.
  ASSERT_EQ(Roots.size(), 3u);
  Tree Stmt = projectStatement(R.Module, Roots[2]);
  EXPECT_EQ(Stmt.dump(),
            "(Call (AttributeLoad (NameLoad self) (Attr assertTrue)) "
            "(NameLoad v) (Num 4))");
}
