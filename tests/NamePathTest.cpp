//===- tests/NamePathTest.cpp - transform + name path tests ---------------==//
//
// Validates the Section 3.1 pipeline against the exact shapes of Figure 2:
// parsed AST -> AST+ -> name paths, including relational operators.
//
//===----------------------------------------------------------------------===//

#include "namepath/NamePath.h"

#include "ast/Statements.h"
#include "frontend/python/PythonParser.h"
#include "transform/AstPlus.h"

#include <gtest/gtest.h>

using namespace namer;

namespace {

/// Finds the Ident node with the given text in \p T (pre-transform).
NodeId findIdent(const Tree &T, std::string_view Text) {
  for (NodeId N = 0; N != T.size(); ++N)
    if (T.node(N).Kind == NodeKind::Ident && T.valueText(N) == Text)
      return N;
  return InvalidNode;
}

struct Figure2Fixture {
  AstContext Ctx;
  Tree Module;
  Tree Stmt;

  Figure2Fixture() : Module(Ctx), Stmt(Ctx) {
    auto R = python::parsePython(
        "self.assertTrue(picture.rotate_angle, 90)\n", Ctx);
    EXPECT_TRUE(R.Errors.empty());
    Module = std::move(R.Module);
    // The analyses identified self's origin (and hence the callee's) as
    // TestCase; decorate as Section 4.1 would.
    OriginMap Origins;
    Symbol TestCase = Ctx.intern("TestCase");
    Origins[findIdent(Module, "self")] = TestCase;
    Origins[findIdent(Module, "assertTrue")] = TestCase;
    transformToAstPlus(Module, Origins);
    auto Roots = collectStatementRoots(Module);
    EXPECT_EQ(Roots.size(), 1u);
    Stmt = projectStatement(Module, Roots[0]);
  }
};

} // namespace

TEST(Transform, Figure2TreeShape) {
  Figure2Fixture F;
  EXPECT_EQ(F.Stmt.dump(),
            "(NumArgs(2) (Call (AttributeLoad (NameLoad (NumST(1) "
            "(TestCase self))) (Attr (NumST(2) (TestCase assert) "
            "(TestCase True)))) (AttributeLoad (NameLoad (NumST(1) "
            "picture)) (Attr (NumST(2) rotate angle))) "
            "(Num (NumST(1) NUM))))");
}

TEST(Transform, Figure2NamePaths) {
  Figure2Fixture F;
  auto Paths = extractNamePaths(F.Stmt);
  ASSERT_EQ(Paths.size(), 7u);
  EXPECT_EQ(formatNamePath(Paths[0], F.Ctx),
            "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 "
            "TestCase 0 self");
  EXPECT_EQ(formatNamePath(Paths[1], F.Ctx),
            "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 "
            "TestCase 0 assert");
  EXPECT_EQ(formatNamePath(Paths[2], F.Ctx),
            "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 "
            "TestCase 0 True");
  EXPECT_EQ(formatNamePath(Paths.back(), F.Ctx),
            "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM");
}

TEST(Transform, WithoutOriginsNoOriginNodes) {
  AstContext Ctx;
  auto R = python::parsePython("self.assertTrue(v, 90)\n", Ctx);
  transformToAstPlus(R.Module, OriginMap{});
  EXPECT_EQ(R.Module.dump().find("Origin"), std::string::npos);
  // Subtoken splitting still happened.
  EXPECT_NE(R.Module.dump().find("NumST(2)"), std::string::npos);
}

TEST(Transform, LiteralAbstraction) {
  AstContext Ctx;
  auto R = python::parsePython("x = 'hello'\ny = True\nz = 3.5\n", Ctx);
  transformToAstPlus(R.Module, OriginMap{});
  std::string Dump = R.Module.dump();
  EXPECT_NE(Dump.find("STR"), std::string::npos);
  EXPECT_NE(Dump.find("BOOL"), std::string::npos);
  EXPECT_NE(Dump.find("NUM"), std::string::npos);
  EXPECT_EQ(Dump.find("hello"), std::string::npos);
  EXPECT_EQ(Dump.find("3.5"), std::string::npos);
}

TEST(Transform, NumArgsOnFunctionDef) {
  AstContext Ctx;
  auto R = python::parsePython("def f(a, b, c):\n    pass\n", Ctx);
  transformToAstPlus(R.Module, OriginMap{});
  EXPECT_NE(R.Module.dump().find("NumArgs(3) (FunctionDef"),
            std::string::npos);
}

TEST(Transform, KeywordAndStarArgsCountedInCalls) {
  AstContext Ctx;
  auto R = python::parsePython("f(a, key=1)\n", Ctx);
  transformToAstPlus(R.Module, OriginMap{});
  EXPECT_NE(R.Module.dump().find("NumArgs(2) (Call"), std::string::npos);
}

// --- Relational operators (Example 3.5) -------------------------------------

TEST(NamePath, RelationalOperators) {
  AstContext Ctx;
  Symbol True = Ctx.intern("True");
  Symbol Equal = Ctx.intern("Equal");
  std::vector<PathStep> S = {{Ctx.intern("NumArgs(2)"), 0},
                             {Ctx.kindSymbol(NodeKind::Call), 0}};
  NamePath Np1{S, True};
  NamePath Np2{S, Equal};
  NamePath Np3{S, EpsilonSymbol};

  EXPECT_TRUE(samePrefix(Np1, Np2));
  EXPECT_FALSE(pathEquals(Np1, Np2));
  EXPECT_TRUE(samePrefix(Np1, Np3));
  EXPECT_TRUE(pathEquals(Np1, Np3));
  EXPECT_TRUE(pathEquals(Np3, Np1)); // symmetric through epsilon
  EXPECT_TRUE(pathEquals(Np1, Np1));
}

TEST(NamePath, DifferentPrefixNeverEqual) {
  AstContext Ctx;
  NamePath A{{{Ctx.intern("Call"), 0}}, Ctx.intern("x")};
  NamePath B{{{Ctx.intern("Call"), 1}}, Ctx.intern("x")};
  EXPECT_FALSE(samePrefix(A, B));
  EXPECT_FALSE(pathEquals(A, B));
}

// --- Extraction properties ---------------------------------------------------

TEST(NamePath, PrefixesAreUniquePerStatement) {
  Figure2Fixture F;
  NamePathTable Table;
  StmtPaths Paths = StmtPaths::fromTree(F.Stmt, Table);
  EXPECT_EQ(Paths.Paths.size(), Paths.EndByPrefix.size());
}

TEST(NamePath, MaxPathsTruncates) {
  Figure2Fixture F;
  auto All = extractNamePaths(F.Stmt, 0);
  auto Limited = extractNamePaths(F.Stmt, 3);
  EXPECT_EQ(Limited.size(), 3u);
  EXPECT_EQ(Limited[0], All[0]);
  EXPECT_EQ(Limited[2], All[2]);
}

TEST(NamePath, AllExtractedPathsAreConcrete) {
  Figure2Fixture F;
  for (const NamePath &P : extractNamePaths(F.Stmt))
    EXPECT_FALSE(P.isSymbolic());
}

// --- NamePathTable -----------------------------------------------------------

TEST(NamePathTable, InternIsIdempotent) {
  AstContext Ctx;
  NamePathTable Table;
  NamePath P{{{Ctx.intern("Call"), 0}}, Ctx.intern("self")};
  PathId A = Table.intern(P);
  PathId B = Table.intern(P);
  EXPECT_EQ(A, B);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(NamePathTable, SamePrefixSharesPrefixId) {
  AstContext Ctx;
  NamePathTable Table;
  std::vector<PathStep> S = {{Ctx.intern("Call"), 0}};
  PathId A = Table.intern(NamePath{S, Ctx.intern("True")});
  PathId B = Table.intern(NamePath{S, Ctx.intern("Equal")});
  EXPECT_NE(A, B);
  EXPECT_EQ(Table.prefixOf(A), Table.prefixOf(B));
}

TEST(NamePathTable, SymbolicVersionSharesPrefix) {
  AstContext Ctx;
  NamePathTable Table;
  std::vector<PathStep> S = {{Ctx.intern("Call"), 0}};
  PathId Concrete = Table.intern(NamePath{S, Ctx.intern("x")});
  PathId Symbolic = Table.symbolicVersion(Concrete);
  EXPECT_NE(Concrete, Symbolic);
  EXPECT_TRUE(Table.isSymbolic(Symbolic));
  EXPECT_EQ(Table.prefixOf(Concrete), Table.prefixOf(Symbolic));
}

TEST(NamePathTable, LessIsStrictWeakOrder) {
  AstContext Ctx;
  NamePathTable Table;
  std::vector<PathId> Ids;
  for (int I = 0; I < 5; ++I)
    Ids.push_back(Table.intern(
        NamePath{{{Ctx.intern("Call"), static_cast<uint32_t>(I % 3)}},
                 Ctx.intern("end" + std::to_string(I))}));
  for (PathId A : Ids) {
    EXPECT_FALSE(Table.less(A, A));
    for (PathId B : Ids) {
      if (Table.less(A, B))
        EXPECT_FALSE(Table.less(B, A));
    }
  }
}

TEST(StmtPaths, ContainsPathChecksEnd) {
  Figure2Fixture F;
  NamePathTable Table;
  StmtPaths Paths = StmtPaths::fromTree(F.Stmt, Table);
  PathId TruePath = Paths.Paths[2]; // ... TestCase 0 True
  EXPECT_TRUE(Paths.containsPath(TruePath, Table));
  // Same prefix with a different end is absent.
  NamePath Equal = Table.path(TruePath);
  Equal.End = F.Ctx.intern("Equal");
  PathId EqualPath = Table.intern(Equal);
  EXPECT_FALSE(Paths.containsPath(EqualPath, Table));
  // Prefix-level membership still holds.
  EXPECT_TRUE(Paths.containsPrefix(Table.prefixOf(EqualPath)));
}
