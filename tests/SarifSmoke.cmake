# Smoke test: run `namer-scan --sarif` over the bundled mini corpus and
# validate that the document carries the required SARIF 2.1.0 top-level
# keys. Invoked by ctest as
#   cmake -DNAMER_SCAN=<exe> -DCORPUS=<dir> -DOUT=<dir> -P SarifSmoke.cmake

foreach(Var NAMER_SCAN CORPUS OUT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "SarifSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")
set(SARIF "${OUT}/mini.sarif")
set(FINDINGS "${OUT}/mini.findings.json")

execute_process(
  COMMAND "${NAMER_SCAN}" "--sarif=${SARIF}" "--findings=${FINDINGS}"
          "--explain=0" "${CORPUS}"
  RESULT_VARIABLE Rc
  OUTPUT_VARIABLE Stdout
  ERROR_VARIABLE Stderr)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
      "namer-scan failed (rc=${Rc})\nstdout:\n${Stdout}\nstderr:\n${Stderr}")
endif()

if(NOT EXISTS "${SARIF}")
  message(FATAL_ERROR "namer-scan did not write ${SARIF}")
endif()
file(READ "${SARIF}" Doc)

# Required SARIF top-level structure: schema pointer, pinned version, and a
# runs array whose tool driver declares rules alongside the results.
foreach(Needle
    [["$schema": "https://json.schemastore.org/sarif-2.1.0.json"]]
    [["version": "2.1.0"]]
    [["runs":]]
    [["tool":]]
    [["driver":]]
    [["rules":]]
    [["results":]])
  string(FIND "${Doc}" "${Needle}" At)
  if(At EQUAL -1)
    message(FATAL_ERROR "SARIF output is missing ${Needle}:\n${Doc}")
  endif()
endforeach()

if(NOT EXISTS "${FINDINGS}")
  message(FATAL_ERROR "namer-scan did not write ${FINDINGS}")
endif()
file(READ "${FINDINGS}" FindingsDoc)
string(FIND "${FindingsDoc}" [["schema_version": 1]] At)
if(At EQUAL -1)
  message(FATAL_ERROR "findings output is missing schema_version:\n${FindingsDoc}")
endif()

message(STATUS "SARIF smoke OK: ${SARIF}")
