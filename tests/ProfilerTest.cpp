//===- tests/ProfilerTest.cpp - In-process sampling profiler tests --------==//
//
// Covers the sampling profiler (support/Profiler.h): the close-driven
// folded-stack golden, live-stack sampling via the test tick, the
// byte-identity of close-mode profiles across thread-pool sizes (the
// profiler determinism contract behind `--deterministic-obs
// --profile-out`), the timer-driven sampler under concurrent span churn
// (race coverage for the tsan preset), and -- when NAMER_TELEMETRY is
// compiled out -- the inert stub surface. Built as namer_profile_tests so
// `ctest -L profile` selects it.
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace namer;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

prof::ProfilerOptions closeModeOptions() {
  prof::ProfilerOptions O;
  O.SampleHz = 0; // no timer thread
  O.SampleOnSpanClose = true;
  return O;
}

} // namespace

#if NAMER_TELEMETRY

TEST(ProfilerFolded, CloseModeNestedGolden) {
  telemetry::reset();
  telemetry::setEnabled(true);
  prof::Profiler Prof(closeModeOptions());
  {
    telemetry::TraceSpan Outer("pt.outer");
    { telemetry::TraceSpan Inner("pt.inner"); }
    { telemetry::TraceSpan Inner("pt.inner"); }
    { telemetry::TraceSpan Leaf("pt.leaf"); }
  }
  // One weight-1 sample per span close, keyed by the full live stack at
  // close time; foldedStacks() renders them sorted.
  EXPECT_EQ(Prof.foldedStacks(), "pt.outer 1\n"
                                 "pt.outer;pt.inner 2\n"
                                 "pt.outer;pt.leaf 1\n");
  EXPECT_EQ(Prof.samples(), 4u);

  // writeFolded round-trips the same bytes through a file.
  namespace fs = std::filesystem;
  std::string Path = (fs::temp_directory_path() / "namer-pt.folded").string();
  ASSERT_TRUE(Prof.writeFolded(Path));
  EXPECT_EQ(slurp(Path), Prof.foldedStacks());
  fs::remove(Path);
  telemetry::reset();
}

TEST(ProfilerFolded, TickForTestSamplesLiveStacks) {
  telemetry::reset();
  telemetry::setEnabled(true);
  prof::ProfilerOptions O; // no timer, no close hook: only explicit ticks
  O.SampleHz = 0;
  prof::Profiler Prof(O);

  telemetry::TraceSpan Outer("pt.live.outer");
  telemetry::TraceSpan Inner("pt.live.inner");
  Prof.tickForTest();
  EXPECT_EQ(Prof.foldedStacks(), "pt.live.outer;pt.live.inner 1\n");
  Prof.tickForTest();
  Prof.tickForTest();
  EXPECT_EQ(Prof.foldedStacks(), "pt.live.outer;pt.live.inner 3\n");
  EXPECT_EQ(Prof.samples(), 3u);
  telemetry::reset();
}

TEST(ProfilerFolded, CloseModeByteIdenticalAcrossPoolSizes) {
  // The determinism contract: close-driven sampling is structural (one
  // sample per close, stacks grafted onto the submitter's prefix), so the
  // folded profile of the same parallelFor workload is byte-identical at
  // every worker count.
  std::vector<std::string> Folded;
  for (unsigned Workers : {1u, 8u}) {
    telemetry::reset();
    telemetry::setEnabled(true);
    ThreadPool Pool(Workers);
    std::string Bytes;
    {
      prof::Profiler Prof(closeModeOptions());
      {
        telemetry::TraceSpan Par("pt.par");
        std::atomic<size_t> Sum{0};
        Pool.parallelFor(
            0, 64,
            [&](size_t I) {
              telemetry::TraceSpan Item("pt.item");
              Sum.fetch_add(I, std::memory_order_relaxed);
            },
            1, "pt.site");
        EXPECT_EQ(Sum.load(), size_t(64 * 63 / 2));
      }
      Bytes = Prof.foldedStacks();
    }
    Folded.push_back(Bytes);
  }
  ASSERT_EQ(Folded.size(), 2u);
  // Worker-run items fold under the submitter's open span exactly as the
  // inline (1-worker) run does.
  EXPECT_EQ(Folded[0], "pt.par 1\n"
                       "pt.par;pt.item 64\n");
  EXPECT_EQ(Folded[0], Folded[1]);
  telemetry::reset();
}

TEST(ProfilerStress, TimerSamplerUnderConcurrentSpanChurn) {
  // Race coverage (the tsan preset runs this label): a timer-driven
  // sampler walking live stacks while several threads open and close
  // nested spans as fast as they can. Sample counts are timing-dependent;
  // the assertions only pin the output format.
  telemetry::reset();
  telemetry::setEnabled(true);
  {
    prof::ProfilerOptions O;
    O.SampleHz = 2000;
    prof::Profiler Prof(O);
    std::atomic<bool> Stop{false};
    std::vector<std::thread> Threads;
    for (int T = 0; T != 4; ++T)
      Threads.emplace_back([&Stop] {
        while (!Stop.load(std::memory_order_relaxed)) {
          telemetry::TraceSpan A("pt.stress.a");
          telemetry::TraceSpan B("pt.stress.b");
        }
      });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Stop.store(true, std::memory_order_relaxed);
    for (std::thread &T : Threads)
      T.join();
    // The profiler outlives the sampled threads (joined above), matching
    // the namer-scan declaration-order contract. Every folded line must be
    // "stack count\n" over the two stress frames.
    std::istringstream Lines(Prof.foldedStacks());
    std::string Line;
    while (std::getline(Lines, Line)) {
      size_t Space = Line.rfind(' ');
      ASSERT_NE(Space, std::string::npos) << Line;
      EXPECT_EQ(Line.rfind("pt.stress.a", 0), 0u) << Line;
      EXPECT_GT(std::stoull(Line.substr(Space + 1)), 0u) << Line;
    }
  }
  telemetry::reset();
}

TEST(ProfilerAttribution, UnattributedFallbacks) {
  telemetry::reset();
  telemetry::setEnabled(true);
  // No span open and no site name: both families fall back to the
  // "unattributed" series instead of dropping the data.
  prof::noteLockWait(nullptr, 5'000);
  prof::noteAllocBytes(100);
  EXPECT_EQ(
      telemetry::metrics().counter("lock.wait_us.unattributed").value(), 5u);
  EXPECT_EQ(telemetry::metrics().counter("alloc.bytes.unattributed").value(),
            100u);
  {
    telemetry::TraceSpan S("pt.attr");
    prof::noteAllocBytes(8);
  }
  EXPECT_EQ(telemetry::metrics().counter("alloc.bytes.pt.attr").value(), 8u);
  telemetry::reset();
}

#else // !NAMER_TELEMETRY

TEST(ProfilerOffMode, StubsAreInertButKeepFileContract) {
  prof::ProfilerOptions O;
  O.SampleHz = 1000;
  O.SampleOnSpanClose = true;
  prof::Profiler Prof(O); // spawns nothing when compiled out
  { telemetry::TraceSpan S("pt.off"); }
  EXPECT_EQ(Prof.tickForTest(), 0u);
  EXPECT_EQ(Prof.samples(), 0u);
  EXPECT_TRUE(Prof.foldedStacks().empty());
  prof::noteLockWait("pt.off", 1'000);
  prof::noteAllocBytes(64);

  // writeFolded still creates the requested (empty) file, so callers'
  // --profile-out contract holds in notrace builds.
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "namer-pt-off.folded").string();
  ASSERT_TRUE(Prof.writeFolded(Path));
  EXPECT_TRUE(slurp(Path).empty());
  EXPECT_TRUE(fs::exists(Path));
  fs::remove(Path);
}

#endif // NAMER_TELEMETRY
