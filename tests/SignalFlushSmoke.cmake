# Smoke test: interrupt-flush of the observability sinks. namer-scan with
# --ledger/--metrics-out that receives SIGTERM (raised deterministically
# from the main thread via the hidden --test-raise-signal flag) must exit
# 128+15, append a final run_end record with outcome "interrupted" to the
# ledger, and leave a complete metrics exposition on disk -- the run is
# killed, its telemetry is not. Invoked by ctest:
#   cmake -DNAMER_SCAN=<exe> -DCORPUS=<dir> -DOUT=<dir>
#         -P SignalFlushSmoke.cmake

foreach(Var NAMER_SCAN CORPUS OUT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "SignalFlushSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

foreach(Sig TERM INT)
  if(Sig STREQUAL "TERM")
    set(ExpectRc 143) # 128 + SIGTERM(15)
    set(ExpectName "SIGTERM")
  else()
    set(ExpectRc 130) # 128 + SIGINT(2)
    set(ExpectName "SIGINT")
  endif()
  execute_process(
    COMMAND "${NAMER_SCAN}" "--threads=1" "--test-raise-signal=${Sig}"
            "--ledger=${OUT}/${Sig}.jsonl"
            "--metrics-out=${OUT}/${Sig}.prom" "${CORPUS}"
    RESULT_VARIABLE Rc
    OUTPUT_VARIABLE Stdout
    ERROR_VARIABLE Stderr)
  if(NOT Rc EQUAL ${ExpectRc})
    message(FATAL_ERROR "--test-raise-signal=${Sig}: expected exit "
        "${ExpectRc}, got '${Rc}'\nstdout:\n${Stdout}\nstderr:\n${Stderr}")
  endif()

  file(READ "${OUT}/${Sig}.jsonl" Ledger)
  foreach(Needle
      [["event":"run_start"]]
      "\"event\":\"run_end\",\"name\":\"${ExpectName}\""
      [["outcome":"interrupted"]])
    string(FIND "${Ledger}" "${Needle}" At)
    if(At EQUAL -1)
      message(FATAL_ERROR "${Sig}: ledger is missing ${Needle}:\n${Ledger}")
    endif()
  endforeach()

  file(READ "${OUT}/${Sig}.prom" Prom)
  string(FIND "${Prom}" "# namer prometheus text exposition" At)
  if(At EQUAL -1)
    message(FATAL_ERROR
        "${Sig}: metrics exposition missing or truncated:\n${Prom}")
  endif()
endforeach()

message(STATUS "signal-flush smoke OK: ledger + metrics survive SIGTERM/SIGINT")
