//===- tests/NeuralTest.cpp - autograd / graph / model tests --------------==//

#include "neural/Detector.h"
#include "neural/Ggnn.h"
#include "neural/Great.h"
#include "neural/VarMisuse.h"

#include "frontend/python/PythonParser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace namer;
using namespace namer::neural;

// --- Autograd ops: numerical gradient checks ----------------------------------

namespace {

/// Central-difference gradient check of a scalar loss w.r.t. one entry.
double numericalGradient(const std::function<float()> &Loss, Tensor &Param,
                         size_t Index) {
  const float Eps = 1e-3f;
  float Saved = Param.data().Value[Index];
  Param.data().Value[Index] = Saved + Eps;
  float Plus = Loss();
  Param.data().Value[Index] = Saved - Eps;
  float Minus = Loss();
  Param.data().Value[Index] = Saved;
  return (Plus - Minus) / (2.0 * Eps);
}

} // namespace

TEST(Autograd, MatmulGradient) {
  Rng G(1);
  Tensor A(2, 3, true), B(3, 2, true);
  A.initUniform(G, 1.0f);
  B.initUniform(G, 1.0f);
  auto Loss = [&] {
    Tape T;
    Tensor C = matmul(T, A, B);
    float Sum = 0;
    for (size_t I = 0; I != C.data().size(); ++I)
      Sum += C.data().Value[I] * C.data().Value[I];
    return Sum;
  };
  // Analytic gradient: run forward, seed dC = 2C, run backward.
  Tape T;
  Tensor C = matmul(T, A, B);
  for (size_t I = 0; I != C.data().size(); ++I)
    C.data().Grad[I] = 2.0f * C.data().Value[I];
  T.backward();
  for (size_t I = 0; I != A.data().size(); ++I)
    EXPECT_NEAR(A.data().Grad[I], numericalGradient(Loss, A, I), 1e-2)
        << "dA[" << I << "]";
  for (size_t I = 0; I != B.data().size(); ++I)
    EXPECT_NEAR(B.data().Grad[I], numericalGradient(Loss, B, I), 1e-2)
        << "dB[" << I << "]";
}

TEST(Autograd, SoftmaxCrossEntropyGradient) {
  Rng G(2);
  Tensor Logits(1, 4, true);
  Logits.initUniform(G, 1.0f);
  std::vector<uint32_t> Target = {2};
  auto Loss = [&] {
    Tape T;
    // Copy values into a fresh tensor so the tape sees current values.
    Tensor L(1, 4, true);
    L.data().Value = Logits.data().Value;
    return softmaxCrossEntropy(T, L, Target);
  };
  Tape T;
  float Initial = softmaxCrossEntropy(T, Logits, Target);
  EXPECT_GT(Initial, 0.0f);
  T.backward();
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(Logits.data().Grad[I], numericalGradient(Loss, Logits, I),
                1e-2);
}

TEST(Autograd, GruStyleCompositionGradient) {
  // sigmoid/tanh/mul/oneMinus composition as used by the GGNN update.
  Rng G(3);
  Tensor M(1, 4, true), H(1, 4, true);
  M.initUniform(G, 1.0f);
  H.initUniform(G, 1.0f);
  auto Forward = [&](Tape &T) {
    Tensor Z = sigmoid(T, M);
    Tensor HC = tanhOp(T, H);
    Tensor Out = add(T, mul(T, oneMinus(T, Z), H), mul(T, Z, HC));
    float Sum = 0;
    for (size_t I = 0; I != Out.data().size(); ++I)
      Sum += Out.data().Value[I];
    // Seed unit gradients.
    for (size_t I = 0; I != Out.data().size(); ++I)
      Out.data().Grad[I] = 1.0f;
    return Sum;
  };
  auto Loss = [&] {
    Tape T;
    Tensor Z = sigmoid(T, M);
    Tensor HC = tanhOp(T, H);
    Tensor Out = add(T, mul(T, oneMinus(T, Z), H), mul(T, Z, HC));
    float Sum = 0;
    for (size_t I = 0; I != Out.data().size(); ++I)
      Sum += Out.data().Value[I];
    return Sum;
  };
  Tape T;
  Forward(T);
  T.backward();
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_NEAR(M.data().Grad[I], numericalGradient(Loss, M, I), 1e-2);
    EXPECT_NEAR(H.data().Grad[I], numericalGradient(Loss, H, I), 1e-2);
  }
}

TEST(Autograd, AggregateMovesMessagesAlongEdges) {
  Tape T;
  Tensor In(3, 2);
  for (size_t I = 0; I != 3; ++I)
    for (size_t J = 0; J != 2; ++J)
      In.at(I, J) = static_cast<float>(I + 1);
  std::vector<Edge> Edges = {{0, 2}, {1, 2}};
  Tensor Out = aggregate(T, In, Edges, 3);
  EXPECT_FLOAT_EQ(Out.at(2, 0), 3.0f); // 1 + 2
  EXPECT_FLOAT_EQ(Out.at(0, 0), 0.0f);
  // Gradient scatters back along edges.
  Out.data().gradAt(2, 0) = 1.0f;
  T.backward();
  EXPECT_FLOAT_EQ(In.data().gradAt(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(In.data().gradAt(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(In.data().gradAt(2, 0), 0.0f);
}

TEST(Autograd, AdamReducesQuadraticLoss) {
  Tensor W(1, 3, true);
  W.at(0, 0) = 5.0f;
  W.at(0, 1) = -3.0f;
  W.at(0, 2) = 2.0f;
  Adam Opt({W}, Adam::Config{0.1f, 0.9f, 0.999f, 1e-8f});
  for (int Step = 0; Step != 200; ++Step) {
    for (size_t I = 0; I != 3; ++I)
      W.data().Grad[I] = 2.0f * W.data().Value[I]; // d/dw of w^2
    Opt.step();
  }
  for (size_t I = 0; I != 3; ++I)
    EXPECT_NEAR(W.data().Value[I], 0.0f, 1e-2);
}

// --- Program graphs ------------------------------------------------------------

namespace {

struct GraphFixture {
  AstContext Ctx;
  Tree Module;
  NodeId Fn = InvalidNode;

  GraphFixture() : Module(Ctx) {
    auto R = python::parsePython("def f(alpha, beta):\n"
                                 "    gamma = alpha + beta\n"
                                 "    return gamma + alpha\n",
                                 Ctx);
    EXPECT_TRUE(R.Errors.empty());
    Module = std::move(R.Module);
    for (NodeId N = 0; N != Module.size(); ++N)
      if (Module.node(N).Kind == NodeKind::FunctionDef)
        Fn = N;
  }
};

} // namespace

TEST(ProgramGraph, CollectsUseSites) {
  GraphFixture F;
  auto Uses = collectUseSites(F.Module, F.Fn);
  // alpha, beta (line 2), gamma, alpha (line 3).
  EXPECT_EQ(Uses.size(), 4u);
}

TEST(ProgramGraph, BuildsSampleWithMaskedHole) {
  GraphFixture F;
  auto Uses = collectUseSites(F.Module, F.Fn);
  GraphSample S;
  ASSERT_TRUE(buildGraphSample(F.Module, F.Fn, Uses[0], "alpha", 64, S));
  EXPECT_EQ(S.NodeLabels[S.HoleNode], 0u) << "hole must be masked";
  ASSERT_EQ(S.CandidateNames.size(), 3u); // alpha, beta, gamma
  EXPECT_EQ(S.CandidateNames[S.CorrectCandidate], "alpha");
  EXPECT_FALSE(S.Edges[static_cast<size_t>(EdgeType::Child)].empty());
  EXPECT_FALSE(S.Edges[static_cast<size_t>(EdgeType::NextToken)].empty());
  EXPECT_FALSE(S.Edges[static_cast<size_t>(EdgeType::LastUse)].empty());
}

TEST(ProgramGraph, VocabBucketNeverZero) {
  for (const char *Token : {"x", "assertTrue", "", "0", "zzz"})
    EXPECT_GT(vocabBucket(Token, 64), 0u);
}

TEST(VarMisuse, SyntheticDatasetShape) {
  corpus::CorpusConfig CC;
  CC.NumRepos = 15;
  corpus::Corpus C = corpus::generateCorpus(CC);
  VarMisuseConfig VC;
  auto Samples = buildSyntheticDataset(C, VC, 150);
  ASSERT_GT(Samples.size(), 50u);
  size_t Buggy = 0;
  for (const GraphSample &S : Samples) {
    Buggy += S.IsBuggy;
    EXPECT_LT(S.CorrectCandidate, S.CandidateNames.size());
    EXPECT_LT(S.HoleNode, S.numNodes());
  }
  // Roughly balanced.
  EXPECT_GT(Buggy, Samples.size() / 4);
  EXPECT_LT(Buggy, Samples.size() * 3 / 4);
}

TEST(VarMisuse, BuggySamplesHaveWrongNameAtHole) {
  corpus::CorpusConfig CC;
  CC.NumRepos = 10;
  corpus::Corpus C = corpus::generateCorpus(CC);
  VarMisuseConfig VC;
  for (const GraphSample &S : buildSyntheticDataset(C, VC, 80))
    if (S.IsBuggy)
      EXPECT_NE(S.CurrentName, S.CandidateNames[S.CorrectCandidate]);
}

// --- Models: learnability smoke test -------------------------------------------

TEST(Models, GgnnLearnsAboveChance) {
  corpus::CorpusConfig CC;
  CC.NumRepos = 25;
  corpus::Corpus C = corpus::generateCorpus(CC);
  VarMisuseConfig VC;
  auto Train = buildSyntheticDataset(C, VC, 250);
  ASSERT_GT(Train.size(), 100u);
  GgnnModel::Config GC;
  GC.Epochs = 2;
  GgnnModel Model(GC);
  Model.train(Train);
  // Chance level is well below 50% (several candidates per sample).
  EXPECT_GT(Model.repairAccuracy(Train), 0.6);
}

TEST(Detector, ReportsOnlyDisagreements) {
  GraphSample S;
  S.CandidateNames = {"alpha", "beta"};
  S.CandidateNodes = {0, 1};
  S.CurrentName = "alpha";
  S.File = "f.py";
  S.Line = 3;
  std::vector<GraphSample> Sites = {S};
  // Model prefers the current name: no report.
  auto Agree = detectRealIssues(
      Sites, [](const GraphSample &) { return std::vector<float>{0.9f, 0.1f}; },
      10);
  EXPECT_TRUE(Agree.empty());
  // Model prefers the other name: one report with margin confidence.
  auto Disagree = detectRealIssues(
      Sites, [](const GraphSample &) { return std::vector<float>{0.2f, 0.8f}; },
      10);
  ASSERT_EQ(Disagree.size(), 1u);
  EXPECT_EQ(Disagree[0].Original, "alpha");
  EXPECT_EQ(Disagree[0].Suggested, "beta");
  EXPECT_NEAR(Disagree[0].Confidence, 0.6f, 1e-5);
}

TEST(Detector, RanksByConfidenceAndCaps) {
  GraphSample S;
  S.CandidateNames = {"a", "b"};
  S.CandidateNodes = {0, 1};
  S.CurrentName = "a";
  std::vector<GraphSample> Sites(5, S);
  for (size_t I = 0; I != 5; ++I)
    Sites[I].Line = static_cast<uint32_t>(I);
  size_t Call = 0;
  auto Reports = detectRealIssues(
      Sites,
      [&Call](const GraphSample &) {
        float P = 0.55f + 0.08f * static_cast<float>(Call++);
        return std::vector<float>{1.0f - P, P};
      },
      3);
  ASSERT_EQ(Reports.size(), 3u);
  EXPECT_GE(Reports[0].Confidence, Reports[1].Confidence);
  EXPECT_GE(Reports[1].Confidence, Reports[2].Confidence);
}
