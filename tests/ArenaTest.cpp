//===- tests/ArenaTest.cpp - bump allocator and file mapping --------------==//
//
// Covers the Arena that backs zero-copy ingest: slab growth (doubling,
// capped, oversized requests get a dedicated slab), alignment of every
// allocation, stable copyString storage, and mapFile in both modes --
// mmap and the read() fallback (forced via AllowMmap=false) -- including
// the empty-file and missing-file edges.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace namer;

namespace {

/// Writes \p Contents to a fresh file under the test's temp directory and
/// removes it on destruction.
class TempFile {
public:
  TempFile(const std::string &Name, const std::string &Contents)
      : Path((std::filesystem::temp_directory_path() /
              ("namer_arena_test_" + Name))
                 .string()) {
    std::ofstream Out(Path, std::ios::binary);
    Out << Contents;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

} // namespace

TEST(Arena, StartsEmpty) {
  Arena A;
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  EXPECT_EQ(A.numSlabs(), 0u);
  EXPECT_EQ(A.numMappings(), 0u);
}

TEST(Arena, SmallAllocationsShareOneSlab) {
  Arena A;
  void *P1 = A.allocate(100);
  void *P2 = A.allocate(100);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(A.numSlabs(), 1u);
  EXPECT_GE(A.bytesAllocated(), 200u);
  EXPECT_GE(A.bytesReserved(), A.bytesAllocated());
}

TEST(Arena, SlabsGrowWhenExhausted) {
  Arena A;
  // Fill well past the first slab; the arena must add slabs rather than
  // fail, and reserve at least what was asked for.
  size_t Total = 0;
  for (int I = 0; I != 64; ++I) {
    ASSERT_NE(A.allocate(8 * 1024), nullptr);
    Total += 8 * 1024;
  }
  EXPECT_GT(A.numSlabs(), 1u);
  EXPECT_GE(A.bytesAllocated(), Total);
  EXPECT_GE(A.bytesReserved(), Total);
}

TEST(Arena, OversizedRequestGetsItsOwnSlab) {
  Arena A;
  // Far larger than MaxSlabBytes-capped doubling would provide in one
  // step from a cold start.
  const size_t Huge = 8 * 1024 * 1024;
  char *P = static_cast<char *>(A.allocate(Huge, 1));
  ASSERT_NE(P, nullptr);
  // The whole range must be writable.
  P[0] = 'a';
  P[Huge - 1] = 'z';
  EXPECT_EQ(P[0], 'a');
  EXPECT_EQ(P[Huge - 1], 'z');
  EXPECT_GE(A.bytesReserved(), Huge);
}

TEST(Arena, EveryAllocationRespectsAlignment) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (int I = 0; I != 10; ++I) {
      // Odd sizes force misaligned bump offsets that allocate must fix up.
      void *P = A.allocate(3, Align);
      ASSERT_NE(P, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
          << "align " << Align << " iteration " << I;
    }
  }
}

TEST(Arena, CopyStringIsStableAndIndependent) {
  Arena A;
  std::string Source = "the quick brown fox";
  std::string_view Copy = A.copyString(Source);
  EXPECT_EQ(Copy, Source);
  // The copy must not alias the source buffer.
  EXPECT_NE(Copy.data(), Source.data());
  Source.assign(Source.size(), 'x');
  EXPECT_EQ(Copy, "the quick brown fox");
}

TEST(ArenaMapFile, MapsRegularFile) {
  std::string Contents = "def f():\n    return 1\n";
  TempFile File("maps_regular.py", Contents);
  Arena A;
  auto Mapped = A.mapFile(File.path());
  ASSERT_TRUE(Mapped.has_value());
  EXPECT_EQ(Mapped->Contents, Contents);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(Mapped->Mmapped);
  EXPECT_EQ(A.numMappings(), 1u);
#endif
}

TEST(ArenaMapFile, ReadFallbackMatchesMmapByteForByte) {
  std::string Contents(100 * 1024, '\0');
  for (size_t I = 0; I != Contents.size(); ++I)
    Contents[I] = static_cast<char>('a' + I % 26);
  TempFile File("fallback.py", Contents);

  Arena Mmapped;
  auto ViaMap = Mmapped.mapFile(File.path(), /*AllowMmap=*/true);
  Arena Read;
  auto ViaRead = Read.mapFile(File.path(), /*AllowMmap=*/false);
  ASSERT_TRUE(ViaMap.has_value());
  ASSERT_TRUE(ViaRead.has_value());
  EXPECT_FALSE(ViaRead->Mmapped);
  EXPECT_EQ(Read.numMappings(), 0u);
  EXPECT_GE(Read.bytesAllocated(), Contents.size());
  EXPECT_EQ(ViaMap->Contents, ViaRead->Contents);
  EXPECT_EQ(ViaRead->Contents, Contents);
}

TEST(ArenaMapFile, EmptyFileYieldsEmptyView) {
  TempFile File("empty.py", "");
  Arena A;
  auto Mapped = A.mapFile(File.path());
  ASSERT_TRUE(Mapped.has_value());
  EXPECT_TRUE(Mapped->Contents.empty());
}

TEST(ArenaMapFile, MissingFileYieldsNullopt) {
  Arena A;
  EXPECT_FALSE(
      A.mapFile("/nonexistent/namer_arena_test/missing.py").has_value());
  EXPECT_FALSE(A.mapFile("/nonexistent/namer_arena_test/missing.py",
                         /*AllowMmap=*/false)
                   .has_value());
}
