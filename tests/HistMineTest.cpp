//===- tests/HistMineTest.cpp - confusing word pair mining tests ----------==//

#include "histmine/ConfusingPairs.h"

#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"

#include <gtest/gtest.h>

using namespace namer;

namespace {

/// Runs the miner over one python before/after commit.
ConfusingPairMiner minePython(AstContext &Ctx, std::string_view Before,
                              std::string_view After) {
  auto B = python::parsePython(Before, Ctx);
  auto A = python::parsePython(After, Ctx);
  EXPECT_TRUE(B.Errors.empty() && A.Errors.empty());
  ConfusingPairMiner Miner(Ctx);
  Miner.addCommit(B.Module, A.Module);
  return Miner;
}

bool hasPair(const ConfusingPairMiner &Miner, AstContext &Ctx,
             std::string_view Mistaken, std::string_view Correct) {
  return Miner.isConfusingPair(Ctx.intern(Mistaken), Ctx.intern(Correct));
}

} // namespace

TEST(ConfusingPairs, MinesTrueToEqual) {
  AstContext Ctx;
  auto Miner = minePython(Ctx, "self.assertTrue(vec, 4)\n",
                          "self.assertEqual(vec, 4)\n");
  EXPECT_EQ(Miner.numPairs(), 1u);
  EXPECT_TRUE(hasPair(Miner, Ctx, "True", "Equal"));
  EXPECT_FALSE(hasPair(Miner, Ctx, "Equal", "True"));
}

TEST(ConfusingPairs, MinesSnakeCaseTypo) {
  AstContext Ctx;
  auto Miner = minePython(Ctx, "num_or_process = 3\n",
                          "num_of_process = 3\n");
  EXPECT_TRUE(hasPair(Miner, Ctx, "or", "of"));
}

TEST(ConfusingPairs, IgnoresMultiSubtokenRenames) {
  AstContext Ctx;
  // Whole-identifier rename (no shared subtokens) is not a confusing pair.
  auto Miner = minePython(Ctx, "totalCount = 1\n", "resultValue = 1\n");
  EXPECT_EQ(Miner.numPairs(), 0u);
}

TEST(ConfusingPairs, IgnoresStructuralChanges) {
  AstContext Ctx;
  auto Miner = minePython(Ctx, "x = f(a)\n", "x = f(a, b)\n");
  EXPECT_EQ(Miner.numPairs(), 0u);
}

TEST(ConfusingPairs, CountsAccumulateAcrossCommits) {
  AstContext Ctx;
  ConfusingPairMiner Miner(Ctx);
  for (int I = 0; I < 3; ++I) {
    auto B = python::parsePython("self.assertTrue(v, 1)\n", Ctx);
    auto A = python::parsePython("self.assertEqual(v, 1)\n", Ctx);
    Miner.addCommit(B.Module, A.Module);
  }
  auto Pairs = Miner.pairs();
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0].Count, 3u);
}

TEST(ConfusingPairs, PairsSortedByFrequency) {
  AstContext Ctx;
  ConfusingPairMiner Miner(Ctx);
  auto AddCommit = [&](std::string_view B, std::string_view A) {
    auto RB = python::parsePython(B, Ctx);
    auto RA = python::parsePython(A, Ctx);
    Miner.addCommit(RB.Module, RA.Module);
  };
  AddCommit("a = min_value\n", "a = max_value\n");
  AddCommit("b = min_size\n", "b = max_size\n");
  AddCommit("self.por = 1\n", "self.port = 1\n");
  auto Pairs = Miner.pairs();
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Ctx.text(Pairs[0].Mistaken), "min");
  EXPECT_EQ(Ctx.text(Pairs[0].Correct), "max");
  EXPECT_EQ(Pairs[0].Count, 2u);
  EXPECT_EQ(Ctx.text(Pairs[1].Mistaken), "por");
}

TEST(ConfusingPairs, CorrectWordsVocabulary) {
  AstContext Ctx;
  auto Miner = minePython(Ctx, "self.assertTrue(v, 4)\n",
                          "self.assertEqual(v, 4)\n");
  auto Words = Miner.correctWords();
  EXPECT_EQ(Words.size(), 1u);
  EXPECT_TRUE(Words.count(Ctx.intern("Equal")));
}

TEST(ConfusingPairs, WorksForJavaCommits) {
  AstContext Ctx;
  auto B = java::parseJava(
      "class C { C(String k) { this.publicKey = publickKey; } }", Ctx);
  auto A = java::parseJava(
      "class C { C(String k) { this.publicKey = publicKey; } }", Ctx);
  ConfusingPairMiner Miner(Ctx);
  Miner.addCommit(B.Module, A.Module);
  EXPECT_TRUE(Miner.isConfusingPair(Ctx.intern("publick"),
                                    Ctx.intern("public")));
}
