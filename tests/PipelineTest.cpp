//===- tests/PipelineTest.cpp - end-to-end pipeline tests -----------------==//

#include "namer/Evaluation.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace namer;
using corpus::InspectionOutcome;

namespace {

/// One small corpus + built pipeline per language, shared across tests
/// (building takes ~0.5s).
struct SharedPipeline {
  corpus::Corpus C;
  std::unique_ptr<corpus::InspectionOracle> Oracle;
  std::unique_ptr<NamerPipeline> Pipeline;

  explicit SharedPipeline(corpus::Language Lang) {
    corpus::CorpusConfig Config;
    Config.Lang = Lang;
    Config.NumRepos = 80;
    C = corpus::generateCorpus(Config);
    Oracle = std::make_unique<corpus::InspectionOracle>(C);
    PipelineConfig PC;
    PC.Miner.MinPatternSupport = 20;
    Pipeline = std::make_unique<NamerPipeline>(PC);
    Pipeline->build(C);
  }

  static SharedPipeline &python() {
    static SharedPipeline P(corpus::Language::Python);
    return P;
  }
  static SharedPipeline &java() {
    static SharedPipeline P(corpus::Language::Java);
    return P;
  }
};

} // namespace

TEST(Pipeline, MinesBothPatternKinds) {
  auto &S = SharedPipeline::python();
  size_t Consistency = 0, Confusing = 0;
  for (const NamePattern &P : S.Pipeline->patterns())
    (P.Kind == PatternKind::Consistency ? Consistency : Confusing)++;
  EXPECT_GT(Consistency, 0u);
  EXPECT_GT(Confusing, 0u);
}

TEST(Pipeline, FindsSeededSemanticDefects) {
  auto &S = SharedPipeline::python();
  size_t Semantic = 0;
  for (const Violation &V : S.Pipeline->violations()) {
    Report R = S.Pipeline->makeReport(V);
    auto Out = S.Oracle->inspect(R.File, R.Line, R.Original, R.Suggested);
    Semantic += Out.Result == InspectionOutcome::Verdict::SemanticDefect;
  }
  EXPECT_GT(Semantic, 0u) << "assertTrue/xrange defects must be flagged";
}

TEST(Pipeline, ViolationsIncludeFalsePositives) {
  // Anomaly detection without the classifier must over-report (Section 2).
  auto &S = SharedPipeline::python();
  size_t FalsePositives = 0;
  for (const Violation &V : S.Pipeline->violations()) {
    Report R = S.Pipeline->makeReport(V);
    auto Out = S.Oracle->inspect(R.File, R.Line, R.Original, R.Suggested);
    FalsePositives +=
        Out.Result == InspectionOutcome::Verdict::FalsePositive;
  }
  EXPECT_GT(FalsePositives, 0u);
  EXPECT_LT(FalsePositives, S.Pipeline->violations().size());
}

TEST(Pipeline, ReportsCarryActionableFixes) {
  auto &S = SharedPipeline::python();
  ASSERT_FALSE(S.Pipeline->violations().empty());
  for (const Violation &V : S.Pipeline->violations()) {
    Report R = S.Pipeline->makeReport(V);
    EXPECT_FALSE(R.File.empty());
    EXPECT_GT(R.Line, 0u);
    EXPECT_FALSE(R.Original.empty());
    EXPECT_FALSE(R.Suggested.empty());
    EXPECT_NE(R.Original, R.Suggested);
  }
}

TEST(Pipeline, FeatureVectorsHaveTableOneShape) {
  auto &S = SharedPipeline::python();
  ASSERT_FALSE(S.Pipeline->violations().empty());
  const Violation &V = S.Pipeline->violations().front();
  std::vector<double> F = S.Pipeline->features(V);
  ASSERT_EQ(F.size(), NumViolationFeatures);
  EXPECT_GE(F[0], 1.0);                      // stmt has paths
  EXPECT_GE(F[1], 1.0);                      // the stmt itself counts
  EXPECT_GE(F[2], F[1]);                     // repo count >= file count
  for (size_t I = 3; I <= 5; ++I) {
    EXPECT_GE(F[I], 0.0);
    EXPECT_LE(F[I], 1.0);                    // rates
  }
  EXPECT_TRUE(F[12] == 0.0 || F[12] == 1.0); // boolean
  EXPECT_TRUE(F[16] == 0.0 || F[16] == 1.0); // boolean
  EXPECT_GE(F[15], 1.0);                     // fix changes the name
}

TEST(Pipeline, ClassifierImprovesPrecision) {
  auto &S = SharedPipeline::java();
  EvaluationConfig Config;
  Config.NumLabeled = 80;
  Config.NumEvaluated = 200;
  EvaluationResult R = evaluatePipeline(*S.Pipeline, *S.Oracle, Config);
  ASSERT_GT(R.numReports(), 0u);

  // Unfiltered precision over the same violations.
  size_t True = 0, Total = 0;
  for (const Violation &V : S.Pipeline->violations()) {
    Report Rep = S.Pipeline->makeReport(V);
    auto Out = S.Oracle->inspect(Rep.File, Rep.Line, Rep.Original,
                                 Rep.Suggested);
    True += Out.Result != InspectionOutcome::Verdict::FalsePositive;
    ++Total;
  }
  double Unfiltered = static_cast<double>(True) / static_cast<double>(Total);
  EXPECT_GT(R.precision(), Unfiltered)
      << "the classifier must beat raw pattern matching (Table 5)";
}

TEST(Pipeline, TrainingMetricsAreReasonable) {
  auto &S = SharedPipeline::java();
  EvaluationConfig Config;
  Config.NumLabeled = 80;
  EvaluationResult R = evaluatePipeline(*S.Pipeline, *S.Oracle, Config);
  EXPECT_GT(R.TrainingMetrics.Accuracy, 0.6);
  EXPECT_FALSE(R.SelectedModel.empty());
}

TEST(Pipeline, AblationWithoutAnalysesStillRuns) {
  corpus::CorpusConfig Config;
  Config.NumRepos = 30;
  corpus::Corpus C = corpus::generateCorpus(Config);
  PipelineConfig PC;
  PC.UseAnalyses = false;
  PC.Miner.MinPatternSupport = 20;
  NamerPipeline P(PC);
  P.build(C);
  // Origin symbols must not appear in any mined pattern path.
  for (const NamePattern &Pt : P.patterns())
    for (PathId Id : Pt.Condition) {
      const NamePath &Path = P.table().path(Id);
      for (const PathStep &Step : Path.Prefix)
        EXPECT_NE(P.context().text(Step.Value), "TestCase");
    }
}

TEST(Pipeline, StatementsCoverWholeCorpus) {
  auto &S = SharedPipeline::python();
  EXPECT_EQ(S.Pipeline->numFiles(), S.C.numFiles());
  EXPECT_EQ(S.Pipeline->numRepos(), S.C.Repos.size());
  EXPECT_GT(S.Pipeline->statements().size(), S.C.numFiles())
      << "several statements per file";
  EXPECT_EQ(S.Pipeline->numParseErrors(), 0u);
}

TEST(Pipeline, ViolationsAreDeduplicatedPerFix) {
  auto &S = SharedPipeline::python();
  std::unordered_set<std::string> Keys;
  for (const Violation &V : S.Pipeline->violations()) {
    Report R = S.Pipeline->makeReport(V);
    std::string Key = std::to_string(V.Stmt) + "|" + R.Original + ">" +
                      R.Suggested + "|" +
                      std::to_string(static_cast<int>(R.Kind));
    EXPECT_TRUE(Keys.insert(Key).second)
        << "duplicate violation for the same fix: " << Key;
  }
}
