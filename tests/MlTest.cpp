//===- tests/MlTest.cpp - ML layer tests ----------------------------------==//

#include "ml/Evaluation.h"
#include "ml/Preprocess.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace namer;
using namespace namer::ml;

namespace {

/// Two well-separated Gaussian blobs in D dimensions.
struct BlobData {
  Matrix X;
  std::vector<bool> Y;
};

BlobData makeBlobs(size_t PerClass, size_t D, double Separation,
                   uint64_t Seed) {
  Rng R(Seed);
  BlobData Data;
  Data.X = Matrix(PerClass * 2, D);
  for (size_t I = 0; I != PerClass * 2; ++I) {
    bool Label = I >= PerClass;
    double Center = Label ? Separation : -Separation;
    for (size_t J = 0; J != D; ++J)
      Data.X.at(I, J) = Center + R.normal();
    Data.Y.push_back(Label);
  }
  return Data;
}

} // namespace

// --- Matrix ------------------------------------------------------------------

TEST(MlMatrix, MultiplyAndTranspose) {
  Matrix A(2, 3);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(0, 2) = 3;
  A.at(1, 0) = 4;
  A.at(1, 1) = 5;
  A.at(1, 2) = 6;
  Matrix B = A.transposed();
  EXPECT_EQ(B.rows(), 3u);
  EXPECT_EQ(B.at(2, 1), 6.0);
  Matrix C = A.multiply(B); // 2x2
  EXPECT_DOUBLE_EQ(C.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 77.0);
}

// --- Standardizer -------------------------------------------------------------

TEST(Standardizer, ZeroMeanUnitVariance) {
  Matrix X(4, 2);
  double Vals[4][2] = {{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  for (size_t I = 0; I != 4; ++I)
    for (size_t J = 0; J != 2; ++J)
      X.at(I, J) = Vals[I][J];
  Standardizer S;
  S.fit(X);
  Matrix T = S.transform(X);
  for (size_t J = 0; J != 2; ++J) {
    double Mean = 0, Var = 0;
    for (size_t I = 0; I != 4; ++I)
      Mean += T.at(I, J);
    Mean /= 4;
    for (size_t I = 0; I != 4; ++I)
      Var += (T.at(I, J) - Mean) * (T.at(I, J) - Mean);
    Var /= 4;
    EXPECT_NEAR(Mean, 0.0, 1e-9);
    EXPECT_NEAR(Var, 1.0, 1e-9);
  }
}

TEST(Standardizer, ConstantColumnIsSafe) {
  Matrix X(3, 1, 5.0);
  Standardizer S;
  S.fit(X);
  Matrix T = S.transform(X);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_DOUBLE_EQ(T.at(I, 0), 0.0);
}

// --- PCA ---------------------------------------------------------------------

TEST(Pca, JacobiEigenDiagonal) {
  Matrix A(3, 3);
  A.at(0, 0) = 3;
  A.at(1, 1) = 1;
  A.at(2, 2) = 2;
  Matrix V;
  auto Evals = jacobiEigen(A, V);
  ASSERT_EQ(Evals.size(), 3u);
  EXPECT_NEAR(Evals[0], 3.0, 1e-9);
  EXPECT_NEAR(Evals[1], 2.0, 1e-9);
  EXPECT_NEAR(Evals[2], 1.0, 1e-9);
}

TEST(Pca, JacobiEigenSymmetric2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix A(2, 2);
  A.at(0, 0) = 2;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 2;
  Matrix V;
  auto Evals = jacobiEigen(A, V);
  EXPECT_NEAR(Evals[0], 3.0, 1e-9);
  EXPECT_NEAR(Evals[1], 1.0, 1e-9);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(V.at(0, 0)), std::sqrt(0.5), 1e-6);
  EXPECT_NEAR(std::fabs(V.at(0, 1)), std::sqrt(0.5), 1e-6);
}

TEST(Pca, CapturesDominantDirection) {
  // Points along y = 2x with small noise: the first component dominates.
  Rng R(3);
  Matrix X(100, 2);
  for (size_t I = 0; I != 100; ++I) {
    double T = R.normal();
    X.at(I, 0) = T;
    X.at(I, 1) = 2 * T + 0.01 * R.normal();
  }
  Standardizer S;
  S.fit(X);
  Matrix Xs = S.transform(X);
  Pca P;
  P.fit(Xs);
  ASSERT_EQ(P.eigenvalues().size(), 2u);
  EXPECT_GT(P.eigenvalues()[0], 100 * P.eigenvalues()[1]);
}

TEST(Pca, BackProjectionRoundTrip) {
  Rng R(7);
  Matrix X(50, 3);
  for (size_t I = 0; I != 50; ++I)
    for (size_t J = 0; J != 3; ++J)
      X.at(I, J) = R.normal();
  Standardizer S;
  S.fit(X);
  Matrix Xs = S.transform(X);
  Pca P;
  P.fit(Xs); // keep all components
  // decision-equivalence: w_comp . z == backProject(w_comp) . x.
  std::vector<double> Wc = {0.3, -1.2, 0.5};
  std::vector<double> Wo = P.backProject(Wc);
  auto Row = Xs.rowVector(10);
  auto Z = P.transform(Row);
  EXPECT_NEAR(dot(Wc, Z), dot(Wo, Row), 1e-9);
}

// --- Models (parameterized over all three families) ---------------------------

class ModelFamilyTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ModelFamilyTest, SeparatesBlobs) {
  auto Data = makeBlobs(60, 4, 2.0, 11);
  auto Model = makeClassifier(GetParam());
  ASSERT_NE(Model, nullptr);
  Model->fit(Data.X, Data.Y);
  size_t Correct = 0;
  for (size_t I = 0; I != Data.X.rows(); ++I)
    Correct += Model->predict(Data.X.rowVector(I)) == Data.Y[I];
  EXPECT_GT(Correct, Data.X.rows() * 95 / 100)
      << GetParam() << " got " << Correct << "/" << Data.X.rows();
}

TEST_P(ModelFamilyTest, WeightsPointTowardPositiveClass) {
  auto Data = makeBlobs(60, 3, 2.0, 13);
  auto Model = makeClassifier(GetParam());
  Model->fit(Data.X, Data.Y);
  // Positive class sits at +2 in every dimension: weights must be positive.
  for (double W : Model->weights())
    EXPECT_GT(W, 0.0);
}

TEST_P(ModelFamilyTest, DegenerateSingleClassDoesNotCrash) {
  Matrix X(5, 2, 1.0);
  std::vector<bool> Y(5, true);
  auto Model = makeClassifier(GetParam());
  Model->fit(X, Y);
  (void)Model->decision({1.0, 1.0});
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelFamilyTest,
                         ::testing::Values("svm-linear", "logreg", "lda"));

TEST(Models, UnknownFamilyReturnsNull) {
  EXPECT_EQ(makeClassifier("deep-transformer"), nullptr);
}

// --- Metrics and cross-validation ---------------------------------------------

TEST(Metrics, PerfectPrediction) {
  std::vector<bool> Y = {true, false, true, false};
  Metrics M = computeMetrics(Y, Y);
  EXPECT_DOUBLE_EQ(M.Accuracy, 1.0);
  EXPECT_DOUBLE_EQ(M.Precision, 1.0);
  EXPECT_DOUBLE_EQ(M.Recall, 1.0);
  EXPECT_DOUBLE_EQ(M.F1, 1.0);
}

TEST(Metrics, KnownConfusionMatrix) {
  // TP=2 FP=1 FN=1 TN=1.
  std::vector<bool> Pred = {true, true, true, false, false};
  std::vector<bool> Act = {true, true, false, true, false};
  Metrics M = computeMetrics(Pred, Act);
  EXPECT_NEAR(M.Accuracy, 0.6, 1e-9);
  EXPECT_NEAR(M.Precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(M.Recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(M.F1, 2.0 / 3.0, 1e-9);
}

TEST(Metrics, NoPositivePredictionsGivesZeroPrecision) {
  std::vector<bool> Pred = {false, false};
  std::vector<bool> Act = {true, false};
  Metrics M = computeMetrics(Pred, Act);
  EXPECT_DOUBLE_EQ(M.Precision, 0.0);
  EXPECT_DOUBLE_EQ(M.Recall, 0.0);
}

TEST(CrossValidation, HighOnSeparableData) {
  auto Data = makeBlobs(50, 4, 2.0, 17);
  CrossValidationConfig Config;
  Config.Repeats = 10;
  Metrics M = crossValidate(
      Data.X, Data.Y, [] { return makeClassifier("svm-linear"); }, Config);
  EXPECT_GT(M.Accuracy, 0.9);
  EXPECT_GT(M.F1, 0.9);
}

TEST(CrossValidation, ModelSelectionReturnsAFamily) {
  auto Data = makeBlobs(40, 3, 1.5, 19);
  CrossValidationConfig Config;
  Config.Repeats = 5;
  std::vector<std::pair<std::string, Metrics>> All;
  std::string Best = selectModel(Data.X, Data.Y,
                                 {"svm-linear", "logreg", "lda"}, Config,
                                 &All);
  EXPECT_FALSE(Best.empty());
  EXPECT_EQ(All.size(), 3u);
  for (const auto &[Name, M] : All)
    EXPECT_GT(M.Accuracy, 0.8) << Name;
}

TEST(CrossValidation, DeterministicGivenSeed) {
  auto Data = makeBlobs(30, 3, 1.0, 23);
  CrossValidationConfig Config;
  Config.Repeats = 5;
  Metrics A = crossValidate(
      Data.X, Data.Y, [] { return makeClassifier("logreg"); }, Config);
  Metrics B = crossValidate(
      Data.X, Data.Y, [] { return makeClassifier("logreg"); }, Config);
  EXPECT_DOUBLE_EQ(A.Accuracy, B.Accuracy);
  EXPECT_DOUBLE_EQ(A.F1, B.F1);
}
