//===- tests/PropertyTest.cpp - cross-module property tests ---------------==//
//
// Parameterized property sweeps over generated corpora: invariants that
// must hold for every statement, path, pattern and violation the pipeline
// produces, regardless of language or seed.
//
//===----------------------------------------------------------------------===//

#include "ast/Statements.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "namer/Pipeline.h"
#include "pattern/PatternIndex.h"
#include "transform/AstPlus.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace namer;

namespace {

struct SweepCase {
  corpus::Language Lang;
  uint64_t Seed;
};

std::string caseName(const ::testing::TestParamInfo<SweepCase> &Info) {
  return std::string(Info.param.Lang == corpus::Language::Python ? "python"
                                                                 : "java") +
         "_seed" + std::to_string(Info.param.Seed);
}

corpus::Corpus makeCorpus(const SweepCase &Param) {
  corpus::CorpusConfig Config;
  Config.Lang = Param.Lang;
  Config.Seed = Param.Seed;
  Config.NumRepos = 25;
  return corpus::generateCorpus(Config);
}

Tree parse(const corpus::SourceFile &F, corpus::Language Lang,
           AstContext &Ctx) {
  if (Lang == corpus::Language::Python)
    return std::move(python::parsePython(F.Text, Ctx).Module);
  return std::move(java::parseJava(F.Text, Ctx).Module);
}

} // namespace

class CorpusSweepTest : public ::testing::TestWithParam<SweepCase> {};

// Every tree node is reachable from the root exactly once, parent links
// agree with child lists, and terminals are exactly the leaf set.
TEST_P(CorpusSweepTest, TreeStructuralInvariants) {
  corpus::Corpus C = makeCorpus(GetParam());
  size_t Checked = 0;
  for (const corpus::Repository &Repo : C.Repos) {
    for (const corpus::SourceFile &F : Repo.Files) {
      if (++Checked > 20)
        return; // bounded per sweep
      AstContext Ctx;
      Tree T = parse(F, GetParam().Lang, Ctx);
      std::vector<int> Seen(T.size(), 0);
      std::vector<NodeId> Work = {T.root()};
      while (!Work.empty()) {
        NodeId N = Work.back();
        Work.pop_back();
        ++Seen[N];
        for (NodeId Child : T.node(N).Children) {
          ASSERT_EQ(T.node(Child).Parent, N) << F.Path;
          Work.push_back(Child);
        }
      }
      for (NodeId N = 0; N != T.size(); ++N)
        EXPECT_LE(Seen[N], 1) << "node visited twice (cycle?) in " << F.Path;
    }
  }
}

// AST+ invariants: every Ident under a name wrapper became a NumST node
// whose label matches its subtoken count; NumArgs labels match call arity.
TEST_P(CorpusSweepTest, TransformInvariants) {
  corpus::Corpus C = makeCorpus(GetParam());
  WellKnownRegistry Registry = GetParam().Lang == corpus::Language::Python
                                   ? WellKnownRegistry::forPython()
                                   : WellKnownRegistry::forJava();
  size_t Checked = 0;
  for (const corpus::Repository &Repo : C.Repos) {
    for (const corpus::SourceFile &F : Repo.Files) {
      if (++Checked > 10)
        return;
      AstContext Ctx;
      Tree T = parse(F, GetParam().Lang, Ctx);
      transformToAstPlus(T, computeOrigins(T, Registry).Origins);
      for (NodeId N = 0; N != T.size(); ++N) {
        const Node &Nd = T.node(N);
        if (Nd.Kind == NodeKind::NumST) {
          // NumST(k) has k subtoken descendants (possibly via Origin).
          size_t Leaves = 0;
          for (NodeId Child : Nd.Children) {
            NodeId Leaf = Child;
            if (T.node(Leaf).Kind == NodeKind::Origin)
              Leaf = T.node(Leaf).Children.at(0);
            Leaves += T.node(Leaf).Kind == NodeKind::Subtoken ||
                      T.isTerminal(Leaf);
          }
          std::string Expected =
              "NumST(" + std::to_string(Nd.Children.size()) + ")";
          EXPECT_EQ(T.valueText(N), Expected);
          EXPECT_EQ(Leaves, Nd.Children.size());
        }
        if (Nd.Kind == NodeKind::NumArgs) {
          ASSERT_EQ(Nd.Children.size(), 1u);
          const Node &Inner = T.node(Nd.Children[0]);
          if (Inner.Kind == NodeKind::Call || Inner.Kind == NodeKind::New) {
            size_t Arity = Inner.Children.empty()
                               ? 0
                               : Inner.Children.size() - 1;
            EXPECT_EQ(T.valueText(N),
                      "NumArgs(" + std::to_string(Arity) + ")");
          }
        }
      }
    }
  }
}

// Name path invariants (Definition 3.2): concrete ends, unique prefixes,
// and the prefix walk reconstructs a real root-to-leaf path.
TEST_P(CorpusSweepTest, NamePathInvariants) {
  corpus::Corpus C = makeCorpus(GetParam());
  WellKnownRegistry Registry = GetParam().Lang == corpus::Language::Python
                                   ? WellKnownRegistry::forPython()
                                   : WellKnownRegistry::forJava();
  size_t Checked = 0;
  for (const corpus::Repository &Repo : C.Repos) {
    for (const corpus::SourceFile &F : Repo.Files) {
      if (++Checked > 10)
        return;
      AstContext Ctx;
      Tree T = parse(F, GetParam().Lang, Ctx);
      transformToAstPlus(T, computeOrigins(T, Registry).Origins);
      for (NodeId Root : collectStatementRoots(T)) {
        Tree Stmt = projectStatement(T, Root);
        auto Paths = extractNamePaths(Stmt, 10);
        std::unordered_set<std::string> Prefixes;
        for (const NamePath &P : Paths) {
          EXPECT_FALSE(P.isSymbolic());
          // Walk the prefix through the statement tree.
          NodeId N = Stmt.root();
          std::string Key;
          for (const PathStep &Step : P.Prefix) {
            ASSERT_EQ(Stmt.node(N).Value, Step.Value);
            ASSERT_LT(Step.Index, Stmt.node(N).Children.size());
            N = Stmt.node(N).Children[Step.Index];
            Key += std::to_string(Step.Value) + "." +
                   std::to_string(Step.Index) + "/";
          }
          EXPECT_TRUE(Stmt.isTerminal(N));
          EXPECT_EQ(Stmt.node(N).Value, P.End);
          EXPECT_TRUE(Prefixes.insert(Key).second)
              << "duplicate prefix in one statement";
        }
      }
    }
  }
}

// Pattern semantics: for every mined pattern and every statement,
// satisfaction and violation both imply match, and are mutually exclusive
// (Definitions 3.7/3.9); the index agrees with direct evaluation.
TEST_P(CorpusSweepTest, PatternEvaluationInvariants) {
  corpus::Corpus C = makeCorpus(GetParam());
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 15;
  NamerPipeline P(PC);
  P.build(C);
  if (P.patterns().empty())
    GTEST_SKIP() << "no patterns mined at this corpus size";

  PatternIndex Index(P.patterns(), P.table());
  std::vector<PatternHit> Hits;
  size_t Checked = 0;
  for (const StmtRecord &S : P.statements()) {
    if (++Checked > 500)
      break;
    Hits.clear();
    Index.evaluate(S.Paths, Hits);
    std::unordered_set<PatternId> HitSet;
    for (const PatternHit &H : Hits) {
      EXPECT_NE(H.Result, MatchResult::NoMatch);
      EXPECT_TRUE(HitSet.insert(H.Pattern).second)
          << "pattern evaluated twice for one statement";
    }
    // Spot-check agreement with direct evaluation on a few patterns.
    for (PatternId Id = 0; Id < P.patterns().size() && Id < 20; ++Id) {
      MatchResult Direct = evaluatePattern(P.patterns()[Id], S.Paths,
                                           P.table());
      bool InHits = HitSet.count(Id) != 0;
      EXPECT_EQ(Direct != MatchResult::NoMatch, InHits);
    }
  }
}

// Mined pattern structural invariants: deduction sizes per kind, sorted
// conditions, dataset counters consistent.
TEST_P(CorpusSweepTest, MinedPatternInvariants) {
  corpus::Corpus C = makeCorpus(GetParam());
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 15;
  NamerPipeline P(PC);
  P.build(C);
  for (const NamePattern &Pt : P.patterns()) {
    if (Pt.Kind == PatternKind::Consistency) {
      ASSERT_EQ(Pt.Deduction.size(), 2u);
      EXPECT_TRUE(P.table().isSymbolic(Pt.Deduction[0]));
      EXPECT_TRUE(P.table().isSymbolic(Pt.Deduction[1]));
      EXPECT_NE(P.table().prefixOf(Pt.Deduction[0]),
                P.table().prefixOf(Pt.Deduction[1]));
    } else {
      ASSERT_EQ(Pt.Deduction.size(), 1u);
      EXPECT_FALSE(P.table().isSymbolic(Pt.Deduction[0]));
    }
    for (PathId Cond : Pt.Condition)
      EXPECT_FALSE(P.table().isSymbolic(Cond));
    EXPECT_EQ(Pt.DatasetMatches,
              Pt.DatasetSatisfactions + Pt.DatasetViolations);
    EXPECT_GE(Pt.datasetSatisfactionRate(),
              PC.Miner.MinSatisfactionRatio);
    EXPECT_GE(Pt.Support, PC.Miner.MinPatternSupport);
  }
}

// Every violation's report points at a real file of the corpus and at a
// line within that file.
TEST_P(CorpusSweepTest, ReportsPointIntoTheCorpus) {
  corpus::Corpus C = makeCorpus(GetParam());
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 15;
  NamerPipeline P(PC);
  P.build(C);
  std::unordered_map<std::string, size_t> FileLines;
  for (const corpus::Repository &Repo : C.Repos)
    for (const corpus::SourceFile &F : Repo.Files)
      FileLines[F.Path] =
          static_cast<size_t>(std::count(F.Text.begin(), F.Text.end(), '\n'));
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    auto It = FileLines.find(R.File);
    ASSERT_NE(It, FileLines.end()) << R.File;
    EXPECT_LE(R.Line, It->second + 1) << R.File;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorpusSweepTest,
    ::testing::Values(SweepCase{corpus::Language::Python, 1},
                      SweepCase{corpus::Language::Python, 2},
                      SweepCase{corpus::Language::Java, 1},
                      SweepCase{corpus::Language::Java, 2}),
    caseName);
