//===- tests/ModelStoreTest.cpp - model store / incremental scan ----------==//
//
// Pins the persistence contract of the mine/scan split (DESIGN.md, "Model
// store & incremental scan"):
//
//   * the serialized model is a pure function of the mined content --
//     byte-identical at Threads=1 and Threads=8, and serialize(parse(x))
//     reproduces x exactly;
//   * a warm loadModel+scanWith run is indistinguishable from the cold
//     build that produced the model -- statements, patterns, pairs,
//     reports, classifier decisions, SARIF/findings JSON -- and does no
//     mining at all (fptree.build / pattern.prune spans stay untouched);
//   * the incremental path (manifest diff, re-ingest only changed files)
//     is byte-identical to a full UseCache=false rescan, with the
//     added/modified/deleted/unchanged counters exact;
//   * corrupt or mismatched inputs fail with typed ModelErrors, never a
//     crash.
//
//===----------------------------------------------------------------------===//

#include "namer/Explain.h"
#include "namer/FindingsExport.h"
#include "namer/ModelStore.h"
#include "namer/Pipeline.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace namer;

namespace {

corpus::Corpus makeCorpus(corpus::Language Lang) {
  corpus::CorpusConfig Config;
  Config.Lang = Lang;
  Config.NumRepos = 40;
  return corpus::generateCorpus(Config);
}

PipelineConfig makeConfig(unsigned Threads) {
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 20;
  PC.Threads = Threads;
  return PC;
}

std::unique_ptr<NamerPipeline> buildCold(const corpus::Corpus &C,
                                         unsigned Threads) {
  auto P = std::make_unique<NamerPipeline>(makeConfig(Threads));
  P->build(C);
  return P;
}

/// Trains the classifier on the first four violations (the same labels on
/// every pipeline, so decisions must agree bitwise).
void trainSmall(NamerPipeline &P) {
  ASSERT_GE(P.violations().size(), 4u);
  std::vector<Violation> Labeled(P.violations().begin(),
                                 P.violations().begin() + 4);
  std::vector<bool> Labels = {true, false, true, false};
  P.trainClassifier(Labeled, Labels);
}

std::string tempPath(const char *Name) {
  return (std::filesystem::temp_directory_path() / Name).string();
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Full cross-pipeline identity: statements (ids included), patterns,
/// pairs, violations, rendered reports, classifier decisions, and both
/// finding exporters' byte output.
void expectIdentical(NamerPipeline &A, NamerPipeline &B) {
  ASSERT_EQ(A.statements().size(), B.statements().size());
  for (size_t I = 0; I != A.statements().size(); ++I) {
    const StmtRecord &SA = A.statements()[I];
    const StmtRecord &SB = B.statements()[I];
    ASSERT_EQ(SA.File, SB.File) << "stmt " << I;
    ASSERT_EQ(SA.Repo, SB.Repo) << "stmt " << I;
    ASSERT_EQ(SA.Line, SB.Line) << "stmt " << I;
    ASSERT_EQ(SA.TextHash, SB.TextHash) << "stmt " << I;
    ASSERT_EQ(SA.Paths.Paths, SB.Paths.Paths) << "stmt " << I;
  }

  ASSERT_EQ(A.patterns().size(), B.patterns().size());
  for (size_t I = 0; I != A.patterns().size(); ++I) {
    ASSERT_TRUE(A.patterns()[I] == B.patterns()[I]) << "pattern " << I;
    ASSERT_EQ(A.patterns()[I].Support, B.patterns()[I].Support);
    ASSERT_EQ(formatPattern(A.patterns()[I], A.table(), A.context()),
              formatPattern(B.patterns()[I], B.table(), B.context()));
  }

  std::vector<ConfusingPair> PairsA = A.pairs().pairs();
  std::vector<ConfusingPair> PairsB = B.pairs().pairs();
  ASSERT_EQ(PairsA.size(), PairsB.size());
  for (size_t I = 0; I != PairsA.size(); ++I) {
    EXPECT_EQ(PairsA[I].Mistaken, PairsB[I].Mistaken);
    EXPECT_EQ(PairsA[I].Correct, PairsB[I].Correct);
    EXPECT_EQ(PairsA[I].Count, PairsB[I].Count);
  }

  ASSERT_EQ(A.violations().size(), B.violations().size());
  std::vector<Explanation> ExplA, ExplB;
  for (size_t I = 0; I != A.violations().size(); ++I) {
    const Violation &VA = A.violations()[I];
    const Violation &VB = B.violations()[I];
    ASSERT_EQ(VA.Stmt, VB.Stmt) << "violation " << I;
    ASSERT_EQ(VA.Pattern, VB.Pattern) << "violation " << I;
    EXPECT_EQ(A.features(VA), B.features(VB)) << "features " << I;
    if (A.classifierTrained() && B.classifierTrained())
      EXPECT_EQ(A.decision(VA), B.decision(VB)) << "decision " << I;
    if (I < 8) {
      ExplA.push_back(explainViolation(A, VA));
      ExplB.push_back(explainViolation(B, VB));
    }
  }

  // The user-facing artifacts must agree byte for byte.
  sortExplanations(ExplA);
  sortExplanations(ExplB);
  ExportMeta Meta;
  Meta.Tool = "model-test";
  EXPECT_EQ(sarifJson(ExplA, Meta), sarifJson(ExplB, Meta));
  EXPECT_EQ(findingsJson(ExplA, Meta), findingsJson(ExplB, Meta));
}

} // namespace

// --- round trip ---------------------------------------------------------------

TEST(ModelRoundTrip, SavedBytesIdenticalAcrossThreadCounts) {
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  std::unique_ptr<NamerPipeline> One = buildCold(C, 1);
  std::unique_ptr<NamerPipeline> Eight = buildCold(C, 8);
  std::string PathOne = tempPath("model-threads1.nmr");
  std::string PathEight = tempPath("model-threads8.nmr");
  One->saveModel(PathOne);
  Eight->saveModel(PathEight);
  EXPECT_EQ(slurp(PathOne), slurp(PathEight));
  std::filesystem::remove(PathOne);
  std::filesystem::remove(PathEight);
}

TEST(ModelRoundTrip, ParseSerializeIsIdentity) {
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  std::unique_ptr<NamerPipeline> P = buildCold(C, 4);
  trainSmall(*P);
  std::string Path = tempPath("model-identity.nmr");
  P->saveModel(Path);
  std::string Bytes = slurp(Path);
  std::filesystem::remove(Path);
  ASSERT_FALSE(Bytes.empty());
  model::ModelFile F = model::parse(Bytes);
  EXPECT_EQ(model::serialize(F), Bytes);
}

TEST(ModelRoundTrip, WarmScanMatchesColdBuildAtAnyThreadCount) {
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  std::unique_ptr<NamerPipeline> Cold = buildCold(C, 8);
  trainSmall(*Cold);
  std::string Path = tempPath("model-warm.nmr");
  Cold->saveModel(Path);

  for (unsigned Threads : {1u, 8u}) {
    NamerPipeline Warm(makeConfig(Threads));
    Warm.loadModel(Path);
    EXPECT_TRUE(Warm.modelLoaded());
    EXPECT_TRUE(Warm.classifierTrained()); // restored, not retrained

#if NAMER_TELEMETRY
    double MineBefore = telemetry::spanTotalUs("fptree.build");
    double PruneBefore = telemetry::spanTotalUs("pattern.prune");
#endif
    Warm.scanWith(C);
#if NAMER_TELEMETRY
    // The warm path must not mine: the mining spans accumulate nothing.
    EXPECT_EQ(telemetry::spanTotalUs("fptree.build"), MineBefore);
    EXPECT_EQ(telemetry::spanTotalUs("pattern.prune"), PruneBefore);
#endif

    expectIdentical(*Cold, Warm);
    EXPECT_EQ(Cold->numFiles(), Warm.numFiles());
    EXPECT_EQ(Cold->numParseErrors(), Warm.numParseErrors());
    EXPECT_EQ(Cold->numQuarantined(), Warm.numQuarantined());
  }
  std::filesystem::remove(Path);
}

TEST(ModelRoundTrip, InternerAndPathTableSnapshotsKeepIds) {
  corpus::Corpus C = makeCorpus(corpus::Language::Java);
  std::unique_ptr<NamerPipeline> Cold = buildCold(C, 2);
  std::string Path = tempPath("model-interner.nmr");
  Cold->saveModel(Path);

  NamerPipeline Warm(makeConfig(1));
  Warm.loadModel(Path);
  std::filesystem::remove(Path);

  // Symbol-for-symbol and path-for-path: the loaded pipeline's interner
  // and table reproduce the cold build's id assignment exactly.
  const StringInterner &SA = Cold->context().strings();
  const StringInterner &SB = Warm.context().strings();
  ASSERT_EQ(SA.size(), SB.size());
  for (Symbol S = 1; S < SA.size(); S += 7)
    EXPECT_EQ(SA.text(S), SB.text(S)) << "symbol " << S;
  ASSERT_EQ(Cold->table().size(), Warm.table().size());
  for (PathId Id = 0; Id < Cold->table().size(); Id += 13) {
    EXPECT_EQ(Cold->table().prefixOf(Id), Warm.table().prefixOf(Id));
    EXPECT_EQ(Cold->table().endOf(Id), Warm.table().endOf(Id));
  }
}

// --- incremental scan ---------------------------------------------------------

TEST(Incremental, AddModifyDeleteMatchesFullRescan) {
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  std::unique_ptr<NamerPipeline> Cold = buildCold(C, 4);
  std::string Path = tempPath("model-incremental.nmr");
  Cold->saveModel(Path);
  size_t NumFiles = Cold->numFiles() + Cold->numQuarantined();

  // One deleted, one modified, one added file.
  corpus::Corpus Changed = C;
  ASSERT_GE(Changed.Repos.size(), 2u);
  ASSERT_GE(Changed.Repos[0].Files.size(), 2u);
  Changed.Repos[0].Files.erase(Changed.Repos[0].Files.begin());
  corpus::SourceFile &Modified = Changed.Repos[1].Files.front();
  Modified.Text += "\ndef appended_helper(value):\n    return value\n";
  Modified.View = {};
  Modified.Mapped = false;
  corpus::SourceFile Added;
  Added.Path = Changed.Repos[1].Name + "/zz_added.py";
  Added.Text = "def added_function(count):\n    return count\n";
  Changed.Repos[1].Files.push_back(std::move(Added));

  telemetry::reset();
  NamerPipeline Inc(makeConfig(4));
  Inc.loadModel(Path);
  Inc.scanWith(Changed, /*UseCache=*/true);

  // Counter-exact: only the dirty set was re-ingested.
  std::map<std::string, uint64_t> Snap;
  for (const auto &[Name, Value] : telemetry::metrics().snapshot())
    Snap[Name] = Value;
  EXPECT_EQ(Snap["incremental.files.unchanged"], NumFiles - 2);
  EXPECT_EQ(Snap["incremental.files.added"], 1u);
  EXPECT_EQ(Snap["incremental.files.modified"], 1u);
  EXPECT_EQ(Snap["incremental.files.deleted"], 1u);

  NamerPipeline Full(makeConfig(1));
  Full.loadModel(Path);
  Full.scanWith(Changed, /*UseCache=*/false);
  std::filesystem::remove(Path);

  expectIdentical(Full, Inc);

  // The refreshed manifest describes the changed corpus, so a second
  // incremental hop sees everything unchanged.
  ASSERT_EQ(Inc.manifest().size(), NumFiles);
  std::vector<const corpus::SourceFile *> Current;
  for (const corpus::Repository &R : Changed.Repos)
    for (const corpus::SourceFile &F : R.Files)
      Current.push_back(&F);
  incremental::ScanPlan Replan =
      incremental::diffManifest(Inc.manifest(), Current);
  EXPECT_EQ(Replan.Unchanged, NumFiles);
  EXPECT_EQ(Replan.Added + Replan.Modified + Replan.Deleted, 0u);
}

// --- typed errors -------------------------------------------------------------

TEST(ModelErrors, MissingFileIsIo) {
  NamerPipeline P(makeConfig(1));
  try {
    P.loadModel(tempPath("model-does-not-exist.nmr"));
    FAIL() << "expected ModelError";
  } catch (const model::ModelError &E) {
    EXPECT_EQ(E.kind(), model::ModelErrorKind::Io);
  }
}

TEST(ModelErrors, ConfigMismatchRejected) {
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  std::unique_ptr<NamerPipeline> Cold = buildCold(C, 2);
  std::string Path = tempPath("model-mismatch.nmr");
  Cold->saveModel(Path);

  PipelineConfig Other = makeConfig(1);
  Other.Miner.MinPatternSupport += 5;
  NamerPipeline P(Other);
  try {
    P.loadModel(Path);
    FAIL() << "expected ConfigMismatch";
  } catch (const model::ModelError &E) {
    EXPECT_EQ(E.kind(), model::ModelErrorKind::ConfigMismatch);
  }

  // Language mismatch is caught at scanWith, where the corpus appears.
  NamerPipeline Q(makeConfig(1));
  Q.loadModel(Path);
  corpus::Corpus Java = makeCorpus(corpus::Language::Java);
  try {
    Q.scanWith(Java);
    FAIL() << "expected ConfigMismatch";
  } catch (const model::ModelError &E) {
    EXPECT_EQ(E.kind(), model::ModelErrorKind::ConfigMismatch);
  }
  std::filesystem::remove(Path);
}

TEST(ModelErrors, HeaderAndTableCorruptionFailsTyped) {
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  std::unique_ptr<NamerPipeline> Cold = buildCold(C, 2);
  std::string Path = tempPath("model-corrupt.nmr");
  Cold->saveModel(Path);
  std::string Bytes = slurp(Path);
  std::filesystem::remove(Path);
  ASSERT_GT(Bytes.size(), 512u);

  // Flip every byte of the header + section table (and a payload sample):
  // parse must reject typed, never crash or succeed on altered bytes. The
  // one benign region is the offset field of a zero-length section (the
  // untrained classifier here): moving an empty window changes nothing.
  auto ReadU64At = [&](size_t At) {
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Bytes[At + I]))
           << (8 * I);
    return V;
  };
  size_t TableEnd = 24 + 7 * 32;
  auto FlipIsBenign = [&](size_t I) {
    for (size_t Entry = 24; Entry < TableEnd; Entry += 32)
      if (ReadU64At(Entry + 16) == 0 && I >= Entry + 8 && I < Entry + 16)
        return true;
    return false;
  };
  for (size_t I = 0; I < Bytes.size(); I = I < TableEnd ? I + 1 : I + 97) {
    std::string Mutated = Bytes;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0x5A);
    try {
      (void)model::parse(Mutated);
      // A flip inside a checksum field can only "succeed" if it still
      // matches the payload -- impossible for a xor with 0x5A.
      EXPECT_TRUE(FlipIsBenign(I)) << "byte flip at " << I
                                   << " parsed successfully";
    } catch (const model::ModelError &) {
      // typed rejection: expected
    }
  }

  // Truncations at a spread of lengths: typed rejection every time.
  for (size_t Len : {0ul, 7ul, 23ul, 24ul, 100ul, TableEnd,
                     Bytes.size() / 2, Bytes.size() - 1}) {
    try {
      (void)model::parse(std::string_view(Bytes).substr(0, Len));
      FAIL() << "truncation to " << Len << " parsed successfully";
    } catch (const model::ModelError &) {
    }
  }
}

//===----------------------------------------------------------------------===//
// The typed ModelError taxonomy as operators see it: formatModelError
// must, for every one of the nine kinds, lead with the kebab-case
// taxonomy name and carry a non-empty remediation hint. namer-scan and
// namer-serve print exactly this string to stderr on any model reject.
//===----------------------------------------------------------------------===//

TEST(ModelStore, EveryErrorKindFormatsWithNameAndHint) {
  using model::ModelErrorKind;
  const ModelErrorKind Kinds[] = {
      ModelErrorKind::Io,           ModelErrorKind::BadMagic,
      ModelErrorKind::BadEndian,    ModelErrorKind::BadVersion,
      ModelErrorKind::Truncated,    ModelErrorKind::BadChecksum,
      ModelErrorKind::SectionMissing, ModelErrorKind::Malformed,
      ModelErrorKind::ConfigMismatch};
  static_assert(sizeof(Kinds) / sizeof(Kinds[0]) ==
                    model::kNumModelErrorKinds,
                "new ModelErrorKind: add it here and to the remediation "
                "table");
  std::set<std::string> Names, Hints;
  for (ModelErrorKind Kind : Kinds) {
    const char *Name = model::modelErrorKindName(Kind);
    const char *Hint = model::modelErrorRemediation(Kind);
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Hint, nullptr);
    EXPECT_GT(std::string(Hint).size(), 10u)
        << Name << ": a hint must actually help";
    // Kebab-case, no spaces, distinct per kind.
    EXPECT_EQ(std::string(Name).find(' '), std::string::npos);
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate name " << Name;
    EXPECT_TRUE(Hints.insert(Hint).second) << "duplicate hint for " << Name;

    model::ModelError E(Kind, "context detail");
    std::string Msg = model::formatModelError(E);
    EXPECT_NE(Msg.find("model error ["), std::string::npos) << Msg;
    EXPECT_NE(Msg.find(Name), std::string::npos)
        << "kind name missing: " << Msg;
    EXPECT_NE(Msg.find("context detail"), std::string::npos) << Msg;
    EXPECT_NE(Msg.find("hint: "), std::string::npos) << Msg;
    EXPECT_NE(Msg.find(Hint), std::string::npos)
        << "remediation missing: " << Msg;
  }
}

TEST(ModelStore, CorruptFileRejectsWithActionableStderrText) {
  // The end-to-end shape of a reject: corrupt one byte of a valid model,
  // load it, and check the formatted error names a *specific* kind (the
  // checksum catches content corruption) plus its hint.
  corpus::Corpus C = makeCorpus(corpus::Language::Python);
  auto P = buildCold(C, 1);
  std::string Path = tempPath("model_fmt_corrupt.namrmdl");
  P->saveModel(Path);
  std::string Bytes = slurp(Path);
  Bytes[Bytes.size() / 2] ^= 0x40;
  std::ofstream(Path, std::ios::binary | std::ios::trunc) << Bytes;
  try {
    NamerPipeline Fresh(makeConfig(1));
    Fresh.loadModel(Path);
    FAIL() << "corrupt model loaded";
  } catch (const model::ModelError &E) {
    std::string Msg = model::formatModelError(E);
    EXPECT_NE(Msg.find(model::modelErrorKindName(E.kind())),
              std::string::npos);
    EXPECT_NE(Msg.find(model::modelErrorRemediation(E.kind())),
              std::string::npos);
  }
  std::filesystem::remove(Path);
}
