# Smoke test: the scan service's byte-identity acceptance check, on the
# real binaries. Mine a model with namer-scan (which also prints the cold
# run's report lines), then serve the same tree through namer-serve
# --stdin-jsonl and require the served reports to be byte-identical to the
# cold scan, the control methods to answer typed, and an explicit
# deadline_ms of 0 to produce a typed deadline-exceeded. Invoked by ctest:
#   cmake -DNAMER_SCAN=<exe> -DNAMER_SERVE=<exe> -DCORPUS=<dir> -DOUT=<dir>
#         -P ServeSmoke.cmake

foreach(Var NAMER_SCAN NAMER_SERVE CORPUS OUT)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "ServeSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

# The cold run: reports on stdout, model persisted for the service.
execute_process(
  COMMAND "${NAMER_SCAN}" "--threads=1"
          "--model-out=${OUT}/model.namrmdl" "${CORPUS}"
  RESULT_VARIABLE Rc
  OUTPUT_VARIABLE Cold
  ERROR_VARIABLE Stderr)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "cold namer-scan failed (rc=${Rc})\n${Stderr}")
endif()
if(Cold STREQUAL "")
  message(FATAL_ERROR "cold namer-scan found no reports in ${CORPUS}; the "
      "identity check needs at least one")
endif()

# One JSONL session: ping, the scan, an already-elapsed deadline, and a
# malformed line. Responses come back in request order.
file(WRITE "${OUT}/requests.jsonl"
  "{\"id\":\"r1\",\"method\":\"ping\"}\n"
  "{\"id\":\"r2\",\"method\":\"scan\",\"dir\":\"${CORPUS}\"}\n"
  "{\"id\":\"r3\",\"method\":\"scan\",\"dir\":\"${CORPUS}\",\"deadline_ms\":0}\n"
  "this is not json\n")

execute_process(
  COMMAND "${NAMER_SERVE}" "--model=${OUT}/model.namrmdl" "--stdin-jsonl"
          "--workers=2"
  INPUT_FILE "${OUT}/requests.jsonl"
  OUTPUT_FILE "${OUT}/responses.jsonl"
  ERROR_VARIABLE ServeErr
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "namer-serve failed (rc=${Rc})\n${ServeErr}")
endif()

# Expected r2: the cold report lines verbatim, as the JSON "reports" array.
# Plain string surgery only -- report lines legitimately contain ';', which
# CMake lists would mangle.
string(REGEX REPLACE "\n$" "" ColdBody "${Cold}")
string(REPLACE "\n" "\",\"" Joined "${ColdBody}")
set(Expected "")
string(APPEND Expected
  "{\"id\":\"r1\",\"model_version\":1,\"status\":\"ok\"}\n"
  "{\"id\":\"r2\",\"reports\":[\"${Joined}\"],\"status\":\"ok\"}\n"
  "{\"id\":\"r3\",\"status\":\"deadline-exceeded\"}\n")

file(READ "${OUT}/responses.jsonl" Got)
string(FIND "${Got}" "${Expected}" At)
if(NOT At EQUAL 0)
  message(FATAL_ERROR "served responses are not byte-identical to the cold "
      "scan\n--- expected prefix ---\n${Expected}\n--- got ---\n${Got}")
endif()
# The malformed line must have produced a typed invalid-request response
# (its detail wording is free-form, so substring-check the status only).
string(FIND "${Got}" "\"status\":\"invalid-request\"" At)
if(At EQUAL -1)
  message(FATAL_ERROR "malformed line did not yield a typed "
      "invalid-request response:\n${Got}")
endif()

message(STATUS "serve smoke OK: served reports byte-identical to cold scan")
