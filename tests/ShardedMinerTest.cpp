//===- tests/ShardedMinerTest.cpp - sharded FP-tree mining determinism ----==//
//
// The miner's tentpole contract: Miner::build partitions statements across
// MineShards FP-trees by a deterministic hash, grows the shard trees in
// parallel, and merges them canonically -- and the generated patterns (ids,
// counts, renderings, downstream reports) are bitwise identical to the
// sequential single-tree build at EVERY shard count and EVERY thread
// count. This suite pins that matrix: shards {1, 4, 16} x threads {1, 8},
// on the generated corpus and on a corpus salted with adversarial files
// (quarantine churn must not perturb the partition).
//
//===----------------------------------------------------------------------===//

#include "namer/Pipeline.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace namer;

namespace {

corpus::Corpus makeCorpus(corpus::Language Lang, bool Adversarial) {
  corpus::CorpusConfig Config;
  Config.Lang = Lang;
  Config.NumRepos = 40;
  corpus::Corpus C = corpus::generateCorpus(Config);
  if (Adversarial) {
    // Quarantine fodder: one depth-bomb per flavor. These files must be
    // skipped identically at every shard/thread count, so the statement
    // stream the miner partitions stays byte-for-byte the same.
    corpus::Repository Bad;
    Bad.Name = "adversarial";
    std::string Deep =
        "x = " + std::string(300, '(') + "1" + std::string(300, ')') + "\n";
    Bad.Files.push_back(corpus::SourceFile{"adversarial/deep.py", Deep, {}});
    Bad.Files.push_back(corpus::SourceFile{
        "adversarial/unterminated.py", "s = \"never closed\n", {}});
    Bad.Files.push_back(
        corpus::SourceFile{"adversarial/empty.py", "", {}});
    C.Repos.push_back(std::move(Bad));
  }
  return C;
}

std::unique_ptr<NamerPipeline> buildPipeline(const corpus::Corpus &C,
                                             size_t Shards,
                                             unsigned Threads) {
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 20;
  PC.Miner.MineShards = Shards;
  PC.Threads = Threads;
  auto P = std::make_unique<NamerPipeline>(PC);
  P->build(C);
  return P;
}

/// Bitwise identity of everything mining feeds downstream: pattern ids and
/// statistics, renderings, violations, and reports.
void expectIdentical(NamerPipeline &A, NamerPipeline &B) {
  ASSERT_EQ(A.patterns().size(), B.patterns().size());
  for (size_t I = 0; I != A.patterns().size(); ++I) {
    const NamePattern &PA = A.patterns()[I];
    const NamePattern &PB = B.patterns()[I];
    ASSERT_TRUE(PA == PB) << "pattern " << I;
    ASSERT_EQ(PA.Support, PB.Support) << "pattern " << I;
    ASSERT_EQ(PA.DatasetMatches, PB.DatasetMatches) << "pattern " << I;
    ASSERT_EQ(PA.DatasetSatisfactions, PB.DatasetSatisfactions)
        << "pattern " << I;
    ASSERT_EQ(PA.DatasetViolations, PB.DatasetViolations) << "pattern " << I;
    ASSERT_EQ(formatPattern(PA, A.table(), A.context()),
              formatPattern(PB, B.table(), B.context()))
        << "pattern rendering " << I;
  }
  ASSERT_EQ(A.violations().size(), B.violations().size());
  for (size_t I = 0; I != A.violations().size(); ++I) {
    const Violation &VA = A.violations()[I];
    const Violation &VB = B.violations()[I];
    ASSERT_EQ(VA.Stmt, VB.Stmt) << "violation " << I;
    ASSERT_EQ(VA.Pattern, VB.Pattern) << "violation " << I;
    Report RA = A.makeReport(VA);
    Report RB = B.makeReport(VB);
    EXPECT_EQ(RA.File, RB.File);
    EXPECT_EQ(RA.Line, RB.Line);
    EXPECT_EQ(RA.Original, RB.Original);
    EXPECT_EQ(RA.Suggested, RB.Suggested);
    EXPECT_EQ(RA.Kind, RB.Kind);
  }
}

class ShardedMinerTest
    : public testing::TestWithParam<std::tuple<size_t, unsigned>> {};

} // namespace

TEST_P(ShardedMinerTest, PatternsIdenticalToSequentialSingleTree) {
  auto [Shards, Threads] = GetParam();
  corpus::Corpus C = makeCorpus(corpus::Language::Python, false);
  // Reference: one shard, one thread -- the plain sequential build.
  std::unique_ptr<NamerPipeline> Ref = buildPipeline(C, 1, 1);
  std::unique_ptr<NamerPipeline> Sharded = buildPipeline(C, Shards, Threads);
  ASSERT_FALSE(Ref->patterns().empty());
  expectIdentical(*Ref, *Sharded);
}

TEST_P(ShardedMinerTest, AdversarialCorpusStaysIdenticalToo) {
  auto [Shards, Threads] = GetParam();
  corpus::Corpus C = makeCorpus(corpus::Language::Python, true);
  std::unique_ptr<NamerPipeline> Ref = buildPipeline(C, 1, 1);
  std::unique_ptr<NamerPipeline> Sharded = buildPipeline(C, Shards, Threads);
  // The depth bomb quarantines identically in both builds.
  ASSERT_GE(Ref->numQuarantined(), 1u);
  ASSERT_EQ(Ref->numQuarantined(), Sharded->numQuarantined());
  ASSERT_FALSE(Ref->patterns().empty());
  expectIdentical(*Ref, *Sharded);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByThreads, ShardedMinerTest,
    testing::Combine(testing::Values<size_t>(1, 4, 16),
                     testing::Values<unsigned>(1, 8)),
    [](const testing::TestParamInfo<std::tuple<size_t, unsigned>> &Info) {
      return "Shards" + std::to_string(std::get<0>(Info.param)) + "Threads" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(ShardedMinerJava, SixteenShardsEightThreadsMatchSequential) {
  corpus::Corpus C = makeCorpus(corpus::Language::Java, false);
  std::unique_ptr<NamerPipeline> Ref = buildPipeline(C, 1, 1);
  std::unique_ptr<NamerPipeline> Sharded = buildPipeline(C, 16, 8);
  ASSERT_FALSE(Ref->patterns().empty());
  expectIdentical(*Ref, *Sharded);
}
