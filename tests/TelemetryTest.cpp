//===- tests/TelemetryTest.cpp - observability layer tests ----------------==//
//
// Covers the telemetry layer end to end: span nesting and thread
// attribution, counter atomicity under pool stress, the disabled mode's
// zero-allocation guarantee, byte-exact golden files for both exporters
// (driven by the fake clock from setTimeSourceForTest), and structural
// validation of the Chrome trace + per-stage stats coverage on a real
// pipeline run. Built as its own binary (namer_telemetry_tests) so ctest
// can select the suite with -L telemetry.
//
// When NAMER_TELEMETRY is compiled out (the release-notrace preset) only
// the stub-API smoke tests compile; they pin that the no-op header is
// usable and that the exporters still emit valid JSON.
//
//===----------------------------------------------------------------------===//

#include "namer/Explain.h"
#include "namer/FindingsExport.h"
#include "namer/Pipeline.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include "TestSupport.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace namer;
using namer::test::JsonChecker;

TEST(TelemetryJson, DisabledOrEnabledExportersEmitValidJson) {
  // Shared by both build modes: whatever the compile-time configuration,
  // the exporters must produce syntactically valid JSON.
  telemetry::RunMeta Meta;
  Meta.Tool = "smoke";
  Meta.GitRev = "abc";
  Meta.Extra.emplace_back("extra", "[1, 2, 3]");
  EXPECT_TRUE(JsonChecker(telemetry::statsJson(Meta)).valid());
  EXPECT_TRUE(JsonChecker(telemetry::chromeTraceJson()).valid());
}

#if NAMER_TELEMETRY

namespace {

/// Fake clock for the golden tests: every query advances time by exactly
/// 1ms, so span starts/durations are fully deterministic.
uint64_t FakeClockNs = 0;
uint64_t fakeNow() { return FakeClockNs += 1'000'000; }

struct FakeClockScope {
  FakeClockScope() {
    FakeClockNs = 0;
    telemetry::setTimeSourceForTest(&fakeNow);
  }
  ~FakeClockScope() { telemetry::setTimeSourceForTest(nullptr); }
};

std::map<std::string, int64_t> snapshotMap() {
  std::map<std::string, int64_t> Out;
  for (auto &[Name, Value] : telemetry::metrics().snapshot())
    Out[Name] = Value;
  return Out;
}

} // namespace

TEST(TelemetryGolden, StatsJsonBytes) {
  FakeClockScope Clock;
  telemetry::reset();
  telemetry::setEnabled(true);

  telemetry::metrics().counter("golden.files").add(3);
  telemetry::metrics().gauge("golden.gauge").set(-7);
  telemetry::metrics().histogram("golden.hist").record(4);
  telemetry::metrics().histogram("golden.hist").record(9);
  {
    telemetry::TraceSpan Outer("golden.outer");
    telemetry::TraceSpan Inner("golden.inner");
  }

  telemetry::RunMeta Meta;
  Meta.Tool = "test";
  Meta.GitRev = "deadbeef";
  Meta.Threads = 2;
  Meta.HardwareConcurrency = 8;
  Meta.Extra.emplace_back("extra_flag", "true");

  const std::string Expected = R"({
  "meta": {
    "git_rev": "deadbeef",
    "hardware_concurrency": 8,
    "schema_version": 1,
    "telemetry_compiled": true,
    "threads": 2,
    "tool": "test"
  },
  "counters": {
    "golden.files": 3,
    "golden.gauge": -7,
    "golden.hist.count": 2,
    "golden.hist.max": 9,
    "golden.hist.min": 4,
    "golden.hist.p50": 4,
    "golden.hist.p90": 8,
    "golden.hist.p99": 8,
    "golden.hist.p999": 8,
    "golden.hist.sum": 13
  },
  "spans": {
    "golden.inner": {"count": 1, "max_us": 1000.000, "min_us": 1000.000, "self_us": 1000.000, "total_us": 1000.000},
    "golden.outer": {"count": 1, "max_us": 3000.000, "min_us": 3000.000, "self_us": 2000.000, "total_us": 3000.000}
  },
  "extra_flag": true
}
)";
  std::string Actual = telemetry::statsJson(Meta);
  EXPECT_EQ(Actual, Expected);
  EXPECT_TRUE(JsonChecker(Actual).valid());
  telemetry::reset();
}

TEST(TelemetryGolden, ChromeTraceJsonBytes) {
  FakeClockScope Clock;
  telemetry::reset();
  telemetry::setEnabled(true);

  {
    telemetry::TraceSpan A("golden.a");
    telemetry::TraceSpan B("golden.b");
  }
  { telemetry::TraceSpan C("golden.c"); }

  const std::string Expected = R"({"traceEvents":[
  {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker-0"}},
  {"name":"golden.a","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":3000.000,"args":{"depth":0}},
  {"name":"golden.b","ph":"X","pid":1,"tid":0,"ts":1000.000,"dur":1000.000,"args":{"depth":1}},
  {"name":"golden.c","ph":"X","pid":1,"tid":0,"ts":4000.000,"dur":1000.000,"args":{"depth":0}}
],"displayTimeUnit":"ms"}
)";
  std::string Actual = telemetry::chromeTraceJson();
  EXPECT_EQ(Actual, Expected);
  EXPECT_TRUE(JsonChecker(Actual).valid());
  telemetry::reset();
}

TEST(TelemetrySpans, NestingDepthAndThreadAttribution) {
  telemetry::reset();
  telemetry::setEnabled(true);

  {
    telemetry::TraceSpan Outer("nest.outer");
    telemetry::TraceSpan Inner("nest.inner");
  }
  // The main thread recorded first in this process, so it owns id 0; a
  // fresh thread must get a distinct id and its span a distinct tid.
  EXPECT_EQ(telemetry::currentThreadId(), 0u);
  uint32_t WorkerTid = 0;
  std::thread T([&WorkerTid] {
    telemetry::TraceSpan S("nest.worker");
    WorkerTid = telemetry::currentThreadId();
  });
  T.join();
  EXPECT_NE(WorkerTid, 0u);

  std::string Trace = telemetry::chromeTraceJson();
  // The inner span carries depth 1, the outer depth 0.
  size_t InnerAt = Trace.find("\"name\":\"nest.inner\"");
  size_t OuterAt = Trace.find("\"name\":\"nest.outer\"");
  ASSERT_NE(InnerAt, std::string::npos);
  ASSERT_NE(OuterAt, std::string::npos);
  EXPECT_NE(Trace.find("\"args\":{\"depth\":1}", InnerAt),
            std::string::npos);
  EXPECT_NE(Trace.find("\"tid\":" + std::to_string(WorkerTid)),
            std::string::npos);
  telemetry::reset();
}

TEST(TelemetryMetrics, CountersAreExactUnderThreadPoolStress) {
  telemetry::reset();
  telemetry::setEnabled(true);

  constexpr size_t N = 100000;
  telemetry::Counter &Cached = telemetry::metrics().counter("stress.cached");
  ThreadPool Pool(8);
  Pool.parallelFor(0, N, [&](size_t I) {
    Cached.add(1);
    telemetry::count("stress.helper");
    telemetry::metrics().histogram("stress.hist").record(I % 128);
  });

  uint64_t ExpectedSum = 0;
  for (size_t I = 0; I != N; ++I)
    ExpectedSum += I % 128;

  EXPECT_EQ(Cached.value(), N);
  EXPECT_EQ(telemetry::metrics().counter("stress.helper").value(), N);
  telemetry::Histogram &H = telemetry::metrics().histogram("stress.hist");
  EXPECT_EQ(H.count(), N);
  EXPECT_EQ(H.sum(), ExpectedSum);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 127u);
  telemetry::reset();
}

TEST(TelemetryDisabled, RecordsNothingAndAllocatesNothing) {
  // Warm up: thread buffer + counter registration happen before the
  // measured window, then the runtime switch must make every operation
  // allocation-free and value-free.
  { telemetry::TraceSpan Warm("disabled.warm"); }
  telemetry::metrics().counter("disabled.counter");
  telemetry::reset();

  telemetry::setEnabled(false);
  uint64_t Before = telemetry::debugAllocations();
  for (int I = 0; I != 1000; ++I) {
    telemetry::TraceSpan S("disabled.span");
    telemetry::count("disabled.counter");
    telemetry::count("disabled.fresh"); // must not even register
    telemetry::gaugeSet("disabled.gauge", 42);
    telemetry::histogramRecord("disabled.hist", 5);
  }
  EXPECT_EQ(telemetry::debugAllocations(), Before);
  telemetry::setEnabled(true);

  EXPECT_EQ(telemetry::metrics().counter("disabled.counter").value(), 0u);
  std::map<std::string, int64_t> Snap = snapshotMap();
  EXPECT_EQ(Snap.count("disabled.fresh"), 0u);
  EXPECT_EQ(Snap.count("disabled.gauge"), 0u);
  EXPECT_EQ(Snap.count("disabled.hist.count"), 0u);
  EXPECT_EQ(telemetry::chromeTraceJson().find("disabled.span"),
            std::string::npos);
  telemetry::reset();
}

TEST(TelemetryPipeline, StatsCoverEveryStageOnRealRun) {
  telemetry::reset();
  telemetry::setEnabled(true);

  corpus::CorpusConfig Config;
  Config.Lang = corpus::Language::Python;
  Config.NumRepos = 40;
  corpus::Corpus C = corpus::generateCorpus(Config);
  // One over-budget file so the ingestion-error counters are exercised by
  // a real quarantine, not just registered at zero.
  {
    corpus::Repository Bad;
    Bad.Name = "adversarial";
    Bad.Files.push_back(corpus::SourceFile{
        "adversarial/deep.py",
        "x = " + std::string(300, '(') + "1" + std::string(300, ')') + "\n",
        {}});
    C.Repos.push_back(std::move(Bad));
  }
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 20;
  PC.Threads = 2;
  NamerPipeline P(PC);
  P.build(C);
  ASSERT_EQ(P.numQuarantined(), 1u);

  ASSERT_GE(P.violations().size(), 4u);
  std::vector<Violation> Labeled(P.violations().begin(),
                                 P.violations().begin() + 4);
  std::vector<bool> Labels = {true, false, true, false};
  P.trainClassifier(Labeled, Labels);
  (void)P.classify(P.violations()[0]);

  // The explain/export stage: build an explanation and run both finding
  // exporters so their spans and report.* counters land in the snapshot.
  std::vector<Explanation> Findings = {explainViolation(P, Labeled[0])};
  sortExplanations(Findings);
  ExportMeta Meta;
  (void)sarifJson(Findings, Meta);
  (void)findingsJson(Findings, Meta);

  // The model store stage: one save + load so model.{save,load,verify,
  // apply} spans and the model.* counters carry real values.
  std::string ModelPath =
      (std::filesystem::temp_directory_path() / "namer-telemetry-model.nmr")
          .string();
  P.saveModel(ModelPath);
  {
    NamerPipeline Warm(PC);
    Warm.loadModel(ModelPath);
  }
  std::filesystem::remove(ModelPath);

  // All seven pipeline stages plus the pool must have left counters
  // behind.
  std::map<std::string, int64_t> Snap = snapshotMap();
  for (const char *Name :
       {"parse.files", "datalog.tuples", "transform.nodes_added",
        "namepath.paths", "fptree.nodes", "pipeline.violations",
        "report.explanations", "report.sarif_bytes",
        "report.findings_bytes", "fptree.shard.trees",
        "fptree.shard.statements", "fptree.shard.merged_nodes",
        "interner.batch.batches", "interner.batch.strings",
        "interner.batch.cache_hits", "interner.batch.shard_locks"}) {
    ASSERT_TRUE(Snap.count(Name)) << Name;
    EXPECT_GT(Snap[Name], 0) << Name;
  }
  for (const char *Name :
       {"prune.dropped", "prune.kept", "classifier.predictions",
        "pool.tasks", "pool.steals", "pool.idle_us",
        "pool.idle_wait_us.count", "report.witnesses",
        "report.sarif_results", "report.findings_results",
        "arena.slabs", "arena.bytes", "arena.files_mapped",
        "arena.mmap_fallbacks", "pool.idle_us.pipeline.ingest",
        "pool.idle_us.pipeline.scan", "pool.idle_us.fptree.build",
        "incremental.files.unchanged", "incremental.files.added",
        "incremental.files.modified", "incremental.files.deleted",
        "watchdog.stalls", "watchdog.live_stalls", "ledger.records",
        "snapshot.flushes"})
    EXPECT_TRUE(Snap.count(Name)) << Name;
  // The observability counters register at zero (PR 4 convention) even
  // when no ledger/snapshotter/watchdog is attached; the per-file ingest
  // latency histogram and the phase-boundary memory gauges carry real
  // values from the build above.
  EXPECT_EQ(Snap["watchdog.stalls"], 0);
  EXPECT_EQ(Snap["ledger.records"], 0);
  EXPECT_EQ(Snap["snapshot.flushes"], 0);
  EXPECT_GT(Snap["ingest.file_us.count"], 0);
  for (const char *Name :
       {"mem.current_rss_kb", "mem.peak_rss_kb", "mem.arena_bytes",
        "mem.model_mmap_bytes", "mem.interner_bytes"})
    ASSERT_TRUE(Snap.count(Name)) << Name;
  EXPECT_GT(Snap["mem.interner_bytes"], 0);
  // The save/load pair above left real model metrics behind; the
  // incremental counters are registered at zero by the cold build (only
  // scanWith adds to them).
  for (const char *Name : {"model.bytes", "model.sections", "model.load_us"})
    ASSERT_TRUE(Snap.count(Name)) << Name;
  EXPECT_GT(Snap["model.bytes"], 0);
  EXPECT_EQ(Snap["model.sections"], 14); // 7 sections saved + 7 loaded
  EXPECT_EQ(Snap["incremental.files.unchanged"], 0);
  EXPECT_EQ(Snap["incremental.files.modified"], 0);
  EXPECT_GE(Snap["classifier.predictions"], 1);
  EXPECT_EQ(Snap["report.explanations"], 1);
  EXPECT_EQ(Snap["report.sarif_results"], 1);

  // Ingestion fault-tolerance counters: every taxonomy kind is registered
  // (present even at zero), the per-file parse-error total is exported,
  // and the seeded deep-nesting file shows up as a depth-budget
  // quarantine.
  for (const char *Name :
       {"ingest.parse-errors", "ingest.quarantined",
        "ingest.error.file-too-large", "ingest.error.token-budget",
        "ingest.error.node-budget", "ingest.error.depth-budget",
        "ingest.error.deadline", "ingest.error.worker-exception",
        "histmine.errors"})
    ASSERT_TRUE(Snap.count(Name)) << Name;
  EXPECT_EQ(Snap["ingest.quarantined"], 1);
  EXPECT_EQ(Snap["ingest.error.depth-budget"], 1);
  EXPECT_EQ(Snap["ingest.error.file-too-large"], 0);

  // Every stage's span shows up in the stats document, and both exporters
  // stay structurally valid on a real multi-threaded run.
  std::string Stats =
      telemetry::statsJson(telemetry::defaultMeta("telemetry-test", 2));
  for (const char *Span :
       {"parse.python", "analysis.origins", "analysis.datalog",
        "transform.astplus", "namepath.extract", "fptree.build",
        "fptree.generate", "pattern.prune", "classifier.train",
        "pipeline.build", "pipeline.ingest", "pipeline.commit",
        "pipeline.scan", "ingest.file", "report.explain",
        "report.export", "fptree.shard.build", "fptree.shard.merge",
        "model.save", "model.load", "model.verify", "model.apply"})
    EXPECT_NE(Stats.find("\"" + std::string(Span) + "\""),
              std::string::npos)
        << Span;
  EXPECT_TRUE(JsonChecker(Stats).valid());

  std::string Trace = telemetry::chromeTraceJson();
  EXPECT_TRUE(JsonChecker(Trace).valid());
  EXPECT_EQ(Trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  telemetry::reset();
}

#else // !NAMER_TELEMETRY

TEST(TelemetryStub, ApiIsUsableWhenCompiledOut) {
  // The no-op header must keep every call site compiling and cheap.
  telemetry::TraceSpan S("stub.span");
  telemetry::count("stub.counter");
  telemetry::gaugeSet("stub.gauge", 1);
  telemetry::histogramRecord("stub.hist", 2);
  EXPECT_FALSE(telemetry::enabled());
  EXPECT_EQ(telemetry::metrics().counter("stub.counter").value(), 0u);
  EXPECT_EQ(telemetry::metrics().snapshot().size(), 0u);
  EXPECT_EQ(telemetry::debugAllocations(), 0u);

  telemetry::RunMeta Meta;
  Meta.Tool = "stub";
  std::string Stats = telemetry::statsJson(Meta);
  EXPECT_NE(Stats.find("\"telemetry_compiled\": false"), std::string::npos);
  EXPECT_TRUE(JsonChecker(Stats).valid());
}

TEST(TelemetryStub, ObservabilityApisAreUsableWhenCompiledOut) {
  // The PR 8 additions must be equally no-op: quantiles read as zero,
  // the typed snapshot is empty, the watchdog/deadline hooks do nothing,
  // and the exposition degrades to its comment header.
  EXPECT_EQ(telemetry::metrics().histogram("stub.hist").quantile(0.99), 0u);
  EXPECT_TRUE(telemetry::metrics().typedSnapshot().Histograms.empty());
  telemetry::setSpanDeadlineNs(1);
  telemetry::setStallHook(nullptr);
  {
    telemetry::SpanWatchdog Watchdog(0);
    Watchdog.scanOnce();
    EXPECT_EQ(Watchdog.liveStalls(), 0u);
  }
  std::string Prom = telemetry::prometheusText();
  EXPECT_EQ(Prom.rfind("# namer prometheus text exposition", 0), 0u);
  EXPECT_NE(Prom.find("# telemetry compiled out"), std::string::npos);
}

#endif // NAMER_TELEMETRY
