//===- tests/InternerStressTest.cpp - sharded interner stress -------------==//
//
// Satellite of the parallel-pipeline PR: 8 threads intern overlapping
// string sets concurrently; every thread must resolve the same Symbol for
// the same string, and text()/lookup() must round-trip.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace namer;

namespace {

std::vector<std::string> stringsForThread(unsigned T) {
  // Half the strings are shared by all threads, half overlap pairwise:
  // maximal contention on the shard locks without making every insert a
  // duplicate.
  std::vector<std::string> Out;
  for (unsigned I = 0; I != 2000; ++I)
    Out.push_back("shared_" + std::to_string(I));
  for (unsigned I = 0; I != 2000; ++I)
    Out.push_back("pair_" + std::to_string(T / 2) + "_" + std::to_string(I));
  for (unsigned I = 0; I != 1000; ++I)
    Out.push_back("own_" + std::to_string(T) + "_" + std::to_string(I));
  return Out;
}

} // namespace

TEST(InternerStress, EightThreadsAgreeOnSymbols) {
  constexpr unsigned NumThreads = 8;
  StringInterner Interner;

  std::vector<std::unordered_map<std::string, Symbol>> PerThread(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      // Interleave two passes so re-interning already-present strings races
      // with first-time inserts on other threads.
      for (int Pass = 0; Pass != 2; ++Pass)
        for (const std::string &S : stringsForThread(T)) {
          Symbol Sym = Interner.intern(S);
          ASSERT_EQ(Interner.text(Sym), S) << "round-trip within thread";
          auto It = PerThread[T].find(S);
          if (It == PerThread[T].end())
            PerThread[T].emplace(S, Sym);
          else
            ASSERT_EQ(It->second, Sym) << "symbol changed between passes";
        }
    });
  for (std::thread &T : Threads)
    T.join();

  // Cross-thread agreement: any two threads that interned the same string
  // got the same symbol, and lookup() agrees after the fact.
  for (unsigned A = 0; A != NumThreads; ++A)
    for (const auto &[S, Sym] : PerThread[A]) {
      EXPECT_EQ(Interner.lookup(S), Sym);
      EXPECT_TRUE(Interner.contains(S));
      EXPECT_EQ(Interner.text(Sym), S);
      for (unsigned B = A + 1; B != NumThreads; ++B) {
        auto It = PerThread[B].find(S);
        if (It != PerThread[B].end())
          ASSERT_EQ(It->second, Sym)
              << "threads " << A << " and " << B << " disagree on " << S;
      }
    }

  // Density: symbols cover 0..size()-1 with no gaps; every one resolves.
  // 2000 shared + 4 * 2000 pairwise + 8 * 1000 own + epsilon.
  EXPECT_EQ(Interner.size(), 2000u + 4 * 2000u + 8 * 1000u + 1u);
  for (Symbol S = 0; S != Interner.size(); ++S)
    EXPECT_FALSE(Interner.text(S).empty());
  EXPECT_EQ(Interner.text(EpsilonSymbol), "<eps>");
}

TEST(InternerStress, ViewsStayStableAcrossGrowth) {
  StringInterner Interner;
  Symbol First = Interner.intern("stable_anchor");
  std::string_view View = Interner.text(First);
  // Push the interner through several directory segments.
  for (unsigned I = 0; I != 20000; ++I)
    Interner.intern("filler_" + std::to_string(I));
  EXPECT_EQ(View, "stable_anchor");
  EXPECT_EQ(Interner.text(First), "stable_anchor");
  EXPECT_EQ(Interner.lookup("stable_anchor"), First);
}
