//===- tests/PatternTest.cpp - name pattern / FP-tree / miner tests -------==//

#include "pattern/Miner.h"
#include "pattern/PatternIndex.h"

#include "ast/Statements.h"
#include "frontend/python/PythonParser.h"
#include "transform/AstPlus.h"

#include <gtest/gtest.h>

using namespace namer;

namespace {

/// Test harness: parses Python statements, applies the AST+ transform with
/// optional origins, and exposes interned statement paths.
struct PipelineFixture {
  AstContext Ctx;
  NamePathTable Table;

  /// Parses \p Source and returns the StmtPaths of every statement.
  std::vector<StmtPaths> statements(std::string_view Source,
                                    bool SelfIsTestCase = false) {
    auto R = python::parsePython(Source, Ctx);
    EXPECT_TRUE(R.Errors.empty())
        << (R.Errors.empty() ? "" : R.Errors[0]);
    OriginMap Origins;
    if (SelfIsTestCase) {
      Symbol TestCase = Ctx.intern("TestCase");
      for (NodeId N = 0; N != R.Module.size(); ++N) {
        if (R.Module.node(N).Kind != NodeKind::Ident)
          continue;
        std::string_view Text = R.Module.valueText(N);
        if (Text == "self" || Text.substr(0, 6) == "assert")
          Origins[N] = TestCase;
      }
    }
    transformToAstPlus(R.Module, Origins);
    std::vector<StmtPaths> Out;
    for (NodeId Root : collectStatementRoots(R.Module)) {
      NodeKind Kind = R.Module.node(Root).Kind;
      if (Kind == NodeKind::ClassDef || Kind == NodeKind::FunctionDef)
        continue;
      Tree Stmt = projectStatement(R.Module, Root);
      Out.push_back(StmtPaths::fromTree(Stmt, Table));
    }
    return Out;
  }

  StmtPaths statement(std::string_view Source, bool SelfIsTestCase = false) {
    auto All = statements(Source, SelfIsTestCase);
    EXPECT_EQ(All.size(), 1u);
    return All.front();
  }
};

} // namespace

// --- FPTree ------------------------------------------------------------------

TEST(FPTree, CountsAndSharing) {
  FPTree Tree;
  // Mirrors Figure 3(a): NP1->NP2 x33, NP1->NP3->NP5 x15, NP1->NP3->NP4
  // (isLast) with NP6 below x13 + 1 extra NP4-terminated insert.
  std::vector<PathId> NP1NP2 = {1, 2};
  std::vector<PathId> NP1NP3NP5 = {1, 3, 5};
  std::vector<PathId> NP1NP3NP4 = {1, 3, 4};
  std::vector<PathId> NP1NP3NP4NP6 = {1, 3, 4, 6};
  for (int I = 0; I < 33; ++I)
    Tree.update(NP1NP2);
  for (int I = 0; I < 15; ++I)
    Tree.update(NP1NP3NP5);
  Tree.update(NP1NP3NP4);
  for (int I = 0; I < 13; ++I)
    Tree.update(NP1NP3NP4NP6);

  // Root -> NP1 node has count 33 + 15 + 1 + 13 = 62.
  const auto &Root = Tree.node(FPTree::RootId);
  ASSERT_EQ(Root.Children.size(), 1u);
  const auto &N1 = Tree.node(Root.Children.at(1));
  EXPECT_EQ(N1.Count, 62u);
  EXPECT_FALSE(N1.IsLast);
  const auto &N3 = Tree.node(N1.Children.at(3));
  EXPECT_EQ(N3.Count, 29u);
  const auto &N4 = Tree.node(N3.Children.at(4));
  EXPECT_EQ(N4.Count, 14u);
  EXPECT_TRUE(N4.IsLast);
  const auto &N6 = Tree.node(N4.Children.at(6));
  EXPECT_EQ(N6.Count, 13u);
  EXPECT_TRUE(N6.IsLast);
  EXPECT_EQ(Tree.numGenerationPoints(), 4u);
}

TEST(FPTree, EmptyUpdateIsNoop) {
  FPTree Tree;
  Tree.update({});
  EXPECT_EQ(Tree.size(), 1u);
  EXPECT_EQ(Tree.numGenerationPoints(), 0u);
}

// --- Pattern evaluation (Figure 2(e)) ----------------------------------------

namespace {

/// Builds the Figure 2(e) confusing word pattern from the assertEqual
/// statement: condition = {self path, assert path, NUM path}, deduction =
/// {Equal path}.
NamePattern buildFigure2Pattern(PipelineFixture &F) {
  StmtPaths Good = F.statement("self.assertEqual(v.count, 90)\n",
                               /*SelfIsTestCase=*/true);
  // Paths: self, assert, Equal, v, count, NUM.
  EXPECT_EQ(Good.Paths.size(), 6u);
  NamePattern P;
  P.Kind = PatternKind::ConfusingWord;
  P.Condition = {Good.Paths[0], Good.Paths[1], Good.Paths.back()};
  P.Deduction = {Good.Paths[2]}; // ... NumST(2) 1 TestCase 0 Equal
  return P;
}

} // namespace

TEST(NamePattern, Figure2ViolationAndFix) {
  PipelineFixture F;
  NamePattern P = buildFigure2Pattern(F);

  StmtPaths Bad = F.statement("self.assertTrue(pic.angle, 90)\n",
                              /*SelfIsTestCase=*/true);
  EXPECT_EQ(evaluatePattern(P, Bad, F.Table), MatchResult::Violated);

  SuggestedFix Fix = deriveFix(P, Bad, F.Table);
  EXPECT_EQ(F.Ctx.text(Fix.Original), "True");
  EXPECT_EQ(F.Ctx.text(Fix.Suggested), "Equal");
}

TEST(NamePattern, Figure2Satisfaction) {
  PipelineFixture F;
  NamePattern P = buildFigure2Pattern(F);
  StmtPaths Good = F.statement("self.assertEqual(other.value, 17)\n",
                               /*SelfIsTestCase=*/true);
  EXPECT_EQ(evaluatePattern(P, Good, F.Table), MatchResult::Satisfied);
}

TEST(NamePattern, Figure2NoMatchWithoutNumericArg) {
  PipelineFixture F;
  NamePattern P = buildFigure2Pattern(F);
  // String second argument: the NUM condition path is absent.
  StmtPaths Other = F.statement("self.assertTrue(pic.angle, 'msg')\n",
                                /*SelfIsTestCase=*/true);
  EXPECT_EQ(evaluatePattern(P, Other, F.Table), MatchResult::NoMatch);
}

TEST(NamePattern, ConsistencySatisfactionAndViolation) {
  PipelineFixture F;
  // Example 3.8: self.<name1> = <name2> requires name1 == name2.
  StmtPaths Good = F.statement("self.name = name\n");
  ASSERT_EQ(Good.Paths.size(), 3u);
  NamePattern P;
  P.Kind = PatternKind::Consistency;
  P.Condition = {Good.Paths[0]}; // the self path
  P.Deduction = {F.Table.symbolicVersion(Good.Paths[1]),
                 F.Table.symbolicVersion(Good.Paths[2])};
  EXPECT_EQ(evaluatePattern(P, Good, F.Table), MatchResult::Satisfied);

  StmtPaths Bad = F.statement("self.port = por\n");
  EXPECT_EQ(evaluatePattern(P, Bad, F.Table), MatchResult::Violated);
  SuggestedFix Fix = deriveFix(P, Bad, F.Table);
  EXPECT_EQ(F.Ctx.text(Fix.Original), "por");
  EXPECT_EQ(F.Ctx.text(Fix.Suggested), "port");
}

TEST(NamePattern, IsNameSubtokenPath) {
  PipelineFixture F;
  StmtPaths S = F.statement("self.assertTrue(v, 90)\n",
                            /*SelfIsTestCase=*/true);
  // Paths: self, assert, True, v, NUM.
  ASSERT_EQ(S.Paths.size(), 5u);
  EXPECT_TRUE(isNameSubtokenPath(S.Paths[0], F.Table, F.Ctx));  // self
  EXPECT_TRUE(isNameSubtokenPath(S.Paths[2], F.Table, F.Ctx));  // True
  EXPECT_FALSE(isNameSubtokenPath(S.Paths[4], F.Table, F.Ctx)); // NUM
}

// --- Miner -------------------------------------------------------------------

namespace {

MinerConfig smallCorpusConfig() {
  MinerConfig C;
  C.MinPathFrequency = 2;
  C.MinPatternSupport = 3;
  C.MinSatisfactionRatio = 0.7;
  C.Conditions = MinerConfig::ConditionPolicy::FullOnly;
  return C;
}

} // namespace

TEST(PatternMiner, MinesConsistencyPattern) {
  PipelineFixture F;
  // 9 consistent constructor assignments (x3 so their paths pass the
  // frequency filter, as they would at Big Code scale) + 1 typo.
  std::string Source;
  const char *Names[] = {"name", "key",  "value", "port", "host",
                         "path", "size", "count", "mode"};
  for (int Rep = 0; Rep < 3; ++Rep)
    for (const char *N : Names)
      Source += std::string("self.") + N + " = " + N + "\n";
  Source += "self.flag = flap\n";

  auto Stmts = F.statements(Source);
  ASSERT_EQ(Stmts.size(), 28u);

  PatternMiner Miner(PatternKind::Consistency, F.Table, F.Ctx,
                     smallCorpusConfig());
  for (const auto &S : Stmts)
    Miner.countPaths(S);
  for (const auto &S : Stmts)
    Miner.addStatement(S);
  auto Patterns = Miner.generate();
  ASSERT_FALSE(Patterns.empty());
  Patterns = Miner.pruneUncommon(std::move(Patterns), Stmts);
  ASSERT_FALSE(Patterns.empty());

  // The surviving pattern flags the typo statement and only it.
  PatternIndex Index(Patterns, F.Table);
  int Violations = 0, Satisfactions = 0;
  std::vector<PatternHit> Hits;
  for (const auto &S : Stmts) {
    Hits.clear();
    Index.evaluate(S, Hits);
    for (const auto &H : Hits) {
      Violations += H.Result == MatchResult::Violated;
      Satisfactions += H.Result == MatchResult::Satisfied;
    }
  }
  EXPECT_GT(Satisfactions, 0);
  EXPECT_GT(Violations, 0);

  StmtPaths Typo = F.statement("self.flag = flap\n");
  Hits.clear();
  Index.evaluate(Typo, Hits);
  bool Violated = false;
  for (const auto &H : Hits)
    Violated |= H.Result == MatchResult::Violated;
  EXPECT_TRUE(Violated);
}

TEST(PatternMiner, MinesConfusingWordPattern) {
  PipelineFixture F;
  std::string Source;
  for (int I = 0; I < 8; ++I)
    Source += "self.assertEqual(vec" + std::to_string(I) + ", " +
              std::to_string(I) + ")\n";
  Source += "self.assertTrue(vec9, 9)\n";

  auto Stmts = F.statements(Source, /*SelfIsTestCase=*/true);
  ASSERT_EQ(Stmts.size(), 9u);

  PatternMiner Miner(PatternKind::ConfusingWord, F.Table, F.Ctx,
                     smallCorpusConfig());
  Miner.setCorrectWords({F.Ctx.intern("Equal")});
  for (const auto &S : Stmts)
    Miner.countPaths(S);
  for (const auto &S : Stmts)
    Miner.addStatement(S);
  auto Patterns = Miner.pruneUncommon(Miner.generate(), Stmts);
  ASSERT_FALSE(Patterns.empty());

  PatternIndex Index(Patterns, F.Table);
  StmtPaths Bad = F.statement("self.assertTrue(vec9, 9)\n",
                              /*SelfIsTestCase=*/true);
  std::vector<PatternHit> Hits;
  Index.evaluate(Bad, Hits);
  bool FoundFix = false;
  for (const auto &H : Hits) {
    if (H.Result != MatchResult::Violated)
      continue;
    SuggestedFix Fix = deriveFix(Index.patterns()[H.Pattern], Bad, F.Table);
    FoundFix |= F.Ctx.text(Fix.Suggested) == "Equal" &&
                F.Ctx.text(Fix.Original) == "True";
  }
  EXPECT_TRUE(FoundFix);
}

TEST(PatternMiner, PruneDropsLowSupport) {
  PipelineFixture F;
  auto Stmts = F.statements("self.a = a\nself.b = b\n");
  MinerConfig C = smallCorpusConfig();
  C.MinPatternSupport = 100; // unreachable with two statements
  PatternMiner Miner(PatternKind::Consistency, F.Table, F.Ctx, C);
  for (const auto &S : Stmts)
    Miner.countPaths(S);
  for (const auto &S : Stmts)
    Miner.addStatement(S);
  auto Patterns = Miner.pruneUncommon(Miner.generate(), Stmts);
  EXPECT_TRUE(Patterns.empty());
}

TEST(PatternMiner, PruneDropsLowSatisfactionRatio) {
  PipelineFixture F;
  // Only 3 of 10 matching statements satisfy the would-be idiom;
  // ratio 0.3 < 0.7 so pruneUncommon must drop it.
  std::string Source;
  for (int I = 0; I < 3; ++I)
    Source += "self.val = val\n";
  for (int I = 0; I < 7; ++I)
    Source += "self.val = foo\n";
  auto Stmts = F.statements(Source);
  MinerConfig C = smallCorpusConfig();
  C.MinSatisfactionRatio = 0.7;
  PatternMiner Miner(PatternKind::Consistency, F.Table, F.Ctx, C);
  for (const auto &S : Stmts)
    Miner.countPaths(S);
  for (const auto &S : Stmts)
    Miner.addStatement(S);
  auto Patterns = Miner.pruneUncommon(Miner.generate(), Stmts);
  EXPECT_TRUE(Patterns.empty());
}

TEST(PatternMiner, FrequencyFilterRemovesRarePaths) {
  PipelineFixture F;
  auto Stmts = F.statements("self.a = a\nself.a = a\nself.zq = zq\n");
  MinerConfig C = smallCorpusConfig();
  C.MinPathFrequency = 2;
  PatternMiner Miner(PatternKind::Consistency, F.Table, F.Ctx, C);
  for (const auto &S : Stmts)
    Miner.countPaths(S);
  for (const auto &S : Stmts)
    Miner.addStatement(S);
  // The zq statement's paths each occur once -> filtered; only the a=a
  // pair statements reach the tree: tree has generation points only for
  // the duplicated statement.
  EXPECT_GT(Miner.tree().numGenerationPoints(), 0u);
  auto Patterns = Miner.generate();
  for (const NamePattern &P : Patterns)
    for (PathId Id : P.Deduction)
      EXPECT_NE(F.Ctx.text(F.Table.endOf(Id)), "zq");
}

TEST(PatternMiner, ConditionPoliciesOrderedByGenerality) {
  PipelineFixture F;
  auto Stmts =
      F.statements("self.assertEqual(a, 1)\nself.assertEqual(b, 2)\n",
                    /*SelfIsTestCase=*/true);
  auto CountFor = [&](MinerConfig::ConditionPolicy Policy) {
    MinerConfig C = smallCorpusConfig();
    C.Conditions = Policy;
    PatternMiner Miner(PatternKind::ConfusingWord, F.Table, F.Ctx, C);
    Miner.setCorrectWords({F.Ctx.intern("Equal")});
    for (const auto &S : Stmts)
      Miner.countPaths(S);
    for (const auto &S : Stmts)
      Miner.addStatement(S);
    return Miner.generate().size();
  };
  size_t Full = CountFor(MinerConfig::ConditionPolicy::FullOnly);
  size_t Loo = CountFor(MinerConfig::ConditionPolicy::LeaveOneOut);
  size_t All = CountFor(MinerConfig::ConditionPolicy::AllSubsets);
  EXPECT_LT(Full, Loo);
  EXPECT_LE(Loo, All);
}

// --- PatternIndex ------------------------------------------------------------

TEST(PatternIndex, AgreesWithDirectEvaluation) {
  PipelineFixture F;
  std::string Source;
  for (int I = 0; I < 6; ++I)
    Source += "self.v" + std::to_string(I) + " = v" + std::to_string(I) +
              "\n";
  auto Stmts = F.statements(Source);
  PatternMiner Miner(PatternKind::Consistency, F.Table, F.Ctx,
                     smallCorpusConfig());
  for (const auto &S : Stmts)
    Miner.countPaths(S);
  for (const auto &S : Stmts)
    Miner.addStatement(S);
  auto Patterns = Miner.generate();
  PatternIndex Index(Patterns, F.Table);

  for (const auto &S : Stmts) {
    std::vector<PatternHit> Hits;
    Index.evaluate(S, Hits);
    size_t Direct = 0;
    for (const NamePattern &P : Patterns)
      Direct += evaluatePattern(P, S, F.Table) != MatchResult::NoMatch;
    EXPECT_EQ(Hits.size(), Direct);
  }
}
