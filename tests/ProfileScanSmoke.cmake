# Smoke test: the profiler determinism contract end to end. Run the real
# namer-scan binary over the bundled mini corpus at --threads=1 and
# --threads=8 with --deterministic-obs --profile-out, and require the
# folded collapsed-stack profiles -- and the namer-profile reports over
# them -- to be byte-identical across the two runs (close-driven sampling
# is structural; see DESIGN.md, "Profiling"). When the build compiled the
# telemetry layer out (-DTELEMETRY=OFF), --profile-out degrades to an
# empty file by contract and the phase-coverage checks are skipped.
# Invoked by ctest as
#   cmake -DNAMER_SCAN=<exe> -DNAMER_PROFILE=<exe> -DCORPUS=<dir>
#         -DOUT=<dir> -DTELEMETRY=<ON|OFF> -P ProfileScanSmoke.cmake

foreach(Var NAMER_SCAN NAMER_PROFILE CORPUS OUT TELEMETRY)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "ProfileScanSmoke.cmake requires -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

foreach(Threads 1 8)
  execute_process(
    COMMAND "${NAMER_SCAN}" "--threads=${Threads}" "--deterministic-obs"
            "--profile-out=${OUT}/t${Threads}.folded" "${CORPUS}"
    RESULT_VARIABLE Rc
    OUTPUT_VARIABLE Stdout
    ERROR_VARIABLE Stderr)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "namer-scan --threads=${Threads} failed (rc=${Rc})\n"
        "stdout:\n${Stdout}\nstderr:\n${Stderr}")
  endif()
  if(NOT EXISTS "${OUT}/t${Threads}.folded")
    message(FATAL_ERROR "namer-scan did not write ${OUT}/t${Threads}.folded")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${OUT}/t1.folded" "${OUT}/t8.folded"
  RESULT_VARIABLE Same)
if(NOT Same EQUAL 0)
  file(READ "${OUT}/t1.folded" One)
  file(READ "${OUT}/t8.folded" Eight)
  message(FATAL_ERROR "--deterministic-obs folded profiles differ between "
      "--threads=1 and --threads=8\n--- t1 ---\n${One}\n--- t8 ---\n${Eight}")
endif()

# The profile must cover the pipeline's phases (with telemetry compiled
# in; the notrace stub writes an empty file, already checked identical).
file(READ "${OUT}/t1.folded" Folded)
if(NOT TELEMETRY)
  if(NOT Folded STREQUAL "")
    message(FATAL_ERROR "notrace --profile-out should be empty:\n${Folded}")
  endif()
endif()
set(PhaseNeedles)
if(TELEMETRY)
  set(PhaseNeedles
    "pipeline.ingest"
    "pipeline.histmine"
    "fptree.build"
    "pattern.prune"
    "pipeline.scan"
    "report.")
endif()
foreach(Needle IN LISTS PhaseNeedles)
  string(FIND "${Folded}" "${Needle}" At)
  if(At EQUAL -1)
    message(FATAL_ERROR "folded profile is missing ${Needle}:\n${Folded}")
  endif()
endforeach()

# namer-profile reports over the two profiles are byte-identical too. The
# report header echoes the input path, so give both files the same name in
# sibling directories and invoke with a relative path.
foreach(Run r1 r2)
  file(MAKE_DIRECTORY "${OUT}/${Run}")
endforeach()
file(COPY_FILE "${OUT}/t1.folded" "${OUT}/r1/profile.folded")
file(COPY_FILE "${OUT}/t8.folded" "${OUT}/r2/profile.folded")
foreach(Run r1 r2)
  execute_process(
    COMMAND "${NAMER_PROFILE}" --inverted --top=0 "profile.folded"
    WORKING_DIRECTORY "${OUT}/${Run}"
    RESULT_VARIABLE Rc
    OUTPUT_VARIABLE Report)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "namer-profile failed on ${Run} (rc=${Rc})")
  endif()
  set(Report_${Run} "${Report}")
endforeach()
if(NOT Report_r1 STREQUAL Report_r2)
  message(FATAL_ERROR "namer-profile reports differ between thread counts\n"
      "--- t1 ---\n${Report_r1}\n--- t8 ---\n${Report_r2}")
endif()

# And the diff gate between them is clean at a zero threshold.
execute_process(
  COMMAND "${NAMER_PROFILE}" --diff --threshold=0.0
          "${OUT}/t1.folded" "${OUT}/t8.folded"
  RESULT_VARIABLE Rc
  OUTPUT_VARIABLE Stdout)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "t1 vs t8 diff gate failed (rc=${Rc}):\n${Stdout}")
endif()

message(STATUS "profiler smoke OK: folded profile and reports "
    "byte-identical at 1 and 8 threads")
