//===- tests/TestSupport.h - shared test utilities --------------*- C++ -*-==//
///
/// \file
/// Helpers shared across test binaries. JsonChecker validates the
/// hand-rolled JSON every exporter emits (telemetry's statsJson /
/// chromeTraceJson and the explainability layer's sarifJson /
/// findingsJson); golden-file tests run it over every pinned document.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_TESTS_TESTSUPPORT_H
#define NAMER_TESTS_TESTSUPPORT_H

#include <cctype>
#include <string_view>

namespace namer {
namespace test {

/// Minimal JSON syntax checker: accepts exactly the RFC 8259 value grammar
/// (minus \u escapes' surrogate rules), enough to assert that hand-rolled
/// exporter output is structurally well formed.
class JsonChecker {
public:
  explicit JsonChecker(std::string_view S)
      : P(S.data()), End(S.data() + S.size()) {}

  bool valid() {
    if (!value())
      return false;
    skipWs();
    return P == End;
  }

private:
  const char *P, *End;

  void skipWs() {
    while (P != End &&
           (*P == ' ' || *P == '\n' || *P == '\t' || *P == '\r'))
      ++P;
  }
  bool literal(std::string_view Lit) {
    if (static_cast<size_t>(End - P) < Lit.size() ||
        std::string_view(P, Lit.size()) != Lit)
      return false;
    P += Lit.size();
    return true;
  }
  bool string() {
    if (P == End || *P != '"')
      return false;
    for (++P; P != End && *P != '"'; ++P)
      if (*P == '\\' && ++P == End)
        return false;
    if (P == End)
      return false;
    ++P;
    return true;
  }
  bool number() {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    while (P != End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                        *P == '.' || *P == 'e' || *P == 'E' || *P == '+' ||
                        *P == '-'))
      ++P;
    return P != Start;
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P != End && *P == '}')
      return ++P, true;
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P == End || *P != ':')
        return false;
      ++P;
      if (!value())
        return false;
      skipWs();
      if (P != End && *P == ',') {
        ++P;
        continue;
      }
      if (P != End && *P == '}')
        return ++P, true;
      return false;
    }
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P != End && *P == ']')
      return ++P, true;
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (P != End && *P == ',') {
        ++P;
        continue;
      }
      if (P != End && *P == ']')
        return ++P, true;
      return false;
    }
  }
  bool value() {
    skipWs();
    if (P == End)
      return false;
    switch (*P) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

} // namespace test
} // namespace namer

#endif // NAMER_TESTS_TESTSUPPORT_H
