//===- tests/AnalysisTest.cpp - Datalog / points-to / origins tests -------==//

#include "analysis/Origins.h"

#include "analysis/WellKnown.h"
#include "analysis/datalog/Datalog.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"

#include <gtest/gtest.h>

using namespace namer;
using namespace namer::datalog;

// --- Datalog engine ----------------------------------------------------------

TEST(Datalog, TransitiveClosure) {
  Engine E;
  RelationId Edge = E.addRelation("edge", 2);
  RelationId Path = E.addRelation("path", 2);
  // path(x,y) :- edge(x,y).
  E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(1)}},
                 {Literal{Edge, {Term::var(0), Term::var(1)}}}});
  // path(x,z) :- path(x,y), edge(y,z).
  E.addRule(Rule{Literal{Path, {Term::var(0), Term::var(2)}},
                 {Literal{Path, {Term::var(0), Term::var(1)}},
                  Literal{Edge, {Term::var(1), Term::var(2)}}}});
  // Chain 1 -> 2 -> 3 -> 4 plus a cycle back to 1.
  E.addFact(Edge, {1, 2});
  E.addFact(Edge, {2, 3});
  E.addFact(Edge, {3, 4});
  E.addFact(Edge, {4, 1});
  E.run();
  // Full closure over the 4-cycle: 16 pairs.
  EXPECT_EQ(E.relation(Path).size(), 16u);
  EXPECT_TRUE(E.relation(Path).contains(DlTuple{{1, 4}}));
  EXPECT_TRUE(E.relation(Path).contains(DlTuple{{3, 2}}));
}

TEST(Datalog, ConstantsInRules) {
  Engine E;
  RelationId In = E.addRelation("in", 2);
  RelationId Out = E.addRelation("out", 1);
  // out(x) :- in(x, 7).
  E.addRule(Rule{Literal{Out, {Term::var(0)}},
                 {Literal{In, {Term::var(0), Term::constant(7)}}}});
  E.addFact(In, {1, 7});
  E.addFact(In, {2, 8});
  E.run();
  EXPECT_EQ(E.relation(Out).size(), 1u);
  EXPECT_TRUE(E.relation(Out).contains(DlTuple{{1}}));
}

TEST(Datalog, RepeatedVariableInLiteral) {
  Engine E;
  RelationId Pair = E.addRelation("pair", 2);
  RelationId Same = E.addRelation("same", 1);
  // same(x) :- pair(x, x).
  E.addRule(Rule{Literal{Same, {Term::var(0)}},
                 {Literal{Pair, {Term::var(0), Term::var(0)}}}});
  E.addFact(Pair, {3, 3});
  E.addFact(Pair, {3, 4});
  E.run();
  EXPECT_EQ(E.relation(Same).size(), 1u);
  EXPECT_TRUE(E.relation(Same).contains(DlTuple{{3}}));
}

TEST(Datalog, AndersenPointsToRules) {
  // The exact rule set Origins uses, on a handcrafted heap graph.
  Engine E;
  RelationId Alloc = E.addRelation("alloc", 2);
  RelationId Move = E.addRelation("move", 2);
  RelationId Load = E.addRelation("load", 3);
  RelationId Store = E.addRelation("store", 3);
  RelationId Vpt = E.addRelation("vpt", 2);
  RelationId FieldPt = E.addRelation("fieldPt", 3);
  E.addRule(Rule{Literal{Vpt, {Term::var(0), Term::var(1)}},
                 {Literal{Alloc, {Term::var(0), Term::var(1)}}}});
  E.addRule(Rule{Literal{Vpt, {Term::var(0), Term::var(2)}},
                 {Literal{Move, {Term::var(0), Term::var(1)}},
                  Literal{Vpt, {Term::var(1), Term::var(2)}}}});
  E.addRule(Rule{
      Literal{FieldPt, {Term::var(3), Term::var(1), Term::var(4)}},
      {Literal{Store, {Term::var(0), Term::var(1), Term::var(2)}},
       Literal{Vpt, {Term::var(0), Term::var(3)}},
       Literal{Vpt, {Term::var(2), Term::var(4)}}}});
  E.addRule(
      Rule{Literal{Vpt, {Term::var(0), Term::var(4)}},
           {Literal{Load, {Term::var(0), Term::var(1), Term::var(2)}},
            Literal{Vpt, {Term::var(1), Term::var(3)}},
            Literal{FieldPt, {Term::var(3), Term::var(2), Term::var(4)}}}});

  // a = new S1; b = a; b.f = new S2; c = a.f
  enum : Atom { A = 1, B, C, S1 = 10, S2, F = 20, Tmp = 30 };
  E.addFact(Alloc, {A, S1});
  E.addFact(Move, {B, A});
  E.addFact(Alloc, {Tmp, S2});
  E.addFact(Store, {B, F, Tmp});
  E.addFact(Load, {C, A, F});
  E.run();
  EXPECT_TRUE(E.relation(Vpt).contains(DlTuple{{B, S1}}));
  // c sees the store through the alias b -> S1.
  EXPECT_TRUE(E.relation(Vpt).contains(DlTuple{{C, S2}}));
}

// --- WellKnownRegistry -------------------------------------------------------

TEST(WellKnown, MethodOwnerWalksHierarchy) {
  auto R = WellKnownRegistry::forJava();
  // printStackTrace is declared on Throwable, visible from subclasses.
  EXPECT_EQ(R.methodOwner("RuntimeException", "printStackTrace"),
            "Throwable");
  EXPECT_EQ(R.methodOwner("Throwable", "printStackTrace"), "Throwable");
  EXPECT_EQ(R.methodOwner("String", "printStackTrace"), std::nullopt);
}

TEST(WellKnown, GeneralizeThroughLocalBases) {
  auto R = WellKnownRegistry::forPython();
  std::unordered_map<std::string, std::string> Local = {
      {"TestPicture", "TestCase"}};
  EXPECT_EQ(R.generalize("TestPicture", Local), "TestCase");
  EXPECT_EQ(R.generalize("TestCase", {}), "TestCase");
  EXPECT_EQ(R.generalize("TotallyUnknown", {}), "TotallyUnknown");
}

TEST(WellKnown, DialogHierarchy) {
  auto R = WellKnownRegistry::forJava();
  EXPECT_EQ(R.methodOwner("ProgressDialog", "dismiss"), "Dialog");
  EXPECT_EQ(R.methodOwner("ProgressDialog", "setMessage"),
            "ProgressDialog");
}

TEST(WellKnown, CallOrigins) {
  auto R = WellKnownRegistry::forPython();
  EXPECT_EQ(R.callOrigin("range"), "range");
  EXPECT_EQ(R.callOrigin("open"), "file");
  EXPECT_EQ(R.callOrigin("no_such_fn"), std::nullopt);
}

// --- Origin analysis ---------------------------------------------------------

namespace {

/// Maps ident text -> origin text for every decorated Ident in the module.
std::unordered_map<std::string, std::string>
originTexts(const Tree &Module, const OriginMap &Origins) {
  std::unordered_map<std::string, std::string> Out;
  for (const auto &[NodeId, Origin] : Origins) {
    Out.emplace(std::string(Module.valueText(NodeId)),
                std::string(Module.context().text(Origin)));
  }
  return Out;
}

} // namespace

TEST(Origins, Figure2SelfAndCalleeOriginIsTestCase) {
  AstContext Ctx;
  auto R = python::parsePython("from unittest import TestCase\n"
                               "class TestPicture(TestCase):\n"
                               "    def test_angle(self):\n"
                               "        self.assertTrue(pic.angle, 90)\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result =
      computeOrigins(R.Module, WellKnownRegistry::forPython());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["self"], "TestCase");
  EXPECT_EQ(O["assertTrue"], "TestCase");
}

TEST(Origins, ConstructorAllocationType) {
  AstContext Ctx;
  auto R = python::parsePython("class Widget(object):\n"
                               "    def __init__(self):\n"
                               "        self.x = 1\n"
                               "w = Widget()\n"
                               "w.draw()\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["w"], "Widget");
}

TEST(Origins, ModuleAlias) {
  AstContext Ctx;
  auto R = python::parsePython("import numpy as np\n"
                               "a = np.array(x)\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["np"], "numpy");
}

TEST(Origins, ValueOriginFromKnownFunction) {
  AstContext Ctx;
  auto R = python::parsePython("n = len(items)\n", Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["n"], "len");
}

TEST(Origins, ReassignmentKillsValueOrigin) {
  AstContext Ctx;
  auto R = python::parsePython("n = len(items)\nn = n + 1\n", Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O.count("n"), 0u);
}

TEST(Origins, InterproceduralReturnFlow) {
  AstContext Ctx;
  auto R = python::parsePython("class Conn(object):\n"
                               "    pass\n"
                               "def make():\n"
                               "    return Conn()\n"
                               "c = make()\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["c"], "Conn");
  EXPECT_GE(Result.EffectiveK, 1u);
}

TEST(Origins, JavaDeclaredTypesAndCatch) {
  AstContext Ctx;
  auto R = java::parseJava(
      "class C { void m() {"
      "  ProgressDialog progDialog = new ProgressDialog();"
      "  progDialog.dismiss();"
      "  try { } catch (ArithmeticException e) { e.printStackTrace(); }"
      "} }",
      Ctx);
  ASSERT_TRUE(R.Errors.empty());
  WellKnownRegistry Reg = WellKnownRegistry::forJava();
  Reg.addClass("ArithmeticException", "RuntimeException");
  auto Result = computeOrigins(R.Module, Reg);
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["progDialog"], "ProgressDialog");
  // dismiss is defined on Dialog, the superclass.
  EXPECT_EQ(O["dismiss"], "Dialog");
  EXPECT_EQ(O["e"], "ArithmeticException");
  EXPECT_EQ(O["printStackTrace"], "Throwable");
}

TEST(Origins, JavaIntentFlowIntoCall) {
  AstContext Ctx;
  auto R = java::parseJava("class A { void go(Context context) {"
                           "  Intent i = new Intent();"
                           "  context.startActivity(i);"
                           "} }",
                           Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forJava());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["i"], "Intent");
  EXPECT_EQ(O["startActivity"], "Context");
}

TEST(Origins, ContextExplosionBacksOff) {
  // A call web wide enough to exceed 8 contexts/function on average at
  // k = 5; the analysis must reduce k rather than blow up.
  std::string Source;
  for (int I = 0; I < 6; ++I) {
    Source += "def f" + std::to_string(I) + "(x):\n";
    if (I == 0) {
      Source += "    return x\n";
    } else {
      for (int J = 0; J < 4; ++J)
        Source += "    y" + std::to_string(J) + " = f" +
                  std::to_string(I - 1) + "(x)\n";
      Source += "    return x\n";
    }
  }
  AstContext Ctx;
  auto R = python::parsePython(Source, Ctx);
  ASSERT_TRUE(R.Errors.empty());
  AnalysisConfig Config;
  auto Result = computeOrigins(R.Module, WellKnownRegistry::forPython(),
                               Config);
  double Avg = static_cast<double>(Result.NumContexts) / 7.0;
  EXPECT_LT(Result.EffectiveK, 5u);
  (void)Avg;
}

TEST(Origins, EmptyRegistryStillTracksLocalClasses) {
  AstContext Ctx;
  auto R = python::parsePython("class Local(object):\n"
                               "    pass\n"
                               "v = Local()\n",
                               Ctx);
  ASSERT_TRUE(R.Errors.empty());
  auto Result = computeOrigins(R.Module, WellKnownRegistry::empty());
  auto O = originTexts(R.Module, Result.Origins);
  EXPECT_EQ(O["v"], "Local");
}
