//===- tests/CorpusTest.cpp - corpus generator / oracle tests -------------==//

#include "corpus/Corpus.h"
#include "corpus/Oracle.h"

#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"

#include <gtest/gtest.h>

using namespace namer;
using namespace namer::corpus;

namespace {

CorpusConfig smallConfig(Language Lang) {
  CorpusConfig C;
  C.Lang = Lang;
  C.NumRepos = 20;
  return C;
}

} // namespace

TEST(CorpusGenerator, Deterministic) {
  Corpus A = generateCorpus(smallConfig(Language::Python));
  Corpus B = generateCorpus(smallConfig(Language::Python));
  ASSERT_EQ(A.numFiles(), B.numFiles());
  ASSERT_EQ(A.Repos.size(), B.Repos.size());
  for (size_t R = 0; R != A.Repos.size(); ++R) {
    ASSERT_EQ(A.Repos[R].Files.size(), B.Repos[R].Files.size());
    for (size_t F = 0; F != A.Repos[R].Files.size(); ++F)
      EXPECT_EQ(A.Repos[R].Files[F].Text, B.Repos[R].Files[F].Text);
  }
  EXPECT_EQ(A.Commits.size(), B.Commits.size());
}

TEST(CorpusGenerator, DifferentSeedsDiffer) {
  CorpusConfig C1 = smallConfig(Language::Python);
  CorpusConfig C2 = C1;
  C2.Seed ^= 1;
  Corpus A = generateCorpus(C1);
  Corpus B = generateCorpus(C2);
  bool AnyDifference = A.numFiles() != B.numFiles();
  for (size_t R = 0; !AnyDifference && R != A.Repos.size(); ++R)
    AnyDifference = A.Repos[R].Files.size() != B.Repos[R].Files.size() ||
                    A.Repos[R].Files[0].Text != B.Repos[R].Files[0].Text;
  EXPECT_TRUE(AnyDifference);
}

class CorpusLanguageTest : public ::testing::TestWithParam<Language> {};

TEST_P(CorpusLanguageTest, EveryFileParsesCleanly) {
  Corpus C = generateCorpus(smallConfig(GetParam()));
  size_t Errors = 0;
  for (const Repository &Repo : C.Repos) {
    for (const SourceFile &F : Repo.Files) {
      AstContext Ctx;
      if (GetParam() == Language::Python)
        Errors += python::parsePython(F.Text, Ctx).Errors.size();
      else
        Errors += java::parseJava(F.Text, Ctx).Errors.size();
    }
  }
  EXPECT_EQ(Errors, 0u) << "generated corpus must be parseable";
}

TEST_P(CorpusLanguageTest, EveryCommitParsesCleanly) {
  Corpus C = generateCorpus(smallConfig(GetParam()));
  EXPECT_FALSE(C.Commits.empty());
  for (const CommitPair &Commit : C.Commits) {
    AstContext Ctx;
    if (GetParam() == Language::Python) {
      EXPECT_TRUE(python::parsePython(Commit.Before, Ctx).Errors.empty())
          << Commit.Before;
      EXPECT_TRUE(python::parsePython(Commit.After, Ctx).Errors.empty());
    } else {
      EXPECT_TRUE(java::parseJava(Commit.Before, Ctx).Errors.empty())
          << Commit.Before;
      EXPECT_TRUE(java::parseJava(Commit.After, Ctx).Errors.empty());
    }
  }
}

TEST_P(CorpusLanguageTest, SeedsIssuesWithBothKinds) {
  Corpus C = generateCorpus(smallConfig(GetParam()));
  size_t Semantic = 0, Quality = 0;
  for (const Repository &Repo : C.Repos)
    for (const SourceFile &F : Repo.Files)
      for (const SeededIssue &Issue : F.Issues) {
        (Issue.Kind == IssueKind::SemanticDefect ? Semantic : Quality)++;
        EXPECT_NE(Issue.BadToken, Issue.GoodToken);
        EXPECT_GT(Issue.Line, 0u);
      }
  EXPECT_GT(Semantic, 0u);
  EXPECT_GT(Quality, Semantic) << "quality issues dominate (Table 2 shape)";
}

TEST_P(CorpusLanguageTest, IssueLinesPointAtBadTokens) {
  Corpus C = generateCorpus(smallConfig(GetParam()));
  for (const Repository &Repo : C.Repos) {
    for (const SourceFile &F : Repo.Files) {
      // Split text into lines once.
      std::vector<std::string> Lines{""};
      for (char Ch : F.Text) {
        if (Ch == '\n')
          Lines.emplace_back();
        else
          Lines.back() += Ch;
      }
      for (const SeededIssue &Issue : F.Issues) {
        ASSERT_LT(Issue.Line, Lines.size() + 1);
        EXPECT_NE(Lines[Issue.Line - 1].find(Issue.BadToken),
                  std::string::npos)
            << F.Path << ":" << Issue.Line << " missing " << Issue.BadToken;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothLanguages, CorpusLanguageTest,
                         ::testing::Values(Language::Python, Language::Java));

TEST(CorpusDedup, RemovesExactDuplicates) {
  Corpus C;
  Repository R;
  SourceFile F;
  F.Path = "a.py";
  F.Text = "x = 1\n";
  R.Files.push_back(F);
  F.Path = "b.py"; // same text, different path
  R.Files.push_back(F);
  F.Path = "c.py";
  F.Text = "y = 2\n";
  R.Files.push_back(F);
  C.Repos.push_back(R);
  EXPECT_EQ(deduplicateFiles(C), 1u);
  EXPECT_EQ(C.Repos[0].Files.size(), 2u);
}

// --- Oracle ------------------------------------------------------------------

TEST(InspectionOracle, ClassifiesSeededIssue) {
  Corpus C;
  Repository R;
  SourceFile F;
  F.Path = "m.py";
  F.Text = "self.port = por\n";
  F.Issues.push_back(SeededIssue{IssueKind::CodeQualityIssue,
                                 IssueCategory::Typo, 1, "por", "port"});
  R.Files.push_back(F);
  C.Repos.push_back(R);
  InspectionOracle Oracle(C);

  auto Out = Oracle.inspect("m.py", 1, "por", "port");
  EXPECT_EQ(Out.Result, InspectionOutcome::Verdict::CodeQualityIssue);
  EXPECT_EQ(Out.Category, IssueCategory::Typo);
  EXPECT_TRUE(Out.FixMatchesGroundTruth);

  // Wrong suggestion still identifies the issue, but the fix flag is off.
  Out = Oracle.inspect("m.py", 1, "por", "point");
  EXPECT_EQ(Out.Result, InspectionOutcome::Verdict::CodeQualityIssue);
  EXPECT_FALSE(Out.FixMatchesGroundTruth);
}

TEST(InspectionOracle, LineToleranceOfOne) {
  Corpus C;
  Repository R;
  SourceFile F;
  F.Path = "m.py";
  F.Text = "self.port = por\n";
  F.Issues.push_back(SeededIssue{IssueKind::CodeQualityIssue,
                                 IssueCategory::Typo, 5, "por", "port"});
  R.Files.push_back(F);
  C.Repos.push_back(R);
  InspectionOracle Oracle(C);
  EXPECT_NE(Oracle.inspect("m.py", 6, "por", "port").Result,
            InspectionOutcome::Verdict::FalsePositive);
  EXPECT_NE(Oracle.inspect("m.py", 4, "por", "port").Result,
            InspectionOutcome::Verdict::FalsePositive);
  EXPECT_EQ(Oracle.inspect("m.py", 8, "por", "port").Result,
            InspectionOutcome::Verdict::FalsePositive);
}

TEST(InspectionOracle, UnseededReportIsFalsePositive) {
  Corpus C = generateCorpus(smallConfig(Language::Python));
  InspectionOracle Oracle(C);
  auto Out = Oracle.inspect("does/not/exist.py", 3, "foo", "bar");
  EXPECT_EQ(Out.Result, InspectionOutcome::Verdict::FalsePositive);
}
