//===- tests/ExplainTest.cpp - finding provenance tests -------------------==//
//
// Covers the explainability layer (namer/Explain.h) and the finding
// exporters (namer/FindingsExport.h): the Explanation evidence chain on a
// real pipeline (witnesses, mining lineage, per-feature classifier
// contributions summing to the decision value), makeReport across both
// PatternKinds including the UseClassifier=false ablation, the canonical
// report order, byte-stable golden files for SARIF 2.1.0 and the flat
// findings JSON, and export byte-identity across thread counts. Built as
// its own binary so `ctest -L explain` selects the suite.
//
//===----------------------------------------------------------------------===//

#include "namer/Evaluation.h"
#include "namer/Explain.h"
#include "namer/FindingsExport.h"

#include "TestSupport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

using namespace namer;
using namer::test::JsonChecker;

namespace {

/// One corpus + built-and-trained pipeline shared across tests (building
/// takes ~0.5s, training adds the classifier evidence the attribution
/// tests need).
struct SharedPipeline {
  corpus::Corpus C;
  std::unique_ptr<corpus::InspectionOracle> Oracle;
  std::unique_ptr<NamerPipeline> Pipeline;

  SharedPipeline() {
    corpus::CorpusConfig Config;
    Config.Lang = corpus::Language::Python;
    Config.NumRepos = 80;
    C = corpus::generateCorpus(Config);
    Oracle = std::make_unique<corpus::InspectionOracle>(C);
    PipelineConfig PC;
    PC.Miner.MinPatternSupport = 20;
    Pipeline = std::make_unique<NamerPipeline>(PC);
    Pipeline->build(C);

    std::vector<size_t> Indices;
    std::vector<bool> Labels;
    collectBalancedLabels(*Pipeline, *Oracle, 120, /*Seed=*/1, Indices,
                          Labels);
    std::vector<Violation> Labeled;
    for (size_t I : Indices)
      Labeled.push_back(Pipeline->violations()[I]);
    Pipeline->trainClassifier(Labeled, Labels);
  }

  static SharedPipeline &get() {
    static SharedPipeline P;
    return P;
  }

  const Violation *firstOfKind(PatternKind Kind) const {
    for (const Violation &V : Pipeline->violations())
      if (Pipeline->patterns()[V.Pattern].Kind == Kind)
        return &V;
    return nullptr;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// makeReport across both kinds (satellite: direct coverage)
//===----------------------------------------------------------------------===//

TEST(MakeReport, CoversBothPatternKinds) {
  auto &S = SharedPipeline::get();
  for (PatternKind Kind :
       {PatternKind::Consistency, PatternKind::ConfusingWord}) {
    const Violation *V = S.firstOfKind(Kind);
    ASSERT_NE(V, nullptr) << "no violation of kind "
                          << static_cast<int>(Kind);
    Report R = S.Pipeline->makeReport(*V);
    EXPECT_EQ(R.Kind, Kind);
    EXPECT_EQ(R.Stmt, V->Stmt);
    EXPECT_EQ(R.File,
              S.Pipeline->filePath(S.Pipeline->statements()[V->Stmt].File));
    EXPECT_EQ(R.Line, S.Pipeline->statements()[V->Stmt].Line);
    EXPECT_FALSE(R.Original.empty());
    EXPECT_FALSE(R.Suggested.empty());
    EXPECT_NE(R.Original, R.Suggested);
    // The shared pipeline is trained: confidence is the decision value.
    EXPECT_EQ(R.Confidence, S.Pipeline->decision(*V));
  }
}

TEST(MakeReport, ConfidenceReadsZeroInClassifierAblation) {
  // The "C" ablation never trains; makeReport must not touch the
  // classifier and Confidence must read exactly 0 for both kinds.
  corpus::CorpusConfig Config;
  Config.Lang = corpus::Language::Python;
  Config.NumRepos = 30;
  corpus::Corpus C = corpus::generateCorpus(Config);
  PipelineConfig PC;
  PC.UseClassifier = false;
  PC.Miner.MinPatternSupport = 20;
  NamerPipeline P(PC);
  P.build(C);
  ASSERT_FALSE(P.violations().empty());
  ASSERT_FALSE(P.classifierTrained());

  bool SawConsistency = false, SawConfusing = false;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    EXPECT_EQ(R.Confidence, 0.0) << R.File << ":" << R.Line;
    (R.Kind == PatternKind::Consistency ? SawConsistency : SawConfusing) =
        true;
  }
  EXPECT_TRUE(SawConsistency);
  EXPECT_TRUE(SawConfusing);

  // The ablation's explanations carry no attribution block.
  Explanation E = explainViolation(P, P.violations().front());
  EXPECT_FALSE(E.Attribution.Present);
  EXPECT_EQ(E.R.Confidence, 0.0);
}

//===----------------------------------------------------------------------===//
// The evidence chain
//===----------------------------------------------------------------------===//

TEST(Explain, EveryExplanationCitesAWitness) {
  auto &S = SharedPipeline::get();
  ASSERT_FALSE(S.Pipeline->violations().empty());
  for (const Violation &V : S.Pipeline->violations()) {
    Explanation E = explainViolation(*S.Pipeline, V);
    // pruneUncommon kept the pattern, so it has satisfactions in the
    // dataset, and the scan phase captured them in corpus order.
    ASSERT_GE(E.Witnesses.size(), 1u)
        << E.R.File << ":" << E.R.Line << " pattern " << V.Pattern;
    for (const WitnessRef &W : E.Witnesses) {
      EXPECT_FALSE(W.File.empty());
      EXPECT_GT(W.Line, 0u);
      EXPECT_FALSE(W.Name.empty());
      EXPECT_FALSE(W.PathText.empty());
    }
  }
}

TEST(Explain, WitnessCapRespected) {
  auto &S = SharedPipeline::get();
  const Violation &V = S.Pipeline->violations().front();
  Explanation Narrow = explainViolation(*S.Pipeline, V, /*MaxWitnesses=*/1);
  EXPECT_EQ(Narrow.Witnesses.size(), 1u);
  Explanation Wide = explainViolation(*S.Pipeline, V, /*MaxWitnesses=*/100);
  EXPECT_LE(Wide.Witnesses.size(), NamerPipeline::kMaxPatternWitnesses);
}

TEST(Explain, PatternProvenanceMatchesMiningLineage) {
  auto &S = SharedPipeline::get();
  for (const Violation &V : S.Pipeline->violations()) {
    const NamePattern &P = S.Pipeline->patterns()[V.Pattern];
    Explanation E = explainViolation(*S.Pipeline, V);
    EXPECT_EQ(E.Pattern.Id, V.Pattern);
    EXPECT_EQ(E.Pattern.Kind, P.Kind);
    EXPECT_EQ(E.Pattern.Support, P.Support);
    EXPECT_EQ(E.Pattern.DatasetMatches, P.DatasetMatches);
    EXPECT_EQ(E.Pattern.DatasetSatisfactions, P.DatasetSatisfactions);
    EXPECT_EQ(E.Pattern.DatasetViolations, P.DatasetViolations);
    EXPECT_DOUBLE_EQ(E.Pattern.SatisfactionRate,
                     P.datasetSatisfactionRate());
    EXPECT_EQ(E.Pattern.ConditionSize, P.Condition.size());
    EXPECT_FALSE(E.Pattern.Rendered.empty());
    // pruneUncommon's keep threshold implies the witness pool is nonempty.
    EXPECT_GT(E.Pattern.DatasetSatisfactions, 0u);
  }
}

TEST(Explain, ContributionsSumToDecisionValue) {
  auto &S = SharedPipeline::get();
  ASSERT_TRUE(S.Pipeline->classifierTrained());
  size_t Checked = 0;
  for (const Violation &V : S.Pipeline->violations()) {
    Explanation E = explainViolation(*S.Pipeline, V);
    ASSERT_TRUE(E.Attribution.Present);
    ASSERT_EQ(E.Attribution.Contributions.size(), NumViolationFeatures);
    double Sum = E.Attribution.Bias;
    for (const FeatureContribution &C : E.Attribution.Contributions) {
      EXPECT_EQ(C.Contribution, C.Weight * C.Standardized);
      Sum += C.Contribution;
    }
    // The recipe is linear end to end, so the per-feature decomposition
    // reassembles the decision value (up to float associativity).
    EXPECT_NEAR(Sum, E.Attribution.Decision, 1e-9);
    EXPECT_NEAR(E.Attribution.Decision, S.Pipeline->decision(V), 1e-12);
    // Feature values are the raw Table-1 vector.
    std::vector<double> F = S.Pipeline->features(V);
    for (size_t I = 0; I != F.size(); ++I) {
      EXPECT_EQ(E.Attribution.Contributions[I].Value, F[I]);
      EXPECT_EQ(E.Attribution.Contributions[I].Feature,
                ViolationFeatureNames[I]);
    }
    if (++Checked == 25)
      break;
  }
  ASSERT_GT(Checked, 0u);
}

TEST(Explain, ConfusingWordFindingsCarryCommitEvidence) {
  auto &S = SharedPipeline::get();
  const Violation *Confusing = S.firstOfKind(PatternKind::ConfusingWord);
  ASSERT_NE(Confusing, nullptr);
  Explanation E = explainViolation(*S.Pipeline, *Confusing);
  ASSERT_TRUE(E.WordPair.Present);
  EXPECT_EQ(E.WordPair.Mistaken, E.R.Original);
  EXPECT_EQ(E.WordPair.Correct, E.R.Suggested);

  const Violation *Consistency = S.firstOfKind(PatternKind::Consistency);
  ASSERT_NE(Consistency, nullptr);
  EXPECT_FALSE(explainViolation(*S.Pipeline, *Consistency).WordPair.Present);
}

TEST(Explain, RenderedExplanationNamesTheEvidence) {
  auto &S = SharedPipeline::get();
  const Violation &V = S.Pipeline->violations().front();
  Explanation E = explainViolation(*S.Pipeline, V);
  std::string Text = renderExplanation(E);
  EXPECT_NE(Text.find(E.R.File), std::string::npos);
  EXPECT_NE(Text.find("pattern #" + std::to_string(V.Pattern)),
            std::string::npos);
  EXPECT_NE(Text.find("support " + std::to_string(E.Pattern.Support)),
            std::string::npos);
  EXPECT_NE(Text.find("witnesses"), std::string::npos);
  EXPECT_NE(Text.find(E.Witnesses.front().File), std::string::npos);
  EXPECT_NE(Text.find("decision"), std::string::npos);
  EXPECT_NE(Text.find(ViolationFeatureNames[0]), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Canonical report order (satellite: deterministic ordering)
//===----------------------------------------------------------------------===//

TEST(ReportOrder, TotalOrderPinsTieBreaks) {
  auto Mk = [](const char *File, uint32_t Line, const char *Orig,
               const char *Sugg, PatternKind K) {
    Report R;
    R.File = File;
    R.Line = Line;
    R.Original = Orig;
    R.Suggested = Sugg;
    R.Kind = K;
    return R;
  };
  Report A = Mk("a.py", 3, "name", "size", PatternKind::Consistency);
  Report SameLoc = Mk("a.py", 3, "other", "size", PatternKind::Consistency);
  Report SameName = Mk("a.py", 3, "name", "width", PatternKind::Consistency);
  Report LaterLine = Mk("a.py", 9, "aaa", "bbb", PatternKind::Consistency);
  Report OtherFile = Mk("b.py", 1, "aaa", "bbb", PatternKind::Consistency);

  // File first, then line, then original, then suggested.
  EXPECT_TRUE(reportOrderLess(A, OtherFile));
  EXPECT_TRUE(reportOrderLess(A, LaterLine));
  EXPECT_TRUE(reportOrderLess(LaterLine, OtherFile));
  EXPECT_TRUE(reportOrderLess(A, SameLoc));  // "name" < "other"
  EXPECT_TRUE(reportOrderLess(A, SameName)); // "size" < "width"
  EXPECT_FALSE(reportOrderLess(A, A));

  std::vector<Explanation> Findings(5);
  Findings[0].R = OtherFile;
  Findings[1].R = SameLoc;
  Findings[2].R = LaterLine;
  Findings[3].R = A;
  Findings[4].R = SameName;
  sortExplanations(Findings);
  EXPECT_EQ(Findings[0].R.Original, "name");
  EXPECT_EQ(Findings[0].R.Suggested, "size");
  EXPECT_EQ(Findings[1].R.Suggested, "width");
  EXPECT_EQ(Findings[2].R.Original, "other");
  EXPECT_EQ(Findings[3].R.Line, 9u);
  EXPECT_EQ(Findings[4].R.File, "b.py");
}

//===----------------------------------------------------------------------===//
// Thread-count byte-identity (acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(ExportDeterminism, ByteIdenticalAcrossThreadCounts) {
  auto BuildAndExport = [](unsigned Threads, std::string &Sarif,
                           std::string &Findings, std::string &Rendered) {
    corpus::CorpusConfig Config;
    Config.Lang = corpus::Language::Python;
    Config.NumRepos = 40;
    corpus::Corpus C = corpus::generateCorpus(Config);
    corpus::InspectionOracle Oracle(C);
    PipelineConfig PC;
    PC.Miner.MinPatternSupport = 20;
    PC.Threads = Threads;
    NamerPipeline P(PC);
    P.build(C);

    std::vector<size_t> Indices;
    std::vector<bool> Labels;
    collectBalancedLabels(P, Oracle, 80, /*Seed=*/1, Indices, Labels);
    std::vector<Violation> Labeled;
    for (size_t I : Indices)
      Labeled.push_back(P.violations()[I]);
    P.trainClassifier(Labeled, Labels);

    std::vector<Explanation> Es;
    for (const Violation &V : P.violations())
      Es.push_back(explainViolation(P, V));
    sortExplanations(Es);
    ExportMeta Meta;
    Sarif = sarifJson(Es, Meta);
    Findings = findingsJson(Es, Meta);
    Rendered.clear();
    for (const Explanation &E : Es)
      Rendered += renderExplanation(E);
  };

  std::string Sarif1, Findings1, Rendered1;
  std::string Sarif8, Findings8, Rendered8;
  BuildAndExport(1, Sarif1, Findings1, Rendered1);
  BuildAndExport(8, Sarif8, Findings8, Rendered8);
  EXPECT_EQ(Sarif1, Sarif8);
  EXPECT_EQ(Findings1, Findings8);
  EXPECT_EQ(Rendered1, Rendered8);
  EXPECT_TRUE(JsonChecker(Sarif1).valid());
  EXPECT_TRUE(JsonChecker(Findings1).valid());
  EXPECT_NE(Sarif1.find("\"version\": \"2.1.0\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Golden files (byte-exact exporters)
//===----------------------------------------------------------------------===//

namespace {

/// Two hand-built findings covering every branch of the exporters: a
/// consistency finding with classifier attribution and two witnesses, and
/// a confusing-word finding with word-pair evidence and no classifier.
std::vector<Explanation> goldenFindings() {
  Explanation Consistency;
  Consistency.R.File = "proj/widget.py";
  Consistency.R.Line = 27;
  Consistency.R.Original = "name";
  Consistency.R.Suggested = "size";
  Consistency.R.Kind = PatternKind::Consistency;
  Consistency.R.Confidence = 0.75;
  Consistency.Pattern.Id = 7;
  Consistency.Pattern.Kind = PatternKind::Consistency;
  Consistency.Pattern.Rendered =
      "Condition:\nDeduction:\n  Assign 0 NumST(1) 0 <eps>\n";
  Consistency.Pattern.Support = 2636;
  Consistency.Pattern.DatasetMatches = 3275;
  Consistency.Pattern.DatasetSatisfactions = 2636;
  Consistency.Pattern.DatasetViolations = 639;
  Consistency.Pattern.SatisfactionRate = 0.804885;
  Consistency.Pattern.ConditionSize = 0;
  Consistency.Witnesses.push_back(
      WitnessRef{"repo0/parser.py", 3, "total", "Assign 0 NumST(1) 0 total"});
  Consistency.Witnesses.push_back(
      WitnessRef{"repo0/parser.py", 6, "size", "Assign 0 NumST(1) 0 size"});
  Consistency.Attribution.Present = true;
  Consistency.Attribution.Model = "svm-linear";
  Consistency.Attribution.Bias = -0.25;
  Consistency.Attribution.Decision = 0.75;
  Consistency.Attribution.Contributions = {
      FeatureContribution{"stmt name paths", 4.0, 1.0, 0.5, 0.5},
      FeatureContribution{"edit distance", 2.0, 0.5, 1.0, 0.5},
  };

  Explanation Confusing;
  Confusing.R.File = "proj/loops.py";
  Confusing.R.Line = 19;
  Confusing.R.Original = "xrange";
  Confusing.R.Suggested = "range";
  Confusing.R.Kind = PatternKind::ConfusingWord;
  Confusing.R.Confidence = 0.0;
  Confusing.Pattern.Id = 127;
  Confusing.Pattern.Kind = PatternKind::ConfusingWord;
  Confusing.Pattern.Rendered =
      "Condition:\n  For 1 len\nDeduction:\n  For 0 range\n";
  Confusing.Pattern.Support = 602;
  Confusing.Pattern.DatasetMatches = 613;
  Confusing.Pattern.DatasetSatisfactions = 602;
  Confusing.Pattern.DatasetViolations = 11;
  Confusing.Pattern.SatisfactionRate = 0.982055;
  Confusing.Pattern.ConditionSize = 2;
  Confusing.Witnesses.push_back(
      WitnessRef{"repo1/util.py", 9, "range", "For 0 range"});
  Confusing.WordPair.Present = true;
  Confusing.WordPair.Mistaken = "xrange";
  Confusing.WordPair.Correct = "range";
  Confusing.WordPair.CommitCount = 4;

  std::vector<Explanation> Out;
  Out.push_back(std::move(Confusing)); // unsorted on purpose
  Out.push_back(std::move(Consistency));
  sortExplanations(Out);
  return Out;
}

ExportMeta goldenMeta() {
  ExportMeta Meta;
  Meta.Tool = "namer-scan";
  Meta.ToolVersion = "1.0.0";
  Meta.GitRev = "deadbeef";
  Meta.Lang = "python";
  Meta.UseClassifier = true;
  Meta.MaxReports = 50;
  return Meta;
}

} // namespace

TEST(ExportGolden, SarifBytes) {
  const std::string Expected = R"GOLD({
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "runs": [
    {
      "results": [
        {
          "level": "warning",
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "proj/loops.py"}, "region": {"startLine": 19}}}],
          "message": {"text": "'xrange' is suspicious here; suggested fix: 'range' [confusing-word]"},
          "properties": {"confidence": 0.000000, "original": "xrange", "suggested": "range", "witnesses": ["repo1/util.py:9 uses 'range'"]},
          "ruleId": "namer/confusing-word/0127",
          "ruleIndex": 1
        },
        {
          "level": "warning",
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "proj/widget.py"}, "region": {"startLine": 27}}}],
          "message": {"text": "'name' is suspicious here; suggested fix: 'size' [consistency]"},
          "properties": {"confidence": 0.750000, "original": "name", "suggested": "size", "witnesses": ["repo0/parser.py:3 uses 'total'", "repo0/parser.py:6 uses 'size'"]},
          "ruleId": "namer/consistency/0007",
          "ruleIndex": 0
        }
      ],
      "tool": {
        "driver": {
          "informationUri": "https://doi.org/10.1145/3453483.3454045",
          "name": "namer-scan",
          "rules": [
            {
              "fullDescription": {"text": "Statements matching this pattern's condition are expected to name its two deduction positions identically; mined from the corpus FP-tree and kept by pruneUncommon."},
              "help": {"text": "Condition:\nDeduction:\n  Assign 0 NumST(1) 0 <eps>\n"},
              "id": "namer/consistency/0007",
              "name": "ConsistencyPattern7",
              "properties": {"confidence": 0.804885, "datasetMatches": 3275, "datasetSatisfactions": 2636, "datasetViolations": 639, "support": 2636},
              "shortDescription": {"text": "consistency naming pattern #7"}
            },
            {
              "fullDescription": {"text": "Statements matching this pattern's condition are expected to use the mined correct word at the deduction position; the word pair comes from commit-history rename mining."},
              "help": {"text": "Condition:\n  For 1 len\nDeduction:\n  For 0 range\n"},
              "id": "namer/confusing-word/0127",
              "name": "ConfusingWordPattern127",
              "properties": {"confidence": 0.982055, "datasetMatches": 613, "datasetSatisfactions": 602, "datasetViolations": 11, "support": 602},
              "shortDescription": {"text": "confusing-word naming pattern #127"}
            }
          ],
          "version": "1.0.0"
        }
      }
    }
  ],
  "version": "2.1.0"
}
)GOLD";
  std::string Actual = sarifJson(goldenFindings(), goldenMeta());
  EXPECT_EQ(Actual, Expected);
  EXPECT_TRUE(JsonChecker(Actual).valid());
}

TEST(ExportGolden, FindingsBytes) {
  const std::string Expected = R"GOLD({
  "meta": {
    "config": {"lang": "python", "max_reports": 50, "use_classifier": true},
    "git_rev": "deadbeef",
    "quarantined_files": 0,
    "schema_version": 1,
    "tool": "namer-scan",
    "tool_version": "1.0.0"
  },
  "findings": [
    {
      "classifier": null,
      "confidence": 0.000000,
      "file": "proj/loops.py",
      "kind": "confusing-word",
      "line": 19,
      "original": "xrange",
      "pattern": {"condition_size": 2, "dataset_matches": 613, "dataset_satisfactions": 602, "dataset_violations": 11, "id": 127, "satisfaction_rate": 0.982055, "support": 602},
      "suggested": "range",
      "witnesses": [{"file": "repo1/util.py", "line": 9, "name": "range", "path": "For 0 range"}],
      "word_pair": {"commit_count": 4, "correct": "range", "mistaken": "xrange"}
    },
    {
      "classifier": {
        "bias": -0.250000,
        "contributions": [
          {"contribution": 0.500000, "feature": "stmt name paths", "standardized": 1.000000, "value": 4.000000, "weight": 0.500000},
          {"contribution": 0.500000, "feature": "edit distance", "standardized": 0.500000, "value": 2.000000, "weight": 1.000000}
        ],
        "decision": 0.750000,
        "model": "svm-linear"
      },
      "confidence": 0.750000,
      "file": "proj/widget.py",
      "kind": "consistency",
      "line": 27,
      "original": "name",
      "pattern": {"condition_size": 0, "dataset_matches": 3275, "dataset_satisfactions": 2636, "dataset_violations": 639, "id": 7, "satisfaction_rate": 0.804885, "support": 2636},
      "suggested": "size",
      "witnesses": [{"file": "repo0/parser.py", "line": 3, "name": "total", "path": "Assign 0 NumST(1) 0 total"}, {"file": "repo0/parser.py", "line": 6, "name": "size", "path": "Assign 0 NumST(1) 0 size"}],
      "word_pair": null
    }
  ]
}
)GOLD";
  std::string Actual = findingsJson(goldenFindings(), goldenMeta());
  EXPECT_EQ(Actual, Expected);
  EXPECT_TRUE(JsonChecker(Actual).valid());
}

TEST(ExportGolden, EmptyDocumentsAreValid) {
  std::vector<Explanation> None;
  std::string Sarif = sarifJson(None, goldenMeta());
  std::string Findings = findingsJson(None, goldenMeta());
  EXPECT_TRUE(JsonChecker(Sarif).valid());
  EXPECT_TRUE(JsonChecker(Findings).valid());
  EXPECT_NE(Sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(Findings.find("\"schema_version\": 1"), std::string::npos);
}
