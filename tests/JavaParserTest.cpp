//===- tests/JavaParserTest.cpp - Java frontend tests ---------------------==//

#include "frontend/java/JavaLexer.h"
#include "frontend/java/JavaParser.h"

#include "ast/Statements.h"

#include <gtest/gtest.h>

using namespace namer;
using namespace namer::java;

namespace {

std::string parseDump(std::string_view Source) {
  AstContext Ctx;
  ParseResult R = parseJava(Source, Ctx);
  EXPECT_TRUE(R.Errors.empty()) << "first error: "
                                << (R.Errors.empty() ? "" : R.Errors[0]);
  return R.Module.dump();
}

/// Wraps a statement in "class C { void m() { ... } }" and returns the
/// dumps of all sliced statements, one per line.
std::string stmtDump(std::string_view Stmt) {
  std::string Source = "class C { void m() { " + std::string(Stmt) + " } }";
  AstContext Ctx;
  ParseResult R = parseJava(Source, Ctx);
  EXPECT_TRUE(R.Errors.empty()) << "first error: "
                                << (R.Errors.empty() ? "" : R.Errors[0]);
  std::string Out;
  for (NodeId S : collectStatementRoots(R.Module)) {
    // The wrapper class/method headers are statements too; skip them so
    // tests focus on the statement under test.
    NodeKind Kind = R.Module.node(S).Kind;
    if (Kind == NodeKind::ClassDef || Kind == NodeKind::FunctionDef)
      continue;
    Tree Projected = projectStatement(R.Module, S);
    if (!Out.empty())
      Out += '\n';
    Out += Projected.dump();
  }
  return Out;
}

} // namespace

// --- Lexer ------------------------------------------------------------------

TEST(JavaLexer, CommentsSkipped) {
  auto R = lexJava("int x = 1; // line\n/* block\ncomment */ int y = 2;");
  ASSERT_TRUE(R.Errors.empty());
  int Names = 0;
  for (const auto &Tok : R.Tokens)
    Names += Tok.Kind == TokenKind::Name;
  EXPECT_EQ(Names, 4); // int x int y
}

TEST(JavaLexer, StringAndCharLiterals) {
  auto R = lexJava("String s = \"he\\\"llo\"; char c = '\\n';");
  ASSERT_TRUE(R.Errors.empty());
  bool SawString = false, SawChar = false;
  for (const auto &Tok : R.Tokens) {
    SawString |= Tok.Kind == TokenKind::String;
    SawChar |= Tok.Kind == TokenKind::CharLit;
  }
  EXPECT_TRUE(SawString && SawChar);
}

TEST(JavaLexer, NestedGenericsLexAsSingleAngles) {
  auto R = lexJava("Map<String, List<Integer>> m;");
  int SingleGt = 0;
  for (const auto &Tok : R.Tokens)
    SingleGt += Tok.Kind == TokenKind::Operator && Tok.Text == ">";
  EXPECT_EQ(SingleGt, 2);
}

TEST(JavaLexer, MultiCharOperators) {
  auto R = lexJava("a++; b--; c += 1; d && e || f; g != h;");
  bool SawInc = false, SawAndAnd = false, SawNe = false;
  for (const auto &Tok : R.Tokens) {
    SawInc |= Tok.Text == "++";
    SawAndAnd |= Tok.Text == "&&";
    SawNe |= Tok.Text == "!=";
  }
  EXPECT_TRUE(SawInc && SawAndAnd && SawNe);
}

// --- Parser: structure ------------------------------------------------------

TEST(JavaParser, ClassWithExtends) {
  EXPECT_EQ(parseDump("class Foo extends Bar {}"),
            "(Module (ClassDef Foo (BasesList (TypeRef Bar)) Body))");
}

TEST(JavaParser, FieldDeclaration) {
  EXPECT_EQ(parseDump("class C { private int count = 0; }"),
            "(Module (ClassDef C BasesList (Body (VarDecl (TypeRef int) "
            "(NameStore count) (Num 0)))))");
}

TEST(JavaParser, MethodWithParams) {
  EXPECT_EQ(
      parseDump("class C { public void set(String name, int v) {} }"),
      "(Module (ClassDef C BasesList (Body (FunctionDef set (ParamList "
      "(Param (TypeRef String) name) (Param (TypeRef int) v)) Body))))");
}

TEST(JavaParser, Constructor) {
  EXPECT_EQ(parseDump("class C { C(int x) { this.x = x; } }"),
            "(Module (ClassDef C BasesList (Body (FunctionDef C (ParamList "
            "(Param (TypeRef int) x)) (Body (ExprStmt (Assign "
            "(AttributeStore (NameLoad this) (Attr x)) (NameLoad x))))))))");
}

TEST(JavaParser, ImportsAndPackage) {
  EXPECT_EQ(parseDump("package com.example;\nimport java.util.List;\n"
                      "class C {}"),
            "(Module (Import java.util.List) (ClassDef C BasesList Body))");
}

// --- Parser: statements (Table 6 shapes) ------------------------------------

TEST(JavaParser, Table6GetStackTrace) {
  EXPECT_EQ(stmtDump("e.getStackTrace();"),
            "(Call (AttributeLoad (NameLoad e) (Attr getStackTrace)))");
}

TEST(JavaParser, Table6DoubleLoopIndex) {
  EXPECT_EQ(
      stmtDump("for (double i = 1; i < chainlength; i++) { }"),
      "(For (VarDecl (TypeRef double) (NameStore i) (Num 1)) "
      "(Compare (NameLoad i) < (NameLoad chainlength)) "
      "(UnaryOp (NameLoad i) ++))");
}

TEST(JavaParser, Table6CatchThrowable) {
  std::string Out = stmtDump("try { } catch (Throwable e) { }");
  EXPECT_EQ(Out, "(Catch (TypeRef Throwable) e)");
}

TEST(JavaParser, Table6StartActivity) {
  EXPECT_EQ(stmtDump("context.startActivity(i);"),
            "(Call (AttributeLoad (NameLoad context) (Attr startActivity)) "
            "(NameLoad i))");
}

TEST(JavaParser, LocalVarWithNew) {
  EXPECT_EQ(stmtDump("ConektaObject resource = new ConektaObject();"),
            "(VarDecl (TypeRef ConektaObject) (NameStore resource) "
            "(New (TypeRef ConektaObject)))");
}

TEST(JavaParser, ForEach) {
  EXPECT_EQ(stmtDump("for (String s : names) { }"),
            "(For (VarDecl (TypeRef String) (NameStore s)) "
            "(NameLoad names))");
}

TEST(JavaParser, GenericVarDecl) {
  EXPECT_EQ(stmtDump("Map<String, Integer> m = new HashMap<>();"),
            "(VarDecl (TypeRef Map (TypeRef String) (TypeRef Integer)) "
            "(NameStore m) (New (TypeRef HashMap)))");
}

TEST(JavaParser, ArrayDecl) {
  EXPECT_EQ(stmtDump("int[] xs = new int[10];"),
            "(VarDecl (TypeRef int []) (NameStore xs) "
            "(New (TypeRef int) (Num 10)))");
}

TEST(JavaParser, CastExpression) {
  EXPECT_EQ(stmtDump("Object o = (String) value;"),
            "(VarDecl (TypeRef Object) (NameStore o) "
            "(Cast (TypeRef String) (NameLoad value)))");
}

TEST(JavaParser, TernaryExpression) {
  EXPECT_EQ(stmtDump("int x = a ? b : c;"),
            "(VarDecl (TypeRef int) (NameStore x) (If (NameLoad a) "
            "(NameLoad b) (NameLoad c)))");
}

TEST(JavaParser, InstanceofCompare) {
  EXPECT_EQ(stmtDump("boolean b = o instanceof String;"),
            "(VarDecl (TypeRef boolean) (NameStore b) (Compare (NameLoad o) "
            "instanceof (TypeRef String)))");
}

TEST(JavaParser, WhileAndIf) {
  EXPECT_EQ(stmtDump("while (i < n) { i++; } if (x == y) { return; }"),
            "(While (Compare (NameLoad i) < (NameLoad n)))\n"
            "(UnaryOp (NameLoad i) ++)\n"
            "(If (Compare (NameLoad x) == (NameLoad y)))\n"
            "Return");
}

TEST(JavaParser, StringConcat) {
  EXPECT_EQ(stmtDump("String s = \"a\" + name;"),
            "(VarDecl (TypeRef String) (NameStore s) (BinOp (Str a) + "
            "(NameLoad name)))");
}

TEST(JavaParser, MultiDeclarators) {
  EXPECT_EQ(stmtDump("int a = 1, b = 2;"),
            "(VarDecl (TypeRef int) (NameStore a) (Num 1))\n"
            "(VarDecl (TypeRef int) (NameStore b) (Num 2))");
}

TEST(JavaParser, ErrorRecoveryContinues) {
  AstContext Ctx;
  ParseResult R =
      parseJava("class C { void m() { int x = ; int y = 2; } }", Ctx);
  EXPECT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Module.dump().find("(NameStore y) (Num 2)"),
            std::string::npos);
}

TEST(JavaParser, AnnotationsAndModifiersSkipped) {
  EXPECT_EQ(parseDump("class C { @Override public final void m() {} }"),
            "(Module (ClassDef C BasesList (Body (FunctionDef m ParamList "
            "Body))))");
}

TEST(JavaParser, EnumCoarse) {
  std::string Dump = parseDump("enum E { A, B, C; }");
  EXPECT_NE(Dump.find("ClassDef E"), std::string::npos);
  EXPECT_NE(Dump.find("A"), std::string::npos);
}
