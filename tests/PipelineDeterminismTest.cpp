//===- tests/PipelineDeterminismTest.cpp - thread-count determinism -------==//
//
// Satellite of the parallel-pipeline PR: the pipeline's contract is that
// reports, mined patterns, confusing pairs and classifier features are
// bitwise identical at Threads=1 and Threads=8 on the same corpus. The
// parallel stages compute against worker-local interners and commit
// sequentially in corpus order, so every global id assignment is
// schedule-independent; this test pins that property end to end.
//
//===----------------------------------------------------------------------===//

#include "namer/Pipeline.h"

#include <gtest/gtest.h>

#include <memory>

using namespace namer;

namespace {

struct BuiltPipeline {
  corpus::Corpus C;
  std::unique_ptr<NamerPipeline> Pipeline;
};

BuiltPipeline buildWithThreads(corpus::Language Lang, unsigned Threads) {
  BuiltPipeline Out;
  corpus::CorpusConfig Config;
  Config.Lang = Lang;
  Config.NumRepos = 40;
  Out.C = corpus::generateCorpus(Config);
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 20;
  PC.Threads = Threads;
  Out.Pipeline = std::make_unique<NamerPipeline>(PC);
  Out.Pipeline->build(Out.C);
  return Out;
}

void expectIdentical(const NamerPipeline &A, const NamerPipeline &B) {
  // Corpus coverage statistics.
  EXPECT_EQ(A.numFiles(), B.numFiles());
  EXPECT_EQ(A.numRepos(), B.numRepos());
  EXPECT_EQ(A.numParseErrors(), B.numParseErrors());
  EXPECT_EQ(A.numFilesWithViolations(), B.numFilesWithViolations());
  EXPECT_EQ(A.numReposWithViolations(), B.numReposWithViolations());

  // Statements, in order: location, fingerprint, and interned path ids
  // (ids, not just renderings -- the commit step fixes id assignment).
  ASSERT_EQ(A.statements().size(), B.statements().size());
  for (size_t I = 0; I != A.statements().size(); ++I) {
    const StmtRecord &SA = A.statements()[I];
    const StmtRecord &SB = B.statements()[I];
    ASSERT_EQ(SA.File, SB.File);
    ASSERT_EQ(SA.Repo, SB.Repo);
    ASSERT_EQ(SA.Line, SB.Line);
    ASSERT_EQ(SA.TextHash, SB.TextHash);
    ASSERT_EQ(SA.Paths.Paths, SB.Paths.Paths);
  }

  // Mined patterns, in order, rendered and raw.
  ASSERT_EQ(A.patterns().size(), B.patterns().size());
  for (size_t I = 0; I != A.patterns().size(); ++I) {
    const NamePattern &PA = A.patterns()[I];
    const NamePattern &PB = B.patterns()[I];
    ASSERT_TRUE(PA == PB) << "pattern " << I;
    ASSERT_EQ(PA.Support, PB.Support);
    ASSERT_EQ(PA.DatasetMatches, PB.DatasetMatches);
    ASSERT_EQ(PA.DatasetSatisfactions, PB.DatasetSatisfactions);
    ASSERT_EQ(PA.DatasetViolations, PB.DatasetViolations);
    ASSERT_EQ(
        formatPattern(PA, A.table(),
                      const_cast<NamerPipeline &>(A).context()),
        formatPattern(PB, B.table(),
                      const_cast<NamerPipeline &>(B).context()))
        << "pattern rendering " << I;
  }

  // Confusing word pairs with counts, most frequent first.
  std::vector<ConfusingPair> PairsA = A.pairs().pairs();
  std::vector<ConfusingPair> PairsB = B.pairs().pairs();
  ASSERT_EQ(PairsA.size(), PairsB.size());
  for (size_t I = 0; I != PairsA.size(); ++I) {
    EXPECT_EQ(PairsA[I].Mistaken, PairsB[I].Mistaken);
    EXPECT_EQ(PairsA[I].Correct, PairsB[I].Correct);
    EXPECT_EQ(PairsA[I].Count, PairsB[I].Count);
  }

  // Violations and their rendered reports, in order.
  ASSERT_EQ(A.violations().size(), B.violations().size());
  for (size_t I = 0; I != A.violations().size(); ++I) {
    const Violation &VA = A.violations()[I];
    const Violation &VB = B.violations()[I];
    ASSERT_EQ(VA.Stmt, VB.Stmt);
    ASSERT_EQ(VA.Pattern, VB.Pattern);
    Report RA = A.makeReport(VA);
    Report RB = B.makeReport(VB);
    EXPECT_EQ(RA.File, RB.File);
    EXPECT_EQ(RA.Line, RB.Line);
    EXPECT_EQ(RA.Original, RB.Original);
    EXPECT_EQ(RA.Suggested, RB.Suggested);
    EXPECT_EQ(RA.Kind, RB.Kind);

    // Classifier features are doubles computed from the shared statistics;
    // bitwise equality, not approximate.
    EXPECT_EQ(A.features(VA), B.features(VB)) << "feature vector " << I;
  }
}

} // namespace

TEST(PipelineDeterminism, PythonReportsIdenticalAcrossThreadCounts) {
  BuiltPipeline One = buildWithThreads(corpus::Language::Python, 1);
  BuiltPipeline Eight = buildWithThreads(corpus::Language::Python, 8);
  expectIdentical(*One.Pipeline, *Eight.Pipeline);
}

TEST(PipelineDeterminism, JavaReportsIdenticalAcrossThreadCounts) {
  BuiltPipeline One = buildWithThreads(corpus::Language::Java, 1);
  BuiltPipeline Three = buildWithThreads(corpus::Language::Java, 3);
  expectIdentical(*One.Pipeline, *Three.Pipeline);
}
