//===- tests/ClassifierTest.cpp - feature/classifier tests ----------------==//

#include "classifier/DefectClassifier.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace namer;

// --- DatasetIndex --------------------------------------------------------------

TEST(DatasetIndex, CountsIdenticalStatements) {
  DatasetIndex Index;
  StmtRecord A;
  A.File = 1;
  A.Repo = 7;
  A.TextHash = 0xABC;
  Index.addStatement(A, {});
  Index.addStatement(A, {});
  StmtRecord B = A;
  B.File = 2; // same repo, different file
  Index.addStatement(B, {});

  EXPECT_EQ(Index.identicalInFile(1, 0xABC), 2u);
  EXPECT_EQ(Index.identicalInFile(2, 0xABC), 1u);
  EXPECT_EQ(Index.identicalInRepo(7, 0xABC), 3u);
  EXPECT_EQ(Index.identicalInFile(3, 0xABC), 0u);
}

TEST(DatasetIndex, AccumulatesPatternCounts) {
  DatasetIndex Index;
  StmtRecord S;
  S.File = 1;
  S.Repo = 2;
  S.TextHash = 1;
  Index.addStatement(S, {{0, MatchResult::Satisfied},
                         {1, MatchResult::Violated}});
  Index.addStatement(S, {{0, MatchResult::Violated}});

  PatternCounts P0File = Index.fileCounts(0, 1);
  EXPECT_EQ(P0File.Matches, 2u);
  EXPECT_EQ(P0File.Satisfactions, 1u);
  EXPECT_EQ(P0File.Violations, 1u);
  PatternCounts P1Repo = Index.repoCounts(1, 2);
  EXPECT_EQ(P1Repo.Matches, 1u);
  EXPECT_EQ(P1Repo.Violations, 1u);
  EXPECT_EQ(Index.fileCounts(5, 1).Matches, 0u);
}

// --- DefectClassifier ----------------------------------------------------------

namespace {

/// Synthetic violation features: true issues have small edit distance and
/// high file-level satisfaction rate, false positives the opposite, with
/// overlap so the problem is nontrivial.
void makeLabeledFeatures(size_t N, uint64_t Seed,
                         std::vector<std::vector<double>> &X,
                         std::vector<bool> &Y) {
  Rng G(Seed);
  for (size_t I = 0; I != N; ++I) {
    bool IsTrue = I % 2 == 0;
    std::vector<double> F(NumViolationFeatures, 0.0);
    F[0] = 5 + G.bounded(5);
    F[1] = 1;
    F[2] = IsTrue ? 1 : 1 + G.bounded(4);
    F[3] = IsTrue ? 0.8 + 0.2 * G.uniform() : 0.3 * G.uniform();
    F[4] = F[3];
    F[5] = 0.9;
    F[6] = IsTrue ? 1 : 2 + G.bounded(5);
    F[15] = IsTrue ? 1 + G.bounded(2) : 3 + G.bounded(4);
    F[16] = IsTrue && G.chance(0.7) ? 1.0 : 0.0;
    // Noise features.
    F[13] = G.bounded(5);
    F[14] = G.uniform();
    X.push_back(std::move(F));
    Y.push_back(IsTrue);
  }
}

} // namespace

TEST(DefectClassifier, LearnsSeparableViolations) {
  std::vector<std::vector<double>> X;
  std::vector<bool> Y;
  makeLabeledFeatures(120, 5, X, Y);
  DefectClassifier C;
  ml::Metrics M = C.train(X, Y);
  EXPECT_GT(M.Accuracy, 0.8);
  EXPECT_FALSE(C.selectedFamily().empty());
  // In-sample predictions should be mostly right.
  size_t Correct = 0;
  for (size_t I = 0; I != X.size(); ++I)
    Correct += C.predict(X[I]) == Y[I];
  EXPECT_GT(Correct, X.size() * 8 / 10);
}

TEST(DefectClassifier, FixedFamilySkipsSelection) {
  std::vector<std::vector<double>> X;
  std::vector<bool> Y;
  makeLabeledFeatures(80, 9, X, Y);
  DefectClassifier::Config Config;
  Config.ModelFamily = "logreg";
  DefectClassifier C(Config);
  C.train(X, Y);
  EXPECT_EQ(C.selectedFamily(), "logreg");
  EXPECT_EQ(C.selectionResults().size(), 1u);
}

TEST(DefectClassifier, FeatureWeightsMatchDecision) {
  std::vector<std::vector<double>> X;
  std::vector<bool> Y;
  makeLabeledFeatures(100, 11, X, Y);
  DefectClassifier C;
  C.train(X, Y);
  std::vector<double> W = C.featureWeights();
  ASSERT_EQ(W.size(), NumViolationFeatures);
  // Decision = W . standardized(x) + bias must track decision() ordering:
  // take two inputs and check the same ranking.
  double D0 = C.decision(X[0]);
  double D1 = C.decision(X[1]);
  EXPECT_NE(D0, D1);
  // The informative satisfaction-rate feature should push toward "true".
  EXPECT_GT(W[3], 0.0);
}

TEST(DefectClassifier, PcaReductionStillLearns) {
  std::vector<std::vector<double>> X;
  std::vector<bool> Y;
  makeLabeledFeatures(120, 13, X, Y);
  DefectClassifier::Config Config;
  Config.PcaComponents = 6;
  DefectClassifier C(Config);
  ml::Metrics M = C.train(X, Y);
  EXPECT_GT(M.Accuracy, 0.75);
  // Back-projected weights still cover all 17 features.
  EXPECT_EQ(C.featureWeights().size(), NumViolationFeatures);
}

TEST(Features, NamesAreAligned) {
  // Guard against reordering Table 1.
  EXPECT_STREQ(ViolationFeatureNames[0], "stmt name paths");
  EXPECT_STREQ(ViolationFeatureNames[3], "satisfaction rate (file)");
  EXPECT_STREQ(ViolationFeatureNames[12], "targets function name");
  EXPECT_STREQ(ViolationFeatureNames[16], "is confusing pair");
}
