#!/usr/bin/env python3
"""Regenerates the adversarial model-store files in this directory.

Each file trips exactly one layer of namer::model::parse's validation
(src/namer/ModelStore.h documents the format). The files are tiny and
hand-crafted -- no valid model is needed to produce them -- and they are
committed so the robustness suite replays identical bytes on every run.
They assume a little-endian host (the reference CI/container platform):
`marker` below is the byte image a little-endian writer produces.
"""
import struct
from pathlib import Path

HERE = Path(__file__).parent
MAGIC = b"NAMRMDL1"
# kEndianMarker 0x01020304 as written by a little-endian host.
MARKER = struct.pack("<I", 0x01020304)
VERSION = struct.pack("<I", 1)
RESERVED = struct.pack("<I", 0)


def header(nsections, version=VERSION, marker=MARKER):
    return MAGIC + marker + version + struct.pack("<I", nsections) + RESERVED


def entry(sec_id, offset, length, checksum):
    return struct.pack("<QQQQ", sec_id, offset, length, checksum)


def fnv1a(data):
    h = 0xCBF29CE484222325
    for b in data:
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def write(name, data):
    (HERE / name).write_bytes(data)
    print(f"wrote {name}: {len(data)} bytes")


# Not a model file at all.
write("bad_magic.nmr", b"NOTMODEL" + bytes(64))

# Produced on a byte-swapped (big-endian) host: its native-order marker
# reads back as 0x04030201 here.
write("bad_endian.nmr",
      MAGIC + struct.pack(">I", 0x01020304) + VERSION +
      struct.pack("<I", 0) + RESERVED)

# A future schema this loader does not speak.
write("bad_version.nmr", header(0, version=struct.pack("<I", 99)))

# Claims seven sections, ends immediately after the header.
write("truncated.nmr", header(7))

# One well-formed table entry whose payload bytes do not hash to the
# recorded checksum (a flipped bit in the payload).
payload = b"meta-bytes-after-bitflip"
write("bad_checksum.nmr",
      header(1) + entry(1, 24 + 32, len(payload), fnv1a(payload) ^ 0x40) +
      payload)
