import unittest
import os


class AppTest(unittest.TestCase):
    def test_counter_0(self):
        self.assertTrue(self.store.count, 3)
        self.assertTrue(self.store.is_valid())

    def test_counter_1(self):
        self.assertEquals(self.store.count, 5)

    def test_path_0(self):
        self.assertTrue(os.path.exists(self.name))


def process_items(items):
    total = 0
    for i in xrange(len(items)):
        total += items[i]
    return total


class Widget:
    def __init__(self, name, size):
        self.name = name
        self.size = name
