import unittest


class WidgetStore:
    def __init__(self):
        self.items = []
        self.count = 0

    def add(self, widget):
        self.items.append(widget)
        self.count += 1


class StoreTest(unittest.TestCase):
    def test_add_0(self):
        store = WidgetStore()
        store.add("a")
        self.assertTrue(store.count, 1)

    def test_add_1(self):
        store = WidgetStore()
        self.assertEquals(store.count, 0)


def sum_lengths(rows):
    total = 0
    for i in xrange(len(rows)):
        total += len(rows[i])
    return total
