class C {
  /* comment never closed
