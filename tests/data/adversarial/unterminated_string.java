class C {
  String s = "never closed;
}
