x = "never closed
y = 2
z = "also open
