//===- tests/ServiceTest.cpp - fault-tolerant scan service ----------------==//
//
// Pins the scan-service contract (DESIGN.md, "Scan service"):
//
//   * admission control sheds load with typed reasons (queue depth,
//     per-tenant budget, payload size, draining) and releases slots;
//   * the wire protocol round-trips requests and renders responses with
//     sorted keys, byte-stably;
//   * the model manager hot-swaps atomically -- failed swaps keep the old
//     snapshot current, retries back off, in-flight pins survive;
//   * a served scan's report lines are byte-identical to a direct
//     pipeline run over the same input (the namer-scan identity);
//   * deadlines and drain turn into typed responses, never aborts;
//   * the chaos soak: >= 200 concurrent requests against a hot-swapping
//     model, with faults firing at serve.admit / serve.scan / model.swap
//     when NAMER_FAULT_INJECTION is on, all receive exactly one
//     well-formed typed response, and a clean request afterwards is
//     byte-identical to one from before the storm.
//
//===----------------------------------------------------------------------===//

#include "namer/Pipeline.h"
#include "namer/ScanRun.h"
#include "service/Admission.h"
#include "service/ModelManager.h"
#include "service/Protocol.h"
#include "service/ScanService.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace namer;
using namespace namer::service;

namespace {

/// Per-process temp path: ctest runs each test in its own process, often
/// in parallel, so shared fixture files must not collide across them.
std::string tempPath(const char *Name) {
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + Name))
      .string();
}

/// The mine-time corpus every service test shares. Small enough to mine in
/// well under a second, big enough to produce patterns and violations.
corpus::CorpusConfig baseCorpusConfig() {
  corpus::CorpusConfig Config;
  Config.Lang = corpus::Language::Python;
  Config.NumRepos = 40;
  return Config;
}

PipelineConfig minerConfig() {
  PipelineConfig PC;
  PC.Miner.MinPatternSupport = 20;
  PC.Threads = 1;
  return PC;
}

/// Mines a model over the shared corpus and saves it to \p Path once per
/// process; returns the path. Every service test loads this file.
const std::string &sharedModelPath() {
  static const std::string Path = [] {
    std::string P = tempPath("service_test_model.namrmdl");
    corpus::Corpus C = corpus::generateCorpus(baseCorpusConfig());
    NamerPipeline Miner(minerConfig());
    Miner.build(C);
    Miner.saveModel(P);
    return P;
  }();
  return Path;
}

/// Inline request payload: the bytes of a mine-time corpus file that holds
/// at least one violation, served under a fresh path. The same content on
/// the same model must produce the same findings from any front end.
struct InlinePayload {
  std::string Path = "request/app.py";
  std::string Content;
};

const InlinePayload &sharedPayload() {
  static const InlinePayload P = [] {
    InlinePayload Out;
    corpus::Corpus C = corpus::generateCorpus(baseCorpusConfig());
    NamerPipeline Miner(minerConfig());
    Miner.build(C);
    std::string ViolatingFile;
    if (!Miner.violations().empty()) {
      const Report R =
          explainViolation(Miner, Miner.violations().front()).R;
      ViolatingFile = R.File;
    }
    for (const corpus::Repository &Repo : C.Repos)
      for (const corpus::SourceFile &F : Repo.Files)
        if (F.Path == ViolatingFile || Out.Content.empty())
          Out.Content = std::string(F.contents());
    return Out;
  }();
  return P;
}

ServiceConfig serviceConfig() {
  ServiceConfig SC;
  SC.ModelPath = sharedModelPath();
  SC.Lang = corpus::Language::Python;
  SC.BaseCorpus = baseCorpusConfig();
  SC.ScanWorkers = 4;
  return SC;
}

Request scanRequest(std::string Id) {
  Request R;
  R.Id = std::move(Id);
  R.Method = "scan";
  R.Files.push_back({sharedPayload().Path, sharedPayload().Content});
  return R;
}

/// Submits \p R and blocks for its response.
Response submitAndWait(ScanService &S, Request R) {
  std::mutex M;
  std::condition_variable Cv;
  bool Got = false;
  Response Out;
  S.submit(std::move(R), [&](Response Resp) {
    std::lock_guard<std::mutex> L(M);
    Out = std::move(Resp);
    Got = true;
    Cv.notify_one();
  });
  std::unique_lock<std::mutex> L(M);
  Cv.wait(L, [&] { return Got; });
  return Out;
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(AdmissionTest, QueueDepthGate) {
  AdmissionConfig C;
  C.MaxQueueDepth = 2;
  C.MaxPerTenant = 2;
  AdmissionController A(C);
  EXPECT_EQ(A.admit("a", 0, 0), AdmitResult::Admitted);
  EXPECT_EQ(A.admit("b", 0, 0), AdmitResult::Admitted);
  EXPECT_EQ(A.admit("c", 0, 0), AdmitResult::QueueFull);
  A.release("a");
  EXPECT_EQ(A.admit("c", 0, 0), AdmitResult::Admitted);
  EXPECT_EQ(A.inFlight(), 2u);
}

TEST(AdmissionTest, PerTenantBudget) {
  AdmissionConfig C;
  C.MaxQueueDepth = 8;
  C.MaxPerTenant = 1;
  AdmissionController A(C);
  EXPECT_EQ(A.admit("ci", 0, 0), AdmitResult::Admitted);
  EXPECT_EQ(A.admit("ci", 0, 0), AdmitResult::TenantOverBudget);
  // Another tenant still fits; the anonymous tenant is its own bucket.
  EXPECT_EQ(A.admit("dev", 0, 0), AdmitResult::Admitted);
  EXPECT_EQ(A.admit("", 0, 0), AdmitResult::Admitted);
  A.release("ci");
  EXPECT_EQ(A.admit("ci", 0, 0), AdmitResult::Admitted);
}

TEST(AdmissionTest, PayloadBudgetAndDraining) {
  AdmissionConfig C;
  C.MaxRequestBytes = 100;
  C.MaxRequestFiles = 2;
  AdmissionController A(C);
  EXPECT_EQ(A.admit("", 101, 1), AdmitResult::RequestTooLarge);
  EXPECT_EQ(A.admit("", 10, 3), AdmitResult::RequestTooLarge);
  EXPECT_EQ(A.admit("", 10, 2), AdmitResult::Admitted);
  A.setDraining(true);
  EXPECT_EQ(A.admit("", 0, 0), AdmitResult::Draining);
  A.setDraining(false);
  EXPECT_EQ(A.admit("", 0, 0), AdmitResult::Admitted);
}

TEST(AdmissionTest, ResultNamesAreKebabCase) {
  EXPECT_STREQ(admitResultName(AdmitResult::Admitted), "admitted");
  EXPECT_STREQ(admitResultName(AdmitResult::QueueFull), "queue-full");
  EXPECT_STREQ(admitResultName(AdmitResult::TenantOverBudget),
               "tenant-over-budget");
  EXPECT_STREQ(admitResultName(AdmitResult::RssPressure), "rss-pressure");
  EXPECT_STREQ(admitResultName(AdmitResult::RequestTooLarge),
               "request-too-large");
  EXPECT_STREQ(admitResultName(AdmitResult::Draining), "draining");
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, ParsesScanRequest) {
  Request R;
  std::string Error;
  ASSERT_TRUE(parseRequest(
      R"({"id":"r1","method":"scan","tenant":"ci","deadline_ms":250,)"
      R"("files":[{"path":"a.py","content":"x = 1\n"}],"max_reports":7})",
      R, &Error))
      << Error;
  EXPECT_EQ(R.Id, "r1");
  EXPECT_EQ(R.Method, "scan");
  EXPECT_EQ(R.Tenant, "ci");
  EXPECT_EQ(R.DeadlineMs, 250u);
  ASSERT_EQ(R.Files.size(), 1u);
  EXPECT_EQ(R.Files[0].Path, "a.py");
  EXPECT_EQ(R.Files[0].Content, "x = 1\n");
  EXPECT_EQ(R.MaxReports, 7u);
}

TEST(ProtocolTest, AbsentDeadlineIsSentinelExplicitZeroIsZero) {
  Request R;
  ASSERT_TRUE(parseRequest(
      R"({"id":"a","method":"scan","dir":"/tmp"})", R, nullptr));
  EXPECT_EQ(R.DeadlineMs, kNoDeadline);
  Request Z;
  ASSERT_TRUE(parseRequest(
      R"({"id":"z","method":"scan","dir":"/tmp","deadline_ms":0})", Z,
      nullptr));
  EXPECT_EQ(Z.DeadlineMs, 0u);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  Request R;
  std::string Error;
  // Not JSON at all.
  EXPECT_FALSE(parseRequest("not json", R, &Error));
  // No method.
  EXPECT_FALSE(parseRequest(R"({"id":"r1"})", R, &Error));
  // Scan without dir or files.
  EXPECT_FALSE(parseRequest(R"({"id":"r1","method":"scan"})", R, &Error));
  // Both dir and files.
  EXPECT_FALSE(parseRequest(
      R"({"id":"r1","method":"scan","dir":"/tmp",)"
      R"("files":[{"path":"a.py","content":""}]})",
      R, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProtocolTest, RendersResponsesSortedAndByteStable) {
  Response Ok;
  Ok.Id = "r1";
  Ok.St = Status::Ok;
  Ok.Reports = {"a.py:1: naming issue: 'x' is suspicious here; "
                "suggested fix: 'y' [consistency]"};
  EXPECT_EQ(renderResponse(Ok),
            "{\"id\":\"r1\",\"reports\":[\"a.py:1: naming issue: 'x' is "
            "suspicious here; suggested fix: 'y' "
            "[consistency]\"],\"status\":\"ok\"}\n");

  Response Rej;
  Rej.Id = "r2";
  Rej.St = Status::Overloaded;
  Rej.Detail = "queue-full";
  EXPECT_EQ(renderResponse(Rej),
            "{\"detail\":\"queue-full\",\"id\":\"r2\","
            "\"status\":\"overloaded\"}\n");
}

TEST(ProtocolTest, StatusNamesAreTyped) {
  EXPECT_STREQ(statusName(Status::Ok), "ok");
  EXPECT_STREQ(statusName(Status::Overloaded), "overloaded");
  EXPECT_STREQ(statusName(Status::DeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(statusName(Status::Cancelled), "cancelled");
  EXPECT_STREQ(statusName(Status::InvalidRequest), "invalid-request");
  EXPECT_STREQ(statusName(Status::ModelError), "model-error");
  EXPECT_STREQ(statusName(Status::Fault), "fault");
  EXPECT_STREQ(statusName(Status::ShuttingDown), "shutting-down");
}

//===----------------------------------------------------------------------===//
// Model manager
//===----------------------------------------------------------------------===//

TEST(ModelManagerTest, LoadsAndSwaps) {
  ModelManager::Options O;
  O.Path = sharedModelPath();
  ModelManager M(O);
  M.loadInitial();
  std::shared_ptr<const ModelSnapshot> First = M.current();
  ASSERT_TRUE(First);
  EXPECT_EQ(First->Version, 1u);

  ASSERT_TRUE(M.swapNow());
  std::shared_ptr<const ModelSnapshot> Second = M.current();
  EXPECT_EQ(Second->Version, 2u);
  EXPECT_EQ(M.swaps(), 1u);
  // The pinned first snapshot is still alive and untouched: in-flight
  // scans keep the model they started with.
  EXPECT_EQ(First->Version, 1u);
  EXPECT_FALSE(First->File.Patterns.empty());
}

TEST(ModelManagerTest, FailedSwapKeepsPreviousSnapshot) {
  // A private copy of the model, corrupted after the initial load.
  std::string Path = tempPath("service_test_swapfail.namrmdl");
  std::filesystem::copy_file(
      sharedModelPath(), Path,
      std::filesystem::copy_options::overwrite_existing);
  std::vector<unsigned> Sleeps;
  ModelManager::Options O;
  O.Path = Path;
  O.MaxRetries = 3;
  O.BackoffBaseMs = 10;
  O.BackoffSleep = [&Sleeps](unsigned Ms) { Sleeps.push_back(Ms); };
  ModelManager M(O);
  M.loadInitial();
  std::shared_ptr<const ModelSnapshot> Good = M.current();

  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      << "NOT A MODEL";
  EXPECT_FALSE(M.swapNow());
  // The bad file never became current; the failure was counted; each of
  // the three attempts but the last backed off exponentially.
  EXPECT_EQ(M.current().get(), Good.get());
  EXPECT_EQ(M.swapFailures(), 1u);
  EXPECT_EQ(Sleeps, (std::vector<unsigned>{10, 20}));
}

TEST(ModelManagerTest, PollSwapsOnMtimeChangeOnly) {
  std::string Path = tempPath("service_test_poll.namrmdl");
  std::filesystem::copy_file(
      sharedModelPath(), Path,
      std::filesystem::copy_options::overwrite_existing);
  ModelManager::Options O;
  O.Path = Path;
  ModelManager M(O);
  M.loadInitial();
  EXPECT_FALSE(M.pollAndSwap()) << "unchanged mtime must not swap";
  // Rewrite the file (same bytes, new mtime) far enough in the future
  // that coarse filesystem timestamps cannot alias.
  std::filesystem::last_write_time(
      Path, std::filesystem::file_time_type::clock::now() +
                std::chrono::seconds(5));
  EXPECT_TRUE(M.pollAndSwap());
  EXPECT_EQ(M.current()->Version, 2u);
  EXPECT_FALSE(M.pollAndSwap()) << "poll after swap must be a no-op";
}

TEST(ModelManagerTest, InitialLoadFailureIsTypedAndFatal) {
  ModelManager::Options O;
  O.Path = tempPath("service_test_missing.namrmdl");
  std::filesystem::remove(O.Path);
  O.BackoffSleep = [](unsigned) {};
  ModelManager M(O);
  EXPECT_THROW(M.loadInitial(), model::ModelError);
}

//===----------------------------------------------------------------------===//
// Scan service
//===----------------------------------------------------------------------===//

/// The namer-scan identity: a served clean request's report lines equal a
/// direct loadModel+scanWith+selectFindings run over the same input, byte
/// for byte.
TEST(ScanServiceTest, ServedReportsMatchDirectPipeline) {
  ScanService S(serviceConfig());
  S.start();
  Response Served = submitAndWait(S, scanRequest("identity"));
  ASSERT_EQ(Served.St, Status::Ok) << Served.Detail;

  // The direct run: same model, same base corpus, same inline file.
  std::shared_ptr<const ModelSnapshot> Snap = S.models().current();
  PipelineConfig PC;
  PC.UseAnalyses = Snap->File.UseAnalyses;
  PC.UseClassifier = Snap->File.UseClassifier;
  PC.Seed = Snap->File.Seed;
  PC.Miner = Snap->File.Miner;
  PC.Limits = Snap->File.Limits;
  PC.Threads = 1;
  corpus::Corpus C = corpus::generateCorpus(baseCorpusConfig());
  corpus::Repository Mine;
  Mine.Name = "<inline>";
  corpus::SourceFile F;
  F.Path = sharedPayload().Path;
  F.Text = sharedPayload().Content;
  Mine.Files.push_back(std::move(F));
  C.Repos.push_back(std::move(Mine));

  NamerPipeline P(PC);
  P.loadModel(sharedModelPath());
  P.scanWith(C, /*UseCache=*/true);
  FindingSelectOptions Sel;
  Sel.OnlyPaths.push_back(sharedPayload().Path);
  Sel.UseClassifier = Snap->File.UseClassifier;
  std::vector<std::string> Direct;
  for (const Explanation &E : selectFindings(P, Sel)) {
    std::string Line = renderReportLine(E.R);
    if (!Line.empty() && Line.back() == '\n')
      Line.pop_back();
    Direct.push_back(std::move(Line));
  }
  EXPECT_EQ(Served.Reports, Direct);
}

TEST(ScanServiceTest, ExplicitZeroDeadlineTripsDeterministically) {
  ScanService S(serviceConfig());
  S.start();
  Request R = scanRequest("dl0");
  R.DeadlineMs = 0; // already elapsed: first checkpoint trips
  Response Resp = submitAndWait(S, std::move(R));
  EXPECT_EQ(Resp.St, Status::DeadlineExceeded);
  EXPECT_TRUE(Resp.Reports.empty()) << "partial work must be discarded";
}

TEST(ScanServiceTest, ShedsTypedWhenQueueFull) {
  ServiceConfig SC = serviceConfig();
  SC.Admission.MaxQueueDepth = 0; // every request sheds
  ScanService S(SC);
  S.start();
  Response Resp = submitAndWait(S, scanRequest("shed"));
  EXPECT_EQ(Resp.St, Status::Overloaded);
  EXPECT_EQ(Resp.Detail, "queue-full");
}

TEST(ScanServiceTest, DirRequestOnMissingTreeIsInvalid) {
  ScanService S(serviceConfig());
  S.start();
  Request R;
  R.Id = "nodir";
  R.Method = "scan";
  R.Dir = tempPath("service_test_no_such_dir");
  Response Resp = submitAndWait(S, std::move(R));
  EXPECT_EQ(Resp.St, Status::InvalidRequest);
}

TEST(ScanServiceTest, DrainRejectsNewWorkTyped) {
  ScanService S(serviceConfig());
  S.start();
  EXPECT_EQ(S.drain(/*MaxWaitMs=*/0), 0u) << "nothing in flight";
  Response Resp = submitAndWait(S, scanRequest("late"));
  EXPECT_EQ(Resp.St, Status::ShuttingDown);
  EXPECT_EQ(Resp.Detail, "draining");
}

//===----------------------------------------------------------------------===//
// The chaos soak
//===----------------------------------------------------------------------===//

/// >= 200 concurrent requests from 8 client threads against a model that
/// is hot-swapped throughout, with (under NAMER_FAULT_INJECTION) seeded
/// faults firing at serve.admit, serve.scan and model.swap. Every request
/// must receive exactly one well-formed typed response; the process must
/// never abort; and once the storm is over, a clean request must be
/// byte-identical to one served before it.
TEST(ScanServiceTest, ChaosSoak) {
  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 26; // 208 requests total
  ServiceConfig SC = serviceConfig();
  // Queue deep enough for the whole storm: the typed shedding in the mix
  // comes from the per-tenant budget (the open-loop clients burst far
  // past 4 in flight per tenant), which keeps every *deadline* request --
  // sent under its own one-shot tenant -- admissible, so the
  // deadline-exceeded path is guaranteed to appear in the soak.
  SC.Admission.MaxQueueDepth = 256;
  SC.Admission.MaxPerTenant = 4;
  ScanService S(SC);
  S.start();

  Response Before = submitAndWait(S, scanRequest("before"));
  ASSERT_EQ(Before.St, Status::Ok) << Before.Detail;

  if (faultinject::compiledIn()) {
    faultinject::armSeeded("serve.admit", /*Seed=*/20210620, /*Rate=*/0.1,
                           faultinject::FaultKind::Throw);
    faultinject::armSeeded("serve.scan", /*Seed=*/20210621, /*Rate=*/0.1,
                           faultinject::FaultKind::Throw);
    faultinject::armSeeded("model.swap", /*Seed=*/20210622, /*Rate=*/0.3,
                           faultinject::FaultKind::Throw);
  }

  std::mutex M;
  std::vector<Response> Responses;
  std::atomic<size_t> Outstanding{0};
  std::atomic<bool> StopSwapping{false};

  // The hot-swapper: re-publishes the model as fast as it can. Under
  // injection, model.swap Throw faults exercise the retry/backoff path;
  // failed swaps must keep the previous snapshot serving.
  std::thread Swapper([&] {
    while (!StopSwapping.load(std::memory_order_acquire)) {
      S.models().swapNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> Clients;
  for (size_t C = 0; C != kClients; ++C) {
    Clients.emplace_back([&, C] {
      for (size_t I = 0; I != kPerClient; ++I) {
        // Built with += to sidestep GCC 12's -Wrestrict false positive
        // on chained const char* + std::string concatenation.
        std::string Id = "c";
        Id += std::to_string(C);
        Id += '-';
        Id += std::to_string(I);
        Request R = scanRequest(Id);
        R.Tenant = "tenant" + std::to_string(C % 3);
        if (I % 5 == 4) {
          R.DeadlineMs = 0; // deterministic deadline trips in the mix
          R.Tenant = "dl-" + Id; // one-shot tenant: never budget-shed
        }
        Outstanding.fetch_add(1, std::memory_order_relaxed);
        S.submit(std::move(R), [&](Response Resp) {
          std::lock_guard<std::mutex> L(M);
          Responses.push_back(std::move(Resp));
          Outstanding.fetch_sub(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  // Completion callbacks fire from pool threads; wait for the last one.
  while (Outstanding.load(std::memory_order_acquire) != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  StopSwapping.store(true, std::memory_order_release);
  Swapper.join();
  uint64_t Fired = faultinject::firedCount(); // disarm() zeroes the counter
  faultinject::disarm();

  // Exactly one response per request, every one well-formed and typed.
  std::lock_guard<std::mutex> L(M);
  ASSERT_EQ(Responses.size(), kClients * kPerClient);
  std::set<std::string> Ids;
  size_t StatusCounts[kNumStatuses] = {};
  for (const Response &Resp : Responses) {
    EXPECT_TRUE(Ids.insert(Resp.Id).second)
        << "duplicate response for " << Resp.Id;
    ASSERT_LT(static_cast<size_t>(Resp.St), kNumStatuses);
    ++StatusCounts[static_cast<size_t>(Resp.St)];
    if (Resp.St != Status::Ok) {
      EXPECT_TRUE(Resp.Reports.empty())
          << Resp.Id << ": failed requests must not leak partial reports";
    }
    // Every response renders as one well-formed line.
    std::string Line = renderResponse(Resp);
    EXPECT_EQ(Line.back(), '\n');
    EXPECT_EQ(Line.find('\n'), Line.size() - 1);
  }
  std::string Distribution;
  for (size_t S = 0; S != kNumStatuses; ++S)
    Distribution += std::string(statusName(static_cast<Status>(S))) + "=" +
                    std::to_string(StatusCounts[S]) + " ";
  // The deterministic deadline requests alone guarantee a mix of
  // statuses; at least some requests must also have succeeded.
  EXPECT_GT(StatusCounts[static_cast<size_t>(Status::Ok)], 0u)
      << Distribution;
  EXPECT_GT(StatusCounts[static_cast<size_t>(Status::DeadlineExceeded)],
            0u)
      << Distribution;
  // The open-loop burst (26 requests per client, 4-per-tenant budget)
  // makes typed load shedding certain.
  EXPECT_GT(StatusCounts[static_cast<size_t>(Status::Overloaded)], 0u);

  // The model kept swapping under fire the whole time.
  EXPECT_GT(S.models().swaps(), 0u);
  if (faultinject::compiledIn()) {
    EXPECT_GT(Fired, 0u) << "chaos rules armed but no site ever fired";
  }

  // Post-soak byte-identity: the storm left no residue in the service.
  Response After = submitAndWait(S, scanRequest("after"));
  ASSERT_EQ(After.St, Status::Ok) << After.Detail;
  EXPECT_EQ(After.Reports, Before.Reports);
}

} // namespace
