//===- tests/ThreadPoolTest.cpp - work-stealing pool tests ----------------==//

#include "support/Cancellation.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace namer;

TEST(ThreadPool, ResolvesWorkerCount) {
  EXPECT_GE(ThreadPool::resolveWorkerCount(0), 1u);
  EXPECT_EQ(ThreadPool::resolveWorkerCount(1), 1u);
  EXPECT_EQ(ThreadPool::resolveWorkerCount(6), 6u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 10000;
  std::vector<std::atomic<uint32_t>> Touched(N);
  Pool.parallelFor(0, N, [&](size_t I) {
    Touched[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(Touched[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, SlotResultsMatchSequentialOrder) {
  // The determinism contract: index-addressed writes produce the same
  // vector as a sequential loop, regardless of task scheduling.
  auto Body = [](size_t I) { return I * I + 7; };
  constexpr size_t N = 4096;
  std::vector<size_t> Sequential(N);
  for (size_t I = 0; I != N; ++I)
    Sequential[I] = Body(I);

  for (unsigned Workers : {1u, 2u, 8u}) {
    ThreadPool Pool(Workers);
    std::vector<size_t> Parallel(N, 0);
    Pool.parallelFor(0, N, [&](size_t I) { Parallel[I] = Body(I); });
    EXPECT_EQ(Parallel, Sequential) << "workers=" << Workers;
  }
}

TEST(ThreadPool, HandlesEmptyAndSingletonRanges) {
  ThreadPool Pool(4);
  size_t Calls = 0;
  Pool.parallelFor(5, 5, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
  Pool.parallelFor(41, 42, [&](size_t I) {
    ++Calls;
    EXPECT_EQ(I, 41u);
  });
  EXPECT_EQ(Calls, 1u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(0, 1000,
                       [](size_t I) {
                         if (I == 537)
                           throw std::runtime_error("boom");
                       }),
      std::runtime_error);

  // The pool stays usable after a failed loop.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(0, 100, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPool, CapturesFirstExceptionWhenManyBodiesThrow) {
  // Several bodies throw concurrently; exactly one exception must surface
  // (the first captured -- later ones are swallowed, not leaked or
  // terminate()d), and it must be one actually thrown by a body.
  ThreadPool Pool(8);
  std::atomic<size_t> Throwers{0};
  try {
    Pool.parallelFor(0, 2000, [&](size_t I) {
      if (I % 3 == 0) {
        Throwers.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("body " + std::to_string(I));
      }
    });
    FAIL() << "parallelFor swallowed every exception";
  } catch (const std::runtime_error &E) {
    EXPECT_EQ(std::string(E.what()).rfind("body ", 0), 0u);
  }
  EXPECT_GE(Throwers.load(), 1u);

  // The failure left no queued tasks behind: a full follow-up loop runs.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(0, 500, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 500u);
}

TEST(ThreadPool, ParallelMapPropagatesExceptions) {
  ThreadPool Pool(4);
  std::vector<int> Items(300);
  std::iota(Items.begin(), Items.end(), 0);
  EXPECT_THROW(Pool.parallelMap(Items,
                                [](const int &V) -> int {
                                  if (V == 123)
                                    throw std::logic_error("map boom");
                                  return V;
                                }),
               std::logic_error);

  std::vector<int> Ok = Pool.parallelMap(Items, [](const int &V) { return V; });
  EXPECT_EQ(Ok, Items);
}

TEST(ThreadPool, NestedInlineLoopPropagatesExceptions) {
  // Nested parallelFor calls run inline; an exception from an inner body
  // must travel through the outer loop's capture machinery unchanged.
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 32,
                                [&](size_t O) {
                                  Pool.parallelFor(0, 32, [&](size_t I) {
                                    if (O == 7 && I == 11)
                                      throw std::out_of_range("nested boom");
                                  });
                                }),
               std::out_of_range);
}

TEST(ThreadPool, SingleWorkerInlineLoopPropagatesExceptions) {
  ThreadPool Pool(1);
  size_t Calls = 0;
  EXPECT_THROW(Pool.parallelFor(0, 100,
                                [&](size_t I) {
                                  ++Calls;
                                  if (I == 5)
                                    throw std::runtime_error("inline boom");
                                }),
               std::runtime_error);
  // Inline execution stops at the throwing iteration.
  EXPECT_EQ(Calls, 6u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool Pool(4);
  constexpr size_t Outer = 16, Inner = 64;
  std::vector<std::vector<uint32_t>> Slots(Outer,
                                           std::vector<uint32_t>(Inner, 0));
  Pool.parallelFor(0, Outer, [&](size_t O) {
    Pool.parallelFor(0, Inner, [&](size_t I) { Slots[O][I] = 1; });
  });
  for (size_t O = 0; O != Outer; ++O)
    for (size_t I = 0; I != Inner; ++I)
      ASSERT_EQ(Slots[O][I], 1u) << O << "," << I;
}

TEST(ThreadPool, ParallelMapCollectsInOrder) {
  ThreadPool Pool(3);
  std::vector<int> Items(257);
  std::iota(Items.begin(), Items.end(), 0);
  std::vector<int> Squares =
      Pool.parallelMap(Items, [](const int &V) { return V * V; });
  ASSERT_EQ(Squares.size(), Items.size());
  for (size_t I = 0; I != Items.size(); ++I)
    EXPECT_EQ(Squares[I], static_cast<int>(I * I));
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(0, 10, [&](size_t I) { Order.push_back(I); });
  // Inline execution preserves iteration order exactly.
  std::vector<size_t> Expected(10);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPool, ManySmallLoopsDoNotLeakTasks) {
  ThreadPool Pool(4);
  for (int Round = 0; Round != 200; ++Round) {
    std::atomic<size_t> Count{0};
    Pool.parallelFor(0, 17, [&](size_t) { ++Count; });
    ASSERT_EQ(Count.load(), 17u);
  }
}

//===----------------------------------------------------------------------===//
// Cooperative cancellation (support/Cancellation.h). The contract: once
// the submitting thread's ambient token trips, parallelFor stops running
// further chunk bodies, throws the *typed* cancel::CancelledError after
// the barrier, and leaves the pool fully reusable. Pinned at Threads=1
// (inline fast path) and Threads=8 (real workers) because the two
// executions share no code path.
//===----------------------------------------------------------------------===//

namespace {

/// Runs the cancel-mid-flight scenario on a pool of \p Workers: the body
/// cancels the token partway through, later iterations must not run, and
/// the loop must throw CancelledError with the Explicit reason.
void runCancelMidFlight(unsigned Workers) {
  ThreadPool Pool(Workers);
  cancel::CancelToken Tok;
  cancel::CancelScope Ambient(&Tok);
  std::atomic<size_t> Ran{0};
  bool Threw = false;
  try {
    // Grain 1 so every iteration is its own chunk: once the token trips,
    // queued chunks must drain as no-ops instead of running their bodies.
    Pool.parallelFor(
        0, 10000,
        [&](size_t I) {
          Ran.fetch_add(1, std::memory_order_relaxed);
          if (I == 7)
            Tok.cancel();
          cancel::checkpoint();
        },
        /*GrainSize=*/1);
  } catch (const cancel::CancelledError &E) {
    Threw = true;
    EXPECT_EQ(E.reason(), cancel::CancelReason::Explicit);
  }
  ASSERT_TRUE(Threw) << "cancellation must surface as CancelledError";
  // Not every scheduled chunk ran: cancellation stopped the loop long
  // before the full range. (Workers already mid-body may each finish one
  // iteration, so the bound is workers+cancel point, not exact.)
  EXPECT_LT(Ran.load(), 10000u);

  // The pool survives: a fresh loop on the same pool runs to completion,
  // and a fresh token is not poisoned by the old one.
  cancel::CancelToken Fresh;
  cancel::CancelScope Scope2(&Fresh);
  std::atomic<size_t> Count{0};
  Pool.parallelFor(0, 100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
    cancel::checkpoint();
  });
  EXPECT_EQ(Count.load(), 100u);
}

} // namespace

TEST(ThreadPool, CancelMidFlightStopsSchedulingInline) {
  runCancelMidFlight(1);
}

TEST(ThreadPool, CancelMidFlightStopsSchedulingParallel) {
  runCancelMidFlight(8);
}

TEST(ThreadPool, ElapsedDeadlinePropagatesTypedReason) {
  for (unsigned Workers : {1u, 8u}) {
    ThreadPool Pool(Workers);
    cancel::CancelToken Tok;
    Tok.setDeadlineFromNowMs(0); // already elapsed: trips deterministically
    cancel::CancelScope Ambient(&Tok);
    try {
      Pool.parallelFor(0, 64, [&](size_t) { cancel::checkpoint(); });
      FAIL() << "elapsed deadline must cancel the loop (workers="
             << Workers << ")";
    } catch (const cancel::CancelledError &E) {
      EXPECT_EQ(E.reason(), cancel::CancelReason::Deadline);
    }
  }
}

TEST(ThreadPool, UncancelledTokenCostsNothing) {
  // A live ambient token must not perturb results or completion.
  for (unsigned Workers : {1u, 8u}) {
    ThreadPool Pool(Workers);
    cancel::CancelToken Tok;
    cancel::CancelScope Ambient(&Tok);
    std::atomic<size_t> Count{0};
    Pool.parallelFor(0, 1000, [&](size_t) {
      Count.fetch_add(1, std::memory_order_relaxed);
      cancel::checkpoint();
    });
    EXPECT_EQ(Count.load(), 1000u) << "workers=" << Workers;
  }
}

TEST(ThreadPool, BodyExceptionBeatsConcurrentCancel) {
  // When a body throws a real error and the token also trips, the real
  // error wins -- cancellation must never mask a genuine failure.
  ThreadPool Pool(4);
  cancel::CancelToken Tok;
  cancel::CancelScope Ambient(&Tok);
  EXPECT_THROW(Pool.parallelFor(0, 100,
                                [&](size_t I) {
                                  if (I == 3) {
                                    Tok.cancel();
                                    throw std::runtime_error("real failure");
                                  }
                                  cancel::checkpoint();
                                }),
               std::runtime_error);
}

TEST(ThreadPool, AsyncRunsDetachedTasks) {
  ThreadPool Pool(4);
  std::atomic<size_t> Done{0};
  for (int I = 0; I != 64; ++I)
    ASSERT_TRUE(Pool.async([&] { Done.fetch_add(1); }));
  while (Done.load() != 64)
    std::this_thread::yield();
}

TEST(ThreadPool, AsyncRefusesSingleWorkerPool) {
  // A 1-worker pool has no spawned threads; a detached task would never
  // run. The call must refuse rather than strand the task.
  ThreadPool Pool(1);
  EXPECT_FALSE(Pool.async([] {}));
}
