//===- histmine/ConfusingPairs.h - Confusing word pair mining ---*- C++ -*-==//
///
/// \file
/// Mines confusing word pairs <mistaken, correct> from commit histories
/// (Section 3.2): a diff matching algorithm aligns the ASTs of a file
/// before and after a commit; for every pair of matched identifier nodes
/// whose subtoken sequences differ in exactly one position, that subtoken
/// pair is recorded. The paper extracted 950K pairs for Java and 150K for
/// Python this way; the corpus generator provides the commit stream here.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_HISTMINE_CONFUSINGPAIRS_H
#define NAMER_HISTMINE_CONFUSINGPAIRS_H

#include "ast/Tree.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace namer {

struct ConfusingPair {
  Symbol Mistaken;
  Symbol Correct;
  uint32_t Count;
};

/// One single-subtoken rename mined from a commit diff, as raw text so it
/// can be produced without touching any shared interner.
struct RenamedSubtoken {
  std::string Mistaken;
  std::string Correct;
};

/// Accumulates confusing word pairs over a stream of commits.
class ConfusingPairMiner {
public:
  explicit ConfusingPairMiner(AstContext &Ctx) : Ctx(Ctx) {}

  /// Diffs the ASTs of one file before and after a commit and records
  /// single-subtoken renames. Equivalent to addRename over
  /// collectRenames(Before, After).
  void addCommit(const Tree &Before, const Tree &After);

  /// Pure diff half of addCommit: aligns the two ASTs and returns every
  /// qualifying single-subtoken rename. Touches no miner state, so commits
  /// can be diffed in parallel (against worker-local trees) and merged
  /// with addRename in deterministic commit order.
  static std::vector<RenamedSubtoken> collectRenames(const Tree &Before,
                                                     const Tree &After);

  /// Merge half of addCommit: interns one mined rename and bumps its
  /// count.
  void addRename(std::string_view Mistaken, std::string_view Correct);

  /// Reinstates one serialized pair with its accumulated count (the model
  /// store's load path). The symbols must already be interned in this
  /// miner's context.
  void addPair(Symbol Mistaken, Symbol Correct, uint32_t Count);

  /// All mined pairs with counts, most frequent first.
  std::vector<ConfusingPair> pairs() const;

  /// The "correct word" vocabulary for Definition 3.9.
  std::unordered_set<Symbol> correctWords() const;

  /// True if <mistaken, correct> (in that order) was mined. Classifier
  /// feature 17.
  bool isConfusingPair(Symbol Mistaken, Symbol Correct) const;

  /// Commit-history evidence for one pair: the number of commits whose
  /// diff renamed <mistaken> to <correct>; 0 when the pair was not mined.
  /// Explanations cite this as the word-pair provenance.
  uint32_t pairCount(Symbol Mistaken, Symbol Correct) const;

  size_t numPairs() const { return Counts.size(); }

private:
  static void matchNodes(const Tree &Before, NodeId A, const Tree &After,
                         NodeId B, std::vector<RenamedSubtoken> &Out);
  static void recordRename(std::string_view Old, std::string_view New,
                           std::vector<RenamedSubtoken> &Out);

  AstContext &Ctx;
  std::unordered_map<uint64_t, uint32_t> Counts; // (mistaken, correct) key
};

} // namespace namer

#endif // NAMER_HISTMINE_CONFUSINGPAIRS_H
