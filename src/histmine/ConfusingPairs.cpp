//===- histmine/ConfusingPairs.cpp ----------------------------------------==//

#include "histmine/ConfusingPairs.h"

#include "support/Subtokens.h"

#include <algorithm>
#include <cctype>

using namespace namer;

namespace {

uint64_t pairKey(Symbol Mistaken, Symbol Correct) {
  return (static_cast<uint64_t>(Mistaken) << 32) | Correct;
}

} // namespace

void ConfusingPairMiner::recordRename(std::string_view Old,
                                      std::string_view New,
                                      std::vector<RenamedSubtoken> &Out) {
  if (Old == New)
    return;
  std::vector<std::string> OldToks = splitSubtokens(Old);
  std::vector<std::string> NewToks = splitSubtokens(New);
  if (OldToks.size() != NewToks.size() || OldToks.empty())
    return;
  // Exactly one differing subtoken qualifies as a confusing pair.
  size_t DiffIndex = OldToks.size();
  size_t DiffCount = 0;
  for (size_t I = 0; I != OldToks.size(); ++I) {
    if (OldToks[I] != NewToks[I]) {
      DiffIndex = I;
      ++DiffCount;
    }
  }
  if (DiffCount != 1)
    return;
  // Literal edits (changing 90 to 17) are value changes, not naming fixes.
  auto IsNumeric = [](const std::string &Tok) {
    for (char C : Tok)
      if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.')
        return false;
    return !Tok.empty();
  };
  if (IsNumeric(OldToks[DiffIndex]) || IsNumeric(NewToks[DiffIndex]))
    return;
  Out.push_back(
      RenamedSubtoken{std::move(OldToks[DiffIndex]),
                      std::move(NewToks[DiffIndex])});
}

void ConfusingPairMiner::matchNodes(const Tree &Before, NodeId A,
                                    const Tree &After, NodeId B,
                                    std::vector<RenamedSubtoken> &Out) {
  const Node &NA = Before.node(A);
  const Node &NB = After.node(B);
  if (NA.Kind != NB.Kind)
    return;
  if (NA.Kind == NodeKind::Ident && NA.Value != NB.Value) {
    recordRename(Before.valueText(A), After.valueText(B), Out);
    return;
  }
  // Align children pairwise over the common prefix; structural inserts and
  // deletes beyond it are not name renames.
  size_t Common = std::min(NA.Children.size(), NB.Children.size());
  for (size_t I = 0; I != Common; ++I)
    matchNodes(Before, NA.Children[I], After, NB.Children[I], Out);
}

std::vector<RenamedSubtoken>
ConfusingPairMiner::collectRenames(const Tree &Before, const Tree &After) {
  std::vector<RenamedSubtoken> Out;
  if (Before.empty() || After.empty())
    return Out;
  matchNodes(Before, Before.root(), After, After.root(), Out);
  return Out;
}

void ConfusingPairMiner::addRename(std::string_view Mistaken,
                                   std::string_view Correct) {
  ++Counts[pairKey(Ctx.intern(Mistaken), Ctx.intern(Correct))];
}

void ConfusingPairMiner::addPair(Symbol Mistaken, Symbol Correct,
                                 uint32_t Count) {
  Counts[pairKey(Mistaken, Correct)] += Count;
}

void ConfusingPairMiner::addCommit(const Tree &Before, const Tree &After) {
  for (const RenamedSubtoken &R : collectRenames(Before, After))
    addRename(R.Mistaken, R.Correct);
}

std::vector<ConfusingPair> ConfusingPairMiner::pairs() const {
  std::vector<ConfusingPair> Out;
  Out.reserve(Counts.size());
  for (const auto &[Key, Count] : Counts)
    Out.push_back(ConfusingPair{static_cast<Symbol>(Key >> 32),
                                static_cast<Symbol>(Key & 0xffffffffu),
                                Count});
  std::sort(Out.begin(), Out.end(),
            [](const ConfusingPair &X, const ConfusingPair &Y) {
              if (X.Count != Y.Count)
                return X.Count > Y.Count;
              if (X.Mistaken != Y.Mistaken)
                return X.Mistaken < Y.Mistaken;
              return X.Correct < Y.Correct;
            });
  return Out;
}

std::unordered_set<Symbol> ConfusingPairMiner::correctWords() const {
  std::unordered_set<Symbol> Out;
  for (const auto &[Key, Count] : Counts) {
    (void)Count;
    Out.insert(static_cast<Symbol>(Key & 0xffffffffu));
  }
  return Out;
}

bool ConfusingPairMiner::isConfusingPair(Symbol Mistaken,
                                         Symbol Correct) const {
  return Counts.find(pairKey(Mistaken, Correct)) != Counts.end();
}

uint32_t ConfusingPairMiner::pairCount(Symbol Mistaken, Symbol Correct) const {
  auto It = Counts.find(pairKey(Mistaken, Correct));
  return It == Counts.end() ? 0 : It->second;
}
