//===- ml/Matrix.cpp ------------------------------------------------------==//

#include "ml/Matrix.h"

using namespace namer;
using namespace namer::ml;

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "dimension mismatch in multiply");
  Matrix Result(NumRows, Other.NumCols);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t K = 0; K != NumCols; ++K) {
      double V = at(I, K);
      if (V == 0.0)
        continue;
      for (size_t J = 0; J != Other.NumCols; ++J)
        Result.at(I, J) += V * Other.at(K, J);
    }
  return Result;
}

Matrix Matrix::transposed() const {
  Matrix Result(NumCols, NumRows);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t J = 0; J != NumCols; ++J)
      Result.at(J, I) = at(I, J);
  return Result;
}

double ml::dot(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot of different lengths");
  double Sum = 0;
  for (size_t I = 0; I != A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}
