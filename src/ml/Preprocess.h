//===- ml/Preprocess.h - Standardization and PCA ----------------*- C++ -*-==//
///
/// \file
/// The feature preprocessing of Section 5.1: "we used feature
/// standardization and principal component analysis as a preprocessing
/// step for the features." Standardizer centers/scales each column; Pca
/// diagonalizes the covariance matrix with cyclic Jacobi rotations and
/// projects onto the leading components.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ML_PREPROCESS_H
#define NAMER_ML_PREPROCESS_H

#include "ml/Matrix.h"

#include <vector>

namespace namer {
namespace ml {

/// Per-column zero-mean unit-variance scaling.
class Standardizer {
public:
  /// Learns column means and standard deviations from \p X.
  void fit(const Matrix &X);
  /// Applies the learned scaling. Constant columns pass through centered.
  Matrix transform(const Matrix &X) const;
  std::vector<double> transform(const std::vector<double> &Row) const;

  const std::vector<double> &means() const { return Means; }
  const std::vector<double> &stddevs() const { return Stddevs; }

  /// Reinstates a fitted state from serialized parameters (the model
  /// store's load path). Equivalent to the fit() that produced them.
  void restore(std::vector<double> Means, std::vector<double> Stddevs) {
    this->Means = std::move(Means);
    this->Stddevs = std::move(Stddevs);
  }

private:
  std::vector<double> Means;
  std::vector<double> Stddevs;
};

/// PCA via Jacobi eigendecomposition of the covariance matrix.
class Pca {
public:
  /// Learns the projection from \p X (assumed standardized). Keeps the
  /// \p Components leading eigenvectors; 0 keeps all.
  void fit(const Matrix &X, size_t Components = 0);

  Matrix transform(const Matrix &X) const;
  std::vector<double> transform(const std::vector<double> &Row) const;

  /// Maps weights in component space back to original feature space:
  /// w_orig = V * w_comp. Used to report Table 9 feature weights.
  std::vector<double> backProject(const std::vector<double> &W) const;

  size_t numComponents() const { return Components.rows(); }
  const std::vector<double> &eigenvalues() const { return Eigenvalues; }
  /// Projection matrix, rows = components, cols = original features.
  const Matrix &components() const { return Components; }

  /// Reinstates a fitted state from serialized parameters (the model
  /// store's load path). Equivalent to the fit() that produced them.
  void restore(Matrix Components, std::vector<double> Eigenvalues) {
    this->Components = std::move(Components);
    this->Eigenvalues = std::move(Eigenvalues);
  }

private:
  Matrix Components; // rows = components, cols = original features
  std::vector<double> Eigenvalues;
};

/// Symmetric eigendecomposition helper (exposed for testing): diagonalizes
/// \p A in place with cyclic Jacobi rotations; returns eigenvalues and
/// fills \p Vectors with eigenvectors as rows, sorted by decreasing
/// eigenvalue.
std::vector<double> jacobiEigen(Matrix A, Matrix &Vectors);

} // namespace ml
} // namespace namer

#endif // NAMER_ML_PREPROCESS_H
