//===- ml/Preprocess.cpp --------------------------------------------------==//

#include "ml/Preprocess.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace namer;
using namespace namer::ml;

void Standardizer::fit(const Matrix &X) {
  size_t N = X.rows(), D = X.cols();
  Means.assign(D, 0.0);
  Stddevs.assign(D, 1.0);
  if (N == 0)
    return;
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != D; ++J)
      Means[J] += X.at(I, J);
  for (double &M : Means)
    M /= static_cast<double>(N);
  std::vector<double> Var(D, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != D; ++J) {
      double Delta = X.at(I, J) - Means[J];
      Var[J] += Delta * Delta;
    }
  for (size_t J = 0; J != D; ++J) {
    double S = std::sqrt(Var[J] / static_cast<double>(N));
    Stddevs[J] = S > 1e-12 ? S : 1.0;
  }
}

Matrix Standardizer::transform(const Matrix &X) const {
  Matrix Out(X.rows(), X.cols());
  for (size_t I = 0; I != X.rows(); ++I)
    for (size_t J = 0; J != X.cols(); ++J)
      Out.at(I, J) = (X.at(I, J) - Means[J]) / Stddevs[J];
  return Out;
}

std::vector<double>
Standardizer::transform(const std::vector<double> &Row) const {
  std::vector<double> Out(Row.size());
  for (size_t J = 0; J != Row.size(); ++J)
    Out[J] = (Row[J] - Means[J]) / Stddevs[J];
  return Out;
}

std::vector<double> ml::jacobiEigen(Matrix A, Matrix &Vectors) {
  size_t D = A.rows();
  assert(A.cols() == D && "jacobiEigen requires a square matrix");
  // V starts as identity; rows become eigenvectors after accumulation.
  Matrix V(D, D);
  for (size_t I = 0; I != D; ++I)
    V.at(I, I) = 1.0;

  for (int Sweep = 0; Sweep < 100; ++Sweep) {
    double Off = 0;
    for (size_t P = 0; P != D; ++P)
      for (size_t Q = P + 1; Q != D; ++Q)
        Off += A.at(P, Q) * A.at(P, Q);
    if (Off < 1e-20)
      break;
    for (size_t P = 0; P != D; ++P) {
      for (size_t Q = P + 1; Q != D; ++Q) {
        double Apq = A.at(P, Q);
        if (std::fabs(Apq) < 1e-18)
          continue;
        double Theta = (A.at(Q, Q) - A.at(P, P)) / (2.0 * Apq);
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        // Rotate A on both sides.
        for (size_t K = 0; K != D; ++K) {
          double Akp = A.at(K, P), Akq = A.at(K, Q);
          A.at(K, P) = C * Akp - S * Akq;
          A.at(K, Q) = S * Akp + C * Akq;
        }
        for (size_t K = 0; K != D; ++K) {
          double Apk = A.at(P, K), Aqk = A.at(Q, K);
          A.at(P, K) = C * Apk - S * Aqk;
          A.at(Q, K) = S * Apk + C * Aqk;
        }
        // Accumulate rotation into V (rows are eigenvectors).
        for (size_t K = 0; K != D; ++K) {
          double Vpk = V.at(P, K), Vqk = V.at(Q, K);
          V.at(P, K) = C * Vpk - S * Vqk;
          V.at(Q, K) = S * Vpk + C * Vqk;
        }
      }
    }
  }

  // Sort by decreasing eigenvalue.
  std::vector<size_t> Order(D);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
    return A.at(X, X) > A.at(Y, Y);
  });
  std::vector<double> Eigenvalues(D);
  Vectors = Matrix(D, D);
  for (size_t I = 0; I != D; ++I) {
    Eigenvalues[I] = A.at(Order[I], Order[I]);
    for (size_t K = 0; K != D; ++K)
      Vectors.at(I, K) = V.at(Order[I], K);
  }
  return Eigenvalues;
}

void Pca::fit(const Matrix &X, size_t Keep) {
  size_t N = X.rows(), D = X.cols();
  // Covariance (X assumed centered by the standardizer).
  Matrix Cov(D, D);
  for (size_t I = 0; I != N; ++I)
    for (size_t A = 0; A != D; ++A)
      for (size_t B = 0; B != D; ++B)
        Cov.at(A, B) += X.at(I, A) * X.at(I, B);
  double Scale = N > 1 ? 1.0 / static_cast<double>(N - 1) : 1.0;
  for (size_t A = 0; A != D; ++A)
    for (size_t B = 0; B != D; ++B)
      Cov.at(A, B) *= Scale;

  Matrix Vectors;
  Eigenvalues = jacobiEigen(std::move(Cov), Vectors);
  size_t Count = Keep == 0 ? D : std::min(Keep, D);
  Components = Matrix(Count, D);
  for (size_t I = 0; I != Count; ++I)
    for (size_t J = 0; J != D; ++J)
      Components.at(I, J) = Vectors.at(I, J);
  Eigenvalues.resize(Count);
}

Matrix Pca::transform(const Matrix &X) const {
  return X.multiply(Components.transposed());
}

std::vector<double> Pca::transform(const std::vector<double> &Row) const {
  std::vector<double> Out(Components.rows(), 0.0);
  for (size_t I = 0; I != Components.rows(); ++I)
    for (size_t J = 0; J != Row.size(); ++J)
      Out[I] += Components.at(I, J) * Row[J];
  return Out;
}

std::vector<double>
Pca::backProject(const std::vector<double> &W) const {
  std::vector<double> Out(Components.cols(), 0.0);
  for (size_t I = 0; I != Components.rows(); ++I)
    for (size_t J = 0; J != Components.cols(); ++J)
      Out[J] += Components.at(I, J) * W[I];
  return Out;
}
