//===- ml/Models.cpp ------------------------------------------------------==//

#include "ml/Models.h"

#include <cassert>
#include <cmath>
#include <numeric>

using namespace namer;
using namespace namer::ml;

// --- LinearSvm ---------------------------------------------------------------

void LinearSvm::fit(const Matrix &X, const std::vector<bool> &Y) {
  assert(X.rows() == Y.size() && "label count mismatch");
  size_t N = X.rows(), D = X.cols();
  W.assign(D, 0.0);
  B = 0.0;
  if (N == 0)
    return;
  // Averaged Pegasos: iterate in a fixed coprime stride so consecutive
  // updates mix classes even when the input is class-ordered, and average
  // the iterates of the second half of training for stability.
  std::vector<double> AvgW(D, 0.0);
  double AvgB = 0.0;
  size_t AvgCount = 0;
  size_t TotalSteps = Cfg.Epochs * N;
  size_t Stride = 1;
  for (size_t Candidate : {7919u, 104729u, 1299709u, 15485863u}) {
    if (std::gcd(Candidate, N) == 1) {
      Stride = Candidate;
      break;
    }
  }
  size_t Step = 1;
  for (size_t Epoch = 0; Epoch != Cfg.Epochs; ++Epoch) {
    for (size_t K = 0; K != N; ++K, ++Step) {
      size_t I = (K * Stride + Epoch) % N;
      double Eta = 1.0 / (Cfg.Lambda * static_cast<double>(Step));
      double Label = Y[I] ? 1.0 : -1.0;
      const double *Row = X.row(I);
      double Score = B;
      for (size_t J = 0; J != D; ++J)
        Score += W[J] * Row[J];
      // L2 shrink; the bias is treated as the weight of a constant 1.0
      // feature and regularized too, which keeps early (large-Eta) steps
      // from blowing it up.
      double Shrink = 1.0 - Eta * Cfg.Lambda;
      for (double &Wj : W)
        Wj *= Shrink;
      B *= Shrink;
      if (Label * Score < 1.0) {
        for (size_t J = 0; J != D; ++J)
          W[J] += Eta * Label * Row[J];
        B += Eta * Label;
      }
      if (Step * 2 >= TotalSteps) {
        for (size_t J = 0; J != D; ++J)
          AvgW[J] += W[J];
        AvgB += B;
        ++AvgCount;
      }
    }
  }
  if (AvgCount > 0) {
    for (size_t J = 0; J != D; ++J)
      W[J] = AvgW[J] / static_cast<double>(AvgCount);
    B = AvgB / static_cast<double>(AvgCount);
  }
}

double LinearSvm::decision(const std::vector<double> &Row) const {
  assert(Row.size() == W.size() && "feature count mismatch");
  return dot(W, Row) + B;
}

// --- LogisticRegression --------------------------------------------------------

void LogisticRegression::fit(const Matrix &X, const std::vector<bool> &Y) {
  assert(X.rows() == Y.size() && "label count mismatch");
  size_t N = X.rows(), D = X.cols();
  W.assign(D, 0.0);
  B = 0.0;
  if (N == 0)
    return;
  std::vector<double> GradW(D);
  for (size_t Epoch = 0; Epoch != Cfg.Epochs; ++Epoch) {
    std::fill(GradW.begin(), GradW.end(), 0.0);
    double GradB = 0.0;
    for (size_t I = 0; I != N; ++I) {
      const double *Row = X.row(I);
      double Score = B;
      for (size_t J = 0; J != D; ++J)
        Score += W[J] * Row[J];
      double P = 1.0 / (1.0 + std::exp(-Score));
      double Err = P - (Y[I] ? 1.0 : 0.0);
      for (size_t J = 0; J != D; ++J)
        GradW[J] += Err * Row[J];
      GradB += Err;
    }
    double Scale = Cfg.LearningRate / static_cast<double>(N);
    for (size_t J = 0; J != D; ++J)
      W[J] -= Scale * (GradW[J] + Cfg.Lambda * W[J]);
    B -= Scale * GradB;
  }
}

double LogisticRegression::decision(const std::vector<double> &Row) const {
  assert(Row.size() == W.size() && "feature count mismatch");
  return dot(W, Row) + B;
}

// --- LinearDiscriminant ----------------------------------------------------

namespace {

/// Solves A x = b with Gaussian elimination and partial pivoting. A is
/// overwritten. Returns false if singular.
bool solveLinearSystem(Matrix A, std::vector<double> B,
                       std::vector<double> &X) {
  size_t D = A.rows();
  for (size_t Col = 0; Col != D; ++Col) {
    // Pivot.
    size_t Pivot = Col;
    for (size_t R = Col + 1; R != D; ++R)
      if (std::fabs(A.at(R, Col)) > std::fabs(A.at(Pivot, Col)))
        Pivot = R;
    if (std::fabs(A.at(Pivot, Col)) < 1e-12)
      return false;
    if (Pivot != Col) {
      for (size_t C = 0; C != D; ++C)
        std::swap(A.at(Pivot, C), A.at(Col, C));
      std::swap(B[Pivot], B[Col]);
    }
    for (size_t R = Col + 1; R != D; ++R) {
      double Factor = A.at(R, Col) / A.at(Col, Col);
      if (Factor == 0.0)
        continue;
      for (size_t C = Col; C != D; ++C)
        A.at(R, C) -= Factor * A.at(Col, C);
      B[R] -= Factor * B[Col];
    }
  }
  X.assign(D, 0.0);
  for (size_t RI = D; RI != 0; --RI) {
    size_t R = RI - 1;
    double Sum = B[R];
    for (size_t C = R + 1; C != D; ++C)
      Sum -= A.at(R, C) * X[C];
    X[R] = Sum / A.at(R, R);
  }
  return true;
}

} // namespace

void LinearDiscriminant::fit(const Matrix &X, const std::vector<bool> &Y) {
  assert(X.rows() == Y.size() && "label count mismatch");
  size_t N = X.rows(), D = X.cols();
  W.assign(D, 0.0);
  B = 0.0;
  size_t N1 = 0;
  for (bool L : Y)
    N1 += L;
  size_t N0 = N - N1;
  if (N0 == 0 || N1 == 0)
    return; // degenerate: everything one class

  std::vector<double> Mu0(D, 0.0), Mu1(D, 0.0);
  for (size_t I = 0; I != N; ++I) {
    auto &Mu = Y[I] ? Mu1 : Mu0;
    for (size_t J = 0; J != D; ++J)
      Mu[J] += X.at(I, J);
  }
  for (size_t J = 0; J != D; ++J) {
    Mu0[J] /= static_cast<double>(N0);
    Mu1[J] /= static_cast<double>(N1);
  }
  // Pooled within-class covariance with ridge.
  Matrix Sigma(D, D);
  for (size_t I = 0; I != N; ++I) {
    const auto &Mu = Y[I] ? Mu1 : Mu0;
    for (size_t A = 0; A != D; ++A)
      for (size_t Bc = 0; Bc != D; ++Bc)
        Sigma.at(A, Bc) +=
            (X.at(I, A) - Mu[A]) * (X.at(I, Bc) - Mu[Bc]);
  }
  double Scale = N > 2 ? 1.0 / static_cast<double>(N - 2) : 1.0;
  for (size_t A = 0; A != D; ++A) {
    for (size_t Bc = 0; Bc != D; ++Bc)
      Sigma.at(A, Bc) *= Scale;
    Sigma.at(A, A) += Cfg.Ridge;
  }
  std::vector<double> Diff(D);
  for (size_t J = 0; J != D; ++J)
    Diff[J] = Mu1[J] - Mu0[J];
  if (!solveLinearSystem(std::move(Sigma), std::move(Diff), W)) {
    W.assign(D, 0.0);
    return;
  }
  // Threshold at the projected midpoint (equal priors).
  double M0 = dot(W, Mu0), M1 = dot(W, Mu1);
  B = -(M0 + M1) / 2.0;
}

double LinearDiscriminant::decision(const std::vector<double> &Row) const {
  assert(Row.size() == W.size() && "feature count mismatch");
  return dot(W, Row) + B;
}

// --- FrozenLinearModel ---------------------------------------------------------

void FrozenLinearModel::fit(const Matrix &, const std::vector<bool> &) {
  assert(false && "frozen models are deserialized, not trained");
}

double FrozenLinearModel::decision(const std::vector<double> &Row) const {
  assert(Row.size() == W.size() && "feature count mismatch");
  return dot(W, Row) + B;
}

std::unique_ptr<BinaryClassifier> ml::makeClassifier(const std::string &Name) {
  if (Name == "svm-linear")
    return std::make_unique<LinearSvm>();
  if (Name == "logreg")
    return std::make_unique<LogisticRegression>();
  if (Name == "lda")
    return std::make_unique<LinearDiscriminant>();
  return nullptr;
}
