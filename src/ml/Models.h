//===- ml/Models.h - Linear binary classifiers ------------------*- C++ -*-==//
///
/// \file
/// The three model families Section 5.1 cross-validates for the defect
/// classifier: a linear-kernel support vector machine (the selected model),
/// logistic regression, and linear discriminant analysis. All expose the
/// same interface: fit on a labeled matrix, produce a signed decision
/// value, and report weights (Table 9 prints them).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ML_MODELS_H
#define NAMER_ML_MODELS_H

#include "ml/Matrix.h"

#include <memory>
#include <string>
#include <vector>

namespace namer {
namespace ml {

/// Interface of a binary classifier over real feature vectors. Labels are
/// true ("report the violation") / false ("prune it").
class BinaryClassifier {
public:
  virtual ~BinaryClassifier() = default;

  /// Trains on rows of \p X with labels \p Y (same length as X.rows()).
  virtual void fit(const Matrix &X, const std::vector<bool> &Y) = 0;

  /// Signed score; >= 0 classifies as true.
  virtual double decision(const std::vector<double> &Row) const = 0;

  bool predict(const std::vector<double> &Row) const {
    return decision(Row) >= 0.0;
  }

  /// Linear weights (without bias). All three families are linear.
  virtual const std::vector<double> &weights() const = 0;
  virtual double bias() const = 0;
  virtual std::string name() const = 0;
};

/// Linear-kernel SVM trained by subgradient descent on the L2-regularized
/// hinge loss (Pegasos-style schedule). Deterministic given the data.
class LinearSvm : public BinaryClassifier {
public:
  struct Config {
    double Lambda = 0.001; ///< L2 regularization strength
    size_t Epochs = 200;
  };
  LinearSvm() = default;
  explicit LinearSvm(Config C) : Cfg(C) {}

  void fit(const Matrix &X, const std::vector<bool> &Y) override;
  double decision(const std::vector<double> &Row) const override;
  const std::vector<double> &weights() const override { return W; }
  double bias() const override { return B; }
  std::string name() const override { return "svm-linear"; }

private:
  Config Cfg;
  std::vector<double> W;
  double B = 0.0;
};

/// Logistic regression trained by full-batch gradient descent.
class LogisticRegression : public BinaryClassifier {
public:
  struct Config {
    double LearningRate = 0.1;
    double Lambda = 0.001;
    size_t Epochs = 500;
  };
  LogisticRegression() = default;
  explicit LogisticRegression(Config C) : Cfg(C) {}

  void fit(const Matrix &X, const std::vector<bool> &Y) override;
  double decision(const std::vector<double> &Row) const override;
  const std::vector<double> &weights() const override { return W; }
  double bias() const override { return B; }
  std::string name() const override { return "logreg"; }

private:
  Config Cfg;
  std::vector<double> W;
  double B = 0.0;
};

/// Two-class linear discriminant analysis: w = Sigma^-1 (mu1 - mu0), with a
/// small ridge on Sigma for stability.
class LinearDiscriminant : public BinaryClassifier {
public:
  struct Config {
    double Ridge = 1e-3;
  };
  LinearDiscriminant() = default;
  explicit LinearDiscriminant(Config C) : Cfg(C) {}

  void fit(const Matrix &X, const std::vector<bool> &Y) override;
  double decision(const std::vector<double> &Row) const override;
  const std::vector<double> &weights() const override { return W; }
  double bias() const override { return B; }
  std::string name() const override { return "lda"; }

private:
  Config Cfg;
  std::vector<double> W;
  double B = 0.0;
};

/// A deserialized linear model: weights, bias and the original family name
/// restored bit-exactly from a model file. All three trainable families
/// share the decision function dot(W, Row) + B, so a frozen model scores
/// identically to the instance that was serialized. fit() is not supported
/// (frozen models come from the model store, not training).
class FrozenLinearModel : public BinaryClassifier {
public:
  FrozenLinearModel(std::string Family, std::vector<double> W, double B)
      : Family(std::move(Family)), W(std::move(W)), B(B) {}

  void fit(const Matrix &X, const std::vector<bool> &Y) override;
  double decision(const std::vector<double> &Row) const override;
  const std::vector<double> &weights() const override { return W; }
  double bias() const override { return B; }
  std::string name() const override { return Family; }

private:
  std::string Family;
  std::vector<double> W;
  double B = 0.0;
};

/// Factory by family name ("svm-linear", "logreg", "lda").
std::unique_ptr<BinaryClassifier> makeClassifier(const std::string &Name);

} // namespace ml
} // namespace namer

#endif // NAMER_ML_MODELS_H
