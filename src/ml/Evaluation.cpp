//===- ml/Evaluation.cpp --------------------------------------------------==//

#include "ml/Evaluation.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace namer;
using namespace namer::ml;

Metrics ml::computeMetrics(const std::vector<bool> &Predicted,
                           const std::vector<bool> &Actual) {
  assert(Predicted.size() == Actual.size() && "prediction count mismatch");
  size_t TP = 0, TN = 0, FP = 0, FN = 0;
  for (size_t I = 0; I != Predicted.size(); ++I) {
    if (Predicted[I] && Actual[I])
      ++TP;
    else if (Predicted[I] && !Actual[I])
      ++FP;
    else if (!Predicted[I] && Actual[I])
      ++FN;
    else
      ++TN;
  }
  Metrics M;
  M.Support = Predicted.size();
  if (M.Support == 0)
    return M;
  M.Accuracy = static_cast<double>(TP + TN) / static_cast<double>(M.Support);
  M.Precision = TP + FP == 0 ? 0.0
                             : static_cast<double>(TP) /
                                   static_cast<double>(TP + FP);
  M.Recall = TP + FN == 0
                 ? 0.0
                 : static_cast<double>(TP) / static_cast<double>(TP + FN);
  M.F1 = M.Precision + M.Recall == 0
             ? 0.0
             : 2.0 * M.Precision * M.Recall / (M.Precision + M.Recall);
  return M;
}

Metrics ml::averageMetrics(const std::vector<Metrics> &Runs) {
  Metrics Avg;
  if (Runs.empty())
    return Avg;
  for (const Metrics &M : Runs) {
    Avg.Accuracy += M.Accuracy;
    Avg.Precision += M.Precision;
    Avg.Recall += M.Recall;
    Avg.F1 += M.F1;
    Avg.Support += M.Support;
  }
  double N = static_cast<double>(Runs.size());
  Avg.Accuracy /= N;
  Avg.Precision /= N;
  Avg.Recall /= N;
  Avg.F1 /= N;
  return Avg;
}

Metrics ml::crossValidate(
    const Matrix &X, const std::vector<bool> &Y,
    const std::function<std::unique_ptr<BinaryClassifier>()> &Factory,
    const CrossValidationConfig &Config) {
  size_t N = X.rows();
  Rng R(Config.Seed);
  std::vector<Metrics> Runs;
  for (size_t Repeat = 0; Repeat != Config.Repeats; ++Repeat) {
    std::vector<size_t> Order(N);
    std::iota(Order.begin(), Order.end(), 0);
    R.shuffle(Order);
    size_t TrainCount = static_cast<size_t>(
        static_cast<double>(N) * Config.TrainFraction);
    TrainCount = std::min(std::max<size_t>(TrainCount, 1), N - 1);

    Matrix TrainX(TrainCount, X.cols());
    std::vector<bool> TrainY(TrainCount);
    for (size_t I = 0; I != TrainCount; ++I) {
      for (size_t J = 0; J != X.cols(); ++J)
        TrainX.at(I, J) = X.at(Order[I], J);
      TrainY[I] = Y[Order[I]];
    }
    auto Model = Factory();
    Model->fit(TrainX, TrainY);

    std::vector<bool> Predicted, Actual;
    for (size_t I = TrainCount; I != N; ++I) {
      Predicted.push_back(Model->predict(X.rowVector(Order[I])));
      Actual.push_back(Y[Order[I]]);
    }
    Runs.push_back(computeMetrics(Predicted, Actual));
  }
  return averageMetrics(Runs);
}

std::string
ml::selectModel(const Matrix &X, const std::vector<bool> &Y,
                const std::vector<std::string> &Families,
                const CrossValidationConfig &Config,
                std::vector<std::pair<std::string, Metrics>> *All) {
  std::string Best;
  double BestF1 = -1.0;
  for (const std::string &Family : Families) {
    Metrics M = crossValidate(
        X, Y, [&] { return makeClassifier(Family); }, Config);
    if (All)
      All->emplace_back(Family, M);
    if (M.F1 > BestF1) {
      BestF1 = M.F1;
      Best = Family;
    }
  }
  return Best;
}
