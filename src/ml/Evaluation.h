//===- ml/Evaluation.h - Metrics and cross-validation -----------*- C++ -*-==//
///
/// \file
/// The evaluation harness of Section 5.1/5.2: accuracy, precision, recall
/// and F1 on binary predictions, plus the repeated 80/20 holdout
/// cross-validation used for model selection (the paper repeats the split
/// 30 times and averages).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ML_EVALUATION_H
#define NAMER_ML_EVALUATION_H

#include "ml/Models.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace namer {
namespace ml {

struct Metrics {
  double Accuracy = 0;
  double Precision = 0;
  double Recall = 0;
  double F1 = 0;
  size_t Support = 0; ///< number of evaluated samples
};

/// Computes binary metrics. Precision/recall treat "true" as positive;
/// both are 0 when undefined (no predicted / actual positives).
Metrics computeMetrics(const std::vector<bool> &Predicted,
                       const std::vector<bool> &Actual);

/// Averages metrics element-wise.
Metrics averageMetrics(const std::vector<Metrics> &Runs);

struct CrossValidationConfig {
  double TrainFraction = 0.8;
  size_t Repeats = 30;
  uint64_t Seed = 1;
};

/// Repeated random-split evaluation of a classifier family (fresh model per
/// split, built by \p Factory).
Metrics crossValidate(
    const Matrix &X, const std::vector<bool> &Y,
    const std::function<std::unique_ptr<BinaryClassifier>()> &Factory,
    const CrossValidationConfig &Config = CrossValidationConfig());

/// Runs crossValidate for each family name and returns the best-scoring
/// name by F1 (the Section 5.1 model selection).
std::string selectModel(const Matrix &X, const std::vector<bool> &Y,
                        const std::vector<std::string> &Families,
                        const CrossValidationConfig &Config,
                        std::vector<std::pair<std::string, Metrics>> *All =
                            nullptr);

} // namespace ml
} // namespace namer

#endif // NAMER_ML_EVALUATION_H
