//===- ml/Matrix.h - Dense matrices for the ML layer ------------*- C++ -*-==//
///
/// \file
/// A minimal dense row-major matrix of doubles: just enough linear algebra
/// for feature standardization, PCA via Jacobi rotations, and the linear
/// classifiers of Section 4.2. Deliberately not a general BLAS; clarity
/// over absolute speed (feature matrices here are 120 x 17).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ML_MATRIX_H
#define NAMER_ML_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace namer {
namespace ml {

class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Pointer to row \p R (contiguous NumCols doubles).
  double *row(size_t R) { return &Data[R * NumCols]; }
  const double *row(size_t R) const { return &Data[R * NumCols]; }

  /// Copies row \p R into a vector.
  std::vector<double> rowVector(size_t R) const {
    return std::vector<double>(row(R), row(R) + NumCols);
  }

  /// this * Other.
  Matrix multiply(const Matrix &Other) const;
  /// Transpose.
  Matrix transposed() const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Dot product of equal-length vectors.
double dot(const std::vector<double> &A, const std::vector<double> &B);

} // namespace ml
} // namespace namer

#endif // NAMER_ML_MATRIX_H
