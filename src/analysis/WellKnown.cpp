//===- analysis/WellKnown.cpp ---------------------------------------------==//

#include "analysis/WellKnown.h"

using namespace namer;

void WellKnownRegistry::addClass(std::string_view Name, std::string_view Base,
                                 std::vector<std::string> Methods) {
  ClassInfo &Info = Classes[std::string(Name)];
  Info.Base = std::string(Base);
  for (std::string &M : Methods)
    Info.Methods.insert(std::move(M));
}

void WellKnownRegistry::addModule(std::string_view Name) {
  Modules.insert(std::string(Name));
}

void WellKnownRegistry::addFunction(std::string_view Name,
                                    std::string_view ReturnType) {
  Functions[std::string(Name)] = std::string(ReturnType);
}

std::optional<std::string>
WellKnownRegistry::baseOf(std::string_view Name) const {
  auto It = Classes.find(std::string(Name));
  if (It == Classes.end() || It->second.Base.empty())
    return std::nullopt;
  return It->second.Base;
}

std::optional<std::string>
WellKnownRegistry::methodOwner(std::string_view Class,
                               std::string_view Method) const {
  std::string Current(Class);
  for (int Depth = 0; Depth < 16; ++Depth) {
    auto It = Classes.find(Current);
    if (It == Classes.end())
      return std::nullopt;
    if (It->second.Methods.count(std::string(Method)))
      return Current;
    if (It->second.Base.empty())
      return std::nullopt;
    Current = It->second.Base;
  }
  return std::nullopt;
}

std::optional<std::string>
WellKnownRegistry::callOrigin(std::string_view Name) const {
  auto It = Functions.find(std::string(Name));
  if (It == Functions.end())
    return std::nullopt;
  return It->second.empty() ? std::string(Name) : It->second;
}

std::string WellKnownRegistry::generalize(
    std::string_view Class,
    const std::unordered_map<std::string, std::string> &LocalBases) const {
  std::string Current(Class);
  for (int Depth = 0; Depth < 16; ++Depth) {
    // The universal roots carry no naming signal; generalizing Conn ->
    // object would erase the useful class identity.
    if (isKnownClass(Current) && Current != "object" && Current != "Object")
      return Current;
    auto It = LocalBases.find(Current);
    if (It == LocalBases.end() || It->second.empty())
      return std::string(Class);
    Current = It->second;
  }
  return std::string(Class);
}

WellKnownRegistry WellKnownRegistry::forPython() {
  WellKnownRegistry R;
  // unittest: the assert* family on TestCase drives the Figure 2 /
  // Table 3 idioms.
  R.addClass("TestCase", "object",
             {"assertTrue", "assertFalse", "assertEqual", "assertEquals",
              "assertNotEqual", "assertIn", "assertNotIn", "assertIsNone",
              "assertIsNotNone", "assertRaises", "assertAlmostEqual",
              "assertGreater", "assertLess", "setUp", "tearDown", "run",
              "fail"});
  R.addClass("object", "");
  // Common exception hierarchy.
  R.addClass("BaseException", "object");
  R.addClass("Exception", "BaseException");
  R.addClass("ValueError", "Exception");
  R.addClass("TypeError", "Exception");
  R.addClass("KeyError", "Exception");
  R.addClass("IOError", "Exception");
  R.addClass("RuntimeError", "Exception");
  R.addClass("AttributeError", "Exception");
  R.addClass("StopIteration", "Exception");
  // Builtin container/string types.
  R.addClass("dict", "object",
             {"get", "keys", "values", "items", "update", "pop",
              "setdefault"});
  R.addClass("list", "object",
             {"append", "extend", "insert", "remove", "pop", "sort",
              "index", "count"});
  R.addClass("str", "object",
             {"split", "join", "strip", "lower", "upper", "replace",
              "format", "startswith", "endswith", "find", "encode",
              "decode"});
  R.addClass("set", "object", {"add", "remove", "discard", "union"});
  R.addClass("file", "object", {"read", "write", "close", "readlines",
                                "readline", "flush"});
  // Threading / logging flavors seen in the corpus.
  R.addClass("Thread", "object", {"start", "run", "join", "is_alive"});
  R.addClass("Logger", "object",
             {"debug", "info", "warning", "error", "critical", "exception",
              "log"});
  // Modules.
  for (const char *M :
       {"numpy", "os", "os.path", "sys", "re", "json", "logging", "math",
        "time", "random", "collections", "unittest", "itertools",
        "threading", "subprocess"})
    R.addModule(M);
  // Free functions with useful value origins.
  R.addFunction("range");
  R.addFunction("xrange");
  R.addFunction("len");
  R.addFunction("open", "file");
  R.addFunction("int");
  R.addFunction("float");
  R.addFunction("str", "str");
  R.addFunction("list", "list");
  R.addFunction("dict", "dict");
  R.addFunction("set", "set");
  R.addFunction("sorted", "list");
  R.addFunction("enumerate");
  R.addFunction("zip");
  R.addFunction("isinstance");
  R.addFunction("getattr");
  R.addFunction("abs");
  R.addFunction("min");
  R.addFunction("max");
  R.addFunction("sum");
  return R;
}

WellKnownRegistry WellKnownRegistry::forJava() {
  WellKnownRegistry R;
  R.addClass("Object", "",
             {"toString", "equals", "hashCode", "getClass", "clone"});
  // The Throwable hierarchy behind Table 6, example 3.
  R.addClass("Throwable", "Object",
             {"getMessage", "getStackTrace", "printStackTrace", "getCause",
              "initCause", "addSuppressed"});
  R.addClass("Exception", "Throwable");
  R.addClass("RuntimeException", "Exception");
  R.addClass("IllegalArgumentException", "RuntimeException");
  R.addClass("IllegalStateException", "RuntimeException");
  R.addClass("NullPointerException", "RuntimeException");
  R.addClass("IOException", "Exception");
  R.addClass("FileNotFoundException", "IOException");
  R.addClass("InterruptedException", "Exception");
  R.addClass("Error", "Throwable");
  R.addClass("OutOfMemoryError", "Error");
  // Core library types.
  R.addClass("String", "Object",
             {"length", "charAt", "substring", "indexOf", "split", "trim",
              "toLowerCase", "toUpperCase", "equalsIgnoreCase", "contains",
              "replace", "startsWith", "endsWith", "isEmpty", "format"});
  R.addClass("StringBuilder", "Object",
             {"append", "toString", "length", "insert", "reverse",
              "deleteCharAt"});
  R.addClass("StringBuffer", "Object", {"append", "toString", "length"});
  R.addClass("StringWriter", "Object", {"write", "toString", "getBuffer"});
  R.addClass("List", "Object",
             {"add", "get", "size", "remove", "contains", "isEmpty",
              "clear", "indexOf", "iterator", "addAll"});
  R.addClass("ArrayList", "List");
  R.addClass("LinkedList", "List");
  R.addClass("Map", "Object",
             {"put", "get", "containsKey", "remove", "keySet", "values",
              "entrySet", "size", "isEmpty", "clear"});
  R.addClass("HashMap", "Map");
  R.addClass("TreeMap", "Map");
  R.addClass("Set", "Object", {"add", "contains", "remove", "size"});
  R.addClass("HashSet", "Set");
  R.addClass("Iterator", "Object", {"hasNext", "next", "remove"});
  R.addClass("Thread", "Object",
             {"start", "run", "join", "sleep", "interrupt", "isAlive"});
  R.addClass("File", "Object",
             {"exists", "getName", "getPath", "delete", "mkdir", "mkdirs",
              "isDirectory", "listFiles", "getAbsolutePath"});
  R.addClass("Scanner", "Object",
             {"nextLine", "nextInt", "next", "hasNext", "close"});
  // Android surface that Table 6 examples 5-6 rely on.
  R.addClass("Context", "Object",
             {"startActivity", "getString", "getResources",
              "getSystemService", "getApplicationContext"});
  R.addClass("Activity", "Context",
             {"onCreate", "findViewById", "setContentView", "finish",
              "getIntent", "runOnUiThread"});
  R.addClass("Intent", "Object",
             {"putExtra", "getStringExtra", "setAction", "addFlags",
              "setClass"});
  R.addClass("Dialog", "Object", {"show", "dismiss", "hide", "setTitle"});
  R.addClass("ProgressDialog", "Dialog",
             {"setMessage", "setProgress", "setIndeterminate"});
  R.addClass("View", "Object",
             {"setVisibility", "setOnClickListener", "findViewById",
              "invalidate", "getContext"});
  R.addClass("TextView", "View", {"setText", "getText", "setTextColor"});
  R.addClass("Button", "TextView", {});
  R.addClass("Bundle", "Object", {"putString", "getString", "putInt",
                                  "getInt"});
  // JUnit.
  R.addClass("TestCase", "Object",
             {"assertTrue", "assertFalse", "assertEquals", "assertNotNull",
              "assertNull", "assertSame", "fail", "setUp", "tearDown"});
  // Free/static functions.
  R.addFunction("valueOf", "String");
  R.addFunction("parseInt");
  R.addFunction("parseDouble");
  R.addFunction("currentTimeMillis");
  R.addFunction("format", "String");
  return R;
}
