//===- analysis/Origins.cpp -----------------------------------------------==//

#include "analysis/Origins.h"

#include "analysis/datalog/Datalog.h"

#include "ast/Statements.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace namer;
using datalog::Atom;
using datalog::Engine;
using datalog::Literal;
using datalog::RelationId;
using datalog::Rule;
using datalog::Term;

namespace {

/// A function-like scope: a module, function or method.
struct Scope {
  NodeId Definition = InvalidNode; // FunctionDef, or Module for scope 0
  NodeId Body = InvalidNode;       // Body node holding the statements
  std::string Name;    // function name ("" for module)
  std::string Class;   // enclosing class name ("" outside classes)
  std::vector<NodeId> Params; // Param nodes in order
  std::unordered_set<std::string> Assigned; // locally bound names
};

/// One k-bounded call string. Context 0 is the empty string.
using ContextId = uint32_t;

/// Primitive types get value origins from the data flow analysis, not
/// allocation-site types (Section 4.1 treats them separately).
bool isPrimitiveType(std::string_view Name) {
  return Name == "int" || Name == "long" || Name == "double" ||
         Name == "float" || Name == "boolean" || Name == "char" ||
         Name == "short" || Name == "byte" || Name == "void";
}

struct OriginComputer {
  const Tree &M;
  const WellKnownRegistry &Registry;
  AnalysisConfig Config;
  AstContext &Ctx;

  // Structure.
  std::vector<Scope> Scopes;
  std::unordered_map<NodeId, uint32_t> ScopeOfBody; // Body node -> scope idx
  std::unordered_map<std::string, std::string> LocalBases;
  std::unordered_map<std::string, std::unordered_map<std::string, uint32_t>>
      Methods; // class -> method name -> scope idx
  std::unordered_map<std::string, uint32_t> FreeFunctions;
  std::unordered_map<std::string, std::string> ModuleAliases;
  std::unordered_map<std::string, std::string> FieldTypes; // class.field -> T
  std::unordered_map<std::string, std::string> DeclaredTypes; // scoped var -> T

  // Contexts.
  struct CallEdge {
    uint32_t CallerScope;
    NodeId CallSite;
    uint32_t CalleeScope;
  };
  std::vector<CallEdge> CallEdges;
  // Per scope, the set of contexts it is analyzed under. Context content is
  // a call string; identity is interned below.
  std::vector<std::vector<ContextId>> ScopeContexts;
  std::unordered_map<std::string, ContextId> ContextIds;
  unsigned EffectiveK = 0;

  // Datalog.
  Engine E;
  RelationId RelAlloc, RelMove, RelLoad, RelStore, RelVpt, RelFieldPt,
      RelValueOrigin;
  StringInterner Atoms; // atom universe (separate from AST symbols)
  std::unordered_map<Atom, std::string> SiteType; // site atom -> type name
  std::unordered_map<std::string, uint32_t> AssignCounts; // kill analysis
  /// (call site, callee context) pairs currently being expanded; guards the
  /// return-flow walk against recursive call graphs.
  std::unordered_set<uint64_t> ActiveCalls;
  size_t FactCount = 0;

  OriginComputer(const Tree &Module, const WellKnownRegistry &Registry,
                 AnalysisConfig Config)
      : M(Module), Registry(Registry), Config(Config),
        Ctx(Module.context()) {}

  AnalysisResult run();

  // Phase A.
  void discoverStructure();
  void scanScopeBindings(uint32_t ScopeIdx, NodeId N);
  // Phase B.
  void buildCallGraph();
  uint32_t resolveCallee(uint32_t CallerScope, NodeId CallNode) const;
  void buildContexts();
  ContextId pushContext(ContextId Caller, NodeId CallSite, unsigned K);
  // Phase C.
  void extractFacts();
  void extractScopeFacts(uint32_t ScopeIdx, ContextId Ctx);
  void extractStmtFacts(uint32_t ScopeIdx, ContextId Ctx, NodeId Stmt);
  /// Returns the atom holding the value of expression \p N, emitting
  /// load/alloc/move facts as needed, or 0 when untracked.
  Atom evalExpr(uint32_t ScopeIdx, ContextId Cx, NodeId N);
  void assignTo(uint32_t ScopeIdx, ContextId Cx, NodeId Target, Atom Value,
                NodeId ValueNode);
  // Phase E.
  void assignOrigins(AnalysisResult &Result);

  // Helpers.
  Atom varAtom(uint32_t ScopeIdx, ContextId Cx, std::string_view Name) {
    return Atoms.intern("v:" + std::to_string(ScopeIdx) + ":" +
                        std::to_string(Cx) + ":" + std::string(Name));
  }
  Atom siteAtom(NodeId N, std::string_view Type) {
    Atom A = Atoms.intern("s:" + std::to_string(N));
    if (!Type.empty())
      SiteType.emplace(A, std::string(Type));
    return A;
  }
  Atom fieldAtom(std::string_view Name) {
    return Atoms.intern("f:" + std::string(Name));
  }
  Atom originAtom(std::string_view Name) {
    return Atoms.intern("o:" + std::string(Name));
  }
  void fact(RelationId Rel, std::initializer_list<Atom> As) {
    E.addFact(Rel, As);
    ++FactCount;
  }

  std::string identText(NodeId N) const {
    return std::string(M.valueText(N));
  }
  /// The Ident child of a wrapper node, or InvalidNode.
  NodeId identOf(NodeId N) const {
    for (NodeId C : M.node(N).Children)
      if (M.node(C).Kind == NodeKind::Ident)
        return C;
    return InvalidNode;
  }
  /// Variable scope resolution: the scope where \p Name is bound when
  /// referenced from \p ScopeIdx (local, else module).
  uint32_t resolveVarScope(uint32_t ScopeIdx, const std::string &Name) const {
    if (Scopes[ScopeIdx].Assigned.count(Name))
      return ScopeIdx;
    return 0; // module scope
  }
};

// --- Phase A: structure ------------------------------------------------------

void OriginComputer::discoverStructure() {
  // Scope 0 = module.
  Scope ModuleScope;
  ModuleScope.Definition = M.root();
  ModuleScope.Body = M.root();
  Scopes.push_back(ModuleScope);
  ScopeOfBody[M.root()] = 0;

  // Walk once to find classes and functions.
  for (NodeId N = 0; N != M.size(); ++N) {
    const Node &Nd = M.node(N);
    if (Nd.Kind == NodeKind::ClassDef) {
      NodeId NameIdent = identOf(N);
      if (NameIdent == InvalidNode)
        continue;
      std::string ClassName = identText(NameIdent);
      std::string Base;
      for (NodeId C : Nd.Children) {
        if (M.node(C).Kind != NodeKind::BasesList)
          continue;
        for (NodeId B : M.node(C).Children) {
          // Python: NameLoad base; Java: TypeRef base.
          NodeId BI = identOf(B);
          if (BI != InvalidNode) {
            Base = identText(BI);
            break;
          }
        }
      }
      LocalBases[ClassName] = Base;
      continue;
    }
    if (Nd.Kind == NodeKind::FunctionDef) {
      Scope S;
      S.Definition = N;
      NodeId NameIdent = identOf(N);
      S.Name = NameIdent == InvalidNode ? "<lambda>" : identText(NameIdent);
      NodeId ClassDef = enclosingNode(M, N, NodeKind::ClassDef);
      if (ClassDef != InvalidNode) {
        NodeId CI = identOf(ClassDef);
        S.Class = CI == InvalidNode ? "" : identText(CI);
      }
      for (NodeId C : Nd.Children) {
        if (M.node(C).Kind == NodeKind::ParamList)
          for (NodeId P : M.node(C).Children)
            S.Params.push_back(P);
        if (M.node(C).Kind == NodeKind::Body)
          S.Body = C;
      }
      uint32_t Idx = static_cast<uint32_t>(Scopes.size());
      Scopes.push_back(std::move(S));
      if (Scopes[Idx].Body != InvalidNode)
        ScopeOfBody[Scopes[Idx].Body] = Idx;
      if (!Scopes[Idx].Class.empty())
        Methods[Scopes[Idx].Class][Scopes[Idx].Name] = Idx;
      else
        FreeFunctions[Scopes[Idx].Name] = Idx;
      continue;
    }
    if (Nd.Kind == NodeKind::Import) {
      // Import [module (, alias)]: bind alias (or module name) to module.
      const auto &Kids = Nd.Children;
      if (Kids.empty())
        continue;
      std::string Module = identText(Kids[0]);
      if (M.valueText(N) == "FromImport") {
        // FromImport [module, name (, alias)]: the bound name is a library
        // symbol; alias to "module.name".
        if (Kids.size() >= 2) {
          std::string Symbol = identText(Kids[1]);
          std::string Bound = Kids.size() >= 3 ? identText(Kids[2]) : Symbol;
          ModuleAliases[Bound] = Symbol; // e.g. TestCase -> TestCase
        }
        continue;
      }
      std::string Bound = Kids.size() >= 2 ? identText(Kids[1]) : Module;
      ModuleAliases[Bound] = Module;
      continue;
    }
  }

  // Collect assigned names per scope.
  for (uint32_t I = 0; I != Scopes.size(); ++I) {
    for (NodeId P : Scopes[I].Params) {
      NodeId PI = identOf(P);
      if (PI != InvalidNode)
        Scopes[I].Assigned.insert(identText(PI));
    }
    scanScopeBindings(I, Scopes[I].Body);
  }
}

void OriginComputer::scanScopeBindings(uint32_t ScopeIdx, NodeId N) {
  if (N == InvalidNode)
    return;
  const Node &Nd = M.node(N);
  // Do not descend into nested function/class scopes (their bodies bind
  // their own names), except for the scope's own definition node.
  if ((Nd.Kind == NodeKind::FunctionDef || Nd.Kind == NodeKind::ClassDef) &&
      N != Scopes[ScopeIdx].Definition && N != Scopes[ScopeIdx].Body)
    return;
  if (Nd.Kind == NodeKind::NameStore) {
    NodeId I = identOf(N);
    if (I != InvalidNode)
      Scopes[ScopeIdx].Assigned.insert(identText(I));
  }
  if (Nd.Kind == NodeKind::Catch) {
    // The bound exception variable is a direct Ident child.
    for (NodeId C : Nd.Children)
      if (M.node(C).Kind == NodeKind::Ident)
        Scopes[ScopeIdx].Assigned.insert(identText(C));
  }
  for (NodeId C : Nd.Children)
    scanScopeBindings(ScopeIdx, C);
}

// --- Phase B: call graph and contexts ----------------------------------------

uint32_t OriginComputer::resolveCallee(uint32_t CallerScope,
                                       NodeId CallNode) const {
  const Node &Call = M.node(CallNode);
  if (Call.Children.empty())
    return UINT32_MAX;
  NodeId Callee = Call.Children[0];
  const Node &CalleeNode = M.node(Callee);
  if (CalleeNode.Kind == NodeKind::NameLoad) {
    NodeId I = identOf(Callee);
    if (I == InvalidNode)
      return UINT32_MAX;
    std::string Name = identText(I);
    auto FIt = FreeFunctions.find(Name);
    if (FIt != FreeFunctions.end())
      return FIt->second;
    // Constructor call of a file-local class: resolves to __init__ or the
    // Java constructor (same name as the class).
    auto BIt = LocalBases.find(Name);
    if (BIt != LocalBases.end()) {
      auto MIt = Methods.find(Name);
      if (MIt != Methods.end()) {
        auto Init = MIt->second.find("__init__");
        if (Init != MIt->second.end())
          return Init->second;
        auto Ctor = MIt->second.find(Name);
        if (Ctor != MIt->second.end())
          return Ctor->second;
      }
    }
    return UINT32_MAX;
  }
  if (CalleeNode.Kind == NodeKind::AttributeLoad &&
      CalleeNode.Children.size() == 2) {
    // self.m(...) / this.m(...): resolve within the enclosing class
    // hierarchy defined in this file.
    NodeId Receiver = CalleeNode.Children[0];
    NodeId AttrNode = CalleeNode.Children[1];
    NodeId RI = identOf(Receiver);
    NodeId AI = identOf(AttrNode);
    if (RI == InvalidNode || AI == InvalidNode)
      return UINT32_MAX;
    std::string Recv = identText(RI);
    if (Recv != "self" && Recv != "this")
      return UINT32_MAX;
    std::string Method = identText(AI);
    std::string Class = Scopes[CallerScope].Class;
    for (int Depth = 0; Depth < 16 && !Class.empty(); ++Depth) {
      auto MIt = Methods.find(Class);
      if (MIt != Methods.end()) {
        auto It = MIt->second.find(Method);
        if (It != MIt->second.end())
          return It->second;
      }
      auto BIt = LocalBases.find(Class);
      Class = BIt == LocalBases.end() ? "" : BIt->second;
    }
  }
  return UINT32_MAX;
}

void OriginComputer::buildCallGraph() {
  for (NodeId N = 0; N != M.size(); ++N) {
    if (M.node(N).Kind != NodeKind::Call)
      continue;
    // The enclosing scope: nearest FunctionDef body, else module.
    uint32_t Caller = 0;
    NodeId Fn = enclosingNode(M, N, NodeKind::FunctionDef);
    if (Fn != InvalidNode) {
      for (uint32_t I = 1; I != Scopes.size(); ++I)
        if (Scopes[I].Definition == Fn)
          Caller = I;
    }
    uint32_t Callee = resolveCallee(Caller, N);
    if (Callee != UINT32_MAX)
      CallEdges.push_back(CallEdge{Caller, N, Callee});
  }
}

ContextId OriginComputer::pushContext(ContextId Caller, NodeId CallSite,
                                      unsigned K) {
  // Contexts are interned strings "cs1.cs2..." (most recent first),
  // truncated to K sites.
  std::string CallerKey;
  for (const auto &[Key, Id] : ContextIds)
    if (Id == Caller)
      CallerKey = Key;
  std::string Key = std::to_string(CallSite);
  if (!CallerKey.empty())
    Key += "." + CallerKey;
  // Truncate to K components.
  size_t Components = 1, Pos = 0;
  while ((Pos = Key.find('.', Pos)) != std::string::npos) {
    ++Components;
    if (Components > K) {
      Key.resize(Pos);
      break;
    }
    ++Pos;
  }
  auto [It, Inserted] = ContextIds.emplace(Key, ContextIds.size() + 1);
  (void)Inserted;
  return It->second;
}

void OriginComputer::buildContexts() {
  unsigned K = Config.CallSiteSensitivity;
  while (true) {
    ContextIds.clear();
    ScopeContexts.assign(Scopes.size(), {});
    // Every scope is a possible entry point: context 0 (empty string).
    for (auto &Ctxs : ScopeContexts)
      Ctxs.push_back(0);
    if (K > 0) {
      // Propagate along call edges to a fixpoint (contexts only grow).
      bool Changed = true;
      size_t Guard = 0;
      while (Changed && Guard++ < 64) {
        Changed = false;
        for (const CallEdge &Edge : CallEdges) {
          for (ContextId CallerCtx : ScopeContexts[Edge.CallerScope]) {
            ContextId NewCtx = pushContext(CallerCtx, Edge.CallSite, K);
            auto &Dest = ScopeContexts[Edge.CalleeScope];
            if (std::find(Dest.begin(), Dest.end(), NewCtx) == Dest.end()) {
              Dest.push_back(NewCtx);
              Changed = true;
            }
          }
        }
      }
    }
    size_t Total = 0;
    for (const auto &Ctxs : ScopeContexts)
      Total += Ctxs.size();
    double Avg = static_cast<double>(Total) /
                 static_cast<double>(std::max<size_t>(1, Scopes.size()));
    if (Avg <= Config.MaxAvgContextsPerFunction || K == 0) {
      EffectiveK = K;
      return;
    }
    --K; // combinatorial explosion: back off (Section 4.1)
  }
}

// --- Phase C: fact extraction -------------------------------------------------

void OriginComputer::extractFacts() {
  RelAlloc = E.addRelation("alloc", 2);
  RelMove = E.addRelation("move", 2);
  RelLoad = E.addRelation("load", 3);
  RelStore = E.addRelation("store", 3);
  RelVpt = E.addRelation("vpt", 2);
  RelFieldPt = E.addRelation("fieldPt", 3);
  RelValueOrigin = E.addRelation("valueOrigin", 2);

  // vpt(v, s) :- alloc(v, s).
  E.addRule(Rule{Literal{RelVpt, {Term::var(0), Term::var(1)}},
                 {Literal{RelAlloc, {Term::var(0), Term::var(1)}}}});
  // vpt(to, s) :- move(to, from), vpt(from, s).
  E.addRule(Rule{Literal{RelVpt, {Term::var(0), Term::var(2)}},
                 {Literal{RelMove, {Term::var(0), Term::var(1)}},
                  Literal{RelVpt, {Term::var(1), Term::var(2)}}}});
  // fieldPt(b, f, s) :- store(base, f, from), vpt(base, b), vpt(from, s).
  E.addRule(Rule{
      Literal{RelFieldPt, {Term::var(3), Term::var(1), Term::var(4)}},
      {Literal{RelStore, {Term::var(0), Term::var(1), Term::var(2)}},
       Literal{RelVpt, {Term::var(0), Term::var(3)}},
       Literal{RelVpt, {Term::var(2), Term::var(4)}}}});
  // vpt(to, s) :- load(to, base, f), vpt(base, b), fieldPt(b, f, s).
  E.addRule(
      Rule{Literal{RelVpt, {Term::var(0), Term::var(4)}},
           {Literal{RelLoad, {Term::var(0), Term::var(1), Term::var(2)}},
            Literal{RelVpt, {Term::var(1), Term::var(3)}},
            Literal{RelFieldPt, {Term::var(3), Term::var(2), Term::var(4)}}}});
  // valueOrigin(to, o) :- move(to, from), valueOrigin(from, o).
  E.addRule(Rule{Literal{RelValueOrigin, {Term::var(0), Term::var(2)}},
                 {Literal{RelMove, {Term::var(0), Term::var(1)}},
                  Literal{RelValueOrigin, {Term::var(1), Term::var(2)}}}});

  for (uint32_t S = 0; S != Scopes.size(); ++S)
    for (ContextId Cx : ScopeContexts[S])
      extractScopeFacts(S, Cx);
}

void OriginComputer::extractScopeFacts(uint32_t ScopeIdx, ContextId Cx) {
  const Scope &S = Scopes[ScopeIdx];

  // Parameters: self/this points to an instance of the enclosing class;
  // other parameters of entry contexts are opaque. Java parameters carry
  // declared types.
  for (NodeId P : S.Params) {
    NodeId PI = identOf(P);
    if (PI == InvalidNode)
      continue;
    std::string Name = identText(PI);
    if ((Name == "self" || Name == "this") && !S.Class.empty()) {
      fact(RelAlloc, {varAtom(ScopeIdx, Cx, Name),
                      siteAtom(P, S.Class)});
      continue;
    }
    // Declared parameter type (Java): Param [TypeRef, Ident]. Primitive
    // parameters carry no object identity.
    for (NodeId C : M.node(P).Children) {
      if (M.node(C).Kind != NodeKind::TypeRef)
        continue;
      NodeId TI = identOf(C);
      if (TI != InvalidNode && !isPrimitiveType(identText(TI)))
        fact(RelAlloc, {varAtom(ScopeIdx, Cx, Name),
                        siteAtom(P, identText(TI))});
    }
  }
  // Java implicit this.
  if (!S.Class.empty() && S.Definition != InvalidNode)
    fact(RelAlloc, {varAtom(ScopeIdx, Cx, "this"),
                    siteAtom(S.Definition, S.Class)});

  if (S.Body == InvalidNode)
    return;
  // Walk statements of this scope only (not nested functions).
  std::vector<NodeId> Work = {S.Body};
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    const Node &Nd = M.node(N);
    if ((Nd.Kind == NodeKind::FunctionDef || Nd.Kind == NodeKind::ClassDef) &&
        N != S.Definition)
      continue;
    if (isStatementKind(Nd.Kind) && Nd.Kind != NodeKind::FunctionDef &&
        Nd.Kind != NodeKind::ClassDef)
      extractStmtFacts(ScopeIdx, Cx, N);
    for (NodeId C : Nd.Children)
      Work.push_back(C);
  }
}

void OriginComputer::extractStmtFacts(uint32_t ScopeIdx, ContextId Cx,
                                      NodeId Stmt) {
  const Node &Nd = M.node(Stmt);
  switch (Nd.Kind) {
  case NodeKind::Assign: {
    // Children: target(s)..., value (last non-Body child).
    std::vector<NodeId> Kids;
    for (NodeId C : Nd.Children)
      if (M.node(C).Kind != NodeKind::Body)
        Kids.push_back(C);
    if (Kids.size() < 2)
      return;
    NodeId Value = Kids.back();
    Atom V = evalExpr(ScopeIdx, Cx, Value);
    for (size_t I = 0; I + 1 < Kids.size(); ++I)
      assignTo(ScopeIdx, Cx, Kids[I], V, Value);
    return;
  }
  case NodeKind::AugAssign: {
    // x += e kills x's origin; model as an assignment counted twice.
    if (Nd.Children.empty())
      return;
    NodeId Target = Nd.Children.front();
    if (M.node(Target).Kind == NodeKind::NameStore) {
      NodeId I = identOf(Target);
      if (I != InvalidNode) {
        std::string Name = identText(I);
        uint32_t VarScope = resolveVarScope(ScopeIdx, Name);
        AssignCounts["v:" + std::to_string(VarScope) + ":" + Name] += 2;
      }
    }
    return;
  }
  case NodeKind::VarDecl: {
    // Java: VarDecl [TypeRef, NameStore, init?].
    NodeId Type = InvalidNode, Store = InvalidNode, Init = InvalidNode;
    for (NodeId C : Nd.Children) {
      switch (M.node(C).Kind) {
      case NodeKind::TypeRef:
        Type = C;
        break;
      case NodeKind::NameStore:
        Store = C;
        break;
      case NodeKind::Body:
        break;
      default:
        Init = C;
        break;
      }
    }
    if (Store == InvalidNode)
      return;
    NodeId SI = identOf(Store);
    if (SI == InvalidNode)
      return;
    std::string Name = identText(SI);
    Scopes[ScopeIdx].Assigned.insert(Name);
    if (Type != InvalidNode) {
      NodeId TI = identOf(Type);
      if (TI != InvalidNode) {
        std::string TypeName = identText(TI);
        DeclaredTypes[std::to_string(ScopeIdx) + ":" + Name] = TypeName;
        // Primitive locals (loop indices, counters) have value origins
        // from the data flow analysis, not allocation-site types.
        if (!isPrimitiveType(TypeName))
          fact(RelAlloc,
               {varAtom(ScopeIdx, Cx, Name), siteAtom(Type, TypeName)});
      }
    }
    if (Init != InvalidNode) {
      Atom V = evalExpr(ScopeIdx, Cx, Init);
      assignTo(ScopeIdx, Cx, Store, V, Init);
    }
    return;
  }
  case NodeKind::For: {
    // Python foreach: For [target, iter, Body...]. Java foreach handled by
    // the VarDecl child; classic for by its VarDecl/ExprStmt children.
    if (Nd.Children.size() >= 2 &&
        (M.node(Nd.Children[0]).Kind == NodeKind::NameStore ||
         M.node(Nd.Children[0]).Kind == NodeKind::TupleLit)) {
      Atom V = evalExpr(ScopeIdx, Cx, Nd.Children[1]);
      assignTo(ScopeIdx, Cx, Nd.Children[0], V, Nd.Children[1]);
    }
    return;
  }
  case NodeKind::Catch: {
    // Catch [TypeRef, Ident, Body]: the variable holds an instance of the
    // caught type.
    NodeId Type = InvalidNode, Var = InvalidNode;
    for (NodeId C : Nd.Children) {
      if (M.node(C).Kind == NodeKind::TypeRef && Type == InvalidNode)
        Type = C;
      if (M.node(C).Kind == NodeKind::Ident)
        Var = C;
    }
    if (Type == InvalidNode || Var == InvalidNode)
      return;
    NodeId TI = identOf(Type);
    if (TI == InvalidNode)
      return;
    std::string Name = identText(Var);
    DeclaredTypes[std::to_string(ScopeIdx) + ":" + Name] = identText(TI);
    fact(RelAlloc,
         {varAtom(ScopeIdx, Cx, Name), siteAtom(Type, identText(TI))});
    return;
  }
  case NodeKind::ExprStmt:
  case NodeKind::Return:
  case NodeKind::Raise:
  case NodeKind::While:
  case NodeKind::If: {
    // Evaluate non-Body children for their call side effects.
    for (NodeId C : Nd.Children)
      if (M.node(C).Kind != NodeKind::Body)
        evalExpr(ScopeIdx, Cx, C);
    return;
  }
  default:
    return;
  }
}

Atom OriginComputer::evalExpr(uint32_t ScopeIdx, ContextId Cx, NodeId N) {
  const Node &Nd = M.node(N);
  switch (Nd.Kind) {
  case NodeKind::NameLoad: {
    NodeId I = identOf(N);
    if (I == InvalidNode)
      return 0;
    std::string Name = identText(I);
    // Module alias? Bind to a module-typed site once.
    auto AIt = ModuleAliases.find(Name);
    uint32_t VarScope = resolveVarScope(ScopeIdx, Name);
    Atom V = varAtom(VarScope, VarScope == ScopeIdx ? Cx : 0, Name);
    if (AIt != ModuleAliases.end() && VarScope == 0 &&
        !Scopes[0].Assigned.count(Name))
      fact(RelAlloc, {V, siteAtom(I, AIt->second)});
    return V;
  }
  case NodeKind::AttributeLoad: {
    if (Nd.Children.size() != 2)
      return 0;
    Atom Base = evalExpr(ScopeIdx, Cx, Nd.Children[0]);
    NodeId AI = identOf(Nd.Children[1]);
    if (Base == 0 || AI == InvalidNode)
      return 0;
    Atom Result = Atoms.intern("e:" + std::to_string(N) + ":" +
                               std::to_string(Cx));
    fact(RelLoad, {Result, Base, fieldAtom(identText(AI))});
    return Result;
  }
  case NodeKind::Call:
  case NodeKind::New: {
    // Evaluate arguments for side effects and collect their atoms.
    std::vector<Atom> Args;
    for (size_t I = 1; I < Nd.Children.size(); ++I)
      Args.push_back(evalExpr(ScopeIdx, Cx, Nd.Children[I]));

    Atom Result = Atoms.intern("e:" + std::to_string(N) + ":" +
                               std::to_string(Cx));
    // Java object creation: new T(...) allocates a T.
    if (Nd.Kind == NodeKind::New) {
      NodeId TI = Nd.Children.empty() ? InvalidNode : identOf(Nd.Children[0]);
      if (TI != InvalidNode)
        fact(RelAlloc, {Result, siteAtom(N, identText(TI))});
      return Result;
    }

    uint32_t Callee = UINT32_MAX;
    for (const CallEdge &Edge : CallEdges)
      if (Edge.CallSite == N && Edge.CallerScope == ScopeIdx)
        Callee = Edge.CalleeScope;

    // Python constructor call: Widget() allocates an instance that also
    // flows into __init__'s self when the class defines one.
    bool IsConstructor = false;
    if (!Nd.Children.empty() &&
        M.node(Nd.Children[0]).Kind == NodeKind::NameLoad) {
      NodeId CI = identOf(Nd.Children[0]);
      if (CI != InvalidNode && LocalBases.count(identText(CI))) {
        fact(RelAlloc, {Result, siteAtom(N, identText(CI))});
        IsConstructor = true;
      }
    }

    if (Callee != UINT32_MAX) {
      ContextId CalleeCx =
          EffectiveK == 0 ? 0 : pushContext(Cx, N, EffectiveK);
      // Guard: the context must have been materialized during
      // buildContexts; otherwise fall back to the entry context.
      const auto &Ctxs = ScopeContexts[Callee];
      if (std::find(Ctxs.begin(), Ctxs.end(), CalleeCx) == Ctxs.end())
        CalleeCx = 0;
      // Bind actuals to formals (skipping an implicit self/this formal
      // when the call is a method call through self).
      const Scope &CalleeScope = Scopes[Callee];
      size_t FormalBase = 0;
      if (!CalleeScope.Params.empty()) {
        NodeId PI = identOf(CalleeScope.Params[0]);
        if (PI != InvalidNode && identText(PI) == "self") {
          // The receiver flows into self: the caller's self for method
          // calls, the freshly allocated instance for constructor calls.
          Atom Recv = IsConstructor ? Result : varAtom(ScopeIdx, Cx, "self");
          fact(RelMove, {varAtom(Callee, CalleeCx, "self"), Recv});
          FormalBase = 1;
        }
      }
      for (size_t I = 0; I != Args.size(); ++I) {
        size_t FormalIdx = FormalBase + I;
        if (FormalIdx >= CalleeScope.Params.size() || Args[I] == 0)
          continue;
        NodeId PI = identOf(CalleeScope.Params[FormalIdx]);
        if (PI != InvalidNode)
          fact(RelMove,
               {varAtom(Callee, CalleeCx, identText(PI)), Args[I]});
      }
      // Return values: move every returned expression into the result.
      // Recursive call chains revisit the same (site, context) pair once
      // contexts saturate at k; skip re-expansion to guarantee termination.
      uint64_t CallKey = (static_cast<uint64_t>(N) << 24) ^ CalleeCx;
      if (ActiveCalls.insert(CallKey).second) {
        std::vector<NodeId> Work = {CalleeScope.Body};
        while (!Work.empty()) {
          NodeId W = Work.back();
          Work.pop_back();
          if (W == InvalidNode)
            continue;
          const Node &WN = M.node(W);
          if ((WN.Kind == NodeKind::FunctionDef ||
               WN.Kind == NodeKind::ClassDef) &&
              W != CalleeScope.Definition)
            continue;
          if (WN.Kind == NodeKind::Return && !WN.Children.empty()) {
            Atom Ret = evalExpr(Callee, CalleeCx, WN.Children[0]);
            if (Ret != 0)
              fact(RelMove, {Result, Ret});
          }
          for (NodeId C : WN.Children)
            Work.push_back(C);
        }
        ActiveCalls.erase(CallKey);
      }
      return Result;
    }

    // External call: fresh allocation site (Section 4.1), typed by the
    // registry when the callee is known; the value origin is the function
    // name (the data flow analysis of primitive values).
    NodeId CalleeExpr = Nd.Children.empty() ? InvalidNode : Nd.Children[0];
    std::string CalleeName;
    if (CalleeExpr != InvalidNode) {
      const Node &CE = M.node(CalleeExpr);
      if (CE.Kind == NodeKind::NameLoad) {
        NodeId I = identOf(CalleeExpr);
        if (I != InvalidNode)
          CalleeName = identText(I);
      } else if (CE.Kind == NodeKind::AttributeLoad &&
                 CE.Children.size() == 2) {
        evalExpr(ScopeIdx, Cx, CE.Children[0]); // receiver side effects
        NodeId I = identOf(CE.Children[1]);
        if (I != InvalidNode)
          CalleeName = identText(I);
      }
    }
    if (!CalleeName.empty()) {
      // Constructor of a file-local class without __init__ (already
      // allocated above) or of a known library class.
      if (IsConstructor)
        return Result;
      if (Registry.isKnownClass(CalleeName)) {
        fact(RelAlloc, {Result, siteAtom(N, CalleeName)});
        return Result;
      }
      auto RetType = Registry.callOrigin(CalleeName);
      if (RetType && Registry.isKnownClass(*RetType))
        fact(RelAlloc, {Result, siteAtom(N, *RetType)});
      fact(RelValueOrigin, {Result, originAtom(CalleeName)});
      return Result;
    }
    return Result;
  }
  case NodeKind::Cast: {
    // (T) e: the result is a T.
    NodeId TI = Nd.Children.empty() ? InvalidNode : identOf(Nd.Children[0]);
    for (size_t I = 1; I < Nd.Children.size(); ++I)
      evalExpr(ScopeIdx, Cx, Nd.Children[I]);
    Atom Result = Atoms.intern("e:" + std::to_string(N) + ":" +
                               std::to_string(Cx));
    if (TI != InvalidNode)
      fact(RelAlloc, {Result, siteAtom(N, identText(TI))});
    return Result;
  }
  case NodeKind::TupleLit:
  case NodeKind::ListLit:
  case NodeKind::DictLit:
  case NodeKind::BinOp:
  case NodeKind::UnaryOp:
  case NodeKind::Compare:
  case NodeKind::Subscript:
  case NodeKind::KeywordArg:
  case NodeKind::StarArg:
  case NodeKind::If: {
    for (NodeId C : Nd.Children)
      if (M.node(C).Kind != NodeKind::Body)
        evalExpr(ScopeIdx, Cx, C);
    return 0;
  }
  default:
    return 0;
  }
}

void OriginComputer::assignTo(uint32_t ScopeIdx, ContextId Cx, NodeId Target,
                              Atom Value, NodeId ValueNode) {
  (void)ValueNode;
  const Node &Nd = M.node(Target);
  switch (Nd.Kind) {
  case NodeKind::NameStore: {
    NodeId I = identOf(Target);
    if (I == InvalidNode)
      return;
    std::string Name = identText(I);
    uint32_t VarScope = resolveVarScope(ScopeIdx, Name);
    if (Cx == 0 || VarScope == ScopeIdx)
      ++AssignCounts["v:" + std::to_string(VarScope) + ":" + Name];
    if (Value != 0)
      fact(RelMove, {varAtom(VarScope, VarScope == ScopeIdx ? Cx : 0, Name),
                     Value});
    return;
  }
  case NodeKind::AttributeStore: {
    if (Nd.Children.size() != 2 || Value == 0)
      return;
    Atom Base = evalExpr(ScopeIdx, Cx, Nd.Children[0]);
    NodeId AI = identOf(Nd.Children[1]);
    if (Base == 0 || AI == InvalidNode)
      return;
    fact(RelStore, {Base, fieldAtom(identText(AI)), Value});
    return;
  }
  case NodeKind::TupleLit:
  case NodeKind::ListLit:
    // Tuple unpacking: element-wise tracking is out of scope; just count
    // the kills.
    for (NodeId C : Nd.Children)
      assignTo(ScopeIdx, Cx, C, 0, InvalidNode);
    return;
  default:
    return;
  }
}

// --- Phase E: origin assignment -----------------------------------------------

void OriginComputer::assignOrigins(AnalysisResult &Result) {
  // vpt lookup: var atom -> set of types.
  std::unordered_map<Atom, std::vector<Atom>> Vpt;
  for (const auto &T : E.relation(RelVpt).tuples())
    Vpt[T.Values[0]].push_back(T.Values[1]);
  std::unordered_map<Atom, std::vector<Atom>> ValOrigin;
  for (const auto &T : E.relation(RelValueOrigin).tuples())
    ValOrigin[T.Values[0]].push_back(T.Values[1]);

  // Unified type of an atom's points-to set, or "" when mixed/absent.
  auto UnifiedType = [&](Atom V) -> std::string {
    auto It = Vpt.find(V);
    if (It == Vpt.end() || It->second.empty())
      return "";
    std::string Type;
    for (Atom Site : It->second) {
      auto SIt = SiteType.find(Site);
      if (SIt == SiteType.end())
        return "";
      if (Type.empty())
        Type = SIt->second;
      else if (Type != SIt->second)
        return "";
    }
    return Type;
  };
  auto UnifiedValueOrigin = [&](Atom V) -> std::string {
    auto It = ValOrigin.find(V);
    if (It == ValOrigin.end() || It->second.size() != 1)
      return "";
    std::string Name(Atoms.text(It->second[0]));
    return Name.substr(2); // strip "o:"
  };

  auto ScopeOf = [&](NodeId N) -> uint32_t {
    NodeId Fn = enclosingNode(M, N, NodeKind::FunctionDef);
    if (Fn == InvalidNode)
      return 0;
    for (uint32_t I = 1; I != Scopes.size(); ++I)
      if (Scopes[I].Definition == Fn)
        return I;
    return 0;
  };

  for (NodeId N = 0; N != M.size(); ++N) {
    const Node &Nd = M.node(N);
    if (Nd.Kind != NodeKind::Ident || Nd.Parent == InvalidNode)
      continue;
    const Node &Parent = M.node(Nd.Parent);

    // Variable references.
    if (Parent.Kind == NodeKind::NameLoad ||
        Parent.Kind == NodeKind::NameStore) {
      std::string Name = identText(N);
      uint32_t S = ScopeOf(N);
      uint32_t VarScope = resolveVarScope(S, Name);
      // Aggregate over all contexts of the variable's scope.
      std::string Type;
      bool Mixed = false;
      for (ContextId Cx : ScopeContexts[VarScope]) {
        std::string T = UnifiedType(varAtom(VarScope, Cx, Name));
        if (T.empty())
          continue;
        if (Type.empty())
          Type = T;
        else if (Type != T)
          Mixed = true;
      }
      if (!Type.empty() && !Mixed && Type != Name) {
        Result.Origins[N] =
            Ctx.intern(Registry.generalize(Type, LocalBases));
        continue;
      }
      // Value origin (primitive data flow): only when assigned once.
      auto KillIt =
          AssignCounts.find("v:" + std::to_string(VarScope) + ":" + Name);
      bool Killed = KillIt != AssignCounts.end() && KillIt->second > 1;
      if (!Killed) {
        std::string Origin;
        bool OriginMixed = false;
        for (ContextId Cx : ScopeContexts[VarScope]) {
          std::string O = UnifiedValueOrigin(varAtom(VarScope, Cx, Name));
          if (O.empty())
            continue;
          if (Origin.empty())
            Origin = O;
          else if (Origin != O)
            OriginMixed = true;
        }
        if (!Origin.empty() && !OriginMixed && Origin != Name)
          Result.Origins[N] = Ctx.intern(Origin);
      }
      continue;
    }

    // Callee method names: origin = the class defining the method on the
    // receiver's (generalized) type.
    if (Parent.Kind == NodeKind::Attr) {
      NodeId AttrLoad = Parent.Parent;
      if (AttrLoad == InvalidNode)
        continue;
      const Node &AL = M.node(AttrLoad);
      if (AL.Kind != NodeKind::AttributeLoad || AL.Children.size() != 2)
        continue;
      NodeId GrandParent = AL.Parent;
      bool IsCallee = GrandParent != InvalidNode &&
                      M.node(GrandParent).Kind == NodeKind::Call &&
                      M.node(GrandParent).Children[0] == AttrLoad;
      // Receiver type via a NameLoad receiver.
      NodeId Receiver = AL.Children[0];
      std::string RecvType;
      if (M.node(Receiver).Kind == NodeKind::NameLoad) {
        NodeId RI = identOf(Receiver);
        if (RI != InvalidNode) {
          std::string RecvName = identText(RI);
          uint32_t S = ScopeOf(N);
          uint32_t VarScope = resolveVarScope(S, RecvName);
          for (ContextId Cx : ScopeContexts[VarScope]) {
            std::string T = UnifiedType(varAtom(VarScope, Cx, RecvName));
            if (!T.empty()) {
              RecvType = T;
              break;
            }
          }
        }
      }
      if (RecvType.empty())
        continue;
      std::string General = Registry.generalize(RecvType, LocalBases);
      if (IsCallee) {
        auto Owner = Registry.methodOwner(General, identText(N));
        Result.Origins[N] = Ctx.intern(Owner ? *Owner : General);
      } else if (General != identText(N)) {
        Result.Origins[N] = Ctx.intern(General);
      }
      continue;
    }

    // Catch variables and Java declared types: generalize the declared
    // class when the registry knows a better ancestor.
    if (Parent.Kind == NodeKind::TypeRef) {
      std::string TypeName = identText(N);
      std::string General = Registry.generalize(TypeName, LocalBases);
      if (General != TypeName)
        Result.Origins[N] = Ctx.intern(General);
      continue;
    }
  }
}

AnalysisResult OriginComputer::run() {
  telemetry::TraceSpan Span("analysis.origins");
  AnalysisResult Result;
  discoverStructure();
  buildCallGraph();
  buildContexts();
  extractFacts();
  {
    telemetry::TraceSpan DlSpan("analysis.datalog");
    E.run();
  }
  assignOrigins(Result);
  Result.NumFacts = FactCount;
  Result.NumDerivedTuples = E.totalTuples();
  Result.EffectiveK = EffectiveK;
  Result.NumContexts = ContextIds.size() + 1;
  if (telemetry::enabled()) {
    // Cached references: one registry lookup per process, not per file.
    static telemetry::Counter &Facts =
        telemetry::metrics().counter("datalog.facts");
    static telemetry::Counter &Tuples =
        telemetry::metrics().counter("datalog.tuples");
    static telemetry::Counter &Origins =
        telemetry::metrics().counter("analysis.origins_assigned");
    Facts.add(Result.NumFacts);
    Tuples.add(Result.NumDerivedTuples);
    Origins.add(Result.Origins.size());
  }
  return Result;
}

} // namespace

AnalysisResult namer::computeOrigins(const Tree &Module,
                                     const WellKnownRegistry &Registry,
                                     const AnalysisConfig &Config) {
  return OriginComputer(Module, Registry, Config).run();
}
