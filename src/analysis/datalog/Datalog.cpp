//===- analysis/datalog/Datalog.cpp ---------------------------------------==//

#include "analysis/datalog/Datalog.h"

#include "support/Hashing.h"

#include <cassert>

using namespace namer;
using namespace namer::datalog;

size_t TupleHash::operator()(const DlTuple &T) const {
  uint64_t H = FnvOffsetBasis;
  for (Atom A : T.Values)
    H = hashU32(H, A);
  return static_cast<size_t>(H);
}

bool Relation::insert(const DlTuple &T) {
  if (!Set.insert(T).second)
    return false;
  Pending.push_back(T);
  return true;
}

const std::vector<uint32_t> *Relation::firstColumnMatches(Atom First) const {
  auto It = FirstIndex.find(First);
  return It == FirstIndex.end() ? nullptr : &It->second;
}

void Relation::rotateDelta() {
  Delta = std::move(Pending);
  Pending.clear();
  for (const DlTuple &T : Delta) {
    FirstIndex[T.Values[0]].push_back(static_cast<uint32_t>(Tuples.size()));
    Tuples.push_back(T);
  }
}

RelationId Engine::addRelation(std::string Name, size_t Arity) {
  assert(Arity >= 1 && Arity <= MaxArity && "unsupported arity");
  Relations.emplace_back(std::move(Name), Arity);
  return static_cast<RelationId>(Relations.size() - 1);
}

void Engine::addFact(RelationId Rel, std::initializer_list<Atom> Atoms) {
  DlTuple T;
  size_t I = 0;
  for (Atom A : Atoms) {
    assert(I < MaxArity && "too many atoms in fact");
    T.Values[I++] = A;
  }
  assert(I == Relations[Rel].arity() && "fact arity mismatch");
  addFact(Rel, T);
}

void Engine::addFact(RelationId Rel, const DlTuple &T) {
  Relations[Rel].insert(T);
}

namespace {

/// Matches \p T against literal \p L under \p Bindings, extending them on
/// success. Restores nothing; the caller snapshots.
bool matchTuple(const Literal &L, const DlTuple &T,
                std::unordered_map<uint32_t, Atom> &Bindings) {
  for (size_t I = 0, E = L.Terms.size(); I != E; ++I) {
    const Term &Tm = L.Terms[I];
    Atom Value = T.Values[I];
    if (!Tm.IsVariable) {
      if (Tm.Id != Value)
        return false;
      continue;
    }
    auto [It, Inserted] = Bindings.emplace(Tm.Id, Value);
    if (!Inserted && It->second != Value)
      return false;
  }
  return true;
}

} // namespace

void Engine::joinFrom(const Rule &R, size_t DeltaPos, size_t BodyPos,
                      std::unordered_map<uint32_t, Atom> &Bindings) {
  if (BodyPos == R.Body.size()) {
    DlTuple Head;
    for (size_t I = 0, E = R.Head.Terms.size(); I != E; ++I) {
      const Term &Tm = R.Head.Terms[I];
      if (Tm.IsVariable) {
        auto It = Bindings.find(Tm.Id);
        assert(It != Bindings.end() && "unbound head variable");
        Head.Values[I] = It->second;
      } else {
        Head.Values[I] = Tm.Id;
      }
    }
    Relations[R.Head.Relation].insert(Head);
    return;
  }

  const Literal &L = R.Body[BodyPos];
  const Relation &Rel = Relations[L.Relation];

  // Delta position reads only the last generation (semi-naive).
  if (BodyPos == DeltaPos) {
    for (const DlTuple &T : Rel.delta()) {
      auto Saved = Bindings;
      if (matchTuple(L, T, Bindings))
        joinFrom(R, DeltaPos, BodyPos + 1, Bindings);
      Bindings = std::move(Saved);
    }
    return;
  }

  // Use the first-column index when the first term is already bound.
  const Term &First = L.Terms[0];
  Atom FirstValue = 0;
  bool FirstBound = false;
  if (!First.IsVariable) {
    FirstValue = First.Id;
    FirstBound = true;
  } else {
    auto It = Bindings.find(First.Id);
    if (It != Bindings.end()) {
      FirstValue = It->second;
      FirstBound = true;
    }
  }

  if (FirstBound) {
    const std::vector<uint32_t> *Matches = Rel.firstColumnMatches(FirstValue);
    if (!Matches)
      return;
    for (uint32_t Index : *Matches) {
      auto Saved = Bindings;
      if (matchTuple(L, Rel.tuples()[Index], Bindings))
        joinFrom(R, DeltaPos, BodyPos + 1, Bindings);
      Bindings = std::move(Saved);
    }
    return;
  }

  for (const DlTuple &T : Rel.tuples()) {
    auto Saved = Bindings;
    if (matchTuple(L, T, Bindings))
      joinFrom(R, DeltaPos, BodyPos + 1, Bindings);
    Bindings = std::move(Saved);
  }
}

void Engine::evaluateRule(const Rule &R, size_t DeltaPos) {
  std::unordered_map<uint32_t, Atom> Bindings;
  joinFrom(R, DeltaPos, 0, Bindings);
}

void Engine::run() {
  // Initial generation: all facts become the first delta.
  for (Relation &Rel : Relations)
    Rel.rotateDelta();

  bool Changed = true;
  while (Changed) {
    for (const Rule &R : Rules)
      for (size_t DeltaPos = 0; DeltaPos != R.Body.size(); ++DeltaPos)
        evaluateRule(R, DeltaPos);
    Changed = false;
    for (Relation &Rel : Relations) {
      Changed |= Rel.hasPending();
      Rel.rotateDelta();
    }
  }
}

size_t Engine::totalTuples() const {
  size_t Total = 0;
  for (const Relation &Rel : Relations)
    Total += Rel.size();
  return Total;
}
