//===- analysis/datalog/Datalog.h - Datalog engine --------------*- C++ -*-==//
///
/// \file
/// A compact Datalog engine with semi-naive evaluation. Section 4.1 of the
/// paper states "our points-to analysis is implemented in Datalog"; this is
/// that substrate. Relations hold tuples of interned 32-bit atoms; rules
/// are Horn clauses whose body literals join over shared variables.
///
/// The engine supports arities 1-4, negation-free recursive rules, and
/// indexes relations on their first column, which is enough for the
/// Andersen-style points-to and value-origin rules Namer needs while
/// remaining small enough to read in one sitting.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ANALYSIS_DATALOG_DATALOG_H
#define NAMER_ANALYSIS_DATALOG_DATALOG_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace namer {
namespace datalog {

/// A constant in the Datalog universe.
using Atom = uint32_t;

/// Maximum relation arity supported.
inline constexpr size_t MaxArity = 4;

/// A tuple of atoms; unused trailing slots are zero.
struct DlTuple {
  std::array<Atom, MaxArity> Values{};

  friend bool operator==(const DlTuple &A, const DlTuple &B) {
    return A.Values == B.Values;
  }
};

struct TupleHash {
  size_t operator()(const DlTuple &T) const;
};

using RelationId = uint32_t;

/// A term in a rule literal: either a variable (joined positionally) or a
/// constant atom.
struct Term {
  bool IsVariable;
  uint32_t Id; // variable id or constant atom

  static Term var(uint32_t V) { return Term{true, V}; }
  static Term constant(Atom A) { return Term{false, A}; }
};

/// One literal R(t1, ..., tk) in a rule head or body.
struct Literal {
  RelationId Relation;
  std::vector<Term> Terms;
};

/// Horn clause: Head :- Body[0], Body[1], ...
struct Rule {
  Literal Head;
  std::vector<Literal> Body;
};

/// A set of tuples with a first-column index and semi-naive delta
/// bookkeeping.
class Relation {
public:
  explicit Relation(std::string Name, size_t Arity)
      : Name(std::move(Name)), Arity(Arity) {}

  /// Inserts \p T; returns true if it was new. New tuples land in the
  /// pending delta until the engine rotates generations.
  bool insert(const DlTuple &T);

  bool contains(const DlTuple &T) const { return Set.count(T) != 0; }
  size_t size() const { return Tuples.size(); }
  size_t arity() const { return Arity; }
  const std::string &name() const { return Name; }

  const std::vector<DlTuple> &tuples() const { return Tuples; }
  const std::vector<DlTuple> &delta() const { return Delta; }

  /// Tuple indices whose first column equals \p First.
  const std::vector<uint32_t> *firstColumnMatches(Atom First) const;

  /// Moves pending tuples into the current delta (engine internal).
  void rotateDelta();
  bool hasPending() const { return !Pending.empty(); }

private:
  std::string Name;
  size_t Arity;
  std::vector<DlTuple> Tuples;
  std::unordered_set<DlTuple, TupleHash> Set;
  std::unordered_map<Atom, std::vector<uint32_t>> FirstIndex;
  std::vector<DlTuple> Delta;
  std::vector<DlTuple> Pending;
};

/// The engine: declare relations, add facts and rules, run to fixpoint.
class Engine {
public:
  RelationId addRelation(std::string Name, size_t Arity);

  /// Declares a fact; atoms beyond the relation's arity must be zero.
  void addFact(RelationId Rel, std::initializer_list<Atom> Atoms);
  void addFact(RelationId Rel, const DlTuple &T);

  void addRule(Rule R) { Rules.push_back(std::move(R)); }

  /// Semi-naive evaluation to fixpoint.
  void run();

  const Relation &relation(RelationId Id) const { return Relations[Id]; }
  size_t numRelations() const { return Relations.size(); }

  /// Total derived + base tuples across all relations (for stats).
  size_t totalTuples() const;

private:
  /// Evaluates \p R with body position \p DeltaPos reading the delta
  /// generation; inserts derived heads.
  void evaluateRule(const Rule &R, size_t DeltaPos);
  void joinFrom(const Rule &R, size_t DeltaPos, size_t BodyPos,
                std::unordered_map<uint32_t, Atom> &Bindings);

  std::vector<Relation> Relations;
  std::vector<Rule> Rules;
};

} // namespace datalog
} // namespace namer

#endif // NAMER_ANALYSIS_DATALOG_DATALOG_H
