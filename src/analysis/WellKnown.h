//===- analysis/WellKnown.h - Library knowledge base ------------*- C++ -*-==//
///
/// \file
/// Namer analyzes every file in isolation (Section 4.1), so symbols defined
/// outside the file resolve against a registry of well-known library
/// classes, methods and functions. The paper's pipeline gets this knowledge
/// from the analyzed ecosystems (unittest / numpy / os for Python;
/// java.lang / android / junit for Java); we ship the same facts as data.
///
/// The registry answers three questions the origin computation needs:
///   * is this a known class, and what is its superclass?
///   * which class in a hierarchy defines a given method?
///   * what type (or producing-function origin) does a call return?
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ANALYSIS_WELLKNOWN_H
#define NAMER_ANALYSIS_WELLKNOWN_H

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace namer {

/// Immutable knowledge base about one language's standard ecosystem.
class WellKnownRegistry {
public:
  /// Built-in facts for the Python ecosystem the corpus draws from.
  static WellKnownRegistry forPython();
  /// Built-in facts for the Java ecosystem.
  static WellKnownRegistry forJava();
  /// An empty registry (ablation: no library knowledge).
  static WellKnownRegistry empty() { return WellKnownRegistry(); }

  /// Registers class \p Name with optional superclass and methods.
  void addClass(std::string_view Name, std::string_view Base = "",
                std::vector<std::string> Methods = {});

  /// Registers a module (import target), e.g. "numpy" or "os.path".
  void addModule(std::string_view Name);

  /// Registers a free function with the type its result should be
  /// attributed to ("" means the function name itself is the origin).
  void addFunction(std::string_view Name, std::string_view ReturnType = "");

  bool isKnownClass(std::string_view Name) const {
    return Classes.count(std::string(Name)) != 0;
  }
  bool isKnownModule(std::string_view Name) const {
    return Modules.count(std::string(Name)) != 0;
  }
  bool isKnownFunction(std::string_view Name) const {
    return Functions.count(std::string(Name)) != 0;
  }

  /// Superclass of \p Name, or nullopt for unknown classes and roots.
  std::optional<std::string> baseOf(std::string_view Name) const;

  /// Walks the registered hierarchy from \p Class upward and returns the
  /// class that defines \p Method, or nullopt.
  std::optional<std::string> methodOwner(std::string_view Class,
                                         std::string_view Method) const;

  /// Origin to attribute to a call of free function \p Name: its declared
  /// return type if registered with one, otherwise the function name.
  std::optional<std::string> callOrigin(std::string_view Name) const;

  /// Generalizes \p Class to the closest well-known ancestor: returns the
  /// first class on the path Class, base(Class), ... that this registry
  /// knows, using \p LocalBases for classes defined in the current file.
  /// Returns \p Class unchanged when nothing on the path is known.
  std::string
  generalize(std::string_view Class,
             const std::unordered_map<std::string, std::string> &LocalBases)
      const;

private:
  struct ClassInfo {
    std::string Base;
    std::unordered_set<std::string> Methods;
  };
  std::unordered_map<std::string, ClassInfo> Classes;
  std::unordered_set<std::string> Modules;
  std::unordered_map<std::string, std::string> Functions;
};

} // namespace namer

#endif // NAMER_ANALYSIS_WELLKNOWN_H
