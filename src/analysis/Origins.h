//===- analysis/Origins.h - Object/value origin analysis --------*- C++ -*-==//
///
/// \file
/// The Section 4.1 analyses: a flow-insensitive, field-sensitive Andersen
/// style points-to analysis with k-call-site sensitivity (k = 5 by
/// default, backed off when a file would average more than 8 contexts per
/// function), implemented on the Datalog engine, plus a data flow analysis
/// attributing primitive values to the function that produced them (or top
/// once modified).
///
/// Every file is analyzed in isolation; calls leaving the file return
/// fresh allocation sites, typed by the well-known registry when possible.
/// The result is an OriginMap: Ident node -> origin symbol, consumed by
/// the AST+ transform (step 4).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_ANALYSIS_ORIGINS_H
#define NAMER_ANALYSIS_ORIGINS_H

#include "analysis/WellKnown.h"
#include "ast/Tree.h"
#include "transform/AstPlus.h"

#include <cstddef>

namespace namer {

struct AnalysisConfig {
  /// Call-string length for context sensitivity (paper default: 5).
  unsigned CallSiteSensitivity = 5;
  /// Back off k when contexts per function would exceed this on average
  /// (paper: 8).
  double MaxAvgContextsPerFunction = 8.0;
};

struct AnalysisResult {
  OriginMap Origins;
  /// Statistics for the speed/ablation benches.
  size_t NumFacts = 0;
  size_t NumDerivedTuples = 0;
  size_t NumContexts = 0;
  unsigned EffectiveK = 0;
};

/// Runs the analyses over \p Module and returns per-Ident origins.
AnalysisResult computeOrigins(const Tree &Module,
                              const WellKnownRegistry &Registry,
                              const AnalysisConfig &Config = AnalysisConfig());

} // namespace namer

#endif // NAMER_ANALYSIS_ORIGINS_H
