//===- service/ModelManager.h - Atomic model hot-swap -----------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, ref-counted model snapshots for the scan service (DESIGN.md,
/// "Scan service"). The manager owns the *current* snapshot pointer; every
/// admitted request pins the snapshot it starts with by copying the
/// shared_ptr, so a hot-swap mid-scan never invalidates in-flight work --
/// the old snapshot dies when its last request finishes.
///
/// Swaps are triggered by SIGHUP, an explicit "swap" request, or (when
/// polling is enabled) an mtime change of the model file. A load that
/// fails with a transient error is retried with exponential backoff; when
/// the retries are exhausted the previous snapshot stays current and the
/// failure is counted (`snapshot.swap_failures`), never fatal.
///
/// Fault site `model.swap` fires once per load attempt: Throw-kind faults
/// are the transient error the backoff exists for.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SERVICE_MODELMANAGER_H
#define NAMER_SERVICE_MODELMANAGER_H

#include "namer/ModelStore.h"
#include "support/Arena.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace namer {
namespace service {

/// One immutable loaded model. The arena owns the mapped bytes every
/// string_view in File aliases; requests apply File to a fresh pipeline
/// (NamerPipeline::loadModel(const model::ModelFile &)) while holding a
/// shared_ptr to the whole snapshot.
struct ModelSnapshot {
  std::string Path;
  /// Monotonic swap generation (1 = the initial load). Exported as the
  /// `snapshot.version` gauge.
  uint64_t Version = 0;
  /// st_mtime of the file the snapshot was loaded from, in nanoseconds;
  /// the poll path compares against it.
  uint64_t MtimeNs = 0;
  Arena Mem;
  model::ModelFile File;
};

class ModelManager {
public:
  struct Options {
    std::string Path;
    /// Load attempts per swap (>= 1); transient failures back off
    /// BackoffBaseMs * 2^attempt between tries.
    unsigned MaxRetries = 3;
    unsigned BackoffBaseMs = 10;
    /// Backoff sleeper, injectable so tests run without wall-clock waits;
    /// null sleeps for real.
    std::function<void(unsigned Ms)> BackoffSleep;
  };

  explicit ModelManager(Options O);

  /// Loads the initial snapshot. Throws model::ModelError (after the same
  /// retry/backoff as any swap) when the model cannot be loaded at all --
  /// the service refuses to start without a model.
  void loadInitial();

  /// The current snapshot (never null after loadInitial()). Callers keep
  /// the returned shared_ptr for the duration of their scan: that pin is
  /// what makes hot-swap safe.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Re-loads the model file and atomically publishes the new snapshot.
  /// Returns true on success; on failure the previous snapshot stays
  /// current. Counted: `snapshot.swaps`, `snapshot.swap_failures`,
  /// `snapshot.retries`, `snapshot.loads`; gauge `snapshot.version`.
  bool swapNow();

  /// Stat()s the model file; swaps when its mtime differs from the
  /// current snapshot's. Returns true when a swap happened.
  bool pollAndSwap();

  uint64_t swaps() const;
  uint64_t swapFailures() const;

private:
  /// One full load (all retries) of Path; returns null when every attempt
  /// failed. Fires fault site `model.swap` per attempt.
  std::shared_ptr<ModelSnapshot> loadWithRetry(std::string *ErrorOut);

  Options O;
  /// Load attempts ever made; forms the per-attempt injection key
  /// "<path>#<n>". Guarded by SwapM (every load runs under it).
  uint64_t NumLoadAttempts = 0;
  mutable std::mutex M;
  std::shared_ptr<const ModelSnapshot> Current; // guarded by M
  uint64_t NextVersion = 1;                     // guarded by M
  uint64_t NumSwaps = 0;                        // guarded by M
  uint64_t NumSwapFailures = 0;                 // guarded by M
  /// Serializes swapNow()/pollAndSwap() so concurrent triggers (SIGHUP +
  /// poll + explicit request) produce a clean version sequence.
  std::mutex SwapM;
};

} // namespace service
} // namespace namer

#endif // NAMER_SERVICE_MODELMANAGER_H
