//===- service/Admission.cpp ----------------------------------------------==//

#include "service/Admission.h"

#include "support/MemoryTracker.h"
#include "support/Telemetry.h"

using namespace namer;
using namespace namer::service;

const char *service::admitResultName(AdmitResult R) {
  switch (R) {
  case AdmitResult::Admitted:
    return "admitted";
  case AdmitResult::QueueFull:
    return "queue-full";
  case AdmitResult::TenantOverBudget:
    return "tenant-over-budget";
  case AdmitResult::RssPressure:
    return "rss-pressure";
  case AdmitResult::RequestTooLarge:
    return "request-too-large";
  case AdmitResult::Draining:
    return "draining";
  }
  return "queue-full";
}

AdmissionController::AdmissionController(AdmissionConfig C)
    : C(std::move(C)) {
  // Register every rejection series (and the admitted count) at zero.
  telemetry::count("serve.admitted", 0);
  for (size_t R = 1; R != kNumAdmitResults; ++R)
    telemetry::count("serve.rejected." +
                         std::string(admitResultName(
                             static_cast<AdmitResult>(R))),
                     0);
  telemetry::gaugeSet("serve.in_flight", 0);
}

AdmitResult AdmissionController::admit(const std::string &Tenant,
                                       size_t Bytes, size_t Files) {
  AdmitResult R = AdmitResult::Admitted;
  {
    std::lock_guard<std::mutex> L(M);
    if (Draining)
      R = AdmitResult::Draining;
    else if (Bytes > C.MaxRequestBytes || Files > C.MaxRequestFiles)
      R = AdmitResult::RequestTooLarge;
    else if (InFlight >= C.MaxQueueDepth)
      R = AdmitResult::QueueFull;
    else if (PerTenant[Tenant] >= C.MaxPerTenant)
      R = AdmitResult::TenantOverBudget;
    else if (C.MaxRssKb && memory::currentRssKb() > C.MaxRssKb)
      R = AdmitResult::RssPressure;
    else {
      ++InFlight;
      ++PerTenant[Tenant];
      telemetry::gaugeSet("serve.in_flight",
                          static_cast<int64_t>(InFlight));
    }
  }
  if (R == AdmitResult::Admitted)
    telemetry::count("serve.admitted");
  else
    telemetry::count("serve.rejected." + std::string(admitResultName(R)));
  return R;
}

void AdmissionController::release(const std::string &Tenant) {
  std::lock_guard<std::mutex> L(M);
  if (InFlight)
    --InFlight;
  auto It = PerTenant.find(Tenant);
  if (It != PerTenant.end() && It->second && --It->second == 0)
    PerTenant.erase(It);
  telemetry::gaugeSet("serve.in_flight", static_cast<int64_t>(InFlight));
}

void AdmissionController::setDraining(bool D) {
  std::lock_guard<std::mutex> L(M);
  Draining = D;
}

size_t AdmissionController::inFlight() const {
  std::lock_guard<std::mutex> L(M);
  return InFlight;
}
