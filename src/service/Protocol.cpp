//===- service/Protocol.cpp -----------------------------------------------==//

#include "service/Protocol.h"

#include "support/MiniJson.h"

#include <cstdio>

using namespace namer;
using namespace namer::service;

const char *service::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Overloaded:
    return "overloaded";
  case Status::DeadlineExceeded:
    return "deadline-exceeded";
  case Status::Cancelled:
    return "cancelled";
  case Status::InvalidRequest:
    return "invalid-request";
  case Status::ModelError:
    return "model-error";
  case Status::Fault:
    return "fault";
  case Status::ShuttingDown:
    return "shutting-down";
  }
  return "fault";
}

std::string service::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

bool service::parseRequest(const std::string &Line, Request &R,
                           std::string *Error) {
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  std::string ParseError;
  std::optional<json::Value> Doc = json::parse(Line, &ParseError);
  if (!Doc)
    return Fail(("bad json: " + ParseError).c_str());
  if (!Doc->isObject())
    return Fail("request must be a JSON object");

  if (const json::Value *Id = Doc->find("id")) {
    if (!Id->isString())
      return Fail("'id' must be a string");
    R.Id = Id->Str;
  }
  const json::Value *Method = Doc->find("method");
  if (!Method || !Method->isString() || Method->Str.empty())
    return Fail("missing 'method'");
  R.Method = Method->Str;
  if (R.Method != "scan" && R.Method != "ping" && R.Method != "stats" &&
      R.Method != "swap" && R.Method != "shutdown")
    return Fail("unknown method");
  if (const json::Value *Tenant = Doc->find("tenant")) {
    if (!Tenant->isString())
      return Fail("'tenant' must be a string");
    R.Tenant = Tenant->Str;
  }
  if (const json::Value *Deadline = Doc->find("deadline_ms")) {
    if (!Deadline->isNumber() || Deadline->Num < 0)
      return Fail("'deadline_ms' must be a non-negative number");
    R.DeadlineMs = static_cast<uint64_t>(Deadline->Num);
  }
  if (const json::Value *Max = Doc->find("max_reports")) {
    if (!Max->isNumber() || Max->Num < 0)
      return Fail("'max_reports' must be a non-negative number");
    R.MaxReports = static_cast<size_t>(Max->Num);
  }
  if (const json::Value *Dir = Doc->find("dir")) {
    if (!Dir->isString())
      return Fail("'dir' must be a string");
    R.Dir = Dir->Str;
  }
  if (const json::Value *Files = Doc->find("files")) {
    if (!Files->isArray())
      return Fail("'files' must be an array");
    for (const json::Value &F : Files->Arr) {
      const json::Value *Path = F.find("path");
      const json::Value *Content = F.find("content");
      if (!F.isObject() || !Path || !Path->isString() || Path->Str.empty() ||
          !Content || !Content->isString())
        return Fail("each file needs a 'path' and a 'content' string");
      R.Files.push_back(ScanFile{Path->Str, Content->Str});
    }
  }
  if (R.Method == "scan" && R.Dir.empty() && R.Files.empty())
    return Fail("scan needs a 'dir' or non-empty 'files'");
  if (!R.Dir.empty() && !R.Files.empty())
    return Fail("'dir' and 'files' are mutually exclusive");
  return true;
}

std::string service::renderResponse(const Response &R) {
  // Sorted keys: detail, <extra members>, id, reports, status. Optional
  // members are omitted when empty, like the ledger writer.
  std::string Out = "{";
  if (!R.Detail.empty())
    Out += "\"detail\":\"" + jsonEscape(R.Detail) + "\",";
  Out += "\"id\":\"" + jsonEscape(R.Id) + "\",";
  if (!R.Extra.empty()) {
    Out += R.Extra;
    Out += ",";
  }
  if (R.St == Status::Ok && !R.Reports.empty()) {
    Out += "\"reports\":[";
    for (size_t I = 0; I != R.Reports.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"" + jsonEscape(R.Reports[I]) + "\"";
    }
    Out += "],";
  }
  Out += "\"status\":\"";
  Out += statusName(R.St);
  Out += "\"}\n";
  return Out;
}
