//===- service/ModelManager.cpp -------------------------------------------==//

#include "service/ModelManager.h"

#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <chrono>
#include <sys/stat.h>
#include <thread>

using namespace namer;
using namespace namer::service;

namespace {

/// st_mtime of \p Path in nanoseconds; 0 when the file cannot be stat'ed.
uint64_t fileMtimeNs(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<uint64_t>(St.st_mtim.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(St.st_mtim.tv_nsec);
}

} // namespace

ModelManager::ModelManager(Options O) : O(std::move(O)) {
  if (this->O.MaxRetries == 0)
    this->O.MaxRetries = 1;
  // PR-4 convention: every series this subsystem can emit exists from the
  // first exposition, as zero.
  telemetry::count("snapshot.loads", 0);
  telemetry::count("snapshot.retries", 0);
  telemetry::count("snapshot.swaps", 0);
  telemetry::count("snapshot.swap_failures", 0);
  telemetry::gaugeSet("snapshot.version", 0);
}

std::shared_ptr<ModelSnapshot>
ModelManager::loadWithRetry(std::string *ErrorOut) {
  for (unsigned Attempt = 0; Attempt != O.MaxRetries; ++Attempt) {
    if (Attempt != 0) {
      telemetry::count("snapshot.retries");
      unsigned Ms = O.BackoffBaseMs << (Attempt - 1);
      if (O.BackoffSleep)
        O.BackoffSleep(Ms);
      else if (Ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
    }
    try {
      // The injected fault stands in for the transient loader errors the
      // backoff exists for (NFS hiccup, half-written file mid-rename).
      // Each attempt gets its own injection key -- swaps are serialized
      // under SwapM, so the sequence is deterministic -- which lets a
      // seeded rate fail *some* attempts instead of all-or-nothing on the
      // constant path.
      faultinject::ScopedKey Key(O.Path + "#" +
                                 std::to_string(NumLoadAttempts++));
      if (auto Kind = faultinject::fire("model.swap"))
        throw model::ModelError(model::ModelErrorKind::Io, "injected");
      auto Snap = std::make_shared<ModelSnapshot>();
      Snap->Path = O.Path;
      Snap->MtimeNs = fileMtimeNs(O.Path);
      Snap->File = model::load(O.Path, Snap->Mem);
      telemetry::count("snapshot.loads");
      return Snap;
    } catch (const std::exception &E) {
      if (ErrorOut)
        *ErrorOut = E.what();
    }
  }
  return nullptr;
}

void ModelManager::loadInitial() {
  std::lock_guard<std::mutex> SwapLock(SwapM);
  std::string Error;
  std::shared_ptr<ModelSnapshot> Snap = loadWithRetry(&Error);
  if (!Snap)
    throw model::ModelError(model::ModelErrorKind::Io,
                            "initial model load failed: " + Error);
  std::lock_guard<std::mutex> L(M);
  Snap->Version = NextVersion++;
  telemetry::gaugeSet("snapshot.version",
                      static_cast<int64_t>(Snap->Version));
  Current = std::move(Snap);
}

std::shared_ptr<const ModelSnapshot> ModelManager::current() const {
  std::lock_guard<std::mutex> L(M);
  return Current;
}

bool ModelManager::swapNow() {
  std::lock_guard<std::mutex> SwapLock(SwapM);
  std::string Error;
  std::shared_ptr<ModelSnapshot> Snap = loadWithRetry(&Error);
  std::lock_guard<std::mutex> L(M);
  if (!Snap) {
    // Exhausted retries: keep serving the previous snapshot.
    ++NumSwapFailures;
    telemetry::count("snapshot.swap_failures");
    return false;
  }
  Snap->Version = NextVersion++;
  ++NumSwaps;
  telemetry::count("snapshot.swaps");
  telemetry::gaugeSet("snapshot.version",
                      static_cast<int64_t>(Snap->Version));
  Current = std::move(Snap);
  return true;
}

bool ModelManager::pollAndSwap() {
  uint64_t Mtime = fileMtimeNs(O.Path);
  {
    std::lock_guard<std::mutex> L(M);
    if (!Current || Mtime == 0 || Mtime == Current->MtimeNs)
      return false;
  }
  return swapNow();
}

uint64_t ModelManager::swaps() const {
  std::lock_guard<std::mutex> L(M);
  return NumSwaps;
}

uint64_t ModelManager::swapFailures() const {
  std::lock_guard<std::mutex> L(M);
  return NumSwapFailures;
}
