//===- service/ScanService.h - Fault-tolerant scan scheduler ----*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived scan service behind tools/namer-serve (DESIGN.md, "Scan
/// service"). One ScanService owns:
///
///  - a work-stealing ThreadPool the scan requests are scheduled onto
///    (each request runs single-threaded inside one pool task, so
///    concurrency = parallel requests, not parallel files);
///  - an AdmissionController shedding load with typed `overloaded`
///    responses before any work is queued;
///  - a ModelManager whose immutable snapshots every admitted request pins
///    for its whole scan, making hot-swap invisible to in-flight work;
///  - a per-request CancelToken carrying the deadline; the pipeline's
///    cooperative checkpoints turn it into a typed `deadline-exceeded`
///    response with all partial work discarded by unwinding.
///
/// Every submitted request gets exactly one completion callback with a
/// well-formed typed Response -- injected faults, cancelled scans and
/// model rejects included; the process never aborts. Scans serve warm from
/// the snapshot's manifest (PR-7 byte-identity: a clean request's report
/// lines equal a cold namer-scan run on the same tree).
///
/// Fault sites: `serve.admit` (before admission), `serve.scan` (inside the
/// request task), `model.swap` (per load attempt, in ModelManager).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SERVICE_SCANSERVICE_H
#define NAMER_SERVICE_SCANSERVICE_H

#include "corpus/Corpus.h"
#include "service/Admission.h"
#include "service/ModelManager.h"
#include "service/Protocol.h"
#include "support/Cancellation.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace namer {
namespace service {

struct ServiceConfig {
  std::string ModelPath;
  corpus::Language Lang = corpus::Language::Python;
  /// Concurrent scan requests. The pool is built with ScanWorkers + 1
  /// workers: the +1 is the submitting thread's helper slot, which the
  /// accept loop never occupies, leaving ScanWorkers spawned threads to
  /// run detached request tasks.
  unsigned ScanWorkers = 4;
  AdmissionConfig Admission;
  /// ModelManager knobs; Path is overwritten with ModelPath.
  ModelManager::Options Model;
  /// Applied when a request carries deadline_ms 0; 0 = no deadline.
  uint64_t DefaultDeadlineMs = 0;
  /// Mine-time ecosystem corpus every request is scanned against (the
  /// snapshot's manifest replays it warm). Lang is overwritten with Lang
  /// above. Tests shrink NumRepos; must match the corpus the model was
  /// mined over or every ecosystem file re-ingests cold.
  corpus::CorpusConfig BaseCorpus;
  /// Skip the ecosystem corpus entirely (requests scan only their own
  /// files; manifest diff marks everything deleted). Debug knob.
  bool WithEcosystemCorpus = true;
};

class ScanService {
public:
  explicit ScanService(ServiceConfig C);
  ~ScanService();

  /// Loads the initial model snapshot (throws model::ModelError when that
  /// fails after retries) and generates the base corpus. Call once before
  /// submit().
  void start();

  /// Schedules one scan request. \p Done is called exactly once, from the
  /// pool thread that ran (or rejected) the request, with a typed
  /// Response. Rejections (admission, injected admit faults, draining)
  /// complete synchronously on the caller's thread.
  void submit(Request R, std::function<void(Response)> Done);

  /// Stops admitting (typed `draining` rejections), waits up to
  /// \p MaxWaitMs for in-flight scans, then cancels the stragglers and
  /// waits for them to unwind. Returns the number of scans cancelled.
  size_t drain(uint64_t MaxWaitMs);

  ModelManager &models() { return *Models; }
  AdmissionController &admission() { return *Admit; }
  size_t inFlight() const;

private:
  /// The pool-task body: pins the snapshot, builds the per-request corpus
  /// and pipeline, scans, selects findings. Never throws; every outcome
  /// becomes a typed Response.
  Response runScan(const Request &R,
                   std::shared_ptr<cancel::CancelToken> Tok);

  /// Shallow per-request copy of the base corpus (views alias the base
  /// files' bytes; the service outlives every request) plus the request's
  /// own repository.
  corpus::Corpus makeRequestCorpus(const Request &R, Arena &FileArena,
                                   std::string *LoadError) const;

  ServiceConfig C;
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<AdmissionController> Admit;
  std::unique_ptr<ModelManager> Models;
  corpus::Corpus Base;

  mutable std::mutex M;
  std::condition_variable IdleCv;
  uint64_t NextSeq = 0;                                       // guarded by M
  std::map<uint64_t, std::shared_ptr<cancel::CancelToken>> Live; // by M
};

} // namespace service
} // namespace namer

#endif // NAMER_SERVICE_SCANSERVICE_H
