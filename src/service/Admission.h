//===- service/Admission.h - Scan service admission control -----*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Load shedding for the scan service (DESIGN.md, "Scan service"). Every
/// request passes one admit() gate before it is queued: global queue
/// depth, per-tenant in-flight budget, request size, and RSS pressure.
/// Rejections are *typed* -- the client receives the kebab-case reason in
/// an `overloaded` response -- and counted per reason
/// (`serve.rejected.<reason>`), so dashboards can tell a hot tenant from
/// a memory-squeezed host.
///
/// Admitted requests hold their slot (global + tenant) until release();
/// the service pairs the two in its completion path, which runs for every
/// outcome including exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SERVICE_ADMISSION_H
#define NAMER_SERVICE_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace namer {
namespace service {

struct AdmissionConfig {
  /// Requests admitted but not yet finished, across all tenants.
  size_t MaxQueueDepth = 64;
  /// In-flight requests per tenant bucket.
  size_t MaxPerTenant = 8;
  /// Shed load when the process RSS exceeds this (0 = no RSS gate).
  uint64_t MaxRssKb = 0;
  /// Per-request payload budgets (inline files).
  size_t MaxRequestBytes = 8u << 20;
  size_t MaxRequestFiles = 4096;
};

/// Why a request was (not) admitted. Keep admitResultName in sync.
enum class AdmitResult : uint8_t {
  Admitted,
  QueueFull,
  TenantOverBudget,
  RssPressure,
  RequestTooLarge,
  Draining,
};

constexpr size_t kNumAdmitResults = 6;

/// Stable kebab-case name, e.g. "tenant-over-budget"; "admitted" for the
/// success case.
const char *admitResultName(AdmitResult R);

class AdmissionController {
public:
  explicit AdmissionController(AdmissionConfig C);

  /// Gates one request: \p Tenant's bucket (empty = anonymous), \p Bytes /
  /// \p Files the inline payload size. On Admitted the slot is held until
  /// release(Tenant).
  AdmitResult admit(const std::string &Tenant, size_t Bytes, size_t Files);

  /// Returns an admitted request's slot. Must pair with a successful
  /// admit() for the same tenant.
  void release(const std::string &Tenant);

  /// Once draining, every admit() returns Draining (typed shed during
  /// graceful shutdown).
  void setDraining(bool D);

  size_t inFlight() const;

private:
  AdmissionConfig C;
  mutable std::mutex M;
  size_t InFlight = 0;                                // guarded by M
  std::unordered_map<std::string, size_t> PerTenant;  // guarded by M
  bool Draining = false;                              // guarded by M
};

} // namespace service
} // namespace namer

#endif // NAMER_SERVICE_ADMISSION_H
