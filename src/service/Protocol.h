//===- service/Protocol.h - Scan service wire protocol ----------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-delimited JSON protocol of namer-serve (DESIGN.md, "Scan
/// service"): one request object per line in, one response object per line
/// out. Parsing goes through support/MiniJson; responses are emitted by
/// hand with sorted keys (the repo-wide byte-stable-writer convention), so
/// goldens can compare whole lines.
///
/// Request:  {"id":"r1","method":"scan","tenant":"ci","deadline_ms":5000,
///            "dir":"/path/to/tree"} -- or inline sources via
///            "files":[{"path":"a.py","content":"..."}].
/// Response: {"id":"r1","reports":[...],"status":"ok"}; every failure is a
/// typed status from statusName(): overloaded, deadline-exceeded,
/// cancelled, invalid-request, model-error, fault, shutting-down.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SERVICE_PROTOCOL_H
#define NAMER_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace namer {
namespace service {

/// Typed outcome of one request. Every response carries exactly one.
enum class Status : uint8_t {
  Ok,
  Overloaded,
  DeadlineExceeded,
  Cancelled,
  InvalidRequest,
  ModelError,
  Fault,
  ShuttingDown,
};

constexpr size_t kNumStatuses = 8;

/// Stable kebab-case wire name, e.g. "deadline-exceeded".
const char *statusName(Status S);

/// One inline source file of a scan request.
struct ScanFile {
  std::string Path;
  std::string Content;
};

/// Sentinel for "no deadline_ms in the request" -- the server default
/// applies. An *explicit* deadline_ms of 0 arms an already-elapsed
/// deadline: the scan trips at its first checkpoint, deterministically
/// (the chaos tests' deadline path).
inline constexpr uint64_t kNoDeadline = ~0ull;

struct Request {
  std::string Id;
  /// "scan", "ping", "stats", "swap" or "shutdown".
  std::string Method;
  /// Admission-control bucket; empty means the anonymous tenant.
  std::string Tenant;
  /// kNoDeadline = absent (server default); 0 = already elapsed.
  uint64_t DeadlineMs = kNoDeadline;
  /// Directory to scan (server-side path) -- or inline Files.
  std::string Dir;
  std::vector<ScanFile> Files;
  size_t MaxReports = 50;
};

struct Response {
  std::string Id;
  Status St = Status::Ok;
  /// Human-readable context for non-ok statuses (admission reason, the
  /// ModelError text, ...). Never parsed by clients.
  std::string Detail;
  /// Canonical report lines (ScanRun renderReportLine, newline stripped),
  /// present on ok scans.
  std::vector<std::string> Reports;
  /// Extra pre-rendered JSON members ("key":value, comma-joined), used by
  /// stats/ping responses. Keys must sort after "id" and before "reports"
  /// to keep the sorted-key contract; the writer asserts nothing -- keep
  /// them lowercase and in range.
  std::string Extra;
};

/// Parses one request line. Returns false and fills \p Error on malformed
/// JSON or a structurally invalid request (the caller answers
/// invalid-request; the connection survives).
bool parseRequest(const std::string &Line, Request &R, std::string *Error);

/// Renders one response as a single JSON line (sorted keys, trailing
/// newline).
std::string renderResponse(const Response &R);

/// JSON string escaping shared by the service writers.
std::string jsonEscape(const std::string &S);

} // namespace service
} // namespace namer

#endif // NAMER_SERVICE_PROTOCOL_H
