//===- service/ScanService.cpp --------------------------------------------==//

#include "service/ScanService.h"

#include "namer/Pipeline.h"
#include "namer/ScanRun.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <cassert>
#include <chrono>
#include <filesystem>

using namespace namer;
using namespace namer::service;
namespace fs = std::filesystem;

ScanService::ScanService(ServiceConfig Cfg) : C(std::move(Cfg)) {
  if (C.ScanWorkers == 0)
    C.ScanWorkers = 1;
  // +1: the submitting (accept) thread has a helper queue it never drains,
  // so all ScanWorkers spawned threads are available for detached tasks.
  Pool = std::make_unique<ThreadPool>(C.ScanWorkers + 1);
  Admit = std::make_unique<AdmissionController>(C.Admission);
  C.Model.Path = C.ModelPath;
  Models = std::make_unique<ModelManager>(C.Model);
  // Register every response-status series at zero (PR-4 convention), so
  // the first exposition already names everything a soak can produce.
  telemetry::count("serve.requests", 0);
  telemetry::count("serve.drain.cancelled", 0);
  for (size_t S = 0; S != kNumStatuses; ++S)
    telemetry::count("serve.status." +
                         std::string(statusName(static_cast<Status>(S))),
                     0);
  if (telemetry::enabled())
    telemetry::metrics().histogram("serve.scan_us");
}

ScanService::~ScanService() {
  // Admitted-but-unscheduled tasks still run (cancelled, typed) before the
  // pool joins; member destruction order alone would tear Admit/Models
  // down first, so drain explicitly.
  drain(0);
  Pool.reset();
}

void ScanService::start() {
  Models->loadInitial();
  if (C.WithEcosystemCorpus) {
    C.BaseCorpus.Lang = C.Lang;
    Base = corpus::generateCorpus(C.BaseCorpus);
  } else {
    Base.Lang = C.Lang;
  }
}

size_t ScanService::inFlight() const {
  std::lock_guard<std::mutex> L(M);
  return Live.size();
}

corpus::Corpus ScanService::makeRequestCorpus(const Request &R,
                                              Arena &FileArena,
                                              std::string *LoadError) const {
  corpus::Corpus Corp;
  Corp.Lang = Base.Lang;
  Corp.Repos.reserve(Base.Repos.size() + 1);
  for (const corpus::Repository &BaseRepo : Base.Repos) {
    corpus::Repository Copy;
    Copy.Name = BaseRepo.Name;
    Copy.Files.reserve(BaseRepo.Files.size());
    for (const corpus::SourceFile &F : BaseRepo.Files) {
      corpus::SourceFile S;
      S.Path = F.Path;
      S.View = F.contents(); // aliases the service-lifetime base corpus
      S.Mapped = true;
      Copy.Files.push_back(std::move(S));
    }
    Corp.Repos.push_back(std::move(Copy));
  }

  corpus::Repository Mine;
  if (!R.Dir.empty()) {
    Mine.Name = R.Dir;
    const char *Extension =
        Corp.Lang == corpus::Language::Python ? ".py" : ".java";
    std::error_code Ec;
    for (fs::recursive_directory_iterator It(R.Dir, Ec), End; It != End;
         It.increment(Ec)) {
      if (Ec)
        break;
      if (!It->is_regular_file() || It->path().extension() != Extension)
        continue;
      std::string Path = It->path().string();
      std::optional<Arena::FileMapping> Mapped = FileArena.mapFile(Path);
      if (!Mapped)
        continue;
      corpus::SourceFile F;
      F.Path = std::move(Path);
      F.View = Mapped->Contents;
      F.Mapped = true;
      Mine.Files.push_back(std::move(F));
    }
    if (Mine.Files.empty()) {
      *LoadError = "no scannable files under '" + R.Dir + "'";
      return Corp;
    }
  } else {
    Mine.Name = "<inline>";
    for (const ScanFile &F : R.Files) {
      corpus::SourceFile S;
      S.Path = F.Path;
      S.Text = F.Content;
      Mine.Files.push_back(std::move(S));
    }
  }
  Corp.Repos.push_back(std::move(Mine));
  return Corp;
}

Response ScanService::runScan(const Request &R,
                              std::shared_ptr<cancel::CancelToken> Tok) {
  Response Out;
  Out.Id = R.Id;
  uint64_t StartNs = telemetry::nowNanos();
  // The request's token becomes ambient for everything the pipeline does
  // on this thread (and, via parallelFor's capture, any thread helping
  // it); its injection key attributes chaos faults to the request.
  cancel::CancelScope Scope(Tok.get());
  faultinject::ScopedKey Key(R.Id);
  try {
    if (auto Kind = faultinject::fire("serve.scan")) {
      // Non-throw kinds map onto the two typed degradations a scan can
      // hit mid-flight.
      Out.St = *Kind == faultinject::FaultKind::Timeout
                   ? Status::DeadlineExceeded
                   : Status::Overloaded;
      Out.Detail = "injected";
      return Out;
    }
    Tok->checkpoint();

    // Pin the snapshot for the whole scan: a concurrent hot-swap replaces
    // Models->current() but never this request's model.
    std::shared_ptr<const ModelSnapshot> Snap = Models->current();
    assert(Snap && "start() must run before submit()");

    // The snapshot's config echo *is* the request pipeline's config, so
    // loadModel's invalidation rules pass by construction -- the model
    // defines the scan's semantics, the service only schedules it.
    PipelineConfig PC;
    PC.UseAnalyses = Snap->File.UseAnalyses;
    PC.UseClassifier = Snap->File.UseClassifier;
    PC.Seed = Snap->File.Seed;
    PC.Miner = Snap->File.Miner;
    PC.Limits = Snap->File.Limits;
    PC.Threads = 1; // concurrency is across requests, not within one

    Arena FileArena;
    std::string LoadError;
    corpus::Corpus Corp = makeRequestCorpus(R, FileArena, &LoadError);
    if (!LoadError.empty()) {
      Out.St = Status::InvalidRequest;
      Out.Detail = LoadError;
      return Out;
    }

    NamerPipeline P(PC);
    P.loadModel(Snap->File);
    P.scanWith(Corp, /*UseCache=*/true);

    FindingSelectOptions Sel;
    Sel.PathPrefix = R.Dir;
    for (const ScanFile &F : R.Files)
      Sel.OnlyPaths.push_back(F.Path);
    Sel.UseClassifier = Snap->File.UseClassifier;
    Sel.MaxReports = R.MaxReports;
    for (const Explanation &E : selectFindings(P, Sel)) {
      std::string Line = renderReportLine(E.R);
      if (!Line.empty() && Line.back() == '\n')
        Line.pop_back();
      Out.Reports.push_back(std::move(Line));
    }
    Out.St = Status::Ok;
    telemetry::histogramRecord("serve.scan_us",
                               (telemetry::nowNanos() - StartNs) / 1000);
  } catch (const cancel::CancelledError &E) {
    // Partial work (statements, per-request interners, arenas) died with
    // the unwound pipeline; only the typed status leaves this frame.
    Out.Reports.clear();
    Out.St = E.reason() == cancel::CancelReason::Explicit
                 ? Status::Cancelled
                 : Status::DeadlineExceeded;
  } catch (const faultinject::InjectedFault &E) {
    Out.Reports.clear();
    Out.St = Status::Fault;
    Out.Detail = E.what();
  } catch (const model::ModelError &E) {
    Out.Reports.clear();
    Out.St = Status::ModelError;
    Out.Detail = E.what();
  } catch (const std::exception &E) {
    Out.Reports.clear();
    Out.St = Status::Fault;
    Out.Detail = E.what();
  }
  return Out;
}

void ScanService::submit(Request R, std::function<void(Response)> Done) {
  telemetry::count("serve.requests");
  auto Finish = [](Response Resp, const std::function<void(Response)> &Cb) {
    telemetry::count("serve.status." +
                     std::string(statusName(Resp.St)));
    Cb(std::move(Resp));
  };

  Response Rej;
  Rej.Id = R.Id;
  // Chaos site 1: the admission edge. Throw-kind faults surface as typed
  // `fault` responses; the process and the connection survive.
  try {
    faultinject::ScopedKey Key(R.Id);
    if (auto Kind = faultinject::fire("serve.admit")) {
      Rej.St = *Kind == faultinject::FaultKind::Timeout
                   ? Status::DeadlineExceeded
                   : Status::Overloaded;
      Rej.Detail = "injected";
      Finish(std::move(Rej), Done);
      return;
    }
  } catch (const faultinject::InjectedFault &E) {
    Rej.St = Status::Fault;
    Rej.Detail = E.what();
    Finish(std::move(Rej), Done);
    return;
  }

  size_t Bytes = 0;
  for (const ScanFile &F : R.Files)
    Bytes += F.Path.size() + F.Content.size();
  AdmitResult A = Admit->admit(R.Tenant, Bytes, R.Files.size());
  if (A != AdmitResult::Admitted) {
    Rej.St = A == AdmitResult::Draining ? Status::ShuttingDown
                                        : Status::Overloaded;
    Rej.Detail = admitResultName(A);
    Finish(std::move(Rej), Done);
    return;
  }

  // The deadline clock starts at admission -- queue wait counts against
  // the request's budget, which is what keeps an overloaded queue from
  // serving every request late instead of some requests on time.
  auto Tok = std::make_shared<cancel::CancelToken>();
  uint64_t DeadlineMs = R.DeadlineMs != kNoDeadline
                            ? R.DeadlineMs
                            : (C.DefaultDeadlineMs ? C.DefaultDeadlineMs
                                                   : kNoDeadline);
  if (DeadlineMs != kNoDeadline)
    Tok->setDeadlineFromNowMs(DeadlineMs);

  uint64_t Seq;
  {
    std::lock_guard<std::mutex> L(M);
    Seq = NextSeq++;
    Live.emplace(Seq, Tok);
  }

  auto Task = [this, Seq, Tok, R = std::move(R),
               Done = std::move(Done), Finish]() mutable {
    Response Out = runScan(R, Tok);
    std::string Tenant = R.Tenant;
    {
      std::lock_guard<std::mutex> L(M);
      Live.erase(Seq);
    }
    IdleCv.notify_all();
    Admit->release(Tenant);
    Finish(std::move(Out), Done);
  };
  // workerCount() includes the accept thread's helper slot; > 1 means a
  // spawned worker exists to take the detached task.
  if (Pool->workerCount() > 1) {
    bool Scheduled = Pool->async(std::move(Task));
    assert(Scheduled && "multi-worker pool rejected async task");
    (void)Scheduled;
  } else {
    Task(); // degenerate single-worker configuration: run inline
  }
}

size_t ScanService::drain(uint64_t MaxWaitMs) {
  Admit->setDraining(true);
  std::unique_lock<std::mutex> L(M);
  IdleCv.wait_for(L, std::chrono::milliseconds(MaxWaitMs),
                  [&] { return Live.empty(); });
  size_t Cancelled = Live.size();
  // Stragglers get an explicit cancel; their next checkpoint unwinds them
  // into typed `cancelled` responses, so the final wait is bounded by one
  // checkpoint interval, not a scan.
  for (auto &[Seq, LiveTok] : Live) {
    (void)Seq;
    LiveTok->cancel();
  }
  IdleCv.wait(L, [&] { return Live.empty(); });
  if (Cancelled)
    telemetry::count("serve.drain.cancelled", Cancelled);
  return Cancelled;
}
