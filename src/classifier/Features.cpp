//===- classifier/Features.cpp --------------------------------------------==//

#include "classifier/Features.h"

#include "support/EditDistance.h"

#include <cassert>

using namespace namer;

const char *const namer::ViolationFeatureNames[NumViolationFeatures] = {
    "stmt name paths",
    "identical stmts (file)",
    "identical stmts (repo)",
    "satisfaction rate (file)",
    "satisfaction rate (repo)",
    "satisfaction rate (dataset)",
    "violation count (file)",
    "violation count (repo)",
    "violation count (dataset)",
    "satisfaction count (file)",
    "satisfaction count (repo)",
    "satisfaction count (dataset)",
    "targets function name",
    "condition size",
    "match ratio",
    "edit distance",
    "is confusing pair",
};

bool namer::patternTargetsFunctionName(const NamePattern &Pattern,
                                       const NamePathTable &Table,
                                       const AstContext &Ctx) {
  if (Pattern.Deduction.empty())
    return false;
  Symbol AttrSym = Ctx.kindSymbol(NodeKind::Attr);
  const NamePath &Path = Table.path(Pattern.Deduction.front());
  for (const PathStep &Step : Path.Prefix)
    if (Step.Value == AttrSym)
      return true;
  return false;
}

std::vector<double>
namer::extractViolationFeatures(const Violation &V, const StmtRecord &Stmt,
                                const FeatureInputs &Inputs) {
  assert(V.Pattern < Inputs.Patterns.size() && "pattern id out of range");
  const NamePattern &P = Inputs.Patterns[V.Pattern];

  PatternCounts File = Inputs.Index.fileCounts(V.Pattern, Stmt.File);
  PatternCounts Repo = Inputs.Index.repoCounts(V.Pattern, Stmt.Repo);
  auto Rate = [](uint32_t Sat, uint32_t Matches) {
    return Matches == 0 ? 0.0
                        : static_cast<double>(Sat) /
                              static_cast<double>(Matches);
  };

  SuggestedFix Fix = deriveFix(P, Stmt.Paths, Inputs.Table);
  std::string Original(Inputs.Ctx.text(Fix.Original));
  std::string Suggested(Inputs.Ctx.text(Fix.Suggested));

  double StmtPathCount = static_cast<double>(Stmt.Paths.Paths.size());
  double DeductionSize = static_cast<double>(P.Deduction.size());
  double MatchRatio =
      StmtPathCount - DeductionSize <= 0.0
          ? 1.0
          : static_cast<double>(P.Condition.size()) /
                (StmtPathCount - DeductionSize);

  std::vector<double> Features(NumViolationFeatures);
  Features[0] = StmtPathCount;
  Features[1] = Inputs.Index.identicalInFile(Stmt.File, Stmt.TextHash);
  Features[2] = Inputs.Index.identicalInRepo(Stmt.Repo, Stmt.TextHash);
  Features[3] = Rate(File.Satisfactions, File.Matches);
  Features[4] = Rate(Repo.Satisfactions, Repo.Matches);
  Features[5] = P.datasetSatisfactionRate();
  Features[6] = File.Violations;
  Features[7] = Repo.Violations;
  Features[8] = P.DatasetViolations;
  Features[9] = File.Satisfactions;
  Features[10] = Repo.Satisfactions;
  Features[11] = P.DatasetSatisfactions;
  Features[12] =
      patternTargetsFunctionName(P, Inputs.Table, Inputs.Ctx) ? 1.0 : 0.0;
  Features[13] = static_cast<double>(P.Condition.size());
  Features[14] = MatchRatio;
  Features[15] = static_cast<double>(editDistance(Original, Suggested));
  Features[16] = Inputs.Pairs.isConfusingPair(Fix.Original, Fix.Suggested)
                     ? 1.0
                     : 0.0;
  return Features;
}
