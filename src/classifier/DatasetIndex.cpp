//===- classifier/DatasetIndex.cpp ----------------------------------------==//

#include "classifier/DatasetIndex.h"

#include "support/Hashing.h"

using namespace namer;

void DatasetIndex::addStatement(const StmtRecord &Stmt,
                                const std::vector<PatternHit> &Hits) {
  ++FileStmtCounts[comboKey(Stmt.File, Stmt.TextHash)];
  ++RepoStmtCounts[comboKey(Stmt.Repo, Stmt.TextHash)];
  for (const PatternHit &Hit : Hits) {
    auto Bump = [&](PatternCounts &Counts) {
      ++Counts.Matches;
      if (Hit.Result == MatchResult::Satisfied)
        ++Counts.Satisfactions;
      else
        ++Counts.Violations;
    };
    Bump(FilePattern[comboKey(Hit.Pattern, Stmt.File)]);
    Bump(RepoPattern[comboKey(Hit.Pattern, Stmt.Repo)]);
  }
}

uint32_t DatasetIndex::identicalInFile(FileId File, uint64_t TextHash) const {
  auto It = FileStmtCounts.find(comboKey(File, TextHash));
  return It == FileStmtCounts.end() ? 0 : It->second;
}

uint32_t DatasetIndex::identicalInRepo(RepoId Repo, uint64_t TextHash) const {
  auto It = RepoStmtCounts.find(comboKey(Repo, TextHash));
  return It == RepoStmtCounts.end() ? 0 : It->second;
}

PatternCounts DatasetIndex::fileCounts(PatternId Pattern, FileId File) const {
  auto It = FilePattern.find(comboKey(Pattern, File));
  return It == FilePattern.end() ? PatternCounts() : It->second;
}

PatternCounts DatasetIndex::repoCounts(PatternId Pattern, RepoId Repo) const {
  auto It = RepoPattern.find(comboKey(Pattern, Repo));
  return It == RepoPattern.end() ? PatternCounts() : It->second;
}
