//===- classifier/DefectClassifier.h - The Section 4.2 classifier -*- C++ -*-=//
///
/// \file
/// The trained half of Namer's recipe: standardization + PCA preprocessing
/// feeding a linear binary model, trained on a small manually labeled set
/// of violations (120 in the paper). Reports a violation iff the model
/// predicts true. Also exposes the weights mapped back to the original
/// feature space, which Table 9 prints per level.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_CLASSIFIER_DEFECTCLASSIFIER_H
#define NAMER_CLASSIFIER_DEFECTCLASSIFIER_H

#include "classifier/Features.h"
#include "ml/Evaluation.h"
#include "ml/Preprocess.h"

#include <memory>
#include <string>
#include <vector>

namespace namer {

class DefectClassifier {
public:
  struct Config {
    /// Model family; empty selects by cross-validation over the paper's
    /// three candidates (Section 5.1).
    std::string ModelFamily;
    /// PCA components kept; 0 keeps all 17.
    size_t PcaComponents = 0;
    ml::CrossValidationConfig CrossValidation;
  };

  explicit DefectClassifier(Config C) : Cfg(std::move(C)) {}
  DefectClassifier() : DefectClassifier(Config()) {}

  /// Trains on labeled feature vectors. Returns the cross-validation
  /// metrics of the selected family (averaged over the repeats), which
  /// Section 5.2/5.3 report.
  ml::Metrics train(const std::vector<std::vector<double>> &Features,
                    const std::vector<bool> &Labels);

  /// True = report the violation as a naming issue.
  bool predict(const std::vector<double> &Features) const;
  /// Signed decision value (distance from the separating hyperplane).
  double decision(const std::vector<double> &Features) const;

  /// Weights in the original 17-feature space, scaled like the trained
  /// (standardized) inputs. Valid after train().
  std::vector<double> featureWeights() const;

  /// Per-feature decomposition of one decision value. Because the whole
  /// recipe is linear (standardize, project, dot with the model weights),
  /// the decision is exactly sum_i Weights[i] * Standardized[i] + Bias in
  /// the original feature space; the explainability layer renders each
  /// term as a contribution. Valid after train().
  struct FeatureAttribution {
    std::vector<double> Standardized; ///< (x - mean) / stddev per feature
    std::vector<double> Weights;      ///< back-projected linear weights
    double Bias = 0.0;
    double Decision = 0.0;
  };
  FeatureAttribution attribute(const std::vector<double> &Features) const;

  /// Model bias term (the constant of the decision function).
  double bias() const;
  bool trained() const { return Model != nullptr; }

  const std::string &selectedFamily() const { return SelectedFamily; }
  /// Per-family cross-validation metrics gathered during selection.
  const std::vector<std::pair<std::string, ml::Metrics>> &
  selectionResults() const {
    return SelectionResults;
  }

  /// Everything the decision function depends on, as plain data. Because
  /// the whole recipe is linear (standardize, project, dot + bias), a
  /// restored snapshot reproduces decision() bit-exactly when the doubles
  /// round-trip bit-exactly (the model store writes them as u64 bit
  /// patterns).
  struct Snapshot {
    std::string Family;
    std::vector<double> Means;
    std::vector<double> Stddevs;
    ml::Matrix Components; ///< rows = PCA components, cols = features
    std::vector<double> Eigenvalues;
    std::vector<double> Weights; ///< component-space model weights
    double Bias = 0.0;
  };
  /// Valid after train() (or restore()).
  Snapshot snapshot() const;
  /// Reinstates a trained state; predict()/decision()/attribute() work as
  /// on the instance the snapshot came from. Selection metrics are not
  /// part of the snapshot (they describe training, not the model).
  void restore(const Snapshot &S);

private:
  Config Cfg;
  ml::Standardizer Scaler;
  ml::Pca Projector;
  std::unique_ptr<ml::BinaryClassifier> Model;
  std::string SelectedFamily;
  std::vector<std::pair<std::string, ml::Metrics>> SelectionResults;
};

} // namespace namer

#endif // NAMER_CLASSIFIER_DEFECTCLASSIFIER_H
