//===- classifier/DefectClassifier.cpp ------------------------------------==//

#include "classifier/DefectClassifier.h"

#include "support/Telemetry.h"

#include <cassert>

using namespace namer;
using namespace namer::ml;

ml::Metrics
DefectClassifier::train(const std::vector<std::vector<double>> &Features,
                        const std::vector<bool> &Labels) {
  telemetry::TraceSpan Span("classifier.train");
  assert(Features.size() == Labels.size() && "label count mismatch");
  assert(!Features.empty() && "cannot train on an empty set");
  size_t N = Features.size(), D = Features.front().size();

  Matrix Raw(N, D);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != D; ++J)
      Raw.at(I, J) = Features[I][J];

  Scaler.fit(Raw);
  Matrix Scaled = Scaler.transform(Raw);
  Projector.fit(Scaled, Cfg.PcaComponents);
  Matrix Projected = Projector.transform(Scaled);

  SelectedFamily = Cfg.ModelFamily;
  SelectionResults.clear();
  Metrics Selected;
  if (SelectedFamily.empty()) {
    SelectedFamily =
        selectModel(Projected, Labels, {"svm-linear", "logreg", "lda"},
                    Cfg.CrossValidation, &SelectionResults);
    for (const auto &[Name, M] : SelectionResults)
      if (Name == SelectedFamily)
        Selected = M;
  } else {
    Selected = crossValidate(
        Projected, Labels, [&] { return makeClassifier(SelectedFamily); },
        Cfg.CrossValidation);
    SelectionResults.emplace_back(SelectedFamily, Selected);
  }

  Model = makeClassifier(SelectedFamily);
  assert(Model && "unknown model family");
  Model->fit(Projected, Labels);
  return Selected;
}

bool DefectClassifier::predict(const std::vector<double> &Features) const {
  bool Report = decision(Features) >= 0.0;
  telemetry::count("classifier.predictions");
  if (!Report)
    telemetry::count("classifier.violations_filtered");
  return Report;
}

double DefectClassifier::decision(const std::vector<double> &Features) const {
  assert(Model && "classifier not trained");
  return Model->decision(Projector.transform(Scaler.transform(Features)));
}

std::vector<double> DefectClassifier::featureWeights() const {
  assert(Model && "classifier not trained");
  return Projector.backProject(Model->weights());
}

double DefectClassifier::bias() const {
  assert(Model && "classifier not trained");
  return Model->bias();
}

DefectClassifier::Snapshot DefectClassifier::snapshot() const {
  assert(Model && "classifier not trained");
  Snapshot S;
  S.Family = Model->name();
  S.Means = Scaler.means();
  S.Stddevs = Scaler.stddevs();
  S.Components = Projector.components();
  S.Eigenvalues = Projector.eigenvalues();
  S.Weights = Model->weights();
  S.Bias = Model->bias();
  return S;
}

void DefectClassifier::restore(const Snapshot &S) {
  Scaler.restore(S.Means, S.Stddevs);
  Projector.restore(S.Components, S.Eigenvalues);
  Model = std::make_unique<ml::FrozenLinearModel>(S.Family, S.Weights, S.Bias);
  SelectedFamily = S.Family;
  SelectionResults.clear();
}

DefectClassifier::FeatureAttribution
DefectClassifier::attribute(const std::vector<double> &Features) const {
  assert(Model && "classifier not trained");
  FeatureAttribution A;
  A.Standardized = Scaler.transform(Features);
  A.Weights = Projector.backProject(Model->weights());
  A.Bias = Model->bias();
  A.Decision = Model->decision(Projector.transform(A.Standardized));
  return A;
}
