//===- classifier/Features.h - Violation features (Table 1) -----*- C++ -*-==//
///
/// \file
/// Extracts the 17 features of Table 1 for a violation (statement s,
/// pattern p):
///
///    1    number of name paths of s
///    2-3  statements identical to s at file / repository level
///    4-6  satisfaction rate of p at file / repository / dataset level
///    7-9  violation count of p at file / repository / dataset level
///   10-12 satisfaction count of p at file / repository / dataset level
///   13    whether p targets an object name or a function name
///   14    number of name paths in p's condition
///   15    match ratio between p and s
///   16    edit distance between the original and the suggested name
///   17    whether <original, suggested> is a mined confusing word pair
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_CLASSIFIER_FEATURES_H
#define NAMER_CLASSIFIER_FEATURES_H

#include "classifier/DatasetIndex.h"
#include "histmine/ConfusingPairs.h"

#include <string>
#include <vector>

namespace namer {

inline constexpr size_t NumViolationFeatures = 17;

/// Human-readable feature names, index-aligned with the vector.
extern const char *const ViolationFeatureNames[NumViolationFeatures];

/// Everything the extractor needs besides the violation itself.
struct FeatureInputs {
  const NamePathTable &Table;
  const AstContext &Ctx;
  const DatasetIndex &Index;
  const std::vector<NamePattern> &Patterns;
  const ConfusingPairMiner &Pairs;
};

/// Computes the feature vector of \p V (a Violated evaluation of
/// Patterns[V.Pattern] by \p Stmt).
std::vector<double> extractViolationFeatures(const Violation &V,
                                             const StmtRecord &Stmt,
                                             const FeatureInputs &Inputs);

/// True if \p Pattern targets a function/method name (the deduction path
/// runs through an Attr node); false when it targets an object name.
/// Feature 13.
bool patternTargetsFunctionName(const NamePattern &Pattern,
                                const NamePathTable &Table,
                                const AstContext &Ctx);

} // namespace namer

#endif // NAMER_CLASSIFIER_FEATURES_H
