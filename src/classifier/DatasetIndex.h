//===- classifier/DatasetIndex.h - Multi-level statistics -------*- C++ -*-==//
///
/// \file
/// The Table 1 features measure violation statistics at three levels: the
/// file containing the statement, the repository containing it, and the
/// entire mining dataset. This index accumulates, per pattern, the match /
/// satisfaction / violation counts at file and repository granularity
/// (dataset-level counts live on NamePattern), plus identical-statement
/// counts (features 2-3) keyed by statement text hash.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_CLASSIFIER_DATASETINDEX_H
#define NAMER_CLASSIFIER_DATASETINDEX_H

#include "pattern/PatternIndex.h"

#include <cstdint>
#include <unordered_map>

namespace namer {

/// Ids assigned by the pipeline during ingestion.
using FileId = uint32_t;
using RepoId = uint32_t;
using StmtId = uint32_t;

/// One statement as the pipeline stores it.
struct StmtRecord {
  FileId File;
  RepoId Repo;
  uint32_t Line;
  uint64_t TextHash; ///< fingerprint of the projected statement
  StmtPaths Paths;
};

/// A pattern violation by a statement: the classifier's input unit.
struct Violation {
  StmtId Stmt;
  PatternId Pattern;
};

/// Match/satisfaction/violation counters.
struct PatternCounts {
  uint32_t Matches = 0;
  uint32_t Satisfactions = 0;
  uint32_t Violations = 0;
};

class DatasetIndex {
public:
  /// Accumulates one evaluated statement. \p Hits are the pattern hits of
  /// \p Stmt (from PatternIndex::evaluate).
  void addStatement(const StmtRecord &Stmt,
                    const std::vector<PatternHit> &Hits);

  /// Identical statement counts (features 2-3).
  uint32_t identicalInFile(FileId File, uint64_t TextHash) const;
  uint32_t identicalInRepo(RepoId Repo, uint64_t TextHash) const;

  /// Per-pattern counters (features 4-12).
  PatternCounts fileCounts(PatternId Pattern, FileId File) const;
  PatternCounts repoCounts(PatternId Pattern, RepoId Repo) const;

private:
  static uint64_t comboKey(uint32_t A, uint64_t B) {
    return (static_cast<uint64_t>(A) << 40) ^ B;
  }
  std::unordered_map<uint64_t, uint32_t> FileStmtCounts; // (file,hash)
  std::unordered_map<uint64_t, uint32_t> RepoStmtCounts; // (repo,hash)
  std::unordered_map<uint64_t, PatternCounts> FilePattern; // (pattern,file)
  std::unordered_map<uint64_t, PatternCounts> RepoPattern; // (pattern,repo)
};

} // namespace namer

#endif // NAMER_CLASSIFIER_DATASETINDEX_H
