//===- support/StringInterner.h - String interning --------------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit symbols. Node values, subtokens and
/// origin labels throughout the system are represented as symbols so that
/// name-path comparison and FP-tree hashing reduce to integer operations.
///
/// The table is sharded for concurrent interning: strings are routed to one
/// of NumShards lock-striped shards by content hash, symbols are assigned
/// from a shared atomic counter, and a lock-free growable directory maps
/// each symbol back to its stable string storage. Symbols are *stable*
/// (never reassigned, and text() views stay valid as the table grows) and
/// *dense* (0..size()-1 with no gaps).
///
/// Determinism note: symbol numeric values reflect interning order. The
/// pipeline orders its FP-trees and reports by symbol ids, so every stage
/// whose output feeds mining or reporting interns through a sequential
/// commit step in corpus order; concurrent callers may intern safely but
/// receive schedule-dependent ids, which is only acceptable for symbols
/// compared by equality (see DESIGN.md, "Concurrency model").
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_STRINGINTERNER_H
#define NAMER_SUPPORT_STRINGINTERNER_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace namer {

/// A dense identifier for an interned string. Symbol 0 is reserved for the
/// "epsilon" end node of symbolic name paths (see Definition 3.2).
using Symbol = uint32_t;

/// The reserved symbol used for the symbolic end node of a name path.
inline constexpr Symbol EpsilonSymbol = 0;

/// Bidirectional string <-> Symbol table.
///
/// Symbols are assigned densely starting at 1; symbol 0 is pre-reserved for
/// epsilon and maps to the text "<eps>". Interning the same text twice
/// returns the same symbol, from any thread: intern/lookup/contains/text
/// are safe under concurrent use.
class StringInterner {
public:
  StringInterner();
  ~StringInterner();

  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Returns the symbol for \p Text, interning it on first use.
  Symbol intern(std::string_view Text);

  /// Returns the symbol for \p Text, or 0 if it was never interned.
  /// Note that 0 is also the epsilon symbol; use contains() to disambiguate
  /// when the distinction matters.
  Symbol lookup(std::string_view Text) const;

  /// Returns true if \p Text has been interned.
  bool contains(std::string_view Text) const;

  /// Returns the text of \p S. \p S must be a valid symbol. The returned
  /// view stays valid for the lifetime of the interner.
  std::string_view text(Symbol S) const;

  /// Number of interned strings, including the reserved epsilon entry.
  size_t size() const { return NextSymbol.load(std::memory_order_acquire); }

  /// Approximate heap footprint of the table in bytes: string storage
  /// (capacities, so it reflects allocation, not content length) plus the
  /// per-entry map and deque-node overhead. Takes each shard's lock in
  /// turn; meant for phase-boundary memory sampling (MemoryTracker), not
  /// hot paths.
  size_t bytesUsed() const;

  /// Amortizes shard locking for a single-threaded stretch of interning
  /// (one file's tokens, one commit pass). The handle keeps a local
  /// string -> symbol cache, so repeated texts are resolved without
  /// touching the shared table at all, and internBatch() groups cache
  /// misses by shard so each touched shard's mutex is taken once per batch
  /// instead of once per token.
  ///
  /// Cache keys are the interner's own stable text(S) views, so they stay
  /// valid however the caller's buffers move. A handle is not thread-safe;
  /// create one per worker. Telemetry (`interner.batch.*`: batches,
  /// strings, cache_hits, shard_locks) is flushed on destruction.
  class BatchHandle {
  public:
    explicit BatchHandle(StringInterner &I) : Interner(I) {}
    ~BatchHandle();
    BatchHandle(const BatchHandle &) = delete;
    BatchHandle &operator=(const BatchHandle &) = delete;

    /// intern() through the handle cache; one shard lock on a miss.
    Symbol intern(std::string_view Text);

    /// Resolves Texts[i] into Out[i] (Out is resized), locking each
    /// touched shard once for all of that shard's cache misses.
    void internBatch(const std::vector<std::string_view> &Texts,
                     std::vector<Symbol> &Out);

    StringInterner &interner() { return Interner; }

  private:
    StringInterner &Interner;
    std::unordered_map<std::string_view, Symbol> Cache;
    uint64_t Batches = 0, Strings = 0, CacheHits = 0, ShardLocks = 0;
  };

private:
  static constexpr size_t NumShards = 16; // power of two
  /// Directory segment k holds FirstSegmentSize << k entries, so 26
  /// segments cover every 32-bit symbol.
  static constexpr size_t FirstSegmentSize = 1024;
  static constexpr size_t MaxSegments = 26;

  struct Shard {
    mutable std::mutex M;
    /// Keys view into Texts; deque keeps string storage stable as new
    /// strings are added, so views (and text() results) never dangle.
    std::unordered_map<std::string_view, Symbol> Map;
    std::deque<std::string> Texts;
  };

  static size_t shardIndex(std::string_view Text);
  static size_t segmentSize(size_t K) { return FirstSegmentSize << K; }
  /// Splits a symbol into (segment, offset within segment).
  static std::pair<size_t, size_t> locate(Symbol S);

  /// Makes text(S) resolve to \p Str; allocates the segment on demand.
  void publish(Symbol S, const std::string *Str);

  /// intern() body with \p Sh.M already held by the caller.
  Symbol internLocked(Shard &Sh, std::string_view Text);

  std::array<Shard, NumShards> Shards;
  std::atomic<Symbol> NextSymbol{0};
  std::mutex SegmentAllocM;
  std::array<std::atomic<std::atomic<const std::string *> *>, MaxSegments>
      Segments{};
};

} // namespace namer

#endif // NAMER_SUPPORT_STRINGINTERNER_H
