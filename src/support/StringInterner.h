//===- support/StringInterner.h - String interning --------------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit symbols. Node values, subtokens and
/// origin labels throughout the system are represented as symbols so that
/// name-path comparison and FP-tree hashing reduce to integer operations.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_STRINGINTERNER_H
#define NAMER_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace namer {

/// A dense identifier for an interned string. Symbol 0 is reserved for the
/// "epsilon" end node of symbolic name paths (see Definition 3.2).
using Symbol = uint32_t;

/// The reserved symbol used for the symbolic end node of a name path.
inline constexpr Symbol EpsilonSymbol = 0;

/// Bidirectional string <-> Symbol table.
///
/// Symbols are assigned densely starting at 1; symbol 0 is pre-reserved for
/// epsilon and maps to the text "<eps>". Interning the same text twice
/// returns the same symbol. Not thread-safe; each pipeline owns one.
class StringInterner {
public:
  StringInterner();

  /// Returns the symbol for \p Text, interning it on first use.
  Symbol intern(std::string_view Text);

  /// Returns the symbol for \p Text, or 0 if it was never interned.
  /// Note that 0 is also the epsilon symbol; use contains() to disambiguate
  /// when the distinction matters.
  Symbol lookup(std::string_view Text) const;

  /// Returns true if \p Text has been interned.
  bool contains(std::string_view Text) const;

  /// Returns the text of \p S. \p S must be a valid symbol.
  std::string_view text(Symbol S) const;

  /// Number of interned strings, including the reserved epsilon entry.
  size_t size() const { return Texts.size(); }

private:
  // Deque keeps string storage stable so string_view keys into Map remain
  // valid as new strings are added.
  std::deque<std::string> Texts;
  std::unordered_map<std::string_view, Symbol> Map;
};

} // namespace namer

#endif // NAMER_SUPPORT_STRINGINTERNER_H
