//===- support/MiniJson.h - Minimal JSON reader -----------------*- C++ -*-==//
///
/// \file
/// A small recursive-descent JSON reader for the observability tooling:
/// namer-statdiff parses stats/BENCH documents with it, and tests use it to
/// check ledger records structurally. Reader only -- every JSON writer in
/// the tree emits by hand to keep byte-stable golden output.
///
/// Scope: full JSON syntax with two deliberate simplifications. Numbers are
/// held as double (plenty for counters and microsecond totals; 53-bit
/// integer precision), and object keys keep insertion order in a flat
/// vector (stats documents are small, and order preservation lets tests
/// assert the writer's sorted-key contract).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_MINIJSON_H
#define NAMER_SUPPORT_MINIJSON_H

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace namer {
namespace json {

/// One parsed JSON value. Tagged union over the seven JSON kinds (null,
/// bool, number, string, array, object), with owning storage.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  /// Insertion-ordered key/value pairs (JSON permits duplicate keys; find()
  /// returns the first).
  std::vector<std::pair<std::string, Value>> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member named \p Key, or nullptr (also when not an object).
  const Value *find(std::string_view Key) const;

  /// Member lookup through a dotted path, e.g. "meta.schema_version".
  const Value *findPath(std::string_view DottedPath) const;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// whitespace allowed); returns std::nullopt on any syntax error. When
/// \p Error is non-null it receives a one-line message with byte offset.
std::optional<Value> parse(std::string_view Text, std::string *Error = nullptr);

} // namespace json
} // namespace namer

#endif // NAMER_SUPPORT_MINIJSON_H
