//===- support/TextTable.cpp ----------------------------------------------==//

#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>

using namespace namer;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TextTable::addSeparator() { Rows.push_back({SeparatorMark}); }

std::string TextTable::formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string TextTable::formatPercent(double Ratio, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f%%", Decimals, Ratio * 100.0);
  return Buffer;
}

std::string TextTable::render() const {
  // Column widths over header and all non-separator rows.
  std::vector<size_t> Widths;
  auto Grow = [&](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0, E = Cells.size(); I != E; ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const auto &Row : Rows)
    if (Row.empty() || Row[0] != SeparatorMark)
      Grow(Row);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;
  if (TotalWidth >= 2)
    TotalWidth -= 2;

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0, E = Cells.size(); I != E; ++I) {
      Out += Cells[I];
      if (I + 1 != E)
        Out.append(Widths[I] - Cells[I].size() + 2, ' ');
    }
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    Out.append(TotalWidth, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == SeparatorMark) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    Emit(Row);
  }
  return Out;
}
