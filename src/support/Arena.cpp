//===- support/Arena.cpp - Slab arena and zero-copy file mapping ----------==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include "support/Profiler.h"
#include "support/Telemetry.h"

#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define NAMER_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define NAMER_HAVE_MMAP 0
#endif

namespace namer {

Arena::~Arena() {
#if NAMER_HAVE_MMAP
  for (const Mapping &M : Mappings)
    ::munmap(M.Addr, M.Len);
#endif
}

Arena::Slab &Arena::addSlab(size_t MinBytes) {
  // Double the previous slab up to the cap; oversized requests get a slab
  // of exactly their size so a huge file does not inflate the growth curve.
  size_t Next = Slabs.empty() ? FirstSlabBytes
                              : std::min(Slabs.back().Size * 2, MaxSlabBytes);
  if (MinBytes > Next)
    Next = MinBytes;
  Slab S;
  S.Data = std::make_unique<char[]>(Next);
  S.Size = Next;
  Slabs.push_back(std::move(S));
  Reserved += Next;
  telemetry::count("arena.slabs");
  telemetry::count("arena.bytes", Next);
  // Credit the slab to whichever span triggered the growth
  // (`alloc.bytes.<span>`), so profiles show which stage allocates.
  prof::noteAllocBytes(Next);
  return Slabs.back();
}

void *Arena::allocate(size_t Size, size_t Align) {
  if (Size == 0)
    Size = 1;
  // Alignment is of the absolute address, not the slab offset: operator
  // new[] only guarantees max_align_t, so over-aligned requests must pad
  // from wherever the slab actually starts.
  if (!Slabs.empty()) {
    Slab &S = Slabs.back();
    uintptr_t Base = reinterpret_cast<uintptr_t>(S.Data.get());
    size_t Aligned =
        static_cast<size_t>(((Base + S.Used + Align - 1) & ~(uintptr_t)(Align - 1)) - Base);
    if (Aligned + Size <= S.Size) {
      Allocated += (Aligned - S.Used) + Size;
      S.Used = Aligned + Size;
      return S.Data.get() + Aligned;
    }
  }
  Slab &S = addSlab(Size + Align);
  uintptr_t Base = reinterpret_cast<uintptr_t>(S.Data.get());
  size_t Aligned =
      static_cast<size_t>(((Base + Align - 1) & ~(uintptr_t)(Align - 1)) - Base);
  Allocated += Aligned + Size;
  S.Used = Aligned + Size;
  return S.Data.get() + Aligned;
}

std::string_view Arena::copyString(std::string_view Text) {
  char *Dst = static_cast<char *>(allocate(Text.size(), 1));
  std::memcpy(Dst, Text.data(), Text.size());
  return std::string_view(Dst, Text.size());
}

std::optional<Arena::FileMapping> Arena::mapFile(const std::string &Path,
                                                 bool AllowMmap) {
#if NAMER_HAVE_MMAP
  if (AllowMmap) {
    int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd >= 0) {
      struct stat St;
      if (::fstat(Fd, &St) == 0 && S_ISREG(St.st_mode)) {
        if (St.st_size == 0) {
          ::close(Fd);
          telemetry::count("arena.files_mapped");
          return FileMapping{std::string_view(), true};
        }
        void *Addr = ::mmap(nullptr, static_cast<size_t>(St.st_size),
                            PROT_READ, MAP_PRIVATE, Fd, 0);
        ::close(Fd);
        if (Addr != MAP_FAILED) {
          Mappings.push_back({Addr, static_cast<size_t>(St.st_size)});
          telemetry::count("arena.files_mapped");
          return FileMapping{
              std::string_view(static_cast<const char *>(Addr),
                               static_cast<size_t>(St.st_size)),
              true};
        }
      } else {
        ::close(Fd);
      }
    }
    // Fall through to the read() path: open/fstat/mmap failed (special
    // file, exotic filesystem, resource limit).
    telemetry::count("arena.mmap_fallbacks");
  }
#else
  (void)AllowMmap;
#endif

  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  In.seekg(0, std::ios::end);
  std::streampos EndPos = In.tellg();
  if (EndPos < 0)
    return std::nullopt;
  size_t Size = static_cast<size_t>(EndPos);
  In.seekg(0, std::ios::beg);
  char *Dst = static_cast<char *>(allocate(Size, 1));
  if (Size != 0 && !In.read(Dst, static_cast<std::streamsize>(Size)))
    return std::nullopt;
  telemetry::count("arena.files_mapped");
  return FileMapping{std::string_view(Dst, Size), false};
}

} // namespace namer
