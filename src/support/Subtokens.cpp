//===- support/Subtokens.cpp ----------------------------------------------==//

#include "support/Subtokens.h"

#include <cctype>

using namespace namer;

static bool isLower(char C) { return std::islower(static_cast<unsigned char>(C)); }
static bool isUpper(char C) { return std::isupper(static_cast<unsigned char>(C)); }
static bool isDigit(char C) { return std::isdigit(static_cast<unsigned char>(C)); }

std::vector<std::string> namer::splitSubtokens(std::string_view Name) {
  std::vector<std::string> Result;
  std::string Current;
  auto Flush = [&] {
    if (!Current.empty()) {
      Result.push_back(Current);
      Current.clear();
    }
  };

  for (size_t I = 0, E = Name.size(); I != E; ++I) {
    char C = Name[I];
    if (C == '_') {
      Flush();
      continue;
    }
    if (!Current.empty()) {
      char Prev = Current.back();
      bool Boundary = false;
      // lower/digit -> Upper: "assertTrue" splits before 'T'.
      if (isUpper(C) && (isLower(Prev) || isDigit(Prev)))
        Boundary = true;
      // Acronym end: "HTTPServer" splits before the 'S' that precedes 'e'.
      else if (isUpper(C) && isUpper(Prev) && I + 1 != E && isLower(Name[I + 1]))
        Boundary = true;
      // letter -> digit boundary: "Server2" splits before '2'.
      else if (isDigit(C) && !isDigit(Prev))
        Boundary = true;
      else if (!isDigit(C) && isDigit(Prev))
        Boundary = true;
      if (Boundary)
        Flush();
    }
    Current.push_back(C);
  }
  Flush();
  return Result;
}

bool namer::isSnakeCase(std::string_view Name) {
  for (char C : Name)
    if (isUpper(C))
      return false;
  return true;
}

std::string namer::joinSubtokensLike(const std::vector<std::string> &Subtokens,
                                     std::string_view Like) {
  if (Subtokens.empty())
    return std::string();
  bool Snake = Like.find('_') != std::string_view::npos || isSnakeCase(Like);
  std::string Result = Subtokens.front();
  for (size_t I = 1, E = Subtokens.size(); I != E; ++I) {
    const std::string &Tok = Subtokens[I];
    if (Snake) {
      Result += '_';
      for (char C : Tok)
        Result += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
      continue;
    }
    std::string Capitalized = Tok;
    if (!Capitalized.empty())
      Capitalized[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(Capitalized[0])));
    Result += Capitalized;
  }
  return Result;
}
