//===- support/Subtokens.cpp ----------------------------------------------==//

#include "support/Subtokens.h"

#include <cctype>

using namespace namer;

static bool isLower(char C) { return std::islower(static_cast<unsigned char>(C)); }
static bool isUpper(char C) { return std::isupper(static_cast<unsigned char>(C)); }
static bool isDigit(char C) { return std::isdigit(static_cast<unsigned char>(C)); }

/// Visits each subtoken as a (start, length) range of Name. Boundaries only
/// separate -- no character is rewritten -- so every subtoken is a
/// contiguous substring; the three public entry points share this walk.
template <typename Fn>
static void forEachSubtoken(std::string_view Name, Fn &&Visit) {
  constexpr size_t None = static_cast<size_t>(-1);
  size_t Start = None; // start of the open subtoken; None when closed
  for (size_t I = 0, E = Name.size(); I != E; ++I) {
    char C = Name[I];
    if (C == '_') {
      if (Start != None) {
        Visit(Start, I - Start);
        Start = None;
      }
      continue;
    }
    if (Start != None) {
      // Prev is the last character appended, i.e. Name[I-1]: an open
      // subtoken means Name[I-1] was not an underscore.
      char Prev = Name[I - 1];
      bool Boundary = false;
      // lower/digit -> Upper: "assertTrue" splits before 'T'.
      if (isUpper(C) && (isLower(Prev) || isDigit(Prev)))
        Boundary = true;
      // Acronym end: "HTTPServer" splits before the 'S' that precedes 'e'.
      else if (isUpper(C) && isUpper(Prev) && I + 1 != E && isLower(Name[I + 1]))
        Boundary = true;
      // letter -> digit boundary: "Server2" splits before '2'.
      else if (isDigit(C) && !isDigit(Prev))
        Boundary = true;
      else if (!isDigit(C) && isDigit(Prev))
        Boundary = true;
      if (Boundary) {
        Visit(Start, I - Start);
        Start = None;
      }
    }
    if (Start == None)
      Start = I;
  }
  if (Start != None)
    Visit(Start, Name.size() - Start);
}

std::vector<std::string> namer::splitSubtokens(std::string_view Name) {
  std::vector<std::string> Result;
  forEachSubtoken(Name, [&](size_t Start, size_t Len) {
    Result.emplace_back(Name.substr(Start, Len));
  });
  return Result;
}

std::vector<std::string_view> namer::splitSubtokenViews(std::string_view Name) {
  std::vector<std::string_view> Result;
  forEachSubtoken(Name, [&](size_t Start, size_t Len) {
    Result.push_back(Name.substr(Start, Len));
  });
  return Result;
}

size_t namer::countSubtokens(std::string_view Name) {
  size_t N = 0;
  forEachSubtoken(Name, [&](size_t, size_t) { ++N; });
  return N;
}

bool namer::isSnakeCase(std::string_view Name) {
  for (char C : Name)
    if (isUpper(C))
      return false;
  return true;
}

std::string namer::joinSubtokensLike(const std::vector<std::string> &Subtokens,
                                     std::string_view Like) {
  if (Subtokens.empty())
    return std::string();
  bool Snake = Like.find('_') != std::string_view::npos || isSnakeCase(Like);
  std::string Result = Subtokens.front();
  for (size_t I = 1, E = Subtokens.size(); I != E; ++I) {
    const std::string &Tok = Subtokens[I];
    if (Snake) {
      Result += '_';
      for (char C : Tok)
        Result += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
      continue;
    }
    std::string Capitalized = Tok;
    if (!Capitalized.empty())
      Capitalized[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(Capitalized[0])));
    Result += Capitalized;
  }
  return Result;
}
