//===- support/RunLedger.cpp ----------------------------------------------==//

#include "support/RunLedger.h"

#include "support/IoRetry.h"
#include "support/Telemetry.h"

#include <cinttypes>

using namespace namer;
using namespace namer::ledger;

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

RunLedger::~RunLedger() { close(); }

std::string RunLedger::makeRunId(std::string_view GitRev,
                                 uint64_t ConfigHash) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, ConfigHash);
  return std::string(GitRev) + "-" + Buf;
}

bool RunLedger::open(const std::string &Path, std::string Id) {
  std::lock_guard<std::mutex> L(M);
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  RunId = std::move(Id);
  Seq = 0;
  return true;
}

bool RunLedger::isOpen() const {
  std::lock_guard<std::mutex> L(M);
  return File != nullptr;
}

void RunLedger::append(const Record &R) {
  std::lock_guard<std::mutex> L(M);
  if (!File)
    return;
  // Keys in sorted order; `detail` omitted when empty. One line per record,
  // flushed, so the file is valid JSONL after a crash mid-run.
  std::string Line = "{";
  if (!R.Detail.empty())
    Line += "\"detail\":\"" + jsonEscape(R.Detail) + "\",";
  Line += "\"duration_us\":" + std::to_string(R.DurationUs) + ",";
  Line += "\"event\":\"" + jsonEscape(R.Event) + "\",";
  Line += "\"name\":\"" + jsonEscape(R.Name) + "\",";
  Line += "\"outcome\":\"" + jsonEscape(R.Outcome) + "\",";
  Line += "\"rss_delta_kb\":" + std::to_string(R.RssDeltaKb) + ",";
  Line += "\"run_id\":\"" + jsonEscape(RunId) + "\",";
  Line += "\"schema_version\":" + std::to_string(kLedgerSchemaVersion) + ",";
  Line += "\"seq\":" + std::to_string(Seq) + "}\n";
  ++Seq;
  // EINTR/short-write tolerant: a run's tail records (run_end, the final
  // phase) must survive a signal landing mid-append. fwriteAll retries the
  // remainder once; a persistent failure only drops this line, never
  // corrupts earlier ones (each append is a self-contained line + flush).
  io::fwriteAll(File, Line.data(), Line.size());
  std::fflush(File);
  telemetry::count("ledger.records");
}

uint64_t RunLedger::records() const {
  std::lock_guard<std::mutex> L(M);
  return Seq;
}

void RunLedger::close() {
  std::lock_guard<std::mutex> L(M);
  if (!File)
    return;
  std::fclose(File);
  File = nullptr;
}
