//===- support/FaultInjector.cpp ------------------------------------------==//

#include "support/FaultInjector.h"

#if NAMER_FAULT_INJECTION

#include <atomic>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace namer {
namespace faultinject {
namespace {

struct SeededRule {
  std::string Site;
  uint64_t Seed;
  uint64_t Threshold; // fires iff hash(Seed, Site, Key) % 1'000'000 < this
  FaultKind Kind;
};

struct Registry {
  std::mutex Mu;
  // Exact (site, key) -> kind.
  std::map<std::pair<std::string, std::string>, FaultKind> Exact;
  std::vector<SeededRule> Seeded;
  std::atomic<uint64_t> Fired{0};
  std::atomic<bool> Armed{false};
};

Registry &registry() {
  static Registry R;
  return R;
}

thread_local std::string CurrentKey;

/// FNV-1a over (Seed, Site, '\0', Key) — deterministic across runs,
/// platforms and call order.
uint64_t mixHash(uint64_t Seed, std::string_view Site, std::string_view Key) {
  uint64_t H = 14695981039346656037ull ^ Seed;
  auto Feed = [&H](std::string_view S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
  };
  Feed(Site);
  H ^= 0xff;
  H *= 1099511628211ull;
  Feed(Key);
  return H;
}

} // namespace

void arm(std::string_view Site, std::string_view Key, FaultKind Kind) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Exact[{std::string(Site), std::string(Key)}] = Kind;
  R.Armed.store(true, std::memory_order_release);
}

void armSeeded(std::string_view Site, uint64_t Seed, double Rate,
               FaultKind Kind) {
  if (Rate <= 0)
    return;
  uint64_t Threshold =
      Rate >= 1.0 ? 1000000ull : static_cast<uint64_t>(Rate * 1000000.0);
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Seeded.push_back(SeededRule{std::string(Site), Seed, Threshold, Kind});
  R.Armed.store(true, std::memory_order_release);
}

void disarm() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Exact.clear();
  R.Seeded.clear();
  R.Fired.store(0, std::memory_order_relaxed);
  R.Armed.store(false, std::memory_order_release);
}

void setKey(std::string_view Key) { CurrentKey.assign(Key); }

ScopedKey::ScopedKey(std::string_view Key) : Saved(CurrentKey) {
  CurrentKey.assign(Key);
}

ScopedKey::~ScopedKey() { CurrentKey = std::move(Saved); }

std::optional<FaultKind> fire(const char *Site) {
  Registry &R = registry();
  // Fast path: nothing armed anywhere.
  if (!R.Armed.load(std::memory_order_acquire))
    return std::nullopt;

  std::optional<FaultKind> Hit;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto It = R.Exact.find({Site, CurrentKey});
    if (It != R.Exact.end()) {
      Hit = It->second;
    } else {
      for (const SeededRule &Rule : R.Seeded) {
        if (Rule.Site != Site)
          continue;
        if (mixHash(Rule.Seed, Rule.Site, CurrentKey) % 1000000ull <
            Rule.Threshold) {
          Hit = Rule.Kind;
          break;
        }
      }
    }
  }
  if (!Hit)
    return std::nullopt;
  R.Fired.fetch_add(1, std::memory_order_relaxed);
  if (*Hit == FaultKind::Throw)
    throw InjectedFault(Site, CurrentKey);
  return Hit;
}

uint64_t firedCount() {
  return registry().Fired.load(std::memory_order_relaxed);
}

} // namespace faultinject
} // namespace namer

#endif // NAMER_FAULT_INJECTION
