//===- support/Telemetry.h - Pipeline tracing and metrics -------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer of the pipeline: stage-scoped tracing plus a
/// metrics registry, with JSON and Prometheus exporters, a span-deadline
/// watchdog and a periodic metrics snapshotter.
///
/// * TraceSpan -- an RAII span. Construction records a steady-clock start
///   time; destruction emits one event {name, thread, depth, start, dur}
///   into a per-thread buffer. Spans nest (a thread-local depth counter is
///   maintained) and are thread-attributed via small dense thread ids, so
///   worker-pool tasks show up as parallel tracks in chrome://tracing.
///   While open, a span is also published to a per-thread live-span stack
///   that SpanWatchdog scans for stalls.
///
/// * MetricsRegistry -- named counters (monotonic u64), gauges (last-set
///   i64) and histograms (count/sum/min/max + log2 buckets + p50/p90/p99/
///   p999 quantile estimates), looked up by name in a lock-striped table.
///   Metric objects have stable addresses, so hot paths cache `Counter &`
///   once and pay one relaxed atomic add per event. Names follow the
///   `stage.noun` convention (DESIGN.md, "Observability"): e.g.
///   `parse.files`, `datalog.tuples`, `fptree.nodes`, `pool.steals`.
///
/// * Exporters -- chromeTraceJson() renders the span buffers as Chrome
///   trace-event JSON (load via chrome://tracing or Perfetto); statsJson()
///   renders the canonical flat `{meta, counters, spans}` document that
///   BENCH_*.json files and `namer-scan --stats` share
///   (kStatsSchemaVersion); prometheusText() renders the Prometheus text
///   exposition format for scraping. All emit keys in sorted order so
///   golden tests can compare bytes.
///
/// * SpanWatchdog -- flags spans that exceed setSpanDeadlineNs(), both at
///   close time (`watchdog.stalls`) and while still open
///   (`watchdog.live_stalls`, via a background or manually driven scan).
///   Degradation only: a stall bumps a counter and fires the stall hook,
///   it never aborts anything.
///
/// * Profiler hooks -- the live-span stacks double as the sampling
///   profiler's call-stack source (support/Profiler.h): sampleLiveStacks()
///   reads every thread's open-span stack lock-free, setSpanSampleHook()
///   streams one sample per span close, and captureStackPrefix() /
///   InheritedStackScope let the thread pool graft the submitting thread's
///   span stack under worker-side spans, so folded stacks are structural
///   (identical at every worker count) rather than schedule-dependent.
///   Span closes also derive exact self time (duration minus the summed
///   durations of direct children), exported as `self_us` next to
///   `total_us`.
///
/// * MetricsSnapshotter -- writes prometheusText() to a file atomically
///   (tmp + rename), either on demand or on a background interval, with a
///   final flush on destruction. Gives long runs live exposition without a
///   server.
///
/// Overhead: everything is gated twice. Compile-time, the NAMER_TELEMETRY
/// macro (CMake option of the same name, default ON) reduces TraceSpan and
/// every record call to an empty inline body -- the disabled path compiles
/// out entirely (the `release-notrace` preset builds this configuration).
/// Run-time, setEnabled(false) short-circuits span/metric recording to one
/// relaxed atomic load and performs no allocation (pinned by a test
/// against debugAllocations()).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_TELEMETRY_H
#define NAMER_SUPPORT_TELEMETRY_H

#ifndef NAMER_TELEMETRY
#define NAMER_TELEMETRY 1
#endif

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace namer {
namespace telemetry {

/// Schema version of the flat stats JSON ({meta, counters, spans}); bumped
/// whenever a key is renamed or removed. BENCH_*.json files record it.
inline constexpr int kStatsSchemaVersion = 1;

/// Fixed metadata of one run, rendered into the "meta" object of the stats
/// JSON. GitRev and HardwareConcurrency are filled by defaultMeta().
struct RunMeta {
  std::string Tool;       ///< producing binary, e.g. "namer-scan"
  std::string GitRev;     ///< short git revision the binary was built from
  unsigned Threads = 0;   ///< configured pipeline worker count (0 = auto)
  unsigned HardwareConcurrency = 0;
  /// Extra "key": <raw JSON value> pairs appended to the top-level object
  /// (after meta/counters/spans), e.g. a bench-specific "runs" array. The
  /// value string must already be valid JSON.
  std::vector<std::pair<std::string, std::string>> Extra;
};

/// RunMeta with GitRev / HardwareConcurrency resolved for this build.
RunMeta defaultMeta(std::string Tool, unsigned Threads);

/// Monotonic nanoseconds from the telemetry time source: the process
/// steady clock by default, or the fake installed by setTimeSourceForTest.
/// Available in both build modes (the run ledger and memory tracker stamp
/// durations with it even when span recording is compiled out), so one
/// injected clock makes every observability output deterministic.
uint64_t nowNanos();

/// Replaces the time source with a fake returning nanoseconds; pass
/// nullptr to restore the steady clock. Test hook: with a deterministic
/// clock the exporters and the run ledger become byte-stable for golden
/// comparisons (and byte-identical across thread counts when the fake is
/// schedule-independent, e.g. a constant).
void setTimeSourceForTest(uint64_t (*NowNs)());

/// Options of the Prometheus text exporter.
struct PromExportOptions {
  /// Metric and span names starting with any of these dotted-name prefixes
  /// are omitted. Used to drop schedule-dependent series (`pool.*`,
  /// `interner.shard_contention`) when cross-thread-count byte identity is
  /// required (DESIGN.md, "Observability").
  std::vector<std::string> ExcludePrefixes;
  /// When non-empty, a terminal `namer_build_info{git_rev="..."}` gauge is
  /// appended.
  std::string GitRev;
};

/// Prometheus text exposition (version 0.0.4) of every registered metric
/// and span aggregate, byte-stable: families sorted by name, dotted names
/// sanitized to `namer_<name_with_underscores>`, counters suffixed
/// `_total`, histograms rendered with cumulative `_bucket{le=...}` lines
/// plus a `_quantile{q=...}` gauge family. With NAMER_TELEMETRY off the
/// document degrades to its header (plus build_info when configured).
std::string prometheusText(const PromExportOptions &Opts = {});

/// Type-preserving registry snapshot used by the Prometheus exporter and
/// the benches: unlike MetricsRegistry::snapshot() (which flattens
/// histograms into scalar entries), this keeps counters, gauges and full
/// histogram state apart. Each vector is sorted by name.
struct MetricsTypedSnapshot {
  struct Hist {
    std::string Name;
    uint64_t Count = 0, Sum = 0, Min = 0, Max = 0;
    uint64_t P50 = 0, P90 = 0, P99 = 0, P999 = 0;
    std::array<uint64_t, 32> Buckets{};
  };
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, int64_t>> Gauges;
  std::vector<Hist> Histograms;
};

/// Signature of the stall hook: called (from the thread that detected the
/// stall) with the span's static name and its duration-so-far. Must be
/// cheap and thread-safe.
using StallHook = void (*)(const char *SpanName, uint64_t DurationNs);

/// Periodically (and on destruction) writes prometheusText() to a file,
/// atomically via tmp + rename so scrapers never observe a torn document.
/// IntervalMs == 0 disables the background thread: only flushNow() and the
/// destructor's final flush write. The snapshotter owns a dedicated thread
/// rather than a pool task: a pool task would pin one worker for the whole
/// run (and deadlock a one-worker pool outright). Compiles in both build
/// modes; with NAMER_TELEMETRY off it writes the degraded header document.
class MetricsSnapshotter {
public:
  struct Options {
    std::string Path;
    unsigned IntervalMs = 0; ///< 0 = no background thread
    PromExportOptions Export;
  };

  explicit MetricsSnapshotter(Options O);
  ~MetricsSnapshotter(); ///< stops the thread, then flushes one last time
  MetricsSnapshotter(const MetricsSnapshotter &) = delete;
  MetricsSnapshotter &operator=(const MetricsSnapshotter &) = delete;

  /// Writes one snapshot now; returns false when the file cannot be
  /// written. Also counted in `snapshot.flushes`.
  bool flushNow();

  /// Number of successful flushes so far (including background ones).
  uint64_t flushes() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

#if NAMER_TELEMETRY

/// Monotonic named counter. Stable address for the registry's lifetime.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> Value{0};
};

/// Last-set named value (e.g. a structure size observed once per run).
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  std::atomic<int64_t> Value{0};
};

/// Histogram over non-negative samples: count/sum/min/max plus power-of-two
/// buckets (bucket k counts samples in [2^(k-1), 2^k)).
class Histogram {
public:
  static constexpr size_t NumBuckets = 32;

  void record(uint64_t Sample);
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Max over recorded samples; 0 when empty.
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  /// Min over recorded samples; 0 when empty.
  uint64_t min() const;
  uint64_t bucket(size_t K) const {
    return Buckets[K].load(std::memory_order_relaxed);
  }

  /// Deterministic quantile estimate from the bucket CDF: the value at
  /// nearest rank ceil(Q*count), spread uniformly across its bucket's
  /// clamped [lo, hi] range (the lowest/highest buckets clamp to the true
  /// min/max, so single-sample and all-identical histograms are exact, and
  /// a sample alone in its bucket at the bucket's lower bound is exact
  /// too). Returns 0 when empty; Q <= 0 gives min(), Q >= 1 gives max().
  uint64_t quantile(double Q) const;

private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> Count{0}, Sum{0}, Max{0};
  std::atomic<uint64_t> MinPlus1{0}; ///< min+1; 0 encodes "empty"
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// Lock-striped name -> metric table. Lookups hash the name to one of
/// NumStripes stripes and take that stripe's mutex only; returned
/// references stay valid (and keep their accumulated values) across
/// reset() -- reset zeroes values without destroying objects, so cached
/// `Counter &` handles in hot paths never dangle.
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Zeroes every registered metric's value (objects survive).
  void resetValues();

  /// Snapshot of all metrics, sorted by name. Histograms flatten to eight
  /// entries: name.count / name.sum / name.min / name.max plus the
  /// name.p50 / name.p90 / name.p99 / name.p999 quantile estimates.
  std::vector<std::pair<std::string, int64_t>> snapshot() const;

  /// Typed snapshot (counters/gauges/histograms kept apart); see
  /// MetricsTypedSnapshot.
  MetricsTypedSnapshot typedSnapshot() const;

private:
  struct Stripe;
  static constexpr size_t NumStripes = 8;
  Stripe &stripeFor(std::string_view Name) const;
  Stripe *Stripes; ///< array of NumStripes
};

/// The process-wide registry all instrumentation records into.
MetricsRegistry &metrics();

/// Runtime switch; default ON. Disabling stops span/metric recording (the
/// convenience helpers below become no-ops) without recompiling.
bool enabled();
void setEnabled(bool On);

/// One-call counter bump: registry lookup + add, skipped when disabled.
/// Hot paths should cache `metrics().counter(...)` instead.
void count(std::string_view Name, uint64_t Delta = 1);
void gaugeSet(std::string_view Name, int64_t Value);
void histogramRecord(std::string_view Name, uint64_t Sample);

/// RAII trace span. \p Name must have static storage duration (pass string
/// literals); the span stores the pointer, not a copy.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name);
  ~TraceSpan();
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name; ///< null when recording was disabled at entry
  uint64_t StartNs = 0;
};

/// Dense id of the calling thread (0 for the first thread that records).
uint32_t currentThreadId();

/// Name of the innermost span currently open on the calling thread, or
/// nullptr when none (or when the open spans overflow the bounded live
/// table). The pointer has static storage duration (TraceSpan contract),
/// so attribution helpers may key caches on it.
const char *currentSpanName();

/// Interns the calling thread's current *logical* span stack -- any
/// inherited prefix (see InheritedStackScope) followed by the thread's own
/// open spans -- and returns a stable opaque handle, or nullptr when the
/// stack is empty or recording is disabled. Handles are deduplicated and
/// deliberately leaked, so a sampler dereferencing one from another thread
/// never races with its destruction.
const void *captureStackPrefix();

/// RAII adoption of a captured stack prefix: while alive, the current
/// thread's logical span stack is the prefix plus every span the thread
/// opens above its depth at scope entry. ThreadPool::parallelFor wraps each
/// chunk task in one, so a worker executing `pipeline.ingest` chunks
/// reports `pipeline.build;pipeline.ingest;ingest.file` exactly like the
/// inline single-threaded run. Publication is seqlock-guarded so a
/// concurrent sampler never observes a torn (prefix, base-depth) pair.
/// A null prefix makes the scope a no-op. Scopes nest (restore-on-exit).
class InheritedStackScope {
public:
  explicit InheritedStackScope(const void *Prefix);
  ~InheritedStackScope();
  InheritedStackScope(const InheritedStackScope &) = delete;
  InheritedStackScope &operator=(const InheritedStackScope &) = delete;

private:
  void *Buf = nullptr; ///< owning ThreadBuffer; null when inactive
  const void *SavedPrefix = nullptr;
  uint32_t SavedBase = 0;
};

/// Sink receiving one stack sample: \p Frames[0..NumFrames) are span names
/// outermost first (static storage). For span-close samples \p DurNs /
/// \p SelfNs carry the closing span's cumulative and self time; live-stack
/// samples pass zeros. Must be cheap and thread-safe: span-close hooks run
/// inside ~TraceSpan on whatever thread closed the span.
using SpanSampleHook = void (*)(const char *const *Frames, size_t NumFrames,
                                uint64_t DurNs, uint64_t SelfNs, void *Ctx);

/// Installs (or with nullptr clears) the hook called with the full logical
/// stack at every span close. One hook process-wide; the profiler's
/// deterministic close-sampling mode owns it.
void setSpanSampleHook(SpanSampleHook Hook, void *Ctx);

/// One sampling pass over every registered thread's live logical stack:
/// calls \p Sink once per thread whose stack is non-empty (prefix frames
/// included) and returns how many stacks it delivered. Lock-free with
/// respect to the sampled threads -- they keep pushing/popping spans while
/// the pass runs; a torn prefix handoff is retried via its seqlock.
size_t sampleLiveStacks(SpanSampleHook Sink, void *Ctx);

/// Sum of the durations (microseconds) of every completed span named
/// \p Name recorded so far. Benches diff this around a run to price one
/// stage without parsing statsJson().
double spanTotalUs(std::string_view Name);

/// Discards all recorded span events and zeroes all metric values. Metric
/// addresses stay valid. Intended for tests and multi-run benches.
void reset();

/// Number of heap allocations telemetry itself has performed (buffer
/// growth, metric registration, thread registration). Used by tests to pin
/// the disabled path allocation-free.
uint64_t debugAllocations();

/// Span deadline in nanoseconds; 0 (the default) disables stall detection.
/// A span closing after more than the deadline bumps `watchdog.stalls` and
/// fires the stall hook; SpanWatchdog additionally flags still-open spans
/// past the deadline as `watchdog.live_stalls`. Never aborts anything.
void setSpanDeadlineNs(uint64_t Ns);
uint64_t spanDeadlineNs();

/// Installs the hook stall detection calls (nullptr to clear). namer-scan
/// points it at the run ledger so stalls become ledger records.
void setStallHook(StallHook Hook);

/// Scans the per-thread live-span stacks for spans open longer than the
/// deadline: each newly stalled (thread, depth, start) is counted once in
/// `watchdog.live_stalls` and reported to the stall hook. IntervalMs > 0
/// runs the scan on a dedicated background thread until destruction;
/// IntervalMs == 0 scans only when scanOnce() is called (deterministic
/// test mode). Detection, not enforcement: stalled spans keep running.
class SpanWatchdog {
public:
  explicit SpanWatchdog(unsigned IntervalMs = 0);
  ~SpanWatchdog();
  SpanWatchdog(const SpanWatchdog &) = delete;
  SpanWatchdog &operator=(const SpanWatchdog &) = delete;

  /// One scan over all live spans; returns how many NEW stalls it flagged.
  size_t scanOnce();

  /// Total live stalls this watchdog has flagged.
  uint64_t liveStalls() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Chrome trace-event JSON of every recorded span, as one
/// {"traceEvents": [...]} object with complete ("ph":"X") events sorted by
/// (start, thread, name) and per-thread name metadata. Timestamps are
/// microseconds relative to the earliest recorded span.
std::string chromeTraceJson();

/// The canonical flat stats JSON: {"meta": {...}, "counters": {...},
/// "spans": {...}} plus Meta.Extra appended at top level. Counters embed
/// gauges and flattened histograms; spans aggregate events by name into
/// {count, max_us, min_us, self_us, total_us} -- self_us is the exact
/// self time (total minus direct children). Keys are sorted.
std::string statsJson(const RunMeta &Meta);

/// Renders the span aggregates as a human-readable per-stage table
/// (support/TextTable): name, count, total ms, mean ms, share of the sum.
std::string summaryTable();

#else // !NAMER_TELEMETRY: every operation compiles to an empty inline body.

class Counter {
public:
  void add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
};
class Gauge {
public:
  void set(int64_t) {}
  int64_t value() const { return 0; }
};
class Histogram {
public:
  static constexpr size_t NumBuckets = 32;
  void record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  uint64_t min() const { return 0; }
  uint64_t bucket(size_t) const { return 0; }
  uint64_t quantile(double) const { return 0; }
};
class MetricsRegistry {
public:
  Counter &counter(std::string_view) { return C; }
  Gauge &gauge(std::string_view) { return G; }
  Histogram &histogram(std::string_view) { return H; }
  void resetValues() {}
  std::vector<std::pair<std::string, int64_t>> snapshot() const { return {}; }
  MetricsTypedSnapshot typedSnapshot() const { return {}; }

private:
  Counter C;
  Gauge G;
  Histogram H;
};

inline MetricsRegistry &metrics() {
  static MetricsRegistry R;
  return R;
}
inline bool enabled() { return false; }
inline void setEnabled(bool) {}
inline void count(std::string_view, uint64_t = 1) {}
inline void gaugeSet(std::string_view, int64_t) {}
inline void histogramRecord(std::string_view, uint64_t) {}

class TraceSpan {
public:
  explicit TraceSpan(const char *) {}
};

inline uint32_t currentThreadId() { return 0; }
inline const char *currentSpanName() { return nullptr; }
inline const void *captureStackPrefix() { return nullptr; }

class InheritedStackScope {
public:
  explicit InheritedStackScope(const void *) {}
};

using SpanSampleHook = void (*)(const char *const *, size_t, uint64_t,
                                uint64_t, void *);
inline void setSpanSampleHook(SpanSampleHook, void *) {}
inline size_t sampleLiveStacks(SpanSampleHook, void *) { return 0; }

inline double spanTotalUs(std::string_view) { return 0.0; }
inline void reset() {}
inline uint64_t debugAllocations() { return 0; }
inline void setSpanDeadlineNs(uint64_t) {}
inline uint64_t spanDeadlineNs() { return 0; }
inline void setStallHook(StallHook) {}

class SpanWatchdog {
public:
  explicit SpanWatchdog(unsigned = 0) {}
  size_t scanOnce() { return 0; }
  uint64_t liveStalls() const { return 0; }
};

std::string chromeTraceJson();
std::string statsJson(const RunMeta &Meta);
std::string summaryTable();

#endif // NAMER_TELEMETRY

} // namespace telemetry
} // namespace namer

#endif // NAMER_SUPPORT_TELEMETRY_H
