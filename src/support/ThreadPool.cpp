//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include "support/Cancellation.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

using namespace namer;

namespace {
/// True while the current thread executes a pool task (worker or helping
/// submitter); nested parallelFor calls detect it and run inline.
thread_local bool InPoolTask = false;

/// Pool counters, cached once: one relaxed add per task/steal. Idle time is
/// recorded per completed wait (see workerLoop), so `pool.idle_us` sums
/// time workers spent parked while the pool had no work for them.
telemetry::Counter &tasksCounter() {
  static telemetry::Counter &C = telemetry::metrics().counter("pool.tasks");
  return C;
}
telemetry::Counter &stealsCounter() {
  static telemetry::Counter &C = telemetry::metrics().counter("pool.steals");
  return C;
}
telemetry::Counter &idleCounter() {
  static telemetry::Counter &C = telemetry::metrics().counter("pool.idle_us");
  return C;
}
} // namespace

/// One labeled parallelFor site: its `pool.idle_us.<site>` /
/// `lock.wait_us.<site>` counters resolved once. Sites are string literals
/// (the TraceSpan naming contract), so the pointer identifies the site and
/// the per-wait hot path in workerLoop is two relaxed adds.
struct ThreadPool::SiteMetrics {
  telemetry::Counter &IdleUs;
  telemetry::Counter &LockWaitUs;
};

ThreadPool::SiteMetrics &ThreadPool::siteMetrics(const char *Site) {
  static std::mutex M;
  static auto &Cache = *new std::map<const void *, SiteMetrics *>();
  std::lock_guard<std::mutex> L(M);
  auto It = Cache.find(Site);
  if (It != Cache.end())
    return *It->second;
  auto *SM = new SiteMetrics{
      telemetry::metrics().counter(std::string("pool.idle_us.") + Site),
      telemetry::metrics().counter(std::string("lock.wait_us.") + Site)};
  Cache.emplace(Site, SM);
  return *SM;
}

unsigned ThreadPool::resolveWorkerCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw == 0 ? 1 : Hw;
}

ThreadPool::ThreadPool(unsigned Workers)
    : NumWorkers(resolveWorkerCount(Workers)) {
  // Register the pool counters up front so they appear in stats exports
  // (as zeros) even when no task ran, no steal happened, or the pool is
  // single-worker and runs everything inline.
  tasksCounter();
  stealsCounter();
  idleCounter();
  telemetry::metrics().histogram("pool.idle_wait_us");
  if (NumWorkers <= 1)
    return;
  // One queue per computing thread: spawned workers use queues
  // [0, NumWorkers-2]; the submitting thread pushes round-robin and helps
  // from queue index NumWorkers-1.
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Threads.reserve(NumWorkers - 1);
  for (unsigned I = 0; I + 1 != NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(SleepM);
    Stopping = true;
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool ThreadPool::async(std::function<void()> Task) {
  if (Queues.empty())
    return false;
  submit(std::move(Task));
  return true;
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Q = NextQueue.fetch_add(1, std::memory_order_relaxed) %
               static_cast<unsigned>(Queues.size());
  {
    std::lock_guard<std::mutex> L(Queues[Q]->M);
    Queues[Q]->Tasks.push_back(std::move(Task));
  }
  {
    std::lock_guard<std::mutex> L(SleepM);
    ++QueuedTasks;
  }
  SleepCv.notify_one();
}

bool ThreadPool::runOneTask(unsigned SelfQueue) {
  std::function<void()> Task;
  size_t NumQueues = Queues.size();
  for (size_t Attempt = 0; Attempt != NumQueues && !Task; ++Attempt) {
    size_t Q = (SelfQueue + Attempt) % NumQueues;
    WorkerQueue &WQ = *Queues[Q];
    std::lock_guard<std::mutex> L(WQ.M);
    if (WQ.Tasks.empty())
      continue;
    if (Attempt == 0) { // own queue: LIFO-from-front submission order
      Task = std::move(WQ.Tasks.front());
      WQ.Tasks.pop_front();
    } else { // steal from the back of a victim's queue
      Task = std::move(WQ.Tasks.back());
      WQ.Tasks.pop_back();
      if (telemetry::enabled())
        stealsCounter().add(1);
    }
  }
  if (!Task)
    return false;
  if (telemetry::enabled())
    tasksCounter().add(1);
  {
    std::lock_guard<std::mutex> L(SleepM);
    assert(QueuedTasks > 0 && "task count out of sync");
    --QueuedTasks;
  }
  bool Saved = InPoolTask;
  InPoolTask = true;
  Task();
  InPoolTask = Saved;
  return true;
}

void ThreadPool::workerLoop(unsigned Id) {
  for (;;) {
    if (runOneTask(Id))
      continue;
    bool Timing = telemetry::enabled();
    std::chrono::steady_clock::time_point IdleStart;
    if (Timing)
      IdleStart = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> L(SleepM);
      SleepCv.wait(L, [this] { return Stopping || QueuedTasks > 0; });
      if (Stopping && QueuedTasks == 0)
        return;
    }
    if (Timing) {
      uint64_t WaitedUs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - IdleStart)
              .count());
      idleCounter().add(WaitedUs);
      telemetry::metrics().histogram("pool.idle_wait_us").record(WaitedUs);
      // Attribute the wait to the labeled parallelFor the worker woke into
      // (its submit() is what ended the wait), making per-stage barrier
      // cost visible next to the total. The same wait is a condvar block,
      // so it also feeds the stage's `lock.wait_us.<site>` contention
      // series (support/Profiler.h).
      if (SiteMetrics *SM = ActiveSite.load(std::memory_order_acquire)) {
        SM->IdleUs.add(WaitedUs);
        SM->LockWaitUs.add(WaitedUs);
      }
    }
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Body,
                             size_t GrainSize, const char *Site) {
  // Register the per-site counters at zero even on the sequential fast
  // paths, so every labeled stage shows up in stats exports regardless of
  // worker count.
  SiteMetrics *SM = Site && telemetry::enabled() ? &siteMetrics(Site) : nullptr;
  if (Begin >= End)
    return;
  // The submitter's ambient cancel token governs this whole parallelFor:
  // the inline paths poll it between iterations, and every chunk task
  // re-installs and polls it before running (see the chunk lambda below).
  const cancel::CancelToken *Tok = cancel::currentToken();
  size_t N = End - Begin;
  // Sequential fast paths: single-worker pools, nested calls from inside a
  // task, and ranges too small to split.
  if (NumWorkers <= 1 || InPoolTask || N == 1) {
    for (size_t I = Begin; I != End; ++I) {
      if (Tok)
        Tok->checkpoint();
      Body(I);
    }
    return;
  }

  telemetry::count("pool.parallel_fors");
  // Publish the site metrics for idle attribution; restored on every exit
  // path.
  SiteMetrics *PrevSite = ActiveSite.exchange(SM, std::memory_order_acq_rel);
  struct SiteRestore {
    ThreadPool *Pool;
    SiteMetrics *Prev;
    ~SiteRestore() { Pool->ActiveSite.store(Prev, std::memory_order_release); }
  } Restore{this, PrevSite};
  // Snapshot the submitter's span stack once: every chunk task adopts it,
  // so worker-side spans fold under the logical call stack (see
  // InheritedStackScope) no matter which thread runs the chunk.
  const void *StackPrefix = telemetry::captureStackPrefix();
  GrainSize = std::max<size_t>(GrainSize, 1);
  // Aim for several chunks per worker so stealing can balance skewed
  // per-iteration costs, without dropping below the grain size.
  size_t TargetChunks = static_cast<size_t>(NumWorkers) * 4;
  size_t Chunk = std::max(GrainSize, (N + TargetChunks - 1) / TargetChunks);
  size_t NumChunks = (N + Chunk - 1) / Chunk;

  struct ForState {
    size_t Remaining;                 // guarded by DoneM
    std::mutex DoneM;
    std::condition_variable DoneCv;
    std::exception_ptr Exc;           // guarded by DoneM
    std::atomic<bool> Failed{false};
    /// First observed cancel reason (cancel::CancelReason as uint8_t);
    /// 0 = not cancelled. Set by the chunk that noticed the tripped token.
    std::atomic<uint8_t> CancelledWhy{0};
  } State;
  State.Remaining = NumChunks;

  for (size_t C = 0; C != NumChunks; ++C) {
    size_t CB = Begin + C * Chunk;
    size_t CE = std::min(End, CB + Chunk);
    submit([&State, &Body, StackPrefix, Tok, CB, CE] {
      telemetry::InheritedStackScope Inherit(StackPrefix);
      // Re-install the submitter's token on this worker so nested
      // checkpoints (and nested inline parallelFors) see it, then poll it
      // once per chunk: a tripped token stops all further chunk bodies.
      cancel::CancelScope Ambient(Tok);
      if (Tok) {
        cancel::CancelReason R = Tok->state();
        if (R != cancel::CancelReason::None) {
          State.CancelledWhy.store(static_cast<uint8_t>(R),
                                   std::memory_order_relaxed);
          State.Failed.store(true, std::memory_order_relaxed);
        }
      }
      if (!State.Failed.load(std::memory_order_relaxed)) {
        try {
          for (size_t I = CB; I != CE; ++I)
            Body(I);
        } catch (...) {
          State.Failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> L(State.DoneM);
          if (!State.Exc)
            State.Exc = std::current_exception();
        }
      }
      // Decrement-and-notify under the lock: the waiter may destroy State
      // as soon as it observes Remaining == 0 with DoneM held.
      std::lock_guard<std::mutex> L(State.DoneM);
      if (--State.Remaining == 0)
        State.DoneCv.notify_all();
    });
  }

  // Help drain the queues while waiting; the submitting thread is one of
  // the pool's computing threads.
  unsigned SelfQueue = NumWorkers - 1;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(State.DoneM);
      if (State.Remaining == 0)
        break;
    }
    if (!runOneTask(SelfQueue)) {
      std::unique_lock<std::mutex> L(State.DoneM);
      State.DoneCv.wait(L, [&State] { return State.Remaining == 0; });
      break;
    }
  }
  if (State.Exc)
    std::rethrow_exception(State.Exc);
  // A chunk observed the tripped token and skipped (no body threw, so no
  // exception carries the signal): surface the typed cancellation here.
  if (uint8_t Why = State.CancelledWhy.load(std::memory_order_relaxed))
    throw cancel::CancelledError(static_cast<cancel::CancelReason>(Why));
}
