//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for request-scoped work. The scan service
/// (DESIGN.md, "Scan service") gives every request a CancelToken carrying
/// its deadline; the pipeline's hot loops poll it at checkpoints and bail
/// out with a *typed* CancelledError instead of running to completion --
/// partial work is discarded, per-request arenas are freed by unwinding,
/// and the process never aborts.
///
/// Tokens are ambient: a CancelScope installs one for the current thread,
/// and ThreadPool::parallelFor captures the submitting thread's token at
/// entry -- chunk tasks re-install it on whichever worker runs them, check
/// it before executing each chunk, and stop scheduling further chunk bodies
/// the moment it trips. Code that never sees a scope (every batch CLI path)
/// pays one thread-local load per checkpoint and nothing else.
///
/// Determinism: explicit cancel() and a zero/elapsed deadline are
/// deterministic; a mid-flight wall-clock deadline is inherently not (the
/// service documents that; tests pin deadlines to 0 or cancel explicitly).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_CANCELLATION_H
#define NAMER_SUPPORT_CANCELLATION_H

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace namer {
namespace cancel {

/// Why a token tripped. None means "still live".
enum class CancelReason : uint8_t { None, Explicit, Deadline };

/// Stable kebab-case name ("cancelled", "deadline-exceeded"); "none" for
/// None. Used for response statuses and telemetry suffixes.
const char *cancelReasonName(CancelReason Reason);

/// The typed cancellation signal. Thrown by CancelToken::checkpoint() and
/// propagated verbatim by ThreadPool::parallelFor, so callers can
/// distinguish "request cancelled" from a genuine worker failure.
class CancelledError : public std::runtime_error {
public:
  explicit CancelledError(CancelReason Reason)
      : std::runtime_error(Reason == CancelReason::Deadline
                               ? "deadline exceeded"
                               : "cancelled"),
        Reason(Reason) {}
  CancelReason reason() const { return Reason; }

private:
  CancelReason Reason;
};

/// One request's cancellation state: an explicit flag plus an optional
/// steady-clock deadline. Thread-safe; cancel() may race checkpoints
/// freely. Not copyable (checkpoints hold the address).
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Arms the deadline \p Millis from now (steady clock). 0 arms an
  /// already-elapsed deadline: the next checkpoint trips deterministically.
  void setDeadlineFromNowMs(uint64_t Millis);

  /// Requests cancellation; checkpoints trip from now on.
  void cancel() { Cancelled.store(true, std::memory_order_release); }

  /// Non-throwing poll: the reason the token has tripped, None while live.
  /// Explicit cancellation wins over an elapsed deadline.
  CancelReason state() const;

  /// Throws CancelledError when the token has tripped; otherwise returns.
  void checkpoint() const {
    CancelReason R = state();
    if (R != CancelReason::None)
      throw CancelledError(R);
  }

private:
  std::atomic<bool> Cancelled{false};
  /// Steady-clock deadline in nanoseconds since the clock's epoch;
  /// UINT64_MAX = no deadline armed.
  std::atomic<uint64_t> DeadlineNs{~0ull};
};

/// RAII ambient-token scope for the current thread. Nestable: the previous
/// token is restored on destruction. ThreadPool re-installs the submitter's
/// token inside chunk tasks with this.
class CancelScope {
public:
  explicit CancelScope(const CancelToken *Token);
  ~CancelScope();
  CancelScope(const CancelScope &) = delete;
  CancelScope &operator=(const CancelScope &) = delete;

private:
  const CancelToken *Saved;
};

/// The current thread's ambient token (nullptr outside any scope).
const CancelToken *currentToken();

/// Checkpoints against the ambient token; no-op without one. The hook the
/// pipeline's sequential loops call.
void checkpoint();

} // namespace cancel
} // namespace namer

#endif // NAMER_SUPPORT_CANCELLATION_H
