//===- support/IoRetry.h - Short-write/EINTR-tolerant file IO ---*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability writers (RunLedger appends, MetricsSnapshotter
/// expositions) must not lose the tail of a run to a transient EINTR or a
/// short fwrite. fwriteAll() writes a buffer completely, retrying the
/// remainder once after a short write (clearing the stream's error state
/// when errno says EINTR) before surfacing the failure; every retry is
/// counted in `io.write_retries`, every surfaced failure in
/// `io.write_errors`.
///
/// Tests inject failures through setWriteFnForTest(): the hook replaces the
/// underlying fwrite so short writes and EINTR are exercised
/// deterministically without signals.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_IORETRY_H
#define NAMER_SUPPORT_IORETRY_H

#include <cstddef>
#include <cstdio>

namespace namer {
namespace io {

/// Writes all \p Size bytes of \p Data to \p File. On a short write the
/// stream error state is cleared and the remainder is retried exactly once;
/// a second short write fails. Returns true when every byte was written.
bool fwriteAll(std::FILE *File, const char *Data, size_t Size);

/// Underlying write primitive, fwrite-compatible. Tests swap it to inject
/// short writes / EINTR; nullptr restores the real fwrite.
using WriteFn = size_t (*)(const void *Ptr, size_t ItemSize, size_t Count,
                           std::FILE *File);
void setWriteFnForTest(WriteFn Fn);

} // namespace io
} // namespace namer

#endif // NAMER_SUPPORT_IORETRY_H
