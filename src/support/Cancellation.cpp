//===- support/Cancellation.cpp -------------------------------------------==//

#include "support/Cancellation.h"

#include <chrono>

using namespace namer;
using namespace namer::cancel;

namespace {

/// Ambient token of the current thread; installed by CancelScope.
thread_local const CancelToken *CurrentToken = nullptr;

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

const char *cancel::cancelReasonName(CancelReason Reason) {
  switch (Reason) {
  case CancelReason::None:
    return "none";
  case CancelReason::Explicit:
    return "cancelled";
  case CancelReason::Deadline:
    return "deadline-exceeded";
  }
  return "none";
}

void CancelToken::setDeadlineFromNowMs(uint64_t Millis) {
  DeadlineNs.store(steadyNowNs() + Millis * 1000000ull,
                   std::memory_order_release);
}

CancelReason CancelToken::state() const {
  if (Cancelled.load(std::memory_order_acquire))
    return CancelReason::Explicit;
  uint64_t D = DeadlineNs.load(std::memory_order_acquire);
  if (D != ~0ull && steadyNowNs() >= D)
    return CancelReason::Deadline;
  return CancelReason::None;
}

CancelScope::CancelScope(const CancelToken *Token) : Saved(CurrentToken) {
  CurrentToken = Token;
}

CancelScope::~CancelScope() { CurrentToken = Saved; }

const CancelToken *cancel::currentToken() { return CurrentToken; }

void cancel::checkpoint() {
  if (const CancelToken *T = CurrentToken)
    T->checkpoint();
}
