//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool powering the data-parallel pipeline
/// stages (per-file ingestion, per-commit diffing, per-statement pattern
/// matching). Each worker owns a deque of tasks; idle workers steal from
/// the back of other workers' deques. The submitting thread participates in
/// execution while waiting, so a pool with N workers uses N computing
/// threads (N-1 spawned plus the caller).
///
/// Determinism contract: parallelFor/parallelMap never reorder results --
/// callers write into index-addressed slots -- so any pipeline built on
/// them produces identical output at every worker count as long as the
/// loop bodies only write to their own slot.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_THREADPOOL_H
#define NAMER_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace namer {

class ThreadPool {
public:
  /// Creates a pool with \p Workers computing threads; 0 resolves to
  /// std::thread::hardware_concurrency(). A pool of 1 spawns no threads
  /// and runs everything inline on the calling thread.
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of computing threads (including the caller of parallelFor).
  unsigned workerCount() const { return NumWorkers; }

  /// Maps a requested worker count to the effective one (0 -> hardware
  /// concurrency, floored at 1).
  static unsigned resolveWorkerCount(unsigned Requested);

  /// Runs Body(I) for every I in [Begin, End), distributing contiguous
  /// chunks of at least \p GrainSize iterations over the workers. Blocks
  /// until all iterations finished. The first exception thrown by a body
  /// is rethrown here (remaining chunks are skipped once one body threw).
  ///
  /// Cancellation: the submitting thread's ambient cancel::CancelToken
  /// (see support/Cancellation.h) is captured at entry and re-installed in
  /// every chunk task. Once the token trips, no further chunk body runs --
  /// queued chunks drain as no-ops -- and parallelFor throws the typed
  /// cancel::CancelledError after the barrier. A body that checkpoints and
  /// throws CancelledError itself propagates the same way. The pool stays
  /// fully reusable afterward.
  ///
  /// Nested calls (from inside a task) run inline sequentially, so bodies
  /// may themselves use parallelFor freely.
  ///
  /// \p Site optionally names the call site (a string literal, like
  /// TraceSpan names). While this parallelFor runs, worker idle time is
  /// additionally attributed to the counters `pool.idle_us.<Site>` and
  /// `lock.wait_us.<Site>` (both registered at zero up front), so
  /// statsJson() shows which stage's barrier the pool was parked behind.
  ///
  /// Each chunk task adopts the submitting thread's span stack
  /// (telemetry::InheritedStackScope), so spans opened by \p Body fold
  /// under the submitter's open spans in profiler stacks exactly as in a
  /// single-threaded run.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Body,
                   size_t GrainSize = 1, const char *Site = nullptr);

  /// Schedules one detached task onto the pool and returns immediately;
  /// the scan service's request scheduler runs every admitted request
  /// through this. Requires a pool with >= 2 workers (a single-worker pool
  /// has no spawned threads to run detached work); returns false -- and
  /// does not run the task -- when the pool cannot. The task must not
  /// throw; wrap bodies that can fail. Outstanding async tasks are drained
  /// before the destructor returns.
  bool async(std::function<void()> Task);

  /// parallelFor over a vector, collecting F(Items[I]) into slot I of the
  /// result. R must be default-constructible.
  template <typename T, typename Fn>
  auto parallelMap(const std::vector<T> &Items, Fn &&F)
      -> std::vector<std::invoke_result_t<Fn &, const T &>> {
    std::vector<std::invoke_result_t<Fn &, const T &>> Out(Items.size());
    parallelFor(0, Items.size(), [&](size_t I) { Out[I] = F(Items[I]); });
    return Out;
  }

private:
  struct WorkerQueue {
    std::mutex M;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Id);
  /// Pops a task from the worker's own queue front, or steals one from the
  /// back of another queue; runs it. Returns false when every queue was
  /// empty.
  bool runOneTask(unsigned SelfQueue);
  void submit(std::function<void()> Task);

  unsigned NumWorkers;
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  std::mutex SleepM;
  std::condition_variable SleepCv;
  bool Stopping = false;
  size_t QueuedTasks = 0; // guarded by SleepM
  std::atomic<unsigned> NextQueue{0};
  /// Cached metrics of one labeled parallelFor site: resolved once per
  /// site (stable addresses, leaked), so workerLoop's per-wait attribution
  /// is a relaxed add instead of a string concat + registry lookup on
  /// every completed wait.
  struct SiteMetrics;
  static SiteMetrics &siteMetrics(const char *Site);
  /// Metrics of the labeled parallelFor currently draining, for per-site
  /// idle/wait attribution; null outside any labeled parallelFor.
  std::atomic<SiteMetrics *> ActiveSite{nullptr};
};

} // namespace namer

#endif // NAMER_SUPPORT_THREADPOOL_H
