//===- support/Profiler.cpp - In-process sampling profiler ----------------===//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//

#include "Profiler.h"

#include "Telemetry.h"

#include <fstream>

#if NAMER_TELEMETRY

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

namespace namer {
namespace prof {

struct Profiler::Impl {
  mutable std::mutex Mu;
  /// Folded stack -> sample count. std::map so foldedStacks() iterates in
  /// sorted order without a separate sort.
  std::map<std::string, uint64_t> Folded;
  std::atomic<uint64_t> Samples{0};
  telemetry::Counter *SamplesCounter = nullptr;
  bool CloseHookInstalled = false;

  std::thread Sampler;
  std::mutex StopMu;
  std::condition_variable StopCv;
  bool StopRequested = false;

  void record(const char *const *Frames, size_t NumFrames) {
    if (NumFrames == 0)
      return;
    std::string Key;
    for (size_t F = 0; F < NumFrames; ++F) {
      if (F)
        Key += ';';
      Key += Frames[F];
    }
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Folded[Key];
    }
    Samples.fetch_add(1, std::memory_order_relaxed);
    if (SamplesCounter)
      SamplesCounter->add();
  }

  /// Shared sink for both sources: span-close hook calls (DurNs/SelfNs
  /// ignored -- every close is one weight-1 sample) and live-stack passes.
  static void onSample(const char *const *Frames, size_t NumFrames,
                       uint64_t /*DurNs*/, uint64_t /*SelfNs*/, void *Ctx) {
    static_cast<Impl *>(Ctx)->record(Frames, NumFrames);
  }

  size_t tick() { return telemetry::sampleLiveStacks(&Impl::onSample, this); }
};

Profiler::Profiler(const ProfilerOptions &O) : I(new Impl) {
  I->SamplesCounter = &telemetry::metrics().counter("profiler.samples");
  if (O.SampleOnSpanClose) {
    telemetry::setSpanSampleHook(&Impl::onSample, I.get());
    I->CloseHookInstalled = true;
  }
  if (O.SampleHz > 0) {
    auto Period = std::chrono::nanoseconds(1000000000ull / O.SampleHz);
    I->Sampler = std::thread([P = I.get(), Period] {
      std::unique_lock<std::mutex> L(P->StopMu);
      while (!P->StopRequested) {
        if (P->StopCv.wait_for(L, Period, [P] { return P->StopRequested; }))
          break;
        L.unlock();
        P->tick();
        L.lock();
      }
    });
  }
}

Profiler::~Profiler() {
  // The profiler must outlive the threads it samples (namer-scan declares
  // it before the pipeline, so the pool joins first); uninstall the hook
  // before Impl goes away so no late span close dereferences it.
  if (I->CloseHookInstalled)
    telemetry::setSpanSampleHook(nullptr, nullptr);
  if (I->Sampler.joinable()) {
    {
      std::lock_guard<std::mutex> L(I->StopMu);
      I->StopRequested = true;
    }
    I->StopCv.notify_all();
    I->Sampler.join();
  }
}

size_t Profiler::tickForTest() { return I->tick(); }

uint64_t Profiler::samples() const {
  return I->Samples.load(std::memory_order_relaxed);
}

std::string Profiler::foldedStacks() const {
  std::lock_guard<std::mutex> L(I->Mu);
  std::string Out;
  for (const auto &Entry : I->Folded) {
    Out += Entry.first;
    Out += ' ';
    Out += std::to_string(Entry.second);
    Out += '\n';
  }
  return Out;
}

bool Profiler::writeFolded(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << foldedStacks();
  Out.flush();
  return static_cast<bool>(Out);
}

namespace {

/// Pointer-keyed counter cache: span/site names have static storage (the
/// TraceSpan contract), so the name pointer identifies the counter and the
/// steady state pays one small-map lookup under an uncontended mutex
/// instead of a string concat + registry probe. nullptr keys the
/// "unattributed" entry.
telemetry::Counter &
cachedCounter(const char *Prefix, const char *Name, std::mutex &Mu,
              std::map<const void *, telemetry::Counter *> &Cache) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return *It->second;
  std::string Full = std::string(Prefix) + (Name ? Name : "unattributed");
  telemetry::Counter &C = telemetry::metrics().counter(Full);
  Cache.emplace(Name, &C);
  return C;
}

} // namespace

void noteLockWait(const char *Name, uint64_t WaitNs) {
  if (!telemetry::enabled())
    return;
  static std::mutex Mu;
  static auto &Cache = *new std::map<const void *, telemetry::Counter *>();
  cachedCounter("lock.wait_us.", Name, Mu, Cache).add(WaitNs / 1000);
}

void noteAllocBytes(uint64_t Bytes) {
  if (!telemetry::enabled())
    return;
  static std::mutex Mu;
  static auto &Cache = *new std::map<const void *, telemetry::Counter *>();
  cachedCounter("alloc.bytes.", telemetry::currentSpanName(), Mu, Cache)
      .add(Bytes);
}

} // namespace prof
} // namespace namer

#else // !NAMER_TELEMETRY: the profiler degrades to no-ops; writeFolded
      // still creates the requested (empty) file so callers' output
      // contracts hold.

namespace namer {
namespace prof {

struct Profiler::Impl {};

Profiler::Profiler(const ProfilerOptions &) {}
Profiler::~Profiler() = default;

size_t Profiler::tickForTest() { return 0; }
uint64_t Profiler::samples() const { return 0; }
std::string Profiler::foldedStacks() const { return std::string(); }

bool Profiler::writeFolded(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  return static_cast<bool>(Out);
}

void noteLockWait(const char *, uint64_t) {}
void noteAllocBytes(uint64_t) {}

} // namespace prof
} // namespace namer

#endif // NAMER_TELEMETRY
