//===- support/MemoryTracker.cpp ------------------------------------------==//

#include "support/MemoryTracker.h"

#include "support/Telemetry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace namer;

namespace {

std::atomic<uint64_t (*)()> GCurrentSource{nullptr};
std::atomic<uint64_t (*)()> GPeakSource{nullptr};

/// Reads one "Field:  <n> kB" line from /proc/self/status. Returns 0 when
/// procfs (or the field) is unavailable.
uint64_t readStatusKb(const char *Field) {
#if defined(__linux__)
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  uint64_t Kb = 0;
  size_t FieldLen = std::strlen(Field);
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, Field, FieldLen) == 0 && Line[FieldLen] == ':') {
      Kb = std::strtoull(Line + FieldLen + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(F);
  return Kb;
#else
  (void)Field;
  return 0;
#endif
}

} // namespace

uint64_t memory::currentRssKb() {
  if (uint64_t (*F)() = GCurrentSource.load(std::memory_order_relaxed))
    return F();
  return readStatusKb("VmRSS");
}

uint64_t memory::peakRssKb() {
  if (uint64_t (*F)() = GPeakSource.load(std::memory_order_relaxed))
    return F();
  return readStatusKb("VmHWM");
}

void memory::setRssSourceForTest(uint64_t (*Current)(), uint64_t (*Peak)()) {
  GCurrentSource.store(Current, std::memory_order_relaxed);
  GPeakSource.store(Peak, std::memory_order_relaxed);
}

void memory::sampleGauges() {
  // Same guard as telemetry::count(): when recording is disabled the
  // registry must not be touched at all (the counter() mirror lookups
  // below would otherwise register -- and allocate -- on first use).
  if (!telemetry::enabled())
    return;
  telemetry::gaugeSet("mem.current_rss_kb",
                      static_cast<int64_t>(currentRssKb()));
  telemetry::gaugeSet("mem.peak_rss_kb", static_cast<int64_t>(peakRssKb()));
  telemetry::gaugeSet(
      "mem.arena_bytes",
      static_cast<int64_t>(
          telemetry::metrics().counter("arena.bytes").value()));
  telemetry::gaugeSet(
      "mem.model_mmap_bytes",
      static_cast<int64_t>(
          telemetry::metrics().counter("model.bytes").value()));
}
