//===- support/Profiler.h - In-process sampling profiler --------*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on, compile-out-able sampling profiler over the telemetry
/// layer's live TraceSpan stacks. No unwinder: TraceSpan push/pop already
/// maintains each thread's span nesting, and ThreadPool::parallelFor grafts
/// the submitting thread's stack under worker-side spans (DESIGN.md,
/// "Profiling"), so a sample is just a lock-free read of span-name
/// pointers.
///
/// Two sample sources, combinable:
///
///  * Timer sampling (`SampleHz > 0`): a background thread walks every
///    registered thread's live stack SampleHz times per second. This is
///    the wall-clock-proportional mode for real profiles.
///  * Close sampling (`SampleOnSpanClose`): every span close contributes
///    one weight-1 sample of its full logical stack. Counts are structural
///    (one per span, whatever the schedule), so the folded output is
///    byte-identical at every worker count -- the deterministic mode
///    `namer-scan --deterministic-obs --profile-out` uses.
///
/// Samples aggregate into Brendan Gregg collapsed ("folded") stacks --
/// `pipeline.build;pipeline.ingest;ingest.file 123` -- consumable by
/// flamegraph.pl and speedscope, and by the `namer-profile` report tool
/// (top-N self time, inverted callers, before/after diff).
///
/// Every sample also bumps the `profiler.samples` counter. Overhead: a
/// timer pass reads a few atomics per thread (well under the documented
/// <=5% budget at the default rate); with NAMER_TELEMETRY compiled out the
/// whole profiler degrades to no-ops and writeFolded() emits an empty
/// file.
///
/// At most one Profiler should be alive at a time: the close-sampling hook
/// is a process-wide singleton (telemetry::setSpanSampleHook).
///
/// The attribution helpers live here too:
///
///  * noteLockWait(Name, WaitNs) adds blocked-on-a-lock time to the
///    counter `lock.wait_us.<Name>` (StringInterner shard mutexes pass the
///    active span, ThreadPool condvar waits pass the parallelFor site).
///  * noteAllocBytes(Bytes) credits allocation growth (Arena slabs,
///    interner segments) to `alloc.bytes.<active span>`.
///
/// Both cache `Counter &` per name pointer (names have static storage, the
/// TraceSpan contract), so the steady state is one relaxed add.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_PROFILER_H
#define NAMER_SUPPORT_PROFILER_H

#include <cstdint>
#include <memory>
#include <string>

namespace namer {
namespace prof {

/// Configuration of one Profiler instance.
struct ProfilerOptions {
  /// Timer samples per second; 0 disables the background sampler thread
  /// (samples then come from close sampling and/or manual tickForTest()).
  unsigned SampleHz = 97;
  /// Deterministic mode: sample every span close (weight 1) instead of
  /// relying on wall-clock timing.
  bool SampleOnSpanClose = false;
};

/// Aggregates stack samples into folded (collapsed) stacks. Thread-safe;
/// see the file comment for the sampling model.
class Profiler {
public:
  explicit Profiler(const ProfilerOptions &O);
  ~Profiler(); ///< stops the sampler thread, uninstalls the close hook
  Profiler(const Profiler &) = delete;
  Profiler &operator=(const Profiler &) = delete;

  /// One manual sampling pass over every thread's live stack (the
  /// test-injectable "sampler clock": tests drive ticks explicitly instead
  /// of depending on a timer). Returns how many stacks were sampled.
  size_t tickForTest();

  /// Total samples recorded so far (timer + close + manual).
  uint64_t samples() const;

  /// The collapsed-stack document: one `frame;frame;... count` line per
  /// distinct stack, sorted by stack, newline-terminated. Byte-stable for
  /// a given multiset of samples.
  std::string foldedStacks() const;

  /// Writes foldedStacks() to \p Path; false when the file cannot be
  /// written.
  bool writeFolded(const std::string &Path) const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Adds \p WaitNs of lock-wait time to `lock.wait_us.<Name>` (microsecond
/// granularity; sub-microsecond waits round down). \p Name must have
/// static storage duration; nullptr attributes to "unattributed".
void noteLockWait(const char *Name, uint64_t WaitNs);

/// Credits \p Bytes of allocation growth to `alloc.bytes.<S>` where S is
/// the calling thread's innermost open span ("unattributed" when none).
void noteAllocBytes(uint64_t Bytes);

} // namespace prof
} // namespace namer

#endif // NAMER_SUPPORT_PROFILER_H
