//===- support/IoRetry.cpp ------------------------------------------------==//

#include "support/IoRetry.h"

#include "support/Telemetry.h"

#include <atomic>
#include <cerrno>

using namespace namer;

namespace {

std::atomic<io::WriteFn> GWriteFn{nullptr};

size_t doWrite(const void *Ptr, size_t ItemSize, size_t Count,
               std::FILE *File) {
  if (io::WriteFn Fn = GWriteFn.load(std::memory_order_acquire))
    return Fn(Ptr, ItemSize, Count, File);
  return std::fwrite(Ptr, ItemSize, Count, File);
}

} // namespace

void io::setWriteFnForTest(WriteFn Fn) {
  GWriteFn.store(Fn, std::memory_order_release);
}

bool io::fwriteAll(std::FILE *File, const char *Data, size_t Size) {
  size_t Written = doWrite(Data, 1, Size, File);
  if (Written == Size)
    return true;
  // One retry: a short write from an interrupted syscall (EINTR) leaves the
  // stream flagged; clear it and push the remainder once before giving up.
  if (errno == EINTR)
    errno = 0;
  std::clearerr(File);
  telemetry::count("io.write_retries");
  Written += doWrite(Data + Written, 1, Size - Written, File);
  if (Written == Size)
    return true;
  telemetry::count("io.write_errors");
  return false;
}
