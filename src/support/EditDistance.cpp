//===- support/EditDistance.cpp -------------------------------------------==//

#include "support/EditDistance.h"

#include <algorithm>
#include <vector>

size_t namer::editDistance(std::string_view A, std::string_view B) {
  if (A.size() < B.size())
    std::swap(A, B);
  // B is now the shorter string; keep one rolling row of |B|+1 entries.
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diagonal = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Substitute = Diagonal + (A[I - 1] == B[J - 1] ? 0 : 1);
      Diagonal = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Substitute});
    }
  }
  return Row[B.size()];
}
