//===- support/Hashing.h - Hash combinators ---------------------*- C++ -*-==//
///
/// \file
/// FNV-1a based hash combinators used for name-path interning, statement
/// fingerprints (classifier features 2-3) and file-level deduplication of
/// the corpus (the paper prunes fork/file duplicates, Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_HASHING_H
#define NAMER_SUPPORT_HASHING_H

#include <cstdint>
#include <string_view>

namespace namer {

inline constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t FnvPrime = 0x100000001b3ULL;

/// Mixes one byte into \p Hash.
inline uint64_t hashByte(uint64_t Hash, uint8_t Byte) {
  return (Hash ^ Byte) * FnvPrime;
}

/// Mixes a 32-bit value into \p Hash.
inline uint64_t hashU32(uint64_t Hash, uint32_t Value) {
  Hash = hashByte(Hash, static_cast<uint8_t>(Value));
  Hash = hashByte(Hash, static_cast<uint8_t>(Value >> 8));
  Hash = hashByte(Hash, static_cast<uint8_t>(Value >> 16));
  return hashByte(Hash, static_cast<uint8_t>(Value >> 24));
}

/// Mixes a 64-bit value into \p Hash.
inline uint64_t hashU64(uint64_t Hash, uint64_t Value) {
  Hash = hashU32(Hash, static_cast<uint32_t>(Value));
  return hashU32(Hash, static_cast<uint32_t>(Value >> 32));
}

/// Hashes a string from scratch.
inline uint64_t hashString(std::string_view Text,
                           uint64_t Hash = FnvOffsetBasis) {
  for (char C : Text)
    Hash = hashByte(Hash, static_cast<uint8_t>(C));
  return Hash;
}

} // namespace namer

#endif // NAMER_SUPPORT_HASHING_H
