//===- support/Telemetry.cpp ----------------------------------------------==//

#include "support/Telemetry.h"

#include "support/TextTable.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace namer;
using namespace namer::telemetry;

#ifndef NAMER_GIT_REV
#define NAMER_GIT_REV "unknown"
#endif

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

RunMeta telemetry::defaultMeta(std::string Tool, unsigned Threads) {
  RunMeta Meta;
  Meta.Tool = std::move(Tool);
  Meta.GitRev = NAMER_GIT_REV;
  Meta.Threads = Threads;
  Meta.HardwareConcurrency = std::max(1u, std::thread::hardware_concurrency());
  return Meta;
}

#if NAMER_TELEMETRY

namespace {

std::atomic<bool> GEnabled{true};
std::atomic<uint64_t> GAllocations{0};
std::atomic<uint64_t (*)()> GTimeSource{nullptr};

std::string formatMicros(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", static_cast<double>(Ns) / 1000.0);
  return Buf;
}

uint64_t nowNs() {
  if (uint64_t (*F)() = GTimeSource.load(std::memory_order_relaxed))
    return F();
  // All timestamps are relative to the first telemetry use in the process;
  // the exporters re-normalize to the earliest span anyway.
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

/// One completed span. Name points to static storage (TraceSpan contract).
struct SpanEvent {
  const char *Name;
  uint16_t Depth;
  uint64_t StartNs;
  uint64_t DurNs;
};

/// Per-thread event sink. Owned by the global registry (never destroyed
/// before process exit), so worker threads may outlive any exporter call.
struct ThreadBuffer {
  uint32_t Tid = 0;
  std::mutex M;
  std::vector<SpanEvent> Events;
};

struct ThreadRegistry {
  std::mutex M;
  std::deque<ThreadBuffer> Buffers; // deque: stable addresses
};

ThreadRegistry &threadRegistry() {
  // Leaked deliberately: pool threads may still record while static
  // destructors of other translation units run.
  static ThreadRegistry *R = new ThreadRegistry;
  return *R;
}

thread_local uint32_t TlsDepth = 0;

ThreadBuffer &threadBuffer() {
  thread_local ThreadBuffer *B = nullptr;
  if (!B) {
    ThreadRegistry &R = threadRegistry();
    std::lock_guard<std::mutex> L(R.M);
    R.Buffers.emplace_back();
    B = &R.Buffers.back();
    B->Tid = static_cast<uint32_t>(R.Buffers.size() - 1);
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *B;
}

struct EventSnapshot {
  uint32_t Tid;
  SpanEvent Event;
};

std::vector<EventSnapshot> snapshotEvents() {
  std::vector<EventSnapshot> Out;
  ThreadRegistry &R = threadRegistry();
  std::lock_guard<std::mutex> L(R.M);
  for (ThreadBuffer &B : R.Buffers) {
    std::lock_guard<std::mutex> LB(B.M);
    for (const SpanEvent &E : B.Events)
      Out.push_back({B.Tid, E});
  }
  return Out;
}

struct SpanAggregate {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MinNs = UINT64_MAX;
  uint64_t MaxNs = 0;
};

std::map<std::string, SpanAggregate, std::less<>>
aggregateSpans(const std::vector<EventSnapshot> &Events) {
  std::map<std::string, SpanAggregate, std::less<>> Out;
  for (const EventSnapshot &E : Events) {
    SpanAggregate &A = Out[E.Event.Name];
    ++A.Count;
    A.TotalNs += E.Event.DurNs;
    A.MinNs = std::min(A.MinNs, E.Event.DurNs);
    A.MaxNs = std::max(A.MaxNs, E.Event.DurNs);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

void Histogram::record(uint64_t Sample) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Prev = Max.load(std::memory_order_relaxed);
  while (Prev < Sample &&
         !Max.compare_exchange_weak(Prev, Sample, std::memory_order_relaxed))
    ;
  uint64_t PrevMin = MinPlus1.load(std::memory_order_relaxed);
  while ((PrevMin == 0 || Sample + 1 < PrevMin) &&
         !MinPlus1.compare_exchange_weak(PrevMin, Sample + 1,
                                         std::memory_order_relaxed))
    ;
  size_t K = Sample == 0 ? 0 : static_cast<size_t>(std::bit_width(Sample));
  K = std::min(K, NumBuckets - 1);
  Buckets[K].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::min() const {
  uint64_t V = MinPlus1.load(std::memory_order_relaxed);
  return V == 0 ? 0 : V - 1;
}

struct MetricsRegistry::Stripe {
  mutable std::mutex M;
  // std::map with transparent compare: string_view lookups allocate only
  // on first registration. Metric objects are heap-pinned so references
  // returned to callers never move.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

MetricsRegistry::MetricsRegistry() : Stripes(new Stripe[NumStripes]) {}
MetricsRegistry::~MetricsRegistry() { delete[] Stripes; }

MetricsRegistry::Stripe &
MetricsRegistry::stripeFor(std::string_view Name) const {
  return Stripes[std::hash<std::string_view>{}(Name) % NumStripes];
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  Stripe &S = stripeFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Counters.find(Name);
  if (It == S.Counters.end()) {
    It = S.Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  Stripe &S = stripeFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Gauges.find(Name);
  if (It == S.Gauges.end()) {
    It = S.Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  Stripe &S = stripeFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Histograms.find(Name);
  if (It == S.Histograms.end()) {
    It = S.Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *It->second;
}

void MetricsRegistry::resetValues() {
  for (size_t I = 0; I != NumStripes; ++I) {
    Stripe &S = Stripes[I];
    std::lock_guard<std::mutex> L(S.M);
    for (auto &[Name, C] : S.Counters)
      C->Value.store(0, std::memory_order_relaxed);
    for (auto &[Name, G] : S.Gauges)
      G->Value.store(0, std::memory_order_relaxed);
    for (auto &[Name, H] : S.Histograms) {
      H->Count.store(0, std::memory_order_relaxed);
      H->Sum.store(0, std::memory_order_relaxed);
      H->Max.store(0, std::memory_order_relaxed);
      H->MinPlus1.store(0, std::memory_order_relaxed);
      for (auto &B : H->Buckets)
        B.store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::snapshot() const {
  std::vector<std::pair<std::string, int64_t>> Out;
  for (size_t I = 0; I != NumStripes; ++I) {
    Stripe &S = Stripes[I];
    std::lock_guard<std::mutex> L(S.M);
    for (const auto &[Name, C] : S.Counters)
      Out.emplace_back(Name, static_cast<int64_t>(C->value()));
    for (const auto &[Name, G] : S.Gauges)
      Out.emplace_back(Name, G->value());
    for (const auto &[Name, H] : S.Histograms) {
      Out.emplace_back(Name + ".count", static_cast<int64_t>(H->count()));
      Out.emplace_back(Name + ".sum", static_cast<int64_t>(H->sum()));
      Out.emplace_back(Name + ".min", static_cast<int64_t>(H->min()));
      Out.emplace_back(Name + ".max", static_cast<int64_t>(H->max()));
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

MetricsRegistry &telemetry::metrics() {
  // Leaked for the same reason as the thread registry.
  static MetricsRegistry *R = new MetricsRegistry;
  return *R;
}

bool telemetry::enabled() {
  return GEnabled.load(std::memory_order_relaxed);
}

void telemetry::setEnabled(bool On) {
  GEnabled.store(On, std::memory_order_relaxed);
}

void telemetry::count(std::string_view Name, uint64_t Delta) {
  if (!enabled())
    return;
  metrics().counter(Name).add(Delta);
}

void telemetry::gaugeSet(std::string_view Name, int64_t Value) {
  if (!enabled())
    return;
  metrics().gauge(Name).set(Value);
}

void telemetry::histogramRecord(std::string_view Name, uint64_t Sample) {
  if (!enabled())
    return;
  metrics().histogram(Name).record(Sample);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(const char *SpanName) : Name(nullptr) {
  if (!enabled())
    return;
  Name = SpanName;
  ++TlsDepth;
  StartNs = nowNs();
}

TraceSpan::~TraceSpan() {
  if (!Name)
    return;
  uint64_t End = nowNs();
  // RAII guarantees LIFO per thread, so the pre-decrement value is the
  // nesting depth this span was opened at.
  uint16_t Depth = static_cast<uint16_t>(--TlsDepth);
  ThreadBuffer &B = threadBuffer();
  std::lock_guard<std::mutex> L(B.M);
  if (B.Events.size() == B.Events.capacity())
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  B.Events.push_back({Name, Depth, StartNs, End - StartNs});
}

uint32_t telemetry::currentThreadId() { return threadBuffer().Tid; }

void telemetry::reset() {
  ThreadRegistry &R = threadRegistry();
  {
    std::lock_guard<std::mutex> L(R.M);
    for (ThreadBuffer &B : R.Buffers) {
      std::lock_guard<std::mutex> LB(B.M);
      B.Events.clear();
    }
  }
  metrics().resetValues();
}

uint64_t telemetry::debugAllocations() {
  return GAllocations.load(std::memory_order_relaxed);
}

void telemetry::setTimeSourceForTest(uint64_t (*NowNs)()) {
  GTimeSource.store(NowNs, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string telemetry::chromeTraceJson() {
  std::vector<EventSnapshot> Events = snapshotEvents();
  std::sort(Events.begin(), Events.end(),
            [](const EventSnapshot &A, const EventSnapshot &B) {
              if (A.Event.StartNs != B.Event.StartNs)
                return A.Event.StartNs < B.Event.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return std::strcmp(A.Event.Name, B.Event.Name) < 0;
            });
  uint64_t Base = Events.empty() ? 0 : Events.front().Event.StartNs;

  std::vector<uint32_t> Tids;
  for (const EventSnapshot &E : Events)
    Tids.push_back(E.Tid);
  std::sort(Tids.begin(), Tids.end());
  Tids.erase(std::unique(Tids.begin(), Tids.end()), Tids.end());

  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (uint32_t Tid : Tids) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(Tid) + ",\"args\":{\"name\":\"worker-" +
           std::to_string(Tid) + "\"}}";
  }
  for (const EventSnapshot &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\":\"" + jsonEscape(E.Event.Name) +
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(E.Tid) +
           ",\"ts\":" + formatMicros(E.Event.StartNs - Base) +
           ",\"dur\":" + formatMicros(E.Event.DurNs) +
           ",\"args\":{\"depth\":" + std::to_string(E.Event.Depth) + "}}";
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

std::string telemetry::statsJson(const RunMeta &Meta) {
  std::string Out = "{\n  \"meta\": {\n";
  Out += "    \"git_rev\": \"" + jsonEscape(Meta.GitRev) + "\",\n";
  Out += "    \"hardware_concurrency\": " +
         std::to_string(Meta.HardwareConcurrency) + ",\n";
  Out += "    \"schema_version\": " + std::to_string(kStatsSchemaVersion) +
         ",\n";
  Out += "    \"telemetry_compiled\": true,\n";
  Out += "    \"threads\": " + std::to_string(Meta.Threads) + ",\n";
  Out += "    \"tool\": \"" + jsonEscape(Meta.Tool) + "\"\n  },\n";

  Out += "  \"counters\": {";
  std::vector<std::pair<std::string, int64_t>> Counters =
      metrics().snapshot();
  for (size_t I = 0; I != Counters.size(); ++I)
    Out += std::string(I ? "," : "") + "\n    \"" +
           jsonEscape(Counters[I].first) +
           "\": " + std::to_string(Counters[I].second);
  Out += Counters.empty() ? "},\n" : "\n  },\n";

  Out += "  \"spans\": {";
  auto Spans = aggregateSpans(snapshotEvents());
  size_t I = 0;
  for (const auto &[Name, A] : Spans) {
    Out += std::string(I++ ? "," : "") + "\n    \"" + jsonEscape(Name) +
           "\": {\"count\": " + std::to_string(A.Count) +
           ", \"max_us\": " + formatMicros(A.MaxNs) +
           ", \"min_us\": " + formatMicros(A.MinNs) +
           ", \"total_us\": " + formatMicros(A.TotalNs) + "}";
  }
  Out += Spans.empty() ? "}" : "\n  }";

  for (const auto &[Key, RawJson] : Meta.Extra)
    Out += ",\n  \"" + jsonEscape(Key) + "\": " + RawJson;
  Out += "\n}\n";
  return Out;
}

double telemetry::spanTotalUs(std::string_view Name) {
  uint64_t TotalNs = 0;
  for (const EventSnapshot &E : snapshotEvents())
    if (Name == E.Event.Name)
      TotalNs += E.Event.DurNs;
  return static_cast<double>(TotalNs) / 1000.0;
}

std::string telemetry::summaryTable() {
  auto Spans = aggregateSpans(snapshotEvents());
  uint64_t GrandTotalNs = 0;
  for (const auto &[Name, A] : Spans)
    GrandTotalNs += A.TotalNs;

  // Sort by total time descending so the expensive stages lead.
  std::vector<std::pair<std::string, SpanAggregate>> Rows(Spans.begin(),
                                                          Spans.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.second.TotalNs != B.second.TotalNs)
      return A.second.TotalNs > B.second.TotalNs;
    return A.first < B.first;
  });

  TextTable Table;
  Table.setHeader({"span", "count", "total ms", "mean ms", "share"});
  for (const auto &[Name, A] : Rows) {
    double TotalMs = static_cast<double>(A.TotalNs) / 1e6;
    double MeanMs = TotalMs / static_cast<double>(A.Count);
    double Share = GrandTotalNs
                       ? static_cast<double>(A.TotalNs) /
                             static_cast<double>(GrandTotalNs)
                       : 0.0;
    Table.addRow({Name, std::to_string(A.Count),
                  TextTable::formatDouble(TotalMs, 2),
                  TextTable::formatDouble(MeanMs, 3),
                  TextTable::formatPercent(Share, 1)});
  }
  return Table.render();
}

#else // !NAMER_TELEMETRY

std::string telemetry::chromeTraceJson() {
  return "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string telemetry::statsJson(const RunMeta &Meta) {
  std::string Out = "{\n  \"meta\": {\n";
  Out += "    \"git_rev\": \"" + jsonEscape(Meta.GitRev) + "\",\n";
  Out += "    \"hardware_concurrency\": " +
         std::to_string(Meta.HardwareConcurrency) + ",\n";
  Out += "    \"schema_version\": " + std::to_string(kStatsSchemaVersion) +
         ",\n";
  Out += "    \"telemetry_compiled\": false,\n";
  Out += "    \"threads\": " + std::to_string(Meta.Threads) + ",\n";
  Out += "    \"tool\": \"" + jsonEscape(Meta.Tool) + "\"\n  },\n";
  Out += "  \"counters\": {},\n  \"spans\": {}";
  for (const auto &[Key, RawJson] : Meta.Extra)
    Out += ",\n  \"" + jsonEscape(Key) + "\": " + RawJson;
  Out += "\n}\n";
  return Out;
}

std::string telemetry::summaryTable() {
  return "(telemetry compiled out: rebuild with -DNAMER_TELEMETRY=ON)\n";
}

#endif // NAMER_TELEMETRY
