//===- support/Telemetry.cpp ----------------------------------------------==//

#include "support/Telemetry.h"

#include "support/IoRetry.h"
#include "support/TextTable.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>

using namespace namer;
using namespace namer::telemetry;

#ifndef NAMER_GIT_REV
#define NAMER_GIT_REV "unknown"
#endif

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

// The time source is shared by both build modes: the run ledger and memory
// tracker stamp durations through nowNanos() even when span recording is
// compiled out, and the deterministic-observability mode injects a constant
// clock through the same hook.
std::atomic<uint64_t (*)()> GTimeSource{nullptr};

} // namespace

RunMeta telemetry::defaultMeta(std::string Tool, unsigned Threads) {
  RunMeta Meta;
  Meta.Tool = std::move(Tool);
  Meta.GitRev = NAMER_GIT_REV;
  Meta.Threads = Threads;
  Meta.HardwareConcurrency = std::max(1u, std::thread::hardware_concurrency());
  return Meta;
}

uint64_t telemetry::nowNanos() {
  if (uint64_t (*F)() = GTimeSource.load(std::memory_order_relaxed))
    return F();
  // All timestamps are relative to the first telemetry use in the process;
  // the exporters re-normalize to the earliest span anyway.
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void telemetry::setTimeSourceForTest(uint64_t (*NowNs)()) {
  GTimeSource.store(NowNs, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsSnapshotter (both build modes; prometheusText degrades when
// telemetry is compiled out)
//===----------------------------------------------------------------------===//

struct MetricsSnapshotter::Impl {
  Options O;
  std::mutex M;
  std::condition_variable Cv;
  bool Stop = false;
  std::atomic<uint64_t> Flushes{0};
  std::thread T;

  bool write() {
    // tmp + rename: a scraper tailing Path never observes a torn document.
    // io::fwriteAll rides out one EINTR/short write, so a signal landing
    // mid-exposition (the namer-scan SIGTERM flush path) still produces a
    // complete document.
    std::string Doc = prometheusText(O.Export);
    std::string Tmp = O.Path + ".tmp";
    {
      std::FILE *Out = std::fopen(Tmp.c_str(), "wb");
      if (!Out)
        return false;
      bool Ok = io::fwriteAll(Out, Doc.data(), Doc.size());
      Ok = std::fflush(Out) == 0 && Ok;
      Ok = std::fclose(Out) == 0 && Ok;
      if (!Ok)
        return false;
    }
    if (std::rename(Tmp.c_str(), O.Path.c_str()) != 0)
      return false;
    Flushes.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("snapshot.flushes");
    return true;
  }
};

MetricsSnapshotter::MetricsSnapshotter(Options O)
    : I(std::make_unique<Impl>()) {
  I->O = std::move(O);
  if (I->O.IntervalMs == 0 || I->O.Path.empty())
    return;
  I->T = std::thread([Impl = I.get()] {
    std::unique_lock<std::mutex> L(Impl->M);
    while (!Impl->Stop) {
      Impl->Cv.wait_for(L, std::chrono::milliseconds(Impl->O.IntervalMs),
                        [&] { return Impl->Stop; });
      if (Impl->Stop)
        break;
      L.unlock();
      Impl->write();
      L.lock();
    }
  });
}

MetricsSnapshotter::~MetricsSnapshotter() {
  if (I->T.joinable()) {
    {
      std::lock_guard<std::mutex> L(I->M);
      I->Stop = true;
    }
    I->Cv.notify_all();
    I->T.join();
  }
  if (!I->O.Path.empty())
    I->write(); // flush-on-exit: the file always ends on a complete run
}

bool MetricsSnapshotter::flushNow() {
  return I->O.Path.empty() ? false : I->write();
}

uint64_t MetricsSnapshotter::flushes() const {
  return I->Flushes.load(std::memory_order_relaxed);
}

namespace {

/// Prometheus metric-name sanitization: dotted stage.noun names map onto
/// namer_stage_noun; any byte outside [a-zA-Z0-9_] becomes '_'.
[[maybe_unused]] std::string promName(std::string_view Dotted) {
  std::string Out = "namer_";
  for (char C : Dotted)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
               ? C
               : '_';
  return Out;
}

std::string promLabelEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

[[maybe_unused]] bool promExcluded(std::string_view Name,
                                   const PromExportOptions &Opts) {
  for (const std::string &Prefix : Opts.ExcludePrefixes)
    if (Name.rfind(Prefix, 0) == 0)
      return true;
  return false;
}

} // namespace

#if NAMER_TELEMETRY

namespace {

std::atomic<bool> GEnabled{true};
std::atomic<uint64_t> GAllocations{0};
std::atomic<uint64_t> GSpanDeadlineNs{0};
std::atomic<StallHook> GStallHook{nullptr};

std::string formatMicros(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", static_cast<double>(Ns) / 1000.0);
  return Buf;
}

/// One completed span. Name points to static storage (TraceSpan contract).
struct SpanEvent {
  const char *Name;
  uint16_t Depth;
  uint64_t StartNs;
  uint64_t DurNs;
  uint64_t SelfNs;
};

/// An interned logical span stack (outermost first) adopted by pool tasks
/// through InheritedStackScope. Records are deduplicated in a global
/// registry and deliberately leaked: a sampler thread may dereference one
/// at any time, so nothing may ever free it.
struct StackPrefixRec {
  std::vector<const char *> Frames;
};

/// Hard cap on frames per assembled sample (prefix + own spans). Deeper
/// stacks truncate at the root end of the own segment, never crash.
constexpr size_t kMaxSampleFrames = 64;

/// Per-thread event sink. Owned by the global registry (never destroyed
/// before process exit), so worker threads may outlive any exporter call.
/// The Live* arrays publish the thread's open-span stack (lock-free,
/// bounded depth) for SpanWatchdog and the profiler to scan; the Inherit*
/// fields publish the adopted stack prefix under a seqlock (InheritSeq is
/// odd while a scope is mid-update) so cross-thread readers never pair a
/// new prefix with a stale base depth.
struct ThreadBuffer {
  static constexpr size_t kMaxLiveDepth = 32;
  uint32_t Tid = 0;
  std::mutex M;
  std::vector<SpanEvent> Events;
  std::atomic<const char *> LiveName[kMaxLiveDepth] = {};
  std::atomic<uint64_t> LiveStart[kMaxLiveDepth] = {};
  std::atomic<uint32_t> LiveDepth{0};
  std::atomic<uint32_t> InheritSeq{0};
  std::atomic<const StackPrefixRec *> InheritPrefix{nullptr};
  std::atomic<uint32_t> InheritBase{0};
};

struct ThreadRegistry {
  std::mutex M;
  std::deque<ThreadBuffer> Buffers; // deque: stable addresses
};

ThreadRegistry &threadRegistry() {
  // Leaked deliberately: pool threads may still record while static
  // destructors of other translation units run.
  static ThreadRegistry *R = new ThreadRegistry;
  return *R;
}

thread_local uint32_t TlsDepth = 0;

/// Self-time accounting: TlsChildNs[d] accumulates the durations of
/// completed spans at depth d. A span opening at depth D zeroes slot D+1;
/// at close its self time is its duration minus whatever its direct
/// children left in that slot. Purely thread-local, no synchronization.
thread_local uint64_t TlsChildNs[ThreadBuffer::kMaxLiveDepth + 1] = {};

/// Installed span-close sample sink. Swapped atomically as one allocation
/// so a closing span never pairs a new hook with a stale context; retired
/// sinks are leaked (tiny, and another thread may still be mid-call).
struct SampleSink {
  SpanSampleHook Fn;
  void *Ctx;
};
std::atomic<SampleSink *> GSampleSink{nullptr};

ThreadBuffer &threadBuffer() {
  thread_local ThreadBuffer *B = nullptr;
  if (!B) {
    ThreadRegistry &R = threadRegistry();
    std::lock_guard<std::mutex> L(R.M);
    R.Buffers.emplace_back();
    B = &R.Buffers.back();
    B->Tid = static_cast<uint32_t>(R.Buffers.size() - 1);
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *B;
}

/// Dedup registry of stack prefixes. Leaked records, stable addresses.
const StackPrefixRec *internStackPrefix(const char *const *Frames,
                                        size_t NumFrames) {
  static std::mutex *M = new std::mutex;
  static std::map<std::vector<const char *>, const StackPrefixRec *> *Cache =
      new std::map<std::vector<const char *>, const StackPrefixRec *>;
  std::vector<const char *> Key(Frames, Frames + NumFrames);
  std::lock_guard<std::mutex> L(*M);
  auto It = Cache->find(Key);
  if (It != Cache->end())
    return It->second;
  auto *Rec = new StackPrefixRec{Key};
  GAllocations.fetch_add(1, std::memory_order_relaxed);
  Cache->emplace(std::move(Key), Rec);
  return Rec;
}

/// Appends \p B's logical stack (adopted prefix + own open spans in
/// [Base, Depth)) to \p Frames. \p OwnThread skips the seqlock (a thread
/// reading its own buffer cannot race with itself); cross-thread readers
/// retry while a scope hand-off is in flight. Own-thread reads use the
/// caller-supplied \p OwnDepth (TlsDepth) rather than LiveDepth so frames
/// beyond the live table are simply absent instead of stale.
size_t assembleStack(ThreadBuffer &B, bool OwnThread, uint32_t OwnDepth,
                     const char **Frames) {
  for (int Attempt = 0;; ++Attempt) {
    uint32_t Seq = B.InheritSeq.load(std::memory_order_acquire);
    if (Seq & 1) {
      if (OwnThread || Attempt > 64)
        return 0; // writer never observes its own odd seq; bail cross-thread
      continue;
    }
    const StackPrefixRec *Prefix =
        B.InheritPrefix.load(std::memory_order_relaxed);
    uint32_t Base = Prefix ? B.InheritBase.load(std::memory_order_relaxed) : 0;
    size_t N = 0;
    if (Prefix)
      for (const char *F : Prefix->Frames)
        if (N < kMaxSampleFrames)
          Frames[N++] = F;
    uint32_t Depth = OwnThread ? OwnDepth
                               : B.LiveDepth.load(std::memory_order_acquire);
    Depth = std::min<uint32_t>(Depth, ThreadBuffer::kMaxLiveDepth);
    for (uint32_t K = Base; K < Depth; ++K) {
      const char *Name = B.LiveName[K].load(std::memory_order_relaxed);
      if (Name && N < kMaxSampleFrames)
        Frames[N++] = Name;
    }
    if (OwnThread || B.InheritSeq.load(std::memory_order_acquire) == Seq)
      return N;
  }
}

struct EventSnapshot {
  uint32_t Tid;
  SpanEvent Event;
};

std::vector<EventSnapshot> snapshotEvents() {
  std::vector<EventSnapshot> Out;
  ThreadRegistry &R = threadRegistry();
  std::lock_guard<std::mutex> L(R.M);
  for (ThreadBuffer &B : R.Buffers) {
    std::lock_guard<std::mutex> LB(B.M);
    for (const SpanEvent &E : B.Events)
      Out.push_back({B.Tid, E});
  }
  return Out;
}

struct SpanAggregate {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t SelfNs = 0;
  uint64_t MinNs = UINT64_MAX;
  uint64_t MaxNs = 0;
};

std::map<std::string, SpanAggregate, std::less<>>
aggregateSpans(const std::vector<EventSnapshot> &Events) {
  std::map<std::string, SpanAggregate, std::less<>> Out;
  for (const EventSnapshot &E : Events) {
    SpanAggregate &A = Out[E.Event.Name];
    ++A.Count;
    A.TotalNs += E.Event.DurNs;
    A.SelfNs += E.Event.SelfNs;
    A.MinNs = std::min(A.MinNs, E.Event.DurNs);
    A.MaxNs = std::max(A.MaxNs, E.Event.DurNs);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

void Histogram::record(uint64_t Sample) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Prev = Max.load(std::memory_order_relaxed);
  while (Prev < Sample &&
         !Max.compare_exchange_weak(Prev, Sample, std::memory_order_relaxed))
    ;
  uint64_t PrevMin = MinPlus1.load(std::memory_order_relaxed);
  while ((PrevMin == 0 || Sample + 1 < PrevMin) &&
         !MinPlus1.compare_exchange_weak(PrevMin, Sample + 1,
                                         std::memory_order_relaxed))
    ;
  size_t K = Sample == 0 ? 0 : static_cast<size_t>(std::bit_width(Sample));
  K = std::min(K, NumBuckets - 1);
  Buckets[K].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::min() const {
  uint64_t V = MinPlus1.load(std::memory_order_relaxed);
  return V == 0 ? 0 : V - 1;
}

uint64_t Histogram::quantile(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  if (Q <= 0.0)
    return min();
  if (Q >= 1.0)
    return max();
  // Nearest rank over the bucket CDF. The rank's bucket bounds its value:
  // [2^(k-1), 2^k - 1], clamped by the histogram's true min/max (exact for
  // the buckets holding them, and for single-sample histograms overall).
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(N)));
  Rank = std::min(std::max<uint64_t>(Rank, 1), N);
  uint64_t Cum = 0;
  for (size_t K = 0; K != NumBuckets; ++K) {
    uint64_t C = bucket(K);
    if (C == 0)
      continue;
    if (Cum + C < Rank) {
      Cum += C;
      continue;
    }
    uint64_t Lo = K == 0 ? 0 : uint64_t(1) << (K - 1);
    uint64_t Hi = K == NumBuckets - 1 ? max() : (uint64_t(1) << K) - 1;
    Lo = std::max(Lo, min());
    Hi = std::min(Hi, max());
    if (Hi <= Lo || C == 1)
      return Lo;
    // Spread the bucket's C samples uniformly over [Lo, Hi] and return the
    // in-bucket rank's lower position -- exact when samples sit on the
    // bucket's lower bound.
    uint64_t Idx = Rank - Cum; // 1-based within this bucket
    return Lo + (Hi - Lo) * (Idx - 1) / (C - 1);
  }
  return max();
}

struct MetricsRegistry::Stripe {
  mutable std::mutex M;
  // std::map with transparent compare: string_view lookups allocate only
  // on first registration. Metric objects are heap-pinned so references
  // returned to callers never move.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

MetricsRegistry::MetricsRegistry() : Stripes(new Stripe[NumStripes]) {}
MetricsRegistry::~MetricsRegistry() { delete[] Stripes; }

MetricsRegistry::Stripe &
MetricsRegistry::stripeFor(std::string_view Name) const {
  return Stripes[std::hash<std::string_view>{}(Name) % NumStripes];
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  Stripe &S = stripeFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Counters.find(Name);
  if (It == S.Counters.end()) {
    It = S.Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  Stripe &S = stripeFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Gauges.find(Name);
  if (It == S.Gauges.end()) {
    It = S.Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  Stripe &S = stripeFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Histograms.find(Name);
  if (It == S.Histograms.end()) {
    It = S.Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *It->second;
}

void MetricsRegistry::resetValues() {
  for (size_t I = 0; I != NumStripes; ++I) {
    Stripe &S = Stripes[I];
    std::lock_guard<std::mutex> L(S.M);
    for (auto &[Name, C] : S.Counters)
      C->Value.store(0, std::memory_order_relaxed);
    for (auto &[Name, G] : S.Gauges)
      G->Value.store(0, std::memory_order_relaxed);
    for (auto &[Name, H] : S.Histograms) {
      H->Count.store(0, std::memory_order_relaxed);
      H->Sum.store(0, std::memory_order_relaxed);
      H->Max.store(0, std::memory_order_relaxed);
      H->MinPlus1.store(0, std::memory_order_relaxed);
      for (auto &B : H->Buckets)
        B.store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::snapshot() const {
  std::vector<std::pair<std::string, int64_t>> Out;
  for (size_t I = 0; I != NumStripes; ++I) {
    Stripe &S = Stripes[I];
    std::lock_guard<std::mutex> L(S.M);
    for (const auto &[Name, C] : S.Counters)
      Out.emplace_back(Name, static_cast<int64_t>(C->value()));
    for (const auto &[Name, G] : S.Gauges)
      Out.emplace_back(Name, G->value());
    for (const auto &[Name, H] : S.Histograms) {
      Out.emplace_back(Name + ".count", static_cast<int64_t>(H->count()));
      Out.emplace_back(Name + ".sum", static_cast<int64_t>(H->sum()));
      Out.emplace_back(Name + ".min", static_cast<int64_t>(H->min()));
      Out.emplace_back(Name + ".max", static_cast<int64_t>(H->max()));
      Out.emplace_back(Name + ".p50", static_cast<int64_t>(H->quantile(0.5)));
      Out.emplace_back(Name + ".p90", static_cast<int64_t>(H->quantile(0.9)));
      Out.emplace_back(Name + ".p99",
                       static_cast<int64_t>(H->quantile(0.99)));
      Out.emplace_back(Name + ".p999",
                       static_cast<int64_t>(H->quantile(0.999)));
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

MetricsTypedSnapshot MetricsRegistry::typedSnapshot() const {
  MetricsTypedSnapshot Out;
  for (size_t I = 0; I != NumStripes; ++I) {
    Stripe &S = Stripes[I];
    std::lock_guard<std::mutex> L(S.M);
    for (const auto &[Name, C] : S.Counters)
      Out.Counters.emplace_back(Name, C->value());
    for (const auto &[Name, G] : S.Gauges)
      Out.Gauges.emplace_back(Name, G->value());
    for (const auto &[Name, H] : S.Histograms) {
      MetricsTypedSnapshot::Hist Hist;
      Hist.Name = Name;
      Hist.Count = H->count();
      Hist.Sum = H->sum();
      Hist.Min = H->min();
      Hist.Max = H->max();
      Hist.P50 = H->quantile(0.5);
      Hist.P90 = H->quantile(0.9);
      Hist.P99 = H->quantile(0.99);
      Hist.P999 = H->quantile(0.999);
      static_assert(Histogram::NumBuckets ==
                    std::tuple_size<decltype(Hist.Buckets)>::value);
      for (size_t K = 0; K != Histogram::NumBuckets; ++K)
        Hist.Buckets[K] = H->bucket(K);
      Out.Histograms.push_back(std::move(Hist));
    }
  }
  auto ByFirst = [](const auto &A, const auto &B) { return A.first < B.first; };
  std::sort(Out.Counters.begin(), Out.Counters.end(), ByFirst);
  std::sort(Out.Gauges.begin(), Out.Gauges.end(), ByFirst);
  std::sort(Out.Histograms.begin(), Out.Histograms.end(),
            [](const MetricsTypedSnapshot::Hist &A,
               const MetricsTypedSnapshot::Hist &B) { return A.Name < B.Name; });
  return Out;
}

MetricsRegistry &telemetry::metrics() {
  // Leaked for the same reason as the thread registry.
  static MetricsRegistry *R = new MetricsRegistry;
  return *R;
}

bool telemetry::enabled() {
  return GEnabled.load(std::memory_order_relaxed);
}

void telemetry::setEnabled(bool On) {
  GEnabled.store(On, std::memory_order_relaxed);
}

void telemetry::count(std::string_view Name, uint64_t Delta) {
  if (!enabled())
    return;
  metrics().counter(Name).add(Delta);
}

void telemetry::gaugeSet(std::string_view Name, int64_t Value) {
  if (!enabled())
    return;
  metrics().gauge(Name).set(Value);
}

void telemetry::histogramRecord(std::string_view Name, uint64_t Sample) {
  if (!enabled())
    return;
  metrics().histogram(Name).record(Sample);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(const char *SpanName) : Name(nullptr) {
  if (!enabled())
    return;
  Name = SpanName;
  uint32_t Depth = TlsDepth++;
  StartNs = nowNanos();
  // Publish onto the live-span stack so SpanWatchdog can see open spans.
  // Bounded depth: spans nested deeper than the table simply stay
  // invisible to the watchdog (they still record normally on close).
  ThreadBuffer &B = threadBuffer();
  if (Depth < ThreadBuffer::kMaxLiveDepth) {
    B.LiveName[Depth].store(SpanName, std::memory_order_relaxed);
    B.LiveStart[Depth].store(StartNs, std::memory_order_relaxed);
    B.LiveDepth.store(Depth + 1, std::memory_order_release);
  }
  // Fresh child accumulator for this span's direct children.
  if (Depth + 1 <= ThreadBuffer::kMaxLiveDepth)
    TlsChildNs[Depth + 1] = 0;
}

TraceSpan::~TraceSpan() {
  if (!Name)
    return;
  uint64_t End = nowNanos();
  // RAII guarantees LIFO per thread, so the pre-decrement value is the
  // nesting depth this span was opened at.
  uint16_t Depth = static_cast<uint16_t>(--TlsDepth);
  ThreadBuffer &B = threadBuffer();
  if (Depth < ThreadBuffer::kMaxLiveDepth)
    B.LiveDepth.store(Depth, std::memory_order_release);
  uint64_t Dur = End - StartNs;
  // Exact self time: duration minus what direct children accumulated in
  // this span's child slot; spans past the bounded table report self ==
  // total (their children were untracked).
  uint64_t SelfNs = Dur;
  if (Depth + 1 <= ThreadBuffer::kMaxLiveDepth) {
    uint64_t ChildNs = TlsChildNs[Depth + 1];
    SelfNs = Dur >= ChildNs ? Dur - ChildNs : 0;
  }
  if (Depth <= ThreadBuffer::kMaxLiveDepth)
    TlsChildNs[Depth] += Dur;
  uint64_t Deadline = GSpanDeadlineNs.load(std::memory_order_relaxed);
  if (Deadline != 0 && Dur > Deadline) {
    telemetry::count("watchdog.stalls");
    if (StallHook Hook = GStallHook.load(std::memory_order_relaxed))
      Hook(Name, Dur);
  }
  // Close-driven sampling: the profiler's deterministic mode receives the
  // full logical stack (inherited prefix + ancestors + this span). The
  // live table still holds this span's name at [Depth]; ancestors at
  // [Base, Depth) are still open, so their slots are valid too.
  if (const SampleSink *Sink = GSampleSink.load(std::memory_order_acquire)) {
    const char *Frames[kMaxSampleFrames + 1];
    size_t N = assembleStack(B, /*OwnThread=*/true, Depth, Frames);
    Frames[N++] = Name;
    Sink->Fn(Frames, N, Dur, SelfNs, Sink->Ctx);
  }
  std::lock_guard<std::mutex> L(B.M);
  if (B.Events.size() == B.Events.capacity())
    GAllocations.fetch_add(1, std::memory_order_relaxed);
  B.Events.push_back({Name, Depth, StartNs, Dur, SelfNs});
}

uint32_t telemetry::currentThreadId() { return threadBuffer().Tid; }

const char *telemetry::currentSpanName() {
  if (!enabled() || TlsDepth == 0)
    return nullptr;
  uint32_t Depth = TlsDepth;
  if (Depth > ThreadBuffer::kMaxLiveDepth)
    return nullptr; // innermost span overflowed the live table
  return threadBuffer().LiveName[Depth - 1].load(std::memory_order_relaxed);
}

const void *telemetry::captureStackPrefix() {
  if (!enabled())
    return nullptr;
  ThreadBuffer &B = threadBuffer();
  const char *Frames[kMaxSampleFrames];
  size_t N = assembleStack(B, /*OwnThread=*/true, TlsDepth, Frames);
  if (N == 0)
    return nullptr;
  return internStackPrefix(Frames, N);
}

InheritedStackScope::InheritedStackScope(const void *Prefix) {
  if (!Prefix || !enabled())
    return;
  ThreadBuffer &B = threadBuffer();
  Buf = &B;
  SavedPrefix = B.InheritPrefix.load(std::memory_order_relaxed);
  SavedBase = B.InheritBase.load(std::memory_order_relaxed);
  uint32_t Seq = B.InheritSeq.load(std::memory_order_relaxed);
  B.InheritSeq.store(Seq + 1, std::memory_order_release); // odd: in flight
  B.InheritPrefix.store(static_cast<const StackPrefixRec *>(Prefix),
                        std::memory_order_relaxed);
  B.InheritBase.store(std::min<uint32_t>(TlsDepth,
                                         ThreadBuffer::kMaxLiveDepth),
                      std::memory_order_relaxed);
  B.InheritSeq.store(Seq + 2, std::memory_order_release);
}

InheritedStackScope::~InheritedStackScope() {
  if (!Buf)
    return;
  ThreadBuffer &B = *static_cast<ThreadBuffer *>(Buf);
  uint32_t Seq = B.InheritSeq.load(std::memory_order_relaxed);
  B.InheritSeq.store(Seq + 1, std::memory_order_release);
  B.InheritPrefix.store(static_cast<const StackPrefixRec *>(SavedPrefix),
                        std::memory_order_relaxed);
  B.InheritBase.store(SavedBase, std::memory_order_relaxed);
  B.InheritSeq.store(Seq + 2, std::memory_order_release);
}

void telemetry::setSpanSampleHook(SpanSampleHook Hook, void *Ctx) {
  SampleSink *Next = Hook ? new SampleSink{Hook, Ctx} : nullptr;
  // The displaced sink is leaked on purpose: a span closing on another
  // thread may have loaded it a moment ago and still be inside the call.
  GSampleSink.exchange(Next, std::memory_order_acq_rel);
}

size_t telemetry::sampleLiveStacks(SpanSampleHook Sink, void *Ctx) {
  if (!Sink || !enabled())
    return 0;
  size_t Delivered = 0;
  ThreadRegistry &R = threadRegistry();
  std::lock_guard<std::mutex> L(R.M);
  for (ThreadBuffer &B : R.Buffers) {
    const char *Frames[kMaxSampleFrames];
    size_t N = assembleStack(B, /*OwnThread=*/false, 0, Frames);
    if (N == 0)
      continue;
    Sink(Frames, N, 0, 0, Ctx);
    ++Delivered;
  }
  return Delivered;
}

void telemetry::reset() {
  ThreadRegistry &R = threadRegistry();
  {
    std::lock_guard<std::mutex> L(R.M);
    for (ThreadBuffer &B : R.Buffers) {
      std::lock_guard<std::mutex> LB(B.M);
      B.Events.clear();
    }
  }
  metrics().resetValues();
}

uint64_t telemetry::debugAllocations() {
  return GAllocations.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Watchdog
//===----------------------------------------------------------------------===//

void telemetry::setSpanDeadlineNs(uint64_t Ns) {
  GSpanDeadlineNs.store(Ns, std::memory_order_relaxed);
}

uint64_t telemetry::spanDeadlineNs() {
  return GSpanDeadlineNs.load(std::memory_order_relaxed);
}

void telemetry::setStallHook(StallHook Hook) {
  GStallHook.store(Hook, std::memory_order_relaxed);
}

struct SpanWatchdog::Impl {
  std::mutex CvM;
  std::condition_variable Cv;
  bool Stop = false;
  std::thread T;

  // Flagged (tid, depth, start) triples: each stalled live span is counted
  // once however many scans observe it. Separate mutex from CvM so
  // scanOnce() never contends with the background thread's wait.
  std::mutex FlagM;
  std::set<std::tuple<uint32_t, uint32_t, uint64_t>> Flagged;
  std::atomic<uint64_t> LiveStalls{0};

  size_t scan() {
    uint64_t Deadline = GSpanDeadlineNs.load(std::memory_order_relaxed);
    if (Deadline == 0 || !telemetry::enabled())
      return 0;
    uint64_t Now = nowNanos();
    size_t NewStalls = 0;
    ThreadRegistry &R = threadRegistry();
    std::lock_guard<std::mutex> L(R.M);
    for (ThreadBuffer &B : R.Buffers) {
      uint32_t Depth = B.LiveDepth.load(std::memory_order_acquire);
      Depth = std::min<uint32_t>(Depth, ThreadBuffer::kMaxLiveDepth);
      for (uint32_t K = 0; K != Depth; ++K) {
        const char *Name = B.LiveName[K].load(std::memory_order_relaxed);
        uint64_t Start = B.LiveStart[K].load(std::memory_order_relaxed);
        if (!Name || Now <= Start || Now - Start <= Deadline)
          continue;
        {
          std::lock_guard<std::mutex> LF(FlagM);
          if (!Flagged.insert({B.Tid, K, Start}).second)
            continue;
        }
        ++NewStalls;
        LiveStalls.fetch_add(1, std::memory_order_relaxed);
        telemetry::count("watchdog.live_stalls");
        if (StallHook Hook = GStallHook.load(std::memory_order_relaxed))
          Hook(Name, Now - Start);
      }
    }
    return NewStalls;
  }
};

SpanWatchdog::SpanWatchdog(unsigned IntervalMs) : I(std::make_unique<Impl>()) {
  if (IntervalMs == 0)
    return;
  I->T = std::thread([Impl = I.get(), IntervalMs] {
    std::unique_lock<std::mutex> L(Impl->CvM);
    while (!Impl->Stop) {
      Impl->Cv.wait_for(L, std::chrono::milliseconds(IntervalMs),
                        [&] { return Impl->Stop; });
      if (Impl->Stop)
        break;
      L.unlock();
      Impl->scan();
      L.lock();
    }
  });
}

SpanWatchdog::~SpanWatchdog() {
  if (I->T.joinable()) {
    {
      std::lock_guard<std::mutex> L(I->CvM);
      I->Stop = true;
    }
    I->Cv.notify_all();
    I->T.join();
  }
}

size_t SpanWatchdog::scanOnce() { return I->scan(); }

uint64_t SpanWatchdog::liveStalls() const {
  return I->LiveStalls.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string telemetry::chromeTraceJson() {
  std::vector<EventSnapshot> Events = snapshotEvents();
  std::sort(Events.begin(), Events.end(),
            [](const EventSnapshot &A, const EventSnapshot &B) {
              if (A.Event.StartNs != B.Event.StartNs)
                return A.Event.StartNs < B.Event.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return std::strcmp(A.Event.Name, B.Event.Name) < 0;
            });
  uint64_t Base = Events.empty() ? 0 : Events.front().Event.StartNs;

  std::vector<uint32_t> Tids;
  for (const EventSnapshot &E : Events)
    Tids.push_back(E.Tid);
  std::sort(Tids.begin(), Tids.end());
  Tids.erase(std::unique(Tids.begin(), Tids.end()), Tids.end());

  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (uint32_t Tid : Tids) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(Tid) + ",\"args\":{\"name\":\"worker-" +
           std::to_string(Tid) + "\"}}";
  }
  for (const EventSnapshot &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\":\"" + jsonEscape(E.Event.Name) +
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(E.Tid) +
           ",\"ts\":" + formatMicros(E.Event.StartNs - Base) +
           ",\"dur\":" + formatMicros(E.Event.DurNs) +
           ",\"args\":{\"depth\":" + std::to_string(E.Event.Depth) + "}}";
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

std::string telemetry::statsJson(const RunMeta &Meta) {
  std::string Out = "{\n  \"meta\": {\n";
  Out += "    \"git_rev\": \"" + jsonEscape(Meta.GitRev) + "\",\n";
  Out += "    \"hardware_concurrency\": " +
         std::to_string(Meta.HardwareConcurrency) + ",\n";
  Out += "    \"schema_version\": " + std::to_string(kStatsSchemaVersion) +
         ",\n";
  Out += "    \"telemetry_compiled\": true,\n";
  Out += "    \"threads\": " + std::to_string(Meta.Threads) + ",\n";
  Out += "    \"tool\": \"" + jsonEscape(Meta.Tool) + "\"\n  },\n";

  Out += "  \"counters\": {";
  std::vector<std::pair<std::string, int64_t>> Counters =
      metrics().snapshot();
  for (size_t I = 0; I != Counters.size(); ++I)
    Out += std::string(I ? "," : "") + "\n    \"" +
           jsonEscape(Counters[I].first) +
           "\": " + std::to_string(Counters[I].second);
  Out += Counters.empty() ? "},\n" : "\n  },\n";

  Out += "  \"spans\": {";
  auto Spans = aggregateSpans(snapshotEvents());
  size_t I = 0;
  for (const auto &[Name, A] : Spans) {
    Out += std::string(I++ ? "," : "") + "\n    \"" + jsonEscape(Name) +
           "\": {\"count\": " + std::to_string(A.Count) +
           ", \"max_us\": " + formatMicros(A.MaxNs) +
           ", \"min_us\": " + formatMicros(A.MinNs) +
           ", \"self_us\": " + formatMicros(A.SelfNs) +
           ", \"total_us\": " + formatMicros(A.TotalNs) + "}";
  }
  Out += Spans.empty() ? "}" : "\n  }";

  for (const auto &[Key, RawJson] : Meta.Extra)
    Out += ",\n  \"" + jsonEscape(Key) + "\": " + RawJson;
  Out += "\n}\n";
  return Out;
}

std::string telemetry::prometheusText(const PromExportOptions &Opts) {
  std::string Out = "# namer prometheus text exposition (stats schema 1)\n";
  MetricsTypedSnapshot Snap = metrics().typedSnapshot();

  for (const auto &[Name, Value] : Snap.Counters) {
    if (promExcluded(Name, Opts))
      continue;
    std::string N = promName(Name);
    Out += "# TYPE " + N + "_total counter\n";
    Out += N + "_total " + std::to_string(Value) + "\n";
  }

  for (const auto &[Name, Value] : Snap.Gauges) {
    if (promExcluded(Name, Opts))
      continue;
    std::string N = promName(Name);
    Out += "# TYPE " + N + " gauge\n";
    Out += N + " " + std::to_string(Value) + "\n";
  }

  for (const MetricsTypedSnapshot::Hist &H : Snap.Histograms) {
    if (promExcluded(H.Name, Opts))
      continue;
    std::string N = promName(H.Name);
    Out += "# TYPE " + N + " histogram\n";
    // Cumulative buckets: le is the bucket's inclusive upper bound
    // (2^k - 1); the overflow bucket has no finite bound and folds into
    // +Inf. Empty tail buckets are elided -- +Inf always closes the CDF.
    size_t Highest = 0;
    for (size_t K = 0; K != H.Buckets.size(); ++K)
      if (H.Buckets[K] != 0)
        Highest = K;
    uint64_t Cum = H.Buckets[0];
    Out += N + "_bucket{le=\"0\"} " + std::to_string(Cum) + "\n";
    for (size_t K = 1; K <= Highest && K + 1 < H.Buckets.size(); ++K) {
      Cum += H.Buckets[K];
      Out += N + "_bucket{le=\"" +
             std::to_string((uint64_t(1) << K) - 1) + "\"} " +
             std::to_string(Cum) + "\n";
    }
    Out += N + "_bucket{le=\"+Inf\"} " + std::to_string(H.Count) + "\n";
    Out += N + "_sum " + std::to_string(H.Sum) + "\n";
    Out += N + "_count " + std::to_string(H.Count) + "\n";
    Out += "# TYPE " + N + "_quantile gauge\n";
    Out += N + "_quantile{q=\"0.5\"} " + std::to_string(H.P50) + "\n";
    Out += N + "_quantile{q=\"0.9\"} " + std::to_string(H.P90) + "\n";
    Out += N + "_quantile{q=\"0.99\"} " + std::to_string(H.P99) + "\n";
    Out += N + "_quantile{q=\"0.999\"} " + std::to_string(H.P999) + "\n";
  }

  auto Spans = aggregateSpans(snapshotEvents());
  for (auto It = Spans.begin(); It != Spans.end();)
    It = promExcluded(It->first, Opts) ? Spans.erase(It) : std::next(It);
  if (!Spans.empty()) {
    Out += "# TYPE namer_span_count counter\n";
    for (const auto &[Name, A] : Spans)
      Out += "namer_span_count{span=\"" + promLabelEscape(Name) + "\"} " +
             std::to_string(A.Count) + "\n";
    Out += "# TYPE namer_span_total_us counter\n";
    for (const auto &[Name, A] : Spans)
      Out += "namer_span_total_us{span=\"" + promLabelEscape(Name) + "\"} " +
             formatMicros(A.TotalNs) + "\n";
  }

  if (!Opts.GitRev.empty())
    Out += "# TYPE namer_build_info gauge\nnamer_build_info{git_rev=\"" +
           promLabelEscape(Opts.GitRev) + "\",telemetry=\"on\"} 1\n";
  return Out;
}

double telemetry::spanTotalUs(std::string_view Name) {
  uint64_t TotalNs = 0;
  for (const EventSnapshot &E : snapshotEvents())
    if (Name == E.Event.Name)
      TotalNs += E.Event.DurNs;
  return static_cast<double>(TotalNs) / 1000.0;
}

std::string telemetry::summaryTable() {
  auto Spans = aggregateSpans(snapshotEvents());
  uint64_t GrandTotalNs = 0;
  for (const auto &[Name, A] : Spans)
    GrandTotalNs += A.TotalNs;

  // Sort by total time descending so the expensive stages lead.
  std::vector<std::pair<std::string, SpanAggregate>> Rows(Spans.begin(),
                                                          Spans.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.second.TotalNs != B.second.TotalNs)
      return A.second.TotalNs > B.second.TotalNs;
    return A.first < B.first;
  });

  TextTable Table;
  Table.setHeader({"span", "count", "total ms", "self ms", "mean ms",
                   "share"});
  for (const auto &[Name, A] : Rows) {
    double TotalMs = static_cast<double>(A.TotalNs) / 1e6;
    double SelfMs = static_cast<double>(A.SelfNs) / 1e6;
    double MeanMs = TotalMs / static_cast<double>(A.Count);
    double Share = GrandTotalNs
                       ? static_cast<double>(A.TotalNs) /
                             static_cast<double>(GrandTotalNs)
                       : 0.0;
    Table.addRow({Name, std::to_string(A.Count),
                  TextTable::formatDouble(TotalMs, 2),
                  TextTable::formatDouble(SelfMs, 2),
                  TextTable::formatDouble(MeanMs, 3),
                  TextTable::formatPercent(Share, 1)});
  }
  return Table.render();
}

#else // !NAMER_TELEMETRY

std::string telemetry::chromeTraceJson() {
  return "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string telemetry::statsJson(const RunMeta &Meta) {
  std::string Out = "{\n  \"meta\": {\n";
  Out += "    \"git_rev\": \"" + jsonEscape(Meta.GitRev) + "\",\n";
  Out += "    \"hardware_concurrency\": " +
         std::to_string(Meta.HardwareConcurrency) + ",\n";
  Out += "    \"schema_version\": " + std::to_string(kStatsSchemaVersion) +
         ",\n";
  Out += "    \"telemetry_compiled\": false,\n";
  Out += "    \"threads\": " + std::to_string(Meta.Threads) + ",\n";
  Out += "    \"tool\": \"" + jsonEscape(Meta.Tool) + "\"\n  },\n";
  Out += "  \"counters\": {},\n  \"spans\": {}";
  for (const auto &[Key, RawJson] : Meta.Extra)
    Out += ",\n  \"" + jsonEscape(Key) + "\": " + RawJson;
  Out += "\n}\n";
  return Out;
}

std::string telemetry::prometheusText(const PromExportOptions &Opts) {
  std::string Out = "# namer prometheus text exposition (stats schema 1)\n";
  Out += "# telemetry compiled out\n";
  if (!Opts.GitRev.empty())
    Out += "# TYPE namer_build_info gauge\nnamer_build_info{git_rev=\"" +
           promLabelEscape(Opts.GitRev) + "\",telemetry=\"off\"} 1\n";
  return Out;
}

std::string telemetry::summaryTable() {
  return "(telemetry compiled out: rebuild with -DNAMER_TELEMETRY=ON)\n";
}

#endif // NAMER_TELEMETRY
