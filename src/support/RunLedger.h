//===- support/RunLedger.h - Append-only run event log ----------*- C++ -*-==//
///
/// \file
/// The run ledger is the pipeline's flight recorder: an append-only JSONL
/// file with one record per operationally interesting event -- run
/// start/end, each pipeline phase, each quarantined file, each model
/// save/load, each watchdog stall. A service tails it for per-run
/// attribution; tests replay it to assert phase order and outcomes.
///
/// Format (one JSON object per line, keys emitted in sorted order so the
/// file is byte-stable):
///
///   {"detail":"...","duration_us":N,"event":"phase","name":"pipeline.scan",
///    "outcome":"ok","rss_delta_kb":N,"run_id":"...","schema_version":1,
///    "seq":N}
///
/// * `detail` is free-form context (quarantine reason, model path) and is
///   omitted entirely when empty.
/// * `run_id` identifies the producing run: git revision + an FNV hash of
///   the pipeline configuration (makeRunId), so ledgers from different
///   binaries or configs never alias.
/// * `seq` is the record's position (0-based). Appends go through one
///   mutex and the pipeline only writes ledger records from its sequential
///   commit loops (PR 4 convention), so record order -- and therefore the
///   whole file -- is deterministic under any thread count.
///
/// Works in both build modes: durations are stamped through
/// telemetry::nowNanos() (injectable), RSS through memory::currentRssKb()
/// (injectable), neither of which requires NAMER_TELEMETRY.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_RUNLEDGER_H
#define NAMER_SUPPORT_RUNLEDGER_H

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace namer {
namespace ledger {

/// Schema version written into every record; bumped on key rename/removal.
inline constexpr int kLedgerSchemaVersion = 1;

/// One ledger event, before run_id/schema_version/seq stamping.
struct Record {
  /// Event class: "run_start", "phase", "quarantine", "model_load",
  /// "model_save", "stall", "run_end".
  std::string Event;
  /// Event subject: phase name, quarantined file path, model path, span
  /// name.
  std::string Name;
  /// "ok" or a failure/category word (quarantine reason class, model error
  /// kind).
  std::string Outcome = "ok";
  /// Wall time the event covered, microseconds (0 for instantaneous
  /// events).
  uint64_t DurationUs = 0;
  /// Peak-RSS growth across the event, KiB (0 when unknown).
  int64_t RssDeltaKb = 0;
  /// Optional free-form context; omitted from the JSON when empty.
  std::string Detail;
};

/// Append-only JSONL writer. Thread-safe (one internal mutex); every append
/// is flushed so a crash loses at most the record being written. Not
/// copyable; close() (or destruction) ends the file.
class RunLedger {
public:
  RunLedger() = default;
  ~RunLedger();
  RunLedger(const RunLedger &) = delete;
  RunLedger &operator=(const RunLedger &) = delete;

  /// "<git-rev>-<16 hex digits of config hash>": the run identity stamped
  /// into every record.
  static std::string makeRunId(std::string_view GitRev, uint64_t ConfigHash);

  /// Opens (truncates) \p Path and stamps subsequent records with
  /// \p RunId. Returns false when the file cannot be created.
  bool open(const std::string &Path, std::string RunId);

  bool isOpen() const;

  /// Appends one record (stamped with run_id/schema_version/seq) and
  /// flushes. No-op when the ledger is not open. Also counted in
  /// `ledger.records`.
  void append(const Record &R);

  /// Records appended so far.
  uint64_t records() const;

  const std::string &runId() const { return RunId; }

  /// Flushes and closes the file; further appends are dropped.
  void close();

private:
  mutable std::mutex M;
  std::FILE *File = nullptr;
  std::string RunId;
  uint64_t Seq = 0;
};

} // namespace ledger
} // namespace namer

#endif // NAMER_SUPPORT_RUNLEDGER_H
