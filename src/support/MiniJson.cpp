//===- support/MiniJson.cpp -----------------------------------------------==//

#include "support/MiniJson.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace namer;
using namespace namer::json;

const Value *Value::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

const Value *Value::findPath(std::string_view DottedPath) const {
  const Value *Cur = this;
  while (Cur && !DottedPath.empty()) {
    size_t Dot = DottedPath.find('.');
    std::string_view Head = DottedPath.substr(0, Dot);
    Cur = Cur->find(Head);
    if (Dot == std::string_view::npos)
      break;
    DottedPath.remove_prefix(Dot + 1);
  }
  return Cur;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-bounded so a
/// crafted deeply-nested document cannot blow the stack (same defensive
/// posture as the frontend's bounded nesting, PR 4).
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> run() {
    Value V;
    if (!parseValue(V, 0))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing garbage after document");
      return std::nullopt;
    }
    return V;
  }

private:
  static constexpr int kMaxDepth = 64;

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;

  bool fail(const char *Msg) {
    if (Error && Error->empty())
      *Error = std::string(Msg) + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos != Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                  Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos != Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.substr(Pos, Len) != Word)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos == Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = Value::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, int Depth) {
    Out.K = Value::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      if (Pos == Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Value Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, int Depth) {
    Out.K = Value::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      Value Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.Arr.push_back(std::move(Element));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (true) {
      if (Pos == Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid hex digit in \\u escape");
        }
        // UTF-8 encode the BMP code point; surrogate pairs are passed
        // through as two 3-byte sequences (the documents we read never
        // contain astral-plane text, and lossless round-trip is not a
        // goal of this reader).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos != Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      size_t N = 0;
      while (Pos != Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    if (Digits() == 0)
      return fail("invalid number");
    if (Pos != Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Digits() == 0)
        return fail("digits required after decimal point");
    }
    if (Pos != Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos != Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Digits() == 0)
        return fail("digits required in exponent");
    }
    std::string Buf(Text.substr(Start, Pos - Start));
    Out.K = Value::Kind::Number;
    Out.Num = std::strtod(Buf.c_str(), nullptr);
    if (!std::isfinite(Out.Num))
      return fail("number out of range");
    return true;
  }
};

} // namespace

std::optional<Value> json::parse(std::string_view Text, std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}
