//===- support/Arena.h - Slab arena and zero-copy file mapping --*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator over geometrically growing slabs, used by the ingest
/// path to keep per-worker allocations contiguous: file contents, copied
/// strings and other ingest-lifetime byte buffers land in a handful of
/// large slabs instead of one heap allocation per object. Everything is
/// freed at once when the arena dies; there is no per-object free.
///
/// The arena also owns file mappings: mapFile() mmaps a file read-only
/// (zero-copy -- the kernel pages the bytes in on demand) and falls back to
/// a plain read() into arena storage on platforms or filesystems where mmap
/// fails. Views returned by mapFile()/copyString() stay valid for the
/// arena's lifetime.
///
/// Thread model: an Arena is single-threaded (one per worker). Telemetry
/// counters (`arena.*`) are global sums and safe to record from any number
/// of arenas concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_ARENA_H
#define NAMER_SUPPORT_ARENA_H

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace namer {

class Arena {
public:
  /// Slabs double from FirstSlabBytes up to MaxSlabBytes; requests larger
  /// than MaxSlabBytes get a dedicated slab of exactly the requested size.
  static constexpr size_t FirstSlabBytes = 64 * 1024;
  static constexpr size_t MaxSlabBytes = 4 * 1024 * 1024;

  Arena() = default;
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Size bytes aligned to \p Align (a power of two). Never
  /// returns null; the bytes are uninitialized.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t));

  /// Copies \p Text into the arena; the returned view stays valid for the
  /// arena's lifetime.
  std::string_view copyString(std::string_view Text);

  /// One mapped (or read) file.
  struct FileMapping {
    std::string_view Contents;
    bool Mmapped = false; ///< true: kernel mapping; false: read() fallback
  };

  /// Maps \p Path read-only. Tries mmap first (zero-copy) and falls back to
  /// reading the file into arena storage; \p AllowMmap false forces the
  /// fallback path (tests and platforms without mmap). Returns nullopt when
  /// the file cannot be opened or read.
  std::optional<FileMapping> mapFile(const std::string &Path,
                                     bool AllowMmap = true);

  // --- Statistics -------------------------------------------------------
  /// Bytes handed out by allocate()/copyString(), including alignment skips.
  size_t bytesAllocated() const { return Allocated; }
  /// Bytes reserved in slabs (>= bytesAllocated(); excludes mmap regions).
  size_t bytesReserved() const { return Reserved; }
  size_t numSlabs() const { return Slabs.size(); }
  size_t numMappings() const { return Mappings.size(); }

private:
  struct Slab {
    std::unique_ptr<char[]> Data;
    size_t Size = 0;
    size_t Used = 0;
  };
  /// An active mmap region, unmapped in the destructor.
  struct Mapping {
    void *Addr = nullptr;
    size_t Len = 0;
  };

  /// Appends a slab with room for at least \p MinBytes.
  Slab &addSlab(size_t MinBytes);

  std::vector<Slab> Slabs;
  std::vector<Mapping> Mappings;
  size_t Allocated = 0;
  size_t Reserved = 0;
};

} // namespace namer

#endif // NAMER_SUPPORT_ARENA_H
