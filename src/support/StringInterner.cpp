//===- support/StringInterner.cpp -----------------------------------------==//

#include "support/StringInterner.h"

#include "support/Hashing.h"
#include "support/Profiler.h"
#include "support/Telemetry.h"

#include <bit>
#include <cassert>

using namespace namer;

StringInterner::StringInterner() {
  Symbol Eps = intern("<eps>");
  (void)Eps;
  assert(Eps == EpsilonSymbol && "epsilon must be the first symbol");
}

StringInterner::~StringInterner() {
  for (auto &Seg : Segments)
    delete[] Seg.load(std::memory_order_relaxed);
}

size_t StringInterner::shardIndex(std::string_view Text) {
  return static_cast<size_t>(hashString(Text)) & (NumShards - 1);
}

std::pair<size_t, size_t> StringInterner::locate(Symbol S) {
  // Segment k covers [FirstSegmentSize*(2^k - 1), FirstSegmentSize*(2^(k+1)
  // - 1)): geometric growth keeps the directory array small and fixed.
  size_t Q = S / FirstSegmentSize + 1;
  size_t K = std::bit_width(Q) - 1;
  size_t Offset = S - FirstSegmentSize * ((size_t(1) << K) - 1);
  return {K, Offset};
}

void StringInterner::publish(Symbol S, const std::string *Str) {
  auto [K, Offset] = locate(S);
  assert(K < MaxSegments && "symbol space exhausted");
  std::atomic<const std::string *> *Seg =
      Segments[K].load(std::memory_order_acquire);
  if (!Seg) {
    std::lock_guard<std::mutex> L(SegmentAllocM);
    Seg = Segments[K].load(std::memory_order_relaxed);
    if (!Seg) {
      // Value-initialized: every slot starts null.
      Seg = new std::atomic<const std::string *>[segmentSize(K)]();
      prof::noteAllocBytes(segmentSize(K) *
                           sizeof(std::atomic<const std::string *>));
      Segments[K].store(Seg, std::memory_order_release);
    }
  }
  Seg[Offset].store(Str, std::memory_order_release);
}

Symbol StringInterner::intern(std::string_view Text) {
  Shard &Sh = Shards[shardIndex(Text)];
#if NAMER_TELEMETRY
  // A failed try_lock means another thread holds this shard right now:
  // `interner.shard_contention` counts how often the 16-way striping was
  // not enough to keep concurrent interning lock-free in practice.
  std::unique_lock<std::mutex> L(Sh.M, std::try_to_lock);
  if (!L.owns_lock()) {
    telemetry::count("interner.shard_contention");
    // Contended path only: time the blocking acquisition and attribute it
    // to the active span (`lock.wait_us.<span>`), so the profiler shows
    // which stage actually pays for shard contention.
    uint64_t WaitStart = telemetry::nowNanos();
    L.lock();
    prof::noteLockWait(telemetry::currentSpanName(),
                       telemetry::nowNanos() - WaitStart);
  }
#else
  std::lock_guard<std::mutex> L(Sh.M);
#endif
  return internLocked(Sh, Text);
}

Symbol StringInterner::internLocked(Shard &Sh, std::string_view Text) {
  auto It = Sh.Map.find(Text);
  if (It != Sh.Map.end())
    return It->second;
  Sh.Texts.emplace_back(Text);
  const std::string &Stored = Sh.Texts.back();
  Symbol S = NextSymbol.fetch_add(1, std::memory_order_acq_rel);
  // Publish the reverse mapping before the map entry becomes visible:
  // any thread that learns S (through the map under this shard's lock, or
  // through a synchronizing hand-off of the return value) can resolve
  // text(S).
  publish(S, &Stored);
  Sh.Map.emplace(std::string_view(Stored), S);
  return S;
}

StringInterner::BatchHandle::~BatchHandle() {
  // A handle that interned anything was one batched stretch, on top of any
  // explicit internBatch() calls it served.
  if (Strings)
    ++Batches;
  // One registry lookup per handle instead of one per token.
  if (Batches)
    telemetry::count("interner.batch.batches", Batches);
  if (Strings)
    telemetry::count("interner.batch.strings", Strings);
  if (CacheHits)
    telemetry::count("interner.batch.cache_hits", CacheHits);
  if (ShardLocks)
    telemetry::count("interner.batch.shard_locks", ShardLocks);
}

Symbol StringInterner::BatchHandle::intern(std::string_view Text) {
  ++Strings;
  auto It = Cache.find(Text);
  if (It != Cache.end()) {
    ++CacheHits;
    return It->second;
  }
  ++ShardLocks;
  Symbol S = Interner.intern(Text);
  // Key on the interner's stable storage, not the caller's buffer.
  Cache.emplace(Interner.text(S), S);
  return S;
}

void StringInterner::BatchHandle::internBatch(
    const std::vector<std::string_view> &Texts, std::vector<Symbol> &Out) {
  ++Batches;
  Strings += Texts.size();
  Out.resize(Texts.size());

  // Pass 1: serve cache hits; bucket the misses by target shard.
  std::array<std::vector<size_t>, NumShards> MissByShard;
  for (size_t I = 0; I != Texts.size(); ++I) {
    auto It = Cache.find(Texts[I]);
    if (It != Cache.end()) {
      ++CacheHits;
      Out[I] = It->second;
    } else {
      MissByShard[shardIndex(Texts[I])].push_back(I);
    }
  }

  // Pass 2: one lock acquisition per touched shard resolves all of that
  // shard's misses.
  for (size_t ShIdx = 0; ShIdx != NumShards; ++ShIdx) {
    const std::vector<size_t> &Misses = MissByShard[ShIdx];
    if (Misses.empty())
      continue;
    ++ShardLocks;
    Shard &Sh = Interner.Shards[ShIdx];
    std::lock_guard<std::mutex> L(Sh.M);
    for (size_t I : Misses)
      Out[I] = Interner.internLocked(Sh, Texts[I]);
  }
  for (size_t ShIdx = 0; ShIdx != NumShards; ++ShIdx)
    for (size_t I : MissByShard[ShIdx])
      Cache.emplace(Interner.text(Out[I]), Out[I]);
}

size_t StringInterner::bytesUsed() const {
  size_t Bytes = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> L(Sh.M);
    for (const std::string &S : Sh.Texts) {
      Bytes += sizeof(std::string);
      // Only out-of-line storage allocates (SSO keeps short names inline).
      if (S.capacity() > sizeof(std::string))
        Bytes += S.capacity() + 1;
    }
    // One hash node (string_view key + symbol + next pointer) per entry
    // plus the bucket array.
    Bytes += Sh.Map.size() *
             (sizeof(std::pair<std::string_view, Symbol>) + sizeof(void *));
    Bytes += Sh.Map.bucket_count() * sizeof(void *);
  }
  // The symbol -> text directory: each allocated segment is an array of
  // atomic pointers.
  for (size_t K = 0; K != MaxSegments; ++K)
    if (Segments[K].load(std::memory_order_acquire))
      Bytes += segmentSize(K) * sizeof(std::atomic<const std::string *>);
  return Bytes;
}

Symbol StringInterner::lookup(std::string_view Text) const {
  const Shard &Sh = Shards[shardIndex(Text)];
  std::lock_guard<std::mutex> L(Sh.M);
  auto It = Sh.Map.find(Text);
  return It == Sh.Map.end() ? EpsilonSymbol : It->second;
}

bool StringInterner::contains(std::string_view Text) const {
  const Shard &Sh = Shards[shardIndex(Text)];
  std::lock_guard<std::mutex> L(Sh.M);
  return Sh.Map.find(Text) != Sh.Map.end();
}

std::string_view StringInterner::text(Symbol S) const {
  assert(S < size() && "symbol out of range");
  auto [K, Offset] = locate(S);
  std::atomic<const std::string *> *Seg =
      Segments[K].load(std::memory_order_acquire);
  assert(Seg && "segment of a live symbol must exist");
  const std::string *Str = Seg[Offset].load(std::memory_order_acquire);
  assert(Str && "symbol published before its text");
  return *Str;
}
