//===- support/StringInterner.cpp -----------------------------------------==//

#include "support/StringInterner.h"

#include <cassert>

using namespace namer;

StringInterner::StringInterner() {
  Texts.emplace_back("<eps>");
  Map.emplace(Texts.back(), EpsilonSymbol);
}

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Map.find(Text);
  if (It != Map.end())
    return It->second;
  Texts.emplace_back(Text);
  Symbol S = static_cast<Symbol>(Texts.size() - 1);
  Map.emplace(Texts.back(), S);
  return S;
}

Symbol StringInterner::lookup(std::string_view Text) const {
  auto It = Map.find(Text);
  return It == Map.end() ? EpsilonSymbol : It->second;
}

bool StringInterner::contains(std::string_view Text) const {
  return Map.find(Text) != Map.end();
}

std::string_view StringInterner::text(Symbol S) const {
  assert(S < Texts.size() && "symbol out of range");
  return Texts[S];
}
