//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, compile-time-gated fault-injection registry used to prove the
/// ingestion pipeline's fault-tolerance contract: with faults forced on
/// specific files, `NamerPipeline::build` must quarantine exactly those
/// files and emit bitwise-identical output over the survivors at every
/// thread count.
///
/// **Gate.** Everything here is compiled out unless `NAMER_FAULT_INJECTION`
/// is 1 (CMake option of the same name, default OFF; the `asan` preset
/// turns it ON). In the OFF configuration every call below is an empty
/// inline body — production binaries carry no registry, no thread-local
/// key, and no branch at the sites.
///
/// **Sites.** Instrumented code calls `fire("<site>")` at a named point;
/// the convention is the owning span name (`lex.python`, `parse.java`,
/// `pipeline.ingest`, `pipeline.histmine`). Whether a site fires is a pure
/// function of (site, current key, armed rules) — never of scheduling —
/// so injection decisions are identical at Threads=1 and Threads=8.
///
/// **Keys.** The pipeline scopes each worker task with a `ScopedKey`
/// naming the unit of work (the file path during ingest, the commit index
/// during history mining); sites read the thread-local key. Tests arm
/// exact (site, key) pairs, or seed a pseudo-random rule that selects keys
/// by `hash(seed, site, key)` — deterministic across runs and schedules.
///
/// **Kinds.** `Throw` makes the site throw `InjectedFault` (exercising
/// worker-exception attribution); `Timeout` and `BudgetExhausted` are
/// returned from `fire()` for the ingest site to map onto its deadline /
/// budget error paths.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_FAULTINJECTOR_H
#define NAMER_SUPPORT_FAULTINJECTOR_H

#ifndef NAMER_FAULT_INJECTION
#define NAMER_FAULT_INJECTION 0
#endif

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace namer {
namespace faultinject {

/// What an armed site does when it fires.
enum class FaultKind : uint8_t {
  Throw,           ///< site throws InjectedFault
  Timeout,         ///< ingest maps this to its deadline-exceeded path
  BudgetExhausted, ///< ingest maps this to its resource-budget path
};

/// Thrown by a site armed with FaultKind::Throw. Defined unconditionally
/// so catch clauses compile in both configurations.
class InjectedFault : public std::runtime_error {
public:
  InjectedFault(std::string Site, std::string Key)
      : std::runtime_error("injected fault at " + Site + " [" + Key + "]"),
        SiteName(std::move(Site)), KeyName(std::move(Key)) {}
  const std::string &site() const { return SiteName; }
  const std::string &key() const { return KeyName; }

private:
  std::string SiteName, KeyName;
};

#if NAMER_FAULT_INJECTION

/// Arms one exact (site, key) pair. Replaces any previous rule for it.
void arm(std::string_view Site, std::string_view Key, FaultKind Kind);

/// Arms a seeded rule on \p Site: a key fires iff
/// hash(Seed, Site, key) mod 1e6 < Rate * 1e6. Deterministic in the key,
/// independent of call order and thread count.
void armSeeded(std::string_view Site, uint64_t Seed, double Rate,
               FaultKind Kind);

/// Removes every armed rule and zeroes the fired counter.
void disarm();

/// Sets the calling thread's current work-unit key ("" clears).
void setKey(std::string_view Key);

/// RAII key scope for one worker task.
class ScopedKey {
public:
  explicit ScopedKey(std::string_view Key);
  ~ScopedKey();
  ScopedKey(const ScopedKey &) = delete;
  ScopedKey &operator=(const ScopedKey &) = delete;

private:
  std::string Saved;
};

/// The site check. Returns the armed kind for (Site, current key) if any;
/// throws InjectedFault instead when that kind is Throw. \p Site must be a
/// string literal (stored by pointer in rules lookups, copied on fire).
std::optional<FaultKind> fire(const char *Site);

/// Number of times any site fired since the last disarm().
uint64_t firedCount();

constexpr bool compiledIn() { return true; }

#else // !NAMER_FAULT_INJECTION: all no-ops, compiled out entirely.

inline void arm(std::string_view, std::string_view, FaultKind) {}
inline void armSeeded(std::string_view, uint64_t, double, FaultKind) {}
inline void disarm() {}
inline void setKey(std::string_view) {}

class ScopedKey {
public:
  explicit ScopedKey(std::string_view) {}
};

inline std::optional<FaultKind> fire(const char *) { return std::nullopt; }
inline uint64_t firedCount() { return 0; }

constexpr bool compiledIn() { return false; }

#endif // NAMER_FAULT_INJECTION

} // namespace faultinject
} // namespace namer

#endif // NAMER_SUPPORT_FAULTINJECTOR_H
