//===- support/Rng.h - Deterministic random number generation ---*- C++ -*-==//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by the corpus
/// generator, the ML cross-validation shuffles and the neural baselines.
/// Determinism across platforms matters because every benchmark in bench/
/// must regenerate the same corpus and reach the same table rows.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_RNG_H
#define NAMER_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace namer {

/// SplitMix64 generator. Deliberately not std::mt19937: the standard
/// distributions are implementation-defined, which would make bench output
/// differ across standard libraries.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t bounded(uint64_t Bound) {
    assert(Bound > 0 && "bounded() requires a positive bound");
    // Multiply-shift; bias is negligible for the bounds used here.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(bounded(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic).
  double normal() {
    double U1 = uniform(), U2 = uniform();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(U1)) *
           __builtin_cos(6.283185307179586 * U2);
  }

  /// Picks an index in [0, Weights.size()) with probability proportional to
  /// Weights[i]. Weights must be non-negative with a positive sum.
  size_t weighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights)
      Total += W;
    assert(Total > 0 && "weighted() requires positive total weight");
    double X = uniform() * Total;
    for (size_t I = 0, E = Weights.size(); I != E; ++I) {
      X -= Weights[I];
      if (X < 0)
        return I;
    }
    return Weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(bounded(I));
      using std::swap;
      swap(V[I - 1], V[J]);
    }
  }

  /// Forks an independent stream; used to give each repository / fold / model
  /// its own generator so changes in one consumer don't shift another.
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

private:
  uint64_t State;
};

} // namespace namer

#endif // NAMER_SUPPORT_RNG_H
