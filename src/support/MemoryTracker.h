//===- support/MemoryTracker.h - Process memory accounting ------*- C++ -*-==//
///
/// \file
/// Resident-set accounting for the observability layer. On Linux the
/// current and peak RSS come from /proc/self/status (VmRSS / VmHWM); on
/// platforms without procfs both report 0 rather than guessing -- callers
/// treat 0 as "unavailable". A test hook replaces the source so ledger RSS
/// deltas become deterministic.
///
/// sampleGauges() publishes the process numbers together with the
/// allocator-level byte counters the pipeline already maintains
/// (`arena.bytes`, `model.bytes`) as `mem.*` gauges; the pipeline calls it
/// at phase boundaries so stats documents carry a memory profile per run.
/// Available in both build modes (gauge writes no-op when telemetry is
/// compiled out, RSS reads still work for the run ledger).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_MEMORYTRACKER_H
#define NAMER_SUPPORT_MEMORYTRACKER_H

#include <cstdint>

namespace namer {
namespace memory {

/// Current resident set size in KiB; 0 when unavailable.
uint64_t currentRssKb();

/// Peak ("high water mark") resident set size in KiB; 0 when unavailable.
uint64_t peakRssKb();

/// Replaces the RSS source with fakes (nullptr restores /proc). With a
/// constant source, ledger rss_delta_kb fields are byte-stable across runs
/// and thread counts (`namer-scan --deterministic-obs`).
void setRssSourceForTest(uint64_t (*Current)(), uint64_t (*Peak)());

/// Samples every memory gauge at once:
///   mem.current_rss_kb / mem.peak_rss_kb  -- process RSS (this header)
///   mem.arena_bytes                       -- mirror of `arena.bytes`
///   mem.model_mmap_bytes                  -- mirror of `model.bytes`
/// The mirrors re-publish existing counters as gauges so one Prometheus
/// family (`namer_mem_*`) carries the whole memory picture.
void sampleGauges();

} // namespace memory
} // namespace namer

#endif // NAMER_SUPPORT_MEMORYTRACKER_H
