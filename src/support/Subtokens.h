//===- support/Subtokens.h - Identifier subtoken splitting ------*- C++ -*-==//
///
/// \file
/// Splits identifier names into subtokens following the standard naming
/// conventions the paper relies on (Section 3.1, transformation step 3):
/// camelCase, PascalCase, snake_case, SCREAMING_SNAKE_CASE and digit
/// boundaries. "assertTrue" -> ["assert", "True"]; "rotate_angle" ->
/// ["rotate", "angle"]; "HTTPServer2" -> ["HTTP", "Server", "2"].
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_SUBTOKENS_H
#define NAMER_SUPPORT_SUBTOKENS_H

#include <string>
#include <string_view>
#include <vector>

namespace namer {

/// Splits \p Name into subtokens at underscores, lower-to-upper case
/// transitions, acronym boundaries (the "P" in "HTTPParser") and
/// letter/digit boundaries. Underscores are dropped. A name with no interior
/// boundary yields a single subtoken equal to the name itself; an empty or
/// all-underscore name yields an empty vector.
std::vector<std::string> splitSubtokens(std::string_view Name);

/// splitSubtokens without copying: every subtoken is a contiguous substring
/// of \p Name (boundaries only ever separate; no case transformation), so
/// the result views into \p Name's storage. Valid only while that storage
/// lives -- the zero-copy ingest path uses this over arena-backed sources.
std::vector<std::string_view> splitSubtokenViews(std::string_view Name);

/// Number of subtokens splitSubtokens(\p Name) would produce, without
/// allocating. Used to pre-size node storage before AST+ expansion.
size_t countSubtokens(std::string_view Name);

/// Joins \p Subtokens back into an identifier in the style of \p Like:
/// snake_case if \p Like contains an underscore or is all lowercase,
/// camelCase otherwise. Used to render suggested fixes.
std::string joinSubtokensLike(const std::vector<std::string> &Subtokens,
                              std::string_view Like);

/// Returns true if \p Name is written in snake_case (or is a single
/// all-lowercase word).
bool isSnakeCase(std::string_view Name);

} // namespace namer

#endif // NAMER_SUPPORT_SUBTOKENS_H
