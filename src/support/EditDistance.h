//===- support/EditDistance.h - Levenshtein distance ------------*- C++ -*-==//
///
/// \file
/// Levenshtein edit distance between identifier names. Feature 16 of the
/// defect classifier (Table 1): small distances between the original and the
/// suggested name indicate likely typos and raise issue probability.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_EDITDISTANCE_H
#define NAMER_SUPPORT_EDITDISTANCE_H

#include <cstddef>
#include <string_view>

namespace namer {

/// Returns the Levenshtein distance (unit-cost insert/delete/substitute)
/// between \p A and \p B.
size_t editDistance(std::string_view A, std::string_view B);

} // namespace namer

#endif // NAMER_SUPPORT_EDITDISTANCE_H
