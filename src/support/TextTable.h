//===- support/TextTable.h - Aligned console tables -------------*- C++ -*-==//
///
/// \file
/// Renders the paper's result tables (Tables 2, 4, 5, 8-11) as aligned
/// plain-text tables on stdout. Benchmarks print through this so the rows
/// visually match the paper layout.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_SUPPORT_TEXTTABLE_H
#define NAMER_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace namer {

/// Accumulates rows of cells and renders them with column alignment.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table; every column is padded to its widest cell.
  std::string render() const;

  /// Formats a double with \p Decimals fractional digits.
  static std::string formatDouble(double Value, int Decimals = 2);

  /// Formats a ratio as a percent string, e.g. "70%".
  static std::string formatPercent(double Ratio, int Decimals = 0);

private:
  static constexpr const char *SeparatorMark = "\x01--";
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace namer

#endif // NAMER_SUPPORT_TEXTTABLE_H
