//===- pattern/NamePattern.h - Name patterns (Section 3.2) ------*- C++ -*-==//
///
/// \file
/// A name pattern is a pair (condition C, deduction D) of name path sets
/// (Definition 3.6). Namer mines two kinds:
///
///   * consistency patterns (Definition 3.7): D = {d1, d2}, both symbolic;
///     a matching statement must name the two positions identically;
///   * confusing word patterns (Definition 3.9): D = {d}, concrete, whose
///     end is the "correct" word of a mined confusing word pair.
///
/// This header defines the pattern type and the match / satisfaction /
/// violation evaluation against a statement's name paths.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_PATTERN_NAMEPATTERN_H
#define NAMER_PATTERN_NAMEPATTERN_H

#include "namepath/NamePath.h"

#include <string>
#include <vector>

namespace namer {

enum class PatternKind : uint8_t { Consistency, ConfusingWord };

/// Dense id of a pattern within a mined pattern set.
using PatternId = uint32_t;

struct NamePattern {
  PatternKind Kind;
  /// Concrete paths that must all be present for the pattern to match,
  /// sorted by NamePathTable::less.
  std::vector<PathId> Condition;
  /// Consistency: two symbolic paths. ConfusingWord: one concrete path.
  std::vector<PathId> Deduction;
  /// Occurrence count at the generating FP-tree node.
  uint32_t Support = 0;
  /// Dataset-wide statistics filled by pruneUncommon; these feed the
  /// classifier's "entire mining dataset" features (Table 1, rows 6/9/12).
  uint32_t DatasetMatches = 0;
  uint32_t DatasetSatisfactions = 0;
  uint32_t DatasetViolations = 0;

  /// Satisfactions / matches over the mining dataset; 0 when never matched.
  double datasetSatisfactionRate() const {
    return DatasetMatches == 0
               ? 0.0
               : static_cast<double>(DatasetSatisfactions) / DatasetMatches;
  }

  friend bool operator==(const NamePattern &A, const NamePattern &B) {
    return A.Kind == B.Kind && A.Condition == B.Condition &&
           A.Deduction == B.Deduction;
  }
};

/// Outcome of evaluating one pattern against one statement.
enum class MatchResult : uint8_t {
  NoMatch,   ///< the statement does not match the pattern
  Satisfied, ///< matches and conforms to the naming idiom
  Violated,  ///< matches but contradicts the deduction: potential issue
};

/// Evaluates \p Pattern against statement \p Stmt (Definitions 3.6, 3.7,
/// 3.9).
MatchResult evaluatePattern(const NamePattern &Pattern, const StmtPaths &Stmt,
                            const NamePathTable &Table);

/// The concrete fix a violated pattern implies: change the subtoken found
/// at \p Prefix from \p Original to \p Suggested.
struct SuggestedFix {
  PrefixId Prefix;
  Symbol Original;
  Symbol Suggested;
};

/// Derives the fix for a violation of \p Pattern by \p Stmt. For confusing
/// word patterns the fix replaces the end at the deduction prefix with the
/// correct word; for consistency patterns the second deduction position is
/// renamed to match the first. Must only be called when evaluatePattern
/// returned Violated.
SuggestedFix deriveFix(const NamePattern &Pattern, const StmtPaths &Stmt,
                       const NamePathTable &Table);

/// Human-readable rendering for reports and the bench tables.
std::string formatPattern(const NamePattern &Pattern,
                          const NamePathTable &Table, const AstContext &Ctx);

/// Returns true if the interned path ends in an identifier subtoken (its
/// leaf sits under a NumST node and is not a NUM/STR/BOOL literal token).
/// Consistency deductions are only built over such paths.
bool isNameSubtokenPath(PathId Id, const NamePathTable &Table,
                        const AstContext &Ctx);

} // namespace namer

#endif // NAMER_PATTERN_NAMEPATTERN_H
