//===- pattern/PatternIndex.h - Fast pattern matching -----------*- C++ -*-==//
///
/// \file
/// Inverted index from name paths to the patterns conditioned on them, so
/// evaluating a statement against tens of thousands of mined patterns only
/// touches candidates sharing at least one path. Used both by
/// pruneUncommon (Algorithm 1, line 9) and by the inference pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_PATTERN_PATTERNINDEX_H
#define NAMER_PATTERN_PATTERNINDEX_H

#include "pattern/NamePattern.h"

#include <unordered_map>
#include <utility>
#include <vector>

namespace namer {

/// One evaluation outcome: which pattern, and how the statement relates.
struct PatternHit {
  PatternId Pattern;
  MatchResult Result; // Satisfied or Violated (NoMatch hits are dropped)
};

class PatternIndex {
public:
  /// Builds the index. \p Patterns must outlive the index.
  PatternIndex(const std::vector<NamePattern> &Patterns,
               const NamePathTable &Table);

  /// Appends a PatternHit for every pattern that matches \p Stmt.
  void evaluate(const StmtPaths &Stmt, std::vector<PatternHit> &Out) const;

  const std::vector<NamePattern> &patterns() const { return Patterns; }

private:
  const std::vector<NamePattern> &Patterns;
  const NamePathTable &Table;
  /// Patterns keyed by their first condition path.
  std::unordered_map<PathId, std::vector<PatternId>> ByConditionPath;
  /// Patterns with an empty condition, keyed by first deduction prefix.
  std::unordered_map<PrefixId, std::vector<PatternId>> ByDeductionPrefix;
};

} // namespace namer

#endif // NAMER_PATTERN_PATTERNINDEX_H
