//===- pattern/Miner.h - Mining name patterns (Section 3.3) -----*- C++ -*-==//
///
/// \file
/// Implements Algorithm 1 (minePatterns) and Algorithm 2 (genPatterns):
/// grow an FP-tree from the condition/deduction splits of every statement's
/// name paths, traverse it to generate candidate patterns, then prune
/// uncommon ones by their satisfaction/match ratio over the mining dataset.
///
/// Regularization follows Section 5.1: at most 10 paths per statement,
/// infrequent paths dropped (default: fewer than 10 occurrences), at most
/// 10 condition paths, and a minimum pattern occurrence count.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_PATTERN_MINER_H
#define NAMER_PATTERN_MINER_H

#include "pattern/FPTree.h"
#include "pattern/NamePattern.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace namer {

class ThreadPool;

struct MinerConfig {
  /// Keep only the first k name paths of a statement (Section 5.1).
  size_t MaxPathsPerStmt = 10;
  /// Paths occurring fewer times than this across the dataset are dropped
  /// before splitting (Algorithm 1, line 5 regularization).
  uint32_t MinPathFrequency = 10;
  /// Maximal number of name paths in a condition (Algorithm 2, line 6).
  size_t MaxConditionPaths = 10;
  /// pruneUncommon: minimal occurrence count of a kept pattern. The paper
  /// uses 100 for Python and 500 for Java at GitHub scale; scale with your
  /// corpus.
  uint32_t MinPatternSupport = 100;
  /// pruneUncommon: minimal satisfactions/matches ratio (paper: 0.8).
  double MinSatisfactionRatio = 0.8;
  /// Algorithm 2 enumerates combinations of condition paths at each
  /// generation point. FullOnly emits just the full condition (the
  /// behavior of Figure 3(b)); LeaveOneOut adds every condition missing
  /// one path (a bounded form of the combination enumeration that lets a
  /// pattern generalize past one co-varying path); AllSubsets enumerates
  /// every subset, bounded by MaxPatternsPerNode.
  enum class ConditionPolicy : uint8_t { FullOnly, LeaveOneOut, AllSubsets };
  ConditionPolicy Conditions = ConditionPolicy::LeaveOneOut;
  size_t MaxPatternsPerNode = 64;
  /// build(): number of partial FP-trees grown in parallel before the
  /// canonical merge. Any value >= 1 yields bitwise identical patterns
  /// (the merge is order-independent); more shards expose more mining
  /// parallelism at the cost of duplicated prefixes across shards.
  size_t MineShards = 8;
};

/// Mines one kind of name pattern from a stream of statements. Usage:
///
///   PatternMiner Miner(Kind, Table, Ctx, Config);
///   for (stmt : dataset) Miner.countPaths(stmt);     // pass 1
///   for (stmt : dataset) Miner.addStatement(stmt);   // pass 2 (FP-tree)
///   auto Patterns = Miner.generate();
///   Patterns = Miner.pruneUncommon(std::move(Patterns), dataset);
class PatternMiner {
public:
  PatternMiner(PatternKind Kind, NamePathTable &Table, const AstContext &Ctx,
               MinerConfig Config = MinerConfig());

  /// Sets the correct-word vocabulary for confusing word mining: paths
  /// whose end is a correct word of some mined confusing pair become
  /// deduction candidates (Definition 3.9).
  void setCorrectWords(std::unordered_set<Symbol> Words) {
    CorrectWords = std::move(Words);
  }

  /// Pass 1: accumulate path frequencies for the regularization filter.
  void countPaths(const StmtPaths &Stmt);

  /// Pass 2: split the statement's paths into condition/deduction in every
  /// admissible way and update the FP-tree (Algorithm 1, lines 4-7).
  void addStatement(const StmtPaths &Stmt);

  /// Runs both passes over \p Dataset at once, sharded: statements are
  /// partitioned by a deterministic hash of their first (smallest under
  /// NamePathTable::less) regularized path, one partial FP-tree is grown
  /// per shard -- in parallel when \p Pool is non-null -- and the partial
  /// trees are folded into the miner's tree with FPTree::merge. Because
  /// the merge sums counts and ORs isLast flags, and generate() orders its
  /// traversal and output canonically, the patterns are bitwise identical
  /// to the two-pass sequential protocol at every shard and worker count.
  void build(const std::vector<StmtPaths> &Dataset, ThreadPool *Pool = nullptr);

  /// Traverses the FP-tree and generates candidate patterns (Algorithm 2),
  /// deduplicated with summed support.
  std::vector<NamePattern> generate();

  /// Algorithm 1, line 9: keeps patterns whose occurrence count and
  /// satisfaction ratio over \p Dataset pass the config thresholds, and
  /// fills in the dataset-level statistics. When \p Pool is non-null the
  /// per-statement evaluation fans out over its workers; the per-pattern
  /// counters are summed from per-chunk accumulators, so the result is
  /// identical at every worker count.
  std::vector<NamePattern>
  pruneUncommon(std::vector<NamePattern> Patterns,
                const std::vector<StmtPaths> &Dataset,
                ThreadPool *Pool = nullptr) const;

  const FPTree &tree() const { return Tree; }

private:
  /// Returns the statement's paths after the frequency filter and the
  /// first-k truncation.
  std::vector<PathId> regularizedPaths(const StmtPaths &Stmt) const;

  /// addStatement() body targeting an explicit tree; thread-safe for
  /// distinct trees (reads the path table and frequencies, writes only
  /// \p Target), which is what lets build() grow shards in parallel.
  void addStatementTo(FPTree &Target, const StmtPaths &Stmt) const;

  void genFromNode(FPTree::FPNodeId Node, std::vector<PathId> &Visited,
                   std::vector<NamePattern> &Out) const;
  void emitPatterns(const std::vector<PathId> &Visited, uint32_t Count,
                    std::vector<NamePattern> &Out) const;

  PatternKind Kind;
  NamePathTable &Table;
  const AstContext &Ctx;
  MinerConfig Config;
  FPTree Tree;
  std::unordered_map<PathId, uint32_t> PathFrequency;
  std::unordered_set<Symbol> CorrectWords;
};

} // namespace namer

#endif // NAMER_PATTERN_MINER_H
