//===- pattern/PatternIndex.cpp -------------------------------------------==//

#include "pattern/PatternIndex.h"

#include <cassert>

using namespace namer;

PatternIndex::PatternIndex(const std::vector<NamePattern> &Patterns,
                           const NamePathTable &Table)
    : Patterns(Patterns), Table(Table) {
  for (PatternId Id = 0; Id != Patterns.size(); ++Id) {
    const NamePattern &P = Patterns[Id];
    if (!P.Condition.empty()) {
      ByConditionPath[P.Condition.front()].push_back(Id);
      continue;
    }
    assert(!P.Deduction.empty() && "pattern without condition or deduction");
    ByDeductionPrefix[Table.prefixOf(P.Deduction.front())].push_back(Id);
  }
}

void PatternIndex::evaluate(const StmtPaths &Stmt,
                            std::vector<PatternHit> &Out) const {
  auto Consider = [&](PatternId Id) {
    MatchResult Result = evaluatePattern(Patterns[Id], Stmt, Table);
    if (Result != MatchResult::NoMatch)
      Out.push_back(PatternHit{Id, Result});
  };
  // Candidates via condition paths present in the statement. A pattern is
  // keyed exactly once (by its first condition path), so no deduplication
  // is needed.
  for (PathId P : Stmt.Paths) {
    auto It = ByConditionPath.find(P);
    if (It == ByConditionPath.end())
      continue;
    for (PatternId Id : It->second)
      Consider(Id);
  }
  // Unconditioned patterns via deduction prefixes.
  for (const auto &[Prefix, End] : Stmt.EndByPrefix) {
    (void)End;
    auto It = ByDeductionPrefix.find(Prefix);
    if (It == ByDeductionPrefix.end())
      continue;
    for (PatternId Id : It->second)
      Consider(Id);
  }
}
