//===- pattern/Miner.cpp --------------------------------------------------==//

#include "pattern/Miner.h"

#include "pattern/PatternIndex.h"
#include "support/Hashing.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace namer;

PatternMiner::PatternMiner(PatternKind Kind, NamePathTable &Table,
                           const AstContext &Ctx, MinerConfig Config)
    : Kind(Kind), Table(Table), Ctx(Ctx), Config(Config) {}

void PatternMiner::countPaths(const StmtPaths &Stmt) {
  size_t Limit = std::min(Stmt.Paths.size(), Config.MaxPathsPerStmt);
  for (size_t I = 0; I != Limit; ++I)
    ++PathFrequency[Stmt.Paths[I]];
}

std::vector<PathId> PatternMiner::regularizedPaths(const StmtPaths &Stmt) const {
  std::vector<PathId> Out;
  size_t Limit = std::min(Stmt.Paths.size(), Config.MaxPathsPerStmt);
  for (size_t I = 0; I != Limit; ++I) {
    PathId P = Stmt.Paths[I];
    auto It = PathFrequency.find(P);
    if (It != PathFrequency.end() && It->second >= Config.MinPathFrequency)
      Out.push_back(P);
  }
  return Out;
}

void PatternMiner::addStatement(const StmtPaths &Stmt) {
  addStatementTo(Tree, Stmt);
}

void PatternMiner::addStatementTo(FPTree &Target,
                                  const StmtPaths &Stmt) const {
  std::vector<PathId> Paths = regularizedPaths(Stmt);
  if (Paths.empty())
    return;
  auto Less = [this](PathId A, PathId B) { return Table.less(A, B); };

  if (Kind == PatternKind::Consistency) {
    // Every pair of name-subtoken paths with equal end nodes is one way to
    // split (Algorithm 1, line 6).
    for (size_t I = 0; I != Paths.size(); ++I) {
      if (!isNameSubtokenPath(Paths[I], Table, Ctx))
        continue;
      for (size_t J = I + 1; J != Paths.size(); ++J) {
        if (Stmt.foldedEndAt(Table.prefixOf(Paths[I])) !=
                Stmt.foldedEndAt(Table.prefixOf(Paths[J])) ||
            !isNameSubtokenPath(Paths[J], Table, Ctx))
          continue;
        std::vector<PathId> Cond;
        for (size_t K = 0; K != Paths.size(); ++K)
          if (K != I && K != J)
            Cond.push_back(Paths[K]);
        if (Cond.size() > Config.MaxConditionPaths)
          continue;
        std::sort(Cond.begin(), Cond.end(), Less);
        std::vector<PathId> Deduct = {Paths[I], Paths[J]};
        std::sort(Deduct.begin(), Deduct.end(), Less);
        Cond.insert(Cond.end(), Deduct.begin(), Deduct.end());
        Target.update(Cond);
      }
    }
    return;
  }

  // Confusing word: every path ending in a correct word is one way to
  // split (Definition 3.9).
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (!CorrectWords.count(Table.endOf(Paths[I])))
      continue;
    if (!isNameSubtokenPath(Paths[I], Table, Ctx))
      continue;
    std::vector<PathId> Cond;
    for (size_t K = 0; K != Paths.size(); ++K)
      if (K != I)
        Cond.push_back(Paths[K]);
    if (Cond.size() > Config.MaxConditionPaths)
      continue;
    std::sort(Cond.begin(), Cond.end(), Less);
    Cond.push_back(Paths[I]);
    Target.update(Cond);
  }
}

void PatternMiner::build(const std::vector<StmtPaths> &Dataset,
                         ThreadPool *Pool) {
  size_t NumShards = std::max<size_t>(1, Config.MineShards);
  bool Parallel = Pool && Pool->workerCount() > 1;

  // Pass 1, frequencies: chunks accumulate into local maps and the sums
  // merge afterwards -- addition commutes, so the merged frequencies (and
  // everything regularizedPaths derives from them) are schedule-free.
  if (Parallel && Dataset.size() >= 64) {
    size_t NumChunks =
        std::min(static_cast<size_t>(Pool->workerCount()) * 4, Dataset.size());
    size_t Chunk = (Dataset.size() + NumChunks - 1) / NumChunks;
    std::vector<std::unordered_map<PathId, uint32_t>> Partial(NumChunks);
    Pool->parallelFor(
        0, NumChunks,
        [&](size_t C) {
          std::unordered_map<PathId, uint32_t> &Local = Partial[C];
          size_t E = std::min(Dataset.size(), (C + 1) * Chunk);
          for (size_t S = C * Chunk; S < E; ++S) {
            const StmtPaths &Stmt = Dataset[S];
            size_t Limit = std::min(Stmt.Paths.size(), Config.MaxPathsPerStmt);
            for (size_t I = 0; I != Limit; ++I)
              ++Local[Stmt.Paths[I]];
          }
        },
        1, "fptree.build");
    for (const std::unordered_map<PathId, uint32_t> &Local : Partial)
      for (const auto &[P, N] : Local)
        PathFrequency[P] += N;
  } else {
    for (const StmtPaths &Stmt : Dataset)
      countPaths(Stmt);
  }

  // Shard assignment: hash of the statement's first sorted path item (its
  // smallest regularized path under the table's content order). The hash
  // reads committed path ids, which are fixed before mining starts, so the
  // partition is a pure function of the dataset. Statements sharing a
  // first item land in the same shard, which keeps shared trie prefixes in
  // one tree instead of duplicating them everywhere.
  auto Less = [this](PathId A, PathId B) { return Table.less(A, B); };
  std::vector<std::vector<size_t>> StmtsOfShard(NumShards);
  size_t Assigned = 0;
  for (size_t S = 0; S != Dataset.size(); ++S) {
    std::vector<PathId> Paths = regularizedPaths(Dataset[S]);
    if (Paths.empty())
      continue; // addStatement would have been a no-op
    PathId First = *std::min_element(Paths.begin(), Paths.end(), Less);
    size_t Shard = hashU32(FnvOffsetBasis, First) % NumShards;
    StmtsOfShard[Shard].push_back(S);
    ++Assigned;
  }

  // Pass 2, sharded tree growth: each task writes only its own tree.
  std::vector<FPTree> Shards(NumShards);
  auto BuildShard = [&](size_t Shard) {
    telemetry::TraceSpan Span("fptree.shard.build");
    for (size_t S : StmtsOfShard[Shard])
      addStatementTo(Shards[Shard], Dataset[S]);
  };
  if (Parallel)
    Pool->parallelFor(0, NumShards, BuildShard, 1, "fptree.build");
  else
    for (size_t Shard = 0; Shard != NumShards; ++Shard)
      BuildShard(Shard);

  // Canonical merge: count-sum and isLast-OR commute, so folding the
  // shards in any order produces the same abstract trie the sequential
  // build would have grown.
  {
    telemetry::TraceSpan Span("fptree.shard.merge");
    for (const FPTree &Shard : Shards)
      Tree.merge(Shard);
  }
  telemetry::count("fptree.shard.trees", NumShards);
  telemetry::count("fptree.shard.statements", Assigned);
  telemetry::count("fptree.shard.merged_nodes", Tree.size());
}

void PatternMiner::emitPatterns(const std::vector<PathId> &Visited,
                                uint32_t Count,
                                std::vector<NamePattern> &Out) const {
  size_t DeductSize = Kind == PatternKind::Consistency ? 2 : 1;
  if (Visited.size() < DeductSize)
    return;

  std::vector<PathId> Deduct(Visited.end() - DeductSize, Visited.end());
  if (Kind == PatternKind::Consistency) {
    // The deduction pair becomes symbolic (end nodes set to epsilon).
    for (PathId &D : Deduct)
      D = Table.symbolicVersion(D);
    if (Deduct[0] == Deduct[1])
      return; // both positions collapsed to the same prefix
  }
  std::vector<PathId> Conds(Visited.begin(), Visited.end() - DeductSize);

  auto Emit = [&](std::vector<PathId> Cond) {
    NamePattern P;
    P.Kind = Kind;
    P.Condition = std::move(Cond);
    P.Deduction = Deduct;
    P.Support = Count;
    Out.push_back(std::move(P));
  };

  Emit(Conds);
  if (Config.Conditions == MinerConfig::ConditionPolicy::FullOnly ||
      Conds.empty())
    return;

  if (Config.Conditions == MinerConfig::ConditionPolicy::LeaveOneOut) {
    for (size_t Skip = 0; Skip != Conds.size(); ++Skip) {
      std::vector<PathId> Subset;
      for (size_t I = 0; I != Conds.size(); ++I)
        if (I != Skip)
          Subset.push_back(Conds[I]);
      Emit(std::move(Subset));
    }
    return;
  }

  // AllSubsets: enumerate proper subsets (Algorithm 2, line 7), bounded.
  size_t Limit = std::min(Conds.size(), Config.MaxConditionPaths);
  size_t Emitted = 0;
  for (uint64_t Mask = 0; Mask + 1 < (1ULL << Conds.size()) &&
                          Emitted < Config.MaxPatternsPerNode;
       ++Mask) {
    if (static_cast<size_t>(__builtin_popcountll(Mask)) > Limit)
      continue;
    std::vector<PathId> Subset;
    for (size_t I = 0; I != Conds.size(); ++I)
      if (Mask & (1ULL << I))
        Subset.push_back(Conds[I]);
    Emit(std::move(Subset));
    ++Emitted;
  }
}

void PatternMiner::genFromNode(FPTree::FPNodeId NodeId,
                               std::vector<PathId> &Visited,
                               std::vector<NamePattern> &Out) const {
  const FPTree::FPNode &Nd = Tree.node(NodeId);
  if (NodeId != FPTree::RootId)
    Visited.push_back(Nd.Item);
  if (Nd.IsLast)
    emitPatterns(Visited, Nd.Count, Out);
  // Traverse children ordered by path content, not hash-map order: the
  // traversal then depends only on the abstract trie, so the symbolic
  // paths emitPatterns() interns are created in the same order -- and get
  // the same ids -- however the tree was built (sequential, or sharded and
  // merged in build()).
  std::vector<std::pair<PathId, FPTree::FPNodeId>> Children(
      Nd.Children.begin(), Nd.Children.end());
  std::sort(Children.begin(), Children.end(),
            [this](const auto &A, const auto &B) {
              return Table.less(A.first, B.first);
            });
  for (const auto &[Item, Child] : Children) {
    (void)Item;
    genFromNode(Child, Visited, Out);
  }
  if (NodeId != FPTree::RootId)
    Visited.pop_back();
}

std::vector<NamePattern> PatternMiner::generate() {
  telemetry::TraceSpan Span("fptree.generate");
  telemetry::count("fptree.nodes", Tree.size());
  telemetry::count("fptree.generation_points", Tree.numGenerationPoints());
  std::vector<NamePattern> Raw;
  std::vector<PathId> Visited;
  genFromNode(FPTree::RootId, Visited, Raw);

  // Deduplicate structurally equal patterns; supports add up because they
  // come from disjoint FP-tree insertions (e.g. the same consistency
  // pattern discovered under different concrete end words).
  struct Key {
    PatternKind Kind;
    std::vector<PathId> Condition, Deduction;
    bool operator==(const Key &O) const {
      return Kind == O.Kind && Condition == O.Condition &&
             Deduction == O.Deduction;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashU32(FnvOffsetBasis, static_cast<uint32_t>(K.Kind));
      for (PathId P : K.Condition)
        H = hashU32(H, P);
      H = hashU32(H, 0xffffffffu);
      for (PathId P : K.Deduction)
        H = hashU32(H, P);
      return static_cast<size_t>(H);
    }
  };
  std::unordered_map<Key, size_t, KeyHash> Seen;
  std::vector<NamePattern> Result;
  for (NamePattern &P : Raw) {
    Key K{P.Kind, P.Condition, P.Deduction};
    auto It = Seen.find(K);
    if (It == Seen.end()) {
      Seen.emplace(std::move(K), Result.size());
      Result.push_back(std::move(P));
      continue;
    }
    Result[It->second].Support += P.Support;
  }

  // Canonical order: FP-tree children live in hash maps, so traversal order
  // is not meaningful; sort by path content for reproducible output.
  auto PathsLess = [this](const std::vector<PathId> &A,
                          const std::vector<PathId> &B) {
    return std::lexicographical_compare(
        A.begin(), A.end(), B.begin(), B.end(),
        [this](PathId X, PathId Y) { return Table.less(X, Y); });
  };
  std::sort(Result.begin(), Result.end(),
            [&](const NamePattern &A, const NamePattern &B) {
              if (A.Kind != B.Kind)
                return A.Kind < B.Kind;
              if (A.Condition != B.Condition)
                return PathsLess(A.Condition, B.Condition);
              return PathsLess(A.Deduction, B.Deduction);
            });
  telemetry::count("fptree.patterns_generated", Result.size());
  return Result;
}

std::vector<NamePattern>
PatternMiner::pruneUncommon(std::vector<NamePattern> Patterns,
                            const std::vector<StmtPaths> &Dataset,
                            ThreadPool *Pool) const {
  telemetry::TraceSpan Span("pattern.prune");
  PatternIndex Index(Patterns, Table);
  if (Pool && Pool->workerCount() > 1 && Dataset.size() >= 64) {
    // Fan out over statement chunks; each chunk accumulates into its own
    // counter array and the (commutative) sums merge afterwards, so the
    // totals match the sequential loop exactly.
    size_t NumChunks = static_cast<size_t>(Pool->workerCount()) * 4;
    NumChunks = std::min(NumChunks, Dataset.size());
    size_t Chunk = (Dataset.size() + NumChunks - 1) / NumChunks;
    struct Counters {
      uint32_t Matches = 0, Satisfactions = 0, Violations = 0;
    };
    std::vector<std::vector<Counters>> Partial(
        NumChunks, std::vector<Counters>(Patterns.size()));
    Pool->parallelFor(0, NumChunks, [&](size_t C) {
      std::vector<Counters> &Counts = Partial[C];
      std::vector<PatternHit> Hits;
      size_t E = std::min(Dataset.size(), (C + 1) * Chunk);
      for (size_t S = C * Chunk; S < E; ++S) {
        Hits.clear();
        Index.evaluate(Dataset[S], Hits);
        for (const PatternHit &Hit : Hits) {
          Counters &PC = Counts[Hit.Pattern];
          ++PC.Matches;
          if (Hit.Result == MatchResult::Satisfied)
            ++PC.Satisfactions;
          else
            ++PC.Violations;
        }
      }
    }, 1, "pattern.prune");
    for (const std::vector<Counters> &Counts : Partial)
      for (size_t Id = 0; Id != Patterns.size(); ++Id) {
        Patterns[Id].DatasetMatches += Counts[Id].Matches;
        Patterns[Id].DatasetSatisfactions += Counts[Id].Satisfactions;
        Patterns[Id].DatasetViolations += Counts[Id].Violations;
      }
  } else {
    std::vector<PatternHit> Hits;
    for (const StmtPaths &Stmt : Dataset) {
      Hits.clear();
      Index.evaluate(Stmt, Hits);
      for (const PatternHit &Hit : Hits) {
        NamePattern &P = Patterns[Hit.Pattern];
        ++P.DatasetMatches;
        if (Hit.Result == MatchResult::Satisfied)
          ++P.DatasetSatisfactions;
        else
          ++P.DatasetViolations;
      }
    }
  }
  std::vector<NamePattern> Kept;
  for (NamePattern &P : Patterns) {
    if (P.Support < Config.MinPatternSupport)
      continue;
    if (P.DatasetMatches == 0 ||
        P.datasetSatisfactionRate() < Config.MinSatisfactionRatio)
      continue;
    Kept.push_back(std::move(P));
  }
  telemetry::count("prune.dropped", Patterns.size() - Kept.size());
  telemetry::count("prune.kept", Kept.size());
  return Kept;
}
