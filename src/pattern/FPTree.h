//===- pattern/FPTree.h - Frequent pattern tree -----------------*- C++ -*-==//
///
/// \file
/// The FP-tree of Algorithm 1 (after Han et al. and Leung et al.): a prefix
/// tree over sorted name path lists. Each node stores one path item, its
/// occurrence count, and the isLast flag marking insertion end points where
/// Algorithm 2 generates patterns.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_PATTERN_FPTREE_H
#define NAMER_PATTERN_FPTREE_H

#include "namepath/NamePath.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace namer {

/// Prefix tree over PathId sequences with counts and isLast flags.
class FPTree {
public:
  using FPNodeId = uint32_t;
  static constexpr FPNodeId RootId = 0;

  struct FPNode {
    PathId Item = InvalidPathId; // invalid at the root
    uint32_t Count = 0;
    bool IsLast = false;
    std::unordered_map<PathId, FPNodeId> Children;
  };

  FPTree() { Nodes.emplace_back(); }

  /// Inserts \p Items (already sorted as condition + deduction), bumping
  /// counts along the path and flagging the final node as a generation
  /// point.
  void update(const std::vector<PathId> &Items);

  /// Folds \p Other into this tree: for every path present in either tree
  /// the merged node's count is the sum and its isLast flag the OR of the
  /// two sides'. Count-sum and flag-OR are commutative and associative, so
  /// merging per-shard trees in any order yields the same abstract trie as
  /// building one tree from the union of insertions (node *ids* differ by
  /// construction order, which generation ignores -- see Miner::build).
  void merge(const FPTree &Other);

  const FPNode &node(FPNodeId Id) const { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// Number of insertion end points (isLast nodes).
  size_t numGenerationPoints() const;

private:
  std::vector<FPNode> Nodes;
};

} // namespace namer

#endif // NAMER_PATTERN_FPTREE_H
