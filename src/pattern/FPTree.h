//===- pattern/FPTree.h - Frequent pattern tree -----------------*- C++ -*-==//
///
/// \file
/// The FP-tree of Algorithm 1 (after Han et al. and Leung et al.): a prefix
/// tree over sorted name path lists. Each node stores one path item, its
/// occurrence count, and the isLast flag marking insertion end points where
/// Algorithm 2 generates patterns.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_PATTERN_FPTREE_H
#define NAMER_PATTERN_FPTREE_H

#include "namepath/NamePath.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace namer {

/// Prefix tree over PathId sequences with counts and isLast flags.
class FPTree {
public:
  using FPNodeId = uint32_t;
  static constexpr FPNodeId RootId = 0;

  struct FPNode {
    PathId Item = InvalidPathId; // invalid at the root
    uint32_t Count = 0;
    bool IsLast = false;
    std::unordered_map<PathId, FPNodeId> Children;
  };

  FPTree() { Nodes.emplace_back(); }

  /// Inserts \p Items (already sorted as condition + deduction), bumping
  /// counts along the path and flagging the final node as a generation
  /// point.
  void update(const std::vector<PathId> &Items);

  const FPNode &node(FPNodeId Id) const { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// Number of insertion end points (isLast nodes).
  size_t numGenerationPoints() const;

private:
  std::vector<FPNode> Nodes;
};

} // namespace namer

#endif // NAMER_PATTERN_FPTREE_H
