//===- pattern/FPTree.cpp -------------------------------------------------==//

#include "pattern/FPTree.h"

using namespace namer;

void FPTree::update(const std::vector<PathId> &Items) {
  if (Items.empty())
    return;
  FPNodeId Current = RootId;
  for (PathId Item : Items) {
    auto It = Nodes[Current].Children.find(Item);
    if (It == Nodes[Current].Children.end()) {
      FPNodeId Fresh = static_cast<FPNodeId>(Nodes.size());
      Nodes[Current].Children.emplace(Item, Fresh);
      Nodes.emplace_back();
      Nodes[Fresh].Item = Item;
      Current = Fresh;
    } else {
      Current = It->second;
    }
    ++Nodes[Current].Count;
  }
  Nodes[Current].IsLast = true;
}

void FPTree::merge(const FPTree &Other) {
  // Pair walk of the two tries, iterative to survive deep chains (path
  // lists can be long on adversarial inputs).
  std::vector<std::pair<FPNodeId, FPNodeId>> Stack = {{RootId, RootId}};
  while (!Stack.empty()) {
    auto [Mine, Theirs] = Stack.back();
    Stack.pop_back();
    Nodes[Mine].Count += Other.Nodes[Theirs].Count;
    Nodes[Mine].IsLast |= Other.Nodes[Theirs].IsLast;
    for (const auto &[Item, TheirChild] : Other.Nodes[Theirs].Children) {
      auto It = Nodes[Mine].Children.find(Item);
      FPNodeId MyChild;
      if (It == Nodes[Mine].Children.end()) {
        MyChild = static_cast<FPNodeId>(Nodes.size());
        Nodes[Mine].Children.emplace(Item, MyChild);
        Nodes.emplace_back();
        Nodes[MyChild].Item = Item;
      } else {
        MyChild = It->second;
      }
      Stack.push_back({MyChild, TheirChild});
    }
  }
}

size_t FPTree::numGenerationPoints() const {
  size_t Count = 0;
  for (const FPNode &Nd : Nodes)
    Count += Nd.IsLast;
  return Count;
}
