//===- pattern/FPTree.cpp -------------------------------------------------==//

#include "pattern/FPTree.h"

using namespace namer;

void FPTree::update(const std::vector<PathId> &Items) {
  if (Items.empty())
    return;
  FPNodeId Current = RootId;
  for (PathId Item : Items) {
    auto It = Nodes[Current].Children.find(Item);
    if (It == Nodes[Current].Children.end()) {
      FPNodeId Fresh = static_cast<FPNodeId>(Nodes.size());
      Nodes[Current].Children.emplace(Item, Fresh);
      Nodes.emplace_back();
      Nodes[Fresh].Item = Item;
      Current = Fresh;
    } else {
      Current = It->second;
    }
    ++Nodes[Current].Count;
  }
  Nodes[Current].IsLast = true;
}

size_t FPTree::numGenerationPoints() const {
  size_t Count = 0;
  for (const FPNode &Nd : Nodes)
    Count += Nd.IsLast;
  return Count;
}
