//===- pattern/NamePattern.cpp --------------------------------------------==//

#include "pattern/NamePattern.h"

#include <cassert>

using namespace namer;

MatchResult namer::evaluatePattern(const NamePattern &Pattern,
                                   const StmtPaths &Stmt,
                                   const NamePathTable &Table) {
  // Match (Definition 3.6): every condition path exists concretely and
  // every deduction prefix exists.
  for (PathId C : Pattern.Condition)
    if (!Stmt.containsPath(C, Table))
      return MatchResult::NoMatch;
  for (PathId D : Pattern.Deduction)
    if (!Stmt.containsPrefix(Table.prefixOf(D)))
      return MatchResult::NoMatch;

  if (Pattern.Kind == PatternKind::Consistency) {
    assert(Pattern.Deduction.size() == 2 &&
           "consistency deduction must have two paths");
    // Case-insensitive: "Intent intent" conforms to the idiom.
    Symbol E1 = Stmt.foldedEndAt(Table.prefixOf(Pattern.Deduction[0]));
    Symbol E2 = Stmt.foldedEndAt(Table.prefixOf(Pattern.Deduction[1]));
    return E1 == E2 ? MatchResult::Satisfied : MatchResult::Violated;
  }

  assert(Pattern.Kind == PatternKind::ConfusingWord &&
         Pattern.Deduction.size() == 1 &&
         "confusing word deduction must have one path");
  PathId D = Pattern.Deduction[0];
  Symbol Actual = Stmt.endAt(Table.prefixOf(D));
  return Actual == Table.endOf(D) ? MatchResult::Satisfied
                                  : MatchResult::Violated;
}

SuggestedFix namer::deriveFix(const NamePattern &Pattern,
                              const StmtPaths &Stmt,
                              const NamePathTable &Table) {
  if (Pattern.Kind == PatternKind::ConfusingWord) {
    PrefixId Prefix = Table.prefixOf(Pattern.Deduction[0]);
    return SuggestedFix{Prefix, Stmt.endAt(Prefix),
                        Table.endOf(Pattern.Deduction[0])};
  }
  // Consistency: rename the second position to the first. The choice of
  // direction is a heuristic; the classifier features are symmetric in it.
  PrefixId P1 = Table.prefixOf(Pattern.Deduction[0]);
  PrefixId P2 = Table.prefixOf(Pattern.Deduction[1]);
  return SuggestedFix{P2, Stmt.endAt(P2), Stmt.endAt(P1)};
}

std::string namer::formatPattern(const NamePattern &Pattern,
                                 const NamePathTable &Table,
                                 const AstContext &Ctx) {
  std::string Out = "Condition:\n";
  for (PathId C : Pattern.Condition) {
    Out += "  ";
    Out += formatNamePath(Table.path(C), Ctx);
    Out += '\n';
  }
  Out += "Deduction:\n";
  for (PathId D : Pattern.Deduction) {
    Out += "  ";
    Out += formatNamePath(Table.path(D), Ctx);
    Out += '\n';
  }
  return Out;
}

bool namer::isNameSubtokenPath(PathId Id, const NamePathTable &Table,
                               const AstContext &Ctx) {
  const NamePath &P = Table.path(Id);
  if (P.isSymbolic())
    return false;
  if (P.End == Ctx.numSymbol() || P.End == Ctx.strSymbol() ||
      P.End == Ctx.boolSymbol())
    return false;
  // The leaf's parent chain within the prefix: the last step is either the
  // NumST node or an Origin node directly below one.
  if (P.Prefix.empty())
    return false;
  auto IsNumSt = [&](Symbol S) {
    std::string_view Text = Ctx.text(S);
    return Text.size() > 6 && Text.substr(0, 6) == "NumST(";
  };
  const PathStep &Last = P.Prefix.back();
  if (IsNumSt(Last.Value))
    return true;
  return P.Prefix.size() >= 2 && IsNumSt(P.Prefix[P.Prefix.size() - 2].Value);
}
