//===- frontend/python/PythonLexer.cpp ------------------------------------==//

#include "frontend/python/PythonLexer.h"

#include "support/FaultInjector.h"

#include <cctype>

using namespace namer;
using namespace namer::python;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}
bool isDigit(char C) { return std::isdigit(static_cast<unsigned char>(C)); }

/// Multi-character operators, longest first so maximal munch works.
constexpr std::string_view MultiOps[] = {
    "**=", "//=", "<<=", ">>=", "...", "->", "**", "//", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  ":=",
};

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  LexResult run();

private:
  void error(frontend::DiagKind Kind, const std::string &Message);
  void lexLine();
  void handleIndent(size_t Spaces);
  void lexString(char Quote, bool Triple);
  void push(TokenKind Kind, std::string_view Text) {
    Result.Tokens.push_back(Token{Kind, Text, Line});
  }

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  bool atEnd() const { return Pos >= Src.size(); }

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  int BracketDepth = 0;
  std::vector<size_t> IndentStack{0};
  bool LastWasNewline = true;
  LexResult Result;
};

void Lexer::error(frontend::DiagKind Kind, const std::string &Message) {
  frontend::Diag D{Kind, Line, Message};
  Result.Errors.push_back(frontend::renderDiag(D));
  Result.Diags.push_back(std::move(D));
}

void Lexer::handleIndent(size_t Spaces) {
  if (Spaces > IndentStack.back()) {
    IndentStack.push_back(Spaces);
    push(TokenKind::Indent, "");
    return;
  }
  while (Spaces < IndentStack.back()) {
    IndentStack.pop_back();
    push(TokenKind::Dedent, "");
  }
  if (Spaces != IndentStack.back()) {
    // Inconsistent dedent: align to the nearest level and carry on.
    error(frontend::DiagKind::LexBadIndent, "inconsistent indentation");
    IndentStack.push_back(Spaces);
  }
}

void Lexer::lexString(char Quote, bool Triple) {
  // The token text is the literal's body verbatim -- escape pairs stay
  // as-is and triple-quoted bodies keep their newlines -- so it is exactly
  // the [Start, Pos) range of the source: a view, no copy.
  size_t Start = Pos;
  while (!atEnd()) {
    char C = peek();
    if (C == '\\' && Pos + 1 < Src.size()) {
      Pos += 2;
      continue;
    }
    if (Triple && C == Quote && peek(1) == Quote && peek(2) == Quote) {
      std::string_view Text = Src.substr(Start, Pos - Start);
      Pos += 3;
      push(TokenKind::String, Text);
      return;
    }
    if (!Triple && C == Quote) {
      std::string_view Text = Src.substr(Start, Pos - Start);
      ++Pos;
      push(TokenKind::String, Text);
      return;
    }
    if (C == '\n') {
      if (!Triple) {
        error(frontend::DiagKind::LexUnterminatedString,
              "unterminated string literal");
        push(TokenKind::String, Src.substr(Start, Pos - Start));
        return;
      }
      ++Line;
    }
    ++Pos;
  }
  error(frontend::DiagKind::LexUnterminatedString,
        "unterminated string literal at end of file");
  push(TokenKind::String, Src.substr(Start, Pos - Start));
}

LexResult Lexer::run() {
  while (!atEnd()) {
    // At a fresh logical line (outside brackets) measure indentation.
    if (LastWasNewline && BracketDepth == 0) {
      size_t Spaces = 0;
      while (!atEnd() && (peek() == ' ' || peek() == '\t')) {
        Spaces += peek() == '\t' ? 8 - Spaces % 8 : 1;
        ++Pos;
      }
      // Blank lines and comment-only lines don't affect indentation.
      if (atEnd())
        break;
      if (peek() == '\n') {
        ++Pos;
        ++Line;
        continue;
      }
      if (peek() == '#') {
        while (!atEnd() && peek() != '\n')
          ++Pos;
        continue;
      }
      handleIndent(Spaces);
      LastWasNewline = false;
    }

    char C = peek();
    if (C == '\n') {
      ++Pos;
      ++Line;
      if (BracketDepth == 0) {
        push(TokenKind::Newline, "");
        LastWasNewline = true;
      }
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
      continue;
    }
    if (C == '#') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '\\' && peek(1) == '\n') {
      Pos += 2;
      ++Line;
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (!atEnd() && isIdentCont(peek()))
        ++Pos;
      std::string_view Text = Src.substr(Start, Pos - Start);
      // String prefixes: r"", b"", f"", u"" and combinations.
      if ((peek() == '"' || peek() == '\'') && Text.size() <= 2) {
        bool AllPrefix = true;
        for (char P : Text) {
          char L = static_cast<char>(std::tolower(static_cast<unsigned char>(P)));
          if (L != 'r' && L != 'b' && L != 'f' && L != 'u')
            AllPrefix = false;
        }
        if (AllPrefix) {
          char Quote = peek();
          bool Triple = peek(1) == Quote && peek(2) == Quote;
          Pos += Triple ? 3 : 1;
          lexString(Quote, Triple);
          continue;
        }
      }
      push(TokenKind::Name, Text);
      continue;
    }
    if (isDigit(C) || (C == '.' && isDigit(peek(1)))) {
      size_t Start = Pos;
      while (!atEnd() && (isIdentCont(peek()) || peek() == '.'))
        ++Pos;
      // Handle exponent sign: 1e-5.
      if (!atEnd() && (peek() == '+' || peek() == '-') && Pos > Start &&
          (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E')) {
        ++Pos;
        while (!atEnd() && isDigit(peek()))
          ++Pos;
      }
      push(TokenKind::Number, Src.substr(Start, Pos - Start));
      continue;
    }
    if (C == '"' || C == '\'') {
      bool Triple = peek(1) == C && peek(2) == C;
      Pos += Triple ? 3 : 1;
      lexString(C, Triple);
      continue;
    }
    // Operators and punctuation.
    bool Matched = false;
    for (std::string_view Op : MultiOps) {
      if (Src.substr(Pos, Op.size()) == Op) {
        push(TokenKind::Operator, Src.substr(Pos, Op.size()));
        Pos += Op.size();
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;
    if (C == '(' || C == '[' || C == '{')
      ++BracketDepth;
    else if (C == ')' || C == ']' || C == '}')
      BracketDepth = BracketDepth > 0 ? BracketDepth - 1 : 0;
    constexpr std::string_view SingleOps = "+-*/%<>=.,:;()[]{}@&|^~";
    if (SingleOps.find(C) != std::string_view::npos) {
      push(TokenKind::Operator, Src.substr(Pos, 1));
      ++Pos;
      continue;
    }
    error(frontend::DiagKind::LexInvalidChar,
          std::isprint(static_cast<unsigned char>(C))
              ? std::string("unexpected character '") + C + "'"
              : "unexpected byte 0x" + [](unsigned char B) {
                  const char *Hex = "0123456789abcdef";
                  return std::string{Hex[B >> 4], Hex[B & 15]};
                }(static_cast<unsigned char>(C)));
    ++Pos;
  }

  if (!LastWasNewline)
    push(TokenKind::Newline, "");
  while (IndentStack.size() > 1) {
    IndentStack.pop_back();
    push(TokenKind::Dedent, "");
  }
  push(TokenKind::EndOfFile, "");
  return std::move(Result);
}

} // namespace

LexResult namer::python::lexPython(std::string_view Source) {
  faultinject::fire("lex.python");
  return Lexer(Source).run();
}
