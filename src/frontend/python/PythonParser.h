//===- frontend/python/PythonParser.h - Python parser -----------*- C++ -*-==//
///
/// \file
/// Recursive-descent parser for the Python subset the corpus uses: classes,
/// functions, assignments, control flow, calls with keyword/star arguments,
/// attribute chains, literals, imports and try/except. Produces the module
/// AST of Definition 3.1; statement-level trees are sliced from it with
/// ast/Statements.h.
///
/// The parser is error-tolerant: on a syntax error it records a structured
/// `frontend::Diag` (panic mode) and resynchronizes at the next logical
/// line, because the Big Code corpus must be minable even when individual
/// files are malformed. Recursion is bounded by
/// ParseOptions::MaxNestingDepth: past the cap the parser emits error
/// nodes and a DepthExceeded diagnostic instead of recursing, so nesting
/// bombs degrade gracefully rather than overflowing the stack.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_PYTHON_PYTHONPARSER_H
#define NAMER_FRONTEND_PYTHON_PYTHONPARSER_H

#include "ast/Tree.h"
#include "frontend/Diag.h"

#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace python {

/// Knobs bounding one parse; defaults are generous enough for any real
/// source file (CPython itself caps nesting well below 200).
struct ParseOptions {
  /// Maximum recursion depth across nested statements and expressions.
  unsigned MaxNestingDepth = 192;
};

/// A parsed module plus recoverable diagnostics. Errors mirrors Diags in
/// rendered form (renderDiag) for display; programmatic consumers key on
/// Diags' DiagKind taxonomy.
struct ParseResult {
  Tree Module;
  std::vector<std::string> Errors;
  std::vector<frontend::Diag> Diags;
  /// Token count of the lexed file (resource-budget input).
  size_t NumTokens = 0;
  /// True when the nesting-depth guard fired at least once.
  bool DepthExceeded = false;

  explicit ParseResult(AstContext &Ctx) : Module(Ctx) {}
};

/// Parses \p Source into a module tree allocated in \p Ctx.
ParseResult parsePython(std::string_view Source, AstContext &Ctx,
                        const ParseOptions &Opts = ParseOptions());

} // namespace python
} // namespace namer

#endif // NAMER_FRONTEND_PYTHON_PYTHONPARSER_H
