//===- frontend/python/PythonParser.h - Python parser -----------*- C++ -*-==//
///
/// \file
/// Recursive-descent parser for the Python subset the corpus uses: classes,
/// functions, assignments, control flow, calls with keyword/star arguments,
/// attribute chains, literals, imports and try/except. Produces the module
/// AST of Definition 3.1; statement-level trees are sliced from it with
/// ast/Statements.h.
///
/// The parser is error-tolerant: on a syntax error it records a diagnostic
/// and resynchronizes at the next logical line, because the Big Code corpus
/// must be minable even when individual files are malformed.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_PYTHON_PYTHONPARSER_H
#define NAMER_FRONTEND_PYTHON_PYTHONPARSER_H

#include "ast/Tree.h"

#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace python {

/// A parsed module plus recoverable diagnostics.
struct ParseResult {
  Tree Module;
  std::vector<std::string> Errors;

  explicit ParseResult(AstContext &Ctx) : Module(Ctx) {}
};

/// Parses \p Source into a module tree allocated in \p Ctx.
ParseResult parsePython(std::string_view Source, AstContext &Ctx);

} // namespace python
} // namespace namer

#endif // NAMER_FRONTEND_PYTHON_PYTHONPARSER_H
