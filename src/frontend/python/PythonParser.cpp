//===- frontend/python/PythonParser.cpp -----------------------------------==//

#include "frontend/python/PythonParser.h"

#include "frontend/python/PythonLexer.h"

#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace namer;
using namespace namer::python;

namespace {

class Parser {
public:
  Parser(std::string_view Source, AstContext &Ctx, const ParseOptions &Opts)
      : Ctx(Ctx), Opts(Opts), Result(Ctx), T(Result.Module) {
    LexResult Lexed = lexPython(Source);
    Tokens = std::move(Lexed.Tokens);
    Result.NumTokens = Tokens.size();
    for (auto &E : Lexed.Errors)
      Result.Errors.push_back("lex: " + E);
    Result.Diags = std::move(Lexed.Diags);
    // Node count tracks token count closely; one up-front reservation
    // replaces the vector's doubling while the tree grows.
    T.reserveNodes(Tokens.size());
    // All token texts are views into Source; every one the tree keeps is
    // interned through the batch handle (one shard lock per cache miss,
    // repeats are free). run() detaches the handle before the tree is
    // moved out, since the handle dies with this parser.
    T.setInternHandle(&Handle);
  }

  ParseResult run() {
    NodeId Module = T.addNode(NodeKind::Module, InvalidNode);
    T.setRoot(Module);
    parseStatements(Module, /*TopLevel=*/true);
    T.setInternHandle(nullptr);
    return std::move(Result);
  }

private:
  // --- Token cursor -------------------------------------------------------
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }
  bool at(TokenKind Kind) const { return cur().Kind == Kind; }
  bool atOp(std::string_view Op) const {
    return cur().Kind == TokenKind::Operator && cur().Text == Op;
  }
  bool atName(std::string_view Name) const {
    return cur().Kind == TokenKind::Name && cur().Text == Name;
  }
  bool eatOp(std::string_view Op) {
    if (!atOp(Op))
      return false;
    advance();
    return true;
  }
  bool eatName(std::string_view Name) {
    if (!atName(Name))
      return false;
    advance();
    return true;
  }
  uint32_t line() const { return cur().Line; }

  void error(const std::string &Message,
             frontend::DiagKind Kind = frontend::DiagKind::ParseExpected) {
    frontend::Diag D{Kind, cur().Line, Message};
    Result.Errors.push_back(frontend::renderDiag(D));
    Result.Diags.push_back(std::move(D));
  }

  /// Recursion-depth admission. Returns false past the cap, recording one
  /// DepthExceeded diagnostic per file; the caller must then produce a
  /// placeholder node WITHOUT recursing (and consume at least one token or
  /// return into a loop that does, so parsing always makes progress).
  bool enterDepth() {
    if (Depth >= Opts.MaxNestingDepth) {
      if (!Result.DepthExceeded) {
        Result.DepthExceeded = true;
        error("nesting deeper than " + std::to_string(Opts.MaxNestingDepth),
              frontend::DiagKind::DepthExceeded);
      }
      return false;
    }
    ++Depth;
    return true;
  }

  struct DepthGuard {
    Parser &P;
    bool Ok;
    explicit DepthGuard(Parser &P) : P(P), Ok(P.enterDepth()) {}
    ~DepthGuard() {
      if (Ok)
        --P.Depth;
    }
  };

  /// Placeholder expression used when the depth guard refuses entry.
  NodeId depthErrorExpr(NodeId Parent) {
    NodeId Err = T.addNode(NodeKind::NameLoad, Parent, line());
    addIdent("<error>", Err);
    if (!at(TokenKind::Newline) && !at(TokenKind::EndOfFile) &&
        !at(TokenKind::Dedent))
      advance();
    return Err;
  }

  /// Skips to just after the next Newline (or a Dedent/EOF), the standard
  /// resynchronization point.
  void syncToNextLine() {
    while (!at(TokenKind::EndOfFile) && !at(TokenKind::Dedent)) {
      bool WasNewline = at(TokenKind::Newline);
      advance();
      if (WasNewline)
        return;
    }
  }

  // --- Statements ---------------------------------------------------------
  void parseStatements(NodeId Parent, bool TopLevel);
  void parseStatement(NodeId Parent);
  void parseSuite(NodeId Body);
  void parseClassDef(NodeId Parent);
  void parseFunctionDef(NodeId Parent);
  void parseIf(NodeId Parent, bool IsElif);
  void parseFor(NodeId Parent);
  void parseWhile(NodeId Parent);
  void parseTry(NodeId Parent);
  void parseWith(NodeId Parent);
  void parseImport(NodeId Parent);
  void parseFromImport(NodeId Parent);
  void parseSimpleStatement(NodeId Parent);
  void expectNewline();

  // --- Expressions --------------------------------------------------------
  NodeId parseExprList(NodeId Parent); // a, b, c -> TupleLit
  NodeId parseExpr(NodeId Parent);     // ternary / lambda entry
  NodeId parseOr(NodeId Parent);
  NodeId parseAnd(NodeId Parent);
  NodeId parseNot(NodeId Parent);
  NodeId parseComparison(NodeId Parent);
  NodeId parseArith(NodeId Parent);
  NodeId parseTerm(NodeId Parent);
  NodeId parseFactor(NodeId Parent);
  NodeId parsePower(NodeId Parent);
  NodeId parsePostfix(NodeId Parent);
  NodeId parseAtom(NodeId Parent);
  void parseCallArgs(NodeId Call);

  /// Rewrites a load expression into store form after discovering it is an
  /// assignment target.
  void convertToStore(NodeId N);

  NodeId addIdent(std::string_view Name, NodeId Parent) {
    return T.addNode(NodeKind::Ident, Name, Parent, line());
  }

  AstContext &Ctx;
  ParseOptions Opts;
  ParseResult Result;
  Tree &T;
  StringInterner::BatchHandle Handle{Ctx.strings()};
  std::vector<Token> Tokens;
  size_t Pos = 0;
  unsigned Depth = 0;
  /// Set while parsing a for-statement target so the comparison parser does
  /// not consume the 'in' keyword.
  bool NoIn = false;
};

void Parser::convertToStore(NodeId N) {
  const Node &Nd = T.node(N);
  switch (Nd.Kind) {
  case NodeKind::NameLoad:
    T.setKind(N, NodeKind::NameStore);
    T.setValue(N, Ctx.kindSymbol(NodeKind::NameStore));
    return;
  case NodeKind::AttributeLoad:
    T.setKind(N, NodeKind::AttributeStore);
    T.setValue(N, Ctx.kindSymbol(NodeKind::AttributeStore));
    return;
  case NodeKind::TupleLit:
  case NodeKind::ListLit:
    for (NodeId C : Nd.Children)
      convertToStore(C);
    return;
  case NodeKind::Subscript:
    return; // subscript stores keep their shape
  default:
    return; // tolerate odd targets (e.g. call results) without rewriting
  }
}

void Parser::expectNewline() {
  if (at(TokenKind::Newline)) {
    advance();
    return;
  }
  if (at(TokenKind::EndOfFile) || at(TokenKind::Dedent))
    return;
  if (atOp(";")) {
    advance();
    return;
  }
  error("expected end of statement near '" + std::string(cur().Text) + "'");
  syncToNextLine();
}

void Parser::parseStatements(NodeId Parent, bool TopLevel) {
  while (!at(TokenKind::EndOfFile)) {
    if (at(TokenKind::Dedent)) {
      if (!TopLevel)
        return;
      advance();
      continue;
    }
    if (at(TokenKind::Newline) || at(TokenKind::Indent)) {
      advance();
      continue;
    }
    parseStatement(Parent);
  }
}

void Parser::parseStatement(NodeId Parent) {
  DepthGuard Guard(*this);
  if (!Guard.Ok) {
    // Too deep to model: degrade the line to Pass and resynchronize.
    T.addNode(NodeKind::Pass, Parent, line());
    syncToNextLine();
    return;
  }
  // Decorators: consume the line, we don't model them.
  while (atOp("@")) {
    syncToNextLine();
  }
  if (atName("class"))
    return parseClassDef(Parent);
  if (atName("def"))
    return parseFunctionDef(Parent);
  if (atName("if"))
    return parseIf(Parent, /*IsElif=*/false);
  if (atName("for"))
    return parseFor(Parent);
  if (atName("while"))
    return parseWhile(Parent);
  if (atName("try"))
    return parseTry(Parent);
  if (atName("with"))
    return parseWith(Parent);
  if (atName("import"))
    return parseImport(Parent);
  if (atName("from"))
    return parseFromImport(Parent);
  parseSimpleStatement(Parent);
}

void Parser::parseSuite(NodeId Body) {
  if (!eatOp(":")) {
    error("expected ':'");
    syncToNextLine();
    return;
  }
  if (at(TokenKind::Newline)) {
    advance();
    if (!at(TokenKind::Indent)) {
      error("expected an indented block");
      return;
    }
    advance();
    while (!at(TokenKind::Dedent) && !at(TokenKind::EndOfFile)) {
      if (at(TokenKind::Newline) || at(TokenKind::Indent)) {
        advance();
        continue;
      }
      parseStatement(Body);
    }
    if (at(TokenKind::Dedent))
      advance();
    return;
  }
  // Single-line suite: "if x: return y".
  parseSimpleStatement(Body);
}

void Parser::parseClassDef(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // class
  NodeId Class = T.addNode(NodeKind::ClassDef, Parent, Ln);
  if (at(TokenKind::Name)) {
    addIdent(cur().Text, Class);
    advance();
  } else {
    error("expected class name");
    addIdent("<error>", Class);
  }
  NodeId Bases = T.addNode(NodeKind::BasesList, Class, Ln);
  if (eatOp("(")) {
    while (!atOp(")") && !at(TokenKind::EndOfFile)) {
      parseExpr(Bases);
      if (!eatOp(","))
        break;
    }
    if (!eatOp(")"))
      error("expected ')' after base classes");
  }
  NodeId Body = T.addNode(NodeKind::Body, Class, Ln);
  parseSuite(Body);
}

void Parser::parseFunctionDef(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // def
  NodeId Fn = T.addNode(NodeKind::FunctionDef, Parent, Ln);
  if (at(TokenKind::Name)) {
    addIdent(cur().Text, Fn);
    advance();
  } else {
    error("expected function name");
    addIdent("<error>", Fn);
  }
  NodeId Params = T.addNode(NodeKind::ParamList, Fn, Ln);
  if (eatOp("(")) {
    while (!atOp(")") && !at(TokenKind::EndOfFile)) {
      std::string_view ParamValue = "Param";
      if (eatOp("**"))
        ParamValue = "KwParam";
      else if (eatOp("*"))
        ParamValue = "StarParam";
      NodeId P = T.addNode(NodeKind::Param, ParamValue, Params, line());
      if (at(TokenKind::Name)) {
        addIdent(cur().Text, P);
        advance();
      } else if (ParamValue == "Param") {
        error("expected parameter name");
        advance();
      }
      if (eatOp(":")) // annotation
        parseExpr(P);
      if (eatOp("=")) // default value
        parseExpr(P);
      if (!eatOp(","))
        break;
    }
    if (!eatOp(")"))
      error("expected ')' after parameters");
  } else {
    error("expected '(' after function name");
  }
  if (eatOp("->")) // return annotation
    parseExpr(Fn);
  NodeId Body = T.addNode(NodeKind::Body, Fn, Ln);
  parseSuite(Body);
}

void Parser::parseIf(NodeId Parent, bool IsElif) {
  // Guarded separately from parseStatement: elif chains recurse directly.
  DepthGuard Guard(*this);
  if (!Guard.Ok) {
    T.addNode(NodeKind::Pass, Parent, line());
    syncToNextLine();
    return;
  }
  uint32_t Ln = line();
  advance(); // if / elif
  (void)IsElif;
  NodeId If = T.addNode(NodeKind::If, Parent, Ln);
  parseExpr(If);
  NodeId Then = T.addNode(NodeKind::Body, If, Ln);
  parseSuite(Then);
  if (atName("elif")) {
    NodeId Else = T.addNode(NodeKind::Body, If, line());
    parseIf(Else, /*IsElif=*/true);
    return;
  }
  if (atName("else")) {
    advance();
    NodeId Else = T.addNode(NodeKind::Body, If, line());
    parseSuite(Else);
  }
}

void Parser::parseFor(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // for
  NodeId For = T.addNode(NodeKind::For, Parent, Ln);
  NoIn = true;
  NodeId Target = parseExprList(For);
  NoIn = false;
  convertToStore(Target);
  if (!eatName("in"))
    error("expected 'in' in for statement");
  parseExprList(For);
  NodeId Body = T.addNode(NodeKind::Body, For, Ln);
  parseSuite(Body);
  if (atName("else")) {
    advance();
    NodeId Else = T.addNode(NodeKind::Body, For, line());
    parseSuite(Else);
  }
}

void Parser::parseWhile(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // while
  NodeId While = T.addNode(NodeKind::While, Parent, Ln);
  parseExpr(While);
  NodeId Body = T.addNode(NodeKind::Body, While, Ln);
  parseSuite(Body);
  if (atName("else")) {
    advance();
    NodeId Else = T.addNode(NodeKind::Body, While, line());
    parseSuite(Else);
  }
}

void Parser::parseTry(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // try
  NodeId Try = T.addNode(NodeKind::Try, Parent, Ln);
  NodeId Body = T.addNode(NodeKind::Body, Try, Ln);
  parseSuite(Body);
  while (atName("except")) {
    uint32_t CatchLn = line();
    advance();
    NodeId Catch = T.addNode(NodeKind::Catch, Try, CatchLn);
    if (!atOp(":")) {
      if (at(TokenKind::Name) && !atName("as")) {
        NodeId Type = T.addNode(NodeKind::TypeRef, Catch, CatchLn);
        addIdent(cur().Text, Type);
        advance();
        // Dotted exception types: module.Error.
        while (eatOp(".")) {
          if (at(TokenKind::Name)) {
            addIdent(cur().Text, Type);
            advance();
          }
        }
      } else if (atOp("(")) {
        // Tuple of exception types.
        parseExpr(Catch);
      }
      if (eatName("as") && at(TokenKind::Name)) {
        addIdent(cur().Text, Catch);
        advance();
      } else if (eatOp(",") && at(TokenKind::Name)) { // Python 2 style
        addIdent(cur().Text, Catch);
        advance();
      }
    }
    NodeId CatchBody = T.addNode(NodeKind::Body, Catch, CatchLn);
    parseSuite(CatchBody);
  }
  if (atName("else")) {
    advance();
    NodeId Else = T.addNode(NodeKind::Body, Try, line());
    parseSuite(Else);
  }
  if (atName("finally")) {
    advance();
    NodeId Finally = T.addNode(NodeKind::Body, Try, line());
    parseSuite(Finally);
  }
}

void Parser::parseWith(NodeId Parent) {
  // "with E as N:" binds N to E; model as an assignment with an attached
  // body so points-to sees the binding and statement slicing sees the body.
  uint32_t Ln = line();
  advance(); // with
  NodeId Assign = T.addNode(NodeKind::Assign, Parent, Ln);
  NodeId Expr = parseExpr(Assign);
  if (eatName("as")) {
    NodeId Target = parseExpr(Assign);
    convertToStore(Target);
    // Reorder to Assign[target, value]: swap the two children.
    auto &Kids = T.mutableNode(Assign).Children;
    assert(Kids.size() == 2);
    std::swap(Kids[0], Kids[1]);
  }
  (void)Expr;
  // Additional context managers on the same line: consume.
  while (eatOp(",")) {
    parseExpr(Assign);
    if (eatName("as"))
      parseExpr(Assign);
  }
  NodeId Body = T.addNode(NodeKind::Body, Assign, Ln);
  parseSuite(Body);
}

void Parser::parseImport(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // import
  while (true) {
    NodeId Import = T.addNode(NodeKind::Import, Parent, Ln);
    std::string Module;
    while (at(TokenKind::Name)) {
      Module += cur().Text;
      advance();
      if (!eatOp("."))
        break;
      Module += '.';
    }
    addIdent(Module.empty() ? "<error>" : Module, Import);
    if (eatName("as") && at(TokenKind::Name)) {
      addIdent(cur().Text, Import);
      advance();
    }
    if (!eatOp(","))
      break;
  }
  expectNewline();
}

void Parser::parseFromImport(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // from
  std::string Module;
  while (at(TokenKind::Name) || atOp(".")) {
    if (atOp(".")) {
      Module += '.';
      advance();
      continue;
    }
    Module += cur().Text;
    advance();
    if (atOp("."))
      continue;
    break;
  }
  if (!eatName("import")) {
    error("expected 'import' in from-import");
    syncToNextLine();
    return;
  }
  if (eatOp("*")) {
    NodeId Import = T.addNode(NodeKind::Import, "FromImport", Parent, Ln);
    addIdent(Module, Import);
    addIdent("*", Import);
    expectNewline();
    return;
  }
  bool Paren = eatOp("(");
  while (at(TokenKind::Name)) {
    NodeId Import = T.addNode(NodeKind::Import, "FromImport", Parent, Ln);
    addIdent(Module, Import);
    addIdent(cur().Text, Import);
    advance();
    if (eatName("as") && at(TokenKind::Name)) {
      addIdent(cur().Text, Import);
      advance();
    }
    if (!eatOp(","))
      break;
    while (at(TokenKind::Newline)) // inside parens newlines are suppressed,
      advance();                   // but be permissive
  }
  if (Paren && !eatOp(")"))
    error("expected ')' in from-import");
  expectNewline();
}

void Parser::parseSimpleStatement(NodeId Parent) {
  uint32_t Ln = line();
  if (atName("return")) {
    advance();
    NodeId Ret = T.addNode(NodeKind::Return, Parent, Ln);
    if (!at(TokenKind::Newline) && !at(TokenKind::EndOfFile) &&
        !at(TokenKind::Dedent))
      parseExprList(Ret);
    expectNewline();
    return;
  }
  if (atName("raise")) {
    advance();
    NodeId Raise = T.addNode(NodeKind::Raise, Parent, Ln);
    if (!at(TokenKind::Newline) && !at(TokenKind::EndOfFile))
      parseExpr(Raise);
    if (eatName("from"))
      parseExpr(Raise);
    expectNewline();
    return;
  }
  if (atName("pass")) {
    advance();
    T.addNode(NodeKind::Pass, Parent, Ln);
    expectNewline();
    return;
  }
  if (atName("break")) {
    advance();
    T.addNode(NodeKind::Break, Parent, Ln);
    expectNewline();
    return;
  }
  if (atName("continue")) {
    advance();
    T.addNode(NodeKind::Continue, Parent, Ln);
    expectNewline();
    return;
  }
  if (atName("global") || atName("nonlocal") || atName("del") ||
      atName("assert") || atName("yield")) {
    // Modeled coarsely: parse the operand expressions into an ExprStmt so
    // their names still contribute name paths.
    advance();
    NodeId Stmt = T.addNode(NodeKind::ExprStmt, Parent, Ln);
    if (!at(TokenKind::Newline) && !at(TokenKind::EndOfFile) &&
        !at(TokenKind::Dedent))
      parseExprList(Stmt);
    if (eatOp(",")) // assert expr, message
      parseExpr(Stmt);
    expectNewline();
    return;
  }
  // Python 2 print statement.
  if (atName("print") && !(peek().Kind == TokenKind::Operator &&
                           (peek().Text == "(" || peek().Text == "=" ||
                            peek().Text == "."))) {
    advance();
    NodeId Stmt = T.addNode(NodeKind::ExprStmt, Parent, Ln);
    NodeId Call = T.addNode(NodeKind::Call, Stmt, Ln);
    NodeId Callee = T.addNode(NodeKind::NameLoad, Call, Ln);
    addIdent("print", Callee);
    if (!at(TokenKind::Newline) && !at(TokenKind::EndOfFile) &&
        !at(TokenKind::Dedent)) {
      parseExpr(Call);
      while (eatOp(","))
        parseExpr(Call);
    }
    expectNewline();
    return;
  }

  // Expression statement or assignment.
  NodeId Stmt = T.addNode(NodeKind::ExprStmt, Parent, Ln);
  NodeId First = parseExprList(Stmt);

  if (atOp(":")) { // annotated assignment "x: T = v"; drop the annotation
    advance();
    NodeId Annotation = parseExpr(Stmt);
    auto &Kids = T.mutableNode(Stmt).Children;
    assert(!Kids.empty() && Kids.back() == Annotation);
    (void)Annotation;
    Kids.pop_back();
  }

  constexpr std::string_view AugOps[] = {"+=", "-=", "*=", "/=", "//=",
                                         "%=", "**=", "&=", "|=", "^=",
                                         "<<=", ">>="};
  bool IsAug = false;
  for (std::string_view Op : AugOps)
    IsAug |= atOp(Op);

  if (atOp("=") || IsAug) {
    NodeKind Kind = IsAug ? NodeKind::AugAssign : NodeKind::Assign;
    T.setKind(Stmt, Kind);
    T.setValue(Stmt, Ctx.kindSymbol(Kind));
    convertToStore(First);
    if (IsAug) {
      T.addNode(NodeKind::Op, cur().Text, Stmt, line());
      advance();
      parseExprList(Stmt);
    } else {
      advance();
      NodeId Value = parseExprList(Stmt);
      // Chained assignment "a = b = c": successive '=' make the previous
      // value a target too.
      while (atOp("=")) {
        advance();
        convertToStore(Value);
        Value = parseExprList(Stmt);
      }
    }
  }
  expectNewline();
}

// --- Expressions ----------------------------------------------------------

NodeId Parser::parseExprList(NodeId Parent) {
  NodeId First = parseExpr(Parent);
  if (!atOp(","))
    return First;
  // Wrap into a TupleLit: re-parent the first element.
  NodeId Tuple = T.addNode(NodeKind::TupleLit, Parent, line());
  T.reparent(First, Tuple);
  while (eatOp(",")) {
    if (at(TokenKind::Newline) || atOp(")") || atOp("]") || atOp("}") ||
        atOp("=") || atOp(":"))
      break; // trailing comma
    parseExpr(Tuple);
  }
  return Tuple;
}

NodeId Parser::parseExpr(NodeId Parent) {
  DepthGuard Guard(*this);
  if (!Guard.Ok)
    return depthErrorExpr(Parent);
  if (atName("lambda")) {
    uint32_t Ln = line();
    advance();
    NodeId Lambda = T.addNode(NodeKind::FunctionDef, "Lambda", Parent, Ln);
    NodeId Params = T.addNode(NodeKind::ParamList, Lambda, Ln);
    while (at(TokenKind::Name)) {
      NodeId P = T.addNode(NodeKind::Param, "Param", Params, line());
      addIdent(cur().Text, P);
      advance();
      if (eatOp("="))
        parseExpr(P);
      if (!eatOp(","))
        break;
    }
    if (!eatOp(":"))
      error("expected ':' in lambda");
    NodeId Body = T.addNode(NodeKind::Body, Lambda, Ln);
    parseExpr(Body);
    return Lambda;
  }
  NodeId Value = parseOr(Parent);
  if (atName("if")) {
    // Conditional expression: "a if cond else b". Wrap as If expression.
    advance();
    NodeId If = T.addNode(NodeKind::If, Parent, line());
    T.reparent(Value, If);
    parseOr(If);
    if (eatName("else"))
      parseExpr(If);
    return If;
  }
  return Value;
}

NodeId Parser::parseOr(NodeId Parent) {
  NodeId Left = parseAnd(Parent);
  while (atName("or")) {
    advance();
    NodeId Bin = T.addNode(NodeKind::BinOp, Parent, line());
    T.reparent(Left, Bin);
    T.addNode(NodeKind::Op, "or", Bin, line());
    parseAnd(Bin);
    Left = Bin;
  }
  return Left;
}

NodeId Parser::parseAnd(NodeId Parent) {
  NodeId Left = parseNot(Parent);
  while (atName("and")) {
    advance();
    NodeId Bin = T.addNode(NodeKind::BinOp, Parent, line());
    T.reparent(Left, Bin);
    T.addNode(NodeKind::Op, "and", Bin, line());
    parseNot(Bin);
    Left = Bin;
  }
  return Left;
}

NodeId Parser::parseNot(NodeId Parent) {
  if (atName("not")) {
    // Self-recursive ("not not ..."), so depth-guarded on its own.
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return depthErrorExpr(Parent);
    uint32_t Ln = line();
    advance();
    NodeId Un = T.addNode(NodeKind::UnaryOp, Parent, Ln);
    T.addNode(NodeKind::Op, "not", Un, Ln);
    parseNot(Un);
    return Un;
  }
  return parseComparison(Parent);
}

NodeId Parser::parseComparison(NodeId Parent) {
  NodeId Left = parseArith(Parent);
  while (true) {
    std::string Op;
    if (atOp("<") || atOp(">") || atOp("<=") || atOp(">=") || atOp("==") ||
        atOp("!=")) {
      Op = cur().Text;
      advance();
    } else if (atName("in") && !NoIn) {
      Op = "in";
      advance();
    } else if (atName("is")) {
      Op = "is";
      advance();
      if (eatName("not"))
        Op = "is not";
    } else if (atName("not") && peek().Kind == TokenKind::Name &&
               peek().Text == "in") {
      advance();
      advance();
      Op = "not in";
    } else {
      break;
    }
    NodeId Cmp = T.addNode(NodeKind::Compare, Parent, line());
    T.reparent(Left, Cmp);
    T.addNode(NodeKind::Op, Op, Cmp, line());
    parseArith(Cmp);
    Left = Cmp;
  }
  return Left;
}

NodeId Parser::parseArith(NodeId Parent) {
  NodeId Left = parseTerm(Parent);
  while (atOp("+") || atOp("-") || atOp("|") || atOp("^") || atOp("&") ||
         atOp("<<") || atOp(">>")) {
    std::string Op(cur().Text);
    advance();
    NodeId Bin = T.addNode(NodeKind::BinOp, Parent, line());
    T.reparent(Left, Bin);
    T.addNode(NodeKind::Op, Op, Bin, line());
    parseTerm(Bin);
    Left = Bin;
  }
  return Left;
}

NodeId Parser::parseTerm(NodeId Parent) {
  NodeId Left = parseFactor(Parent);
  while (atOp("*") || atOp("/") || atOp("%") || atOp("//")) {
    std::string Op(cur().Text);
    advance();
    NodeId Bin = T.addNode(NodeKind::BinOp, Parent, line());
    T.reparent(Left, Bin);
    T.addNode(NodeKind::Op, Op, Bin, line());
    parseFactor(Bin);
    Left = Bin;
  }
  return Left;
}

NodeId Parser::parseFactor(NodeId Parent) {
  if (atOp("-") || atOp("+") || atOp("~")) {
    // Self-recursive ("--~-x"), so depth-guarded on its own.
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return depthErrorExpr(Parent);
    uint32_t Ln = line();
    std::string Op(cur().Text);
    advance();
    NodeId Un = T.addNode(NodeKind::UnaryOp, Parent, Ln);
    T.addNode(NodeKind::Op, Op, Un, Ln);
    parseFactor(Un);
    return Un;
  }
  return parsePower(Parent);
}

NodeId Parser::parsePower(NodeId Parent) {
  NodeId Left = parsePostfix(Parent);
  if (atOp("**")) {
    advance();
    NodeId Bin = T.addNode(NodeKind::BinOp, Parent, line());
    T.reparent(Left, Bin);
    T.addNode(NodeKind::Op, "**", Bin, line());
    parseFactor(Bin);
    return Bin;
  }
  return Left;
}

NodeId Parser::parsePostfix(NodeId Parent) {
  NodeId Base = parseAtom(Parent);
  while (true) {
    if (atOp(".")) {
      uint32_t Ln = line();
      advance();
      NodeId Attr = T.addNode(NodeKind::AttributeLoad, Parent, Ln);
      T.reparent(Base, Attr);
      NodeId AttrName = T.addNode(NodeKind::Attr, Attr, Ln);
      if (at(TokenKind::Name)) {
        addIdent(cur().Text, AttrName);
        advance();
      } else {
        error("expected attribute name after '.'");
        addIdent("<error>", AttrName);
      }
      Base = Attr;
      continue;
    }
    if (atOp("(")) {
      uint32_t Ln = line();
      NodeId Call = T.addNode(NodeKind::Call, Parent, Ln);
      T.reparent(Base, Call);
      parseCallArgs(Call);
      Base = Call;
      continue;
    }
    if (atOp("[")) {
      uint32_t Ln = line();
      advance();
      NodeId Sub = T.addNode(NodeKind::Subscript, Parent, Ln);
      T.reparent(Base, Sub);
      if (!atOp("]")) {
        parseExpr(Sub);
        // Slices: a[1:2], a[::2] - parse the remaining pieces.
        while (eatOp(":"))
          if (!atOp("]") && !atOp(":"))
            parseExpr(Sub);
        while (eatOp(","))
          parseExpr(Sub);
      }
      if (!eatOp("]"))
        error("expected ']'");
      Base = Sub;
      continue;
    }
    return Base;
  }
}

void Parser::parseCallArgs(NodeId Call) {
  bool Ok = eatOp("(");
  assert(Ok && "parseCallArgs requires '('");
  (void)Ok;
  while (!atOp(")") && !at(TokenKind::EndOfFile)) {
    uint32_t Ln = line();
    if (eatOp("**")) {
      NodeId Star = T.addNode(NodeKind::StarArg, "KwStarArg", Call, Ln);
      parseExpr(Star);
    } else if (eatOp("*")) {
      NodeId Star = T.addNode(NodeKind::StarArg, "StarArg", Call, Ln);
      parseExpr(Star);
    } else if (at(TokenKind::Name) && peek().Kind == TokenKind::Operator &&
               peek().Text == "=") {
      NodeId Kw = T.addNode(NodeKind::KeywordArg, Call, Ln);
      addIdent(cur().Text, Kw);
      advance();
      advance(); // '='
      parseExpr(Kw);
    } else {
      NodeId Arg = parseExpr(Call);
      // Generator expression argument: f(x for x in xs). Consume the
      // comprehension tail; the element expression already parsed.
      if (atName("for")) {
        while (!atOp(")") && !at(TokenKind::EndOfFile) &&
               !at(TokenKind::Newline))
          advance();
      }
      (void)Arg;
    }
    if (!eatOp(","))
      break;
  }
  if (!eatOp(")"))
    error("expected ')' in call");
}

NodeId Parser::parseAtom(NodeId Parent) {
  uint32_t Ln = line();
  if (at(TokenKind::Number)) {
    NodeId Num = T.addNode(NodeKind::Num, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Num, Ln);
    advance();
    return Num;
  }
  if (at(TokenKind::String)) {
    NodeId Str = T.addNode(NodeKind::Str, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Str, Ln);
    advance();
    // Implicit string concatenation: "a" "b".
    while (at(TokenKind::String))
      advance();
    return Str;
  }
  if (atName("True") || atName("False")) {
    NodeId Bool = T.addNode(NodeKind::Bool, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Bool, Ln);
    advance();
    return Bool;
  }
  if (atName("None")) {
    NodeId None = T.addNode(NodeKind::NoneLit, Parent, Ln);
    T.addNode(NodeKind::Ident, "None", None, Ln);
    advance();
    return None;
  }
  if (at(TokenKind::Name)) {
    NodeId Name = T.addNode(NodeKind::NameLoad, Parent, Ln);
    addIdent(cur().Text, Name);
    advance();
    return Name;
  }
  if (eatOp("(")) {
    if (atOp(")")) { // empty tuple
      advance();
      return T.addNode(NodeKind::TupleLit, Parent, Ln);
    }
    // Parse into a temporary tuple; unwrap if it stays a single expression.
    NodeId Tuple = T.addNode(NodeKind::TupleLit, Parent, Ln);
    parseExpr(Tuple);
    if (atName("for")) { // generator expression
      while (!atOp(")") && !at(TokenKind::EndOfFile))
        advance();
    }
    bool IsTuple = false;
    while (eatOp(",")) {
      IsTuple = true;
      if (atOp(")"))
        break;
      parseExpr(Tuple);
    }
    if (!eatOp(")"))
      error("expected ')'");
    if (!IsTuple && T.node(Tuple).Children.size() == 1) {
      // Unwrap: replace the tuple with its single child in Parent. The
      // empty TupleLit node stays in the arena, unreachable from the root.
      NodeId Child = T.node(Tuple).Children.front();
      auto &Kids = T.mutableNode(Parent).Children;
      assert(!Kids.empty() && Kids.back() == Tuple);
      Kids.back() = Child;
      T.mutableNode(Child).Parent = Parent;
      T.mutableNode(Tuple).Children.clear();
      return Child;
    }
    return Tuple;
  }
  if (eatOp("[")) {
    NodeId List = T.addNode(NodeKind::ListLit, Parent, Ln);
    while (!atOp("]") && !at(TokenKind::EndOfFile)) {
      parseExpr(List);
      if (atName("for")) { // list comprehension tail
        int Depth = 1;
        while (Depth > 0 && !at(TokenKind::EndOfFile)) {
          if (atOp("["))
            ++Depth;
          if (atOp("]"))
            --Depth;
          if (Depth > 0)
            advance();
        }
        break;
      }
      if (!eatOp(","))
        break;
    }
    if (!eatOp("]"))
      error("expected ']'");
    return List;
  }
  if (eatOp("{")) {
    NodeId Dict = T.addNode(NodeKind::DictLit, Parent, Ln);
    while (!atOp("}") && !at(TokenKind::EndOfFile)) {
      parseExpr(Dict);
      if (eatOp(":"))
        parseExpr(Dict);
      if (atName("for")) { // dict/set comprehension tail
        int Depth = 1;
        while (Depth > 0 && !at(TokenKind::EndOfFile)) {
          if (atOp("{"))
            ++Depth;
          if (atOp("}"))
            --Depth;
          if (Depth > 0)
            advance();
        }
        break;
      }
      if (!eatOp(","))
        break;
    }
    if (!eatOp("}"))
      error("expected '}'");
    return Dict;
  }
  error("unexpected token '" + std::string(cur().Text) + "'",
        frontend::DiagKind::ParseUnexpectedToken);
  NodeId Err = T.addNode(NodeKind::NameLoad, Parent, Ln);
  addIdent("<error>", Err);
  if (!at(TokenKind::Newline) && !at(TokenKind::EndOfFile))
    advance();
  return Err;
}

} // namespace

ParseResult namer::python::parsePython(std::string_view Source,
                                       AstContext &Ctx,
                                       const ParseOptions &Opts) {
  telemetry::TraceSpan Span("parse.python");
  faultinject::fire("parse.python");
  ParseResult Result = Parser(Source, Ctx, Opts).run();
  if (telemetry::enabled()) {
    // Cached references: one registry lookup per process, not per file.
    static telemetry::Counter &Files =
        telemetry::metrics().counter("parse.files");
    static telemetry::Counter &Errors =
        telemetry::metrics().counter("parse.errors");
    Files.add(1);
    if (!Result.Errors.empty())
      Errors.add(Result.Errors.size());
  }
  return Result;
}
