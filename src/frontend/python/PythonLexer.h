//===- frontend/python/PythonLexer.h - Python lexer -------------*- C++ -*-==//
///
/// \file
/// An indentation-aware lexer for the Python subset Namer analyzes. Emits
/// INDENT/DEDENT tokens following the CPython tokenizer's stack algorithm,
/// suppresses newlines inside brackets, and tolerates malformed input (the
/// corpus is real-world-shaped, so the pipeline must never die on one file).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_PYTHON_PYTHONLEXER_H
#define NAMER_FRONTEND_PYTHON_PYTHONLEXER_H

#include "frontend/Diag.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace python {

enum class TokenKind : uint8_t {
  Name,
  Number,
  String,
  Operator,
  Newline,
  Indent,
  Dedent,
  EndOfFile,
};

struct Token {
  TokenKind Kind;
  /// A view into the lexed source (or static operator storage): the lexer
  /// copies no characters, so token texts are valid exactly as long as the
  /// source buffer outlives the token stream -- which the parsers
  /// guarantee by interning every text they keep.
  std::string_view Text;
  uint32_t Line;
};

/// Result of lexing one file: the token stream plus recoverable diagnostics.
/// Errors carries the rendered strings (renderDiag) of Diags; consumers that
/// need the taxonomy (quarantine, telemetry) read Diags.
struct LexResult {
  std::vector<Token> Tokens;
  std::vector<std::string> Errors;
  std::vector<frontend::Diag> Diags;
};

/// Lexes \p Source. Never fails hard: unknown characters are skipped with a
/// diagnostic, unterminated strings are closed at end of line.
LexResult lexPython(std::string_view Source);

} // namespace python
} // namespace namer

#endif // NAMER_FRONTEND_PYTHON_PYTHONLEXER_H
