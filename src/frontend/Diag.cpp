//===- frontend/Diag.cpp --------------------------------------------------==//

#include "frontend/Diag.h"

using namespace namer;
using namespace namer::frontend;

std::string_view namer::frontend::diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::LexInvalidChar:
    return "lex-invalid-char";
  case DiagKind::LexUnterminatedString:
    return "lex-unterminated-string";
  case DiagKind::LexUnterminatedComment:
    return "lex-unterminated-comment";
  case DiagKind::LexBadIndent:
    return "lex-bad-indent";
  case DiagKind::ParseExpected:
    return "parse-expected";
  case DiagKind::ParseUnexpectedToken:
    return "parse-unexpected-token";
  case DiagKind::DepthExceeded:
    return "depth-exceeded";
  }
  return "unknown";
}

std::string namer::frontend::renderDiag(const Diag &D) {
  std::string Out = "line " + std::to_string(D.Line) + ": ";
  Out += diagKindName(D.Kind);
  if (!D.Message.empty()) {
    Out += ": ";
    Out += D.Message;
  }
  return Out;
}
