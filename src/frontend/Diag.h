//===- frontend/Diag.h - Frontend diagnostic taxonomy ----------*- C++ -*-==//
///
/// \file
/// Structured diagnostics shared by both language frontends. The Big Code
/// corpus is real-world-shaped: lexers and parsers never abort a file, they
/// record a `Diag` per recoverable defect and resynchronize (panic mode at
/// statement boundaries). Downstream consumers — the ingestion budgets in
/// `NamerPipeline::build` and the quarantine log — key on `DiagKind`
/// rather than parsing message strings, so the taxonomy here is the
/// contract between the frontends and the fault-tolerance layer.
///
/// Kinds are grouped by producer: `Lex*` from the tokenizers, `Parse*`
/// from the recursive-descent parsers, and `DepthExceeded` from the
/// nesting-depth guard that bounds parser recursion (the guard emits
/// error nodes instead of recursing, so a 10k-deep nesting bomb degrades
/// to a flat error expression instead of a stack overflow).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_DIAG_H
#define NAMER_FRONTEND_DIAG_H

#include <cstdint>
#include <string>
#include <string_view>

namespace namer {
namespace frontend {

/// The frontend error taxonomy. Stable names (diagKindName) are exported
/// into quarantine records and telemetry counters; add new kinds at the
/// end and never reorder.
enum class DiagKind : uint8_t {
  LexInvalidChar,        ///< byte outside the language's alphabet (NUL, bad UTF-8, ...)
  LexUnterminatedString, ///< string/char literal closed by newline or EOF
  LexUnterminatedComment,///< block comment open at EOF
  LexBadIndent,          ///< inconsistent indentation (Python)
  ParseExpected,         ///< a required token was missing; parser resynced
  ParseUnexpectedToken,  ///< token that can start nothing here; skipped
  DepthExceeded,         ///< nesting-depth cap hit; subtree replaced by error nodes
};

/// Stable kebab-case name of \p Kind, e.g. "lex-invalid-char".
std::string_view diagKindName(DiagKind Kind);

/// One recoverable frontend diagnostic.
struct Diag {
  DiagKind Kind = DiagKind::ParseExpected;
  uint32_t Line = 0;
  std::string Message;
};

/// Canonical human rendering: "line N: <kind>: message".
std::string renderDiag(const Diag &D);

} // namespace frontend
} // namespace namer

#endif // NAMER_FRONTEND_DIAG_H
