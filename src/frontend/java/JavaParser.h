//===- frontend/java/JavaParser.h - Java parser -----------------*- C++ -*-==//
///
/// \file
/// Recursive-descent parser for the Java subset: classes with fields,
/// methods and constructors, local variable declarations, control flow
/// (if/for/foreach/while/do/try-catch/switch-lite), object creation,
/// casts, generics and arrays. Produces the same AST node vocabulary as the
/// Python frontend so the pattern layer is language-agnostic.
///
/// Error-tolerant: diagnostics are recorded and parsing resynchronizes at
/// ';' or '}' boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_JAVA_JAVAPARSER_H
#define NAMER_FRONTEND_JAVA_JAVAPARSER_H

#include "ast/Tree.h"

#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace java {

struct ParseResult {
  Tree Module;
  std::vector<std::string> Errors;

  explicit ParseResult(AstContext &Ctx) : Module(Ctx) {}
};

/// Parses \p Source into a module tree allocated in \p Ctx.
ParseResult parseJava(std::string_view Source, AstContext &Ctx);

} // namespace java
} // namespace namer

#endif // NAMER_FRONTEND_JAVA_JAVAPARSER_H
