//===- frontend/java/JavaParser.h - Java parser -----------------*- C++ -*-==//
///
/// \file
/// Recursive-descent parser for the Java subset: classes with fields,
/// methods and constructors, local variable declarations, control flow
/// (if/for/foreach/while/do/try-catch/switch-lite), object creation,
/// casts, generics and arrays. Produces the same AST node vocabulary as the
/// Python frontend so the pattern layer is language-agnostic.
///
/// Error-tolerant: structured `frontend::Diag` records are kept (panic
/// mode) and parsing resynchronizes at ';' or '}' boundaries. Recursion is
/// bounded by ParseOptions::MaxNestingDepth — past the cap the parser
/// emits error nodes and a DepthExceeded diagnostic instead of recursing.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_JAVA_JAVAPARSER_H
#define NAMER_FRONTEND_JAVA_JAVAPARSER_H

#include "ast/Tree.h"
#include "frontend/Diag.h"

#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace java {

/// Knobs bounding one parse.
struct ParseOptions {
  /// Maximum recursion depth across nested declarations, statements and
  /// expressions.
  unsigned MaxNestingDepth = 192;
};

/// A parsed module plus recoverable diagnostics. Errors mirrors Diags in
/// rendered form; programmatic consumers key on Diags' DiagKind taxonomy.
struct ParseResult {
  Tree Module;
  std::vector<std::string> Errors;
  std::vector<frontend::Diag> Diags;
  /// Token count of the lexed file (resource-budget input).
  size_t NumTokens = 0;
  /// True when the nesting-depth guard fired at least once.
  bool DepthExceeded = false;

  explicit ParseResult(AstContext &Ctx) : Module(Ctx) {}
};

/// Parses \p Source into a module tree allocated in \p Ctx.
ParseResult parseJava(std::string_view Source, AstContext &Ctx,
                      const ParseOptions &Opts = ParseOptions());

} // namespace java
} // namespace namer

#endif // NAMER_FRONTEND_JAVA_JAVAPARSER_H
