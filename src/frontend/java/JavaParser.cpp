//===- frontend/java/JavaParser.cpp ---------------------------------------==//

#include "frontend/java/JavaParser.h"

#include "frontend/java/JavaLexer.h"

#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace namer;
using namespace namer::java;

namespace {

constexpr std::string_view Modifiers[] = {
    "public",   "private",  "protected", "static",   "final",
    "abstract", "native",   "transient", "volatile", "synchronized",
    "strictfp", "default",
};

constexpr std::string_view PrimitiveTypes[] = {
    "void", "boolean", "byte", "char", "short", "int", "long", "float",
    "double",
};

bool isModifier(std::string_view Text) {
  for (std::string_view M : Modifiers)
    if (Text == M)
      return true;
  return false;
}

bool isPrimitive(std::string_view Text) {
  for (std::string_view P : PrimitiveTypes)
    if (Text == P)
      return true;
  return false;
}

bool isReservedStatementWord(std::string_view Text) {
  return Text == "if" || Text == "for" || Text == "while" || Text == "do" ||
         Text == "try" || Text == "return" || Text == "throw" ||
         Text == "break" || Text == "continue" || Text == "switch" ||
         Text == "new" || Text == "class" || Text == "else" ||
         Text == "case" || Text == "instanceof" || Text == "assert";
}

class Parser {
public:
  Parser(std::string_view Source, AstContext &Ctx, const ParseOptions &Opts)
      : Ctx(Ctx), Opts(Opts), Result(Ctx), T(Result.Module) {
    LexResult Lexed = lexJava(Source);
    Tokens = std::move(Lexed.Tokens);
    Result.NumTokens = Tokens.size();
    for (auto &E : Lexed.Errors)
      Result.Errors.push_back("lex: " + E);
    Result.Diags = std::move(Lexed.Diags);
    // Node count tracks token count closely; one up-front reservation
    // replaces the vector's doubling while the tree grows.
    T.reserveNodes(Tokens.size());
    // All token texts are views into Source; every one the tree keeps is
    // interned through the batch handle (one shard lock per cache miss,
    // repeats are free). run() detaches the handle before the tree is
    // moved out, since the handle dies with this parser.
    T.setInternHandle(&Handle);
  }

  ParseResult run() {
    NodeId Module = T.addNode(NodeKind::Module, InvalidNode);
    T.setRoot(Module);
    parseCompilationUnit(Module);
    T.setInternHandle(nullptr);
    return std::move(Result);
  }

private:
  // --- Token cursor -------------------------------------------------------
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }
  bool at(TokenKind Kind) const { return cur().Kind == Kind; }
  bool atOp(std::string_view Op) const {
    return cur().Kind == TokenKind::Operator && cur().Text == Op;
  }
  bool atName(std::string_view Name) const {
    return cur().Kind == TokenKind::Name && cur().Text == Name;
  }
  bool eatOp(std::string_view Op) {
    if (!atOp(Op))
      return false;
    advance();
    return true;
  }
  bool eatName(std::string_view Name) {
    if (!atName(Name))
      return false;
    advance();
    return true;
  }
  uint32_t line() const { return cur().Line; }

  void error(const std::string &Message,
             frontend::DiagKind Kind = frontend::DiagKind::ParseExpected) {
    frontend::Diag D{Kind, cur().Line, Message};
    Result.Errors.push_back(frontend::renderDiag(D));
    Result.Diags.push_back(std::move(D));
  }

  /// Recursion-depth admission. Returns false past the cap, recording one
  /// DepthExceeded diagnostic per file; the caller must then produce a
  /// placeholder node WITHOUT recursing (and consume at least one token or
  /// return into a loop that does, so parsing always makes progress).
  bool enterDepth() {
    if (RecursionDepth >= Opts.MaxNestingDepth) {
      if (!Result.DepthExceeded) {
        Result.DepthExceeded = true;
        error("nesting deeper than " + std::to_string(Opts.MaxNestingDepth),
              frontend::DiagKind::DepthExceeded);
      }
      return false;
    }
    ++RecursionDepth;
    return true;
  }

  struct DepthGuard {
    Parser &P;
    bool Ok;
    explicit DepthGuard(Parser &P) : P(P), Ok(P.enterDepth()) {}
    ~DepthGuard() {
      if (Ok)
        --P.RecursionDepth;
    }
  };

  /// Placeholder expression used when the depth guard refuses entry.
  NodeId depthErrorExpr(NodeId Parent) {
    NodeId Err = T.addNode(NodeKind::NameLoad, Parent, line());
    addIdent("<error>", Err);
    if (!at(TokenKind::EndOfFile) && !atOp(";") && !atOp("}"))
      advance();
    return Err;
  }

  /// Skips to just after the next ';' at the current brace depth, or to the
  /// closing '}' of the current block.
  void syncStatement() {
    int Depth = 0;
    while (!at(TokenKind::EndOfFile)) {
      if (atOp("{"))
        ++Depth;
      if (atOp("}")) {
        if (Depth == 0)
          return;
        --Depth;
      }
      bool WasSemicolon = Depth == 0 && atOp(";");
      advance();
      if (WasSemicolon)
        return;
    }
  }

  void skipAnnotations() {
    while (atOp("@")) {
      advance();
      if (at(TokenKind::Name))
        advance();
      while (eatOp("."))
        if (at(TokenKind::Name))
          advance();
      if (atOp("("))
        skipBalanced("(", ")");
    }
  }

  void skipModifiers() {
    while (true) {
      skipAnnotations();
      if (at(TokenKind::Name) && isModifier(cur().Text)) {
        // "default" is both a modifier and a switch label; only skip it when
        // a type-ish token follows.
        if (cur().Text == "default" && peek().Kind == TokenKind::Operator)
          return;
        advance();
        continue;
      }
      return;
    }
  }

  void skipBalanced(std::string_view Open, std::string_view Close) {
    assert(atOp(Open) && "skipBalanced requires the opening token");
    int Depth = 0;
    while (!at(TokenKind::EndOfFile)) {
      if (atOp(Open))
        ++Depth;
      else if (atOp(Close)) {
        --Depth;
        if (Depth == 0) {
          advance();
          return;
        }
      }
      advance();
    }
  }

  // --- Types --------------------------------------------------------------
  /// Returns the number of tokens a type occupies starting at offset
  /// \p Start, or 0 if the tokens do not form a type.
  size_t scanType(size_t Start) const;
  NodeId parseType(NodeId Parent);

  // --- Structure ----------------------------------------------------------
  void parseCompilationUnit(NodeId Module);
  void parseTypeDecl(NodeId Parent);
  void parseClassBody(NodeId Body, std::string_view ClassName);
  void parseMember(NodeId Body, std::string_view ClassName);
  void parseMethodRest(NodeId Parent, std::string_view Name, uint32_t Ln);
  void parseBlock(NodeId Body);
  void parseStatement(NodeId Parent);
  void parseFor(NodeId Parent);
  void parseIf(NodeId Parent);
  void parseTry(NodeId Parent);
  void parseVarDecl(NodeId Parent, bool ExpectSemicolon);

  // --- Expressions --------------------------------------------------------
  NodeId parseExpression(NodeId Parent); // assignment level
  NodeId parseTernary(NodeId Parent);
  NodeId parseBinary(NodeId Parent, int MinPrecedence);
  NodeId parseUnary(NodeId Parent);
  NodeId parsePostfix(NodeId Parent);
  NodeId parseAtom(NodeId Parent);
  void parseCallArgs(NodeId Call);
  NodeId parseNew(NodeId Parent);

  void convertToStore(NodeId N);

  NodeId addIdent(std::string_view Name, NodeId Parent) {
    return T.addNode(NodeKind::Ident, Name, Parent, line());
  }

  AstContext &Ctx;
  ParseOptions Opts;
  ParseResult Result;
  Tree &T;
  StringInterner::BatchHandle Handle{Ctx.strings()};
  std::vector<Token> Tokens;
  size_t Pos = 0;
  /// Named to avoid clashing with the local `Depth` brace counters.
  unsigned RecursionDepth = 0;
};

void Parser::convertToStore(NodeId N) {
  const Node &Nd = T.node(N);
  switch (Nd.Kind) {
  case NodeKind::NameLoad:
    T.setKind(N, NodeKind::NameStore);
    T.setValue(N, Ctx.kindSymbol(NodeKind::NameStore));
    return;
  case NodeKind::AttributeLoad:
    T.setKind(N, NodeKind::AttributeStore);
    T.setValue(N, Ctx.kindSymbol(NodeKind::AttributeStore));
    return;
  default:
    return;
  }
}

// --- Types ----------------------------------------------------------------

size_t Parser::scanType(size_t Start) const {
  size_t I = Start;
  auto Tok = [&](size_t Idx) -> const Token & {
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  };
  if (Tok(I).Kind != TokenKind::Name)
    return 0;
  if (isReservedStatementWord(Tok(I).Text))
    return 0;
  ++I;
  // Dotted name: java.util.List.
  while (Tok(I).Kind == TokenKind::Operator && Tok(I).Text == "." &&
         Tok(I + 1).Kind == TokenKind::Name)
    I += 2;
  // Generics: List<...> with nesting.
  if (Tok(I).Kind == TokenKind::Operator && Tok(I).Text == "<") {
    int Depth = 0;
    size_t J = I;
    while (J < Tokens.size()) {
      const Token &Tk = Tok(J);
      if (Tk.Kind == TokenKind::EndOfFile)
        return 0;
      if (Tk.Kind == TokenKind::Operator) {
        if (Tk.Text == "<")
          ++Depth;
        else if (Tk.Text == ">") {
          --Depth;
          if (Depth == 0) {
            ++J;
            break;
          }
        } else if (Tk.Text != "," && Tk.Text != "." && Tk.Text != "?" &&
                   Tk.Text != "[" && Tk.Text != "]") {
          return 0; // not a generic argument list after all
        }
      } else if (Tk.Kind != TokenKind::Name) {
        return 0;
      } else if (Tk.Kind == TokenKind::Name && Tk.Text == "extends") {
        // wildcard bounds are fine
      }
      ++J;
    }
    I = J;
  }
  // Array dims.
  while (Tok(I).Kind == TokenKind::Operator && Tok(I).Text == "[" &&
         Tok(I + 1).Kind == TokenKind::Operator && Tok(I + 1).Text == "]")
    I += 2;
  return I - Start;
}

NodeId Parser::parseType(NodeId Parent) {
  uint32_t Ln = line();
  // Self-recursive through generic arguments (List<List<...>>).
  DepthGuard Guard(*this);
  if (!Guard.Ok) {
    NodeId Type = T.addNode(NodeKind::TypeRef, Parent, Ln);
    addIdent("<error>", Type);
    if (at(TokenKind::Name))
      advance();
    return Type;
  }
  NodeId Type = T.addNode(NodeKind::TypeRef, Parent, Ln);
  if (!at(TokenKind::Name)) {
    error("expected type name");
    addIdent("<error>", Type);
    return Type;
  }
  std::string Name(cur().Text);
  advance();
  while (atOp(".") && peek().Kind == TokenKind::Name) {
    advance();
    Name += '.';
    Name += cur().Text;
    advance();
  }
  addIdent(Name, Type);
  if (atOp("<")) {
    // Generic arguments become nested TypeRef children.
    advance();
    while (!atOp(">") && !at(TokenKind::EndOfFile)) {
      if (atOp("?")) { // wildcard
        advance();
        if (eatName("extends") || eatName("super"))
          parseType(Type);
        else
          T.addNode(NodeKind::TypeRef, "Wildcard", Type, line());
      } else if (at(TokenKind::Name)) {
        parseType(Type);
      } else {
        break;
      }
      if (!eatOp(","))
        break;
    }
    if (!eatOp(">"))
      error("expected '>' in generic type");
  }
  while (atOp("[") && peek().Kind == TokenKind::Operator &&
         peek().Text == "]") {
    advance();
    advance();
    T.addNode(NodeKind::Op, "[]", Type, Ln);
  }
  return Type;
}

// --- Structure --------------------------------------------------------------

void Parser::parseCompilationUnit(NodeId Module) {
  while (!at(TokenKind::EndOfFile)) {
    skipAnnotations();
    if (atName("package")) {
      // package a.b.c;
      while (!atOp(";") && !at(TokenKind::EndOfFile))
        advance();
      eatOp(";");
      continue;
    }
    if (atName("import")) {
      uint32_t Ln = line();
      advance();
      eatName("static");
      std::string Path;
      while (at(TokenKind::Name) || atOp("*")) {
        Path += cur().Text.empty() ? std::string_view("*") : cur().Text;
        advance();
        if (!eatOp("."))
          break;
        Path += '.';
      }
      NodeId Import = T.addNode(NodeKind::Import, Module, Ln);
      addIdent(Path, Import);
      eatOp(";");
      continue;
    }
    if (at(TokenKind::Name) &&
        (isModifier(cur().Text) || cur().Text == "class" ||
         cur().Text == "interface" || cur().Text == "enum")) {
      parseTypeDecl(Module);
      continue;
    }
    if (atOp(";")) {
      advance();
      continue;
    }
    error("unexpected token '" + std::string(cur().Text) + "' at top level",
          frontend::DiagKind::ParseUnexpectedToken);
    advance();
  }
}

void Parser::parseTypeDecl(NodeId Parent) {
  // Self-recursive through nested classes.
  DepthGuard Guard(*this);
  if (!Guard.Ok) {
    syncStatement(); // consumes the balanced nested body
    return;
  }
  skipModifiers();
  bool IsEnum = atName("enum");
  if (!eatName("class") && !eatName("interface") && !eatName("enum")) {
    error("expected type declaration");
    syncStatement();
    return;
  }
  uint32_t Ln = line();
  NodeId Class = T.addNode(NodeKind::ClassDef, Parent, Ln);
  std::string ClassName = "<error>";
  if (at(TokenKind::Name)) {
    ClassName = cur().Text;
    addIdent(ClassName, Class);
    advance();
  } else {
    error("expected class name");
    addIdent(ClassName, Class);
  }
  // Type parameters: class Foo<T extends Bar>.
  if (atOp("<"))
    skipBalanced("<", ">");
  NodeId Bases = T.addNode(NodeKind::BasesList, Class, Ln);
  if (eatName("extends")) {
    parseType(Bases);
    while (eatOp(",")) // interface multiple inheritance
      parseType(Bases);
  }
  if (eatName("implements")) {
    parseType(Bases);
    while (eatOp(","))
      parseType(Bases);
  }
  NodeId Body = T.addNode(NodeKind::Body, Class, Ln);
  if (!eatOp("{")) {
    error("expected '{' in type declaration");
    return;
  }
  if (IsEnum) {
    // Enum constants: NAME(args)?, ... ;
    while (at(TokenKind::Name) && !isModifier(cur().Text)) {
      addIdent(cur().Text, Body);
      advance();
      if (atOp("("))
        skipBalanced("(", ")");
      if (atOp("{"))
        skipBalanced("{", "}");
      if (!eatOp(","))
        break;
    }
    eatOp(";");
  }
  parseClassBody(Body, ClassName);
}

void Parser::parseClassBody(NodeId Body, std::string_view ClassName) {
  while (!atOp("}") && !at(TokenKind::EndOfFile))
    parseMember(Body, ClassName);
  eatOp("}");
}

void Parser::parseMember(NodeId Body, std::string_view ClassName) {
  skipModifiers();
  if (atOp(";")) {
    advance();
    return;
  }
  if (atName("class") || atName("interface") || atName("enum"))
    return parseTypeDecl(Body);
  if (atOp("{")) { // static / instance initializer
    NodeId Block = T.addNode(NodeKind::Body, Body, line());
    advance();
    parseBlock(Block);
    return;
  }
  // Method type parameters: <T> T identity(...).
  if (atOp("<"))
    skipBalanced("<", ">");

  // Constructor: ClassName '('.
  if (at(TokenKind::Name) && cur().Text == ClassName &&
      peek().Kind == TokenKind::Operator && peek().Text == "(") {
    uint32_t Ln = line();
    std::string Name(cur().Text);
    advance();
    return parseMethodRest(Body, Name, Ln);
  }

  size_t TypeLen = scanType(Pos);
  if (TypeLen == 0) {
    error("unexpected member starting with '" + std::string(cur().Text) + "'",
          frontend::DiagKind::ParseUnexpectedToken);
    syncStatement();
    return;
  }
  size_t AfterType = Pos + TypeLen;
  const Token &NameTok =
      AfterType < Tokens.size() ? Tokens[AfterType] : Tokens.back();
  const Token &AfterName =
      AfterType + 1 < Tokens.size() ? Tokens[AfterType + 1] : Tokens.back();

  if (NameTok.Kind == TokenKind::Name &&
      AfterName.Kind == TokenKind::Operator && AfterName.Text == "(") {
    // Method: the return type is skipped, not kept in the tree; the pattern
    // layer keys on the name + parameters, mirroring the Python frontend.
    uint32_t Ln = line();
    for (size_t I = 0; I != TypeLen; ++I)
      advance();
    std::string Name(cur().Text);
    advance();
    return parseMethodRest(Body, Name, Ln);
  }
  // Field declaration(s).
  parseVarDecl(Body, /*ExpectSemicolon=*/true);
}

void Parser::parseMethodRest(NodeId Parent, std::string_view Name,
                             uint32_t Ln) {
  NodeId Fn = T.addNode(NodeKind::FunctionDef, Parent, Ln);
  addIdent(Name, Fn);
  NodeId Params = T.addNode(NodeKind::ParamList, Fn, Ln);
  if (eatOp("(")) {
    while (!atOp(")") && !at(TokenKind::EndOfFile)) {
      skipAnnotations();
      eatName("final");
      NodeId P = T.addNode(NodeKind::Param, "Param", Params, line());
      parseType(P);
      if (eatOp("...")) // varargs
        T.setValue(P, Ctx.intern("StarParam"));
      if (at(TokenKind::Name)) {
        addIdent(cur().Text, P);
        advance();
      } else {
        error("expected parameter name");
      }
      while (atOp("[") && peek().Text == "]") {
        advance();
        advance();
      }
      if (!eatOp(","))
        break;
    }
    if (!eatOp(")"))
      error("expected ')' after parameters");
  } else {
    error("expected '(' in method declaration");
  }
  if (eatName("throws")) {
    parseType(Fn);
    while (eatOp(","))
      parseType(Fn);
  }
  NodeId Body = T.addNode(NodeKind::Body, Fn, Ln);
  if (atOp("{")) {
    advance();
    parseBlock(Body);
    return;
  }
  eatOp(";"); // abstract / interface method
}

void Parser::parseBlock(NodeId Body) {
  while (!atOp("}") && !at(TokenKind::EndOfFile))
    parseStatement(Body);
  eatOp("}");
}

void Parser::parseVarDecl(NodeId Parent, bool ExpectSemicolon) {
  uint32_t Ln = line();
  // One VarDecl node per declarator; the type is re-attached to each.
  size_t TypeStart = Pos;
  size_t TypeLen = scanType(Pos);
  if (TypeLen == 0) {
    error("expected a type in declaration");
    syncStatement();
    return;
  }
  bool First = true;
  while (true) {
    NodeId Decl = T.addNode(NodeKind::VarDecl, Parent, Ln);
    size_t Resume = Pos;
    Pos = TypeStart;
    parseType(Decl);
    if (First) {
      First = false;
    } else {
      Pos = Resume;
    }
    NodeId Store = T.addNode(NodeKind::NameStore, Decl, line());
    if (at(TokenKind::Name)) {
      addIdent(cur().Text, Store);
      advance();
    } else {
      error("expected variable name");
      addIdent("<error>", Store);
    }
    while (atOp("[") && peek().Text == "]") { // trailing array dims
      advance();
      advance();
    }
    if (eatOp("=")) {
      if (atOp("{")) { // array initializer
        NodeId List = T.addNode(NodeKind::ListLit, Decl, line());
        advance();
        while (!atOp("}") && !at(TokenKind::EndOfFile)) {
          if (atOp("{")) { // nested initializer: flatten coarsely
            skipBalanced("{", "}");
          } else {
            parseExpression(List);
          }
          if (!eatOp(","))
            break;
        }
        eatOp("}");
      } else {
        parseExpression(Decl);
      }
    }
    if (!eatOp(","))
      break;
  }
  if (ExpectSemicolon && !eatOp(";")) {
    error("expected ';' after declaration");
    syncStatement();
  }
}

void Parser::parseStatement(NodeId Parent) {
  DepthGuard Guard(*this);
  if (!Guard.Ok) {
    // Too deep to model: degrade to Pass and resynchronize.
    T.addNode(NodeKind::Pass, Parent, line());
    syncStatement();
    return;
  }
  skipAnnotations();
  uint32_t Ln = line();
  if (atOp(";")) {
    advance();
    return;
  }
  if (atOp("{")) {
    advance();
    parseBlock(Parent); // flatten nested blocks into the enclosing body
    return;
  }
  if (atName("if"))
    return parseIf(Parent);
  if (atName("for"))
    return parseFor(Parent);
  if (atName("while")) {
    advance();
    NodeId While = T.addNode(NodeKind::While, Parent, Ln);
    if (eatOp("(")) {
      parseExpression(While);
      if (!eatOp(")"))
        error("expected ')'");
    }
    NodeId Body = T.addNode(NodeKind::Body, While, Ln);
    if (eatOp("{"))
      parseBlock(Body);
    else
      parseStatement(Body);
    return;
  }
  if (atName("do")) {
    advance();
    NodeId While = T.addNode(NodeKind::While, Parent, Ln);
    NodeId Body = T.addNode(NodeKind::Body, While, Ln);
    if (eatOp("{"))
      parseBlock(Body);
    else
      parseStatement(Body);
    if (eatName("while") && eatOp("(")) {
      parseExpression(While);
      eatOp(")");
    }
    eatOp(";");
    return;
  }
  if (atName("try"))
    return parseTry(Parent);
  if (atName("return")) {
    advance();
    NodeId Ret = T.addNode(NodeKind::Return, Parent, Ln);
    if (!atOp(";"))
      parseExpression(Ret);
    if (!eatOp(";"))
      syncStatement();
    return;
  }
  if (atName("throw")) {
    advance();
    NodeId Throw = T.addNode(NodeKind::Raise, Parent, Ln);
    parseExpression(Throw);
    if (!eatOp(";"))
      syncStatement();
    return;
  }
  if (atName("break")) {
    advance();
    T.addNode(NodeKind::Break, Parent, Ln);
    if (at(TokenKind::Name))
      advance(); // label
    eatOp(";");
    return;
  }
  if (atName("continue")) {
    advance();
    T.addNode(NodeKind::Continue, Parent, Ln);
    if (at(TokenKind::Name))
      advance(); // label
    eatOp(";");
    return;
  }
  if (atName("switch")) {
    advance();
    NodeId If = T.addNode(NodeKind::If, Parent, Ln);
    if (eatOp("(")) {
      parseExpression(If);
      eatOp(")");
    }
    NodeId Body = T.addNode(NodeKind::Body, If, Ln);
    if (eatOp("{")) {
      while (!atOp("}") && !at(TokenKind::EndOfFile)) {
        if (atName("case")) {
          advance();
          // Consume the case label expression up to ':'.
          while (!atOp(":") && !at(TokenKind::EndOfFile))
            advance();
          eatOp(":");
          continue;
        }
        if (atName("default")) {
          advance();
          eatOp(":");
          continue;
        }
        parseStatement(Body);
      }
      eatOp("}");
    }
    return;
  }
  if (atName("synchronized") && peek().Kind == TokenKind::Operator &&
      peek().Text == "(") {
    advance();
    NodeId Stmt = T.addNode(NodeKind::ExprStmt, Parent, Ln);
    eatOp("(");
    parseExpression(Stmt);
    eatOp(")");
    if (eatOp("{"))
      parseBlock(Parent);
    return;
  }
  if (atName("assert")) {
    advance();
    NodeId Stmt = T.addNode(NodeKind::ExprStmt, Parent, Ln);
    parseExpression(Stmt);
    if (eatOp(":"))
      parseExpression(Stmt);
    if (!eatOp(";"))
      syncStatement();
    return;
  }

  // Local variable declaration?
  size_t TypeLen = scanType(Pos);
  if (TypeLen != 0) {
    size_t After = Pos + TypeLen;
    const Token &NameTok =
        After < Tokens.size() ? Tokens[After] : Tokens.back();
    const Token &AfterName =
        After + 1 < Tokens.size() ? Tokens[After + 1] : Tokens.back();
    bool LooksLikeDecl =
        NameTok.Kind == TokenKind::Name &&
        !isReservedStatementWord(NameTok.Text) &&
        AfterName.Kind == TokenKind::Operator &&
        (AfterName.Text == "=" || AfterName.Text == ";" ||
         AfterName.Text == "," || AfterName.Text == "[" ||
         AfterName.Text == ":");
    if (LooksLikeDecl)
      return parseVarDecl(Parent, /*ExpectSemicolon=*/true);
  }

  // Expression statement.
  NodeId Stmt = T.addNode(NodeKind::ExprStmt, Parent, Ln);
  parseExpression(Stmt);
  if (!eatOp(";")) {
    error("expected ';' after expression");
    syncStatement();
  }
}

void Parser::parseIf(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // if
  NodeId If = T.addNode(NodeKind::If, Parent, Ln);
  if (eatOp("(")) {
    parseExpression(If);
    if (!eatOp(")"))
      error("expected ')' in if");
  }
  NodeId Then = T.addNode(NodeKind::Body, If, Ln);
  if (eatOp("{"))
    parseBlock(Then);
  else
    parseStatement(Then);
  if (eatName("else")) {
    NodeId Else = T.addNode(NodeKind::Body, If, line());
    if (eatOp("{"))
      parseBlock(Else);
    else
      parseStatement(Else);
  }
}

void Parser::parseFor(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // for
  NodeId For = T.addNode(NodeKind::For, Parent, Ln);
  if (!eatOp("(")) {
    error("expected '(' in for");
    syncStatement();
    return;
  }
  // Foreach: for (Type name : expr).
  size_t TypeLen = scanType(Pos);
  if (TypeLen != 0) {
    size_t After = Pos + TypeLen;
    const Token &NameTok =
        After < Tokens.size() ? Tokens[After] : Tokens.back();
    const Token &AfterName =
        After + 1 < Tokens.size() ? Tokens[After + 1] : Tokens.back();
    if (NameTok.Kind == TokenKind::Name &&
        AfterName.Kind == TokenKind::Operator && AfterName.Text == ":") {
      NodeId Decl = T.addNode(NodeKind::VarDecl, For, Ln);
      parseType(Decl);
      NodeId Store = T.addNode(NodeKind::NameStore, Decl, line());
      addIdent(cur().Text, Store);
      advance();
      eatOp(":");
      parseExpression(For);
      eatOp(")");
      NodeId Body = T.addNode(NodeKind::Body, For, Ln);
      if (eatOp("{"))
        parseBlock(Body);
      else
        parseStatement(Body);
      return;
    }
    // Classic for with declaration init: for (int i = 0; ...).
    size_t After2 = Pos + TypeLen;
    const Token &N2 = After2 < Tokens.size() ? Tokens[After2] : Tokens.back();
    const Token &A2 =
        After2 + 1 < Tokens.size() ? Tokens[After2 + 1] : Tokens.back();
    if (N2.Kind == TokenKind::Name && A2.Kind == TokenKind::Operator &&
        (A2.Text == "=" || A2.Text == ";")) {
      parseVarDecl(For, /*ExpectSemicolon=*/false);
    } else if (!atOp(";")) {
      parseExpression(For);
      while (eatOp(","))
        parseExpression(For);
    }
  } else if (!atOp(";")) {
    parseExpression(For);
    while (eatOp(","))
      parseExpression(For);
  }
  eatOp(";");
  if (!atOp(";"))
    parseExpression(For); // condition
  eatOp(";");
  if (!atOp(")")) {
    parseExpression(For); // update
    while (eatOp(","))
      parseExpression(For);
  }
  eatOp(")");
  NodeId Body = T.addNode(NodeKind::Body, For, Ln);
  if (eatOp("{"))
    parseBlock(Body);
  else
    parseStatement(Body);
}

void Parser::parseTry(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // try
  NodeId Try = T.addNode(NodeKind::Try, Parent, Ln);
  // try-with-resources.
  if (atOp("(")) {
    advance();
    while (!atOp(")") && !at(TokenKind::EndOfFile)) {
      if (scanType(Pos) != 0)
        parseVarDecl(Try, /*ExpectSemicolon=*/false);
      else
        parseExpression(Try);
      if (!eatOp(";"))
        break;
    }
    eatOp(")");
  }
  NodeId Body = T.addNode(NodeKind::Body, Try, Ln);
  if (eatOp("{"))
    parseBlock(Body);
  while (atName("catch")) {
    uint32_t CatchLn = line();
    advance();
    NodeId Catch = T.addNode(NodeKind::Catch, Try, CatchLn);
    if (eatOp("(")) {
      eatName("final");
      parseType(Catch);
      while (eatOp("|")) // multi-catch
        parseType(Catch);
      if (at(TokenKind::Name)) {
        addIdent(cur().Text, Catch);
        advance();
      }
      eatOp(")");
    }
    NodeId CatchBody = T.addNode(NodeKind::Body, Catch, CatchLn);
    if (eatOp("{"))
      parseBlock(CatchBody);
  }
  if (eatName("finally")) {
    NodeId Finally = T.addNode(NodeKind::Body, Try, line());
    if (eatOp("{"))
      parseBlock(Finally);
  }
}

// --- Expressions ------------------------------------------------------------

NodeId Parser::parseExpression(NodeId Parent) {
  DepthGuard Guard(*this);
  if (!Guard.Ok)
    return depthErrorExpr(Parent);
  NodeId Left = parseTernary(Parent);
  constexpr std::string_view AssignOps[] = {"=",  "+=", "-=", "*=", "/=",
                                            "%=", "&=", "|=", "^=", "<<="};
  for (std::string_view Op : AssignOps) {
    if (!atOp(Op))
      continue;
    uint32_t Ln = line();
    advance();
    bool IsPlain = Op == "=";
    NodeId Assign = T.addNode(
        IsPlain ? NodeKind::Assign : NodeKind::AugAssign, Parent, Ln);
    T.reparent(Left, Assign);
    convertToStore(Left);
    if (!IsPlain)
      T.addNode(NodeKind::Op, Op, Assign, Ln);
    parseExpression(Assign);
    return Assign;
  }
  return Left;
}

NodeId Parser::parseTernary(NodeId Parent) {
  NodeId Cond = parseBinary(Parent, 0);
  if (!atOp("?"))
    return Cond;
  uint32_t Ln = line();
  advance();
  NodeId If = T.addNode(NodeKind::If, Parent, Ln);
  T.reparent(Cond, If);
  parseExpression(If);
  if (!eatOp(":"))
    error("expected ':' in conditional expression");
  parseExpression(If);
  return If;
}

namespace {
struct BinaryOp {
  std::string_view Text;
  int Precedence;
  bool IsCompare;
};
constexpr BinaryOp BinaryOps[] = {
    {"||", 1, false}, {"&&", 2, false},  {"|", 3, false},  {"^", 4, false},
    {"&", 5, false},  {"==", 6, true},   {"!=", 6, true},  {"<", 7, true},
    {">", 7, true},   {"<=", 7, true},   {">=", 7, true},  {"<<", 8, false},
    {"+", 9, false},  {"-", 9, false},   {"*", 10, false}, {"/", 10, false},
    {"%", 10, false},
};
} // namespace

NodeId Parser::parseBinary(NodeId Parent, int MinPrecedence) {
  NodeId Left = parseUnary(Parent);
  while (true) {
    // instanceof at comparison precedence.
    if (atName("instanceof") && MinPrecedence <= 7) {
      advance();
      NodeId Cmp = T.addNode(NodeKind::Compare, Parent, line());
      T.reparent(Left, Cmp);
      T.addNode(NodeKind::Op, "instanceof", Cmp, line());
      parseType(Cmp);
      Left = Cmp;
      continue;
    }
    const BinaryOp *Found = nullptr;
    for (const BinaryOp &Op : BinaryOps) {
      if (atOp(Op.Text) && Op.Precedence >= MinPrecedence) {
        Found = &Op;
        break;
      }
    }
    if (!Found)
      return Left;
    advance();
    NodeId Bin = T.addNode(
        Found->IsCompare ? NodeKind::Compare : NodeKind::BinOp, Parent,
        line());
    T.reparent(Left, Bin);
    T.addNode(NodeKind::Op, Found->Text, Bin, line());
    parseBinary(Bin, Found->Precedence + 1);
    Left = Bin;
  }
}

NodeId Parser::parseUnary(NodeId Parent) {
  // Self-recursive ("!!!!x", chained casts), so depth-guarded on its own.
  DepthGuard Guard(*this);
  if (!Guard.Ok)
    return depthErrorExpr(Parent);
  uint32_t Ln = line();
  if (atOp("!") || atOp("~") || atOp("-") || atOp("+") || atOp("++") ||
      atOp("--")) {
    std::string Op(cur().Text);
    advance();
    NodeId Un = T.addNode(NodeKind::UnaryOp, Parent, Ln);
    T.addNode(NodeKind::Op, Op, Un, Ln);
    parseUnary(Un);
    return Un;
  }
  // Cast: "(Type) unary". Heuristic: parenthesized type followed by a token
  // that can start an operand.
  if (atOp("(")) {
    size_t TypeLen = scanType(Pos + 1);
    if (TypeLen != 0) {
      size_t CloseIdx = Pos + 1 + TypeLen;
      const Token &Close =
          CloseIdx < Tokens.size() ? Tokens[CloseIdx] : Tokens.back();
      const Token &Next =
          CloseIdx + 1 < Tokens.size() ? Tokens[CloseIdx + 1] : Tokens.back();
      bool NextStartsOperand =
          Next.Kind == TokenKind::Name || Next.Kind == TokenKind::Number ||
          Next.Kind == TokenKind::String || Next.Kind == TokenKind::CharLit ||
          (Next.Kind == TokenKind::Operator &&
           (Next.Text == "(" || Next.Text == "!" || Next.Text == "~"));
      const Token &TypeTok = Tokens[Pos + 1];
      bool TypeLooksLikeType =
          isPrimitive(TypeTok.Text) ||
          (!TypeTok.Text.empty() && std::isupper(static_cast<unsigned char>(
                                        TypeTok.Text[0])));
      if (Close.Kind == TokenKind::Operator && Close.Text == ")" &&
          NextStartsOperand && TypeLooksLikeType) {
        advance(); // (
        NodeId Cast = T.addNode(NodeKind::Cast, Parent, Ln);
        parseType(Cast);
        eatOp(")");
        parseUnary(Cast);
        return Cast;
      }
    }
  }
  return parsePostfix(Parent);
}

NodeId Parser::parsePostfix(NodeId Parent) {
  NodeId Base = parseAtom(Parent);
  while (true) {
    if (atOp(".")) {
      uint32_t Ln = line();
      advance();
      if (atOp("<")) // explicit method type args: obj.<T>method()
        skipBalanced("<", ">");
      NodeId Attr = T.addNode(NodeKind::AttributeLoad, Parent, Ln);
      T.reparent(Base, Attr);
      NodeId AttrName = T.addNode(NodeKind::Attr, Attr, Ln);
      if (at(TokenKind::Name)) {
        addIdent(cur().Text, AttrName);
        advance();
      } else {
        error("expected member name after '.'");
        addIdent("<error>", AttrName);
      }
      Base = Attr;
      continue;
    }
    if (atOp("(")) {
      uint32_t Ln = line();
      NodeId Call = T.addNode(NodeKind::Call, Parent, Ln);
      T.reparent(Base, Call);
      parseCallArgs(Call);
      Base = Call;
      continue;
    }
    if (atOp("[")) {
      uint32_t Ln = line();
      advance();
      NodeId Sub = T.addNode(NodeKind::Subscript, Parent, Ln);
      T.reparent(Base, Sub);
      if (!atOp("]"))
        parseExpression(Sub);
      if (!eatOp("]"))
        error("expected ']'");
      Base = Sub;
      continue;
    }
    if (atOp("++") || atOp("--")) {
      uint32_t Ln = line();
      NodeId Un = T.addNode(NodeKind::UnaryOp, Parent, Ln);
      T.reparent(Base, Un);
      T.addNode(NodeKind::Op, cur().Text, Un, Ln);
      advance();
      Base = Un;
      continue;
    }
    if (atOp("::")) { // method reference: consume coarsely
      advance();
      if (at(TokenKind::Name) || atName("new"))
        advance();
      continue;
    }
    return Base;
  }
}

void Parser::parseCallArgs(NodeId Call) {
  bool Ok = eatOp("(");
  assert(Ok && "parseCallArgs requires '('");
  (void)Ok;
  while (!atOp(")") && !at(TokenKind::EndOfFile)) {
    // Lambda argument: x -> expr or (x, y) -> expr. Modeled as the body
    // expression only.
    if (at(TokenKind::Name) && peek().Kind == TokenKind::Operator &&
        peek().Text == "->") {
      advance();
      advance();
      if (atOp("{"))
        skipBalanced("{", "}");
      else
        parseExpression(Call);
    } else {
      parseExpression(Call);
      if (atOp("->")) { // (args) -> body after a parenthesized list
        advance();
        if (atOp("{"))
          skipBalanced("{", "}");
        else
          parseExpression(Call);
      }
    }
    if (!eatOp(","))
      break;
  }
  if (!eatOp(")"))
    error("expected ')' in call");
}

NodeId Parser::parseNew(NodeId Parent) {
  uint32_t Ln = line();
  advance(); // new
  NodeId New = T.addNode(NodeKind::New, Parent, Ln);
  parseType(New);
  if (atOp("(")) {
    parseCallArgs(New);
    if (atOp("{")) // anonymous class body
      skipBalanced("{", "}");
    return New;
  }
  // Array creation: new int[10], new int[]{...}.
  while (atOp("[")) {
    advance();
    if (!atOp("]"))
      parseExpression(New);
    eatOp("]");
  }
  if (atOp("{"))
    skipBalanced("{", "}");
  return New;
}

NodeId Parser::parseAtom(NodeId Parent) {
  uint32_t Ln = line();
  if (at(TokenKind::Number)) {
    NodeId Num = T.addNode(NodeKind::Num, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Num, Ln);
    advance();
    return Num;
  }
  if (at(TokenKind::String)) {
    NodeId Str = T.addNode(NodeKind::Str, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Str, Ln);
    advance();
    return Str;
  }
  if (at(TokenKind::CharLit)) {
    NodeId Str = T.addNode(NodeKind::Str, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Str, Ln);
    advance();
    return Str;
  }
  if (atName("true") || atName("false")) {
    NodeId Bool = T.addNode(NodeKind::Bool, Parent, Ln);
    T.addNode(NodeKind::Ident, cur().Text, Bool, Ln);
    advance();
    return Bool;
  }
  if (atName("null")) {
    NodeId None = T.addNode(NodeKind::NoneLit, Parent, Ln);
    T.addNode(NodeKind::Ident, "null", None, Ln);
    advance();
    return None;
  }
  if (atName("new"))
    return parseNew(Parent);
  if (at(TokenKind::Name)) {
    NodeId Name = T.addNode(NodeKind::NameLoad, Parent, Ln);
    addIdent(cur().Text, Name);
    advance();
    return Name;
  }
  if (eatOp("(")) {
    NodeId Inner = parseExpression(Parent);
    if (!eatOp(")"))
      error("expected ')'");
    return Inner;
  }
  error("unexpected token '" + std::string(cur().Text) + "' in expression",
        frontend::DiagKind::ParseUnexpectedToken);
  NodeId Err = T.addNode(NodeKind::NameLoad, Parent, Ln);
  addIdent("<error>", Err);
  if (!at(TokenKind::EndOfFile) && !atOp(";") && !atOp("}"))
    advance();
  return Err;
}

} // namespace

ParseResult namer::java::parseJava(std::string_view Source, AstContext &Ctx,
                                   const ParseOptions &Opts) {
  telemetry::TraceSpan Span("parse.java");
  faultinject::fire("parse.java");
  ParseResult Result = Parser(Source, Ctx, Opts).run();
  if (telemetry::enabled()) {
    // Cached references: one registry lookup per process, not per file.
    static telemetry::Counter &Files =
        telemetry::metrics().counter("parse.files");
    static telemetry::Counter &Errors =
        telemetry::metrics().counter("parse.errors");
    Files.add(1);
    if (!Result.Errors.empty())
      Errors.add(Result.Errors.size());
  }
  return Result;
}
