//===- frontend/java/JavaLexer.h - Java lexer -------------------*- C++ -*-==//
///
/// \file
/// Tokenizer for the Java subset Namer analyzes. Brace-structured, so much
/// simpler than the Python lexer; handles line/block comments, char/string
/// literals and Java's multi-character operators.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_FRONTEND_JAVA_JAVALEXER_H
#define NAMER_FRONTEND_JAVA_JAVALEXER_H

#include "frontend/Diag.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace java {

enum class TokenKind : uint8_t {
  Name,
  Number,
  String,
  CharLit,
  Operator,
  EndOfFile,
};

struct Token {
  TokenKind Kind;
  /// A view into the lexed source (or static operator storage): the lexer
  /// copies no characters, so token texts are valid exactly as long as the
  /// source buffer outlives the token stream -- which the parsers
  /// guarantee by interning every text they keep.
  std::string_view Text;
  uint32_t Line;
};

/// Errors carries the rendered strings (renderDiag) of Diags; consumers
/// that need the taxonomy read Diags.
struct LexResult {
  std::vector<Token> Tokens;
  std::vector<std::string> Errors;
  std::vector<frontend::Diag> Diags;
};

/// Lexes \p Source; never fails hard.
LexResult lexJava(std::string_view Source);

} // namespace java
} // namespace namer

#endif // NAMER_FRONTEND_JAVA_JAVALEXER_H
