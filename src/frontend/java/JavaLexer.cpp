//===- frontend/java/JavaLexer.cpp ----------------------------------------==//

#include "frontend/java/JavaLexer.h"

#include "support/FaultInjector.h"

#include <cctype>

using namespace namer;
using namespace namer::java;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}
bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}
bool isDigit(char C) { return std::isdigit(static_cast<unsigned char>(C)); }

// Note: ">>"-family operators are deliberately absent so that nested
// generics (List<List<String>>) lex as two '>' tokens; right shifts are
// outside the supported subset.
constexpr std::string_view MultiOps[] = {
    "<<=", "...", "->", "::", "++", "--", "&&", "||", "==", "!=",
    "<=",  ">=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<",
};

} // namespace

LexResult namer::java::lexJava(std::string_view Src) {
  faultinject::fire("lex.java");
  LexResult Result;
  size_t Pos = 0;
  uint32_t Line = 1;
  auto Push = [&](TokenKind Kind, std::string_view Text) {
    Result.Tokens.push_back(Token{Kind, Text, Line});
  };
  auto Peek = [&](size_t Ahead = 0) {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  };
  auto Error = [&](frontend::DiagKind Kind, const std::string &Message) {
    frontend::Diag D{Kind, Line, Message};
    Result.Errors.push_back(frontend::renderDiag(D));
    Result.Diags.push_back(std::move(D));
  };

  while (Pos < Src.size()) {
    char C = Src[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
      continue;
    }
    if (C == '/' && Peek(1) == '/') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      Pos += 2;
      while (Pos < Src.size() && !(Src[Pos] == '*' && Peek(1) == '/')) {
        if (Src[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      if (Pos < Src.size())
        Pos += 2;
      else
        Error(frontend::DiagKind::LexUnterminatedComment,
              "unterminated block comment");
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (Pos < Src.size() && isIdentCont(Src[Pos]))
        ++Pos;
      Push(TokenKind::Name, Src.substr(Start, Pos - Start));
      continue;
    }
    if (isDigit(C) || (C == '.' && isDigit(Peek(1)))) {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (isIdentCont(Src[Pos]) || Src[Pos] == '.')) {
        // Exponent signs inside float literals: 1e-5.
        if ((Src[Pos] == 'e' || Src[Pos] == 'E') && Pos + 1 < Src.size() &&
            (Src[Pos + 1] == '+' || Src[Pos + 1] == '-'))
          ++Pos;
        ++Pos;
      }
      Push(TokenKind::Number, Src.substr(Start, Pos - Start));
      continue;
    }
    if (C == '"') {
      // The body is kept verbatim (escape pairs as-is), so the token is
      // exactly the [Start, Pos) source range -- a view, no copy.
      ++Pos;
      size_t Start = Pos;
      while (Pos < Src.size() && Src[Pos] != '"') {
        if (Src[Pos] == '\\' && Pos + 1 < Src.size()) {
          Pos += 2;
          continue;
        }
        if (Src[Pos] == '\n') {
          Error(frontend::DiagKind::LexUnterminatedString,
                "unterminated string literal");
          break;
        }
        ++Pos;
      }
      std::string_view Text = Src.substr(Start, Pos - Start);
      if (Pos < Src.size() && Src[Pos] == '"')
        ++Pos;
      Push(TokenKind::String, Text);
      continue;
    }
    if (C == '\'') {
      ++Pos;
      size_t Start = Pos;
      while (Pos < Src.size() && Src[Pos] != '\'') {
        if (Src[Pos] == '\\' && Pos + 1 < Src.size()) {
          Pos += 2;
          continue;
        }
        if (Src[Pos] == '\n') {
          Error(frontend::DiagKind::LexUnterminatedString,
                "unterminated char literal");
          break;
        }
        ++Pos;
      }
      std::string_view Text = Src.substr(Start, Pos - Start);
      if (Pos < Src.size() && Src[Pos] == '\'')
        ++Pos;
      Push(TokenKind::CharLit, Text);
      continue;
    }
    bool Matched = false;
    for (std::string_view Op : MultiOps) {
      if (Src.substr(Pos, Op.size()) == Op) {
        Push(TokenKind::Operator, Src.substr(Pos, Op.size()));
        Pos += Op.size();
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;
    constexpr std::string_view SingleOps = "+-*/%<>=!&|^~?:;,.(){}[]@";
    if (SingleOps.find(C) != std::string_view::npos) {
      Push(TokenKind::Operator, Src.substr(Pos, 1));
      ++Pos;
      continue;
    }
    Error(frontend::DiagKind::LexInvalidChar,
          std::isprint(static_cast<unsigned char>(C))
              ? std::string("unexpected character '") + C + "'"
              : "unexpected byte 0x" + [](unsigned char B) {
                  const char *Hex = "0123456789abcdef";
                  return std::string{Hex[B >> 4], Hex[B & 15]};
                }(static_cast<unsigned char>(C)));
    ++Pos;
  }
  Result.Tokens.push_back(Token{TokenKind::EndOfFile, "", Line});
  return Result;
}
