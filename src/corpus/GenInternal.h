//===- corpus/GenInternal.h - generator internals ---------------*- C++ -*-==//
///
/// \file
/// Shared machinery of the Python and Java corpus generators: the
/// line-oriented file builder that records seeded issues with their line
/// numbers, per-repository vocabulary/style state, and the name pools.
/// Internal header; include only from corpus/*.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_CORPUS_GENINTERNAL_H
#define NAMER_CORPUS_GENINTERNAL_H

#include "corpus/Corpus.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace namer {
namespace corpus {
namespace detail {

/// Accumulates file text line by line; issues attach to the next emitted
/// line.
class FileBuilder {
public:
  void line(const std::string &Text) {
    Content += Text;
    Content += '\n';
    ++CurrentLine;
  }
  void blank() { line(""); }

  /// Records a seeded issue on the *next* line emitted via line().
  void issueOnNextLine(IssueKind Kind, IssueCategory Category,
                       std::string Bad, std::string Good) {
    Pending.push_back(SeededIssue{Kind, Category, CurrentLine,
                                  std::move(Bad), std::move(Good)});
  }

  SourceFile finish(std::string Path) {
    SourceFile F;
    F.Path = std::move(Path);
    F.Text = std::move(Content);
    F.Issues = std::move(Pending);
    Content.clear();
    Pending.clear();
    CurrentLine = 1;
    return F;
  }

private:
  std::string Content;
  uint32_t CurrentLine = 1;
  std::vector<SeededIssue> Pending;
};

/// Name pools shared by both languages.
extern const char *const FieldNames[];
extern const size_t NumFieldNames;
extern const char *const Verbs[];
extern const size_t NumVerbs;
extern const char *const ClassNouns[];
extern const size_t NumClassNouns;
extern const char *const WiringPairs[][2]; // {field, legit-different-rhs}
extern const size_t NumWiringPairs;
extern const char *const ConfusablePairs[][2]; // {correct, confused-with}
extern const size_t NumConfusablePairs;

/// Per-repository style and vocabulary.
struct RepoStyle {
  std::vector<const char *> Fields; // repo's field-name subset
  std::vector<const char *> Nouns;  // repo's class-noun subset
  /// Synthetic project-specific words ("melkor", "zanti") that are rare at
  /// corpus scale, mirroring the heavy tail of real identifier vocabulary.
  std::vector<std::string> RareWords;
  bool UsesIslinkIdiom = false;     // Python FP source
  bool UsesWriterNaming = false;    // Java FP source (outputWriter)
  bool UsesCustomJsonLike = false;  // Java FP source (ConektaObject-like)
  std::string CustomClassPrefix;    // e.g. "Conekta"

  const char *field(Rng &G) const {
    return Fields[G.bounded(Fields.size())];
  }
  const std::string &rare(Rng &G) const {
    return RareWords[G.bounded(RareWords.size())];
  }
  const char *noun(Rng &G) const { return Nouns[G.bounded(Nouns.size())]; }
  const char *verb(Rng &G) const { return Verbs[G.bounded(NumVerbs)]; }
};

RepoStyle makeRepoStyle(Rng &G);

/// Makes a one-character typo of \p Word (drop / duplicate / swap), always
/// different from the input.
std::string typoOf(const std::string &Word, Rng &G);

/// Language-specific repository generators (in PythonGen.cpp/JavaGen.cpp).
Repository generatePythonRepo(const CorpusConfig &Config,
                              const std::string &Name, Rng &G,
                              std::vector<CommitPair> &Commits);
Repository generateJavaRepo(const CorpusConfig &Config,
                            const std::string &Name, Rng &G,
                            std::vector<CommitPair> &Commits);

} // namespace detail
} // namespace corpus
} // namespace namer

#endif // NAMER_CORPUS_GENINTERNAL_H
