//===- corpus/Oracle.cpp --------------------------------------------------==//

#include "corpus/Oracle.h"

using namespace namer;
using namespace namer::corpus;

namespace {

std::string key(const std::string &File, uint32_t Line) {
  return File + ":" + std::to_string(Line);
}

} // namespace

InspectionOracle::InspectionOracle(const Corpus &C) {
  for (const Repository &Repo : C.Repos) {
    for (const SourceFile &F : Repo.Files) {
      for (const SeededIssue &Issue : F.Issues) {
        ByFileLine[key(F.Path, Issue.Line)].push_back(Issue);
        ++NumIssues;
      }
    }
  }
}

const SeededIssue *InspectionOracle::find(const std::string &File,
                                          uint32_t Line,
                                          const std::string &Original) const {
  for (int Delta : {0, 1, -1}) {
    uint32_t Probe = Line + static_cast<uint32_t>(Delta);
    auto It = ByFileLine.find(key(File, Probe));
    if (It == ByFileLine.end())
      continue;
    for (const SeededIssue &Issue : It->second)
      if (Issue.BadToken == Original)
        return &Issue;
  }
  return nullptr;
}

InspectionOutcome InspectionOracle::inspect(const std::string &File,
                                            uint32_t Line,
                                            const std::string &Original,
                                            const std::string &Suggested) const {
  InspectionOutcome Out;
  const SeededIssue *Issue = find(File, Line, Original);
  if (!Issue)
    return Out; // false positive
  Out.Result = Issue->Kind == IssueKind::SemanticDefect
                   ? InspectionOutcome::Verdict::SemanticDefect
                   : InspectionOutcome::Verdict::CodeQualityIssue;
  Out.Category = Issue->Category;
  Out.FixMatchesGroundTruth = Issue->GoodToken == Suggested;
  return Out;
}
