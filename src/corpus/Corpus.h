//===- corpus/Corpus.h - Big Code corpus simulation -------------*- C++ -*-==//
///
/// \file
/// The paper mines 1M Python / 4M Java GitHub files plus their commit
/// histories. This module simulates that resource (see DESIGN.md,
/// substitution 1): a deterministic generator emits repositories of source
/// text in the supported language subsets, drawn from a library of naming
/// idioms, with per-repository style variation and seeded naming mistakes
/// following a realistic distribution. Ground truth for every seeded
/// mistake is recorded so the manual-inspection step of the evaluation can
/// be replayed by an oracle.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_CORPUS_CORPUS_H
#define NAMER_CORPUS_CORPUS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace corpus {

enum class Language : uint8_t { Python, Java };

/// The paper's two-way report classification (Section 5.1).
enum class IssueKind : uint8_t { SemanticDefect, CodeQualityIssue };

/// The Table 4 breakdown of code quality issues, plus semantic flavors.
enum class IssueCategory : uint8_t {
  ConfusingName,
  IndescriptiveName,
  InconsistentName,
  MinorIssue,
  Typo,
  ApiMisuse,      // semantic: wrong API called (assertTrue vs assertEqual)
  DeprecatedApi,  // semantic: xrange, assertEquals
  WrongType,      // semantic: double loop index
};

std::string_view issueKindName(IssueKind Kind);
std::string_view issueCategoryName(IssueCategory Category);

/// Ground truth for one seeded mistake.
struct SeededIssue {
  IssueKind Kind;
  IssueCategory Category;
  uint32_t Line;          ///< 1-based line in the file
  std::string BadToken;   ///< the mistaken subtoken present in the text
  std::string GoodToken;  ///< the correct subtoken
};

struct SourceFile {
  std::string Path;
  std::string Text;
  std::vector<SeededIssue> Issues;
  /// When set (Mapped true), the file's bytes live in an external buffer
  /// (an Arena mmap region) instead of Text; whoever fills View owns that
  /// buffer and must keep it alive for the corpus's lifetime. The
  /// generated corpus keeps using Text; namer-scan's repository loader and
  /// the bench corpus loader fill View for zero-copy ingest.
  std::string_view View;
  bool Mapped = false;

  std::string_view contents() const {
    return Mapped ? View : std::string_view(Text);
  }
};

struct Repository {
  std::string Name;
  std::vector<SourceFile> Files;
};

/// A before/after file pair from a simulated commit history; feeds the
/// confusing word pair miner.
struct CommitPair {
  std::string Before;
  std::string After;
};

struct Corpus {
  Language Lang;
  std::vector<Repository> Repos;
  std::vector<CommitPair> Commits;

  size_t numFiles() const {
    size_t N = 0;
    for (const Repository &R : Repos)
      N += R.Files.size();
    return N;
  }
  size_t numSeededIssues() const {
    size_t N = 0;
    for (const Repository &R : Repos)
      for (const SourceFile &F : R.Files)
        N += F.Issues.size();
    return N;
  }
};

struct CorpusConfig {
  Language Lang = Language::Python;
  size_t NumRepos = 300;
  size_t MinFilesPerRepo = 3;
  size_t MaxFilesPerRepo = 9;
  /// Probability that a mistake-eligible statement is seeded with one.
  double MistakeRate = 0.06;
  /// Fraction of seeded mistakes that also produce a fixing commit.
  double CommitFixRate = 0.6;
  /// Number of pure-noise commits (legit renames / structural edits).
  size_t NoiseCommits = 60;
  uint64_t Seed = 20210620; // PLDI'21 opening day
};

/// Generates a deterministic corpus.
Corpus generateCorpus(const CorpusConfig &Config);

/// Removes file-level duplicates across the whole corpus (the paper prunes
/// fork/file duplicates, Section 5.1). Returns the number removed.
size_t deduplicateFiles(Corpus &C);

} // namespace corpus
} // namespace namer

#endif // NAMER_CORPUS_CORPUS_H
