//===- corpus/PythonGen.cpp - Python corpus generation --------------------==//
//
// Emits Python repositories built from the naming idioms the paper's
// evaluation revolves around: unittest assertions (Figure 2, Table 3
// ex. 1/3), range loops (ex. 2), constructor field assignment (Example
// 3.8), keyworded-argument signatures (ex. 5), numpy aliasing (ex. 6) and
// os.path usage (ex. 7). Mistakes are seeded at CorpusConfig::MistakeRate
// following the realistic distribution described in DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "corpus/GenInternal.h"

using namespace namer;
using namespace namer::corpus;
using namespace namer::corpus::detail;

namespace {

/// Per-file mistake seeding context: decides whether a given opportunity
/// becomes a seeded mistake and emits fixing commits.
struct Seeder {
  const CorpusConfig &Config;
  Rng &G;
  std::vector<CommitPair> &Commits;

  bool roll() { return G.chance(Config.MistakeRate); }

  /// Emits a fixing commit for a one-line mistake, wrapped so it parses.
  void commitFix(const std::string &BadLine, const std::string &GoodLine,
                 bool InsideTestMethod) {
    if (!G.chance(Config.CommitFixRate))
      return;
    auto Wrap = [&](const std::string &Line) {
      if (InsideTestMethod)
        return "from unittest import TestCase\n"
               "class TestFix(TestCase):\n"
               "    def test_it(self):\n"
               "    " +
               Line + "\n";
      return "def fixed_fn(self, value):\n" + Line + "\n";
    };
    Commits.push_back(CommitPair{Wrap(BadLine), Wrap(GoodLine)});
  }
};

std::string num(Rng &G) { return std::to_string(G.bounded(100)); }

// --- File kinds -----------------------------------------------------------

/// unittest file: the Figure 2 ecosystem.
SourceFile emitTestFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                        size_t FileIndex) {
  FileBuilder B;
  B.line("import os");
  B.line("from unittest import TestCase");
  B.blank();
  std::string Noun = S.noun(G);
  B.line("class Test" + Noun + "(TestCase):");
  int NumMethods = static_cast<int>(G.range(3, 6));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    B.line("    def test_" + Field + "_" + std::to_string(M) + "(self):");
    int NumStatements = static_cast<int>(G.range(2, 4));
    for (int St = 0; St != NumStatements; ++St) {
      // Project-specific receiver/attribute names: rare at corpus scale,
      // so their paths fall below the mining frequency filter and the
      // FP-tree keeps the generic assert idiom in one branch (matching the
      // heavy-tailed vocabulary of real GitHub code).
      std::string Obj = S.rare(G);
      std::string Attr = S.rare(G);
      switch (G.bounded(5)) {
      case 0:
      case 1: { // assertEqual(<expr>, NUM): the headline idiom.
        std::string Expr = "self." + Obj + "." + Attr;
        std::string Literal = num(G);
        std::string Good =
            "        self.assertEqual(" + Expr + ", " + Literal + ")";
        // Semantic defects are rarer than quality issues in real code
        // (Table 2 finds 5 vs 89); halve the seeding rate here.
        if (Seed.roll() && G.chance(0.3)) {
          if (G.chance(0.6)) {
            // Table 3 ex. 1: wrong API, a semantic defect.
            std::string Bad = "        self.assertTrue(" + Expr + ", " +
                              Literal + ")";
            B.issueOnNextLine(IssueKind::SemanticDefect,
                              IssueCategory::ApiMisuse, "True", "Equal");
            B.line(Bad);
            Seed.commitFix(Bad, Good, /*InsideTestMethod=*/true);
          } else {
            // Table 3 ex. 3: deprecated assertEquals.
            std::string Bad = "        self.assertEquals(" + Expr + ", " +
                              Literal + ")";
            B.issueOnNextLine(IssueKind::SemanticDefect,
                              IssueCategory::DeprecatedApi, "Equals",
                              "Equal");
            B.line(Bad);
            Seed.commitFix(Bad, Good, /*InsideTestMethod=*/true);
          }
        } else {
          B.line(Good);
        }
        break;
      }
      case 2: // single-argument assertTrue: the legitimate use.
        B.line("        self.assertTrue(self." + Obj + ".is_valid())");
        break;
      case 3: // os.path existence check inside assertTrue.
        B.line("        self.assertTrue(os.path.exists(self." + Field +
               "_" + Attr + "))");
        break;
      default:
        B.line("        self.assertIn('" + Attr + "', self." + Obj + ")");
        break;
      }
    }
  }
  return B.finish("tests/test_" + Noun + std::to_string(FileIndex) + ".py");
}

/// Repo-consistent rare idiom: assertTrue(os.path.islink(...)). Correct
/// code, but a minority usage the pattern matcher will flag (the Table 3
/// ex. 7 false positive).
SourceFile emitIslinkTestFile(const RepoStyle &S, Rng &G, size_t FileIndex) {
  FileBuilder B;
  B.line("import os");
  B.line("from unittest import TestCase");
  B.blank();
  B.line("class TestSymlinks" + std::to_string(FileIndex) + "(TestCase):");
  int NumMethods = static_cast<int>(G.range(3, 5));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    B.line("    def test_link_" + Field + "(self):");
    B.line("        self.assertTrue(os.path.islink(self." + Field +
           "_path))");
  }
  return B.finish("tests/test_links" + std::to_string(FileIndex) + ".py");
}

/// Data class file: constructor field assignment, getters, setters.
SourceFile emitModelFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                         size_t FileIndex) {
  FileBuilder B;
  std::string Noun = S.noun(G);
  B.line("class " + Noun + "(object):");

  // Constructor fields.
  std::vector<std::string> Fields;
  int NumFields = static_cast<int>(G.range(3, 6));
  for (int I = 0; I != NumFields; ++I)
    Fields.push_back(S.field(G));
  std::string Params;
  for (const std::string &F : Fields)
    Params += ", " + F;
  B.line("    def __init__(self" + Params + "):");
  for (const std::string &F : Fields) {
    std::string Good = "        self." + F + " = " + F;
    if (Seed.roll()) {
      switch (G.bounded(3)) {
      case 0: { // typo on the right-hand side (Table 7 "por").
        std::string Bad = typoOf(F, G);
        B.issueOnNextLine(IssueKind::CodeQualityIssue, IssueCategory::Typo,
                          Bad, F);
        std::string BadLine = "        self." + F + " = " + Bad;
        B.line(BadLine);
        Seed.commitFix(BadLine, Good, /*InsideTestMethod=*/false);
        break;
      }
      case 1: { // confusable word (key/name, min/max, ...).
        size_t P = G.bounded(NumConfusablePairs);
        std::string Correct = ConfusablePairs[P][0];
        std::string Confused = ConfusablePairs[P][1];
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::ConfusingName, Confused, Correct);
        std::string BadLine = "        self." + Correct + " = " + Confused;
        B.line(BadLine);
        Seed.commitFix(BadLine, "        self." + Correct + " = " + Correct,
                       /*InsideTestMethod=*/false);
        break;
      }
      default: { // inconsistent: assigns an unrelated vocabulary name.
        std::string Other = S.field(G);
        if (Other == F)
          Other = std::string(FieldNames[(G.bounded(NumFieldNames))]);
        if (Other == F) {
          B.line(Good);
          break;
        }
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::InconsistentName, Other, F);
        B.line("        self." + F + " = " + Other);
        break;
      }
      }
    } else if (G.chance(0.18)) {
      // Legitimate wiring: correct code that violates the idiom (the FP
      // population). Half uses ecosystem-wide pairs (separable by the
      // classifier's dataset-level features), half uses project-specific
      // right-hand sides that look exactly like inconsistent-name
      // mistakes (the irreducible FP floor the paper reports).
      if (G.chance(0.5)) {
        size_t P = G.bounded(NumWiringPairs);
        B.line(std::string("        self.") + WiringPairs[P][0] + " = " +
               WiringPairs[P][1]);
      } else {
        B.line("        self." + std::string(S.field(G)) + " = " +
               S.rare(G));
      }
    } else {
      B.line(Good);
    }
  }

  // Getters (consistency idiom: method subtoken == returned field).
  for (const std::string &F : Fields) {
    B.line("    def get_" + F + "(self):");
    if (Seed.roll()) {
      std::string Other = S.field(G);
      if (Other == F)
        Other = "data";
      if (Other != F) {
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::InconsistentName, Other, F);
        B.line("        return self." + Other);
        continue;
      }
    }
    B.line("        return self." + F);
  }

  // Setters; the minority "value" parameter style is a minor issue.
  for (size_t I = 0; I + 1 < Fields.size(); I += 2) {
    const std::string &F = Fields[I];
    if (Seed.roll()) {
      B.line("    def set_" + F + "(self, value):");
      B.issueOnNextLine(IssueKind::CodeQualityIssue,
                        IssueCategory::MinorIssue, "value", F);
      B.line("        self." + F + " = value");
      continue;
    }
    if (Seed.roll()) {
      // Indescriptive single-letter parameter.
      B.line("    def set_" + F + "(self, v):");
      B.issueOnNextLine(IssueKind::CodeQualityIssue,
                        IssueCategory::IndescriptiveName, "v", F);
      B.line("        self." + F + " = v");
      continue;
    }
    B.line("    def set_" + F + "(self, " + F + "):");
    B.line("        self." + F + " = " + F);
  }
  return B.finish("src/" + Noun + std::to_string(FileIndex) + ".py");
}

/// Loops and utility functions: the range/xrange ecosystem.
SourceFile emitLoopFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                        size_t FileIndex) {
  FileBuilder B;
  int NumFunctions = static_cast<int>(G.range(2, 5));
  for (int Fn = 0; Fn != NumFunctions; ++Fn) {
    std::string Field = S.field(G);
    std::string Verb = S.verb(G);
    B.line("def " + Verb + "_" + Field + "s(items):");
    B.line("    total = 0");
    std::string Good = "    for i in range(len(items)):";
    if (Seed.roll() && G.chance(0.3)) {
      std::string Bad = "    for i in xrange(len(items)):";
      B.issueOnNextLine(IssueKind::SemanticDefect,
                        IssueCategory::DeprecatedApi, "xrange", "range");
      B.line(Bad);
      Seed.commitFix(Bad, Good, /*InsideTestMethod=*/false);
    } else {
      B.line(Good);
    }
    B.line("        total = total + items[i]." + Field);
    B.line("    return total");
    B.blank();
  }
  return B.finish("src/util" + std::to_string(FileIndex) + ".py");
}

/// numpy file: the np-alias idiom (Table 3 ex. 6).
SourceFile emitNumpyFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                         size_t FileIndex) {
  FileBuilder B;
  bool BadAlias = Seed.roll(); // whole-file confusing alias
  std::string Alias = BadAlias ? "N" : "np";
  B.line("import numpy as " + Alias);
  B.blank();
  int NumFunctions = static_cast<int>(G.range(2, 4));
  for (int Fn = 0; Fn != NumFunctions; ++Fn) {
    std::string Field = S.field(G);
    const char *Ops[] = {"array", "zeros", "asarray", "ones"};
    std::string Op = Ops[G.bounded(4)];
    if (G.chance(0.5)) {
      B.line("def make_" + Field + "_array(values):");
      if (BadAlias)
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::ConfusingName, "N", "np");
      B.line("    result = " + Alias + "." + Op + "(values)");
      B.line("    return result");
      B.blank();
      continue;
    }
    // Method-style: stores the array into an attribute (the Table 3 ex. 6
    // shape, self.sz = np.array(sz)).
    std::string Param = S.rare(G);
    B.line("class " + std::string(S.noun(G)) + "Array" +
           std::to_string(Fn) + "(object):");
    B.line("    def resize_" + Field + "(self, " + Param + "):");
    if (BadAlias)
      B.issueOnNextLine(IssueKind::CodeQualityIssue,
                        IssueCategory::ConfusingName, "N", "np");
    B.line("        self." + Param + " = " + Alias + "." + Op + "(" +
           Param + ")");
    B.blank();
  }
  if (BadAlias)
    Seed.commitFix("import numpy as N\nx = N.array(values)",
                   "import numpy as np\nx = np.array(values)",
                   /*InsideTestMethod=*/false);
  return B.finish("src/arrays" + std::to_string(FileIndex) + ".py");
}

/// API-forwarding file: the *args/**kwargs idiom (Table 3 ex. 5).
SourceFile emitKwargsFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                          size_t FileIndex) {
  FileBuilder B;
  std::string Noun = S.noun(G);
  B.line("class " + Noun + "Proxy(object):");
  int NumMethods = static_cast<int>(G.range(2, 4));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Verb = S.verb(G);
    std::string Field = S.field(G);
    if (Seed.roll()) {
      // Table 3 ex. 5: args used for keyworded variable-length arguments.
      B.issueOnNextLine(IssueKind::CodeQualityIssue,
                        IssueCategory::MinorIssue, "args", "kwargs");
      B.line("    def " + Verb + "_" + Field + "(self, **args):");
      B.line("        self.target." + Verb + "(**args)");
      Seed.commitFix("def fwd(self, **args):\n"
                     "    self.target.call(**args)",
                     "def fwd(self, **kwargs):\n"
                     "    self.target.call(**kwargs)",
                     /*InsideTestMethod=*/false);
      continue;
    }
    if (G.chance(0.5)) {
      B.line("    def " + Verb + "_" + Field + "(self, **kwargs):");
      B.line("        self.target." + Verb + "(**kwargs)");
    } else {
      B.line("    def " + Verb + "_" + Field +
             "(self, *args, **kwargs):");
      B.line("        self.target." + Verb + "(*args, **kwargs)");
    }
  }
  return B.finish("src/proxy" + std::to_string(FileIndex) + ".py");
}

/// In-house validator class: methods named assert<Word>(value, NUM) that
/// are perfectly correct. With the Section 4.1 analyses the receiver's
/// origin differs from TestCase and the unittest patterns do not match;
/// without them ("w/o A") these statements collide with the mined assert
/// idiom and become false positives -- the precision gap of Table 2.
SourceFile emitValidatorFile(const RepoStyle &S, Rng &G, size_t FileIndex) {
  FileBuilder B;
  std::string Noun = S.noun(G);
  // Half of the validators define their own two-argument assertTrue(value,
  // code) -- legitimate for that class, and textually identical to the
  // unittest misuse. Only the receiver's origin tells them apart.
  const char *Checks[] = {"True", "State", "Range", "Shape", "Limit",
                          "Bounds"};
  std::string Check = Checks[G.bounded(2) == 0 ? 0 : 1 + G.bounded(5)];
  B.line("class " + Noun + "Checker(object):");
  B.line("    def assert" + Check + "(self, value, code):");
  B.line("        if value != code:");
  B.line("            raise ValueError(value)");
  // Sparse usage keeps the per-file/per-repo violation statistics of these
  // statements close to those of genuine mistakes, so the "w/o A"
  // classifier cannot separate them (only the analyses can).
  int NumMethods = static_cast<int>(G.range(1, 2));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.rare(G);
    B.line("    def check_" + Field + "_" + std::to_string(M) + "(self):");
    B.line("        self.assert" + Check + "(self." + S.rare(G) + "." +
           S.rare(G) + ", " + num(G) + ")");
  }
  return B.finish("src/checker" + std::to_string(FileIndex) + ".py");
}

/// os.path utility file.
SourceFile emitPathFile(const RepoStyle &S, Rng &G, size_t FileIndex) {
  FileBuilder B;
  B.line("import os");
  B.blank();
  int NumFunctions = static_cast<int>(G.range(2, 4));
  for (int Fn = 0; Fn != NumFunctions; ++Fn) {
    std::string Field = S.field(G);
    B.line("def load_" + Field + "(path):");
    B.line("    if os.path.exists(path):");
    B.line("        handle = open(path)");
    B.line("        " + Field + " = handle.read()");
    B.line("        handle.close()");
    B.line("        return " + Field);
    B.line("    return None");
    B.blank();
  }
  return B.finish("src/files" + std::to_string(FileIndex) + ".py");
}

} // namespace

Repository corpus::detail::generatePythonRepo(const CorpusConfig &Config,
                                              const std::string &Name,
                                              Rng &G,
                                              std::vector<CommitPair> &Commits) {
  Repository Repo;
  Repo.Name = Name;
  RepoStyle Style = makeRepoStyle(G);
  Seeder Seed{Config, G, Commits};

  size_t NumFiles = Config.MinFilesPerRepo +
                    G.bounded(Config.MaxFilesPerRepo -
                              Config.MinFilesPerRepo + 1);
  for (size_t I = 0; I != NumFiles; ++I) {
    switch (G.bounded(11)) {
    case 0:
    case 1:
    case 2:
      Repo.Files.push_back(emitTestFile(Style, Seed, G, I));
      break;
    case 3:
    case 4:
    case 5:
      Repo.Files.push_back(emitModelFile(Style, Seed, G, I));
      break;
    case 6:
      Repo.Files.push_back(emitLoopFile(Style, Seed, G, I));
      break;
    case 7:
      Repo.Files.push_back(emitNumpyFile(Style, Seed, G, I));
      break;
    case 8:
      Repo.Files.push_back(emitKwargsFile(Style, Seed, G, I));
      break;
    case 9:
      Repo.Files.push_back(emitValidatorFile(Style, G, I));
      break;
    default:
      Repo.Files.push_back(emitPathFile(Style, G, I));
      break;
    }
  }
  if (Style.UsesIslinkIdiom)
    Repo.Files.push_back(emitIslinkTestFile(Style, G, NumFiles));
  // Paths are unique corpus-wide (the inspection oracle and report
  // consumers key on them).
  for (SourceFile &F : Repo.Files)
    F.Path = Name + "/" + F.Path;
  return Repo;
}
