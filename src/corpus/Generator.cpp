//===- corpus/Generator.cpp - corpus generation driver --------------------==//

#include "corpus/Corpus.h"

#include "corpus/GenInternal.h"
#include "support/Hashing.h"

#include <unordered_set>

using namespace namer;
using namespace namer::corpus;
using namespace namer::corpus::detail;

std::string_view corpus::issueKindName(IssueKind Kind) {
  switch (Kind) {
  case IssueKind::SemanticDefect:
    return "semantic defect";
  case IssueKind::CodeQualityIssue:
    return "code quality issue";
  }
  return "<unknown>";
}

std::string_view corpus::issueCategoryName(IssueCategory Category) {
  switch (Category) {
  case IssueCategory::ConfusingName:
    return "confusing name";
  case IssueCategory::IndescriptiveName:
    return "indescriptive name";
  case IssueCategory::InconsistentName:
    return "inconsistent name";
  case IssueCategory::MinorIssue:
    return "minor issue";
  case IssueCategory::Typo:
    return "typo";
  case IssueCategory::ApiMisuse:
    return "api misuse";
  case IssueCategory::DeprecatedApi:
    return "deprecated api";
  case IssueCategory::WrongType:
    return "wrong type";
  }
  return "<unknown>";
}

// --- Shared name pools --------------------------------------------------------

namespace namer {
namespace corpus {
namespace detail {

const char *const FieldNames[] = {
    "name",   "key",    "value",  "port",   "host",   "path",   "size",
    "count",  "mode",   "index",  "color",  "title",  "label",  "width",
    "height", "offset", "token",  "user",   "text",   "data",   "total",
    "status", "result", "config", "buffer", "cursor", "weight", "angle",
    "speed",  "depth",  "level",  "score",  "price",  "amount", "rate",
    "flag",   "state",  "line",   "word",   "node",   "item",   "entry",
    "event",  "queue",  "stack",  "cache",  "limit",  "start",  "end",
    "owner",
};
const size_t NumFieldNames = sizeof(FieldNames) / sizeof(FieldNames[0]);

const char *const Verbs[] = {
    "get",    "set",   "add",     "remove", "update", "create", "build",
    "load",   "save",  "parse",   "init",   "compute", "find",  "check",
    "make",   "read",  "write",   "send",   "handle", "process", "render",
    "fetch",  "apply", "reset",   "clear",  "open",   "close",  "run",
    "start",  "stop",  "validate", "convert", "merge", "split", "format",
    "encode", "decode", "sort",   "filter", "count",
};
const size_t NumVerbs = sizeof(Verbs) / sizeof(Verbs[0]);

const char *const ClassNouns[] = {
    "Manager",  "Handler", "Parser",  "Builder",    "Writer",  "Reader",
    "Client",   "Server",  "Worker",  "Service",    "Controller", "Helper",
    "Factory",  "Provider", "Adapter", "Wrapper",   "Monitor", "Tracker",
    "Logger",   "Cache",   "Queue",   "Store",      "Pool",    "Engine",
    "Router",   "Session", "Config",  "Task",       "Job",     "Widget",
    "Picture",  "Slide",   "Document", "Record",    "Account", "Order",
    "Product",  "Message", "Report",  "Profile",
};
const size_t NumClassNouns = sizeof(ClassNouns) / sizeof(ClassNouns[0]);

// Legitimate "self.<field> = <other>" wiring: correct code that violates
// consistency patterns (the false positive population).
const char *const WiringPairs[][2] = {
    {"handler", "callback"}, {"parent", "owner"},   {"logger", "log"},
    {"target", "dest"},      {"source", "origin"},  {"output", "stream"},
    {"store", "backend"},    {"worker", "thread"},  {"conn", "channel"},
    {"factory", "maker"},
};
const size_t NumWiringPairs = sizeof(WiringPairs) / sizeof(WiringPairs[0]);

// Semantically adjacent words developers confuse ({correct, confused}).
const char *const ConfusablePairs[][2] = {
    {"key", "name"},   {"key", "value"}, {"max", "min"}, {"y", "x"},
    {"end", "start"},  {"height", "width"}, {"last", "first"},
    {"dest", "src"},   {"col", "row"},   {"close", "open"},
};
const size_t NumConfusablePairs =
    sizeof(ConfusablePairs) / sizeof(ConfusablePairs[0]);

namespace {

/// Synthesizes a pronounceable project-specific word from random
/// consonant-vowel syllables.
std::string synthesizeWord(Rng &G) {
  static const char *Consonants = "bcdfgklmnprstvz";
  static const char *Vowels = "aeiou";
  std::string Word;
  size_t Syllables = 2 + G.bounded(2);
  for (size_t I = 0; I != Syllables; ++I) {
    Word += Consonants[G.bounded(15)];
    Word += Vowels[G.bounded(5)];
  }
  if (G.chance(0.5))
    Word += Consonants[G.bounded(15)];
  return Word;
}

} // namespace

RepoStyle makeRepoStyle(Rng &G) {
  RepoStyle S;
  // Each repo uses a vocabulary subset so names recur within a repo.
  size_t NumFields = 8 + G.bounded(8);
  for (size_t I = 0; I != NumFields; ++I)
    S.Fields.push_back(FieldNames[G.bounded(NumFieldNames)]);
  size_t NumNouns = 3 + G.bounded(4);
  for (size_t I = 0; I != NumNouns; ++I)
    S.Nouns.push_back(ClassNouns[G.bounded(NumClassNouns)]);
  size_t NumRare = 16 + G.bounded(16);
  for (size_t I = 0; I != NumRare; ++I)
    S.RareWords.push_back(synthesizeWord(G));
  S.UsesIslinkIdiom = G.chance(0.06);
  S.UsesWriterNaming = G.chance(0.10);
  S.UsesCustomJsonLike = G.chance(0.05);
  if (S.UsesCustomJsonLike) {
    const char *Prefixes[] = {"Conekta", "Acme", "Zylo", "Vexo", "Quanta"};
    S.CustomClassPrefix = Prefixes[G.bounded(5)];
  }
  return S;
}

std::string typoOf(const std::string &Word, Rng &G) {
  if (Word.size() < 3)
    return Word + Word.back();
  std::string Out = Word;
  switch (G.bounded(3)) {
  case 0: // drop the last character: port -> por
    Out.pop_back();
    break;
  case 1: // duplicate a character: public -> publick is handled by case 2;
          // generic duplication: name -> namme
    Out.insert(Out.begin() + static_cast<long>(1 + G.bounded(Word.size() - 1)),
               Out[Word.size() / 2]);
    break;
  default: // swap two adjacent characters: value -> vaule
    std::swap(Out[Word.size() / 2 - 1], Out[Word.size() / 2]);
    break;
  }
  if (Out == Word)
    Out.pop_back();
  return Out;
}

} // namespace detail
} // namespace corpus
} // namespace namer

// --- Driver --------------------------------------------------------------------

namespace {

/// Pure-noise commit stream: legitimate refactorings whose renames teach
/// the confusing-pair miner the ecosystem vocabulary (isfile -> exists,
/// name -> key, min -> max, ...), plus structural edits that must mine
/// nothing.
void appendNoiseCommits(Corpus &C, const CorpusConfig &Config, Rng &G) {
  struct NoisePair {
    const char *Before;
    const char *After;
  };
  static const NoisePair PythonNoise[] = {
      {"import os\ndef check(p):\n    if os.path.isfile(p):\n"
       "        return p\n    return None\n",
       "import os\ndef check(p):\n    if os.path.exists(p):\n"
       "        return p\n    return None\n"},
      {"a = item.get_name()\n", "a = item.get_key()\n"},
      {"low = values.min_bound\n", "low = values.max_bound\n"},
      {"point = shape.x_coord\n", "point = shape.y_coord\n"},
      {"first = rows.start_index\n", "first = rows.end_index\n"},
      {"x = f(a)\n", "x = f(a, b)\n"},           // structural noise
      {"totalCount = 1\n", "resultValue = 1\n"}, // full rename noise
  };
  static const NoisePair JavaNoise[] = {
      {"class C { void m() { int a = item.getName(); } }",
       "class C { void m() { int a = item.getKey(); } }"},
      {"class C { void m() { int lo = r.getMinValue(); } }",
       "class C { void m() { int lo = r.getMaxValue(); } }"},
      {"class C { void m() { f(a); } }",
       "class C { void m() { f(a, b); } }"},
      {"class C { void m() { int totalCount = 1; } }",
       "class C { void m() { int resultValue = 1; } }"},
  };
  for (size_t I = 0; I != Config.NoiseCommits; ++I) {
    if (Config.Lang == Language::Python) {
      const NoisePair &P =
          PythonNoise[G.bounded(sizeof(PythonNoise) / sizeof(NoisePair))];
      C.Commits.push_back(CommitPair{P.Before, P.After});
    } else {
      const NoisePair &P =
          JavaNoise[G.bounded(sizeof(JavaNoise) / sizeof(NoisePair))];
      C.Commits.push_back(CommitPair{P.Before, P.After});
    }
  }
}

} // namespace

Corpus corpus::generateCorpus(const CorpusConfig &Config) {
  Corpus C;
  C.Lang = Config.Lang;
  Rng Root(Config.Seed);
  for (size_t I = 0; I != Config.NumRepos; ++I) {
    Rng RepoRng = Root.fork();
    std::string Name = "repo" + std::to_string(I);
    if (Config.Lang == Language::Python)
      C.Repos.push_back(
          generatePythonRepo(Config, Name, RepoRng, C.Commits));
    else
      C.Repos.push_back(generateJavaRepo(Config, Name, RepoRng, C.Commits));
  }
  Rng NoiseRng = Root.fork();
  appendNoiseCommits(C, Config, NoiseRng);
  deduplicateFiles(C);
  return C;
}

size_t corpus::deduplicateFiles(Corpus &C) {
  std::unordered_set<uint64_t> Seen;
  size_t Removed = 0;
  for (Repository &Repo : C.Repos) {
    std::vector<SourceFile> Kept;
    for (SourceFile &F : Repo.Files) {
      if (Seen.insert(hashString(F.Text)).second)
        Kept.push_back(std::move(F));
      else
        ++Removed;
    }
    Repo.Files = std::move(Kept);
  }
  return Removed;
}
