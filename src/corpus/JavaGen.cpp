//===- corpus/JavaGen.cpp - Java corpus generation ------------------------==//
//
// Emits Java repositories around the Table 6 idioms: POJO constructors
// (this.x = x), classic int-indexed loops, exception handling with
// printStackTrace, Android intents and dialogs, and builder/writer
// patterns. False-positive populations come from repositories that
// consistently use descriptive-but-nonstandard local names (outputWriter)
// and in-house classes that shadow common library names (ConektaObject).
//
//===----------------------------------------------------------------------===//

#include "corpus/GenInternal.h"

#include <cctype>

using namespace namer;
using namespace namer::corpus;
using namespace namer::corpus::detail;

namespace {

struct Seeder {
  const CorpusConfig &Config;
  Rng &G;
  std::vector<CommitPair> &Commits;

  bool roll() { return G.chance(Config.MistakeRate); }

  void commitFix(const std::string &BadStmt, const std::string &GoodStmt) {
    if (!G.chance(Config.CommitFixRate))
      return;
    auto Wrap = [](const std::string &Stmt) {
      return "class Fix { void apply() { " + Stmt + " } }";
    };
    Commits.push_back(CommitPair{Wrap(BadStmt), Wrap(GoodStmt)});
  }
};

std::string capitalize(const std::string &Word) {
  std::string Out = Word;
  if (!Out.empty())
    Out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(Out[0])));
  return Out;
}

std::string num(Rng &G) { return std::to_string(G.bounded(100)); }

// --- File kinds -----------------------------------------------------------

/// POJO with constructor wiring, getters and setters.
SourceFile emitPojoFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                        size_t FileIndex) {
  FileBuilder B;
  std::string Noun = S.noun(G);
  B.line("public class " + Noun + std::to_string(FileIndex) + " {");

  std::vector<std::string> Fields;
  int NumFields = static_cast<int>(G.range(3, 6));
  for (int I = 0; I != NumFields; ++I)
    Fields.push_back(S.field(G));

  const char *Types[] = {"int", "String", "long", "boolean", "double"};
  std::vector<std::string> FieldTypes;
  for (int I = 0; I != NumFields; ++I)
    FieldTypes.push_back(Types[G.bounded(5)]);

  for (int I = 0; I != NumFields; ++I)
    B.line("    private " + FieldTypes[static_cast<size_t>(I)] + " " +
           Fields[static_cast<size_t>(I)] + ";");
  B.blank();

  // Constructor: this.x = x.
  std::string Params;
  for (int I = 0; I != NumFields; ++I) {
    if (I)
      Params += ", ";
    Params += FieldTypes[static_cast<size_t>(I)] + " " +
              Fields[static_cast<size_t>(I)];
  }
  B.line("    public " + Noun + std::to_string(FileIndex) + "(" + Params +
         ") {");
  for (const std::string &F : Fields) {
    std::string Good = "        this." + F + " = " + F + ";";
    if (Seed.roll()) {
      switch (G.bounded(3)) {
      case 0: {
        // Table 6 ex. 4 shape: typo on the right-hand side.
        std::string Bad = typoOf(F, G);
        B.issueOnNextLine(IssueKind::CodeQualityIssue, IssueCategory::Typo,
                          Bad, F);
        std::string BadLine = "        this." + F + " = " + Bad + ";";
        B.line(BadLine);
        Seed.commitFix("this." + F + " = " + Bad + ";",
                       "this." + F + " = " + F + ";");
        break;
      }
      case 1: {
        size_t P = G.bounded(NumConfusablePairs);
        std::string Correct = ConfusablePairs[P][0];
        std::string Confused = ConfusablePairs[P][1];
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::ConfusingName, Confused, Correct);
        B.line("        this." + Correct + " = " + Confused + ";");
        Seed.commitFix("this." + Correct + " = " + Confused + ";",
                       "this." + Correct + " = " + Correct + ";");
        break;
      }
      default: {
        // Inconsistent: wires an unrelated vocabulary name.
        std::string Other = S.field(G);
        if (Other == F) {
          B.line(Good);
          break;
        }
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::InconsistentName, Other, F);
        B.line("        this." + F + " = " + Other + ";");
        break;
      }
      }
    } else if (G.chance(0.18)) {
      // Legitimate wiring (FP population): ecosystem-wide pairs (separable
      // via dataset-level features), project-specific right-hand sides,
      // and vocabulary names that are textually indistinguishable from
      // inconsistent-name mistakes (the irreducible FP floor).
      switch (G.bounded(3)) {
      case 0: {
        size_t P = G.bounded(NumWiringPairs);
        B.line(std::string("        this.") + WiringPairs[P][0] + " = " +
               WiringPairs[P][1] + ";");
        break;
      }
      case 1:
        B.line("        this." + F + " = " + S.rare(G) + ";");
        break;
      default: {
        std::string Other = S.field(G);
        B.line("        this." + F + " = " +
               (Other == F ? S.rare(G) : Other) + ";");
        break;
      }
      }
    } else {
      B.line(Good);
    }
  }
  B.line("    }");
  B.blank();

  // Getters / setters.
  for (int I = 0; I != NumFields; ++I) {
    const std::string &F = Fields[static_cast<size_t>(I)];
    const std::string &T = FieldTypes[static_cast<size_t>(I)];
    B.line("    public " + T + " get" + capitalize(F) + "() {");
    if (Seed.roll()) {
      std::string Other = S.field(G);
      if (Other != F) {
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::InconsistentName, Other, F);
        B.line("        return this." + Other + ";");
        B.line("    }");
        continue;
      }
    }
    B.line("        return this." + F + ";");
    B.line("    }");
    if (G.chance(0.5)) {
      if (Seed.roll()) {
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::IndescriptiveName, "v", F);
        B.line("    public void set" + capitalize(F) + "(" + T + " v) {");
        B.line("        this." + F + " = v;");
      } else {
        B.line("    public void set" + capitalize(F) + "(" + T + " " + F +
               ") {");
        B.line("        this." + F + " = " + F + ";");
      }
      B.line("    }");
    }
  }
  B.line("}");
  return B.finish("src/" + Noun + std::to_string(FileIndex) + ".java");
}

/// Loops over arrays/collections: the int-index idiom (Table 6 ex. 2).
SourceFile emitLoopFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                        size_t FileIndex) {
  FileBuilder B;
  B.line("public class Util" + std::to_string(FileIndex) + " {");
  int NumMethods = static_cast<int>(G.range(2, 5));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    B.line("    public static int sum" + capitalize(Field) + "(int[] " +
           Field + "s) {");
    B.line("        int total = 0;");
    std::string GoodFor =
        "        for (int i = 0; i < " + Field + "s.length; i++) {";
    if (Seed.roll() && G.chance(0.3)) {
      std::string BadFor =
          "        for (double i = 1; i < " + Field + "s.length; i++) {";
      B.issueOnNextLine(IssueKind::SemanticDefect, IssueCategory::WrongType,
                        "double", "int");
      B.line(BadFor);
      B.line("            total = total + " + num(G) + ";");
      Seed.commitFix("for (double i = 1; i < n; i++) { total = total + 1; }",
                     "for (int i = 1; i < n; i++) { total = total + 1; }");
    } else {
      B.line(GoodFor);
      B.line("            total = total + " + Field + "s[(int) i];");
    }
    B.line("        }");
    B.line("        return total;");
    B.line("    }");
  }
  B.line("}");
  return B.finish("src/Util" + std::to_string(FileIndex) + ".java");
}

/// Exception handling: catch Exception + printStackTrace (Table 6 ex. 1/3).
SourceFile emitExceptionFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                             size_t FileIndex) {
  FileBuilder B;
  std::string Noun = S.noun(G);
  B.line("public class " + Noun + "Runner" + std::to_string(FileIndex) +
         " {");
  int NumMethods = static_cast<int>(G.range(2, 4));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Verb = S.verb(G);
    std::string Field = S.field(G);
    B.line("    public void " + Verb + capitalize(Field) + "() {");
    B.line("        try {");
    B.line("            this.worker." + Verb + "();");
    bool BadCatch = Seed.roll() && G.chance(0.3);
    if (BadCatch) {
      // Table 6 ex. 3: catching Throwable includes catching Error.
      B.issueOnNextLine(IssueKind::SemanticDefect, IssueCategory::ApiMisuse,
                        "Throwable", "Exception");
      B.line("        } catch (Throwable e) {");
      Seed.commitFix("try { run(); } catch (Throwable e) { }",
                     "try { run(); } catch (Exception e) { }");
    } else {
      B.line("        } catch (Exception e) {");
    }
    if (Seed.roll() && G.chance(0.3)) {
      // Table 6 ex. 1: getStackTrace result dropped on the floor.
      B.issueOnNextLine(IssueKind::SemanticDefect, IssueCategory::ApiMisuse,
                        "get", "print");
      B.line("            e.getStackTrace();");
      Seed.commitFix("e.getStackTrace();", "e.printStackTrace();");
    } else {
      B.line("            e.printStackTrace();");
    }
    B.line("        }");
    B.line("    }");
  }
  B.line("}");
  return B.finish("src/" + Noun + "Runner" + std::to_string(FileIndex) +
                  ".java");
}

/// Android activity starting intents (Table 6 ex. 5) and dialogs (ex. 6).
SourceFile emitAndroidFile(const RepoStyle &S, Seeder &Seed, Rng &G,
                           size_t FileIndex) {
  FileBuilder B;
  std::string Noun = S.noun(G);
  B.line("public class " + Noun + "Activity" + std::to_string(FileIndex) +
         " extends Activity {");
  int NumMethods = static_cast<int>(G.range(2, 4));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    if (G.chance(0.5)) {
      B.line("    public void open" + capitalize(Field) +
             "(Context context) {");
      if (Seed.roll()) {
        // Table 6 ex. 5: indescriptive intent variable.
        B.line("        Intent i = new Intent();");
        B.line("        i.putExtra(\"" + Field + "\", this." + Field + ");");
        B.issueOnNextLine(IssueKind::CodeQualityIssue,
                          IssueCategory::IndescriptiveName, "i", "intent");
        B.line("        context.startActivity(i);");
        Seed.commitFix("context.startActivity(i);",
                       "context.startActivity(intent);");
      } else {
        B.line("        Intent intent = new Intent();");
        B.line("        intent.putExtra(\"" + Field + "\", this." + Field +
               ");");
        B.line("        context.startActivity(intent);");
      }
      B.line("    }");
      continue;
    }
    B.line("    public void finish" + capitalize(Field) + "() {");
    if (Seed.roll()) {
      // Table 6 ex. 6: "prog" abbreviation of progress.
      B.line("        ProgressDialog progDialog = new ProgressDialog();");
      B.issueOnNextLine(IssueKind::CodeQualityIssue,
                        IssueCategory::ConfusingName, "prog", "progress");
      B.line("        progDialog.dismiss();");
      Seed.commitFix("ProgressDialog progDialog = new ProgressDialog(); "
                     "progDialog.dismiss();",
                     "ProgressDialog progressDialog = new ProgressDialog(); "
                     "progressDialog.dismiss();");
    } else {
      B.line("        ProgressDialog progressDialog = new ProgressDialog();");
      B.line("        progressDialog.dismiss();");
    }
    B.line("    }");
  }
  B.line("}");
  return B.finish("src/" + Noun + "Activity" + std::to_string(FileIndex) +
                  ".java");
}

/// Writer/builder file. In UsesWriterNaming repos, locals are consistently
/// named output<Type> (the Table 6 ex. 7 false positive); elsewhere the
/// conventional lowercase-type name is used.
SourceFile emitWriterFile(const RepoStyle &S, Rng &G, size_t FileIndex) {
  FileBuilder B;
  B.line("public class Render" + std::to_string(FileIndex) + " {");
  int NumMethods = static_cast<int>(G.range(2, 4));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    B.line("    public String render" + capitalize(Field) + "() {");
    if (S.UsesWriterNaming) {
      B.line("        StringWriter outputWriter = new StringWriter();");
      B.line("        outputWriter.write(this." + Field + ");");
      B.line("        return outputWriter.toString();");
    } else {
      B.line("        StringWriter stringWriter = new StringWriter();");
      B.line("        stringWriter.write(this." + Field + ");");
      B.line("        return stringWriter.toString();");
    }
    B.line("    }");
  }
  B.line("}");
  return B.finish("src/Render" + std::to_string(FileIndex) + ".java");
}

/// In-house class whose name shadows a common naming position (Table 6
/// ex. 8): ConektaObject resource = new ConektaObject(); correct code.
SourceFile emitCustomClassFile(const RepoStyle &S, Rng &G,
                               size_t FileIndex) {
  FileBuilder B;
  std::string Class = S.CustomClassPrefix + "Object";
  B.line("public class " + Class + "Factory" + std::to_string(FileIndex) +
         " {");
  int NumMethods = static_cast<int>(G.range(2, 4));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    B.line("    public " + Class + " create" + capitalize(Field) + "() {");
    B.line("        " + Class + " resource = new " + Class + "();");
    B.line("        resource.put(\"" + Field + "\", this." + Field + ");");
    B.line("        return resource;");
    B.line("    }");
  }
  B.line("}");
  return B.finish("src/" + Class + "Factory" + std::to_string(FileIndex) +
                  ".java");
}

/// JSON-ish object wiring with the common library class: the majority
/// counterpart of the custom-class files.
SourceFile emitJsonFile(const RepoStyle &S, Rng &G, size_t FileIndex) {
  FileBuilder B;
  B.line("public class Payload" + std::to_string(FileIndex) + " {");
  int NumMethods = static_cast<int>(G.range(2, 4));
  for (int M = 0; M != NumMethods; ++M) {
    std::string Field = S.field(G);
    B.line("    public JsonObject encode" + capitalize(Field) + "() {");
    B.line("        JsonObject resource = new JsonObject();");
    B.line("        resource.put(\"" + Field + "\", this." + Field + ");");
    B.line("        return resource;");
    B.line("    }");
  }
  B.line("}");
  return B.finish("src/Payload" + std::to_string(FileIndex) + ".java");
}

} // namespace

Repository corpus::detail::generateJavaRepo(const CorpusConfig &Config,
                                            const std::string &Name, Rng &G,
                                            std::vector<CommitPair> &Commits) {
  Repository Repo;
  Repo.Name = Name;
  RepoStyle Style = makeRepoStyle(G);
  Seeder Seed{Config, G, Commits};

  size_t NumFiles = Config.MinFilesPerRepo +
                    G.bounded(Config.MaxFilesPerRepo -
                              Config.MinFilesPerRepo + 1);
  for (size_t I = 0; I != NumFiles; ++I) {
    switch (G.bounded(10)) {
    case 0:
    case 1:
    case 2:
    case 3:
      Repo.Files.push_back(emitPojoFile(Style, Seed, G, I));
      break;
    case 4:
    case 5:
      Repo.Files.push_back(emitLoopFile(Style, Seed, G, I));
      break;
    case 6:
    case 7:
      Repo.Files.push_back(emitExceptionFile(Style, Seed, G, I));
      break;
    case 8:
      Repo.Files.push_back(emitAndroidFile(Style, Seed, G, I));
      break;
    default:
      if (Style.UsesCustomJsonLike)
        Repo.Files.push_back(emitCustomClassFile(Style, G, I));
      else
        Repo.Files.push_back(emitJsonFile(Style, G, I));
      break;
    }
  }
  Repo.Files.push_back(emitWriterFile(Style, G, NumFiles));
  // Paths are unique corpus-wide (the inspection oracle and report
  // consumers key on them).
  for (SourceFile &F : Repo.Files)
    F.Path = Name + "/" + F.Path;
  return Repo;
}
