//===- corpus/Oracle.h - Inspection oracle ----------------------*- C++ -*-==//
///
/// \file
/// Replays the paper's manual report inspection (Section 5.1): each report
/// is classified as a semantic defect, a code quality issue, or a false
/// positive. The corpus generator recorded ground truth for every seeded
/// mistake, so the oracle resolves a report by locating a seeded issue at
/// the reported file/line whose bad token matches the reported original
/// name. Reports with no matching seeded issue are false positives.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_CORPUS_ORACLE_H
#define NAMER_CORPUS_ORACLE_H

#include "corpus/Corpus.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace namer {
namespace corpus {

/// Inspection verdict for a single report.
struct InspectionOutcome {
  enum class Verdict : uint8_t {
    SemanticDefect,
    CodeQualityIssue,
    FalsePositive,
  };
  Verdict Result = Verdict::FalsePositive;
  /// Valid when Result != FalsePositive.
  IssueCategory Category = IssueCategory::MinorIssue;
  /// True when the suggested token equals the recorded correct token.
  bool FixMatchesGroundTruth = false;
};

class InspectionOracle {
public:
  explicit InspectionOracle(const Corpus &C);

  /// Inspects one report: \p File and \p Line locate the statement;
  /// \p Original is the flagged subtoken, \p Suggested the proposed fix.
  /// Lines within +/- 1 of the recorded issue line are accepted (the
  /// parser may anchor a statement on a continuation line).
  InspectionOutcome inspect(const std::string &File, uint32_t Line,
                            const std::string &Original,
                            const std::string &Suggested) const;

  size_t numSeededIssues() const { return NumIssues; }

private:
  const SeededIssue *find(const std::string &File, uint32_t Line,
                          const std::string &Original) const;

  // (file path + line) -> issues at that line.
  std::unordered_map<std::string, std::vector<SeededIssue>> ByFileLine;
  size_t NumIssues = 0;
};

} // namespace corpus
} // namespace namer

#endif // NAMER_CORPUS_ORACLE_H
