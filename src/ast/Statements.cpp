//===- ast/Statements.cpp -------------------------------------------------==//

#include "ast/Statements.h"

using namespace namer;

bool namer::isStatementKind(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Assign:
  case NodeKind::AugAssign:
  case NodeKind::ExprStmt:
  case NodeKind::Return:
  case NodeKind::For:
  case NodeKind::While:
  case NodeKind::If:
  case NodeKind::Catch:
  case NodeKind::Raise:
  case NodeKind::VarDecl:
  // Definition headers are statements too: Namer reports issues on
  // function signatures (Table 3, example 5) and class declarations.
  case NodeKind::FunctionDef:
  case NodeKind::ClassDef:
    return true;
  default:
    return false;
  }
}

static void collectFrom(const Tree &Module, NodeId N,
                        std::vector<NodeId> &Out) {
  const Node &Nd = Module.node(N);
  if (isStatementKind(Nd.Kind)) {
    Out.push_back(N);
    // Header expressions (a for-init declaration, an if condition) belong
    // to this statement; only nested bodies contribute further statements.
    for (NodeId C : Nd.Children)
      if (Module.node(C).Kind == NodeKind::Body)
        collectFrom(Module, C, Out);
    return;
  }
  for (NodeId C : Nd.Children)
    collectFrom(Module, C, Out);
}

std::vector<NodeId> namer::collectStatementRoots(const Tree &Module) {
  std::vector<NodeId> Out;
  if (!Module.empty())
    collectFrom(Module, Module.root(), Out);
  return Out;
}

static bool skipBodies(const Tree &T, NodeId N) {
  return T.node(N).Kind == NodeKind::Body;
}

Tree namer::projectStatement(const Tree &Module, NodeId Stmt) {
  Tree Result(Module.context());
  NodeId Root = Stmt;
  // ExprStmt is a transparent wrapper: the statement AST of
  // "self.assertTrue(x, 90)" is rooted at the Call (see Figure 2(b)).
  const Node &Nd = Module.node(Stmt);
  if (Nd.Kind == NodeKind::ExprStmt && Nd.Children.size() == 1)
    Root = Nd.Children.front();
  Result.copySubtree(Module, Root, InvalidNode, skipBodies);
  return Result;
}

NodeId namer::enclosingNode(const Tree &Module, NodeId N, NodeKind Kind) {
  NodeId Current = Module.node(N).Parent;
  while (Current != InvalidNode) {
    if (Module.node(Current).Kind == Kind)
      return Current;
    Current = Module.node(Current).Parent;
  }
  return InvalidNode;
}
