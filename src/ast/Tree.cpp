//===- ast/Tree.cpp -------------------------------------------------------==//

#include "ast/Tree.h"

#include <algorithm>
#include <cstddef>

using namespace namer;

std::string_view namer::kindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Module:
    return "Module";
  case NodeKind::ClassDef:
    return "ClassDef";
  case NodeKind::FunctionDef:
    return "FunctionDef";
  case NodeKind::ParamList:
    return "ParamList";
  case NodeKind::Param:
    return "Param";
  case NodeKind::Body:
    return "Body";
  case NodeKind::BasesList:
    return "BasesList";
  case NodeKind::Assign:
    return "Assign";
  case NodeKind::AugAssign:
    return "AugAssign";
  case NodeKind::ExprStmt:
    return "ExprStmt";
  case NodeKind::Return:
    return "Return";
  case NodeKind::For:
    return "For";
  case NodeKind::While:
    return "While";
  case NodeKind::If:
    return "If";
  case NodeKind::Try:
    return "Try";
  case NodeKind::Catch:
    return "Catch";
  case NodeKind::Raise:
    return "Raise";
  case NodeKind::Import:
    return "Import";
  case NodeKind::Break:
    return "Break";
  case NodeKind::Continue:
    return "Continue";
  case NodeKind::Pass:
    return "Pass";
  case NodeKind::VarDecl:
    return "VarDecl";
  case NodeKind::Call:
    return "Call";
  case NodeKind::AttributeLoad:
    return "AttributeLoad";
  case NodeKind::AttributeStore:
    return "AttributeStore";
  case NodeKind::NameLoad:
    return "NameLoad";
  case NodeKind::NameStore:
    return "NameStore";
  case NodeKind::Attr:
    return "Attr";
  case NodeKind::Num:
    return "Num";
  case NodeKind::Str:
    return "Str";
  case NodeKind::Bool:
    return "Bool";
  case NodeKind::NoneLit:
    return "NoneLit";
  case NodeKind::BinOp:
    return "BinOp";
  case NodeKind::UnaryOp:
    return "UnaryOp";
  case NodeKind::Compare:
    return "Compare";
  case NodeKind::Subscript:
    return "Subscript";
  case NodeKind::ListLit:
    return "ListLit";
  case NodeKind::DictLit:
    return "DictLit";
  case NodeKind::TupleLit:
    return "TupleLit";
  case NodeKind::KeywordArg:
    return "KeywordArg";
  case NodeKind::StarArg:
    return "StarArg";
  case NodeKind::New:
    return "New";
  case NodeKind::Cast:
    return "Cast";
  case NodeKind::TypeRef:
    return "TypeRef";
  case NodeKind::Ident:
    return "Ident";
  case NodeKind::Op:
    return "Op";
  case NodeKind::NumArgs:
    return "NumArgs";
  case NodeKind::NumST:
    return "NumST";
  case NodeKind::Origin:
    return "Origin";
  case NodeKind::Subtoken:
    return "Subtoken";
  }
  return "<unknown>";
}

bool namer::kindCarriesName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::NameLoad:
  case NodeKind::NameStore:
  case NodeKind::Attr:
  case NodeKind::Param:
  case NodeKind::TypeRef:
  case NodeKind::FunctionDef:
  case NodeKind::ClassDef:
  case NodeKind::KeywordArg:
  case NodeKind::Catch:  // the bound exception variable
  case NodeKind::Import: // module / alias names
    return true;
  default:
    return false;
  }
}

AstContext::AstContext() {
  constexpr size_t NumKinds = static_cast<size_t>(NodeKind::Subtoken) + 1;
  KindSymbols.reserve(NumKinds);
  for (size_t I = 0; I != NumKinds; ++I)
    KindSymbols.push_back(Strings.intern(kindName(static_cast<NodeKind>(I))));
  NumSym = Strings.intern("NUM");
  StrSym = Strings.intern("STR");
  BoolSym = Strings.intern("BOOL");
  TopSym = Strings.intern("<top>");
}

NodeId Tree::addNodeWithValue(NodeKind Kind, Symbol Value, NodeId Parent,
                              uint32_t Line) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(Node{Kind, Value, Parent, Line, {}});
  if (Parent != InvalidNode) {
    assert(Parent < Nodes.size() - 1 && "parent must precede child");
    Nodes[Parent].Children.push_back(Id);
  } else if (Root == InvalidNode) {
    Root = Id;
  }
  return Id;
}

NodeId Tree::insertAbove(NodeId N, NodeKind Kind, Symbol Value) {
  assert(N < Nodes.size() && "node id out of range");
  NodeId Parent = Nodes[N].Parent;
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(Node{Kind, Value, Parent, Nodes[N].Line, {N}});
  if (Parent != InvalidNode) {
    auto &Siblings = Nodes[Parent].Children;
    auto It = std::find(Siblings.begin(), Siblings.end(), N);
    assert(It != Siblings.end() && "child missing from parent list");
    *It = Id;
  } else if (Root == N) {
    Root = Id;
  }
  Nodes[N].Parent = Id;
  return Id;
}

void Tree::reparent(NodeId Child, NodeId NewParent) {
  NodeId OldParent = node(Child).Parent;
  if (OldParent != InvalidNode) {
    auto &Kids = Nodes[OldParent].Children;
    // Search from the back: parsers re-parent recently attached nodes.
    for (size_t I = Kids.size(); I > 0; --I) {
      if (Kids[I - 1] == Child) {
        Kids.erase(Kids.begin() + static_cast<ptrdiff_t>(I - 1));
        break;
      }
    }
  }
  Nodes[Child].Parent = NewParent;
  Nodes[NewParent].Children.push_back(Child);
}

uint32_t Tree::childIndex(NodeId Child) const {
  NodeId Parent = node(Child).Parent;
  assert(Parent != InvalidNode && "root has no child index");
  const auto &Siblings = node(Parent).Children;
  auto It = std::find(Siblings.begin(), Siblings.end(), Child);
  assert(It != Siblings.end() && "child missing from parent list");
  return static_cast<uint32_t>(It - Siblings.begin());
}

void Tree::dumpNode(NodeId N, std::string &Out) const {
  const Node &Nd = node(N);
  if (Nd.Children.empty()) {
    Out += valueText(N);
    return;
  }
  Out += '(';
  Out += valueText(N);
  for (NodeId C : Nd.Children) {
    Out += ' ';
    dumpNode(C, Out);
  }
  Out += ')';
}

std::string Tree::dump() const {
  if (Root == InvalidNode)
    return "()";
  std::string Out;
  dumpNode(Root, Out);
  return Out;
}

NodeId Tree::copySubtree(const Tree &Source, NodeId N, NodeId NewParent,
                         bool (*SkipChild)(const Tree &, NodeId)) {
  const Node &Src = Source.node(N);
  NodeId Copy = addNodeWithValue(Src.Kind, Src.Value, NewParent, Src.Line);
  for (NodeId C : Src.Children) {
    if (SkipChild && SkipChild(Source, C))
      continue;
    copySubtree(Source, C, Copy, SkipChild);
  }
  return Copy;
}
