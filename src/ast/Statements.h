//===- ast/Statements.h - Statement slicing ---------------------*- C++ -*-==//
///
/// \file
/// Definition 3.1 works on per-statement ASTs: "part of the abstract syntax
/// tree of the whole program, projected on a specific statement only". This
/// header enumerates statement roots in a module tree and projects each into
/// a standalone statement Tree. Compound statements (for/if/while/try)
/// contribute their header only; nested bodies are sliced separately.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_AST_STATEMENTS_H
#define NAMER_AST_STATEMENTS_H

#include "ast/Tree.h"

#include <vector>

namespace namer {

/// Returns true if \p Kind starts a statement for Namer's purposes.
bool isStatementKind(NodeKind Kind);

/// Collects the ids of all statement roots in \p Module, in source order.
std::vector<NodeId> collectStatementRoots(const Tree &Module);

/// Projects the statement rooted at \p Stmt of \p Module into a fresh tree:
/// a deep copy that stops at Body children (so loop/if bodies are excluded)
/// and unwraps ExprStmt wrappers to their expression.
Tree projectStatement(const Tree &Module, NodeId Stmt);

/// Walks parent links from \p N and returns the nearest enclosing node of
/// kind \p Kind, or InvalidNode.
NodeId enclosingNode(const Tree &Module, NodeId N, NodeKind Kind);

} // namespace namer

#endif // NAMER_AST_STATEMENTS_H
