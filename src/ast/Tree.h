//===- ast/Tree.h - Abstract syntax trees (Definition 3.1) ------*- C++ -*-==//
///
/// \file
/// The AST representation of Definition 3.1: a tuple <N, T, r, delta, V,
/// phi> with non-terminal and terminal nodes, a root, an ordered child
/// function delta and a node-value function phi. Values are interned
/// symbols; trees are arena vectors of nodes owned by the Tree object.
///
/// Both language frontends produce these trees, the transform pass rewrites
/// them into AST+ form, and name paths (Definition 3.2) are extracted from
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_AST_TREE_H
#define NAMER_AST_TREE_H

#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace namer {

/// Index of a node within its owning Tree.
using NodeId = uint32_t;
inline constexpr NodeId InvalidNode = static_cast<NodeId>(-1);

/// Structural kind of an AST node. The kind drives transforms and analysis;
/// name-path comparison uses the node *value* (phi), which for structural
/// kinds equals the kind spelling ("Call", "AttributeLoad", ...).
enum class NodeKind : uint8_t {
  // Structure
  Module,
  ClassDef,
  FunctionDef,
  ParamList,
  Param,
  Body,
  BasesList,
  // Statements
  Assign,
  AugAssign,
  ExprStmt,
  Return,
  For,
  While,
  If,
  Try,
  Catch,
  Raise,
  Import,
  Break,
  Continue,
  Pass,
  VarDecl,
  // Expressions
  Call,
  AttributeLoad,
  AttributeStore,
  NameLoad,
  NameStore,
  Attr,
  Num,
  Str,
  Bool,
  NoneLit,
  BinOp,
  UnaryOp,
  Compare,
  Subscript,
  ListLit,
  DictLit,
  TupleLit,
  KeywordArg,
  StarArg,
  New,
  Cast,
  TypeRef,
  /// A raw identifier terminal under a wrapper node (NameLoad -> Ident
  /// "self"); replaced by NumST(k) during the AST+ transform.
  Ident,
  /// An operator terminal ("+", "==", ...) under BinOp/Compare/UnaryOp.
  Op,
  // Introduced by the AST+ transform (Section 3.1)
  NumArgs,
  NumST,
  Origin,
  Subtoken,
};

/// Returns the canonical spelling of \p Kind ("Call", "NameLoad", ...).
std::string_view kindName(NodeKind Kind);

/// Returns true for kinds whose nodes carry an identifier name subject to
/// subtoken splitting (transform step 3).
bool kindCarriesName(NodeKind Kind);

/// Shared per-pipeline state: the string interner plus pre-interned symbols
/// for every node kind and the special literal tokens NUM/STR/BOOL.
class AstContext {
public:
  AstContext();

  StringInterner &strings() { return Strings; }
  const StringInterner &strings() const { return Strings; }

  /// Symbol for kindName(Kind).
  Symbol kindSymbol(NodeKind Kind) const {
    return KindSymbols[static_cast<size_t>(Kind)];
  }

  Symbol numSymbol() const { return NumSym; }
  Symbol strSymbol() const { return StrSym; }
  Symbol boolSymbol() const { return BoolSym; }
  /// Origin "top": the value was modified after creation (Section 4.1).
  Symbol topSymbol() const { return TopSym; }

  Symbol intern(std::string_view Text) { return Strings.intern(Text); }
  std::string_view text(Symbol S) const { return Strings.text(S); }

private:
  StringInterner Strings;
  std::vector<Symbol> KindSymbols;
  Symbol NumSym, StrSym, BoolSym, TopSym;
};

/// One AST node. Terminal nodes are exactly the nodes with no children at
/// the time of an operation (Definition 3.1's T set).
struct Node {
  NodeKind Kind;
  Symbol Value = EpsilonSymbol;
  NodeId Parent = InvalidNode;
  uint32_t Line = 0;
  std::vector<NodeId> Children;
};

/// An arena-allocated ordered tree over Node.
class Tree {
public:
  explicit Tree(AstContext &Ctx) : Ctx(&Ctx) {}

  AstContext &context() const { return *Ctx; }

  /// Appends a node with an explicit value symbol; links it as the last
  /// child of \p Parent (or makes it the root when Parent is InvalidNode
  /// and no root exists yet). Named distinctly from addNode because Symbol
  /// and NodeId are both 32-bit integers.
  NodeId addNodeWithValue(NodeKind Kind, Symbol Value, NodeId Parent,
                          uint32_t Line = 0);

  /// Appends a structural node whose value is the kind spelling.
  NodeId addNode(NodeKind Kind, NodeId Parent, uint32_t Line = 0) {
    return addNodeWithValue(Kind, Ctx->kindSymbol(Kind), Parent, Line);
  }

  /// Appends a node with a text value interned on the fly (through the
  /// batch handle when one is attached).
  NodeId addNode(NodeKind Kind, std::string_view Value, NodeId Parent,
                 uint32_t Line = 0) {
    Symbol V = Handle ? Handle->intern(Value) : Ctx->intern(Value);
    return addNodeWithValue(Kind, V, Parent, Line);
  }

  /// Routes subsequent text interning through \p H (a handle over this
  /// tree's context interner), amortizing shard locks across a file's
  /// tokens. The tree stores the raw pointer, so the code that attaches a
  /// handle must detach it (pass nullptr) before the handle dies or the
  /// tree is handed off -- the parsers and the AST+ transform scope it to
  /// one function.
  void setInternHandle(StringInterner::BatchHandle *H) { Handle = H; }

  /// Pre-sizes node storage: parsers reserve from the token count and the
  /// AST+ transform from its exact pre-counted node total, eliminating
  /// vector reallocation while nodes are appended.
  void reserveNodes(size_t NumNodes) { Nodes.reserve(NumNodes); }

  /// Inserts a new node between \p N and its parent, preserving the child
  /// slot. Used by the AST+ transform to add NumArgs/NumST/Origin parents.
  /// \returns the id of the inserted node.
  NodeId insertAbove(NodeId N, NodeKind Kind, Symbol Value);

  /// Replaces the value of \p N.
  void setValue(NodeId N, Symbol Value) { Nodes[N].Value = Value; }

  /// Replaces the kind of \p N (used for load -> store conversion when the
  /// parser discovers an expression is an assignment target).
  void setKind(NodeId N, NodeKind Kind) { Nodes[N].Kind = Kind; }

  const Node &node(NodeId N) const {
    assert(N < Nodes.size() && "node id out of range");
    return Nodes[N];
  }

  /// Mutable access for tree surgery (parsers re-parent nodes when they
  /// discover an expression was the left operand of a larger one).
  Node &mutableNode(NodeId N) {
    assert(N < Nodes.size() && "node id out of range");
    return Nodes[N];
  }

  /// Detaches \p Child from its current parent's child list and appends it
  /// to \p NewParent's. The subtree below Child is unaffected.
  void reparent(NodeId Child, NodeId NewParent);

  NodeId root() const { return Root; }
  void setRoot(NodeId N) { Root = N; }

  size_t size() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }

  /// True if \p N currently has no children.
  bool isTerminal(NodeId N) const { return node(N).Children.empty(); }

  /// The index of \p Child within its parent's child list.
  uint32_t childIndex(NodeId Child) const;

  /// Value text convenience.
  std::string_view valueText(NodeId N) const {
    return Ctx->text(node(N).Value);
  }

  /// Renders the tree as an s-expression, e.g.
  /// (Call (AttributeLoad (NameLoad self) (Attr assertTrue)) (Num 90)).
  std::string dump() const;

  /// Deep-copies the subtree rooted at \p N of \p Source into this tree
  /// under \p NewParent, skipping children for which \p SkipChild returns
  /// true. \returns the id of the copied root.
  NodeId copySubtree(const Tree &Source, NodeId N, NodeId NewParent,
                     bool (*SkipChild)(const Tree &, NodeId) = nullptr);

private:
  void dumpNode(NodeId N, std::string &Out) const;

  AstContext *Ctx;
  StringInterner::BatchHandle *Handle = nullptr;
  std::vector<Node> Nodes;
  NodeId Root = InvalidNode;
};

} // namespace namer

#endif // NAMER_AST_TREE_H
